#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/report_format.h"
#include "datagen/registry.h"

namespace mesa {
namespace {

MesaReport SampleReport() {
  GenOptions gen;
  gen.rows = 6000;
  auto ds = MakeDataset(DatasetKind::kStackOverflow, gen);
  MESA_CHECK(ds.ok());
  static Mesa* mesa =
      new Mesa(ds->table, ds->kg.get(), ds->extraction_columns);
  auto rep = mesa->Explain(
      CanonicalQueries(DatasetKind::kStackOverflow)[0].query);
  MESA_CHECK(rep.ok());
  return *rep;
}

TEST(ReportFormat, ContainsTheKeyNumbers) {
  MesaReport rep = SampleReport();
  std::string text = FormatReport(rep);
  EXPECT_NE(text.find("correlation"), std::string::npos);
  EXPECT_NE(text.find("explained"), std::string::npos);
  EXPECT_NE(text.find("GROUP BY Country"), std::string::npos);
  EXPECT_NE(text.find("candidates"), std::string::npos);
  // Every explanation attribute appears with a bar.
  for (const auto& name : rep.explanation.attribute_names) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
  EXPECT_NE(text.find('#'), std::string::npos);
}

TEST(ReportFormat, TraceToggle) {
  MesaReport rep = SampleReport();
  ReportFormatOptions opts;
  opts.show_trace = true;
  opts.show_funnel = false;
  std::string text = FormatReport(rep, opts);
  if (!rep.explanation.trace.empty()) {
    EXPECT_NE(text.find("step"), std::string::npos);
  }
  EXPECT_EQ(text.find("candidates"), std::string::npos);
}

TEST(ReportFormat, EmptyExplanationRendersPlaceholder) {
  MesaReport rep;
  rep.query.exposure = "T";
  rep.query.outcome = "O";
  rep.base_cmi = 1.0;
  rep.final_cmi = 1.0;
  std::string text = FormatReport(rep);
  EXPECT_NE(text.find("(none found)"), std::string::npos);
  EXPECT_NE(text.find("(0% explained away)"), std::string::npos);
}

TEST(ReportFormat, NegativeResponsibilityMarked) {
  MesaReport rep;
  rep.query.exposure = "T";
  rep.query.outcome = "O";
  rep.base_cmi = 1.0;
  rep.final_cmi = 0.4;
  AttributeResponsibility good;
  good.name = "hdi";
  good.responsibility = 1.2;
  AttributeResponsibility bad;
  bad.name = "hobby";
  bad.responsibility = -0.2;
  rep.responsibilities = {good, bad};
  std::string text = FormatReport(rep);
  EXPECT_NE(text.find("harms the explanation"), std::string::npos);
}

TEST(FormatSubgroups, RendersRankedList) {
  UnexplainedSubgroup g;
  g.refinement.Add({"Continent", CompareOp::kEq, Value::String("Europe"), {}});
  g.size = 1234;
  g.score = 0.42;
  std::string text = FormatSubgroups({g});
  EXPECT_NE(text.find("Continent = 'Europe'"), std::string::npos);
  EXPECT_NE(text.find("1234"), std::string::npos);
  EXPECT_NE(FormatSubgroups({}).find("none above"), std::string::npos);
}

}  // namespace
}  // namespace mesa
