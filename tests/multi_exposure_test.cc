#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "core/candidates.h"
#include "core/mcimr.h"
#include "core/pruning.h"
#include "query/sql_parser.h"
#include "table/csv.h"
#include "table/table_builder.h"

namespace mesa {
namespace {

// ------------------------------------------ composite group-by semantics

Table Sales() {
  return *ReadCsvString(
      "region,product,units\n"
      "north,widget,10\n"
      "north,widget,20\n"
      "north,gadget,5\n"
      "south,widget,8\n"
      "south,gadget,2\n"
      "south,gadget,4\n");
}

TEST(CompositeGroupBy, GroupsByTuple) {
  Table t = Sales();
  auto r = GroupByAggregate(t, std::vector<std::string>{"region", "product"}, "units",
                            AggregateFunction::kAvg);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->groups.size(), 4u);
  // Sorted tuple order: (north,gadget), (north,widget), (south,gadget),
  // (south,widget).
  EXPECT_EQ(r->groups[0].values[0].string_value(), "north");
  EXPECT_EQ(r->groups[0].values[1].string_value(), "gadget");
  EXPECT_DOUBLE_EQ(r->groups[0].aggregate, 5.0);
  EXPECT_DOUBLE_EQ(r->groups[1].aggregate, 15.0);
  EXPECT_DOUBLE_EQ(r->groups[2].aggregate, 3.0);
  EXPECT_EQ(r->groups[3].count, 1u);
  // `group` mirrors the first tuple element.
  EXPECT_EQ(r->groups[0].group, r->groups[0].values[0]);
}

TEST(CompositeGroupBy, SingleColumnPathEquivalent) {
  Table t = Sales();
  auto single = GroupByAggregate(t, "region", "units",
                                 AggregateFunction::kSum);
  auto composite = GroupByAggregate(t, std::vector<std::string>{"region"},
                                    "units", AggregateFunction::kSum);
  ASSERT_TRUE(single.ok() && composite.ok());
  ASSERT_EQ(single->groups.size(), composite->groups.size());
  for (size_t i = 0; i < single->groups.size(); ++i) {
    EXPECT_EQ(single->groups[i].group, composite->groups[i].group);
    EXPECT_DOUBLE_EQ(single->groups[i].aggregate,
                     composite->groups[i].aggregate);
  }
}

TEST(CompositeGroupBy, NullInAnyKeyColumnDropsRow) {
  Table t = *ReadCsvString("a,b,x\np,q,1\n,q,2\np,,3\n");
  auto r = GroupByAggregate(t, std::vector<std::string>{"a", "b"}, "x", AggregateFunction::kCount);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->groups.size(), 1u);
  EXPECT_EQ(r->groups[0].count, 1u);
}

TEST(CompositeGroupBy, EmptyColumnListRejected) {
  Table t = Sales();
  EXPECT_FALSE(
      GroupByAggregate(t, std::vector<std::string>{}, "units",
                       AggregateFunction::kAvg)
          .ok());
}

// -------------------------------------------------- QuerySpec composite

TEST(MultiExposureSpec, AccessorsAndSql) {
  QuerySpec q;
  q.exposure = "region";
  q.secondary_exposures = {"product"};
  q.outcome = "units";
  EXPECT_TRUE(q.IsExposure("region"));
  EXPECT_TRUE(q.IsExposure("product"));
  EXPECT_FALSE(q.IsExposure("units"));
  EXPECT_EQ(q.AllExposures(),
            (std::vector<std::string>{"region", "product"}));
  EXPECT_EQ(q.ToSql(),
            "SELECT region, product, avg(units) FROM D "
            "GROUP BY region, product");
}

TEST(MultiExposureSpec, ValidateRejectsDuplicatesAndOutcomeOverlap) {
  Table t = Sales();
  QuerySpec q;
  q.exposure = "region";
  q.secondary_exposures = {"region"};
  q.outcome = "units";
  EXPECT_FALSE(q.Validate(t).ok());
  q.secondary_exposures = {"units"};
  EXPECT_FALSE(q.Validate(t).ok());
  q.secondary_exposures = {"product"};
  EXPECT_TRUE(q.Validate(t).ok());
  auto r = q.Execute(t);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->groups.size(), 4u);
}

// ------------------------------------------------------ parser composite

TEST(MultiExposureParser, ParsesTwoGroupingColumns) {
  auto q = ParseQuery(
      "SELECT State, Airline, avg(Delay) FROM F GROUP BY State, Airline");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->exposure, "State");
  ASSERT_EQ(q->secondary_exposures.size(), 1u);
  EXPECT_EQ(q->secondary_exposures[0], "Airline");
}

TEST(MultiExposureParser, AggregateAnywhereInSelectList) {
  auto q = ParseQuery(
      "SELECT a, avg(x), b FROM t GROUP BY a, b");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->exposure, "a");
  EXPECT_EQ(q->secondary_exposures, (std::vector<std::string>{"b"}));
  EXPECT_EQ(q->outcome, "x");
}

TEST(MultiExposureParser, GroupByMustMatchOrderAndSet) {
  EXPECT_FALSE(
      ParseQuery("SELECT a, b, avg(x) FROM t GROUP BY b, a").ok());
  EXPECT_FALSE(ParseQuery("SELECT a, b, avg(x) FROM t GROUP BY a").ok());
  EXPECT_FALSE(ParseQuery("SELECT a, avg(x) FROM t GROUP BY a, b").ok());
}

// ----------------------------------------------- analysis over composite

TEST(MultiExposureAnalysis, CompositeExposureDrivenByTwoFactors) {
  // Outcome depends on region-level AND product-level latents; the
  // composite exposure (region, product) needs both confounders.
  Rng rng(55);
  const size_t kRegions = 30, kProducts = 20;
  std::vector<double> r_latent(kRegions), p_latent(kProducts);
  for (auto& v : r_latent) v = rng.NextGaussian();
  for (auto& v : p_latent) v = rng.NextGaussian();
  TableBuilder b(Schema({{"region", DataType::kString},
                         {"product", DataType::kString},
                         {"region_factor", DataType::kDouble},
                         {"product_factor", DataType::kDouble},
                         {"outcome", DataType::kDouble}}));
  for (int i = 0; i < 9000; ++i) {
    size_t r = rng.NextBelow(kRegions), p = rng.NextBelow(kProducts);
    double y = 2.0 * r_latent[r] + 2.0 * p_latent[p] +
               rng.NextGaussian(0, 0.4);
    MESA_CHECK(b.AppendRow({Value::String("r" + std::to_string(r)),
                            Value::String("p" + std::to_string(p)),
                            Value::Double(r_latent[r]),
                            Value::Double(p_latent[p]), Value::Double(y)})
                   .ok());
  }
  Table t = *b.Finish();
  QuerySpec q;
  q.exposure = "region";
  q.secondary_exposures = {"product"};
  q.outcome = "outcome";
  auto qa = QueryAnalysis::Prepare(t, q, {"region_factor", "product_factor",
                                          "region", "product"});
  ASSERT_TRUE(qa.ok());
  // Exposure columns never become candidates.
  EXPECT_EQ(qa->attributes().size(), 2u);
  EXPECT_GT(qa->BaseCmi(), 0.8);
  Explanation ex = RunMcimr(*qa, OnlinePrune(*qa).kept_indices);
  ASSERT_EQ(ex.attribute_names.size(), 2u) << ex.ToString();
  bool has_r = false, has_p = false;
  for (const auto& n : ex.attribute_names) {
    has_r |= n == "region_factor";
    has_p |= n == "product_factor";
  }
  EXPECT_TRUE(has_r && has_p) << ex.ToString();
  EXPECT_LT(ex.final_cmi, 0.3 * ex.base_cmi);
}

}  // namespace
}  // namespace mesa
