// Bit-identity tests for the morsel-driven parallel data plane: group-by
// aggregation, hash join (including the reusable JoinIndex), TakeRows, and
// per-value KG extraction must produce byte-identical outputs at 1, 2, and
// 8 threads — and identical to the serial reference loops behind
// SetDataPlaneParallel(false). Same pattern as parallel_test.cc; this
// binary is a TSan target alongside it (see .github/workflows/ci.yml).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "datagen/registry.h"
#include "kg/endpoint.h"
#include "kg/extractor.h"
#include "kg/resilient_client.h"
#include "query/group_by.h"
#include "query/join.h"
#include "query/predicate.h"
#include "table/table.h"

namespace mesa {
namespace {

// Restores the global pool and the data-plane toggle when a test exits.
struct PoolGuard {
  ~PoolGuard() {
    SetDataPlaneParallel(true);
    SetNumThreads(1);
  }
};

constexpr size_t kThreadCounts[] = {1, 2, 8};

// A seeded random table big enough to cross the parallel thresholds:
//   k_str  string key, ~20 distinct values (nullable)
//   k_int  int key, ~12 distinct values (nullable)
//   x      double outcome (nullable)
//   payload extra double column (join payload / TakeRows coverage)
// `null_rate` also controls the null density of the keys, so the
// null-heavy configurations exercise the skip paths hard.
Table MakeRandomTable(uint64_t seed, size_t rows, double null_rate) {
  Rng rng(seed);
  Column k_str(DataType::kString);
  Column k_int(DataType::kInt64);
  Column x(DataType::kDouble);
  Column payload(DataType::kDouble);
  for (size_t r = 0; r < rows; ++r) {
    if (rng.NextBernoulli(null_rate)) {
      k_str.AppendNull();
    } else {
      k_str.AppendString("key_" + std::to_string(rng.NextBelow(20)));
    }
    if (rng.NextBernoulli(null_rate)) {
      k_int.AppendNull();
    } else {
      k_int.AppendInt(static_cast<int64_t>(rng.NextBelow(12)));
    }
    if (rng.NextBernoulli(null_rate * 0.5)) {
      x.AppendNull();
    } else {
      x.AppendDouble(rng.NextGaussian(10.0, 3.0));
    }
    payload.AppendDouble(rng.NextUniform(-1.0, 1.0));
  }
  Schema schema;
  EXPECT_TRUE(schema.AddField({"k_str", DataType::kString}).ok());
  EXPECT_TRUE(schema.AddField({"k_int", DataType::kInt64}).ok());
  EXPECT_TRUE(schema.AddField({"x", DataType::kDouble}).ok());
  EXPECT_TRUE(schema.AddField({"payload", DataType::kDouble}).ok());
  auto t = Table::Make(std::move(schema),
                       {std::move(k_str), std::move(k_int), std::move(x),
                        std::move(payload)});
  EXPECT_TRUE(t.ok());
  return *t;
}

void ExpectGroupByEqual(const GroupByResult& a, const GroupByResult& b,
                        const std::string& what) {
  ASSERT_EQ(a.input_rows, b.input_rows) << what;
  ASSERT_EQ(a.groups.size(), b.groups.size()) << what;
  for (size_t g = 0; g < a.groups.size(); ++g) {
    EXPECT_TRUE(a.groups[g].group == b.groups[g].group) << what << " g" << g;
    EXPECT_TRUE(a.groups[g].values == b.groups[g].values) << what << " g" << g;
    // Bitwise: the parallel path must preserve the serial FP accumulation
    // order, not just be "close".
    EXPECT_EQ(a.groups[g].aggregate, b.groups[g].aggregate)
        << what << " g" << g;
    EXPECT_EQ(a.groups[g].count, b.groups[g].count) << what << " g" << g;
  }
}

void ExpectTablesEqual(const Table& a, const Table& b,
                       const std::string& what) {
  ASSERT_EQ(a.schema().ToString(), b.schema().ToString()) << what;
  ASSERT_EQ(a.num_rows(), b.num_rows()) << what;
  for (size_t c = 0; c < a.num_columns(); ++c) {
    for (size_t r = 0; r < a.num_rows(); ++r) {
      ASSERT_TRUE(a.column(c).GetValue(r) == b.column(c).GetValue(r))
          << what << " col " << a.schema().field(c).name << " row " << r;
    }
  }
}

// ------------------------------------------------------------- group-by

TEST(QueryParallel, GroupByBitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  const AggregateFunction aggs[] = {
      AggregateFunction::kAvg, AggregateFunction::kSum,
      AggregateFunction::kCount, AggregateFunction::kMedian,
      AggregateFunction::kStdDev};
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    // Odd seeds are null-heavy (~40% null keys), even seeds mild.
    const double null_rate = (seed % 2 == 1) ? 0.4 : 0.05;
    Table table = MakeRandomTable(seed, 6000, null_rate);
    const AggregateFunction agg = aggs[seed % 5];

    SetDataPlaneParallel(false);
    SetNumThreads(1);
    auto serial = GroupByAggregate(table, "k_str", "x", agg);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    auto serial_multi = GroupByAggregate(
        table, std::vector<std::string>{"k_str", "k_int"}, "x", agg);
    ASSERT_TRUE(serial_multi.ok());

    SetDataPlaneParallel(true);
    for (size_t threads : kThreadCounts) {
      SetNumThreads(threads);
      auto parallel = GroupByAggregate(table, "k_str", "x", agg);
      ASSERT_TRUE(parallel.ok());
      ExpectGroupByEqual(*serial, *parallel,
                         "seed " + std::to_string(seed) + " threads " +
                             std::to_string(threads));
      auto parallel_multi = GroupByAggregate(
          table, std::vector<std::string>{"k_str", "k_int"}, "x", agg);
      ASSERT_TRUE(parallel_multi.ok());
      ExpectGroupByEqual(*serial_multi, *parallel_multi,
                         "multi seed " + std::to_string(seed) + " threads " +
                             std::to_string(threads));
    }
  }
}

TEST(QueryParallel, GroupByWithContextAndEmptyResult) {
  PoolGuard guard;
  Table table = MakeRandomTable(7, 8000, 0.3);

  // A context that matches a slice of the input.
  Conjunction some;
  some.Add({"k_int", CompareOp::kLe, Value::Int(5), {}});
  // A context that matches nothing: every group is empty.
  Conjunction none;
  none.Add({"k_str", CompareOp::kEq, Value::String("no_such_key"), {}});

  SetDataPlaneParallel(false);
  SetNumThreads(1);
  auto serial_some =
      GroupByAggregate(table, "k_str", "x", AggregateFunction::kAvg, some);
  auto serial_none =
      GroupByAggregate(table, "k_str", "x", AggregateFunction::kAvg, none);
  ASSERT_TRUE(serial_some.ok());
  ASSERT_TRUE(serial_none.ok());
  EXPECT_EQ(serial_none->input_rows, 0u);
  EXPECT_TRUE(serial_none->groups.empty());

  SetDataPlaneParallel(true);
  for (size_t threads : kThreadCounts) {
    SetNumThreads(threads);
    auto par_some =
        GroupByAggregate(table, "k_str", "x", AggregateFunction::kAvg, some);
    auto par_none =
        GroupByAggregate(table, "k_str", "x", AggregateFunction::kAvg, none);
    ASSERT_TRUE(par_some.ok());
    ASSERT_TRUE(par_none.ok());
    ExpectGroupByEqual(*serial_some, *par_some, "context slice");
    ExpectGroupByEqual(*serial_none, *par_none, "empty context");
  }
}

// ------------------------------------------------------------- hash join

// Right side: one row per key plus deliberate duplicates and null keys.
Table MakeRightTable(uint64_t seed) {
  Rng rng(seed);
  Column key(DataType::kString);
  Column attr(DataType::kDouble);
  Column label(DataType::kString);
  for (int rep = 0; rep < 2; ++rep) {  // second pass = duplicate keys
    for (int k = 0; k < 25; ++k) {     // 20 match the left pool, 5 dangle
      if (rep == 1 && k % 3 != 0) continue;
      key.AppendString("key_" + std::to_string(k));
      attr.AppendDouble(rng.NextGaussian());
      label.AppendString("label_" + std::to_string(rng.NextBelow(100)));
    }
    key.AppendNull();
    attr.AppendDouble(rng.NextGaussian());
    label.AppendNull();
  }
  Schema schema;
  EXPECT_TRUE(schema.AddField({"k_str", DataType::kString}).ok());
  EXPECT_TRUE(schema.AddField({"attr", DataType::kDouble}).ok());
  EXPECT_TRUE(schema.AddField({"label", DataType::kString}).ok());
  auto t = Table::Make(std::move(schema),
                       {std::move(key), std::move(attr), std::move(label)});
  EXPECT_TRUE(t.ok());
  return *t;
}

TEST(QueryParallel, HashJoinBitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const double null_rate = (seed % 2 == 1) ? 0.4 : 0.05;
    Table left = MakeRandomTable(seed, 6000, null_rate);
    Table right = MakeRightTable(seed + 100);

    for (JoinType type : {JoinType::kLeft, JoinType::kInner}) {
      JoinOptions options;
      options.type = type;
      SetDataPlaneParallel(false);
      SetNumThreads(1);
      auto serial = HashJoin(left, "k_str", right, "k_str", options);
      ASSERT_TRUE(serial.ok()) << serial.status().ToString();

      SetDataPlaneParallel(true);
      for (size_t threads : kThreadCounts) {
        SetNumThreads(threads);
        auto parallel = HashJoin(left, "k_str", right, "k_str", options);
        ASSERT_TRUE(parallel.ok());
        ExpectTablesEqual(*serial, *parallel,
                          "seed " + std::to_string(seed) + " threads " +
                              std::to_string(threads) + " type " +
                              (type == JoinType::kLeft ? "left" : "inner"));
      }
    }
  }
}

TEST(QueryParallel, JoinIndexReuseMatchesDirectJoin) {
  PoolGuard guard;
  SetNumThreads(8);
  Table left_a = MakeRandomTable(3, 6000, 0.2);
  Table left_b = MakeRandomTable(4, 5000, 0.2);
  Table right = MakeRightTable(42);

  auto index = JoinIndex::Build(right, "k_str");
  ASSERT_TRUE(index.ok());
  EXPECT_GT(index->duplicate_keys(), 0u);

  for (const Table* left : {&left_a, &left_b}) {
    auto direct = HashJoin(*left, "k_str", right, "k_str");
    auto reused = HashJoin(*left, "k_str", *index);
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(reused.ok());
    ExpectTablesEqual(*direct, *reused, "index reuse");
  }
}

TEST(QueryParallel, TakeRowsBitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  Table table = MakeRandomTable(11, 9000, 0.3);
  Rng rng(99);
  std::vector<size_t> rows;
  for (size_t i = 0; i < 7000; ++i) {
    rows.push_back(static_cast<size_t>(rng.NextBelow(table.num_rows())));
  }

  SetDataPlaneParallel(false);
  SetNumThreads(1);
  Table serial = table.TakeRows(rows);

  SetDataPlaneParallel(true);
  for (size_t threads : kThreadCounts) {
    SetNumThreads(threads);
    Table parallel = table.TakeRows(rows);
    ExpectTablesEqual(serial, parallel,
                      "TakeRows threads " + std::to_string(threads));
  }
}

// ------------------------------------------------------------- extraction

void ExpectStatsEqual(const ExtractionStats& a, const ExtractionStats& b) {
  EXPECT_EQ(a.values_total, b.values_total);
  EXPECT_EQ(a.values_linked, b.values_linked);
  EXPECT_EQ(a.values_ambiguous, b.values_ambiguous);
  EXPECT_EQ(a.values_not_found, b.values_not_found);
  EXPECT_EQ(a.values_failed, b.values_failed);
  EXPECT_EQ(a.attributes_extracted, b.attributes_extracted);
}

TEST(QueryParallel, ExtractionBitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  auto ds = MakeDataset(DatasetKind::kCovid, GenOptions{});
  ASSERT_TRUE(ds.ok());
  ExtractionOptions options;
  options.hops = 2;

  for (const std::string& column : {std::string("Country"),
                                    std::string("WHO_Region")}) {
    // Serial references: the raw TripleStore walk and the shared-client
    // loop with the data plane off.
    SetDataPlaneParallel(false);
    SetNumThreads(1);
    ExtractionStats store_stats;
    auto store_serial =
        ExtractAttributes(ds->table, column, *ds->kg, options, &store_stats);
    ASSERT_TRUE(store_serial.ok()) << store_serial.status().ToString();
    ResilientKgClient serial_client(
        std::make_shared<LocalEndpoint>(ds->kg.get()));
    ExtractionStats client_stats;
    auto client_serial = ExtractAttributes(ds->table, column, &serial_client,
                                           options, &client_stats);
    ASSERT_TRUE(client_serial.ok());
    // Fault-free client extraction matches the raw TripleStore walk.
    ExpectTablesEqual(*store_serial, *client_serial, "client vs store");
    ExpectStatsEqual(store_stats, client_stats);

    SetDataPlaneParallel(true);
    for (size_t threads : kThreadCounts) {
      SetNumThreads(threads);
      ExtractionStats par_store_stats;
      auto store_parallel = ExtractAttributes(ds->table, column, *ds->kg,
                                              options, &par_store_stats);
      ASSERT_TRUE(store_parallel.ok());
      ExpectTablesEqual(*store_serial, *store_parallel,
                        "store threads " + std::to_string(threads));
      ExpectStatsEqual(store_stats, par_store_stats);

      ResilientKgClient client(std::make_shared<LocalEndpoint>(ds->kg.get()));
      ASSERT_TRUE(client.SupportsSharding());
      ExtractionStats par_client_stats;
      auto client_parallel = ExtractAttributes(ds->table, column, &client,
                                               options, &par_client_stats);
      ASSERT_TRUE(client_parallel.ok());
      ExpectTablesEqual(*client_serial, *client_parallel,
                        "client threads " + std::to_string(threads));
      ExpectStatsEqual(client_stats, par_client_stats);
    }
  }
}

// ------------------------------------------- high-cardinality tails

// Thousands of distinct groups push group-by's phase 3 past the merge
// threshold and into the sliced parallel merge + finalize, which must
// stay bit-identical to the serial fold.
TEST(QueryParallel, GroupByHighCardinalityBitIdentical) {
  PoolGuard guard;
  const AggregateFunction aggs[] = {AggregateFunction::kAvg,
                                    AggregateFunction::kSum,
                                    AggregateFunction::kStdDev,
                                    AggregateFunction::kMedian};
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed * 31);
    Column key(DataType::kString);
    Column x(DataType::kDouble);
    const size_t rows = 30000;
    for (size_t r = 0; r < rows; ++r) {
      if (rng.NextBernoulli(0.02)) {
        key.AppendNull();
      } else {
        key.AppendString("g_" + std::to_string(rng.NextBelow(3000)));
      }
      if (rng.NextBernoulli(0.05)) {
        x.AppendNull();
      } else {
        x.AppendDouble(rng.NextGaussian(5.0, 2.0));
      }
    }
    Schema schema;
    ASSERT_TRUE(schema.AddField({"key", DataType::kString}).ok());
    ASSERT_TRUE(schema.AddField({"x", DataType::kDouble}).ok());
    auto table = Table::Make(std::move(schema), {std::move(key), std::move(x)});
    ASSERT_TRUE(table.ok());
    const AggregateFunction agg = aggs[seed % 4];

    SetDataPlaneParallel(false);
    SetNumThreads(1);
    auto serial = GroupByAggregate(*table, "key", "x", agg);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    EXPECT_GT(serial->groups.size(), 1000u)
        << "dataset failed to cross the parallel-merge threshold";

    SetDataPlaneParallel(true);
    for (size_t threads : kThreadCounts) {
      SetNumThreads(threads);
      auto parallel = GroupByAggregate(*table, "key", "x", agg);
      ASSERT_TRUE(parallel.ok());
      ExpectGroupByEqual(*serial, *parallel,
                         "wide seed " + std::to_string(seed) + " threads " +
                             std::to_string(threads));
    }
  }
}

// A single kept right-side column over a large probe: the fragment
// gather must parallelize inside the one column (the old per-column
// split had nothing to do here) and still assemble byte-identically.
TEST(QueryParallel, HashJoinLargeSingleColumnBitIdentical) {
  PoolGuard guard;
  Rng rng(555);
  Column lkey(DataType::kString);
  Column payload(DataType::kDouble);
  const size_t rows = 20000;
  for (size_t r = 0; r < rows; ++r) {
    if (rng.NextBernoulli(0.05)) {
      lkey.AppendNull();
    } else {
      lkey.AppendString("r_" + std::to_string(rng.NextBelow(3000)));
    }
    payload.AppendDouble(rng.NextUniform(-1.0, 1.0));
  }
  Schema lschema;
  ASSERT_TRUE(lschema.AddField({"k", DataType::kString}).ok());
  ASSERT_TRUE(lschema.AddField({"payload", DataType::kDouble}).ok());
  auto left =
      Table::Make(std::move(lschema), {std::move(lkey), std::move(payload)});
  ASSERT_TRUE(left.ok());

  Column rkey(DataType::kString);
  Column attr(DataType::kString);
  for (size_t k = 0; k < 2500; ++k) {  // 500 left keys dangle
    rkey.AppendString("r_" + std::to_string(k));
    if (k % 7 == 0) {
      attr.AppendNull();  // null payloads exercise AppendFrom's dict path
    } else {
      attr.AppendString("attr_" + std::to_string(rng.NextBelow(50)));
    }
  }
  Schema rschema;
  ASSERT_TRUE(rschema.AddField({"k", DataType::kString}).ok());
  ASSERT_TRUE(rschema.AddField({"attr", DataType::kString}).ok());
  auto right =
      Table::Make(std::move(rschema), {std::move(rkey), std::move(attr)});
  ASSERT_TRUE(right.ok());

  for (JoinType type : {JoinType::kLeft, JoinType::kInner}) {
    JoinOptions options;
    options.type = type;
    SetDataPlaneParallel(false);
    SetNumThreads(1);
    auto serial = HashJoin(*left, "k", *right, "k", options);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();

    SetDataPlaneParallel(true);
    for (size_t threads : kThreadCounts) {
      SetNumThreads(threads);
      auto parallel = HashJoin(*left, "k", *right, "k", options);
      ASSERT_TRUE(parallel.ok());
      ExpectTablesEqual(*serial, *parallel,
                        "single-col join threads " + std::to_string(threads) +
                            (type == JoinType::kLeft ? " left" : " inner"));
    }
  }
}

// A synthetic KG with ~1500 linkable entities: enough distinct key
// values to push AssembleSlots past its parallel threshold, with mixed
// outcomes (linked / not-found / null) and a type-inferred mixed
// attribute, all of which must replay byte-identically in parallel.
TEST(QueryParallel, ExtractionHighCardinalityBitIdentical) {
  PoolGuard guard;
  TripleStore store;
  Rng rng(808);
  const size_t entities = 1500;
  for (size_t e = 0; e < entities; ++e) {
    auto id = store.AddEntity("ent_" + std::to_string(e), "Thing");
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(
        store.AddLiteral(*id, "population", Value::Double(rng.NextGaussian()))
            .ok());
    if (e % 3 != 0) {
      ASSERT_TRUE(store
                      .AddLiteral(*id, "region",
                                  Value::String("reg_" +
                                                std::to_string(e % 11)))
                      .ok());
    }
    // Mixed-type predicate: numeric for some entities, string for others
    // (the universal relation must infer kString deterministically).
    if (e % 2 == 0) {
      ASSERT_TRUE(
          store.AddLiteral(*id, "mixed", Value::Double(double(e))).ok());
    } else {
      ASSERT_TRUE(
          store.AddLiteral(*id, "mixed", Value::String("m" + std::to_string(e)))
              .ok());
    }
  }

  Column key(DataType::kString);
  for (size_t r = 0; r < 12000; ++r) {
    if (rng.NextBernoulli(0.03)) {
      key.AppendNull();
    } else if (rng.NextBernoulli(0.05)) {
      key.AppendString("missing_" + std::to_string(rng.NextBelow(100)));
    } else {
      key.AppendString("ent_" + std::to_string(rng.NextBelow(entities)));
    }
  }
  Schema schema;
  ASSERT_TRUE(schema.AddField({"key", DataType::kString}).ok());
  auto table = Table::Make(std::move(schema), {std::move(key)});
  ASSERT_TRUE(table.ok());

  ExtractionOptions options;
  SetDataPlaneParallel(false);
  SetNumThreads(1);
  ExtractionStats serial_stats;
  auto serial = ExtractAttributes(*table, "key", store, options, &serial_stats);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  EXPECT_GT(serial_stats.values_linked, 1000u)
      << "dataset failed to cross the parallel-assembly threshold";
  EXPECT_GT(serial_stats.values_not_found, 0u);

  SetDataPlaneParallel(true);
  for (size_t threads : kThreadCounts) {
    SetNumThreads(threads);
    ExtractionStats stats;
    auto parallel = ExtractAttributes(*table, "key", store, options, &stats);
    ASSERT_TRUE(parallel.ok());
    ExpectTablesEqual(*serial, *parallel,
                      "wide extraction threads " + std::to_string(threads));
    ExpectStatsEqual(serial_stats, stats);
  }
}

}  // namespace
}  // namespace mesa
