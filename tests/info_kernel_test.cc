// Tests for the MI/CMI kernel family (src/info/cmi_kernel.h): the dense
// arena and the sort-packed sparse kernel must agree *bit-for-bit* on
// every input (the canonical-cube contract), the legacy hash kernel must
// agree to ulp-level, and the packed path must unlock joint-cube sharing
// above the 20-bit dense limit where the old code recorded zero cube
// hits. Own binary: it resizes the global pool, flips the process-wide
// kernel override, and clears the process-wide cache.

#include "info/cmi_kernel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "info/info_cache.h"
#include "info/key_packing.h"
#include "info/mutual_information.h"

namespace mesa {
namespace {

// Restores the kernel override, the pool, and the cache when a test exits.
struct KernelGuard {
  ~KernelGuard() {
    SetCmiKernelMode(CmiKernel::kAuto);
    SetNumThreads(1);
    info_cache::SetEnabled(true);
    info_cache::Clear();
  }
};

CodedVariable RandomCoded(Rng& rng, size_t n, int32_t card,
                          double missing_p) {
  CodedVariable v;
  v.codes.resize(n);
  for (auto& c : v.codes) {
    c = rng.NextBernoulli(missing_p)
            ? -1
            : static_cast<int32_t>(rng.NextBelow(card));
  }
  v.cardinality = card;
  return v;
}

// One seeded dataset (odd seeds weighted, like info_cache_test.cc) pushed
// through every kernel-dispatching estimator: MI, CMI over all three
// partitions of the triple (exercising cube repacking), and a repeat call
// (exercising the scalar memo). Cardinalities alternate between small
// (dense territory) and wide (packed territory) with the seed.
std::vector<double> KernelBattery(uint64_t seed) {
  Rng rng(seed);
  const size_t n = 500 + 41 * (seed % 5);
  const bool wide = seed % 3 == 0;
  CodedVariable x = RandomCoded(rng, n, wide ? 300 : 2 + seed % 5, 0.1);
  CodedVariable y = RandomCoded(rng, n, wide ? 200 : 3 + seed % 4, 0.0);
  CodedVariable z = RandomCoded(rng, n, wide ? 50 : 2 + seed % 3, 0.05);
  std::vector<double> weights;
  const std::vector<double>* w = nullptr;
  if (seed % 2 == 1) {
    weights.resize(n);
    for (auto& wi : weights) wi = rng.NextUniform(0.5, 2.0);
    w = &weights;
  }
  EntropyOptions mm;
  mm.miller_madow = true;

  std::vector<double> out;
  out.push_back(MutualInformation(x, y, w));
  out.push_back(MutualInformation(x, y, w, mm));
  out.push_back(ConditionalMutualInformation(x, y, z, w));
  out.push_back(ConditionalMutualInformation(x, z, y, w));
  out.push_back(ConditionalMutualInformation(y, z, x, w));
  out.push_back(ConditionalMutualInformation(x, y, z, w, mm));
  out.push_back(ConditionalMutualInformation(x, y, z, w));  // memo repeat
  out.push_back(InteractionInformation(x, y, z, w));
  return out;
}

std::vector<double> BatteryWithKernel(uint64_t seed, CmiKernel kernel) {
  SetCmiKernelMode(kernel);
  // Fresh cache per arm so no arm can serve another arm's memoized value
  // (the dense and packed kernels *intentionally* share memo entries).
  info_cache::Clear();
  return KernelBattery(seed);
}

// ------------------------------------------------------- mode parsing

TEST(CmiKernelMode, ParseAndName) {
  CmiKernel k = CmiKernel::kHash;
  EXPECT_TRUE(ParseCmiKernel("auto", &k));
  EXPECT_EQ(k, CmiKernel::kAuto);
  EXPECT_TRUE(ParseCmiKernel("dense", &k));
  EXPECT_EQ(k, CmiKernel::kDense);
  EXPECT_TRUE(ParseCmiKernel("packed", &k));
  EXPECT_EQ(k, CmiKernel::kPacked);
  EXPECT_TRUE(ParseCmiKernel("hash", &k));
  EXPECT_EQ(k, CmiKernel::kHash);
  EXPECT_FALSE(ParseCmiKernel("sparse", &k));
  EXPECT_FALSE(ParseCmiKernel("", &k));
  EXPECT_EQ(k, CmiKernel::kHash);  // unchanged on parse failure
  EXPECT_STREQ(CmiKernelName(CmiKernel::kAuto), "auto");
  EXPECT_STREQ(CmiKernelName(CmiKernel::kDense), "dense");
  EXPECT_STREQ(CmiKernelName(CmiKernel::kPacked), "packed");
  EXPECT_STREQ(CmiKernelName(CmiKernel::kHash), "hash");
}

// ------------------------------------------- dense == packed, bitwise

// The canonical-cube contract: dense and packed build the *same* sparse
// cube (same entries, same per-cell addend order, same summation order),
// so every estimate is bit-identical — across 20 seeded datasets, with
// and without IPW weights, at 1, 2, and 8 threads, cache on or off.
TEST(CmiKernelProperty, DensePackedBitIdenticalAcrossSeedsAndThreads) {
  KernelGuard guard;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    SetNumThreads(1);
    info_cache::SetEnabled(false);
    const std::vector<double> reference =
        BatteryWithKernel(seed, CmiKernel::kDense);
    for (size_t threads : {1, 2, 8}) {
      SetNumThreads(threads);
      for (bool cached : {false, true}) {
        info_cache::SetEnabled(cached);
        std::vector<double> dense = BatteryWithKernel(seed, CmiKernel::kDense);
        std::vector<double> packed =
            BatteryWithKernel(seed, CmiKernel::kPacked);
        std::vector<double> aut = BatteryWithKernel(seed, CmiKernel::kAuto);
        ASSERT_EQ(reference.size(), packed.size());
        for (size_t q = 0; q < reference.size(); ++q) {
          const std::string label = "seed=" + std::to_string(seed) +
                                    " threads=" + std::to_string(threads) +
                                    " cached=" + std::to_string(cached) +
                                    " quantity=" + std::to_string(q);
          EXPECT_EQ(reference[q], dense[q]) << label << " (dense)";
          EXPECT_EQ(reference[q], packed[q]) << label << " (packed)";
          EXPECT_EQ(reference[q], aut[q]) << label << " (auto)";
        }
      }
    }
  }
}

// The legacy hash kernel visits cells in hash-map iteration order, so it
// is *not* bit-identical — but it must agree to ulp-level slack.
TEST(CmiKernelProperty, HashKernelAgreesToUlpLevel) {
  KernelGuard guard;
  SetNumThreads(1);
  info_cache::SetEnabled(false);
  for (uint64_t seed = 0; seed < 20; ++seed) {
    std::vector<double> packed = BatteryWithKernel(seed, CmiKernel::kPacked);
    std::vector<double> hash = BatteryWithKernel(seed, CmiKernel::kHash);
    ASSERT_EQ(packed.size(), hash.size());
    for (size_t q = 0; q < packed.size(); ++q) {
      const double tol =
          1e-9 * std::max({1.0, std::fabs(packed[q]), std::fabs(hash[q])});
      EXPECT_NEAR(packed[q], hash[q], tol)
          << "seed=" << seed << " quantity=" << q;
    }
  }
}

// Permuting the input rows permutes only the order in which each cell's
// count accumulates. Unweighted counts are small integers, so the cube —
// and with it every estimate — must be *bitwise* invariant under row
// permutation, on both kernels.
TEST(CmiKernelProperty, UnweightedEstimatesInvariantUnderRowPermutation) {
  KernelGuard guard;
  SetNumThreads(8);
  info_cache::SetEnabled(false);
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed * 77 + 1);
    const size_t n = 3000;
    CodedVariable x = RandomCoded(rng, n, 40, 0.1);
    CodedVariable y = RandomCoded(rng, n, 30, 0.0);
    CodedVariable z = RandomCoded(rng, n, 20, 0.05);

    std::vector<size_t> perm(n);
    for (size_t i = 0; i < n; ++i) perm[i] = i;
    for (size_t i = n; i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.NextBelow(i)]);
    }
    auto permuted = [&](const CodedVariable& v) {
      CodedVariable p = v;
      for (size_t i = 0; i < n; ++i) p.codes[i] = v.codes[perm[i]];
      p.InvalidateFingerprint();
      return p;
    };
    CodedVariable px = permuted(x), py = permuted(y), pz = permuted(z);

    for (CmiKernel kernel : {CmiKernel::kDense, CmiKernel::kPacked}) {
      SetCmiKernelMode(kernel);
      EXPECT_EQ(ConditionalMutualInformation(x, y, z),
                ConditionalMutualInformation(px, py, pz))
          << "seed=" << seed << " kernel=" << CmiKernelName(kernel);
      EXPECT_EQ(MutualInformation(x, y), MutualInformation(px, py))
          << "seed=" << seed << " kernel=" << CmiKernelName(kernel);
    }
  }
}

// --------------------------------------- cube sharing above 20 bits

// Before the packed kernel, any triple wider than the 20-bit dense arena
// fell back to the chain-rule identity and recorded *zero* cube traffic.
// Now the packed kernel materializes a canonical cube, so a cross-
// partition call over the same wide triple must land a cube hit.
TEST(CmiKernelCache, JointCubeSharedAboveDenseBitLimit) {
  KernelGuard guard;
  SetNumThreads(1);
  info_cache::SetEnabled(true);
  info_cache::Clear();

  Rng rng(4242);
  const size_t n = 4000;
  // 11 + 11 + 6 = 28 key bits: comfortably past kDenseCmiBits = 20.
  CodedVariable x = RandomCoded(rng, n, 1500, 0.0);
  CodedVariable y = RandomCoded(rng, n, 1200, 0.0);
  CodedVariable z = RandomCoded(rng, n, 40, 0.0);
  ASSERT_GT(info_internal::BitsFor(x.cardinality) +
                info_internal::BitsFor(y.cardinality) +
                info_internal::BitsFor(z.cardinality),
            info_internal::kDenseCmiBits);

  info_cache::Stats before = info_cache::GetStats();
  double first = ConditionalMutualInformation(x, y, z);
  info_cache::Stats mid = info_cache::GetStats();
  EXPECT_GT(mid.cube_misses, before.cube_misses);

  // Different partition of the same triple: served by repacking the
  // cached cube, not by a rebuild.
  double repartitioned = ConditionalMutualInformation(x, z, y);
  info_cache::Stats after = info_cache::GetStats();
  EXPECT_GT(after.cube_hits, mid.cube_hits)
      << "wide triple did not share its joint cube";
  EXPECT_GE(first, 0.0);
  EXPECT_GE(repartitioned, 0.0);

  // And the repacked answer is bitwise what a cold computation gives.
  info_cache::SetEnabled(false);
  EXPECT_EQ(repartitioned, ConditionalMutualInformation(x, z, y));

  // Wide MI shares cubes now too (it is CMI with a trivial z axis).
  info_cache::SetEnabled(true);
  info_cache::Clear();
  info_cache::Stats m0 = info_cache::GetStats();
  MutualInformation(x, y);
  MutualInformation(y, x);  // commutes onto the same cube
  info_cache::Stats m1 = info_cache::GetStats();
  EXPECT_GT(m1.cube_hits, m0.cube_hits);
}

// Forcing `dense` above the arena limit silently clamps to packed (they
// are bit-identical, so the clamp is invisible) rather than failing.
TEST(CmiKernelCache, ForcedDenseClampsToPackedAboveBitLimit) {
  KernelGuard guard;
  SetNumThreads(1);
  info_cache::SetEnabled(false);

  Rng rng(777);
  const size_t n = 3000;
  CodedVariable x = RandomCoded(rng, n, 1500, 0.0);
  CodedVariable y = RandomCoded(rng, n, 1200, 0.0);
  CodedVariable z = RandomCoded(rng, n, 40, 0.0);

  SetCmiKernelMode(CmiKernel::kPacked);
  const double packed = ConditionalMutualInformation(x, y, z);
  SetCmiKernelMode(CmiKernel::kDense);
  const double clamped = ConditionalMutualInformation(x, y, z);
  EXPECT_EQ(packed, clamped);

#if MESA_METRICS_ENABLED
  // The clamp is visible in the selection counters: a forced-dense call
  // above the limit still counts as a packed selection.
  const uint64_t packed_before = metrics::CounterValue("info/kernel_packed");
  const uint64_t dense_before = metrics::CounterValue("info/kernel_dense");
  ConditionalMutualInformation(x, y, z);
  EXPECT_EQ(metrics::CounterValue("info/kernel_packed"), packed_before + 1);
  EXPECT_EQ(metrics::CounterValue("info/kernel_dense"), dense_before);
#endif
}

#if MESA_METRICS_ENABLED
// `auto` routes by key width: narrow triples to the dense arena, wide
// ones to the packed kernel — observable in the selection counters.
TEST(CmiKernelCounters, AutoSelectsByKeyWidth) {
  KernelGuard guard;
  SetNumThreads(1);
  info_cache::SetEnabled(false);
  SetCmiKernelMode(CmiKernel::kAuto);

  Rng rng(31);
  CodedVariable nx = RandomCoded(rng, 1000, 4, 0.0);
  CodedVariable ny = RandomCoded(rng, 1000, 3, 0.0);
  CodedVariable nz = RandomCoded(rng, 1000, 3, 0.0);
  CodedVariable wx = RandomCoded(rng, 1000, 1500, 0.0);
  CodedVariable wy = RandomCoded(rng, 1000, 1200, 0.0);
  CodedVariable wz = RandomCoded(rng, 1000, 40, 0.0);

  uint64_t dense0 = metrics::CounterValue("info/kernel_dense");
  uint64_t packed0 = metrics::CounterValue("info/kernel_packed");
  ConditionalMutualInformation(nx, ny, nz);
  EXPECT_EQ(metrics::CounterValue("info/kernel_dense"), dense0 + 1);
  EXPECT_EQ(metrics::CounterValue("info/kernel_packed"), packed0);
  ConditionalMutualInformation(wx, wy, wz);
  EXPECT_EQ(metrics::CounterValue("info/kernel_packed"), packed0 + 1);

  uint64_t hash0 = metrics::CounterValue("info/kernel_hash");
  SetCmiKernelMode(CmiKernel::kHash);
  ConditionalMutualInformation(nx, ny, nz);
  EXPECT_EQ(metrics::CounterValue("info/kernel_hash"), hash0 + 1);
}
#endif  // MESA_METRICS_ENABLED

}  // namespace
}  // namespace mesa
