#include <gtest/gtest.h>

#include "table/column.h"
#include "table/schema.h"
#include "table/table.h"
#include "table/table_builder.h"
#include "table/value.h"

namespace mesa {
namespace {

// ----------------------------------------------------------------- Value

TEST(Value, NullByDefault) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), DataType::kNull);
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(Value, TypedAccessors) {
  EXPECT_EQ(Value::Int(5).int_value(), 5);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::String("x").string_value(), "x");
  EXPECT_TRUE(Value::Bool(true).bool_value());
}

TEST(Value, AsDoubleCoercions) {
  EXPECT_DOUBLE_EQ(Value::Int(3).AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(Value::Bool(true).AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(Value::Double(0.5).AsDouble(), 0.5);
}

TEST(Value, NumericCrossTypeEquality) {
  EXPECT_EQ(Value::Int(3), Value::Double(3.0));
  EXPECT_NE(Value::Int(3), Value::Double(3.5));
  // Cross-type numeric equality must hash consistently.
  EXPECT_EQ(Value::Int(3).Hash(), Value::Double(3.0).Hash());
}

TEST(Value, Ordering) {
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::Double(1.5), Value::Int(2));
  EXPECT_LT(Value::String("a"), Value::String("b"));
  EXPECT_FALSE(Value::String("b") < Value::String("a"));
}

TEST(Value, ToString) {
  EXPECT_EQ(Value::Int(-7).ToString(), "-7");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::String("abc").ToString(), "abc");
  EXPECT_EQ(Value::Double(1.5).ToString(), "1.5");
}

TEST(Value, DataTypeNames) {
  EXPECT_STREQ(DataTypeName(DataType::kInt64), "int64");
  EXPECT_STREQ(DataTypeName(DataType::kDouble), "double");
  EXPECT_STREQ(DataTypeName(DataType::kString), "string");
  EXPECT_STREQ(DataTypeName(DataType::kBool), "bool");
  EXPECT_TRUE(IsNumeric(DataType::kInt64));
  EXPECT_TRUE(IsNumeric(DataType::kDouble));
  EXPECT_FALSE(IsNumeric(DataType::kString));
}

// ---------------------------------------------------------------- Schema

TEST(Schema, AddAndLookup) {
  Schema s;
  ASSERT_TRUE(s.AddField({"a", DataType::kInt64}).ok());
  ASSERT_TRUE(s.AddField({"b", DataType::kString}).ok());
  EXPECT_EQ(s.num_fields(), 2u);
  EXPECT_EQ(s.IndexOf("b"), 1u);
  EXPECT_FALSE(s.IndexOf("c").has_value());
  EXPECT_TRUE(s.Contains("a"));
  EXPECT_EQ(s.FieldByName("a")->type, DataType::kInt64);
  EXPECT_FALSE(s.FieldByName("zzz").ok());
}

TEST(Schema, RejectsDuplicates) {
  Schema s;
  ASSERT_TRUE(s.AddField({"a", DataType::kInt64}).ok());
  EXPECT_EQ(s.AddField({"a", DataType::kDouble}).code(),
            StatusCode::kAlreadyExists);
}

TEST(Schema, ToStringAndNames) {
  Schema s({{"x", DataType::kDouble}, {"y", DataType::kString}});
  EXPECT_EQ(s.ToString(), "x:double, y:string");
  EXPECT_EQ(s.names(), (std::vector<std::string>{"x", "y"}));
}

// ---------------------------------------------------------------- Column

TEST(Column, AppendAndRead) {
  Column c(DataType::kDouble);
  c.AppendDouble(1.5);
  c.AppendNull();
  c.AppendDouble(-2.0);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.null_count(), 1u);
  EXPECT_TRUE(c.IsValid(0));
  EXPECT_TRUE(c.IsNull(1));
  EXPECT_DOUBLE_EQ(c.DoubleAt(2), -2.0);
  EXPECT_TRUE(c.GetValue(1).is_null());
  EXPECT_DOUBLE_EQ(c.GetValue(0).double_value(), 1.5);
}

TEST(Column, NullFraction) {
  Column c(DataType::kInt64);
  EXPECT_DOUBLE_EQ(c.null_fraction(), 0.0);
  c.AppendInt(1);
  c.AppendNull();
  EXPECT_DOUBLE_EQ(c.null_fraction(), 0.5);
}

TEST(Column, AppendValueTypeChecks) {
  Column c(DataType::kInt64);
  EXPECT_TRUE(c.Append(Value::Int(1)).ok());
  EXPECT_TRUE(c.Append(Value::Null()).ok());
  EXPECT_FALSE(c.Append(Value::String("x")).ok());
  EXPECT_FALSE(c.Append(Value::Double(1.5)).ok());
  // Double columns accept ints.
  Column d(DataType::kDouble);
  EXPECT_TRUE(d.Append(Value::Int(3)).ok());
  EXPECT_DOUBLE_EQ(d.DoubleAt(0), 3.0);
}

TEST(Column, SetAndSetNull) {
  Column c = Column::FromInts({1, 2, 3});
  ASSERT_TRUE(c.Set(1, Value::Int(20)).ok());
  EXPECT_EQ(c.IntAt(1), 20);
  c.SetNull(0);
  EXPECT_EQ(c.null_count(), 1u);
  // Re-setting a null slot repairs the null count.
  ASSERT_TRUE(c.Set(0, Value::Int(5)).ok());
  EXPECT_EQ(c.null_count(), 0u);
  EXPECT_FALSE(c.Set(99, Value::Int(0)).ok());
}

TEST(Column, TakeGathersAndReorders) {
  Column c = Column::FromStrings({"a", "b", "c"});
  c.AppendNull();
  Column t = c.Take({3, 0, 0, 2});
  ASSERT_EQ(t.size(), 4u);
  EXPECT_TRUE(t.IsNull(0));
  EXPECT_EQ(t.StringAt(1), "a");
  EXPECT_EQ(t.StringAt(2), "a");
  EXPECT_EQ(t.StringAt(3), "c");
}

TEST(Column, FromFactories) {
  EXPECT_EQ(Column::FromDoubles({1, 2}).type(), DataType::kDouble);
  EXPECT_EQ(Column::FromBools({1, 0}).type(), DataType::kBool);
  EXPECT_EQ(Column::FromInts({1}).size(), 1u);
}

TEST(Column, NumericAt) {
  Column b = Column::FromBools({1, 0});
  EXPECT_DOUBLE_EQ(b.NumericAt(0), 1.0);
  EXPECT_DOUBLE_EQ(b.NumericAt(1), 0.0);
}

// ----------------------------------------------------------------- Table

Table SmallTable() {
  Schema schema({{"id", DataType::kInt64},
                 {"name", DataType::kString},
                 {"score", DataType::kDouble}});
  std::vector<Column> cols;
  cols.push_back(Column::FromInts({1, 2, 3}));
  cols.push_back(Column::FromStrings({"a", "b", "c"}));
  cols.push_back(Column::FromDoubles({0.5, 1.5, 2.5}));
  return *Table::Make(std::move(schema), std::move(cols));
}

TEST(Table, MakeValidatesLengths) {
  Schema schema({{"a", DataType::kInt64}, {"b", DataType::kInt64}});
  std::vector<Column> cols;
  cols.push_back(Column::FromInts({1, 2}));
  cols.push_back(Column::FromInts({1}));
  EXPECT_FALSE(Table::Make(std::move(schema), std::move(cols)).ok());
}

TEST(Table, MakeValidatesTypes) {
  Schema schema({{"a", DataType::kDouble}});
  std::vector<Column> cols;
  cols.push_back(Column::FromInts({1}));
  EXPECT_FALSE(Table::Make(std::move(schema), std::move(cols)).ok());
}

TEST(Table, BasicAccess) {
  Table t = SmallTable();
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_EQ((*t.ColumnByName("name"))->StringAt(1), "b");
  EXPECT_FALSE(t.ColumnByName("nope").ok());
  EXPECT_EQ(t.GetCell(2, "id")->int_value(), 3);
  EXPECT_FALSE(t.GetCell(9, "id").ok());
}

TEST(Table, AddDropColumn) {
  Table t = SmallTable();
  ASSERT_TRUE(
      t.AddColumn({"flag", DataType::kBool}, Column::FromBools({1, 0, 1}))
          .ok());
  EXPECT_EQ(t.num_columns(), 4u);
  // Duplicate name rejected.
  EXPECT_FALSE(
      t.AddColumn({"flag", DataType::kBool}, Column::FromBools({1, 0, 1}))
          .ok());
  // Wrong length rejected.
  EXPECT_FALSE(
      t.AddColumn({"bad", DataType::kBool}, Column::FromBools({1})).ok());
  ASSERT_TRUE(t.DropColumn("name").ok());
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_FALSE(t.schema().Contains("name"));
  // Index map stays correct after drop.
  EXPECT_EQ(t.GetCell(0, "flag")->bool_value(), true);
  EXPECT_FALSE(t.DropColumn("name").ok());
}

TEST(Table, SelectProjects) {
  Table t = SmallTable();
  auto s = t.Select({"score", "id"});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_columns(), 2u);
  EXPECT_EQ(s->schema().field(0).name, "score");
  EXPECT_FALSE(t.Select({"ghost"}).ok());
}

TEST(Table, TakeAndFilterRows) {
  Table t = SmallTable();
  Table taken = t.TakeRows({2, 0});
  EXPECT_EQ(taken.num_rows(), 2u);
  EXPECT_EQ(taken.GetCell(0, "name")->string_value(), "c");
  Table filtered = t.FilterRows({0, 1, 1});
  EXPECT_EQ(filtered.num_rows(), 2u);
  EXPECT_EQ(filtered.GetCell(0, "id")->int_value(), 2);
}

TEST(Table, ToStringTruncates) {
  Table t = SmallTable();
  std::string s = t.ToString(1);
  EXPECT_NE(s.find("more rows"), std::string::npos);
}

// ---------------------------------------------------------- TableBuilder

TEST(TableBuilder, BuildsRows) {
  TableBuilder b(Schema({{"x", DataType::kInt64}, {"y", DataType::kString}}));
  ASSERT_TRUE(b.AppendRow({Value::Int(1), Value::String("a")}).ok());
  ASSERT_TRUE(b.AppendRow({Value::Null(), Value::String("b")}).ok());
  auto t = b.Finish();
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_TRUE(t->column(0).IsNull(1));
}

TEST(TableBuilder, RejectsArityMismatch) {
  TableBuilder b(Schema({{"x", DataType::kInt64}}));
  EXPECT_FALSE(b.AppendRow({}).ok());
  EXPECT_FALSE(b.AppendRow({Value::Int(1), Value::Int(2)}).ok());
}

TEST(TableBuilder, RejectsTypeMismatchWithoutPartialWrite) {
  TableBuilder b(Schema({{"x", DataType::kInt64}, {"y", DataType::kInt64}}));
  // Second cell bad: the row must not be half-applied.
  EXPECT_FALSE(b.AppendRow({Value::Int(1), Value::String("bad")}).ok());
  EXPECT_EQ(b.num_rows(), 0u);
  ASSERT_TRUE(b.AppendRow({Value::Int(1), Value::Int(2)}).ok());
  auto t = b.Finish();
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(t->column(0).size(), 1u);
}

}  // namespace
}  // namespace mesa
