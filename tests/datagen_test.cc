#include <gtest/gtest.h>

#include <set>

#include "datagen/common_gen.h"
#include "datagen/registry.h"

namespace mesa {
namespace {

// -------------------------------------------------------------- registry

TEST(Registry, AllKindsGenerate) {
  for (DatasetKind kind : AllDatasetKinds()) {
    GenOptions opts;
    opts.rows = 500;
    auto ds = MakeDataset(kind, opts);
    ASSERT_TRUE(ds.ok()) << DatasetKindName(kind);
    EXPECT_EQ(ds->table.num_rows(), 500u) << DatasetKindName(kind);
    EXPECT_NE(ds->kg, nullptr);
    EXPECT_GT(ds->kg->num_triples(), 0u);
    EXPECT_FALSE(ds->extraction_columns.empty());
    for (const auto& col : ds->extraction_columns) {
      EXPECT_TRUE(ds->table.schema().Contains(col))
          << DatasetKindName(kind) << " missing " << col;
    }
  }
}

TEST(Registry, DefaultSizesMatchTable1) {
  GenOptions opts;
  auto so = MakeDataset(DatasetKind::kStackOverflow, opts);
  ASSERT_TRUE(so.ok());
  EXPECT_EQ(so->table.num_rows(), 47623u);
  auto covid = MakeDataset(DatasetKind::kCovid, opts);
  ASSERT_TRUE(covid.ok());
  EXPECT_EQ(covid->table.num_rows(), 188u);
  auto forbes = MakeDataset(DatasetKind::kForbes, opts);
  ASSERT_TRUE(forbes.ok());
  EXPECT_EQ(forbes->table.num_rows(), 1647u);
}

TEST(Registry, GenerationIsDeterministic) {
  GenOptions opts;
  opts.rows = 300;
  opts.seed = 12345;
  auto a = MakeDataset(DatasetKind::kStackOverflow, opts);
  auto b = MakeDataset(DatasetKind::kStackOverflow, opts);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t r = 0; r < 300; ++r) {
    for (size_t c = 0; c < a->table.num_columns(); ++c) {
      ASSERT_EQ(a->table.column(c).GetValue(r), b->table.column(c).GetValue(r));
    }
  }
  EXPECT_EQ(a->kg->num_triples(), b->kg->num_triples());
}

TEST(Registry, DifferentSeedsDiffer) {
  GenOptions a_opts, b_opts;
  a_opts.rows = b_opts.rows = 300;
  a_opts.seed = 1;
  b_opts.seed = 2;
  auto a = MakeDataset(DatasetKind::kStackOverflow, a_opts);
  auto b = MakeDataset(DatasetKind::kStackOverflow, b_opts);
  ASSERT_TRUE(a.ok() && b.ok());
  bool any_diff = false;
  for (size_t r = 0; r < 300 && !any_diff; ++r) {
    any_diff = !(a->table.GetCell(r, "Salary")->double_value() ==
                 b->table.GetCell(r, "Salary")->double_value());
  }
  EXPECT_TRUE(any_diff);
}

TEST(Registry, FourteenCanonicalQueries) {
  size_t total = 0;
  for (DatasetKind kind : AllDatasetKinds()) {
    auto queries = CanonicalQueries(kind);
    EXPECT_FALSE(queries.empty());
    for (const auto& bq : queries) {
      EXPECT_FALSE(bq.id.empty());
      EXPECT_FALSE(bq.ground_truth.empty()) << bq.id;
      EXPECT_FALSE(bq.query.exposure.empty()) << bq.id;
    }
    total += queries.size();
  }
  EXPECT_EQ(total, 14u);  // Table 2
}

TEST(Registry, CanonicalQueriesValidateAgainstTheirDatasets) {
  for (DatasetKind kind : AllDatasetKinds()) {
    GenOptions opts;
    opts.rows = 2000;
    auto ds = MakeDataset(kind, opts);
    ASSERT_TRUE(ds.ok());
    for (const auto& bq : CanonicalQueries(kind)) {
      EXPECT_TRUE(bq.query.Validate(ds->table).ok()) << bq.id;
    }
  }
}

TEST(Registry, KgMissingRateControlsSparsity) {
  GenOptions dense, sparse;
  dense.rows = sparse.rows = 100;
  dense.kg_missing_rate = 0.0;
  sparse.kg_missing_rate = 0.6;
  auto d = MakeDataset(DatasetKind::kStackOverflow, dense);
  auto s = MakeDataset(DatasetKind::kStackOverflow, sparse);
  ASSERT_TRUE(d.ok() && s.ok());
  EXPECT_GT(d->kg->num_triples(), s->kg->num_triples());
}

// ------------------------------------------------------------ common_gen

TEST(CommonGen, CountryWorldStructure) {
  Rng rng(1);
  auto countries = BuildCountryWorld(&rng);
  EXPECT_GT(countries.size(), 80u);
  std::set<std::string> continents, names;
  size_t europe = 0;
  for (const auto& c : countries) {
    continents.insert(c.continent);
    EXPECT_TRUE(names.insert(c.name).second) << "duplicate " << c.name;
    EXPECT_GE(c.hdi, 0.2);
    EXPECT_LE(c.hdi, 0.99);
    EXPECT_GT(c.gdp, 0.0);
    EXPECT_GT(c.population, 0.0);
    EXPECT_NEAR(c.density, c.population / c.area, 1e-9);
    if (c.continent == "Europe") ++europe;
  }
  EXPECT_EQ(continents.size(), 6u);
  EXPECT_GE(europe, 25u);
}

TEST(CommonGen, EuropeHdiIsNearConstant) {
  // The premise behind SO Q3 / Table 4: within Europe HDI barely varies.
  Rng rng(2);
  auto countries = BuildCountryWorld(&rng);
  double eu_min = 1.0, eu_max = 0.0, world_min = 1.0, world_max = 0.0;
  for (const auto& c : countries) {
    world_min = std::min(world_min, c.hdi);
    world_max = std::max(world_max, c.hdi);
    if (c.continent == "Europe") {
      eu_min = std::min(eu_min, c.hdi);
      eu_max = std::max(eu_max, c.hdi);
    }
  }
  EXPECT_LT(eu_max - eu_min, 0.35 * (world_max - world_min));
}

TEST(CommonGen, CountryKgHasExpectedPredicates) {
  Rng rng(3);
  auto countries = BuildCountryWorld(&rng);
  TripleStore kg;
  SyntheticKgBuilder builder(&kg, 7);
  CountryKgOptions opts;
  opts.missing_rate = 0.0;
  PopulateCountryKg(countries, &builder, opts);
  auto preds = kg.PredicatesOfType("Country");
  std::set<std::string> set(preds.begin(), preds.end());
  for (const char* p : {"hdi", "hdi_rank", "gdp", "gdp_rank", "gini",
                        "density", "population_census", "wikiID", "type",
                        "noise_attr_0", "leader"}) {
    EXPECT_TRUE(set.count(p)) << p;
  }
  // Leader hop creates Person entities.
  EXPECT_FALSE(kg.EntitiesOfType("Person").empty());
}

TEST(CommonGen, CityAndAirlineWorlds) {
  Rng rng(4);
  auto cities = BuildCityWorld(&rng);
  auto airlines = BuildAirlineWorld(&rng);
  EXPECT_GE(cities.size(), 30u);
  EXPECT_GE(airlines.size(), 10u);
  for (const auto& c : cities) {
    EXPECT_GE(c.weather, 0.0);
    EXPECT_LE(c.weather, 1.0);
    // year_avg_f tracks year_low_f: the planted redundancy pair.
    EXPECT_GT(c.year_avg_f, c.year_low_f);
  }
  for (const auto& a : airlines) {
    EXPECT_GT(a.fleet_size, 0.0);
    EXPECT_GT(a.num_employees, 0.0);
  }
}

TEST(CommonGen, CelebrityWorldCategorySpecificFields) {
  Rng rng(5);
  auto celebs = BuildCelebrityWorld(&rng, 300);
  EXPECT_EQ(celebs.size(), 300u);
  bool saw_athlete = false;
  for (const auto& c : celebs) {
    if (c.category == "Athletes") {
      saw_athlete = true;
      EXPECT_GE(c.draft_pick, 1.0);
    } else {
      EXPECT_DOUBLE_EQ(c.cups, 0.0);
    }
  }
  EXPECT_TRUE(saw_athlete);
}

TEST(CommonGen, ForbesKgAmbiguousAlias) {
  Rng rng(6);
  auto celebs = BuildCelebrityWorld(&rng, 10);
  TripleStore kg;
  SyntheticKgBuilder builder(&kg, 8);
  PopulateForbesKg(celebs, &builder, {});
  EXPECT_GE(kg.FindByAlias("Ronaldo").size(), 2u);
}

// ------------------------------------------------ planted confounding

TEST(PlantedStructure, SoSalaryConfoundedByCountryEconomy) {
  GenOptions opts;
  opts.rows = 4000;
  auto ds = MakeDataset(DatasetKind::kStackOverflow, opts);
  ASSERT_TRUE(ds.ok());
  // Average salary differs strongly between a top and a bottom economy.
  auto by_continent = GroupByAggregate(ds->table, "Continent", "Salary",
                                       AggregateFunction::kAvg);
  ASSERT_TRUE(by_continent.ok());
  double europe = 0, africa = 0;
  for (const auto& g : by_continent->groups) {
    if (g.group.string_value() == "Europe") europe = g.aggregate;
    if (g.group.string_value() == "Africa") africa = g.aggregate;
  }
  EXPECT_GT(europe, africa * 1.5);
}

TEST(PlantedStructure, CovidDeathsFallWithSuccess) {
  GenOptions opts;
  auto ds = MakeDataset(DatasetKind::kCovid, opts);
  ASSERT_TRUE(ds.ok());
  auto by_region = GroupByAggregate(ds->table, "WHO_Region",
                                    "Deaths_per_100_cases",
                                    AggregateFunction::kAvg);
  ASSERT_TRUE(by_region.ok());
  double europe = 0, africa = 0;
  for (const auto& g : by_region->groups) {
    if (g.group.string_value() == "Europe") europe = g.aggregate;
    if (g.group.string_value() == "Africa") africa = g.aggregate;
  }
  EXPECT_GT(africa, europe);
}

TEST(PlantedStructure, FlightsDelayVariesByAirline) {
  GenOptions opts;
  opts.rows = 20000;
  auto ds = MakeDataset(DatasetKind::kFlights, opts);
  ASSERT_TRUE(ds.ok());
  auto by_airline = GroupByAggregate(ds->table, "Airline", "Departure_delay",
                                     AggregateFunction::kAvg);
  ASSERT_TRUE(by_airline.ok());
  double min_d = 1e9, max_d = -1e9;
  for (const auto& g : by_airline->groups) {
    min_d = std::min(min_d, g.aggregate);
    max_d = std::max(max_d, g.aggregate);
  }
  EXPECT_GT(max_d - min_d, 5.0);  // minutes
}

}  // namespace
}  // namespace mesa
