#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/logging.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace mesa {
namespace {

// ---------------------------------------------------------------- Status

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad column");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad column");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad column");
}

TEST(Status, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes;
  codes.insert(Status::InvalidArgument("").code());
  codes.insert(Status::NotFound("").code());
  codes.insert(Status::OutOfRange("").code());
  codes.insert(Status::FailedPrecondition("").code());
  codes.insert(Status::AlreadyExists("").code());
  codes.insert(Status::IOError("").code());
  codes.insert(Status::NotImplemented("").code());
  codes.insert(Status::Internal("").code());
  EXPECT_EQ(codes.size(), 8u);
}

TEST(Status, ReturnIfErrorMacroPropagates) {
  auto fails = [] { return Status::NotFound("x"); };
  auto wrapper = [&]() -> Status {
    MESA_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------- Result

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, ValueOrReturnsValueOnSuccess) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(Result, AssignOrReturnMacro) {
  auto ok = []() -> Result<int> { return 7; };
  auto fail = []() -> Result<int> { return Status::Internal("boom"); };
  auto chain = [&](bool use_fail) -> Result<int> {
    MESA_ASSIGN_OR_RETURN(int v, use_fail ? fail() : ok());
    return v + 1;
  };
  EXPECT_EQ(*chain(false), 8);
  EXPECT_EQ(chain(true).status().code(), StatusCode::kInternal);
}

TEST(Result, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

// A Result built from an OK Status is a contradiction: it claims failure
// while holding no error and no value. The constructor must hard-fail in
// every build mode (release included), not just under NDEBUG-off asserts.
TEST(ResultDeathTest, OkStatusIsFatalInAllBuildModes) {
  EXPECT_DEATH(
      {
        Status ok = Status::OK();
        Result<int> r(std::move(ok));
      },
      "must not be built from an OK Status");
}

// ------------------------------------------------------------------- Rng

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.NextUint64() != b.NextUint64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(9);
  for (uint64_t n : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextBelow(n), n);
  }
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  double sum = 0, sum_sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, WeightedRespectsWeights) {
  Rng rng(21);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.NextWeighted(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.25);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(23);
  auto p = rng.Permutation(100);
  std::set<size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, ShuffleKeepsMultiset) {
  Rng rng(25);
  std::vector<int> v = {1, 1, 2, 3, 5, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

// ---------------------------------------------------------- string_util

TEST(StringUtil, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtil, SplitSingleField) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtil, SplitEmptyString) {
  auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringUtil, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
}

TEST(StringUtil, ToLower) { EXPECT_EQ(ToLower("AbC-9"), "abc-9"); }

TEST(StringUtil, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(StringUtil, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("hello", "el"));
  EXPECT_TRUE(EndsWith("hello", "lo"));
  EXPECT_FALSE(EndsWith("hello", "he"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(StringUtil, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
}

TEST(StringUtil, ParseDouble) {
  double d = 0;
  EXPECT_TRUE(ParseDouble("3.25", &d));
  EXPECT_DOUBLE_EQ(d, 3.25);
  EXPECT_TRUE(ParseDouble(" -1e3 ", &d));
  EXPECT_DOUBLE_EQ(d, -1000.0);
  EXPECT_FALSE(ParseDouble("3.25x", &d));
  EXPECT_FALSE(ParseDouble("", &d));
  EXPECT_FALSE(ParseDouble("abc", &d));
}

TEST(StringUtil, ParseInt64) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_FALSE(ParseInt64("4.2", &v));
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("99999999999999999999999", &v));  // overflow
}

TEST(StringUtil, NormalizeEntityName) {
  EXPECT_EQ(NormalizeEntityName("Russian Federation"), "russian_federation");
  EXPECT_EQ(NormalizeEntityName("USA"), "usa");
  EXPECT_EQ(NormalizeEntityName("  A--B  "), "a_b");
  EXPECT_EQ(NormalizeEntityName(""), "");
}

TEST(StringUtil, EditDistance) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("", "ab"), 2u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("same", "same"), 0u);
  EXPECT_EQ(EditDistance("russia", "russian"), 1u);
}

// --------------------------------------------------------------- logging

TEST(Logging, LevelRoundTrips) {
  LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(prev);
}

}  // namespace
}  // namespace mesa
