#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "info/contingency.h"
#include "info/entropy.h"
#include "info/independence.h"
#include "info/mutual_information.h"

namespace mesa {
namespace {

CodedVariable MakeVar(std::vector<int32_t> codes, int32_t card) {
  return CodedVariable{std::move(codes), card};
}

CodedVariable Constant(size_t n) {
  CodedVariable v;
  v.codes.assign(n, 0);
  v.cardinality = 1;
  return v;
}

// ------------------------------------------------------------ contingency

TEST(Contingency, CombinePairDenseCodes) {
  CodedVariable a = MakeVar({0, 0, 1, 1, -1}, 2);
  CodedVariable b = MakeVar({0, 1, 0, 1, 0}, 2);
  CodedVariable ab = CombinePair(a, b);
  EXPECT_EQ(ab.cardinality, 4);
  EXPECT_EQ(ab.codes[4], -1);  // missing propagates
  // Distinct pairs get distinct codes.
  EXPECT_NE(ab.codes[0], ab.codes[1]);
  EXPECT_NE(ab.codes[1], ab.codes[2]);
}

TEST(Contingency, CombinePairOnlyObservedCombos) {
  // Only 2 of 4 possible pairs occur -> cardinality 2, not 4.
  CodedVariable a = MakeVar({0, 1, 0, 1}, 2);
  CodedVariable b = MakeVar({0, 1, 0, 1}, 2);
  EXPECT_EQ(CombinePair(a, b).cardinality, 2);
}

TEST(Contingency, CombineAllEmptyIsConstant) {
  CodedVariable c = CombineAll({}, 5);
  EXPECT_EQ(c.cardinality, 1);
  EXPECT_EQ(c.codes.size(), 5u);
}

TEST(Contingency, WeightedCounts) {
  CodedVariable a = MakeVar({0, 1, 1, -1}, 2);
  double total = 0;
  auto counts = WeightedCounts(a, nullptr, &total);
  EXPECT_DOUBLE_EQ(counts[0], 1);
  EXPECT_DOUBLE_EQ(counts[1], 2);
  EXPECT_DOUBLE_EQ(total, 3);
  std::vector<double> w = {0.5, 2.0, 1.0, 99.0};
  counts = WeightedCounts(a, &w, &total);
  EXPECT_DOUBLE_EQ(counts[1], 3.0);
  EXPECT_DOUBLE_EQ(total, 3.5);  // missing row's weight ignored
}

// ---------------------------------------------------------------- entropy

TEST(Entropy, UniformBinary) {
  CodedVariable v = MakeVar({0, 1, 0, 1}, 2);
  EXPECT_NEAR(Entropy(v), 1.0, 1e-12);
}

TEST(Entropy, ConstantIsZero) {
  EXPECT_DOUBLE_EQ(Entropy(Constant(10)), 0.0);
}

TEST(Entropy, SkewedBinary) {
  CodedVariable v = MakeVar({0, 0, 0, 1}, 2);
  double expected = -(0.75 * std::log2(0.75) + 0.25 * std::log2(0.25));
  EXPECT_NEAR(Entropy(v), expected, 1e-12);
}

TEST(Entropy, WeightsChangeDistribution) {
  CodedVariable v = MakeVar({0, 1}, 2);
  std::vector<double> w = {3.0, 1.0};
  double expected = -(0.75 * std::log2(0.75) + 0.25 * std::log2(0.25));
  EXPECT_NEAR(Entropy(v, &w), expected, 1e-12);
}

TEST(Entropy, MissingRowsSkipped) {
  CodedVariable v = MakeVar({0, 1, -1, -1}, 2);
  EXPECT_NEAR(Entropy(v), 1.0, 1e-12);
}

TEST(Entropy, MillerMadowAddsCorrection) {
  CodedVariable v = MakeVar({0, 1, 0, 1}, 2);
  EntropyOptions mm;
  mm.miller_madow = true;
  double corrected = Entropy(v, nullptr, mm);
  EXPECT_GT(corrected, 1.0);
  EXPECT_NEAR(corrected, 1.0 + 1.0 / (8.0 * std::log(2.0)), 1e-12);
}

TEST(Entropy, ConditionalEntropyChainRule) {
  // H(X|Y) = H(X,Y) - H(Y), and determinism -> 0.
  CodedVariable x = MakeVar({0, 0, 1, 1}, 2);
  CodedVariable y = MakeVar({0, 1, 2, 3}, 4);  // y determines x
  EXPECT_NEAR(ConditionalEntropy(x, y), 0.0, 1e-12);
  EXPECT_NEAR(ConditionalEntropy(y, x), 1.0, 1e-12);
}

// ---------------------------------------------------- mutual information

TEST(MutualInformation, IdenticalVariables) {
  CodedVariable x = MakeVar({0, 1, 2, 0, 1, 2}, 3);
  EXPECT_NEAR(MutualInformation(x, x), std::log2(3.0), 1e-12);
}

TEST(MutualInformation, IndependentUniform) {
  // Full cross product, perfectly balanced -> MI = 0 exactly.
  std::vector<int32_t> a, b;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      a.push_back(i);
      b.push_back(j);
    }
  }
  EXPECT_NEAR(MutualInformation(MakeVar(a, 4), MakeVar(b, 4)), 0.0, 1e-12);
}

TEST(MutualInformation, NeverNegative) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int32_t> a, b;
    for (int i = 0; i < 50; ++i) {
      a.push_back(static_cast<int32_t>(rng.NextBelow(4)));
      b.push_back(static_cast<int32_t>(rng.NextBelow(4)));
    }
    EXPECT_GE(MutualInformation(MakeVar(a, 4), MakeVar(b, 4)), 0.0);
  }
}

TEST(Cmi, ReducesToMiOnTrivialConditioner) {
  Rng rng(37);
  std::vector<int32_t> a, b;
  for (int i = 0; i < 300; ++i) {
    int32_t v = static_cast<int32_t>(rng.NextBelow(3));
    a.push_back(v);
    b.push_back(rng.NextBernoulli(0.7) ? v : static_cast<int32_t>(rng.NextBelow(3)));
  }
  CodedVariable x = MakeVar(a, 3), y = MakeVar(b, 3);
  double mi = MutualInformation(x, y);
  double cmi = ConditionalMutualInformation(x, y, Constant(300));
  EXPECT_NEAR(mi, cmi, 1e-9);
}

TEST(Cmi, PerfectConfounderExplainsAway) {
  // X and Y are both deterministic functions of Z -> I(X;Y|Z) = 0.
  Rng rng(41);
  std::vector<int32_t> xs, ys, zs;
  for (int i = 0; i < 500; ++i) {
    int32_t z = static_cast<int32_t>(rng.NextBelow(4));
    zs.push_back(z);
    xs.push_back(z % 2);
    ys.push_back(z / 2);
  }
  CodedVariable x = MakeVar(xs, 2), y = MakeVar(ys, 2), z = MakeVar(zs, 4);
  EXPECT_GT(MutualInformation(x, y), -1e-12);
  EXPECT_NEAR(ConditionalMutualInformation(x, y, z), 0.0, 1e-12);
}

TEST(Cmi, ConditioningOnIrrelevantKeepsDependence) {
  Rng rng(43);
  std::vector<int32_t> xs, ys, zs;
  for (int i = 0; i < 5000; ++i) {
    int32_t x = static_cast<int32_t>(rng.NextBelow(2));
    xs.push_back(x);
    ys.push_back(rng.NextBernoulli(0.9) ? x : 1 - x);
    zs.push_back(static_cast<int32_t>(rng.NextBelow(2)));  // independent
  }
  CodedVariable x = MakeVar(xs, 2), y = MakeVar(ys, 2), z = MakeVar(zs, 2);
  double mi = MutualInformation(x, y);
  double cmi = ConditionalMutualInformation(x, y, z);
  EXPECT_NEAR(cmi, mi, 0.02);
  EXPECT_GT(cmi, 0.3);
}

TEST(Cmi, PackedAndGenericPathsAgree) {
  // Force the generic path with a huge declared cardinality and compare
  // against the packed fast path on identical data.
  Rng rng(47);
  std::vector<int32_t> xs, ys, zs;
  for (int i = 0; i < 400; ++i) {
    int32_t z = static_cast<int32_t>(rng.NextBelow(5));
    zs.push_back(z);
    xs.push_back((z + static_cast<int32_t>(rng.NextBelow(2))) % 4);
    ys.push_back((z + static_cast<int32_t>(rng.NextBelow(3))) % 4);
  }
  CodedVariable x = MakeVar(xs, 4), y = MakeVar(ys, 4), z = MakeVar(zs, 5);
  double fast = ConditionalMutualInformation(x, y, z);
  CodedVariable z_wide = z;
  z_wide.cardinality = 1 << 30;  // forces bx+by+bz > 64
  CodedVariable x_wide = x;
  x_wide.cardinality = 1 << 30;
  double generic = ConditionalMutualInformation(x_wide, y, z_wide);
  EXPECT_NEAR(fast, generic, 1e-9);
}

TEST(Cmi, WeightsRespected) {
  // Down-weighting the rows that carry the dependence kills the CMI.
  std::vector<int32_t> xs = {0, 0, 1, 1, 0, 1};
  std::vector<int32_t> ys = {0, 0, 1, 1, 1, 0};
  CodedVariable x = MakeVar(xs, 2), y = MakeVar(ys, 2);
  std::vector<double> keep_dependent = {1, 1, 1, 1, 0, 0};
  double with_w =
      ConditionalMutualInformation(x, y, Constant(6), &keep_dependent);
  EXPECT_NEAR(with_w, 1.0, 1e-9);  // rows 0-3 are perfectly dependent
  double without_w = ConditionalMutualInformation(x, y, Constant(6));
  EXPECT_LT(without_w, 0.5);
}

TEST(InteractionInformation, NegativeWhenConditioningInduces) {
  // X and Z independent causes of Y (a collider): conditioning on Z can
  // only leave I(X;Y|Z) >= I(X;Y)... here we build the paper's Hobby case:
  // Y = X xor Z, so marginally I(X;Y)=0 but I(X;Y|Z)=1.
  Rng rng(59);
  std::vector<int32_t> xs, ys, zs;
  for (int i = 0; i < 4000; ++i) {
    int32_t x = static_cast<int32_t>(rng.NextBelow(2));
    int32_t z = static_cast<int32_t>(rng.NextBelow(2));
    xs.push_back(x);
    zs.push_back(z);
    ys.push_back(x ^ z);
  }
  double ii = InteractionInformation(MakeVar(xs, 2), MakeVar(ys, 2),
                                     MakeVar(zs, 2));
  EXPECT_LT(ii, -0.9);  // I(X;Y) ~ 0, I(X;Y|Z) ~ 1
}

TEST(InteractionInformation, PositiveForConfounder) {
  Rng rng(53);
  std::vector<int32_t> xs, ys, zs;
  for (int i = 0; i < 2000; ++i) {
    int32_t z = static_cast<int32_t>(rng.NextBelow(3));
    zs.push_back(z);
    xs.push_back(rng.NextBernoulli(0.85) ? z : static_cast<int32_t>(rng.NextBelow(3)));
    ys.push_back(rng.NextBernoulli(0.85) ? z : static_cast<int32_t>(rng.NextBelow(3)));
  }
  double ii = InteractionInformation(MakeVar(xs, 3), MakeVar(ys, 3),
                                     MakeVar(zs, 3));
  EXPECT_GT(ii, 0.1);
}

// Property sweep: the chain rule I(X;Y|Z) = H(X,Z)+H(Y,Z)-H(X,Y,Z)-H(Z)
// holds for random data of every shape, with and without weights.
class CmiPropertyTest : public testing::TestWithParam<
                            std::tuple<int, int, int, bool>> {};

TEST_P(CmiPropertyTest, MatchesEntropyDecomposition) {
  auto [cx, cy, cz, weighted] = GetParam();
  Rng rng(1000 + cx * 100 + cy * 10 + cz + (weighted ? 7 : 0));
  const size_t n = 600;
  std::vector<int32_t> xs, ys, zs;
  std::vector<double> w;
  for (size_t i = 0; i < n; ++i) {
    int32_t z = static_cast<int32_t>(rng.NextBelow(cz));
    zs.push_back(z);
    xs.push_back(static_cast<int32_t>((z + rng.NextBelow(cx)) % cx));
    ys.push_back(static_cast<int32_t>((z + rng.NextBelow(cy)) % cy));
    w.push_back(rng.NextUniform(0.1, 2.0));
  }
  CodedVariable x = MakeVar(xs, cx), y = MakeVar(ys, cy), z = MakeVar(zs, cz);
  const std::vector<double>* wp = weighted ? &w : nullptr;
  double cmi = ConditionalMutualInformation(x, y, z, wp);
  CodedVariable xz = CombinePair(x, z);
  CodedVariable yz = CombinePair(y, z);
  CodedVariable xyz = CombinePair(xz, y);
  double expected = Entropy(xz, wp) + Entropy(yz, wp) - Entropy(xyz, wp) -
                    Entropy(z, wp);
  EXPECT_NEAR(cmi, std::max(0.0, expected), 1e-9);
  EXPECT_GE(cmi, 0.0);
  // Symmetry in X and Y.
  EXPECT_NEAR(cmi, ConditionalMutualInformation(y, x, z, wp), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CmiPropertyTest,
    testing::Combine(testing::Values(2, 4, 9), testing::Values(2, 5),
                     testing::Values(1, 3, 8), testing::Bool()));

// ------------------------------------------------------------ independence

TEST(Independence, DetectsDependence) {
  Rng rng(61);
  std::vector<int32_t> xs, ys;
  for (int i = 0; i < 800; ++i) {
    int32_t x = static_cast<int32_t>(rng.NextBelow(3));
    xs.push_back(x);
    ys.push_back(rng.NextBernoulli(0.8) ? x : static_cast<int32_t>(rng.NextBelow(3)));
  }
  auto r = ConditionalIndependenceTest(MakeVar(xs, 3), MakeVar(ys, 3),
                                       Constant(800));
  EXPECT_FALSE(r.independent);
  EXPECT_LT(r.p_value, 0.05);
}

TEST(Independence, AcceptsIndependence) {
  Rng rng(67);
  std::vector<int32_t> xs, ys;
  for (int i = 0; i < 800; ++i) {
    xs.push_back(static_cast<int32_t>(rng.NextBelow(3)));
    ys.push_back(static_cast<int32_t>(rng.NextBelow(3)));
  }
  auto r = ConditionalIndependenceTest(MakeVar(xs, 3), MakeVar(ys, 3),
                                       Constant(800));
  EXPECT_TRUE(r.independent);
}

TEST(Independence, ConditionalIndependenceThroughConfounder) {
  // X <- Z -> Y: dependent marginally, independent given Z.
  Rng rng(71);
  std::vector<int32_t> xs, ys, zs;
  for (int i = 0; i < 3000; ++i) {
    int32_t z = static_cast<int32_t>(rng.NextBelow(2));
    zs.push_back(z);
    xs.push_back(rng.NextBernoulli(0.85) ? z : 1 - z);
    ys.push_back(rng.NextBernoulli(0.85) ? z : 1 - z);
  }
  CodedVariable x = MakeVar(xs, 2), y = MakeVar(ys, 2), z = MakeVar(zs, 2);
  auto marginal = ConditionalIndependenceTest(x, y, Constant(3000));
  EXPECT_FALSE(marginal.independent);
  auto conditional = ConditionalIndependenceTest(x, y, z);
  EXPECT_TRUE(conditional.independent);
}

TEST(Independence, EpsilonShortCircuit) {
  IndependenceOptions opts;
  opts.cmi_epsilon = 100.0;  // everything looks independent
  Rng rng(73);
  std::vector<int32_t> xs;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(static_cast<int32_t>(rng.NextBelow(2)));
  }
  CodedVariable x = MakeVar(xs, 2);
  auto r = ConditionalIndependenceTest(x, x, Constant(100), opts);
  EXPECT_TRUE(r.independent);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(Independence, GTestAgreesWithPermutationOnClearCases) {
  Rng rng(83);
  std::vector<int32_t> xs, ys, zs, ind;
  for (int i = 0; i < 2000; ++i) {
    int32_t x = static_cast<int32_t>(rng.NextBelow(3));
    xs.push_back(x);
    ys.push_back(rng.NextBernoulli(0.7) ? x : static_cast<int32_t>(rng.NextBelow(3)));
    zs.push_back(static_cast<int32_t>(rng.NextBelow(2)));
    ind.push_back(static_cast<int32_t>(rng.NextBelow(3)));
  }
  CodedVariable x = MakeVar(xs, 3), y = MakeVar(ys, 3), z = MakeVar(zs, 2),
                q = MakeVar(ind, 3);
  IndependenceOptions g;
  g.method = IndependenceMethod::kGTest;
  auto dep = ConditionalIndependenceTest(x, y, z, g);
  EXPECT_FALSE(dep.independent);
  EXPECT_LT(dep.p_value, 0.01);
  auto indep = ConditionalIndependenceTest(x, q, z, g);
  EXPECT_TRUE(indep.independent);
}

TEST(Independence, GTestCalibratedUnderNull) {
  // Under independence, the G-test p-value should be roughly uniform:
  // the rejection rate at alpha=0.05 stays near 5%.
  Rng rng(89);
  int rejections = 0;
  const int kTrials = 200;
  IndependenceOptions g;
  g.method = IndependenceMethod::kGTest;
  g.cmi_epsilon = 0.0;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<int32_t> xs, ys;
    for (int i = 0; i < 500; ++i) {
      xs.push_back(static_cast<int32_t>(rng.NextBelow(4)));
      ys.push_back(static_cast<int32_t>(rng.NextBelow(4)));
    }
    auto r = ConditionalIndependenceTest(MakeVar(xs, 4), MakeVar(ys, 4),
                                         Constant(500), g);
    rejections += r.independent ? 0 : 1;
  }
  EXPECT_LT(rejections, kTrials / 8);  // ~5% expected, allow slack
  EXPECT_GT(rejections, 0);            // but not degenerate either
}

TEST(Independence, DeterministicAcrossRuns) {
  Rng rng(79);
  std::vector<int32_t> xs, ys;
  for (int i = 0; i < 300; ++i) {
    xs.push_back(static_cast<int32_t>(rng.NextBelow(4)));
    ys.push_back(static_cast<int32_t>(rng.NextBelow(4)));
  }
  CodedVariable x = MakeVar(xs, 4), y = MakeVar(ys, 4);
  auto a = ConditionalIndependenceTest(x, y, Constant(300));
  auto b = ConditionalIndependenceTest(x, y, Constant(300));
  EXPECT_DOUBLE_EQ(a.p_value, b.p_value);
}

TEST(Independence, GoldenPValuesPinPerPermutationRngScheme) {
  // Regression goldens for the permutation RNG refactor: permutation i
  // shuffles a fresh copy of X with Rng(MixSeed(seed, i)) instead of one
  // generator mutated across the loop. Any change to the shuffle order,
  // the seed derivation, or the stratum iteration order moves these exact
  // p-values.
  Rng rng(91);
  std::vector<int32_t> xs, ys, zs;
  for (int i = 0; i < 400; ++i) {
    xs.push_back(static_cast<int32_t>(rng.NextBelow(4)));
    ys.push_back(static_cast<int32_t>(rng.NextBelow(4)));
    zs.push_back(static_cast<int32_t>(rng.NextBelow(3)));
  }
  CodedVariable x = MakeVar(xs, 4), y = MakeVar(ys, 4), z = MakeVar(zs, 3);

  IndependenceOptions opts;  // seed 0xC0FFEE, 99 permutations
  auto r = ConditionalIndependenceTest(x, y, z, opts);
  EXPECT_DOUBLE_EQ(r.cmi, 0.039858696961645679);
  EXPECT_DOUBLE_EQ(r.p_value, 0.77);
  EXPECT_TRUE(r.independent);

  opts.seed = 12345;  // different seed, different permutation set
  EXPECT_DOUBLE_EQ(ConditionalIndependenceTest(x, y, z, opts).p_value, 0.73);

  opts.seed = 0xC0FFEE;
  opts.num_permutations = 199;  // prefix property does NOT hold (p changes)
  EXPECT_DOUBLE_EQ(ConditionalIndependenceTest(x, y, z, opts).p_value, 0.76);

  // A clearly dependent pair bottoms out at the permutation floor
  // 1 / (1 + num_permutations) regardless of the RNG scheme.
  Rng rng2(61);
  std::vector<int32_t> dx, dy;
  for (int i = 0; i < 500; ++i) {
    int32_t v = static_cast<int32_t>(rng2.NextBelow(3));
    dx.push_back(v);
    dy.push_back(rng2.NextBernoulli(0.25) ? v
                                          : static_cast<int32_t>(rng2.NextBelow(3)));
  }
  std::vector<int32_t> dz;
  for (int i = 0; i < 500; ++i) {
    dz.push_back(static_cast<int32_t>(rng2.NextBelow(2)));
  }
  IndependenceOptions dopts;
  auto dep = ConditionalIndependenceTest(MakeVar(dx, 3), MakeVar(dy, 3),
                                         MakeVar(dz, 2), dopts);
  EXPECT_DOUBLE_EQ(dep.p_value, 0.01);
  EXPECT_FALSE(dep.independent);
}

// --------------------------------------- weighted information identities
//
// Property tests: the plug-in estimators must satisfy the textbook
// identities for *any* weighting (IPW reweighting is just a different
// empirical measure), on fully observed data. Miller-Madow is left off:
// its support-based correction terms do not telescope across the chain
// rule.

TEST(WeightedIdentities, RandomWeightsSatisfyIdentities) {
  Rng rng(101);
  EntropyOptions plain;
  plain.miller_madow = false;
  for (int trial = 0; trial < 25; ++trial) {
    const size_t n = 200 + rng.NextBelow(400);
    const int32_t cx = 2 + static_cast<int32_t>(rng.NextBelow(5));
    const int32_t cy = 2 + static_cast<int32_t>(rng.NextBelow(5));
    const int32_t cz = 2 + static_cast<int32_t>(rng.NextBelow(4));
    std::vector<int32_t> x, y, z;
    std::vector<double> w;
    for (size_t i = 0; i < n; ++i) {
      int32_t base = static_cast<int32_t>(rng.NextBelow(cx));
      x.push_back(base);
      // Correlate y with x half the time so MI is nontrivial.
      y.push_back(rng.NextBernoulli(0.5)
                      ? base % cy
                      : static_cast<int32_t>(rng.NextBelow(cy)));
      z.push_back(static_cast<int32_t>(rng.NextBelow(cz)));
      w.push_back(rng.NextUniform(0.1, 3.0));
    }
    CodedVariable X = MakeVar(x, cx), Y = MakeVar(y, cy), Z = MakeVar(z, cz);

    // Chain rule: H(X,Y) = H(Y) + H(X|Y).
    EXPECT_NEAR(JointEntropy(X, Y, &w, plain),
                Entropy(Y, &w, plain) + ConditionalEntropy(X, Y, &w, plain),
                1e-10);
    // Symmetry: I(X;Y) = I(Y;X).
    EXPECT_NEAR(MutualInformation(X, Y, &w, plain),
                MutualInformation(Y, X, &w, plain), 1e-10);
    // Nonnegativity: I(X;Y|Z) >= 0.
    EXPECT_GE(ConditionalMutualInformation(X, Y, Z, &w, plain), 0.0);
  }
}

TEST(WeightedIdentities, UnitWeightsMatchUnweighted) {
  Rng rng(202);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t n = 300;
    const int32_t cx = 2 + static_cast<int32_t>(rng.NextBelow(6));
    const int32_t cy = 2 + static_cast<int32_t>(rng.NextBelow(6));
    const int32_t cz = 2 + static_cast<int32_t>(rng.NextBelow(3));
    std::vector<int32_t> x, y, z;
    for (size_t i = 0; i < n; ++i) {
      x.push_back(static_cast<int32_t>(rng.NextBelow(cx)));
      y.push_back(static_cast<int32_t>(rng.NextBelow(cy)));
      z.push_back(static_cast<int32_t>(rng.NextBelow(cz)));
    }
    const std::vector<double> ones(n, 1.0);
    CodedVariable X = MakeVar(x, cx), Y = MakeVar(y, cy), Z = MakeVar(z, cz);

    // Weights of all ones ARE the unweighted estimator (both with the
    // default Miller-Madow correction and without).
    for (bool mm : {false, true}) {
      EntropyOptions opts;
      opts.miller_madow = mm;
      EXPECT_NEAR(Entropy(X, &ones, opts), Entropy(X, nullptr, opts), 1e-12);
      EXPECT_NEAR(JointEntropy(X, Y, &ones, opts),
                  JointEntropy(X, Y, nullptr, opts), 1e-12);
      EXPECT_NEAR(ConditionalEntropy(X, Y, &ones, opts),
                  ConditionalEntropy(X, Y, nullptr, opts), 1e-12);
      EXPECT_NEAR(MutualInformation(X, Y, &ones, opts),
                  MutualInformation(X, Y, nullptr, opts), 1e-12);
      EXPECT_NEAR(ConditionalMutualInformation(X, Y, Z, &ones, opts),
                  ConditionalMutualInformation(X, Y, Z, nullptr, opts),
                  1e-12);
    }
  }
}

}  // namespace
}  // namespace mesa
