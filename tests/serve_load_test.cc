// Load tests for the explain daemon (docs/performance.md §7): the
// loadgen driver fires seeded closed/open-loop workloads over TWO
// resident datasets (covid + flights) at an in-process Router and at a
// real socket, and every successful reply must be byte-identical to a
// serial oracle — at 1, 2, and 8 pool threads, with admission sheds and
// a transient fault plan in flight.
//
// The oracle is a fresh single-permit Router over the same on-disk
// files, driven one request at a time on a one-thread pool; its first
// subgroup-free reply is additionally cross-checked against a one-shot
// Mesa + FormatReport, tying the resident path to the mesa_cli path.

#include <unistd.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "core/mesa.h"
#include "core/report_format.h"
#include "datagen/registry.h"
#include "kg/serialization.h"
#include "loadgen/driver.h"
#include "loadgen/workload.h"
#include "query/sql_parser.h"
#include "serve/json.h"
#include "serve/router.h"
#include "serve/server.h"
#include "table/csv.h"

namespace mesa {
namespace loadgen {
namespace {

// The transient-only plan serve_chaos_test proves is masked completely:
// replies under it must stay byte-identical to the fault-free oracle.
constexpr char kTransientPlan[] =
    "seed=101;timeout=0.15;rate_limit=0.1;unavailable=0.05;truncate=0.05;"
    "latency=1:5";

constexpr uint64_t kWorkloadSeed = 20230707;
constexpr size_t kDistinctQueries = 6;

struct OracleReply {
  bool ok = false;
  std::string code;
  std::string report;
  std::string error;
};

// Both datasets on disk + the seeded query pool + the serial oracle,
// built once for the whole binary (each ctest test is its own process;
// PID-unique paths keep parallel ctest runs off each other's files).
class ServeLoadTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto covid = MakeDataset(DatasetKind::kCovid);
    ASSERT_TRUE(covid.ok()) << covid.status().ToString();
    GenOptions flights_gen;
    flights_gen.rows = 20000;  // plenty of load, a fraction of the 100k default.
    auto flights = MakeDataset(DatasetKind::kFlights, flights_gen);
    ASSERT_TRUE(flights.ok()) << flights.status().ToString();
    datasets_ = new std::vector<GeneratedDataset>;
    datasets_->push_back(std::move(*covid));
    datasets_->push_back(std::move(*flights));
    paths_ = new std::vector<std::pair<std::string, std::string>>;
    const std::string tag = std::to_string(::getpid());
    for (const GeneratedDataset& ds : *datasets_) {
      std::string csv =
          testing::TempDir() + "/serve_load." + tag + "." + ds.name + ".csv";
      std::string kg =
          testing::TempDir() + "/serve_load." + tag + "." + ds.name + ".kg";
      ASSERT_TRUE(WriteCsvFile(ds.table, csv).ok());
      ASSERT_TRUE(WriteKgFile(*ds.kg, kg).ok());
      paths_->emplace_back(std::move(csv), std::move(kg));
    }

    WorkloadOptions options;
    options.seed = kWorkloadSeed;
    options.distinct_queries = kDistinctQueries;
    std::vector<WorkloadDataset> pools;
    pools.push_back(MakeWorkloadDataset("covid", (*datasets_)[0].table,
                                        (*datasets_)[0].extraction_columns,
                                        {"WHO_Region"}));
    pools.push_back(MakeWorkloadDataset("flights", (*datasets_)[1].table,
                                        (*datasets_)[1].extraction_columns,
                                        {"Origin_state"}));
    auto queries = GenerateWorkload(pools, options);
    ASSERT_TRUE(queries.ok()) << queries.status().ToString();
    queries_ = new std::vector<WorkloadQuery>(std::move(*queries));

    // Serial oracle: one-thread pool, one permit, one request at a time.
    SetNumThreads(1);
    serve::RouterOptions router_options;
    router_options.max_inflight = 1;
    serve::Router router(router_options);
    BuildRouter(&router, "", /*warm=*/true);
    oracle_ = new std::vector<OracleReply>;
    for (const WorkloadQuery& query : *queries_) {
      auto reply = serve::JsonValue::Parse(
          router.Handle(query.RequestLine()).reply_line);
      ASSERT_TRUE(reply.ok());
      OracleReply expected;
      expected.ok = reply->GetBool("ok");
      expected.code = reply->GetString("code");
      expected.report = reply->GetString("report");
      expected.error = reply->GetString("error");
      oracle_->push_back(std::move(expected));
    }

    // Cross-check: the resident oracle's subgroup-free replies are the
    // one-shot library's replies, byte for byte.
    for (size_t i = 0; i < queries_->size(); ++i) {
      const WorkloadQuery& query = (*queries_)[i];
      if (!(*oracle_)[i].ok || !query.subgroups.empty()) continue;
      const size_t which = query.dataset == "covid" ? 0 : 1;
      auto table = ReadCsvFile((*paths_)[which].first);
      ASSERT_TRUE(table.ok());
      auto kg = ReadKgFile((*paths_)[which].second);
      ASSERT_TRUE(kg.ok());
      Mesa mesa(std::move(*table), &*kg,
                (*datasets_)[which].extraction_columns, MesaOptions{});
      auto parsed = ParseQuery(query.sql);
      ASSERT_TRUE(parsed.ok()) << query.sql;
      auto report = mesa.Explain(*parsed);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      EXPECT_EQ((*oracle_)[i].report, FormatReport(*report)) << query.sql;
      break;  // one cross-check ties the paths; the rest is the oracle's job.
    }
  }

  static void TearDownTestSuite() {
    for (const auto& [csv, kg] : *paths_) {
      std::remove(csv.c_str());
      std::remove(kg.c_str());
    }
    delete paths_;
    delete datasets_;
    delete queries_;
    delete oracle_;
    paths_ = nullptr;
    datasets_ = nullptr;
    queries_ = nullptr;
    oracle_ = nullptr;
  }

  static void BuildRouter(serve::Router* router, const std::string& fault_plan,
                          bool warm) {
    for (size_t i = 0; i < datasets_->size(); ++i) {
      serve::Router::DatasetSpec spec;
      spec.name = i == 0 ? "covid" : "flights";
      spec.csv_path = (*paths_)[i].first;
      spec.kg_path = (*paths_)[i].second;
      spec.extraction_columns = (*datasets_)[i].extraction_columns;
      spec.options.fault_plan = fault_plan;
      ASSERT_TRUE(router->AddDataset(spec).ok());
    }
    if (warm) {
      ASSERT_TRUE(router->WarmStart().ok());
    }
  }

  static TargetFactory RouterFactory(serve::Router* router) {
    return [router](size_t) -> Result<std::unique_ptr<RequestTarget>> {
      return std::unique_ptr<RequestTarget>(new RouterTarget(router));
    };
  }

  // Every non-shed record must match the oracle byte for byte; sheds
  // are admission outcomes, not answers, and are merely counted.
  static size_t CheckAgainstOracle(const RunResult& result) {
    size_t sheds = 0;
    for (const WorkerLog& log : result.logs) {
      for (const LatencyRecord& record : log.records) {
        if (!record.ok && record.code == "resource_exhausted") {
          ++sheds;
          continue;
        }
        const OracleReply& expected = (*oracle_)[record.query_index];
        EXPECT_EQ(record.ok, expected.ok)
            << "worker " << record.worker << " request " << record.request;
        EXPECT_EQ(record.code, expected.code);
        EXPECT_EQ(record.report, expected.report)
            << "query " << record.query_index << " reply diverged";
        EXPECT_EQ(record.error, expected.error);
      }
    }
    return sheds;
  }

  static std::vector<GeneratedDataset>* datasets_;
  static std::vector<std::pair<std::string, std::string>>* paths_;
  static std::vector<WorkloadQuery>* queries_;
  static std::vector<OracleReply>* oracle_;
};

std::vector<GeneratedDataset>* ServeLoadTest::datasets_ = nullptr;
std::vector<std::pair<std::string, std::string>>* ServeLoadTest::paths_ =
    nullptr;
std::vector<WorkloadQuery>* ServeLoadTest::queries_ = nullptr;
std::vector<OracleReply>* ServeLoadTest::oracle_ = nullptr;

// Closed loop, 8 concurrent workers, over both resident datasets: every
// reply byte-identical to the serial oracle at 1, 2, and 8 pool
// threads, and the reply fingerprint identical across thread counts.
TEST_F(ServeLoadTest, ClosedLoopMatchesSerialOracleAcrossThreadCounts) {
  DriverOptions options;
  options.mode = LoadMode::kClosed;
  options.seed = kWorkloadSeed;
  options.workers = 8;
  options.requests_per_worker = 4;
  options.capture_replies = true;

  uint64_t golden_requests = 0;
  uint64_t golden_replies = 0;
  for (size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    SetNumThreads(threads);
    serve::RouterOptions router_options;
    router_options.max_inflight = options.workers;  // capacity: no sheds.
    serve::Router router(router_options);
    BuildRouter(&router, "", /*warm=*/true);

    auto result = RunWorkload(*queries_, RouterFactory(&router), options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->attempted, 32u);
    EXPECT_EQ(result->shed, 0u);
    EXPECT_EQ(result->errors, 0u);
    EXPECT_EQ(CheckAgainstOracle(*result), 0u);
    if (golden_requests == 0) {
      golden_requests = result->request_fingerprint;
      golden_replies = result->reply_fingerprint;
    } else {
      EXPECT_EQ(result->request_fingerprint, golden_requests);
      EXPECT_EQ(result->reply_fingerprint, golden_replies);
    }
  }
  SetNumThreads(1);
}

// The acceptance-criteria run: same seed twice => identical request
// sequence AND identical reply bytes; a different seed draws a
// different schedule.
TEST_F(ServeLoadTest, SameSeedRunsAreByteIdentical) {
  SetNumThreads(2);
  serve::Router router;
  BuildRouter(&router, "", /*warm=*/true);
  DriverOptions options;
  options.mode = LoadMode::kClosed;
  options.seed = 1234;
  options.workers = 4;
  options.requests_per_worker = 4;
  options.capture_replies = true;

  auto first = RunWorkload(*queries_, RouterFactory(&router), options);
  auto second = RunWorkload(*queries_, RouterFactory(&router), options);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first->request_fingerprint, second->request_fingerprint);
  EXPECT_EQ(first->reply_fingerprint, second->reply_fingerprint);

  options.seed = 5678;
  auto other = RunWorkload(*queries_, RouterFactory(&router), options);
  ASSERT_TRUE(other.ok());
  EXPECT_NE(other->request_fingerprint, first->request_fingerprint);
  SetNumThreads(1);
}

// Open loop: seeded Poisson arrivals, replies still oracle-identical.
TEST_F(ServeLoadTest, OpenLoopMatchesSerialOracle) {
  SetNumThreads(2);
  serve::RouterOptions router_options;
  router_options.max_inflight = 8;
  serve::Router router(router_options);
  BuildRouter(&router, "", /*warm=*/true);
  DriverOptions options;
  options.mode = LoadMode::kOpen;
  options.seed = kWorkloadSeed;
  options.workers = 4;
  options.target_qps = 400.0;
  options.total_requests = 24;
  options.capture_replies = true;

  auto result = RunWorkload(*queries_, RouterFactory(&router), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->attempted, 24u);
  EXPECT_EQ(result->errors, 0u);
  EXPECT_EQ(result->shed, 0u);
  EXPECT_EQ(CheckAgainstOracle(*result), 0u);
  SetNumThreads(1);
}

// Chaos under load: a COLD router (lazy preprocess races the load), a
// transient fault plan firing during extraction, and a 2-permit
// admission cap shedding most of an 8-worker burst. The run must
// complete (no hangs), and every reply must be either byte-identical
// to the fault-free oracle or a clean resource_exhausted shed.
TEST_F(ServeLoadTest, ChaosUnderLoadNeverHangsNeverCorruptsAReply) {
  for (size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    SetNumThreads(threads);
    serve::RouterOptions router_options;
    router_options.max_inflight = 2;
    serve::Router router(router_options);
    BuildRouter(&router, kTransientPlan, /*warm=*/false);

    DriverOptions options;
    options.mode = LoadMode::kClosed;
    options.seed = kWorkloadSeed;
    options.workers = 8;
    options.requests_per_worker = 3;
    options.capture_replies = true;

    auto result = RunWorkload(*queries_, RouterFactory(&router), options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->attempted, 24u);
    EXPECT_EQ(result->errors, 0u);  // every reply: oracle-identical or shed.
    EXPECT_EQ(CheckAgainstOracle(*result), result->shed);
    EXPECT_EQ(result->ok + result->shed, result->attempted);
    // The driver's shed count is the router's own admission count.
    EXPECT_EQ(router.admission().shed(), result->shed);
  }
  SetNumThreads(1);
}

// Real-socket smoke: the same workload through a live Server and one
// serve::Client connection per worker — replies identical to the same
// oracle, proving RequestLine really is the wire format.
TEST_F(ServeLoadTest, SocketClosedLoopMatchesSerialOracle) {
  SetNumThreads(2);
  serve::RouterOptions router_options;
  router_options.max_inflight = 4;
  serve::Router router(router_options);
  BuildRouter(&router, "", /*warm=*/true);
  serve::Server server(&router);
  ASSERT_TRUE(server.Start().ok());

  DriverOptions options;
  options.mode = LoadMode::kClosed;
  options.seed = kWorkloadSeed;
  options.workers = 4;
  options.requests_per_worker = 2;
  options.capture_replies = true;
  TargetFactory factory =
      [&server](size_t) -> Result<std::unique_ptr<RequestTarget>> {
    MESA_ASSIGN_OR_RETURN(std::unique_ptr<SocketTarget> target,
                          SocketTarget::Connect(server.port()));
    return std::unique_ptr<RequestTarget>(std::move(target));
  };

  auto result = RunWorkload(*queries_, factory, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->attempted, 8u);
  EXPECT_EQ(result->errors, 0u);
  EXPECT_EQ(result->shed, 0u);
  EXPECT_EQ(CheckAgainstOracle(*result), 0u);

  server.Shutdown();
  SetNumThreads(1);
}

}  // namespace
}  // namespace loadgen
}  // namespace mesa
