#include <gtest/gtest.h>

#include "query/aggregate.h"
#include "query/group_by.h"
#include "query/join.h"
#include "query/predicate.h"
#include "query/query_spec.h"
#include "table/csv.h"

namespace mesa {
namespace {

Table People() {
  return *ReadCsvString(
      "name,country,age,salary\n"
      "ann,DE,30,100\n"
      "bob,DE,40,120\n"
      "cat,FR,35,90\n"
      "dan,FR,25,\n"
      "eve,US,50,200\n"
      "fox,,45,150\n");
}

// ------------------------------------------------------------- Condition

TEST(Condition, EqOnString) {
  Table t = People();
  Condition c{"country", CompareOp::kEq, Value::String("DE"), {}};
  EXPECT_TRUE(*EvalCondition(c, t, 0));
  EXPECT_FALSE(*EvalCondition(c, t, 2));
}

TEST(Condition, NullCellNeverMatches) {
  Table t = People();
  Condition eq{"country", CompareOp::kEq, Value::String("DE"), {}};
  EXPECT_FALSE(*EvalCondition(eq, t, 5));
  Condition ne{"country", CompareOp::kNe, Value::String("DE"), {}};
  EXPECT_FALSE(*EvalCondition(ne, t, 5));  // SQL three-valued logic
}

TEST(Condition, NumericComparisons) {
  Table t = People();
  Condition ge{"age", CompareOp::kGe, Value::Int(40), {}};
  EXPECT_FALSE(*EvalCondition(ge, t, 0));
  EXPECT_TRUE(*EvalCondition(ge, t, 1));
  Condition lt{"age", CompareOp::kLt, Value::Double(30.5), {}};
  EXPECT_TRUE(*EvalCondition(lt, t, 0));
  EXPECT_FALSE(*EvalCondition(lt, t, 2));
}

TEST(Condition, InOperator) {
  Table t = People();
  Condition in{"country",
               CompareOp::kIn,
               Value::Null(),
               {Value::String("FR"), Value::String("US")}};
  EXPECT_FALSE(*EvalCondition(in, t, 0));
  EXPECT_TRUE(*EvalCondition(in, t, 2));
  EXPECT_TRUE(*EvalCondition(in, t, 4));
}

TEST(Condition, TypeMismatchIsError) {
  Table t = People();
  Condition c{"country", CompareOp::kLt, Value::Int(3), {}};
  EXPECT_FALSE(EvalCondition(c, t, 0).ok());
}

TEST(Condition, MissingColumnIsError) {
  Table t = People();
  Condition c{"ghost", CompareOp::kEq, Value::Int(3), {}};
  EXPECT_FALSE(EvalCondition(c, t, 0).ok());
}

TEST(Condition, ToStringRendering) {
  Condition c{"country", CompareOp::kEq, Value::String("DE"), {}};
  EXPECT_EQ(c.ToString(), "country = 'DE'");
  Condition in{"x", CompareOp::kIn, Value::Null(),
               {Value::Int(1), Value::Int(2)}};
  EXPECT_EQ(in.ToString(), "x IN (1, 2)");
}

// ----------------------------------------------------------- Conjunction

TEST(Conjunction, EmptyAcceptsAll) {
  Table t = People();
  Conjunction c;
  auto mask = c.EvaluateMask(t);
  ASSERT_TRUE(mask.ok());
  for (uint8_t m : *mask) EXPECT_EQ(m, 1);
  EXPECT_EQ(c.ToString(), "TRUE");
}

TEST(Conjunction, AndSemantics) {
  Table t = People();
  Conjunction c;
  c.Add({"country", CompareOp::kEq, Value::String("DE"), {}});
  c.Add({"age", CompareOp::kGt, Value::Int(35), {}});
  auto rows = c.MatchingRows(t);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0], 1u);
}

TEST(Conjunction, RefineAndContains) {
  Conjunction base;
  base.Add({"a", CompareOp::kEq, Value::Int(1), {}});
  Conjunction refined = base.Refine({"b", CompareOp::kEq, Value::Int(2), {}});
  EXPECT_EQ(refined.size(), 2u);
  EXPECT_TRUE(refined.Contains(base));
  EXPECT_FALSE(base.Contains(refined));
}

// -------------------------------------------------------------- Aggregate

TEST(Aggregate, BasicFunctions) {
  std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(*ComputeAggregate(AggregateFunction::kAvg, v), 2.5);
  EXPECT_DOUBLE_EQ(*ComputeAggregate(AggregateFunction::kSum, v), 10.0);
  EXPECT_DOUBLE_EQ(*ComputeAggregate(AggregateFunction::kCount, v), 4.0);
  EXPECT_DOUBLE_EQ(*ComputeAggregate(AggregateFunction::kMin, v), 1.0);
  EXPECT_DOUBLE_EQ(*ComputeAggregate(AggregateFunction::kMax, v), 4.0);
  EXPECT_DOUBLE_EQ(*ComputeAggregate(AggregateFunction::kMedian, v), 2.5);
}

TEST(Aggregate, MedianOddCount) {
  EXPECT_DOUBLE_EQ(
      *ComputeAggregate(AggregateFunction::kMedian, {5, 1, 3}), 3.0);
}

TEST(Aggregate, StdDev) {
  double sd = *ComputeAggregate(AggregateFunction::kStdDev, {2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_NEAR(sd, 2.0, 1e-9);
}

TEST(Aggregate, EmptyInput) {
  EXPECT_DOUBLE_EQ(*ComputeAggregate(AggregateFunction::kCount, {}), 0.0);
  EXPECT_FALSE(ComputeAggregate(AggregateFunction::kAvg, {}).ok());
}

TEST(Aggregate, ParseNames) {
  EXPECT_EQ(*ParseAggregateFunction("AVG"), AggregateFunction::kAvg);
  EXPECT_EQ(*ParseAggregateFunction("mean"), AggregateFunction::kAvg);
  EXPECT_EQ(*ParseAggregateFunction("median"), AggregateFunction::kMedian);
  EXPECT_EQ(*ParseAggregateFunction("stddev"), AggregateFunction::kStdDev);
  EXPECT_FALSE(ParseAggregateFunction("wat").ok());
}

// ---------------------------------------------------------------- GroupBy

TEST(GroupBy, AveragePerGroup) {
  Table t = People();
  auto r = GroupByAggregate(t, "country", "salary", AggregateFunction::kAvg);
  ASSERT_TRUE(r.ok());
  // Groups sorted by value: DE, FR, US; null country and null salary rows
  // contribute nothing.
  ASSERT_EQ(r->groups.size(), 3u);
  EXPECT_EQ(r->groups[0].group.string_value(), "DE");
  EXPECT_DOUBLE_EQ(r->groups[0].aggregate, 110.0);
  EXPECT_EQ(r->groups[0].count, 2u);
  EXPECT_EQ(r->groups[1].group.string_value(), "FR");
  EXPECT_DOUBLE_EQ(r->groups[1].aggregate, 90.0);  // dan's null dropped
  EXPECT_EQ(r->groups[1].count, 1u);
  EXPECT_EQ(r->input_rows, 6u);
}

TEST(GroupBy, WithContext) {
  Table t = People();
  Conjunction ctx;
  ctx.Add({"age", CompareOp::kGe, Value::Int(35), {}});
  auto r =
      GroupByAggregate(t, "country", "salary", AggregateFunction::kCount, ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->input_rows, 4u);  // bob, cat, eve, fox
  ASSERT_EQ(r->groups.size(), 3u);
  EXPECT_DOUBLE_EQ(r->groups[0].aggregate, 1.0);  // DE: bob
}

TEST(GroupBy, RejectsStringOutcome) {
  Table t = People();
  EXPECT_FALSE(
      GroupByAggregate(t, "country", "name", AggregateFunction::kAvg).ok());
}

TEST(GroupBy, ToTable) {
  Table t = People();
  auto r = GroupByAggregate(t, "country", "salary", AggregateFunction::kAvg);
  ASSERT_TRUE(r.ok());
  auto out = r->ToTable("country", "avg_salary");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 3u);
  EXPECT_EQ(out->schema().field(1).name, "avg_salary");
}

TEST(EncodeGroups, DenseCodesWithNulls) {
  Table t = People();
  std::vector<Value> values;
  auto codes = EncodeGroups(t, "country", &values);
  ASSERT_TRUE(codes.ok());
  EXPECT_EQ(values.size(), 3u);
  EXPECT_EQ((*codes)[0], (*codes)[1]);  // both DE
  EXPECT_NE((*codes)[0], (*codes)[2]);
  EXPECT_EQ((*codes)[5], -1);  // null country
}

// ------------------------------------------------------------------- Join

TEST(HashJoin, LeftJoinKeepsUnmatched) {
  Table left = People();
  Table right = *ReadCsvString("code,gdp\nDE,3.8\nFR,2.6\n");
  auto j = HashJoin(left, "country", right, "code");
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->num_rows(), 6u);
  EXPECT_DOUBLE_EQ(j->GetCell(0, "gdp")->double_value(), 3.8);
  EXPECT_TRUE(j->GetCell(4, "gdp")->is_null());  // US unmatched
  EXPECT_TRUE(j->GetCell(5, "gdp")->is_null());  // null key
}

TEST(HashJoin, InnerJoinDropsUnmatched) {
  Table left = People();
  Table right = *ReadCsvString("code,gdp\nDE,3.8\n");
  JoinOptions opts;
  opts.type = JoinType::kInner;
  auto j = HashJoin(left, "country", right, "code", opts);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->num_rows(), 2u);
}

TEST(HashJoin, CollisionPrefix) {
  Table left = People();
  Table right = *ReadCsvString("code,age\nDE,99\n");
  auto j = HashJoin(left, "country", right, "code");
  ASSERT_TRUE(j.ok());
  EXPECT_TRUE(j->schema().Contains("right_age"));
  EXPECT_EQ(j->GetCell(0, "right_age")->int_value(), 99);
  // Original column untouched.
  EXPECT_EQ(j->GetCell(0, "age")->int_value(), 30);
}

TEST(HashJoin, DuplicateRightKeysFirstWins) {
  Table left = *ReadCsvString("k\na\n");
  Table right = *ReadCsvString("k,v\na,1\na,2\n");
  auto j = HashJoin(left, "k", right, "k");
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->num_rows(), 1u);
  EXPECT_EQ(j->GetCell(0, "v")->int_value(), 1);
}

// -------------------------------------------------------------- QuerySpec

TEST(QuerySpec, ValidateAndExecute) {
  Table t = People();
  QuerySpec q;
  q.exposure = "country";
  q.outcome = "salary";
  ASSERT_TRUE(q.Validate(t).ok());
  auto r = q.Execute(t);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->groups.size(), 3u);
}

TEST(QuerySpec, ValidationFailures) {
  Table t = People();
  QuerySpec q;
  q.exposure = "country";
  q.outcome = "country";
  EXPECT_FALSE(q.Validate(t).ok());  // same column
  q.outcome = "name";
  EXPECT_FALSE(q.Validate(t).ok());  // string outcome
  q.outcome = "salary";
  q.exposure = "ghost";
  EXPECT_FALSE(q.Validate(t).ok());  // missing exposure
  q.exposure = "country";
  q.context.Add({"ghost", CompareOp::kEq, Value::Int(1), {}});
  EXPECT_FALSE(q.Validate(t).ok());  // missing context column
}

TEST(QuerySpec, ToSql) {
  QuerySpec q;
  q.exposure = "Country";
  q.outcome = "Salary";
  q.table_name = "SO";
  q.context.Add({"Continent", CompareOp::kEq, Value::String("Europe"), {}});
  EXPECT_EQ(q.ToSql(),
            "SELECT Country, avg(Salary) FROM SO WHERE Continent = 'Europe' "
            "GROUP BY Country");
}

}  // namespace
}  // namespace mesa
