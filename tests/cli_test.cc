// End-to-end test of the mesa_cli binary: generate a world to disk, then
// explain a query from the files — the full gen -> CSV/KG -> explain round
// trip a downstream user exercises. Skipped when the binary is not found
// (e.g. when tests run from an unexpected working directory).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace mesa {
namespace {

std::string CliPath() {
  for (const char* candidate :
       {"../src/mesa_cli", "./src/mesa_cli", "build/src/mesa_cli"}) {
    std::ifstream probe(candidate);
    if (probe.good()) return candidate;
  }
  return "";
}

// Runs a command, returns exit code; stdout lands in `out_path`.
int RunCommand(const std::string& command) {
  return std::system(command.c_str());
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(MesaCli, GenExplainRoundTrip) {
  std::string cli = CliPath();
  if (cli.empty()) GTEST_SKIP() << "mesa_cli binary not found";
  std::string prefix = testing::TempDir() + "/mesa_cli_world";
  std::string out = testing::TempDir() + "/mesa_cli_out.txt";

  ASSERT_EQ(RunCommand(cli + " gen --dataset covid --out " + prefix + " > " +
                       out + " 2>&1"),
            0)
      << Slurp(out);
  std::string gen_log = Slurp(out);
  EXPECT_NE(gen_log.find(".csv"), std::string::npos);
  EXPECT_NE(gen_log.find("triples"), std::string::npos);

  ASSERT_EQ(
      RunCommand(cli + " explain --data " + prefix + ".csv --kg " + prefix +
                 ".kg --extract Country,WHO_Region --query \"SELECT "
                 "Country, avg(Deaths_per_100_cases) FROM covid GROUP BY "
                 "Country\" --subgroups WHO_Region > " +
                 out + " 2>&1"),
      0)
      << Slurp(out);
  std::string explain_log = Slurp(out);
  EXPECT_NE(explain_log.find("correlation"), std::string::npos);
  EXPECT_NE(explain_log.find("explanation"), std::string::npos);
  EXPECT_NE(explain_log.find("unexplained data groups"), std::string::npos);

  // --metrics=FILE dumps the observability snapshot as JSON.
  std::string metrics = testing::TempDir() + "/mesa_cli_metrics.json";
  ASSERT_EQ(
      RunCommand(cli + " explain --data " + prefix + ".csv --kg " + prefix +
                 ".kg --extract Country,WHO_Region --query \"SELECT "
                 "Country, avg(Deaths_per_100_cases) FROM covid GROUP BY "
                 "Country\" --metrics=" + metrics + " > " + out + " 2>&1"),
      0)
      << Slurp(out);
  std::string metrics_json = Slurp(metrics);
  ASSERT_FALSE(metrics_json.empty());
  EXPECT_EQ(metrics_json.front(), '{');
#if MESA_METRICS_ENABLED
  EXPECT_NE(metrics_json.find("\"info/cmi_evals\""), std::string::npos);
  EXPECT_NE(metrics_json.find("\"qa/single_cmi/miss\""), std::string::npos);
  EXPECT_NE(metrics_json.find("\"explain/mcimr\""), std::string::npos);
#endif
  std::remove(metrics.c_str());

  std::remove((prefix + ".csv").c_str());
  std::remove((prefix + ".kg").c_str());
  std::remove(out.c_str());
}

TEST(MesaCli, UsageAndErrorPaths) {
  std::string cli = CliPath();
  if (cli.empty()) GTEST_SKIP() << "mesa_cli binary not found";
  std::string out = testing::TempDir() + "/mesa_cli_err.txt";
  // No arguments -> usage, exit 1.
  EXPECT_NE(RunCommand(cli + " > " + out + " 2>&1"), 0);
  EXPECT_NE(Slurp(out).find("usage"), std::string::npos);
  // Unknown dataset -> exit 1.
  EXPECT_NE(RunCommand(cli + " gen --dataset nope --out /tmp/x > " + out +
                       " 2>&1"),
            0);
  // Missing file -> exit 2.
  EXPECT_NE(RunCommand(cli + " explain --data /nonexistent.csv --query "
                             "\"SELECT a, avg(b) FROM t GROUP BY a\" > " +
                       out + " 2>&1"),
            0);
  // Bad SQL -> exit 1.
  std::remove(out.c_str());
}

}  // namespace
}  // namespace mesa
