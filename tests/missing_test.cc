#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "missing/imputation.h"
#include "missing/ipw.h"
#include "missing/mask.h"
#include "missing/selection_bias.h"
#include "table/table_builder.h"

namespace mesa {
namespace {

// Builds a table where `attr` depends on a latent and `outcome` depends on
// the same latent; missingness of attr can be random or outcome-driven.
Table MakeWorld(size_t n, bool biased_missing, double missing_rate,
                uint64_t seed = 99) {
  Rng rng(seed);
  TableBuilder b(Schema({{"group", DataType::kString},
                         {"attr", DataType::kDouble},
                         {"outcome", DataType::kDouble}}));
  for (size_t i = 0; i < n; ++i) {
    double latent = rng.NextGaussian();
    std::string group = latent > 0 ? "hi" : "lo";
    double attr = latent + rng.NextGaussian(0, 0.3);
    double outcome = 2.0 * latent + rng.NextGaussian(0, 0.5);
    bool missing = biased_missing
                       ? outcome > 1.0 && rng.NextBernoulli(missing_rate * 3)
                       : rng.NextBernoulli(missing_rate);
    MESA_CHECK(b.AppendRow({Value::String(group),
                            missing ? Value::Null() : Value::Double(attr),
                            Value::Double(outcome)})
                   .ok());
  }
  return *b.Finish();
}

// ------------------------------------------------------------------ mask

TEST(Mask, MissingnessIndicator) {
  Column c(DataType::kDouble);
  c.AppendDouble(1);
  c.AppendNull();
  c.AppendDouble(2);
  auto r = MissingnessIndicator(c);
  EXPECT_EQ(r, (std::vector<uint8_t>{1, 0, 1}));
  EXPECT_NEAR(MissingFraction(c), 1.0 / 3.0, 1e-12);
}

TEST(Mask, InjectRandomMissing) {
  Table t = MakeWorld(1000, false, 0.0);
  Rng rng(1);
  auto removed = InjectMissing(&t, "attr", 0.3, RemovalMode::kRandom, &rng);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 300u);
  EXPECT_NEAR((*t.ColumnByName("attr"))->null_fraction(), 0.3, 1e-12);
}

TEST(Mask, InjectTopValuesRemovesHighest) {
  Table t = MakeWorld(1000, false, 0.0);
  // Remember the max before removal.
  const Column* col = *t.ColumnByName("attr");
  double max_before = -1e300;
  for (size_t i = 0; i < col->size(); ++i) {
    max_before = std::max(max_before, col->DoubleAt(i));
  }
  Rng rng(1);
  ASSERT_TRUE(
      InjectMissing(&t, "attr", 0.2, RemovalMode::kTopValues, &rng).ok());
  col = *t.ColumnByName("attr");
  double max_after = -1e300;
  for (size_t i = 0; i < col->size(); ++i) {
    if (col->IsValid(i)) max_after = std::max(max_after, col->DoubleAt(i));
  }
  EXPECT_LT(max_after, max_before);
}

TEST(Mask, InjectIsIncrementalOverPresentValues) {
  Table t = MakeWorld(1000, false, 0.0);
  Rng rng(1);
  ASSERT_TRUE(InjectMissing(&t, "attr", 0.5, RemovalMode::kRandom, &rng).ok());
  ASSERT_TRUE(InjectMissing(&t, "attr", 0.5, RemovalMode::kRandom, &rng).ok());
  EXPECT_NEAR((*t.ColumnByName("attr"))->null_fraction(), 0.75, 1e-12);
}

TEST(Mask, InjectErrors) {
  Table t = MakeWorld(10, false, 0.0);
  Rng rng(1);
  EXPECT_FALSE(InjectMissing(&t, "attr", 1.5, RemovalMode::kRandom, &rng).ok());
  EXPECT_FALSE(
      InjectMissing(&t, "ghost", 0.5, RemovalMode::kRandom, &rng).ok());
  EXPECT_FALSE(
      InjectMissing(&t, "group", 0.5, RemovalMode::kTopValues, &rng).ok());
}

// -------------------------------------------------------- selection bias

TEST(SelectionBias, FullyObservedNeverBiased) {
  Table t = MakeWorld(2000, false, 0.0);
  auto r = DetectSelectionBias(t, "attr", "outcome", "group");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->biased);
  EXPECT_DOUBLE_EQ(r->missing_fraction, 0.0);
}

TEST(SelectionBias, RandomMissingNotBiased) {
  Table t = MakeWorld(4000, false, 0.3);
  auto r = DetectSelectionBias(t, "attr", "outcome", "group");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->biased);
}

TEST(SelectionBias, OutcomeDrivenMissingDetected) {
  Table t = MakeWorld(4000, true, 0.3);
  auto r = DetectSelectionBias(t, "attr", "outcome", "group");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->biased);
  EXPECT_GT(r->mi_with_outcome, 0.0);
  EXPECT_LT(r->p_value_outcome, 0.05);
}

// Entity-level (blockwise) missingness: the attribute is either fully
// observed or fully missing per group — the KG extraction pattern.
Table MakeBlockwiseWorld(size_t n, bool outcome_aligned, uint64_t seed) {
  Rng rng(seed);
  const size_t kGroups = 60;
  std::vector<double> latent(kGroups);
  std::vector<uint8_t> missing(kGroups);
  for (size_t g = 0; g < kGroups; ++g) latent[g] = rng.NextGaussian();
  if (outcome_aligned) {
    // Drop the attribute for the highest-outcome third of the groups.
    std::vector<size_t> order(kGroups);
    for (size_t g = 0; g < kGroups; ++g) order[g] = g;
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return latent[a] > latent[b]; });
    for (size_t i = 0; i < kGroups / 3; ++i) missing[order[i]] = 1;
  } else {
    for (size_t g = 0; g < kGroups; ++g) {
      missing[g] = rng.NextBernoulli(1.0 / 3.0) ? 1 : 0;
    }
  }
  TableBuilder b(Schema({{"group", DataType::kString},
                         {"attr", DataType::kDouble},
                         {"outcome", DataType::kDouble}}));
  for (size_t i = 0; i < n; ++i) {
    size_t g = rng.NextBelow(kGroups);
    MESA_CHECK(b.AppendRow({Value::String("g" + std::to_string(g)),
                            missing[g] ? Value::Null()
                                       : Value::Double(latent[g]),
                            Value::Double(2.0 * latent[g] +
                                          rng.NextGaussian(0, 0.3))})
                   .ok());
  }
  return *b.Finish();
}

TEST(SelectionBias, BlockwiseOutcomeAlignedDetected) {
  Table t = MakeBlockwiseWorld(8000, /*outcome_aligned=*/true, 7);
  auto r = DetectSelectionBias(t, "attr", "outcome", "group");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->biased);
  // The block-level path reports no within-exposure dependence (R is a
  // function of the group there).
  EXPECT_DOUBLE_EQ(r->mi_given_exposure, 0.0);
}

TEST(SelectionBias, BlockwiseRandomNotDetected) {
  // Row-level tests would flag chance block alignment at 8000 rows; the
  // block-level test correctly sees ~60 exchangeable observations.
  Table t = MakeBlockwiseWorld(8000, /*outcome_aligned=*/false, 11);
  auto r = DetectSelectionBias(t, "attr", "outcome", "group");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->biased);
}

TEST(SelectionBias, MissingColumnErrors) {
  Table t = MakeWorld(100, false, 0.1);
  EXPECT_FALSE(DetectSelectionBias(t, "ghost", "outcome", "group").ok());
}

// ------------------------------------------------------------------- IPW

TEST(Ipw, FullyObservedGetsUnitWeights) {
  Table t = MakeWorld(500, false, 0.0);
  IpwOptions opts;
  opts.covariates = {"outcome"};
  auto w = ComputeIpwWeights(t, "attr", opts);
  ASSERT_TRUE(w.ok());
  EXPECT_DOUBLE_EQ(w->marginal_rate, 1.0);
  for (double x : w->weights) EXPECT_DOUBLE_EQ(x, 1.0);
}

TEST(Ipw, MissingRowsGetZeroWeight) {
  Table t = MakeWorld(2000, false, 0.3);
  IpwOptions opts;
  opts.covariates = {"outcome"};
  auto w = ComputeIpwWeights(t, "attr", opts);
  ASSERT_TRUE(w.ok());
  const Column* attr = *t.ColumnByName("attr");
  for (size_t i = 0; i < attr->size(); ++i) {
    if (attr->IsNull(i)) {
      EXPECT_DOUBLE_EQ(w->weights[i], 0.0);
    } else {
      EXPECT_GT(w->weights[i], 0.0);
    }
  }
}

TEST(Ipw, BiasedMissingnessUpweightsUnderrepresented) {
  // High-outcome rows are preferentially dropped, so surviving high-outcome
  // rows must get above-average weights.
  Table t = MakeWorld(6000, true, 0.3);
  IpwOptions opts;
  opts.covariates = {"outcome"};
  auto w = ComputeIpwWeights(t, "attr", opts);
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE(w->model_converged);
  const Column* attr = *t.ColumnByName("attr");
  const Column* outcome = *t.ColumnByName("outcome");
  double hi_sum = 0, hi_n = 0, lo_sum = 0, lo_n = 0;
  for (size_t i = 0; i < attr->size(); ++i) {
    if (attr->IsNull(i)) continue;
    if (outcome->DoubleAt(i) > 1.0) {
      hi_sum += w->weights[i];
      ++hi_n;
    } else {
      lo_sum += w->weights[i];
      ++lo_n;
    }
  }
  ASSERT_GT(hi_n, 0);
  ASSERT_GT(lo_n, 0);
  EXPECT_GT(hi_sum / hi_n, lo_sum / lo_n);
}

TEST(Ipw, RandomMissingnessWeightsNearUniform) {
  Table t = MakeWorld(6000, false, 0.3);
  IpwOptions opts;
  opts.covariates = {"outcome"};
  auto w = ComputeIpwWeights(t, "attr", opts);
  ASSERT_TRUE(w.ok());
  double sum = 0, sum_sq = 0, n = 0;
  for (double x : w->weights) {
    if (x > 0) {
      sum += x;
      sum_sq += x * x;
      ++n;
    }
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.05);
  EXPECT_LT(var, 0.02);
}

TEST(Ipw, CategoricalCovariateAccepted) {
  Table t = MakeWorld(1000, true, 0.3);
  IpwOptions opts;
  opts.covariates = {"group"};
  EXPECT_TRUE(ComputeIpwWeights(t, "attr", opts).ok());
}

TEST(Ipw, Errors) {
  Table t = MakeWorld(100, false, 0.1);
  IpwOptions no_cov;
  EXPECT_FALSE(ComputeIpwWeights(t, "attr", no_cov).ok());
  IpwOptions opts;
  opts.covariates = {"outcome"};
  EXPECT_FALSE(ComputeIpwWeights(t, "ghost", opts).ok());
}

// ------------------------------------------------------------- imputation

TEST(Imputation, MeanFillsNumeric) {
  TableBuilder b(Schema({{"x", DataType::kDouble}}));
  for (double v : {1.0, 3.0}) MESA_CHECK(b.AppendRow({Value::Double(v)}).ok());
  MESA_CHECK(b.AppendRow({Value::Null()}).ok());
  Table t = *b.Finish();
  auto n = ImputeColumn(&t, "x", ImputationStrategy::kMeanOrMode);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
  EXPECT_DOUBLE_EQ((*t.ColumnByName("x"))->DoubleAt(2), 2.0);
  EXPECT_EQ((*t.ColumnByName("x"))->null_count(), 0u);
}

TEST(Imputation, ModeFillsCategorical) {
  TableBuilder b(Schema({{"s", DataType::kString}}));
  for (const char* v : {"a", "b", "b"}) {
    MESA_CHECK(b.AppendRow({Value::String(v)}).ok());
  }
  MESA_CHECK(b.AppendRow({Value::Null()}).ok());
  Table t = *b.Finish();
  ASSERT_TRUE(ImputeColumn(&t, "s", ImputationStrategy::kMeanOrMode).ok());
  EXPECT_EQ((*t.ColumnByName("s"))->StringAt(3), "b");
}

TEST(Imputation, HotDeckDrawsObservedValues) {
  TableBuilder b(Schema({{"x", DataType::kDouble}}));
  for (double v : {1.0, 2.0}) MESA_CHECK(b.AppendRow({Value::Double(v)}).ok());
  for (int i = 0; i < 10; ++i) MESA_CHECK(b.AppendRow({Value::Null()}).ok());
  Table t = *b.Finish();
  Rng rng(5);
  ASSERT_TRUE(ImputeColumn(&t, "x", ImputationStrategy::kHotDeck, &rng).ok());
  const Column* c = *t.ColumnByName("x");
  for (size_t i = 0; i < c->size(); ++i) {
    double v = c->DoubleAt(i);
    EXPECT_TRUE(v == 1.0 || v == 2.0);
  }
}

TEST(Imputation, IntColumnGetsIntMean) {
  TableBuilder b(Schema({{"x", DataType::kInt64}}));
  for (int64_t v : {1, 4}) MESA_CHECK(b.AppendRow({Value::Int(v)}).ok());
  MESA_CHECK(b.AppendRow({Value::Null()}).ok());
  Table t = *b.Finish();
  ASSERT_TRUE(ImputeColumn(&t, "x", ImputationStrategy::kMeanOrMode).ok());
  EXPECT_EQ((*t.ColumnByName("x"))->IntAt(2), 2);  // trunc(2.5)
}

TEST(Imputation, NoNullsIsNoOp) {
  TableBuilder b(Schema({{"x", DataType::kDouble}}));
  MESA_CHECK(b.AppendRow({Value::Double(1)}).ok());
  Table t = *b.Finish();
  auto n = ImputeColumn(&t, "x", ImputationStrategy::kMeanOrMode);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
}

TEST(Imputation, Errors) {
  TableBuilder b(Schema({{"x", DataType::kDouble}}));
  MESA_CHECK(b.AppendRow({Value::Null()}).ok());
  Table t = *b.Finish();
  // Fully null column.
  EXPECT_FALSE(ImputeColumn(&t, "x", ImputationStrategy::kMeanOrMode).ok());
  // Hot deck without RNG.
  TableBuilder b2(Schema({{"x", DataType::kDouble}}));
  MESA_CHECK(b2.AppendRow({Value::Double(1)}).ok());
  MESA_CHECK(b2.AppendRow({Value::Null()}).ok());
  Table t2 = *b2.Finish();
  EXPECT_FALSE(ImputeColumn(&t2, "x", ImputationStrategy::kHotDeck).ok());
}

}  // namespace
}  // namespace mesa
