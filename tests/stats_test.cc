#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "stats/correlation.h"
#include "stats/descriptive.h"
#include "stats/discretizer.h"
#include "stats/distributions.h"
#include "stats/logistic.h"
#include "stats/ols.h"
#include "table/csv.h"

namespace mesa {
namespace {

// ------------------------------------------------------------ descriptive

TEST(Descriptive, Summarize) {
  Summary s = Summarize({1, 2, 3, 4});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 4);
  EXPECT_DOUBLE_EQ(s.variance, 1.25);
  EXPECT_EQ(Summarize({}).count, 0u);
}

TEST(Descriptive, MeanAndVariance) {
  EXPECT_DOUBLE_EQ(*Mean({2, 4}), 3.0);
  EXPECT_FALSE(Mean({}).ok());
  EXPECT_DOUBLE_EQ(*SampleVariance({2, 4, 4, 4, 5, 5, 7, 9}), 32.0 / 7.0);
  EXPECT_FALSE(SampleVariance({1}).ok());
}

TEST(Descriptive, Quantile) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(*Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(*Quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(*Quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(*Quantile(v, 0.25), 2.0);
  EXPECT_FALSE(Quantile({}, 0.5).ok());
  EXPECT_FALSE(Quantile(v, 1.5).ok());
}

TEST(Descriptive, WeightedMean) {
  EXPECT_DOUBLE_EQ(*WeightedMean({1, 3}, {1, 1}), 2.0);
  EXPECT_DOUBLE_EQ(*WeightedMean({1, 3}, {3, 1}), 1.5);
  EXPECT_FALSE(WeightedMean({1}, {1, 2}).ok());
  EXPECT_FALSE(WeightedMean({1, 2}, {0, 0}).ok());
  EXPECT_FALSE(WeightedMean({1, 2}, {-1, 2}).ok());
}

// ----------------------------------------------------------- correlation

TEST(Correlation, PearsonPerfect) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {2, 4, 6, 8};
  EXPECT_NEAR(*PearsonCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> ny = {8, 6, 4, 2};
  EXPECT_NEAR(*PearsonCorrelation(x, ny), -1.0, 1e-12);
}

TEST(Correlation, PearsonErrors) {
  EXPECT_FALSE(PearsonCorrelation({1, 2}, {1}).ok());
  EXPECT_FALSE(PearsonCorrelation({1}, {1}).ok());
  EXPECT_FALSE(PearsonCorrelation({1, 1, 1}, {1, 2, 3}).ok());
}

TEST(Correlation, RanksWithTies) {
  auto r = Ranks({10, 20, 20, 30});
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Correlation, SpearmanMonotoneNonlinear) {
  std::vector<double> x, y;
  for (int i = 1; i <= 30; ++i) {
    x.push_back(i);
    y.push_back(std::exp(0.3 * i));  // monotone, very nonlinear
  }
  EXPECT_NEAR(*SpearmanCorrelation(x, y), 1.0, 1e-12);
  // Pearson is noticeably below 1 on the same data.
  EXPECT_LT(*PearsonCorrelation(x, y), 0.9);
}

// ---------------------------------------------------------- distributions

TEST(Distributions, LogGammaMatchesFactorials) {
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(LogGamma(0.5), std::log(std::sqrt(M_PI)), 1e-10);
}

TEST(Distributions, NormalCdf) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(NormalCdf(-1.959963985), 0.025, 1e-6);
}

TEST(Distributions, IncompleteBetaBounds) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2, 3, 1.0), 1.0);
  // I_x(1,1) = x (uniform).
  EXPECT_NEAR(RegularizedIncompleteBeta(1, 1, 0.3), 0.3, 1e-10);
}

TEST(Distributions, StudentTKnownQuantiles) {
  // t = 2.228 with 10 df is the 97.5th percentile.
  EXPECT_NEAR(StudentTCdf(2.228, 10), 0.975, 5e-4);
  EXPECT_NEAR(StudentTPValueTwoSided(2.228, 10), 0.05, 1e-3);
  EXPECT_NEAR(StudentTCdf(0.0, 5), 0.5, 1e-12);
  // Large df approximates the normal.
  EXPECT_NEAR(StudentTCdf(1.96, 100000), NormalCdf(1.96), 1e-4);
}

TEST(Distributions, ChiSquaredKnownValues) {
  // P(X >= 3.841 | df=1) = 0.05.
  EXPECT_NEAR(ChiSquaredSf(3.841, 1), 0.05, 5e-4);
  EXPECT_NEAR(ChiSquaredSf(5.991, 2), 0.05, 5e-4);
  EXPECT_DOUBLE_EQ(ChiSquaredSf(0.0, 3), 1.0);
}

TEST(Distributions, GammaPMonotone) {
  double prev = 0.0;
  for (double x = 0.1; x < 10.0; x += 0.5) {
    double p = RegularizedGammaP(2.5, x);
    EXPECT_GE(p, prev);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
}

// ----------------------------------------------------------- discretizer

TEST(Discretizer, CategoricalStrings) {
  // Second column keeps the all-empty record from reading as a blank line.
  Table t = *ReadCsvString("c,k\nb,1\na,1\nb,1\n,1\n");
  auto d = DiscretizeColumn(t, "c");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->cardinality, 2);
  // Sorted order: a=0, b=1.
  EXPECT_EQ(d->codes[0], 1);
  EXPECT_EQ(d->codes[1], 0);
  EXPECT_EQ(d->codes[2], 1);
  EXPECT_EQ(d->codes[3], -1);  // null
  EXPECT_EQ(d->labels[0], "a");
}

TEST(Discretizer, LowCardinalityNumericIsCategorical) {
  Table t = *ReadCsvString("x\n1\n2\n1\n2\n3\n");
  DiscretizerOptions opts;
  opts.categorical_threshold = 10;
  auto d = DiscretizeColumn(t, "x", opts);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->cardinality, 3);
}

TEST(Discretizer, EqualWidthBins) {
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  DiscretizerOptions opts;
  opts.strategy = BinningStrategy::kEqualWidth;
  opts.num_bins = 4;
  opts.categorical_threshold = 10;
  Discretized d = DiscretizeVector(v, opts);
  EXPECT_EQ(d.cardinality, 4);
  EXPECT_EQ(d.codes[0], 0);
  EXPECT_EQ(d.codes[99], 3);
  EXPECT_EQ(d.codes[50], 2);
}

TEST(Discretizer, EqualFrequencyBinsBalanced) {
  Rng rng(5);
  std::vector<double> v;
  for (int i = 0; i < 10000; ++i) v.push_back(rng.NextGaussian());
  DiscretizerOptions opts;
  opts.strategy = BinningStrategy::kEqualFrequency;
  opts.num_bins = 8;
  opts.categorical_threshold = 10;
  Discretized d = DiscretizeVector(v, opts);
  ASSERT_EQ(d.cardinality, 8);
  std::vector<int> counts(8, 0);
  for (int32_t c : d.codes) ++counts[c];
  for (int c : counts) EXPECT_NEAR(c, 1250, 200);
}

TEST(Discretizer, SkewedDataDoesNotCrash) {
  // Heavy duplication of one value: equal-frequency cut points collapse.
  std::vector<double> v(1000, 5.0);
  for (int i = 0; i < 50; ++i) v.push_back(100.0 + i);
  DiscretizerOptions opts;
  opts.num_bins = 8;
  opts.categorical_threshold = 10;
  Discretized d = DiscretizeVector(v, opts);
  EXPECT_GE(d.cardinality, 1);
  for (int32_t c : d.codes) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, d.cardinality);
  }
}

TEST(Discretizer, ConstantColumn) {
  std::vector<double> v(100, 7.0);
  DiscretizerOptions opts;
  opts.categorical_threshold = 0;  // force numeric path
  Discretized d = DiscretizeVector(v, opts);
  EXPECT_EQ(d.cardinality, 1);
}

TEST(Discretizer, NullsStayNegative) {
  Table t = *ReadCsvString("x,k\n1.5,1\n,1\n2.5,1\n");
  auto d = DiscretizeColumn(t, "x");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->codes[1], -1);
  EXPECT_GE(d->codes[0], 0);
}

TEST(Discretizer, MissingColumnFails) {
  Table t = *ReadCsvString("x\n1\n");
  EXPECT_FALSE(DiscretizeColumn(t, "nope").ok());
}

// ------------------------------------------------------------------- OLS

TEST(Ols, RecoversCoefficients) {
  Rng rng(11);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    double a = rng.NextGaussian(), b = rng.NextGaussian();
    x.push_back({a, b});
    y.push_back(2.0 + 3.0 * a - 1.5 * b + rng.NextGaussian(0, 0.1));
  }
  auto fit = FitOls(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->coefficients[0], 2.0, 0.05);
  EXPECT_NEAR(fit->coefficients[1], 3.0, 0.05);
  EXPECT_NEAR(fit->coefficients[2], -1.5, 0.05);
  EXPECT_GT(fit->r_squared, 0.99);
  EXPECT_LT(fit->p_values[1], 1e-6);
  EXPECT_LT(fit->p_values[2], 1e-6);
}

TEST(Ols, IrrelevantFeatureHasHighPValue) {
  Rng rng(13);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 300; ++i) {
    double a = rng.NextGaussian(), junk = rng.NextGaussian();
    x.push_back({a, junk});
    y.push_back(a + rng.NextGaussian());
  }
  auto fit = FitOls(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_GT(fit->p_values[2], 0.01);
}

TEST(Ols, Errors) {
  EXPECT_FALSE(FitOls({}, {}).ok());
  EXPECT_FALSE(FitOls({{1.0}, {2.0}}, {1.0}).ok());       // length mismatch
  EXPECT_FALSE(FitOls({{1.0}, {2.0}}, {1.0, 2.0}).ok());  // n <= p
}

TEST(Ols, CholeskySolveKnownSystem) {
  // A = [[4,2],[2,3]], rhs = [10, 9] -> x = [1.5, 2].
  std::vector<double> a = {4, 2, 2, 3};
  std::vector<double> rhs = {10, 9};
  ASSERT_TRUE(CholeskySolve(a, rhs, 2));
  EXPECT_NEAR(rhs[0], 1.5, 1e-12);
  EXPECT_NEAR(rhs[1], 2.0, 1e-12);
}

TEST(Ols, CholeskyRejectsIndefinite) {
  std::vector<double> a = {1, 2, 2, 1};  // eigenvalues 3, -1
  std::vector<double> rhs = {1, 1};
  EXPECT_FALSE(CholeskySolve(a, rhs, 2));
}

// -------------------------------------------------------------- logistic

TEST(Logistic, RecoversSeparation) {
  Rng rng(17);
  std::vector<std::vector<double>> x;
  std::vector<uint8_t> y;
  for (int i = 0; i < 2000; ++i) {
    double a = rng.NextGaussian();
    double p = 1.0 / (1.0 + std::exp(-(0.5 + 2.0 * a)));
    x.push_back({a});
    y.push_back(rng.NextBernoulli(p) ? 1 : 0);
  }
  auto model = FitLogistic(x, y);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model->converged());
  EXPECT_NEAR(model->coefficients()[0], 0.5, 0.2);
  EXPECT_NEAR(model->coefficients()[1], 2.0, 0.3);
}

TEST(Logistic, PredictedProbabilitiesCalibrated) {
  Rng rng(19);
  std::vector<std::vector<double>> x;
  std::vector<uint8_t> y;
  for (int i = 0; i < 4000; ++i) {
    double a = rng.NextUniform(-2, 2);
    double p = 1.0 / (1.0 + std::exp(-a));
    x.push_back({a});
    y.push_back(rng.NextBernoulli(p) ? 1 : 0);
  }
  auto model = FitLogistic(x, y);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->PredictProbability({0.0}), 0.5, 0.05);
  EXPECT_GT(model->PredictProbability({2.0}), 0.8);
  EXPECT_LT(model->PredictProbability({-2.0}), 0.2);
}

TEST(Logistic, ImbalancedLabels) {
  Rng rng(23);
  std::vector<std::vector<double>> x;
  std::vector<uint8_t> y;
  for (int i = 0; i < 3000; ++i) {
    x.push_back({rng.NextGaussian()});
    y.push_back(rng.NextBernoulli(0.03) ? 1 : 0);
  }
  auto model = FitLogistic(x, y);
  ASSERT_TRUE(model.ok());
  // Intercept near log(0.03/0.97) ~ -3.48; slope near 0.
  EXPECT_NEAR(model->coefficients()[0], -3.48, 0.4);
  EXPECT_NEAR(model->coefficients()[1], 0.0, 0.3);
}

TEST(Logistic, SeparableDataStaysFinite) {
  // Perfectly separable: the ridge must keep coefficients bounded.
  std::vector<std::vector<double>> x;
  std::vector<uint8_t> y;
  for (int i = 0; i < 100; ++i) {
    double a = i < 50 ? -1.0 - i * 0.01 : 1.0 + i * 0.01;
    x.push_back({a});
    y.push_back(i < 50 ? 0 : 1);
  }
  auto model = FitLogistic(x, y);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(std::isfinite(model->coefficients()[1]));
}

TEST(Logistic, Errors) {
  EXPECT_FALSE(FitLogistic({}, {}).ok());
  EXPECT_FALSE(FitLogistic({{1.0}}, {1, 0}).ok());
}

}  // namespace
}  // namespace mesa
