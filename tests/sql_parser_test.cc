#include <gtest/gtest.h>

#include "query/sql_parser.h"

namespace mesa {
namespace {

TEST(SqlParser, MinimalQuery) {
  auto q = ParseQuery("SELECT Country, avg(Salary) FROM SO GROUP BY Country");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->exposure, "Country");
  EXPECT_EQ(q->outcome, "Salary");
  EXPECT_EQ(q->aggregate, AggregateFunction::kAvg);
  EXPECT_EQ(q->table_name, "SO");
  EXPECT_TRUE(q->context.empty());
}

TEST(SqlParser, SelectItemsInEitherOrder) {
  auto q = ParseQuery("SELECT max(Delay), City FROM F GROUP BY City");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->exposure, "City");
  EXPECT_EQ(q->outcome, "Delay");
  EXPECT_EQ(q->aggregate, AggregateFunction::kMax);
}

TEST(SqlParser, KeywordsCaseInsensitive) {
  auto q = ParseQuery("select Country, AVG(Salary) from SO group by Country");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->exposure, "Country");
}

TEST(SqlParser, WhereSingleCondition) {
  auto q = ParseQuery(
      "SELECT Country, avg(Salary) FROM SO WHERE Continent = 'Europe' "
      "GROUP BY Country");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->context.size(), 1u);
  EXPECT_EQ(q->context.conditions()[0].column, "Continent");
  EXPECT_EQ(q->context.conditions()[0].op, CompareOp::kEq);
  EXPECT_EQ(q->context.conditions()[0].value.string_value(), "Europe");
}

TEST(SqlParser, BareWordLiteralAsInPaper) {
  // The paper writes `WHERE Continent = Europe` without quotes.
  auto q = ParseQuery(
      "SELECT Country, avg(Salary) FROM SO WHERE Continent = Europe "
      "GROUP BY Country");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->context.conditions()[0].value.string_value(), "Europe");
}

TEST(SqlParser, WhereConjunction) {
  auto q = ParseQuery(
      "SELECT City, avg(Delay) FROM F WHERE State = 'CA' AND Month >= 6 AND "
      "Cancelled = false GROUP BY City");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->context.size(), 3u);
  EXPECT_EQ(q->context.conditions()[1].op, CompareOp::kGe);
  EXPECT_EQ(q->context.conditions()[1].value.int_value(), 6);
  EXPECT_EQ(q->context.conditions()[2].value.bool_value(), false);
}

TEST(SqlParser, AllComparisonOperators) {
  for (const char* op : {"=", "!=", "<>", "<", "<=", ">", ">="}) {
    std::string sql = std::string("SELECT a, avg(b) FROM t WHERE c ") + op +
                      " 1 GROUP BY a";
    EXPECT_TRUE(ParseQuery(sql).ok()) << op;
  }
}

TEST(SqlParser, InList) {
  auto q = ParseQuery(
      "SELECT a, avg(b) FROM t WHERE c IN ('x', 'y', 3) GROUP BY a");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->context.conditions()[0].in_values.size(), 3u);
  EXPECT_EQ(q->context.conditions()[0].op, CompareOp::kIn);
}

TEST(SqlParser, NumericLiterals) {
  auto q = ParseQuery(
      "SELECT a, avg(b) FROM t WHERE c > -2.5e2 GROUP BY a");
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(q->context.conditions()[0].value.double_value(), -250.0);
}

TEST(SqlParser, QuotedIdentifiers) {
  auto q = ParseQuery(
      "SELECT \"My Column\", avg(\"Other Col\") FROM t GROUP BY \"My Column\"");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->exposure, "My Column");
  EXPECT_EQ(q->outcome, "Other Col");
}

TEST(SqlParser, EscapedStringQuote) {
  auto q = ParseQuery(
      "SELECT a, avg(b) FROM t WHERE c = 'O''Brien' GROUP BY a");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->context.conditions()[0].value.string_value(), "O'Brien");
}

TEST(SqlParser, TrailingSemicolonAllowed) {
  EXPECT_TRUE(ParseQuery("SELECT a, avg(b) FROM t GROUP BY a;").ok());
}

TEST(SqlParser, GroupByMustMatchSelect) {
  auto q = ParseQuery("SELECT a, avg(b) FROM t GROUP BY c");
  EXPECT_FALSE(q.ok());
}

TEST(SqlParser, ErrorsCarryPosition) {
  auto q = ParseQuery("SELECT a avg(b) FROM t GROUP BY a");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("byte"), std::string::npos);
}

TEST(SqlParser, RejectsGarbage) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("DELETE FROM t").ok());
  EXPECT_FALSE(ParseQuery("SELECT a, b FROM t GROUP BY a").ok());
  EXPECT_FALSE(ParseQuery("SELECT avg(a), sum(b) FROM t GROUP BY a").ok());
  EXPECT_FALSE(ParseQuery("SELECT a, avg(b) FROM t GROUP BY a extra").ok());
  EXPECT_FALSE(ParseQuery("SELECT a, avg(b FROM t GROUP BY a").ok());
  EXPECT_FALSE(
      ParseQuery("SELECT a, avg(b) FROM t WHERE c = 'unterminated GROUP BY a")
          .ok());
  EXPECT_FALSE(ParseQuery("SELECT a, wat(b) FROM t GROUP BY a").ok());
}

TEST(SqlParser, RoundTripWithToSql) {
  auto q = ParseQuery(
      "SELECT Country, avg(Salary) FROM SO WHERE Continent = 'Europe' "
      "GROUP BY Country");
  ASSERT_TRUE(q.ok());
  auto q2 = ParseQuery(q->ToSql());
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->exposure, q->exposure);
  EXPECT_EQ(q2->outcome, q->outcome);
  EXPECT_EQ(q2->context.ToString(), q->context.ToString());
}

}  // namespace
}  // namespace mesa
