// Tests for the sufficient-statistics cache (src/info/info_cache.h) and
// its building blocks: the sharded LRU map, content fingerprints, and —
// the load-bearing property — that every estimator returns *bit-identical*
// results with the cache on and off, across seeded datasets and at 1, 2,
// and 8 threads. Own binary: these tests resize both the global thread
// pool and the process-wide cache, which is cleanest in isolation.

#include "info/info_cache.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/lru_cache.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/mesa.h"
#include "datagen/registry.h"
#include "info/entropy.h"
#include "info/independence.h"
#include "info/mutual_information.h"
#include "stats/discretizer.h"

namespace mesa {
namespace {

// Production-default budgets (mirrors info_cache.cc): used to restore the
// global cache after capacity tests.
constexpr uint64_t kScalarBudget = 1 << 16;
constexpr uint64_t kCubeBudget = uint64_t{4} << 20;

void ResetCache() {
  info_cache::SetEnabled(true);
  info_cache::SetCapacityForTest(kScalarBudget, kCubeBudget);
}

// ------------------------------------------------------ ShardedLruCache

// All keys multiples of 16 land in one shard, making eviction order
// observable.
constexpr uint64_t K(uint64_t i) { return i * 16; }

TEST(ShardedLruCache, InsertAndLookup) {
  ShardedLruCache<int> cache(8);
  int v = 0;
  EXPECT_FALSE(cache.Lookup(K(1), &v));
  cache.Insert(K(1), 42, 1);
  ASSERT_TRUE(cache.Lookup(K(1), &v));
  EXPECT_EQ(v, 42);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.cost(), 1u);
}

TEST(ShardedLruCache, EvictsLeastRecentlyUsed) {
  ShardedLruCache<int> cache(3);
  cache.Insert(K(1), 1, 1);
  cache.Insert(K(2), 2, 1);
  cache.Insert(K(3), 3, 1);
  int v = 0;
  // Touch K(1) so K(2) is now the least recently used.
  ASSERT_TRUE(cache.Lookup(K(1), &v));
  cache.Insert(K(4), 4, 1);
  EXPECT_FALSE(cache.Lookup(K(2), &v));
  EXPECT_TRUE(cache.Lookup(K(1), &v));
  EXPECT_TRUE(cache.Lookup(K(3), &v));
  EXPECT_TRUE(cache.Lookup(K(4), &v));
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(ShardedLruCache, EvictsByCostNotCount) {
  ShardedLruCache<int> cache(10);
  cache.Insert(K(1), 1, 4);
  cache.Insert(K(2), 2, 4);
  // Cost 8 held; a cost-7 entry must evict both to fit (4 + 7 > 10).
  cache.Insert(K(3), 3, 7);
  int v = 0;
  EXPECT_FALSE(cache.Lookup(K(1), &v));
  EXPECT_FALSE(cache.Lookup(K(2), &v));
  EXPECT_TRUE(cache.Lookup(K(3), &v));
  EXPECT_EQ(cache.cost(), 7u);
  EXPECT_EQ(cache.evictions(), 2u);
}

TEST(ShardedLruCache, FillsToExactBudgetWithOneEviction) {
  ShardedLruCache<int> cache(10);
  cache.Insert(K(1), 1, 4);
  cache.Insert(K(2), 2, 4);
  // 4 + 6 lands exactly on the budget: only the LRU entry goes.
  cache.Insert(K(3), 3, 6);
  int v = 0;
  EXPECT_FALSE(cache.Lookup(K(1), &v));
  EXPECT_TRUE(cache.Lookup(K(2), &v));
  EXPECT_TRUE(cache.Lookup(K(3), &v));
  EXPECT_EQ(cache.cost(), 10u);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(ShardedLruCache, DeclinesEntryLargerThanBudget) {
  ShardedLruCache<int> cache(4);
  cache.Insert(K(1), 1, 1);
  cache.Insert(K(2), 2, 100);  // would never fit: not admitted
  int v = 0;
  EXPECT_FALSE(cache.Lookup(K(2), &v));
  EXPECT_TRUE(cache.Lookup(K(1), &v));  // and nothing was evicted for it
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(ShardedLruCache, ReinsertRefreshesRecencyKeepsFirstValue) {
  ShardedLruCache<int> cache(2);
  cache.Insert(K(1), 1, 1);
  cache.Insert(K(2), 2, 1);
  cache.Insert(K(1), 99, 1);  // refresh, not replace
  cache.Insert(K(3), 3, 1);   // evicts K(2), the LRU
  int v = 0;
  ASSERT_TRUE(cache.Lookup(K(1), &v));
  EXPECT_EQ(v, 1);
  EXPECT_FALSE(cache.Lookup(K(2), &v));
}

TEST(ShardedLruCache, ClearDropsEntriesKeepsStats) {
  ShardedLruCache<int> cache(1);
  cache.Insert(K(1), 1, 1);
  cache.Insert(K(2), 2, 1);  // evicts K(1)
  EXPECT_EQ(cache.evictions(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.cost(), 0u);
  EXPECT_EQ(cache.evictions(), 1u);
  int v = 0;
  EXPECT_FALSE(cache.Lookup(K(2), &v));
}

// ------------------------------------------------------- fingerprints

TEST(CodedFingerprint, ContentAddressedAndInvalidatable) {
  Rng rng(7);
  CodedVariable a;
  a.codes.resize(1000);
  for (auto& c : a.codes) c = static_cast<int32_t>(rng.NextBelow(5));
  a.cardinality = 5;
  CodedVariable b = a;  // copy resets the memo; content is equal
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  uint64_t before = a.fingerprint();
  a.codes[0] = (a.codes[0] + 1) % 5;
  a.InvalidateFingerprint();
  EXPECT_NE(a.fingerprint(), before);

  // Same content again hashes back to the original value.
  a.codes[0] = b.codes[0];
  a.InvalidateFingerprint();
  EXPECT_EQ(a.fingerprint(), before);

  // Cardinality is part of the identity (it changes the key layout).
  CodedVariable c = b;
  c.cardinality = 6;
  EXPECT_NE(c.fingerprint(), b.fingerprint());
}

// ------------------------------------------- cached == uncached property

CodedVariable RandomCoded(Rng& rng, size_t n, int32_t card,
                          double missing_p) {
  CodedVariable v;
  v.codes.resize(n);
  for (auto& c : v.codes) {
    c = rng.NextBernoulli(missing_p)
            ? -1
            : static_cast<int32_t>(rng.NextBelow(card));
  }
  v.cardinality = card;
  return v;
}

// Every estimator the system uses, over one seeded dataset, including
// the cross-partition CMI calls that exercise cube repacking and the
// permutation CI test that exercises the thread pool + fingerprint
// invalidation of its scratch variable.
std::vector<double> EstimatorBattery(uint64_t seed) {
  Rng rng(seed);
  const size_t n = 400 + 37 * (seed % 7);
  CodedVariable x = RandomCoded(rng, n, 2 + seed % 5, 0.1);
  CodedVariable y = RandomCoded(rng, n, 3 + seed % 4, 0.0);
  CodedVariable z = RandomCoded(rng, n, 2 + seed % 3, 0.05);
  std::vector<double> weights;
  const std::vector<double>* w = nullptr;
  if (seed % 2 == 1) {
    weights.resize(n);
    for (auto& wi : weights) wi = rng.NextUniform(0.5, 2.0);
    w = &weights;
  }
  EntropyOptions mm;
  mm.miller_madow = true;
  IndependenceOptions ind;
  ind.num_permutations = 30;

  std::vector<double> out;
  out.push_back(Entropy(x, w));
  out.push_back(Entropy(x, w, mm));
  out.push_back(ConditionalEntropy(x, y, w));
  out.push_back(MutualInformation(x, y, w));
  out.push_back(ConditionalMutualInformation(x, y, z, w));
  // Cross-partition calls over the same triple: cube reuse by repacking.
  out.push_back(ConditionalMutualInformation(x, z, y, w));
  out.push_back(ConditionalMutualInformation(y, z, x, w));
  // Exact repeats: scalar memo hits.
  out.push_back(ConditionalMutualInformation(x, y, z, w));
  out.push_back(MutualInformation(x, y, w));
  out.push_back(InteractionInformation(x, y, z, w));
  IndependenceResult ci = ConditionalIndependenceTest(x, y, z, ind);
  out.push_back(ci.cmi);
  out.push_back(ci.p_value);
  return out;
}

TEST(InfoCacheProperty, CachedBitIdenticalToUncachedAcrossSeedsAndThreads) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    info_cache::SetEnabled(false);
    SetNumThreads(1);
    const std::vector<double> reference = EstimatorBattery(seed);
    for (size_t threads : {1, 2, 8}) {
      SetNumThreads(threads);
      // Cold cache and warm cache must both match the uncached result.
      ResetCache();
      std::vector<double> cold = EstimatorBattery(seed);
      std::vector<double> warm = EstimatorBattery(seed);
      info_cache::SetEnabled(false);
      std::vector<double> off = EstimatorBattery(seed);
      ASSERT_EQ(reference.size(), cold.size());
      for (size_t q = 0; q < reference.size(); ++q) {
        const std::string label = "seed=" + std::to_string(seed) +
                                  " threads=" + std::to_string(threads) +
                                  " quantity=" + std::to_string(q);
        EXPECT_EQ(reference[q], cold[q]) << label << " (cold cache)";
        EXPECT_EQ(reference[q], warm[q]) << label << " (warm cache)";
        EXPECT_EQ(reference[q], off[q]) << label << " (cache off)";
      }
    }
  }
  SetNumThreads(1);
  ResetCache();
}

// Under a tiny capacity the cache thrashes — constant evictions — and
// results must still be exactly the uncached values (eviction affects hit
// rates, never correctness).
TEST(InfoCacheProperty, EvictionPressureNeverChangesResults) {
  info_cache::SetEnabled(false);
  SetNumThreads(1);
  std::vector<std::vector<double>> reference;
  for (uint64_t seed = 0; seed < 6; ++seed) {
    reference.push_back(EstimatorBattery(seed));
  }
  info_cache::SetEnabled(true);
  info_cache::SetCapacityForTest(/*scalar_entries=*/2, /*cube_cells=*/64);
  for (int round = 0; round < 2; ++round) {
    for (uint64_t seed = 0; seed < 6; ++seed) {
      std::vector<double> got = EstimatorBattery(seed);
      ASSERT_EQ(reference[seed].size(), got.size());
      for (size_t q = 0; q < got.size(); ++q) {
        EXPECT_EQ(reference[seed][q], got[q])
            << "seed=" << seed << " round=" << round << " q=" << q;
      }
    }
  }
  info_cache::Stats stats = info_cache::GetStats();
  EXPECT_GT(stats.scalar_evictions + stats.cube_evictions, 0u)
      << "capacity was meant to force eviction";
  ResetCache();
}

// ------------------------------------------------------------ statistics

// Stats come from the cache's own atomics, so they work in
// MESA_METRICS=OFF builds too.
TEST(InfoCacheStats, HitsAndMissesAreCounted) {
  ResetCache();
  Rng rng(99);
  CodedVariable x = RandomCoded(rng, 500, 4, 0.0);
  CodedVariable y = RandomCoded(rng, 500, 3, 0.0);
  CodedVariable z = RandomCoded(rng, 500, 3, 0.0);

  info_cache::Stats before = info_cache::GetStats();
  double first = ConditionalMutualInformation(x, y, z);
  info_cache::Stats mid = info_cache::GetStats();
  EXPECT_GT(mid.scalar_misses, before.scalar_misses);
  EXPECT_GT(mid.cube_misses, before.cube_misses);

  double second = ConditionalMutualInformation(x, y, z);
  info_cache::Stats after = info_cache::GetStats();
  EXPECT_EQ(first, second);
  EXPECT_GT(after.scalar_hits, mid.scalar_hits);

  // A different partition of the same triple reuses the counted cube.
  ConditionalMutualInformation(x, z, y);
  info_cache::Stats repack = info_cache::GetStats();
  EXPECT_GT(repack.cube_hits, after.cube_hits);
  ResetCache();
}

TEST(InfoCacheStats, DisabledCacheTouchesNothing) {
  ResetCache();
  info_cache::Clear();
  info_cache::SetEnabled(false);
  Rng rng(123);
  CodedVariable x = RandomCoded(rng, 300, 4, 0.0);
  CodedVariable y = RandomCoded(rng, 300, 3, 0.0);
  CodedVariable z = RandomCoded(rng, 300, 3, 0.0);
  info_cache::Stats before = info_cache::GetStats();
  ConditionalMutualInformation(x, y, z);
  Entropy(x);
  info_cache::Stats after = info_cache::GetStats();
  EXPECT_EQ(before.scalar_hits + before.scalar_misses,
            after.scalar_hits + after.scalar_misses);
  EXPECT_EQ(before.cube_hits + before.cube_misses,
            after.cube_hits + after.cube_misses);
  EXPECT_EQ(info_cache::ScalarEntries(), 0u);
  EXPECT_EQ(info_cache::CubeEntries(), 0u);
  ResetCache();
}

TEST(InfoCacheStats, EphemeralScopeBypassesEveryLayer) {
  ResetCache();
  info_cache::Clear();
  info_cache::SetEnabled(true);
  Rng rng(321);
  CodedVariable x = RandomCoded(rng, 300, 4, 0.0);
  CodedVariable y = RandomCoded(rng, 300, 3, 0.0);
  CodedVariable z = RandomCoded(rng, 300, 3, 0.0);
  double expected = ConditionalMutualInformation(x, y, z);
  info_cache::Stats before = info_cache::GetStats();
  size_t scalars = info_cache::ScalarEntries();
  size_t cubes = info_cache::CubeEntries();
  {
    info_cache::EphemeralScope ephemeral;
    EXPECT_FALSE(info_cache::Enabled());
    {
      info_cache::EphemeralScope nested;  // scopes nest
      EXPECT_FALSE(info_cache::Enabled());
    }
    EXPECT_FALSE(info_cache::Enabled());
    // Same result, but no lookups, no inserts, no counter movement.
    EXPECT_EQ(ConditionalMutualInformation(x, y, z), expected);
  }
  EXPECT_TRUE(info_cache::Enabled());
  info_cache::Stats after = info_cache::GetStats();
  EXPECT_EQ(before.scalar_hits + before.scalar_misses,
            after.scalar_hits + after.scalar_misses);
  EXPECT_EQ(before.cube_hits + before.cube_misses,
            after.cube_hits + after.cube_misses);
  EXPECT_EQ(info_cache::ScalarEntries(), scalars);
  EXPECT_EQ(info_cache::CubeEntries(), cubes);
  ResetCache();
}

// ----------------------------------------------------------- end-to-end

// A full MESA explanation — pruning, MCIMR, responsibility, subgroups —
// must be identical with the cache on and off, at several thread counts.
TEST(InfoCacheEndToEnd, ExplanationIdenticalWithCacheOnAndOff) {
  GenOptions gen;
  gen.seed = 2001;
  auto ds = MakeDataset(DatasetKind::kCovid, gen);
  ASSERT_TRUE(ds.ok());
  const QuerySpec query = CanonicalQueries(DatasetKind::kCovid).front().query;

  auto explain = [&]() -> MesaReport {
    Mesa mesa(ds->table, ds->kg.get(), ds->extraction_columns);
    auto report = mesa.Explain(query);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return std::move(*report);
  };

  info_cache::SetEnabled(false);
  SetNumThreads(1);
  MesaReport ref = explain();

  for (size_t threads : {1, 2, 8}) {
    SetNumThreads(threads);
    ResetCache();
    MesaReport got = explain();
    const std::string label = "threads=" + std::to_string(threads);
    EXPECT_EQ(ref.base_cmi, got.base_cmi) << label;
    EXPECT_EQ(ref.final_cmi, got.final_cmi) << label;
    EXPECT_EQ(ref.explanation.attribute_names, got.explanation.attribute_names)
        << label;
    EXPECT_EQ(ref.explanation.base_cmi, got.explanation.base_cmi) << label;
    EXPECT_EQ(ref.explanation.final_cmi, got.explanation.final_cmi) << label;
    ASSERT_EQ(ref.responsibilities.size(), got.responsibilities.size())
        << label;
    for (size_t r = 0; r < ref.responsibilities.size(); ++r) {
      EXPECT_EQ(ref.responsibilities[r].attribute_index,
                got.responsibilities[r].attribute_index)
          << label;
      EXPECT_EQ(ref.responsibilities[r].responsibility,
                got.responsibilities[r].responsibility)
          << label;
    }
  }
  SetNumThreads(1);
  ResetCache();
}

// ---------------------------------------------------- cross-query reuse

// Two queries over the same content must share cache entries, even when
// they run through *different* Mesa/Table objects: the discretizer memo
// keys on Column::ContentFingerprint + binning spec, so identical bytes
// yield identical codes, identical CodedVariable fingerprints, and so
// info-cache hits instead of recomputation.
TEST(InfoCacheCrossQuery, SecondQueryReusesDiscretizerAndInfoEntries) {
  ResetCache();
  ClearDiscretizerCache();
  SetNumThreads(1);
  GenOptions gen;
  gen.seed = 2002;
  auto ds = MakeDataset(DatasetKind::kCovid, gen);
  ASSERT_TRUE(ds.ok());
  const QuerySpec query = CanonicalQueries(DatasetKind::kCovid).front().query;

  Mesa mesa1(ds->table, ds->kg.get(), ds->extraction_columns);
  ASSERT_TRUE(mesa1.Preprocess().ok());
  auto report1 = mesa1.Explain(query);
  ASSERT_TRUE(report1.ok()) << report1.status().ToString();
  const DiscretizerCacheStats disc1 = GetDiscretizerCacheStats();
  const info_cache::Stats info1 = info_cache::GetStats();
  EXPECT_GT(disc1.misses, 0u);  // the first query had to discretise

  // Fresh Mesa over the same dataset: new Table/Column objects with the
  // same bytes. Content addressing must carry every cache entry over.
  Mesa mesa2(ds->table, ds->kg.get(), ds->extraction_columns);
  ASSERT_TRUE(mesa2.Preprocess().ok());
  auto report2 = mesa2.Explain(query);
  ASSERT_TRUE(report2.ok());
  const DiscretizerCacheStats disc2 = GetDiscretizerCacheStats();
  const info_cache::Stats info2 = info_cache::GetStats();

  EXPECT_GT(disc2.hits, disc1.hits);
  // Nothing new to discretise: every (column content, spec) pair of the
  // second run was already memoized by the first.
  EXPECT_EQ(disc2.misses, disc1.misses);
  EXPECT_GT(info2.scalar_hits + info2.cube_hits,
            info1.scalar_hits + info1.cube_hits);
  // And the reused entries produce the same explanation.
  EXPECT_EQ(report1->base_cmi, report2->base_cmi);
  EXPECT_EQ(report1->final_cmi, report2->final_cmi);
  EXPECT_EQ(report1->explanation.attribute_names,
            report2->explanation.attribute_names);

  ResetCache();
  ClearDiscretizerCache();
}

}  // namespace
}  // namespace mesa
