// Cross-module property tests: invariants that must hold for *every*
// randomly generated input, swept over seeds/shapes with TEST_P.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "core/candidates.h"
#include "core/mcimr.h"
#include "core/pruning.h"
#include "core/responsibility.h"
#include "query/group_by.h"
#include "query/join.h"
#include "stats/discretizer.h"
#include "table/csv.h"
#include "table/table_builder.h"

namespace mesa {
namespace {

// Random table with mixed column types, some nulls.
Table RandomTable(Rng* rng, size_t rows) {
  TableBuilder b(Schema({{"key", DataType::kString},
                         {"num", DataType::kDouble},
                         {"cnt", DataType::kInt64},
                         {"flag", DataType::kBool},
                         {"text", DataType::kString}}));
  const char* texts[] = {"alpha", "beta, quoted", "line\nbreak", "q\"uote",
                         "plain"};
  for (size_t i = 0; i < rows; ++i) {
    std::vector<Value> row;
    row.push_back(Value::String("k" + std::to_string(rng->NextBelow(8))));
    row.push_back(rng->NextBernoulli(0.1)
                      ? Value::Null()
                      : Value::Double(rng->NextGaussian(0, 10)));
    row.push_back(Value::Int(rng->NextInt(-50, 50)));
    row.push_back(Value::Bool(rng->NextBernoulli(0.5)));
    row.push_back(rng->NextBernoulli(0.15)
                      ? Value::Null()
                      : Value::String(texts[rng->NextBelow(5)]));
    MESA_CHECK(b.AppendRow(row).ok());
  }
  return *b.Finish();
}

// ------------------------------------------------------ CSV round trips

class CsvRoundTripProperty : public testing::TestWithParam<uint64_t> {};

TEST_P(CsvRoundTripProperty, RandomTablesSurvive) {
  Rng rng(GetParam());
  Table t = RandomTable(&rng, 40 + rng.NextBelow(60));
  std::string csv = WriteCsvString(t);
  auto back = ReadCsvString(csv);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_rows(), t.num_rows());
  ASSERT_EQ(back->num_columns(), t.num_columns());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      Value orig = t.column(c).GetValue(r);
      Value got = back->column(c).GetValue(r);
      if (orig.is_double()) {
        // %.6g rendering bounds the round-trip precision.
        if (!got.is_null()) {
          EXPECT_NEAR(got.AsDouble(), orig.AsDouble(),
                      1e-4 * (1.0 + std::fabs(orig.AsDouble())));
        }
      } else {
        EXPECT_EQ(got, orig) << "row " << r << " col " << c;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundTripProperty,
                         testing::Range<uint64_t>(1, 9));

// --------------------------------------------------- group-by invariants

class GroupByProperty : public testing::TestWithParam<uint64_t> {};

TEST_P(GroupByProperty, CountsAndBoundsHold) {
  Rng rng(GetParam() * 31);
  Table t = RandomTable(&rng, 200);
  auto r = GroupByAggregate(t, "key", "num", AggregateFunction::kAvg);
  ASSERT_TRUE(r.ok());
  size_t total = 0;
  for (const auto& g : r->groups) {
    EXPECT_GT(g.count, 0u);
    total += g.count;
  }
  EXPECT_LE(total, r->input_rows);
  // avg lies within [min, max] per group.
  auto mins = GroupByAggregate(t, "key", "num", AggregateFunction::kMin);
  auto maxs = GroupByAggregate(t, "key", "num", AggregateFunction::kMax);
  ASSERT_TRUE(mins.ok() && maxs.ok());
  ASSERT_EQ(mins->groups.size(), r->groups.size());
  for (size_t i = 0; i < r->groups.size(); ++i) {
    EXPECT_GE(r->groups[i].aggregate, mins->groups[i].aggregate - 1e-9);
    EXPECT_LE(r->groups[i].aggregate, maxs->groups[i].aggregate + 1e-9);
  }
  // Groups are sorted and unique.
  for (size_t i = 1; i < r->groups.size(); ++i) {
    EXPECT_TRUE(r->groups[i - 1].group < r->groups[i].group);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupByProperty,
                         testing::Range<uint64_t>(1, 7));

// ------------------------------------------------------- join invariants

class JoinProperty : public testing::TestWithParam<uint64_t> {};

TEST_P(JoinProperty, LeftJoinPreservesLeftRows) {
  Rng rng(GetParam() * 17);
  Table left = RandomTable(&rng, 150);
  TableBuilder rb(Schema({{"key", DataType::kString},
                          {"extra", DataType::kDouble}}));
  for (int i = 0; i < 5; ++i) {
    MESA_CHECK(rb.AppendRow({Value::String("k" + std::to_string(i)),
                             Value::Double(static_cast<double>(i))})
                   .ok());
  }
  Table right = *rb.Finish();
  auto joined = HashJoin(left, "key", right, "key");
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->num_rows(), left.num_rows());
  // Every matched row carries the right value; unmatched rows carry null.
  const Column* keys = *joined->ColumnByName("key");
  const Column* extra = *joined->ColumnByName("extra");
  for (size_t r = 0; r < joined->num_rows(); ++r) {
    const std::string& k = keys->StringAt(r);
    int idx = k[1] - '0';
    if (idx < 5) {
      ASSERT_TRUE(extra->IsValid(r));
      EXPECT_DOUBLE_EQ(extra->DoubleAt(r), static_cast<double>(idx));
    } else {
      EXPECT_TRUE(extra->IsNull(r));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinProperty, testing::Range<uint64_t>(1, 6));

// --------------------------------------------------- discretizer sweeps

class DiscretizerProperty
    : public testing::TestWithParam<std::tuple<int, size_t, uint64_t>> {};

TEST_P(DiscretizerProperty, CodesAlwaysInRangeAndOrderPreserving) {
  auto [strategy, bins, seed] = GetParam();
  Rng rng(seed);
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) v.push_back(rng.NextGaussian(0, 3));
  DiscretizerOptions opts;
  opts.strategy = static_cast<BinningStrategy>(strategy);
  opts.num_bins = bins;
  opts.categorical_threshold = 5;
  Discretized d = DiscretizeVector(v, opts);
  ASSERT_GT(d.cardinality, 0);
  EXPECT_LE(d.cardinality, static_cast<int32_t>(bins));
  for (int32_t c : d.codes) {
    ASSERT_GE(c, 0);
    ASSERT_LT(c, d.cardinality);
  }
  // Monotone: a larger value never gets a smaller bin code.
  for (size_t i = 0; i < v.size(); ++i) {
    for (size_t j = i + 1; j < std::min(v.size(), i + 20); ++j) {
      if (v[i] < v[j]) {
        EXPECT_LE(d.codes[i], d.codes[j]);
      } else if (v[i] > v[j]) {
        EXPECT_GE(d.codes[i], d.codes[j]);
      }
    }
  }
  EXPECT_EQ(d.labels.size(), static_cast<size_t>(d.cardinality));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DiscretizerProperty,
    testing::Combine(testing::Values(0, 1), testing::Values(2u, 5u, 12u),
                     testing::Values(3u, 9u)));

// ---------------------------------------------------- MCIMR invariants

struct McimrWorld {
  Table table;
  QuerySpec query;
};

McimrWorld RandomConfoundedWorld(uint64_t seed) {
  Rng rng(seed);
  const size_t groups = 40 + rng.NextBelow(80);
  std::vector<double> u(groups), v(groups), noise(groups);
  for (size_t g = 0; g < groups; ++g) {
    u[g] = rng.NextGaussian();
    v[g] = rng.NextGaussian();
    noise[g] = rng.NextGaussian();
  }
  TableBuilder b(Schema({{"g", DataType::kString},
                         {"o", DataType::kDouble},
                         {"c1", DataType::kDouble},
                         {"c2", DataType::kDouble},
                         {"junk", DataType::kDouble}}));
  size_t rows = 3000 + rng.NextBelow(3000);
  double w1 = rng.NextUniform(1.0, 4.0);
  double w2 = rng.NextUniform(0.5, 3.0);
  for (size_t i = 0; i < rows; ++i) {
    size_t g = rng.NextBelow(groups);
    double y = w1 * u[g] + w2 * v[g] + rng.NextGaussian(0, 0.5);
    MESA_CHECK(b.AppendRow({Value::String("g" + std::to_string(g)),
                            Value::Double(y), Value::Double(u[g]),
                            Value::Double(v[g]), Value::Double(noise[g])})
                   .ok());
  }
  McimrWorld w;
  w.table = *b.Finish();
  w.query.exposure = "g";
  w.query.outcome = "o";
  return w;
}

class McimrProperty : public testing::TestWithParam<uint64_t> {};

TEST_P(McimrProperty, StructuralInvariantsHoldOnRandomWorlds) {
  McimrWorld w = RandomConfoundedWorld(1000 + GetParam());
  auto qa = QueryAnalysis::Prepare(w.table, w.query, {"c1", "c2", "junk"});
  ASSERT_TRUE(qa.ok());
  auto kept = OnlinePrune(*qa).kept_indices;
  McimrOptions opts;
  opts.max_size = 3;
  Explanation ex = RunMcimr(*qa, kept, opts);

  // Size bound and no duplicates.
  EXPECT_LE(ex.attribute_names.size(), opts.max_size);
  for (size_t i = 0; i < ex.attribute_indices.size(); ++i) {
    for (size_t j = i + 1; j < ex.attribute_indices.size(); ++j) {
      EXPECT_NE(ex.attribute_indices[i], ex.attribute_indices[j]);
    }
  }
  // Explanation never includes the query attributes.
  for (const auto& n : ex.attribute_names) {
    EXPECT_NE(n, "g");
    EXPECT_NE(n, "o");
  }
  // Scores are consistent: final <= base; trace strictly decreasing and
  // ends at final.
  EXPECT_LE(ex.final_cmi, ex.base_cmi + 1e-9);
  double prev = ex.base_cmi;
  for (const auto& step : ex.trace) {
    EXPECT_LT(step.cmi_after, prev);
    prev = step.cmi_after;
  }
  if (!ex.trace.empty()) {
    EXPECT_DOUBLE_EQ(ex.trace.back().cmi_after, ex.final_cmi);
  }
  // The true confounders dominate: c1 is picked first whenever anything is.
  if (!ex.attribute_names.empty()) {
    EXPECT_TRUE(ex.attribute_names[0] == "c1" ||
                ex.attribute_names[0] == "c2")
        << ex.ToString();
  }
  // Determinism: same inputs, same output.
  Explanation again = RunMcimr(*qa, kept, opts);
  EXPECT_EQ(again.attribute_names, ex.attribute_names);
}

TEST_P(McimrProperty, ResponsibilitiesOfFoundExplanationAreNormalised) {
  McimrWorld w = RandomConfoundedWorld(5000 + GetParam());
  auto qa = QueryAnalysis::Prepare(w.table, w.query, {"c1", "c2", "junk"});
  ASSERT_TRUE(qa.ok());
  Explanation ex = RunMcimr(*qa, OnlinePrune(*qa).kept_indices);
  auto resp = ComputeResponsibilities(*qa, ex.attribute_indices);
  ASSERT_EQ(resp.size(), ex.attribute_indices.size());
  if (resp.size() >= 2) {
    double sum = 0;
    for (const auto& r : resp) sum += r.responsibility;
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
  // Sorted descending.
  for (size_t i = 1; i < resp.size(); ++i) {
    EXPECT_GE(resp[i - 1].responsibility, resp[i].responsibility);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, McimrProperty,
                         testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace mesa
