#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "core/candidates.h"
#include "core/mcimr.h"
#include "core/pruning.h"
#include "core/responsibility.h"
#include "table/table_builder.h"

namespace mesa {
namespace {

// A compact confounded world: 40 groups; two independent per-group latents
// (u, v) drive the outcome. Attributes:
//   conf_u      — the first true confounder,
//   conf_u_twin — a redundant copy of conf_u (plus small noise),
//   conf_v      — the second true confounder,
//   group_code  — a bijection of the group (Lemma A.2 trap),
//   noise       — a per-group random attribute, irrelevant by construction,
//   indiv       — a row-level attribute that affects O but not the groups,
//   constant    — a constant column,
//   sparse      — conf_u with 95% of values missing.
struct World {
  Table table;
  QuerySpec query;
};

World MakeWorld(size_t rows = 12000, uint64_t seed = 77) {
  Rng rng(seed);
  const size_t kGroups = 100;
  std::vector<double> u(kGroups), v(kGroups), noise(kGroups);
  for (size_t g = 0; g < kGroups; ++g) {
    u[g] = rng.NextGaussian();
    v[g] = rng.NextGaussian();
    noise[g] = rng.NextGaussian();
  }
  TableBuilder b(Schema({{"group", DataType::kString},
                         {"outcome", DataType::kDouble},
                         {"conf_u", DataType::kDouble},
                         {"conf_u_twin", DataType::kDouble},
                         {"conf_v", DataType::kDouble},
                         {"group_code", DataType::kString},
                         {"noise", DataType::kDouble},
                         {"indiv", DataType::kDouble},
                         {"constant", DataType::kString},
                         {"sparse", DataType::kDouble}}));
  for (size_t i = 0; i < rows; ++i) {
    size_t g = rng.NextBelow(kGroups);
    double indiv = rng.NextGaussian();
    double outcome = 3.0 * u[g] + 2.0 * v[g] + 1.0 * indiv +
                     rng.NextGaussian(0, 0.4);
    MESA_CHECK(b.AppendRow({Value::String("g" + std::to_string(g)),
                            Value::Double(outcome), Value::Double(u[g]),
                            Value::Double(u[g] + 0.01 * noise[g]),
                            Value::Double(v[g]),
                            Value::String("code" + std::to_string(g)),
                            Value::Double(noise[g]), Value::Double(indiv),
                            Value::String("same"),
                            rng.NextBernoulli(0.95) ? Value::Null()
                                                    : Value::Double(u[g])})
                   .ok());
  }
  World w;
  w.table = *b.Finish();
  w.query.exposure = "group";
  w.query.outcome = "outcome";
  return w;
}

std::vector<std::string> AllCandidates() {
  return {"conf_u", "conf_u_twin", "conf_v",  "group_code",
          "noise",  "indiv",       "constant", "sparse"};
}

// ---------------------------------------------------------- QueryAnalysis

TEST(QueryAnalysis, PrepareBasics) {
  World w = MakeWorld();
  auto qa = QueryAnalysis::Prepare(w.table, w.query, AllCandidates());
  ASSERT_TRUE(qa.ok());
  EXPECT_EQ(qa->num_rows(), w.table.num_rows());
  EXPECT_GT(qa->BaseCmi(), 0.5);
  EXPECT_GE(qa->FindAttribute("conf_u"), 0);
  EXPECT_EQ(qa->FindAttribute("nope"), -1);
  // Exposure / outcome never become candidates even if listed.
  auto qa2 = QueryAnalysis::Prepare(w.table, w.query,
                                    {"outcome", "group", "conf_u"});
  ASSERT_TRUE(qa2.ok());
  EXPECT_EQ(qa2->attributes().size(), 1u);
}

TEST(QueryAnalysis, ContextFiltersRows) {
  World w = MakeWorld();
  w.query.context.Add(
      {"group", CompareOp::kIn, Value::Null(),
       {Value::String("g0"), Value::String("g1"), Value::String("g2")}});
  auto qa = QueryAnalysis::Prepare(w.table, w.query, AllCandidates());
  ASSERT_TRUE(qa.ok());
  EXPECT_LT(qa->num_rows(), w.table.num_rows() / 4);
  EXPECT_EQ(qa->exposure().cardinality, 3);
}

TEST(QueryAnalysis, EmptyContextMatchIsError) {
  World w = MakeWorld();
  w.query.context.Add(
      {"group", CompareOp::kEq, Value::String("no_such_group"), {}});
  EXPECT_FALSE(
      QueryAnalysis::Prepare(w.table, w.query, AllCandidates()).ok());
}

TEST(QueryAnalysis, ConfounderReducesCmiNoiseDoesNot) {
  World w = MakeWorld();
  auto qa = QueryAnalysis::Prepare(w.table, w.query, AllCandidates());
  ASSERT_TRUE(qa.ok());
  double base = qa->BaseCmi();
  double with_u = qa->CmiGivenAttribute(qa->FindAttribute("conf_u"));
  double with_noise = qa->CmiGivenAttribute(qa->FindAttribute("noise"));
  EXPECT_LT(with_u, base);
  EXPECT_LT(with_u, with_noise);
}

TEST(QueryAnalysis, JointSetBeatsSingles) {
  World w = MakeWorld();
  auto qa = QueryAnalysis::Prepare(w.table, w.query, AllCandidates());
  ASSERT_TRUE(qa.ok());
  size_t u = qa->FindAttribute("conf_u");
  size_t v = qa->FindAttribute("conf_v");
  double joint = qa->CmiGivenSet({u, v});
  EXPECT_LT(joint, qa->CmiGivenAttribute(u));
  EXPECT_LT(joint, qa->CmiGivenAttribute(v));
}

TEST(QueryAnalysis, CmiGivenSetEmptyIsBase) {
  World w = MakeWorld();
  auto qa = QueryAnalysis::Prepare(w.table, w.query, AllCandidates());
  ASSERT_TRUE(qa.ok());
  EXPECT_DOUBLE_EQ(qa->CmiGivenSet({}), qa->BaseCmi());
}

TEST(QueryAnalysis, PairwiseMiSymmetricAndCached) {
  World w = MakeWorld();
  auto qa = QueryAnalysis::Prepare(w.table, w.query, AllCandidates());
  ASSERT_TRUE(qa.ok());
  size_t u = qa->FindAttribute("conf_u");
  size_t t = qa->FindAttribute("conf_u_twin");
  size_t n = qa->FindAttribute("noise");
  double mi_ut = qa->PairwiseMi(u, t);
  EXPECT_DOUBLE_EQ(mi_ut, qa->PairwiseMi(t, u));
  // Twin is far more redundant with conf_u than noise is.
  EXPECT_GT(mi_ut, qa->PairwiseMi(u, n));
  size_t evals = qa->estimator_evaluations();
  qa->PairwiseMi(u, t);
  EXPECT_EQ(qa->estimator_evaluations(), evals);  // cache hit
}

TEST(QueryAnalysis, NormalizedRedundancyInUnitRange) {
  World w = MakeWorld();
  auto qa = QueryAnalysis::Prepare(w.table, w.query, AllCandidates());
  ASSERT_TRUE(qa.ok());
  size_t u = qa->FindAttribute("conf_u");
  size_t t = qa->FindAttribute("conf_u_twin");
  double r = qa->NormalizedRedundancy(u, t);
  EXPECT_GT(r, 0.7);   // near-duplicates
  EXPECT_LE(r, 1.05);  // small estimator slack
}

TEST(QueryAnalysis, IdentificationFraction) {
  World w = MakeWorld();
  auto qa = QueryAnalysis::Prepare(w.table, w.query, AllCandidates());
  ASSERT_TRUE(qa.ok());
  size_t code = qa->FindAttribute("group_code");
  // A bijection of the exposure identifies everything.
  EXPECT_GT(qa->IdentificationFraction({code}), 0.95);
  // A single binned confounder does not.
  size_t u = qa->FindAttribute("conf_u");
  EXPECT_LT(qa->IdentificationFraction({u}), 0.5);
  EXPECT_DOUBLE_EQ(qa->IdentificationFraction({}), 0.0);
}

TEST(QueryAnalysis, SparseAttributeGetsMissingFraction) {
  World w = MakeWorld();
  auto qa = QueryAnalysis::Prepare(w.table, w.query, AllCandidates());
  ASSERT_TRUE(qa.ok());
  const auto& attr =
      qa->attributes()[static_cast<size_t>(qa->FindAttribute("sparse"))];
  EXPECT_GT(attr.missing_fraction, 0.85);
}

// ----------------------------------------------------------- OfflinePrune

TEST(OfflinePrune, DropsConstantAndSparse) {
  World w = MakeWorld();
  auto r = OfflinePrune(w.table, AllCandidates());
  ASSERT_TRUE(r.ok());
  auto pruned_reason = [&](const std::string& name) -> const char* {
    for (const auto& p : r->pruned) {
      if (p.name == name) return PruneReasonName(p.reason);
    }
    return "";
  };
  EXPECT_STREQ(pruned_reason("constant"), "constant");
  EXPECT_STREQ(pruned_reason("sparse"), "too_many_missing");
  EXPECT_STREQ(pruned_reason("conf_u"), "");  // kept
  // group_code: 40 distinct strings over 6000 rows — not high-entropy at
  // row level (it is per-entity identification, caught online instead).
  EXPECT_STREQ(pruned_reason("group_code"), "");
}

TEST(OfflinePrune, HighEntropyStringIds) {
  // A unique string per row is an identifier.
  Rng rng(3);
  TableBuilder b(Schema({{"id", DataType::kString}, {"x", DataType::kDouble}}));
  for (int i = 0; i < 200; ++i) {
    MESA_CHECK(b.AppendRow({Value::String("row" + std::to_string(i)),
                            Value::Double(rng.NextGaussian())})
                   .ok());
  }
  Table t = *b.Finish();
  auto r = OfflinePrune(t, {"id", "x"});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->pruned.size(), 1u);
  EXPECT_EQ(r->pruned[0].name, "id");
  EXPECT_EQ(r->pruned[0].reason, PruneReason::kHighEntropy);
  // Continuous unique values are exempt.
  EXPECT_EQ(r->kept, std::vector<std::string>{"x"});
}

TEST(OfflinePrune, MissingColumnErrors) {
  World w = MakeWorld(200);
  EXPECT_FALSE(OfflinePrune(w.table, {"ghost"}).ok());
}

// ------------------------------------------------------------ OnlinePrune

TEST(OnlinePrune, DropsFdAndIrrelevant) {
  World w = MakeWorld();
  auto qa = QueryAnalysis::Prepare(w.table, w.query, AllCandidates());
  ASSERT_TRUE(qa.ok());
  OnlinePruneResult r = OnlinePrune(*qa);
  auto reason_of = [&](const std::string& name) -> const char* {
    for (const auto& p : r.pruned) {
      if (p.name == name) return PruneReasonName(p.reason);
    }
    return "";
  };
  // The group bijection is a logical dependency.
  EXPECT_STREQ(reason_of("group_code"), "logical_dependency");
  // Constant survives offline only; online sees cardinality 1.
  EXPECT_STREQ(reason_of("constant"), "constant");
  // True confounders survive.
  EXPECT_STREQ(reason_of("conf_u"), "");
  EXPECT_STREQ(reason_of("conf_v"), "");
  // Kept indices all valid.
  for (size_t i : r.kept_indices) {
    EXPECT_LT(i, qa->attributes().size());
  }
}

TEST(OnlinePrune, RelevanceTestDropsPureIndividualNoise) {
  // An attribute independent of O entirely.
  Rng rng(5);
  TableBuilder b(Schema({{"g", DataType::kString},
                         {"o", DataType::kDouble},
                         {"junk", DataType::kDouble}}));
  std::vector<double> mean(10);
  for (auto& m : mean) m = rng.NextGaussian();
  for (int i = 0; i < 4000; ++i) {
    size_t g = rng.NextBelow(10);
    b.AppendRow({Value::String("g" + std::to_string(g)),
                 Value::Double(mean[g] + rng.NextGaussian(0, 0.3)),
                 Value::Double(rng.NextGaussian())})
        .ok();
  }
  Table t = *b.Finish();
  QuerySpec q;
  q.exposure = "g";
  q.outcome = "o";
  auto qa = QueryAnalysis::Prepare(t, q, {"junk"});
  ASSERT_TRUE(qa.ok());
  OnlinePruneResult r = OnlinePrune(*qa);
  ASSERT_EQ(r.pruned.size(), 1u);
  EXPECT_EQ(r.pruned[0].reason, PruneReason::kLowRelevance);
}

// ------------------------------------------------------------------ MCIMR

std::vector<size_t> Kept(const QueryAnalysis& qa) {
  return OnlinePrune(qa).kept_indices;
}

TEST(Mcimr, FindsBothConfounders) {
  World w = MakeWorld();
  auto qa = QueryAnalysis::Prepare(w.table, w.query, AllCandidates());
  ASSERT_TRUE(qa.ok());
  Explanation ex = RunMcimr(*qa, Kept(*qa));
  ASSERT_GE(ex.attribute_names.size(), 2u);
  // First two picks are conf_u/twin and conf_v in some order.
  auto is_u = [](const std::string& s) {
    return s == "conf_u" || s == "conf_u_twin";
  };
  EXPECT_TRUE(is_u(ex.attribute_names[0]) || ex.attribute_names[0] == "conf_v");
  bool has_u = false, has_v = false, has_noise = false;
  for (const auto& n : ex.attribute_names) {
    has_u |= is_u(n);
    has_v |= n == "conf_v";
    has_noise |= n == "noise";
  }
  EXPECT_TRUE(has_u);
  EXPECT_TRUE(has_v);
  EXPECT_FALSE(has_noise);
  EXPECT_LT(ex.final_cmi, 0.3 * ex.base_cmi);
}

TEST(Mcimr, RedundantTwinNotPickedTogether) {
  World w = MakeWorld();
  auto qa = QueryAnalysis::Prepare(w.table, w.query, AllCandidates());
  ASSERT_TRUE(qa.ok());
  Explanation ex = RunMcimr(*qa, Kept(*qa));
  bool u = false, twin = false;
  for (const auto& n : ex.attribute_names) {
    u |= n == "conf_u";
    twin |= n == "conf_u_twin";
  }
  EXPECT_FALSE(u && twin) << ex.ToString();
}

TEST(Mcimr, RespectsMaxSize) {
  World w = MakeWorld();
  auto qa = QueryAnalysis::Prepare(w.table, w.query, AllCandidates());
  ASSERT_TRUE(qa.ok());
  McimrOptions opts;
  opts.max_size = 1;
  Explanation ex = RunMcimr(*qa, Kept(*qa), opts);
  EXPECT_EQ(ex.attribute_names.size(), 1u);
}

TEST(Mcimr, EmptyCandidatesYieldEmptyExplanation) {
  World w = MakeWorld(500);
  auto qa = QueryAnalysis::Prepare(w.table, w.query, AllCandidates());
  ASSERT_TRUE(qa.ok());
  Explanation ex = RunMcimr(*qa, {});
  EXPECT_TRUE(ex.attribute_names.empty());
  EXPECT_DOUBLE_EQ(ex.final_cmi, ex.base_cmi);
}

TEST(Mcimr, TraceIsMonotoneInCmi) {
  World w = MakeWorld();
  auto qa = QueryAnalysis::Prepare(w.table, w.query, AllCandidates());
  ASSERT_TRUE(qa.ok());
  Explanation ex = RunMcimr(*qa, Kept(*qa));
  double prev = ex.base_cmi;
  for (const auto& step : ex.trace) {
    EXPECT_LT(step.cmi_after, prev);
    prev = step.cmi_after;
  }
  EXPECT_DOUBLE_EQ(ex.final_cmi, prev);
}

TEST(Mcimr, ObjectiveFormula) {
  Explanation ex;
  ex.final_cmi = 0.5;
  ex.attribute_indices = {1, 2, 3};
  EXPECT_DOUBLE_EQ(ex.Objective(), 1.5);
  EXPECT_EQ(ex.ToString(), "{}");  // names empty here
}

TEST(Mcimr, DisablingRedundancyActsLikeTopK) {
  World w = MakeWorld();
  auto qa = QueryAnalysis::Prepare(w.table, w.query, AllCandidates());
  ASSERT_TRUE(qa.ok());
  McimrOptions opts;
  opts.use_redundancy_term = false;
  opts.responsibility_stopping = false;
  opts.min_improvement = -1.0;  // accept everything
  opts.max_size = 2;
  Explanation ex = RunMcimr(*qa, Kept(*qa), opts);
  // Without redundancy, conf_u and its twin both rank top-2.
  ASSERT_EQ(ex.attribute_names.size(), 2u);
  auto is_u = [](const std::string& s) {
    return s == "conf_u" || s == "conf_u_twin";
  };
  EXPECT_TRUE(is_u(ex.attribute_names[0]));
  EXPECT_TRUE(is_u(ex.attribute_names[1]));
}

TEST(Mcimr, NextBestAttributeHonorsExclusions) {
  World w = MakeWorld();
  auto qa = QueryAnalysis::Prepare(w.table, w.query, AllCandidates());
  ASSERT_TRUE(qa.ok());
  std::vector<size_t> kept = Kept(*qa);
  McimrOptions opts;
  double score = 0.0;
  int first = NextBestAttribute(*qa, kept, {}, opts, &score);
  ASSERT_GE(first, 0);
  int second =
      NextBestAttribute(*qa, kept, {static_cast<size_t>(first)}, opts, &score);
  EXPECT_NE(first, second);
  // Excluding everything yields -1.
  EXPECT_EQ(NextBestAttribute(*qa, {}, {}, opts, &score), -1);
}

// --------------------------------------------------------- Responsibility

TEST(Responsibility, SingletonIsOne) {
  World w = MakeWorld();
  auto qa = QueryAnalysis::Prepare(w.table, w.query, AllCandidates());
  ASSERT_TRUE(qa.ok());
  size_t u = qa->FindAttribute("conf_u");
  auto r = ComputeResponsibilities(*qa, {u});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_DOUBLE_EQ(r[0].responsibility, 1.0);
  EXPECT_EQ(r[0].name, "conf_u");
}

TEST(Responsibility, SumsToOneWhenAllContribute) {
  World w = MakeWorld();
  auto qa = QueryAnalysis::Prepare(w.table, w.query, AllCandidates());
  ASSERT_TRUE(qa.ok());
  size_t u = qa->FindAttribute("conf_u");
  size_t v = qa->FindAttribute("conf_v");
  auto r = ComputeResponsibilities(*qa, {u, v});
  ASSERT_EQ(r.size(), 2u);
  EXPECT_NEAR(r[0].responsibility + r[1].responsibility, 1.0, 1e-9);
  EXPECT_GT(r[0].responsibility, 0.0);
  EXPECT_GT(r[1].responsibility, 0.0);
  // Sorted descending.
  EXPECT_GE(r[0].responsibility, r[1].responsibility);
}

TEST(Responsibility, StrongerConfounderGetsMore) {
  // outcome = 3u + 2v: conf_u carries more.
  World w = MakeWorld();
  auto qa = QueryAnalysis::Prepare(w.table, w.query, AllCandidates());
  ASSERT_TRUE(qa.ok());
  size_t u = qa->FindAttribute("conf_u");
  size_t v = qa->FindAttribute("conf_v");
  auto r = ComputeResponsibilities(*qa, {u, v});
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].name, "conf_u");
}

TEST(Responsibility, UselessAttributeGetsNonPositive) {
  World w = MakeWorld();
  auto qa = QueryAnalysis::Prepare(w.table, w.query, AllCandidates());
  ASSERT_TRUE(qa.ok());
  size_t u = qa->FindAttribute("conf_u");
  size_t v = qa->FindAttribute("conf_v");
  size_t ind = qa->FindAttribute("indiv");
  auto r = ComputeResponsibilities(*qa, {u, v, ind});
  double indiv_resp = 0.0;
  for (const auto& e : r) {
    if (e.name == "indiv") indiv_resp = e.responsibility;
  }
  EXPECT_LT(indiv_resp, 0.15);
}

TEST(Responsibility, EmptyExplanation) {
  World w = MakeWorld(500);
  auto qa = QueryAnalysis::Prepare(w.table, w.query, AllCandidates());
  ASSERT_TRUE(qa.ok());
  EXPECT_TRUE(ComputeResponsibilities(*qa, {}).empty());
}

}  // namespace
}  // namespace mesa
