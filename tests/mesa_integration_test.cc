#include <gtest/gtest.h>

#include <algorithm>

#include "common/logging.h"
#include "core/mesa.h"
#include "datagen/registry.h"

namespace mesa {
namespace {

// Shared fixture: one SO world + Mesa instance reused across tests (the
// expensive part is extraction + preprocessing, which Mesa caches anyway).
class MesaIntegration : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    GenOptions gen;
    gen.rows = 12000;
    auto ds = MakeDataset(DatasetKind::kStackOverflow, gen);
    MESA_CHECK(ds.ok());
    dataset_ = new GeneratedDataset(std::move(*ds));
    mesa_ = new Mesa(dataset_->table, dataset_->kg.get(),
                     dataset_->extraction_columns);
    MESA_CHECK(mesa_->Preprocess().ok());
  }
  static void TearDownTestSuite() {
    delete mesa_;
    delete dataset_;
    mesa_ = nullptr;
    dataset_ = nullptr;
  }

  static GeneratedDataset* dataset_;
  static Mesa* mesa_;
};

GeneratedDataset* MesaIntegration::dataset_ = nullptr;
Mesa* MesaIntegration::mesa_ = nullptr;

TEST_F(MesaIntegration, PreprocessAugmentsAndPrunes) {
  auto aug = mesa_->augmented_table();
  ASSERT_TRUE(aug.ok());
  EXPECT_GT((*aug)->num_columns(), dataset_->table.num_columns());
  EXPECT_FALSE(mesa_->kg_columns().empty());
  // Every value linked: the country/continent worlds are fully covered.
  EXPECT_EQ(mesa_->extraction_stats().values_linked,
            mesa_->extraction_stats().values_total);
  // Offline pruning removed at least type / wikiID per extraction key.
  EXPECT_FALSE(mesa_->offline_prune_result().pruned.empty());
  bool wikiid_pruned = false;
  for (const auto& p : mesa_->offline_prune_result().pruned) {
    if (p.name.find("wikiID") != std::string::npos) wikiid_pruned = true;
  }
  EXPECT_TRUE(wikiid_pruned);
}

TEST_F(MesaIntegration, ExplainSoQ1FindsEconomicConfounders) {
  auto queries = CanonicalQueries(DatasetKind::kStackOverflow);
  auto rep = mesa_->Explain(queries[0].query);
  ASSERT_TRUE(rep.ok());
  EXPECT_GT(rep->base_cmi, 0.5);
  EXPECT_LT(rep->final_cmi, 0.4 * rep->base_cmi);
  ASSERT_FALSE(rep->explanation.attribute_names.empty());
  // The top pick must be an economic country attribute.
  const std::string& first = rep->explanation.attribute_names[0];
  EXPECT_TRUE(first == "hdi" || first == "hdi_rank" || first == "gdp" ||
              first == "gdp_rank" || first == "gini")
      << first;
  // Responsibilities cover exactly the explanation attributes.
  EXPECT_EQ(rep->responsibilities.size(),
            rep->explanation.attribute_names.size());
  // Candidate funnel is monotone.
  EXPECT_GE(rep->candidates_after_offline, rep->candidates_after_online);
}

TEST_F(MesaIntegration, ExplainSqlEntryPoint) {
  auto rep = mesa_->ExplainSql(
      "SELECT Country, avg(Salary) FROM SO GROUP BY Country");
  ASSERT_TRUE(rep.ok());
  EXPECT_FALSE(rep->explanation.attribute_names.empty());
  EXPECT_FALSE(rep->Summary().empty());
  EXPECT_FALSE(mesa_->ExplainSql("SELECT nope").ok());
  EXPECT_FALSE(
      mesa_->ExplainSql("SELECT Ghost, avg(Salary) FROM SO GROUP BY Ghost")
          .ok());
}

TEST_F(MesaIntegration, ContextQueryRestrictsAnalysis) {
  auto queries = CanonicalQueries(DatasetKind::kStackOverflow);
  // Q3: Europe only.
  auto rep = mesa_->Explain(queries[2].query);
  ASSERT_TRUE(rep.ok());
  EXPECT_LT(rep->base_cmi, 1.0);  // much weaker correlation inside Europe
  EXPECT_LT(rep->final_cmi, rep->base_cmi);
}

TEST_F(MesaIntegration, PrepareQueryExposesCandidates) {
  auto queries = CanonicalQueries(DatasetKind::kStackOverflow);
  auto pq = mesa_->PrepareQuery(queries[0].query);
  ASSERT_TRUE(pq.ok());
  EXPECT_GT(pq->candidate_indices.size(), 5u);
  for (size_t i : pq->candidate_indices) {
    EXPECT_LT(i, pq->analysis->attributes().size());
  }
  // Online pruning recorded reasons.
  EXPECT_FALSE(pq->pruned_online.empty());
}

TEST_F(MesaIntegration, SubgroupsForSoQ1ContainEurope) {
  // Table 4's headline: the Europe subgroup is unexplained by the global
  // explanation.
  auto queries = CanonicalQueries(DatasetKind::kStackOverflow);
  auto rep = mesa_->Explain(queries[0].query);
  ASSERT_TRUE(rep.ok());
  SubgroupOptions opts;
  opts.top_k = 5;
  opts.threshold = 0.03 * rep->base_cmi;
  opts.refinement_attributes = {"Continent", "Gender", "DevType"};
  auto groups = mesa_->FindSubgroups(queries[0].query,
                                     rep->explanation.attribute_names, opts);
  ASSERT_TRUE(groups.ok());
  ASSERT_FALSE(groups->empty());
  bool continent_found = false;
  for (const auto& g : *groups) {
    EXPECT_GT(g.score, opts.threshold);
    EXPECT_GE(g.size, 30u);
    for (const auto& cond : g.refinement.conditions()) {
      if (cond.column == "Continent") continent_found = true;
    }
  }
  // Table 4's shape: the unexplained groups are continent-level slices
  // (which continent ranks first depends on the generator draw).
  EXPECT_TRUE(continent_found);
  // Sizes are non-increasing (the heap pops largest first).
  for (size_t i = 1; i < groups->size(); ++i) {
    EXPECT_LE((*groups)[i].size, (*groups)[i - 1].size);
  }
}

TEST_F(MesaIntegration, NoKgStillExplainsFromInputTable) {
  Mesa no_kg(dataset_->table, nullptr, {});
  auto rep = no_kg.ExplainSql(
      "SELECT Continent, avg(Salary) FROM SO GROUP BY Continent");
  ASSERT_TRUE(rep.ok());
  // Without the KG, no extracted columns exist.
  EXPECT_TRUE(no_kg.kg_columns().empty());
}

TEST_F(MesaIntegration, DisabledPruningKeepsEverything) {
  MesaOptions opts;
  opts.enable_offline_pruning = false;
  opts.enable_online_pruning = false;
  Mesa raw(dataset_->table, dataset_->kg.get(), dataset_->extraction_columns,
           opts);
  auto queries = CanonicalQueries(DatasetKind::kStackOverflow);
  auto pq = raw.PrepareQuery(queries[0].query);
  ASSERT_TRUE(pq.ok());
  auto pruned = mesa_->PrepareQuery(queries[0].query);
  ASSERT_TRUE(pruned.ok());
  EXPECT_GT(pq->candidate_indices.size(), pruned->candidate_indices.size());
  EXPECT_TRUE(pq->pruned_online.empty());
}

TEST_F(MesaIntegration, TwoHopExtractionAddsLeaderAttributes) {
  MesaOptions opts;
  opts.extraction.hops = 2;
  Mesa deep(dataset_->table, dataset_->kg.get(),
            dataset_->extraction_columns, opts);
  ASSERT_TRUE(deep.Preprocess().ok());
  bool has_leader_age = false;
  for (const auto& name : deep.kg_columns()) {
    has_leader_age |= name.find("leader_age") != std::string::npos;
  }
  EXPECT_TRUE(has_leader_age);
  // Hop-2 widens the candidate space relative to hop-1.
  EXPECT_GT(deep.kg_columns().size(), mesa_->kg_columns().size());
  // And the explanation still works.
  auto rep = deep.Explain(
      CanonicalQueries(DatasetKind::kStackOverflow)[0].query);
  ASSERT_TRUE(rep.ok());
  EXPECT_LT(rep->final_cmi, rep->base_cmi);
}

TEST_F(MesaIntegration, RankLinksScoresFollowableEdges) {
  MesaOptions opts;
  opts.extraction.hops = 2;
  Mesa deep(dataset_->table, dataset_->kg.get(),
            dataset_->extraction_columns, opts);
  auto links = deep.RankLinks(
      CanonicalQueries(DatasetKind::kStackOverflow)[0].query);
  ASSERT_TRUE(links.ok());
  ASSERT_FALSE(links->empty());
  // The country KG has exactly one followable link: leader.
  EXPECT_EQ(links->front().link, "leader");
  EXPECT_GT(links->front().attributes, 0u);
  // Leader demographics don't explain salaries: the link scores poorly
  // (its best CMI stays near the base), which is §5.4's observation that
  // hop-2 information is rarely worth following.
  auto pq = deep.PrepareQuery(
      CanonicalQueries(DatasetKind::kStackOverflow)[0].query);
  ASSERT_TRUE(pq.ok());
  EXPECT_GT(links->front().best_cmi, 0.5 * pq->analysis->BaseCmi());
  // With 1 hop there are no followed links to rank.
  auto shallow = mesa_->RankLinks(
      CanonicalQueries(DatasetKind::kStackOverflow)[0].query);
  ASSERT_TRUE(shallow.ok());
  EXPECT_TRUE(shallow->empty());
}

TEST_F(MesaIntegration, CompositeExposureQueryEndToEnd) {
  auto rep = mesa_->ExplainSql(
      "SELECT Continent, Gender, avg(Salary) FROM SO "
      "GROUP BY Continent, Gender");
  ASSERT_TRUE(rep.ok());
  EXPECT_GT(rep->base_cmi, 0.0);
  EXPECT_LT(rep->final_cmi, rep->base_cmi);
  // Neither grouping attribute can be its own explanation.
  for (const auto& n : rep->explanation.attribute_names) {
    EXPECT_NE(n, "Continent");
    EXPECT_NE(n, "Gender");
  }
}

TEST_F(MesaIntegration, UsefulnessCriterionHoldsForCanonicalQueries) {
  // The paper's §5.1 usefulness notion: conditioning on the explanation
  // lowers the correlation, and at least one attribute came from the KG.
  auto queries = CanonicalQueries(DatasetKind::kStackOverflow);
  size_t useful = 0;
  for (const auto& bq : queries) {
    auto rep = mesa_->Explain(bq.query);
    ASSERT_TRUE(rep.ok()) << bq.id;
    bool lower = rep->final_cmi < rep->base_cmi;
    bool has_kg = false;
    for (size_t idx : rep->explanation.attribute_indices) {
      auto pq = mesa_->PrepareQuery(bq.query);
      has_kg |= pq->analysis->attributes()[idx].from_kg;
      break;
    }
    if (lower && has_kg) ++useful;
  }
  EXPECT_GE(useful, 2u);  // at least 2 of the 3 SO queries
}

}  // namespace
}  // namespace mesa
