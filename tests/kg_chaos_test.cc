// Chaos harness for the resilient KG extraction path (docs/robustness.md).
//
// The contract under test: a *transient-only* fault plan (timeouts, rate
// limits, outages, truncated responses, latency — but nothing permanent)
// must be completely masked by the retry layer. Masked means the full
// covid explain+subgroups report is byte-identical to the fault-free run,
// at every thread count. Permanent faults, by contrast, must surface as
// degraded coverage: visible in ExtractionStats and in the report, and a
// hard error once coverage drops below ExtractionOptions::min_coverage.
//
// CI sweeps additional fault seeds via MESA_CHAOS_SEEDS (comma-separated);
// the built-in defaults keep the local run self-contained.

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/mesa.h"
#include "core/report_format.h"
#include "datagen/registry.h"
#include "query/sql_parser.h"

namespace mesa {
namespace {

constexpr char kQuery[] =
    "SELECT Country, avg(Deaths_per_100_cases) FROM covid GROUP BY Country";

struct RunOutcome {
  std::string report_text;
  ExtractionStats stats;
};

// Runs the full covid pipeline (explain + subgroups, exactly the golden
// test's shape) under `fault_plan` with `num_threads` lanes.
Result<RunOutcome> RunCovid(const std::string& fault_plan,
                            size_t num_threads,
                            double min_coverage = 0.0) {
  auto ds = MakeDataset(DatasetKind::kCovid, GenOptions{});
  MESA_RETURN_IF_ERROR(ds.status());
  auto query = ParseQuery(kQuery);
  MESA_RETURN_IF_ERROR(query.status());

  MesaOptions options;
  options.num_threads = num_threads;
  options.fault_plan = fault_plan;
  options.extraction.min_coverage = min_coverage;

  Mesa mesa(ds->table, ds->kg.get(), {"Country", "WHO_Region"}, options);
  auto report = mesa.Explain(*query);
  MESA_RETURN_IF_ERROR(report.status());

  RunOutcome out;
  out.report_text = FormatReport(*report);
  SubgroupOptions sg;
  sg.threshold = 0.05 * report->base_cmi;
  sg.refinement_attributes = {"WHO_Region"};
  auto groups =
      mesa.FindSubgroups(*query, report->explanation.attribute_names, sg);
  MESA_RETURN_IF_ERROR(groups.status());
  out.report_text += FormatSubgroups(*groups);
  out.stats = report->extraction;
  return out;
}

std::vector<uint64_t> ChaosSeeds() {
  std::vector<uint64_t> seeds;
  const char* env = std::getenv("MESA_CHAOS_SEEDS");
  std::string text = env == nullptr ? "101,202,303" : env;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    std::string tok = text.substr(pos, comma - pos);
    if (!tok.empty()) seeds.push_back(std::strtoull(tok.c_str(), nullptr, 10));
    pos = comma + 1;
  }
  return seeds;
}

std::string TransientPlan(uint64_t seed) {
  return "seed=" + std::to_string(seed) +
         ";timeout=0.15;rate_limit=0.1;unavailable=0.05;truncate=0.05;"
         "latency=1:5";
}

TEST(KgChaos, TransientFaultsAreMaskedBitIdenticallyAtAnyThreadCount) {
  auto baseline = RunCovid("", 1);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_FALSE(baseline->report_text.empty());
  EXPECT_EQ(baseline->stats.values_failed, 0u);
  EXPECT_EQ(baseline->stats.lookups_retried, 0u);

  for (uint64_t seed : ChaosSeeds()) {
    const std::string plan = TransientPlan(seed);
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " threads=" + std::to_string(threads));
      auto chaotic = RunCovid(plan, threads);
      ASSERT_TRUE(chaotic.ok()) << chaotic.status().ToString();
      // Byte-identical report: the outage left no trace in the output.
      EXPECT_EQ(chaotic->report_text, baseline->report_text);
      // ...but it did happen: the retry layer worked for this result.
      EXPECT_EQ(chaotic->stats.values_failed, 0u);
      EXPECT_GT(chaotic->stats.lookups_retried, 0u);
      EXPECT_DOUBLE_EQ(chaotic->stats.Coverage(), 1.0);
    }
  }
}

TEST(KgChaos, PermanentFaultsDegradeCoverageGracefully) {
  auto degraded = RunCovid("seed=7;fail_keys=0.5", 1);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_GT(degraded->stats.values_failed, 0u);
  EXPECT_LT(degraded->stats.Coverage(), 1.0);
  // Partial coverage is printed, not hidden.
  EXPECT_NE(degraded->report_text.find("failed lookups"), std::string::npos);
}

TEST(KgChaos, CoverageFloorTurnsDegradationIntoAnError) {
  auto floored = RunCovid("seed=7;fail_keys=0.5", 1, /*min_coverage=*/0.95);
  ASSERT_FALSE(floored.ok());
  EXPECT_EQ(floored.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(floored.status().message().find("coverage"), std::string::npos);

  // A floor that the run actually clears passes: fully masked transient
  // faults leave coverage at 100%.
  auto lenient = RunCovid(TransientPlan(7), 1, /*min_coverage=*/0.95);
  EXPECT_TRUE(lenient.ok()) << lenient.status().ToString();
}

TEST(KgChaos, MalformedFaultPlanIsAnErrorNotANoOp) {
  auto run = RunCovid("seed=7;typo_rate=0.5", 1);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace mesa
