#include <gtest/gtest.h>

#include <cstdio>

#include "common/logging.h"
#include "datagen/registry.h"
#include "kg/serialization.h"

namespace mesa {
namespace {

TripleStore SampleKg() {
  TripleStore kg;
  EntityId de = *kg.AddEntity("Germany", "Country");
  EntityId fr = *kg.AddEntity("France", "Country");
  EntityId leader = *kg.AddEntity("Leader of Germany", "Person");
  MESA_CHECK(kg.AddAlias(de, "Deutschland").ok());
  MESA_CHECK(kg.AddAlias(de, "BRD").ok());
  MESA_CHECK(kg.AddLiteral(de, "hdi", Value::Double(0.94)).ok());
  MESA_CHECK(kg.AddLiteral(de, "population", Value::Int(83000000)).ok());
  MESA_CHECK(kg.AddLiteral(de, "eu_member", Value::Bool(true)).ok());
  MESA_CHECK(
      kg.AddLiteral(de, "capital city", Value::String("Berlin Mitte")).ok());
  MESA_CHECK(kg.AddLiteral(fr, "hdi", Value::Double(0.90)).ok());
  MESA_CHECK(kg.AddEdge(de, "leader", leader).ok());
  MESA_CHECK(kg.AddLiteral(leader, "age", Value::Double(65)).ok());
  return kg;
}

TEST(KgSerialization, RoundTripPreservesEverything) {
  TripleStore kg = SampleKg();
  std::string text = WriteKgString(kg);
  auto loaded = ReadKgString(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->num_entities(), kg.num_entities());
  EXPECT_EQ(loaded->num_triples(), kg.num_triples());

  // Entities keep ids, labels, types.
  for (EntityId id = 0; id < kg.num_entities(); ++id) {
    EXPECT_EQ(loaded->entity(id).label, kg.entity(id).label);
    EXPECT_EQ(loaded->entity(id).type, kg.entity(id).type);
  }
  // Aliases survive.
  auto de = loaded->FindByLabel("Germany");
  ASSERT_TRUE(de.has_value());
  EXPECT_EQ(loaded->AliasesOf(*de).size(), 2u);
  EXPECT_EQ(loaded->FindByAlias("Deutschland").size(), 1u);
  // Literal types survive, including strings with spaces.
  bool saw_string = false, saw_int = false, saw_bool = false,
       saw_edge = false;
  for (const Triple* t : loaded->PropertiesOf(*de)) {
    const std::string& pred = loaded->predicate_name(t->predicate);
    if (pred == "capital city") {
      saw_string = true;
      EXPECT_EQ(t->object.literal.string_value(), "Berlin Mitte");
    }
    if (pred == "population") {
      saw_int = true;
      EXPECT_TRUE(t->object.literal.is_int());
    }
    if (pred == "eu_member") {
      saw_bool = true;
      EXPECT_TRUE(t->object.literal.bool_value());
    }
    if (pred == "leader") {
      saw_edge = true;
      EXPECT_TRUE(t->object.is_entity());
      EXPECT_EQ(loaded->entity(t->object.entity).label, "Leader of Germany");
    }
  }
  EXPECT_TRUE(saw_string && saw_int && saw_bool && saw_edge);
}

TEST(KgSerialization, DoubleRoundTripIsExact) {
  TripleStore kg = SampleKg();
  std::string once = WriteKgString(kg);
  auto loaded = ReadKgString(once);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(WriteKgString(*loaded), once);
}

TEST(KgSerialization, GeneratedWorldRoundTrips) {
  GenOptions gen;
  gen.rows = 100;
  auto ds = MakeDataset(DatasetKind::kStackOverflow, gen);
  ASSERT_TRUE(ds.ok());
  std::string text = WriteKgString(*ds->kg);
  auto loaded = ReadKgString(text);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_entities(), ds->kg->num_entities());
  EXPECT_EQ(loaded->num_triples(), ds->kg->num_triples());
  EXPECT_EQ(loaded->num_predicates(), ds->kg->num_predicates());
}

TEST(KgSerialization, FileRoundTrip) {
  TripleStore kg = SampleKg();
  std::string path = testing::TempDir() + "/mesa_kg_test.kg";
  ASSERT_TRUE(WriteKgFile(kg, path).ok());
  auto loaded = ReadKgFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_triples(), kg.num_triples());
  std::remove(path.c_str());
  EXPECT_FALSE(ReadKgFile("/nonexistent/x.kg").ok());
}

TEST(KgSerialization, CommentsAndBlankLinesIgnored) {
  auto kg = ReadKgString("# a comment\n\nE 0 T\tLabel\n# another\n");
  ASSERT_TRUE(kg.ok());
  EXPECT_EQ(kg->num_entities(), 1u);
}

TEST(KgSerialization, RejectsMalformedInput) {
  EXPECT_FALSE(ReadKgString("E zero T\tLabel\n").ok());      // bad id
  EXPECT_FALSE(ReadKgString("E 1 T\tLabel\n").ok());         // non-dense id
  EXPECT_FALSE(ReadKgString("E 0 T Label\n").ok());          // missing tab
  EXPECT_FALSE(ReadKgString("X 0 T\tLabel\n").ok());         // unknown kind
  EXPECT_FALSE(
      ReadKgString("E 0 T\tL\nL 0\tp\tq:1\n").ok());  // bad literal tag
  EXPECT_FALSE(ReadKgString("E 0 T\tL\nG 0\tp\t7\n").ok());  // bad object
  EXPECT_FALSE(ReadKgString("A 0\talias\n").ok());           // alias w/o entity
  // Errors carry line numbers.
  auto r = ReadKgString("E 0 T\tL\nX 0\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

}  // namespace
}  // namespace mesa
