// Tests for the binary snapshot container (src/snapshot/,
// docs/snapshot_format.md):
//
//  - a seeded round-trip property suite: 20 random tables (every type,
//    null-heavy, all-null, empty) plus KGs must come back value- and
//    fingerprint-identical, and re-serializing must be byte-identical
//    (the writer is deterministic);
//  - hostile-input suites: truncation at every byte boundary, bad magic,
//    future version, flipped payload bytes, misaligned section offsets,
//    and out-of-bounds dictionary codes must all yield a clean error
//    Status — never a crash — with checksum verification on AND off;
//  - serving parity: a Router over a NAME=file.msnap dataset must reply
//    byte-identically to a Router over the CSV + KG the snapshot was
//    built from, at 1, 2, and 8 pool threads.

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "datagen/registry.h"
#include "kg/serialization.h"
#include "serve/json.h"
#include "serve/router.h"
#include "snapshot/crc32c.h"
#include "snapshot/format.h"
#include "snapshot/reader.h"
#include "snapshot/writer.h"
#include "table/csv.h"

namespace mesa {
namespace snapshot {
namespace {

// std::string storage has no alignment guarantee; FromBuffer requires an
// 8-aligned base, so tests stage images in a u64-backed holder.
struct AlignedImage {
  explicit AlignedImage(const std::string& bytes)
      : words((bytes.size() + 7) / 8, 0), size(bytes.size()) {
    std::memcpy(words.data(), bytes.data(), bytes.size());
  }
  const uint8_t* data() const {
    return reinterpret_cast<const uint8_t*>(words.data());
  }
  std::string ToString() const {
    return std::string(reinterpret_cast<const char*>(words.data()), size);
  }
  std::vector<uint64_t> words;
  size_t size;
};

Result<SnapshotReader> OpenImage(const std::shared_ptr<AlignedImage>& image,
                                 const SnapshotReadOptions& options = {}) {
  return SnapshotReader::FromBuffer(image->data(), image->size, image,
                                    options);
}

// A random table exercising every column type and null pattern. Seed 0
// is the empty table (columns, no rows); every seed gets one all-null
// column.
Table MakeRandomTable(uint64_t seed) {
  Rng rng(MixSeed(0xA11CE, seed));
  const size_t rows = seed == 0 ? 0 : rng.NextBelow(60) + 1;
  const char* words[] = {"", "alpha", "beta", "gamma", "delta", "épsilon"};

  Column doubles(DataType::kDouble);
  Column ints(DataType::kInt64);
  Column strings(DataType::kString);
  Column bools(DataType::kBool);
  Column all_null(DataType::kDouble);
  for (size_t row = 0; row < rows; ++row) {
    if (rng.NextBernoulli(0.2)) {
      doubles.AppendNull();
    } else {
      doubles.AppendDouble(rng.NextGaussian());
    }
    if (rng.NextBernoulli(0.2)) {
      ints.AppendNull();
    } else {
      ints.AppendInt(rng.NextInt(-1000, 1000));
    }
    if (rng.NextBernoulli(0.2)) {
      strings.AppendNull();
    } else {
      strings.AppendString(words[rng.NextBelow(6)]);
    }
    if (rng.NextBernoulli(0.2)) {
      bools.AppendNull();
    } else {
      bools.AppendBool(rng.NextBernoulli(0.5));
    }
    all_null.AppendNull();
  }

  auto table = Table::Make(
      Schema({{"d", DataType::kDouble},
              {"i", DataType::kInt64},
              {"s", DataType::kString},
              {"b", DataType::kBool},
              {"dead", DataType::kDouble}}),
      {std::move(doubles), std::move(ints), std::move(strings),
       std::move(bools), std::move(all_null)});
  EXPECT_TRUE(table.ok()) << table.status().ToString();
  return std::move(*table);
}

// A random KG exercising every literal type, edges, and (possibly
// ambiguous) aliases.
TripleStore MakeKg(uint64_t seed) {
  Rng rng(MixSeed(0xBEEF, seed));
  TripleStore kg;
  const size_t entities = rng.NextBelow(20) + 2;
  for (size_t i = 0; i < entities; ++i) {
    auto id = kg.AddEntity("entity-" + std::to_string(i),
                           i % 2 == 0 ? "Even" : "Odd");
    EXPECT_TRUE(id.ok());
    if (rng.NextBernoulli(0.5)) {
      // "shared" is deliberately ambiguous across entities.
      EXPECT_TRUE(kg.AddAlias(*id, "shared").ok());
    }
    if (rng.NextBernoulli(0.3)) {
      EXPECT_TRUE(kg.AddAlias(*id, "alias-" + std::to_string(i)).ok());
    }
  }
  const size_t triples = rng.NextBelow(60) + 5;
  for (size_t i = 0; i < triples; ++i) {
    EntityId subject = static_cast<EntityId>(rng.NextBelow(entities));
    switch (rng.NextBelow(6)) {
      case 0:
        EXPECT_TRUE(kg.AddLiteral(subject, "weight",
                                  Value::Double(rng.NextGaussian()))
                        .ok());
        break;
      case 1:
        EXPECT_TRUE(
            kg.AddLiteral(subject, "rank", Value::Int(rng.NextInt(0, 99)))
                .ok());
        break;
      case 2:
        EXPECT_TRUE(kg.AddLiteral(subject, "flag",
                                  Value::Bool(rng.NextBernoulli(0.5)))
                        .ok());
        break;
      case 3:
        EXPECT_TRUE(
            kg.AddLiteral(subject, "note",
                          Value::String("n" + std::to_string(rng.NextBelow(9))))
                .ok());
        break;
      case 4:
        EXPECT_TRUE(kg.AddLiteral(subject, "missing", Value::Null()).ok());
        break;
      default:
        EXPECT_TRUE(
            kg.AddEdge(subject, "linked_to",
                       static_cast<EntityId>(rng.NextBelow(entities)))
                .ok());
        break;
    }
  }
  return kg;
}

std::string MustSerialize(const Table& table, const TripleStore* kg,
                          std::vector<std::string> extraction = {}) {
  SnapshotWriter writer;
  writer.SetTable(&table);
  if (kg != nullptr) writer.SetKg(kg);
  writer.SetExtractionColumns(std::move(extraction));
  auto bytes = writer.Serialize();
  EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
  return std::move(*bytes);
}

void ExpectTablesEqual(const Table& expected, const Table& actual) {
  ASSERT_EQ(expected.num_rows(), actual.num_rows());
  ASSERT_EQ(expected.num_columns(), actual.num_columns());
  EXPECT_TRUE(expected.schema() == actual.schema())
      << expected.schema().ToString() << " vs " << actual.schema().ToString();
  for (size_t c = 0; c < expected.num_columns(); ++c) {
    const Column& want = expected.column(c);
    const Column& got = actual.column(c);
    EXPECT_EQ(want.null_count(), got.null_count());
    EXPECT_EQ(want.ContentFingerprint(), got.ContentFingerprint())
        << "column " << expected.schema().field(c).name;
    for (size_t row = 0; row < expected.num_rows(); ++row) {
      EXPECT_TRUE(want.GetValue(row) == got.GetValue(row))
          << "column " << c << " row " << row;
    }
  }
}

TEST(SnapshotRoundTrip, TwentySeededDatasets) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Table table = MakeRandomTable(seed);
    TripleStore kg = MakeKg(seed);
    const bool with_kg = seed % 3 != 2;  // every shape: with and without KG.
    std::string bytes =
        MustSerialize(table, with_kg ? &kg : nullptr,
                      with_kg ? std::vector<std::string>{"a", "b"}
                              : std::vector<std::string>{});
    auto image = std::make_shared<AlignedImage>(bytes);
    auto reader = OpenImage(image);
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    ASSERT_EQ(with_kg, reader->has_kg());

    auto loaded = reader->ReadTable();
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ExpectTablesEqual(table, *loaded);

    if (with_kg) {
      auto loaded_kg = reader->ReadKg();
      ASSERT_TRUE(loaded_kg.ok()) << loaded_kg.status().ToString();
      // The text serialization is a canonical rendering (ids, aliases,
      // triples in insertion order), so string equality is KG equality.
      EXPECT_EQ(WriteKgString(kg), WriteKgString(**loaded_kg));
      EXPECT_EQ(reader->extraction_columns(),
                (std::vector<std::string>{"a", "b"}));
    }

    // Determinism: the same bundle re-serialized (from the borrowed
    // table!) is byte-identical.
    auto reloaded_kg =
        with_kg ? *reader->ReadKg() : std::shared_ptr<TripleStore>();
    EXPECT_EQ(bytes,
              MustSerialize(*loaded, reloaded_kg.get(),
                            with_kg ? std::vector<std::string>{"a", "b"}
                                    : std::vector<std::string>{}));
  }
}

TEST(SnapshotRoundTrip, BorrowedColumnsDetachOnWrite) {
  Table table = MakeRandomTable(7);
  std::string bytes = MustSerialize(table, nullptr);
  auto image = std::make_shared<AlignedImage>(bytes);
  auto reader = OpenImage(image);
  ASSERT_TRUE(reader.ok());
  auto loaded = reader->ReadTable();
  ASSERT_TRUE(loaded.ok());

  Column& column = loaded->mutable_column(0);
  ASSERT_TRUE(column.is_borrowed());
  const size_t rows = column.size();
  ASSERT_GT(rows, 0u);
  ASSERT_TRUE(column.Set(0, Value::Double(42.0)).ok());
  EXPECT_FALSE(column.is_borrowed());
  EXPECT_EQ(42.0, column.DoubleAt(0));
  // The mutation detached a private copy; the mapping (and a second read
  // of the same snapshot) is untouched.
  auto again = reader->ReadTable();
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->column(0).is_borrowed());
  EXPECT_TRUE(table.column(0).GetValue(0) == again->column(0).GetValue(0));
}

TEST(SnapshotRoundTrip, TableOnlySnapshotHasNoKg) {
  Table table = MakeRandomTable(3);
  std::string bytes = MustSerialize(table, nullptr);
  auto image = std::make_shared<AlignedImage>(bytes);
  auto reader = OpenImage(image);
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(reader->has_kg());
  auto kg = reader->ReadKg();
  EXPECT_FALSE(kg.ok());
  EXPECT_EQ(StatusCode::kNotFound, kg.status().code());
}

TEST(SnapshotRoundTrip, FileRoundTrip) {
  Table table = MakeRandomTable(11);
  TripleStore kg = MakeKg(11);
  SnapshotWriter writer;
  writer.SetTable(&table);
  writer.SetKg(&kg);
  writer.SetExtractionColumns({"x"});
  const std::string path = testing::TempDir() + "/snapshot_test." +
                           std::to_string(::getpid()) + ".msnap";
  ASSERT_TRUE(writer.WriteFile(path).ok());

  auto reader = SnapshotReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  auto loaded = reader->ReadTable();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectTablesEqual(table, *loaded);
  auto loaded_kg = reader->ReadKg();
  ASSERT_TRUE(loaded_kg.ok());
  EXPECT_EQ(WriteKgString(kg), WriteKgString(**loaded_kg));

  // The zero-copy views must outlive the reader: drop it, then read.
  Table survives = std::move(*loaded);
  reader = Status::InvalidArgument("dropped");
  uint64_t fingerprint_sum = 0;
  for (size_t c = 0; c < survives.num_columns(); ++c) {
    fingerprint_sum += survives.column(c).ContentFingerprint();
  }
  EXPECT_NE(0u, fingerprint_sum);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Hostile inputs. Every mutation below must produce a clean error Status
// (run under ASan/UBSan in CI — see .github/workflows/ci.yml).

class SnapshotHostileTest : public testing::Test {
 protected:
  void SetUp() override {
    table_ = MakeRandomTable(5);
    kg_ = MakeKg(5);
    bytes_ = MustSerialize(table_, &kg_, {"a"});
  }

  // Opens a mutated image with checksums on or off; the table and KG are
  // also read so section-level validation runs, not just the envelope.
  static Status TryLoad(const std::string& bytes, bool verify) {
    auto image = std::make_shared<AlignedImage>(bytes);
    SnapshotReadOptions options;
    options.verify_checksums = verify;
    auto reader = OpenImage(image, options);
    if (!reader.ok()) return reader.status();
    auto table = reader->ReadTable();
    if (!table.ok()) return table.status();
    if (reader->has_kg()) {
      auto kg = reader->ReadKg();
      if (!kg.ok()) return kg.status();
    }
    return Status::OK();
  }

  Footer ReadFooter() const {
    Footer footer;
    std::memcpy(&footer, bytes_.data() + bytes_.size() - sizeof(Footer),
                sizeof(Footer));
    return footer;
  }

  std::vector<SectionEntry> ReadSections(const Footer& footer) const {
    std::vector<SectionEntry> sections(footer.section_count);
    std::memcpy(sections.data(), bytes_.data() + footer.section_table_offset,
                footer.section_count * sizeof(SectionEntry));
    return sections;
  }

  // Writes back a section entry and refreshes the table CRC in the
  // footer, so envelope checks pass and the mutation under test is the
  // first thing the reader can object to.
  void PatchSection(std::string* bytes, const Footer& footer, size_t index,
                    const SectionEntry& entry) const {
    std::memcpy(bytes->data() + footer.section_table_offset +
                    index * sizeof(SectionEntry),
                &entry, sizeof(entry));
    const uint32_t table_crc =
        Crc32c(bytes->data() + footer.section_table_offset,
               footer.section_count * sizeof(SectionEntry));
    const size_t crc_offset = bytes->size() - sizeof(Footer) +
                              offsetof(Footer, section_table_crc32c);
    std::memcpy(bytes->data() + crc_offset, &table_crc, sizeof(table_crc));
  }

  Table table_;
  TripleStore kg_;
  std::string bytes_;
};

TEST_F(SnapshotHostileTest, TruncationAtEveryLength) {
  // Every proper prefix must fail cleanly; only the full image loads.
  // Stride 1 over the whole file keeps the sweep honest (the file is a
  // few KB) without making the test slow.
  ASSERT_TRUE(TryLoad(bytes_, /*verify=*/true).ok());
  for (size_t len = 0; len < bytes_.size(); ++len) {
    Status status = TryLoad(bytes_.substr(0, len), /*verify=*/true);
    ASSERT_FALSE(status.ok()) << "truncation to " << len << " bytes loaded";
  }
}

TEST_F(SnapshotHostileTest, BadMagic) {
  std::string bytes = bytes_;
  bytes[0] ^= 0x5A;
  Status status = TryLoad(bytes, /*verify=*/true);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(std::string::npos, status.message().find("magic"))
      << status.ToString();
}

TEST_F(SnapshotHostileTest, FutureVersionIsRejected) {
  std::string bytes = bytes_;
  const uint32_t future = kVersion + 1;
  std::memcpy(bytes.data() + offsetof(Header, version), &future,
              sizeof(future));
  Status status = TryLoad(bytes, /*verify=*/true);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(std::string::npos, status.message().find("version"))
      << status.ToString();
}

TEST_F(SnapshotHostileTest, FlippedPayloadByteFailsChecksum) {
  const Footer footer = ReadFooter();
  const std::vector<SectionEntry> sections = ReadSections(footer);
  // Flip the first byte of every non-empty section payload in turn.
  for (const SectionEntry& entry : sections) {
    if (entry.size == 0) continue;
    std::string bytes = bytes_;
    bytes[entry.offset] ^= 0xFF;
    Status status = TryLoad(bytes, /*verify=*/true);
    ASSERT_FALSE(status.ok()) << "flip in section kind " << entry.kind;
    EXPECT_NE(std::string::npos, status.message().find("checksum"))
        << status.ToString();
  }
}

TEST_F(SnapshotHostileTest, MisalignedSectionOffset) {
  const Footer footer = ReadFooter();
  std::vector<SectionEntry> sections = ReadSections(footer);
  std::string bytes = bytes_;
  SectionEntry entry = sections[0];
  entry.offset += 4;  // breaks the 8-alignment invariant.
  PatchSection(&bytes, footer, 0, entry);
  for (bool verify : {true, false}) {
    Status status = TryLoad(bytes, verify);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(std::string::npos, status.message().find("aligned"))
        << status.ToString();
  }
}

TEST_F(SnapshotHostileTest, SectionBeyondFileBounds) {
  const Footer footer = ReadFooter();
  std::vector<SectionEntry> sections = ReadSections(footer);
  std::string bytes = bytes_;
  SectionEntry entry = sections[0];
  entry.size = bytes.size() * 2;
  PatchSection(&bytes, footer, 0, entry);
  for (bool verify : {true, false}) {
    Status status = TryLoad(bytes, verify);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(std::string::npos, status.message().find("bounds"))
        << status.ToString();
  }
}

TEST_F(SnapshotHostileTest, OutOfBoundsDictionaryCode) {
  const Footer footer = ReadFooter();
  const std::vector<SectionEntry> sections = ReadSections(footer);
  // Find the string column's code array and point its first code past
  // the dictionary. With verification off, the unconditional structural
  // gate must still catch it before any borrowed view is formed.
  bool found = false;
  for (const SectionEntry& entry : sections) {
    if (entry.kind != static_cast<uint32_t>(SectionKind::kColumnDictCodes) ||
        entry.size < sizeof(uint32_t)) {
      continue;
    }
    found = true;
    std::string bytes = bytes_;
    const uint32_t huge = 0x7FFFFFFF;
    std::memcpy(bytes.data() + entry.offset, &huge, sizeof(huge));
    Status status = TryLoad(bytes, /*verify=*/false);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(std::string::npos, status.message().find("code out of range"))
        << status.ToString();
    // With verification on, the checksum trips first — either way, a
    // clean error.
    EXPECT_FALSE(TryLoad(bytes, /*verify=*/true).ok());
  }
  ASSERT_TRUE(found) << "test table lost its string column";
}

TEST_F(SnapshotHostileTest, GarbageFiles) {
  Rng rng(99);
  for (size_t trial = 0; trial < 50; ++trial) {
    std::string garbage(rng.NextBelow(4096), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.NextBelow(256));
    EXPECT_FALSE(TryLoad(garbage, /*verify=*/true).ok());
  }
  EXPECT_FALSE(TryLoad(std::string(), /*verify=*/true).ok());
  EXPECT_FALSE(TryLoad(std::string(4096, '\0'), /*verify=*/true).ok());
}

TEST_F(SnapshotHostileTest, MissingFileIsCleanError) {
  auto reader = SnapshotReader::Open("/nonexistent/path/to.msnap");
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(StatusCode::kIOError, reader.status().code());
}

// ---------------------------------------------------------------------------
// Serving parity: NAME=file.msnap must answer byte-identically to the
// CSV + KG it was built from, across the thread-count sweep.

TEST(SnapshotServeParity, RepliesMatchCsvAcrossThreadCounts) {
  GenOptions gen;
  gen.rows = 1500;
  auto dataset = MakeDataset(DatasetKind::kCovid, gen);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();

  const std::string tag = std::to_string(::getpid());
  const std::string csv = testing::TempDir() + "/snap_parity." + tag + ".csv";
  const std::string kg = testing::TempDir() + "/snap_parity." + tag + ".kg";
  const std::string snap =
      testing::TempDir() + "/snap_parity." + tag + ".msnap";
  ASSERT_TRUE(WriteCsvFile(dataset->table, csv).ok());
  ASSERT_TRUE(WriteKgFile(*dataset->kg, kg).ok());
  SnapshotWriter writer;
  writer.SetTable(&dataset->table);
  writer.SetKg(dataset->kg.get());
  writer.SetExtractionColumns(dataset->extraction_columns);
  ASSERT_TRUE(writer.WriteFile(snap).ok());

  const std::vector<std::string> requests = {
      R"({"verb":"explain","dataset":"covid","sql":)"
      R"("SELECT Country, avg(Deaths_per_100_cases) FROM covid GROUP BY Country"})",
      R"({"verb":"explain","dataset":"covid","sql":)"
      R"("SELECT WHO_Region, avg(Confirmed_per_100k) FROM covid GROUP BY WHO_Region"})",
  };

  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    SetNumThreads(threads);

    serve::Router csv_router{serve::RouterOptions{}};
    serve::Router::DatasetSpec csv_spec;
    csv_spec.name = "covid";
    csv_spec.csv_path = csv;
    csv_spec.kg_path = kg;
    csv_spec.extraction_columns = dataset->extraction_columns;
    ASSERT_TRUE(csv_router.AddDataset(csv_spec).ok());

    serve::Router snap_router{serve::RouterOptions{}};
    serve::Router::DatasetSpec snap_spec;
    snap_spec.name = "covid";
    snap_spec.snapshot_path = snap;
    ASSERT_TRUE(snap_router.AddDataset(snap_spec).ok());

    for (const std::string& request : requests) {
      auto csv_reply =
          serve::JsonValue::Parse(csv_router.Handle(request).reply_line);
      auto snap_reply =
          serve::JsonValue::Parse(snap_router.Handle(request).reply_line);
      ASSERT_TRUE(csv_reply.ok() && snap_reply.ok());
      EXPECT_TRUE(csv_reply->GetBool("ok")) << csv_reply->GetString("error");
      EXPECT_EQ(csv_reply->GetBool("ok"), snap_reply->GetBool("ok"));
      // The report is the full formatted explanation; byte equality here
      // is the acceptance bar (trace ids legitimately differ).
      EXPECT_EQ(csv_reply->GetString("report"),
                snap_reply->GetString("report"));
      EXPECT_EQ(csv_reply->GetString("code"), snap_reply->GetString("code"));
    }
  }
  SetNumThreads(1);  // leave a predictable pool for other tests.

  std::remove(csv.c_str());
  std::remove(kg.c_str());
  std::remove(snap.c_str());
}

}  // namespace
}  // namespace snapshot
}  // namespace mesa
