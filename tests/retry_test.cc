#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "common/retry.h"
#include "kg/endpoint.h"
#include "kg/fault_injection.h"
#include "kg/resilient_client.h"
#include "kg/triple_store.h"

namespace mesa {
namespace {

// ------------------------------------------------------------ IsRetryable

TEST(IsRetryable, TransientCodesOnly) {
  EXPECT_TRUE(IsRetryable(StatusCode::kUnavailable));
  EXPECT_TRUE(IsRetryable(StatusCode::kDeadlineExceeded));
  EXPECT_TRUE(IsRetryable(StatusCode::kResourceExhausted));
  EXPECT_FALSE(IsRetryable(StatusCode::kOk));
  EXPECT_FALSE(IsRetryable(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsRetryable(StatusCode::kNotFound));
  EXPECT_FALSE(IsRetryable(StatusCode::kInternal));
  EXPECT_FALSE(IsRetryable(StatusCode::kIOError));
}

TEST(Status, NewTransientFactories) {
  EXPECT_EQ(Status::Unavailable("x").ToString(), "Unavailable: x");
  EXPECT_EQ(Status::DeadlineExceeded("x").ToString(), "DeadlineExceeded: x");
  EXPECT_EQ(Status::ResourceExhausted("x").ToString(),
            "ResourceExhausted: x");
}

// -------------------------------------------------------------- RetryCall

TEST(RetryCall, FirstAttemptSuccess) {
  VirtualClock clock;
  RetryResult r = RetryCall(RetryOptions{}, &clock, nullptr, 1,
                            [] { return Status::OK(); });
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.attempts, 1u);
  EXPECT_FALSE(r.retried);
  EXPECT_EQ(r.waited_ms, 0u);
  EXPECT_EQ(clock.NowMs(), 0u);
}

TEST(RetryCall, TransientFailuresAreRetriedUntilSuccess) {
  VirtualClock clock;
  int calls = 0;
  RetryResult r = RetryCall(RetryOptions{}, &clock, nullptr, 2, [&] {
    return ++calls < 3 ? Status::Unavailable("flaky") : Status::OK();
  });
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.attempts, 3u);
  EXPECT_TRUE(r.retried);
  EXPECT_GT(r.waited_ms, 0u);
  // All waiting happened on the virtual clock, none on the wall clock.
  EXPECT_EQ(clock.NowMs(), r.waited_ms);
}

TEST(RetryCall, PermanentFailureIsNotRetried) {
  VirtualClock clock;
  int calls = 0;
  RetryResult r = RetryCall(RetryOptions{}, &clock, nullptr, 3, [&] {
    ++calls;
    return Status::Internal("malformed");
  });
  EXPECT_EQ(r.status.code(), StatusCode::kInternal);
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(r.retried);
}

TEST(RetryCall, DeadlineBoundsUnboundedRetries) {
  VirtualClock clock;
  RetryOptions options;
  options.max_attempts = 0;  // unbounded: the deadline is the stop condition
  options.deadline_ms = 200;
  int calls = 0;
  RetryResult r = RetryCall(options, &clock, nullptr, 4, [&] {
    ++calls;
    return Status::Unavailable("down for good");
  });
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_GT(calls, 1);
  EXPECT_LE(clock.NowMs(), 200u);
}

TEST(RetryCall, MaxAttemptsBound) {
  VirtualClock clock;
  RetryOptions options;
  options.max_attempts = 3;
  RetryResult r = RetryCall(options, &clock, nullptr, 5,
                            [] { return Status::ResourceExhausted("429"); });
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(r.attempts, 3u);
  EXPECT_NE(r.status.message().find("after 3 attempts"), std::string::npos);
}

TEST(RetryCall, BackoffScheduleIsAPureFunctionOfTheCallKey) {
  auto run = [](uint64_t key) {
    VirtualClock clock;
    int calls = 0;
    RetryResult r = RetryCall(RetryOptions{}, &clock, nullptr, key, [&] {
      return ++calls < 5 ? Status::Unavailable("flaky") : Status::OK();
    });
    return r.waited_ms;
  };
  EXPECT_EQ(run(7), run(7));      // same key -> identical schedule
  EXPECT_NE(run(7), run(8));      // different key -> different jitter stream
}

// ---------------------------------------------------------- CircuitBreaker

TEST(CircuitBreaker, OpensAfterConsecutiveFailures) {
  CircuitBreaker breaker(BreakerOptions{2, 100, ""});
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure(0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure(1);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.times_opened(), 1u);

  uint64_t retry_at = 0;
  EXPECT_FALSE(breaker.Allow(50, &retry_at));
  EXPECT_EQ(retry_at, 101u);  // opened at t=1 + cooldown 100
}

TEST(CircuitBreaker, SuccessResetsTheFailureStreak) {
  CircuitBreaker breaker(BreakerOptions{2, 100, ""});
  breaker.RecordFailure(0);
  breaker.RecordSuccess();
  breaker.RecordFailure(1);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreaker, HalfOpenProbeSuccessCloses) {
  CircuitBreaker breaker(BreakerOptions{1, 100, ""});
  breaker.RecordFailure(0);
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  uint64_t retry_at = 0;
  EXPECT_TRUE(breaker.Allow(100, &retry_at));  // cooldown elapsed: probe
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  // Only one probe may fly at a time.
  EXPECT_FALSE(breaker.Allow(100, &retry_at));
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreaker, HalfOpenProbeFailureReopens) {
  CircuitBreaker breaker(BreakerOptions{1, 100, ""});
  breaker.RecordFailure(0);
  uint64_t retry_at = 0;
  ASSERT_TRUE(breaker.Allow(100, &retry_at));
  breaker.RecordFailure(100);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.times_opened(), 2u);
  EXPECT_FALSE(breaker.Allow(150, &retry_at));
  EXPECT_EQ(retry_at, 200u);  // cooldown restarted at the probe failure
}

TEST(RetryCall, OpenBreakerIsWaitedOutNotFailedFast) {
  VirtualClock clock;
  CircuitBreaker breaker(BreakerOptions{1, 100, ""});
  breaker.RecordFailure(0);  // breaker starts open
  int calls = 0;
  RetryResult r = RetryCall(RetryOptions{}, &clock, &breaker, 6, [&] {
    ++calls;
    return Status::OK();
  });
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_GE(r.waited_ms, 100u);  // cooldown converted into latency
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

// ------------------------------------------------------------ StableHash64

TEST(StableHash64, MatchesFnv1aReferenceValues) {
  // Published FNV-1a 64-bit vectors; pinning them keeps fault plans and
  // retry schedules stable across standard libraries and platforms.
  EXPECT_EQ(StableHash64(""), 14695981039346656037ULL);
  EXPECT_EQ(StableHash64("a"), 12638187200555641996ULL);
  EXPECT_EQ(StableHash64("foobar"), 9625390261332436968ULL);
}

// --------------------------------------------------------------- FaultPlan

TEST(FaultPlan, ParseEmptyHasNoFaults) {
  auto plan = FaultPlan::Parse("");
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->has_faults());
}

TEST(FaultPlan, ParseRatesSeedAndLatency) {
  auto plan = FaultPlan::Parse(
      "seed=42; timeout=0.15, rate_limit=0.1; unavailable=0.05;"
      "truncate=0.02; malformed=0.01; fail_keys=0.03; latency=1:5");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->has_faults());
  EXPECT_EQ(plan->seed, 42u);
  EXPECT_DOUBLE_EQ(plan->rates.timeout, 0.15);
  EXPECT_DOUBLE_EQ(plan->rates.rate_limit, 0.1);
  EXPECT_DOUBLE_EQ(plan->rates.unavailable, 0.05);
  EXPECT_DOUBLE_EQ(plan->rates.truncate, 0.02);
  EXPECT_DOUBLE_EQ(plan->rates.malformed, 0.01);
  EXPECT_DOUBLE_EQ(plan->rates.fail_keys, 0.03);
  EXPECT_EQ(plan->rates.latency_min_ms, 1u);
  EXPECT_EQ(plan->rates.latency_max_ms, 5u);
}

TEST(FaultPlan, ParseFixedLatency) {
  auto plan = FaultPlan::Parse("latency=7");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->rates.latency_min_ms, 7u);
  EXPECT_EQ(plan->rates.latency_max_ms, 7u);
  EXPECT_TRUE(plan->has_faults());
}

TEST(FaultPlan, PerOpOverrideStartsFromTheDefaults) {
  auto plan = FaultPlan::Parse("timeout=0.5; properties.timeout=0.0");
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->RatesFor("resolve").timeout, 0.5);
  EXPECT_DOUBLE_EQ(plan->RatesFor("properties").timeout, 0.0);
  EXPECT_DOUBLE_EQ(plan->RatesFor("describe").timeout, 0.5);
}

TEST(FaultPlan, RejectsGarbage) {
  EXPECT_FALSE(FaultPlan::Parse("frobnicate=1").ok());       // unknown key
  EXPECT_FALSE(FaultPlan::Parse("timeout=1.5").ok());        // rate > 1
  EXPECT_FALSE(FaultPlan::Parse("timeout=-0.1").ok());       // rate < 0
  EXPECT_FALSE(FaultPlan::Parse("timeout=abc").ok());        // not a number
  EXPECT_FALSE(FaultPlan::Parse("latency=5:1").ok());        // min > max
  EXPECT_FALSE(FaultPlan::Parse("latency=1:2:3").ok());      // bad shape
  EXPECT_FALSE(FaultPlan::Parse("teleport.timeout=1").ok()); // unknown op
  EXPECT_FALSE(FaultPlan::Parse("timeout").ok());            // missing '='
}

TEST(FaultPlan, FromEnvReadsAndValidates) {
  ::setenv("MESA_FAULT_PLAN", "seed=9;timeout=0.25", 1);
  auto plan = FaultPlan::FromEnv();
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->seed, 9u);
  EXPECT_DOUBLE_EQ(plan->rates.timeout, 0.25);

  ::setenv("MESA_FAULT_PLAN", "not a plan", 1);
  EXPECT_FALSE(FaultPlan::FromEnv().ok());

  ::unsetenv("MESA_FAULT_PLAN");
  auto unset = FaultPlan::FromEnv();
  ASSERT_TRUE(unset.ok());
  EXPECT_FALSE(unset->has_faults());
}

// ----------------------------------------------------------- endpoint stack

TripleStore MakeKg() {
  TripleStore kg;
  EntityId de = *kg.AddEntity("Germany", "Country");
  EntityId fr = *kg.AddEntity("France", "Country");
  EXPECT_TRUE(kg.AddLiteral(de, "hdi", Value::Double(0.94)).ok());
  EXPECT_TRUE(kg.AddLiteral(fr, "hdi", Value::Double(0.90)).ok());
  EXPECT_TRUE(kg.AddEdge(de, "neighbor", fr).ok());
  return kg;
}

TEST(LocalEndpoint, AnswersFromTheStore) {
  TripleStore kg = MakeKg();
  LocalEndpoint ep(&kg);

  auto link = ep.Resolve("Germany", EntityLinkerOptions{});
  ASSERT_TRUE(link.ok());
  ASSERT_TRUE(link->linked());

  auto props = ep.Properties(*link->entity);
  ASSERT_TRUE(props.ok());
  ASSERT_EQ(props->size(), 2u);
  EXPECT_EQ((*props)[0].predicate, "hdi");
  EXPECT_FALSE((*props)[0].is_entity);
  EXPECT_TRUE((*props)[1].is_entity);
  EXPECT_EQ((*props)[1].entity_label, "France");  // label inlined

  auto info = ep.Describe(*link->entity);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->label, "Germany");
  EXPECT_EQ(info->type, "Country");
  EXPECT_FALSE(ep.Describe(99).ok());
}

TEST(FaultInjectingEndpoint, CertainTimeoutAlwaysFaults) {
  TripleStore kg = MakeKg();
  auto plan = FaultPlan::Parse("seed=1;timeout=1.0");
  ASSERT_TRUE(plan.ok());
  FaultInjectingEndpoint ep(std::make_shared<LocalEndpoint>(&kg), *plan);

  for (int i = 0; i < 3; ++i) {
    auto r = ep.Resolve("Germany", EntityLinkerOptions{});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  }
  EXPECT_EQ(ep.counters().calls, 3u);
  EXPECT_EQ(ep.counters().faults, 3u);
}

TEST(FaultInjectingEndpoint, FailKeysIsPermanentPerArgument) {
  TripleStore kg = MakeKg();
  auto plan = FaultPlan::Parse("seed=1;fail_keys=1.0");
  ASSERT_TRUE(plan.ok());
  FaultInjectingEndpoint ep(std::make_shared<LocalEndpoint>(&kg), *plan);

  // Every retry of the same argument fails identically (kInternal: the
  // resilient client must not burn its budget on these).
  for (int attempt = 0; attempt < 3; ++attempt) {
    auto r = ep.Resolve("Germany", EntityLinkerOptions{});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  }
}

TEST(FaultInjectingEndpoint, FaultSequenceIsDeterministic) {
  TripleStore kg = MakeKg();
  auto plan = FaultPlan::Parse("seed=5;timeout=0.3;rate_limit=0.2");
  ASSERT_TRUE(plan.ok());

  auto run = [&] {
    FaultInjectingEndpoint ep(std::make_shared<LocalEndpoint>(&kg), *plan);
    std::vector<StatusCode> codes;
    for (int i = 0; i < 20; ++i) {
      codes.push_back(
          ep.Resolve(i % 2 ? "Germany" : "France", EntityLinkerOptions{})
              .status()
              .code());
    }
    return codes;
  };
  EXPECT_EQ(run(), run());
}

TEST(FaultInjectingEndpoint, InjectedLatencyAdvancesTheBoundClock) {
  TripleStore kg = MakeKg();
  auto plan = FaultPlan::Parse("seed=1;latency=5");
  ASSERT_TRUE(plan.ok());
  FaultInjectingEndpoint ep(std::make_shared<LocalEndpoint>(&kg), *plan);
  VirtualClock clock;
  ep.BindClock(&clock);
  ASSERT_TRUE(ep.Resolve("Germany", EntityLinkerOptions{}).ok());
  EXPECT_EQ(clock.NowMs(), 5u);
}

// ------------------------------------------------------- ResilientKgClient

TEST(ResilientKgClient, MasksTransientFaultsExactly) {
  TripleStore kg = MakeKg();
  auto plan =
      FaultPlan::Parse("seed=11;timeout=0.4;rate_limit=0.2;unavailable=0.1");
  ASSERT_TRUE(plan.ok());

  ResilientKgClient reliable(std::make_shared<LocalEndpoint>(&kg));
  ResilientKgClient faulty(
      std::make_shared<FaultInjectingEndpoint>(
          std::make_shared<LocalEndpoint>(&kg), *plan));

  for (const char* name : {"Germany", "France", "Atlantis"}) {
    auto a = reliable.Resolve(name, EntityLinkerOptions{});
    auto b = faulty.Resolve(name, EntityLinkerOptions{});
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok()) << name << ": " << b.status().ToString();
    EXPECT_EQ(a->outcome, b->outcome);
    EXPECT_EQ(a->entity, b->entity);
  }
  for (EntityId id : {EntityId{0}, EntityId{1}}) {
    auto a = reliable.Properties(id);
    auto b = faulty.Properties(id);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].predicate, (*b)[i].predicate);
    }
  }
  // The masking was not free: some calls needed retries, all on the
  // virtual clock.
  EXPECT_GT(faulty.counters().attempts, faulty.counters().calls);
  EXPECT_GT(faulty.counters().calls_retried, 0u);
  EXPECT_EQ(faulty.counters().failures, 0u);
  EXPECT_GT(faulty.clock().NowMs(), 0u);
}

TEST(ResilientKgClient, CachesPositiveResolveResponses) {
  TripleStore kg = MakeKg();
  ResilientKgClient client(std::make_shared<LocalEndpoint>(&kg));
  ASSERT_TRUE(client.Resolve("Germany", EntityLinkerOptions{}).ok());
  uint64_t attempts_after_first = client.counters().attempts;
  ASSERT_TRUE(client.Resolve("Germany", EntityLinkerOptions{}).ok());
  EXPECT_EQ(client.counters().attempts, attempts_after_first);
  EXPECT_EQ(client.counters().cache_hits, 1u);
}

TEST(ResilientKgClient, BulkPayloadsAreRefetchedNotCached) {
  // Properties payloads are deliberately not retained: refetching is
  // cheap next to copying and holding every payload forever.
  TripleStore kg = MakeKg();
  ResilientKgClient client(std::make_shared<LocalEndpoint>(&kg));
  ASSERT_TRUE(client.Properties(0).ok());
  uint64_t attempts_after_first = client.counters().attempts;
  ASSERT_TRUE(client.Properties(0).ok());
  EXPECT_EQ(client.counters().attempts, attempts_after_first + 1);
  EXPECT_EQ(client.counters().cache_hits, 0u);
}

TEST(ResilientKgClient, CachesPermanentFailuresNegatively) {
  TripleStore kg = MakeKg();
  auto plan = FaultPlan::Parse("seed=1;fail_keys=1.0");
  ASSERT_TRUE(plan.ok());
  ResilientKgClient client(std::make_shared<FaultInjectingEndpoint>(
      std::make_shared<LocalEndpoint>(&kg), *plan));

  auto first = client.Resolve("Germany", EntityLinkerOptions{});
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kInternal);
  uint64_t attempts_after_first = client.counters().attempts;

  auto second = client.Resolve("Germany", EntityLinkerOptions{});
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kInternal);
  EXPECT_EQ(client.counters().attempts, attempts_after_first);
  EXPECT_EQ(client.counters().cache_hits, 1u);
  EXPECT_EQ(client.counters().failures, 2u);
}

TEST(ResilientKgClient, BreakerOpensUnderAPermanentFailureStorm) {
  TripleStore kg = MakeKg();
  auto plan = FaultPlan::Parse("seed=1;malformed=1.0");
  ASSERT_TRUE(plan.ok());
  KgClientOptions options;
  options.breaker.failure_threshold = 3;
  options.breaker.metric_prefix.clear();
  ResilientKgClient client(
      std::make_shared<FaultInjectingEndpoint>(
          std::make_shared<LocalEndpoint>(&kg), *plan),
      options);

  // Distinct keys so the negative cache cannot absorb the storm.
  for (EntityId id = 0; id < 6; ++id) {
    EXPECT_FALSE(client.Describe(id).ok());
  }
  EXPECT_GE(client.breaker().times_opened(), 1u);
}

}  // namespace
}  // namespace mesa
