#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "table/csv.h"

namespace mesa {
namespace {

TEST(CsvRead, BasicTypeInference) {
  auto t = ReadCsvString("a,b,c,d\n1,1.5,x,true\n2,2.5,y,false\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().field(0).type, DataType::kInt64);
  EXPECT_EQ(t->schema().field(1).type, DataType::kDouble);
  EXPECT_EQ(t->schema().field(2).type, DataType::kString);
  EXPECT_EQ(t->schema().field(3).type, DataType::kBool);
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->GetCell(1, "a")->int_value(), 2);
  EXPECT_TRUE(t->GetCell(1, "d")->is_bool());
}

TEST(CsvRead, IntColumnWithDecimalBecomesDouble) {
  auto t = ReadCsvString("x\n1\n2.5\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().field(0).type, DataType::kDouble);
}

TEST(CsvRead, NullTokens) {
  auto t = ReadCsvString("x,y\n1,a\n,b\nNA,c\nnull,d\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().field(0).type, DataType::kInt64);
  EXPECT_EQ(t->column(0).null_count(), 3u);
}

TEST(CsvRead, QuotedFields) {
  auto t = ReadCsvString(
      "name,notes\n\"Smith, John\",\"said \"\"hi\"\"\"\nplain,\"multi\nline\"\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->GetCell(0, "name")->string_value(), "Smith, John");
  EXPECT_EQ(t->GetCell(0, "notes")->string_value(), "said \"hi\"");
  EXPECT_EQ(t->GetCell(1, "notes")->string_value(), "multi\nline");
}

TEST(CsvRead, CrLfLineEndings) {
  auto t = ReadCsvString("a,b\r\n1,2\r\n3,4\r\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->GetCell(1, "b")->int_value(), 4);
}

TEST(CsvRead, RejectsRaggedRecords) {
  auto t = ReadCsvString("a,b\n1,2\n3\n");
  EXPECT_FALSE(t.ok());
}

TEST(CsvRead, RejectsEmptyInput) { EXPECT_FALSE(ReadCsvString("").ok()); }

TEST(CsvRead, HeaderOnly) {
  auto t = ReadCsvString("a,b\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 0u);
  EXPECT_EQ(t->num_columns(), 2u);
}

TEST(CsvRead, AllNullColumnDegradesToString) {
  auto t = ReadCsvString("a,b\n,1\n,2\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().field(0).type, DataType::kString);
  EXPECT_EQ(t->column(0).null_count(), 2u);
}

TEST(CsvRead, CustomDelimiter) {
  CsvReadOptions opts;
  opts.delimiter = ';';
  auto t = ReadCsvString("a;b\n1;2\n", opts);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->GetCell(0, "b")->int_value(), 2);
}

TEST(CsvRoundTrip, PreservesData) {
  const std::string csv = "id,name,score\n1,alpha,0.5\n2,\"beta, the 2nd\",1.5\n";
  auto t = ReadCsvString(csv);
  ASSERT_TRUE(t.ok());
  std::string out = WriteCsvString(*t);
  auto t2 = ReadCsvString(out);
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t2->num_rows(), t->num_rows());
  for (size_t r = 0; r < t->num_rows(); ++r) {
    for (size_t c = 0; c < t->num_columns(); ++c) {
      EXPECT_EQ(t->column(c).GetValue(r), t2->column(c).GetValue(r))
          << "cell " << r << "," << c;
    }
  }
}

TEST(CsvRoundTrip, NullsRenderAsEmpty) {
  auto t = ReadCsvString("a,b\n1,\n,2\n");
  ASSERT_TRUE(t.ok());
  std::string out = WriteCsvString(*t);
  auto t2 = ReadCsvString(out);
  ASSERT_TRUE(t2.ok());
  EXPECT_TRUE(t2->column(1).IsNull(0));
  EXPECT_TRUE(t2->column(0).IsNull(1));
}

TEST(CsvFile, WriteAndReadBack) {
  auto t = ReadCsvString("a,b\n1,x\n2,y\n");
  ASSERT_TRUE(t.ok());
  std::string path = testing::TempDir() + "/mesa_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(*t, path).ok());
  auto t2 = ReadCsvFile(path);
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t2->num_rows(), 2u);
  std::remove(path.c_str());
}

TEST(CsvFile, MissingFileIsIOError) {
  EXPECT_EQ(ReadCsvFile("/nonexistent/nope.csv").status().code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace mesa
