// Second property/reference layer: statistical guarantees and textbook
// reference values that the estimator stack must honour.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "core/subgroups.h"
#include "info/mutual_information.h"
#include "missing/ipw.h"
#include "missing/mask.h"
#include "query/sql_parser.h"
#include "stats/distributions.h"
#include "table/table_builder.h"

namespace mesa {
namespace {

// ------------------------- IPW recovery: the Section 3.2 guarantee itself

// Under outcome-driven missingness, the complete-case MI estimate of
// I(attr; outcome) is biased; the IPW-weighted estimate must land closer
// to the full-data truth. This is the property Figure 3 visualises.
class IpwRecoveryProperty : public testing::TestWithParam<uint64_t> {};

TEST_P(IpwRecoveryProperty, WeightedEstimateCloserToTruth) {
  Rng rng(2000 + GetParam());
  const size_t n = 20000;
  TableBuilder b(Schema({{"attr", DataType::kDouble},
                         {"outcome", DataType::kDouble}}));
  std::vector<double> attr_vals, outcome_vals;
  for (size_t i = 0; i < n; ++i) {
    double latent = rng.NextGaussian();
    double attr = latent + rng.NextGaussian(0, 0.5);
    double outcome = latent + rng.NextGaussian(0, 0.5);
    attr_vals.push_back(attr);
    outcome_vals.push_back(outcome);
    MESA_CHECK(
        b.AppendRow({Value::Double(attr), Value::Double(outcome)}).ok());
  }
  Table t = *b.Finish();

  // Truth: MI on the fully observed data.
  DiscretizerOptions d;
  Discretized da = DiscretizeVector(attr_vals, d);
  Discretized dy = DiscretizeVector(outcome_vals, d);
  CodedVariable full_a{da.codes, da.cardinality};
  CodedVariable full_y{dy.codes, dy.cardinality};
  double truth = MutualInformation(full_a, full_y);
  ASSERT_GT(truth, 0.2);

  // Outcome-driven removal: drop attr mostly where the outcome is high.
  Column* col = *t.MutableColumnByName("attr");
  Rng removal(999 + GetParam());
  for (size_t i = 0; i < n; ++i) {
    double p = outcome_vals[i] > 0.6 ? 0.8 : 0.1;
    if (removal.NextBernoulli(p)) col->SetNull(i);
  }

  // Re-code attr over complete cases only (codes carry -1 for missing).
  CodedVariable damaged_a = full_a;
  for (size_t i = 0; i < n; ++i) {
    if (col->IsNull(i)) damaged_a.codes[i] = -1;
  }
  double complete_case = MutualInformation(damaged_a, full_y);

  IpwOptions ipw;
  ipw.covariates = {"outcome"};
  auto w = ComputeIpwWeights(t, "attr", ipw);
  ASSERT_TRUE(w.ok());
  double weighted = MutualInformation(damaged_a, full_y, &w->weights);

  EXPECT_LT(std::fabs(weighted - truth), std::fabs(complete_case - truth))
      << "truth=" << truth << " cc=" << complete_case << " ipw=" << weighted;
}

INSTANTIATE_TEST_SUITE_P(Seeds, IpwRecoveryProperty,
                         testing::Range<uint64_t>(1, 7));

// ------------------------------------- data-processing inequality for MI

class DataProcessingProperty
    : public testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(DataProcessingProperty, CoarseningNeverGainsInformation) {
  auto [card, seed] = GetParam();
  Rng rng(seed * 101);
  const size_t n = 5000;
  std::vector<int32_t> xs, ys, coarse;
  for (size_t i = 0; i < n; ++i) {
    int32_t x = static_cast<int32_t>(rng.NextBelow(card));
    xs.push_back(x);
    // Y depends on X through a noisy channel.
    ys.push_back(rng.NextBernoulli(0.7)
                     ? x
                     : static_cast<int32_t>(rng.NextBelow(card)));
    coarse.push_back(x / 2);  // deterministic coarsening f(X)
  }
  CodedVariable x{xs, card};
  CodedVariable y{ys, card};
  CodedVariable fx{coarse, (card + 1) / 2};
  // I(f(X); Y) <= I(X; Y) up to estimator noise.
  EXPECT_LE(MutualInformation(fx, y), MutualInformation(x, y) + 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DataProcessingProperty,
    testing::Combine(testing::Values(4, 8, 12), testing::Values(1u, 2u, 3u)));

// -------------------------------------------------- parser round-tripping

class ParserRoundTripProperty : public testing::TestWithParam<uint64_t> {};

TEST_P(ParserRoundTripProperty, ToSqlReparsesToSameSpec) {
  Rng rng(GetParam() * 7 + 3);
  const char* cols[] = {"Country", "City", "Salary", "Delay", "Age", "Score"};
  const char* values[] = {"Europe", "Asia", "x y", "O'Neil"};
  QuerySpec q;
  q.exposure = cols[rng.NextBelow(2)];
  if (rng.NextBernoulli(0.4)) {
    q.secondary_exposures.push_back(q.exposure == "Country" ? "City"
                                                            : "Country");
  }
  q.outcome = cols[2 + rng.NextBelow(4)];
  q.aggregate = static_cast<AggregateFunction>(rng.NextBelow(5));
  size_t conds = rng.NextBelow(3);
  for (size_t i = 0; i < conds; ++i) {
    Condition c;
    c.column = std::string("attr") + std::to_string(i);
    switch (rng.NextBelow(3)) {
      case 0:
        c.op = CompareOp::kEq;
        c.value = Value::String(values[rng.NextBelow(4)]);
        break;
      case 1:
        c.op = CompareOp::kGe;
        c.value = Value::Int(rng.NextInt(-5, 100));
        break;
      default:
        c.op = CompareOp::kIn;
        c.in_values = {Value::String("a"), Value::Int(3)};
        break;
    }
    q.context.Add(std::move(c));
  }
  auto reparsed = ParseQuery(q.ToSql());
  ASSERT_TRUE(reparsed.ok()) << q.ToSql() << " -> "
                             << reparsed.status().ToString();
  EXPECT_EQ(reparsed->exposure, q.exposure);
  EXPECT_EQ(reparsed->secondary_exposures, q.secondary_exposures);
  EXPECT_EQ(reparsed->outcome, q.outcome);
  EXPECT_EQ(reparsed->aggregate, q.aggregate);
  EXPECT_EQ(reparsed->context.ToString(), q.context.ToString());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRoundTripProperty,
                         testing::Range<uint64_t>(1, 21));

// ------------------------------------------- distribution reference table

struct TQuantileCase {
  double df;
  double t975;  // 97.5th percentile
};

class StudentTReference : public testing::TestWithParam<TQuantileCase> {};

TEST_P(StudentTReference, MatchesTextbookQuantiles) {
  const TQuantileCase& c = GetParam();
  EXPECT_NEAR(StudentTCdf(c.t975, c.df), 0.975, 1.5e-3)
      << "df=" << c.df;
  EXPECT_NEAR(StudentTPValueTwoSided(c.t975, c.df), 0.05, 3e-3);
}

INSTANTIATE_TEST_SUITE_P(Table, StudentTReference,
                         testing::Values(TQuantileCase{1, 12.706},
                                         TQuantileCase{2, 4.303},
                                         TQuantileCase{5, 2.571},
                                         TQuantileCase{10, 2.228},
                                         TQuantileCase{30, 2.042},
                                         TQuantileCase{120, 1.980}));

struct Chi2Case {
  double df;
  double x95;  // 95th percentile
};

class ChiSquaredReference : public testing::TestWithParam<Chi2Case> {};

TEST_P(ChiSquaredReference, MatchesTextbookQuantiles) {
  const Chi2Case& c = GetParam();
  EXPECT_NEAR(ChiSquaredSf(c.x95, c.df), 0.05, 2e-3) << "df=" << c.df;
}

INSTANTIATE_TEST_SUITE_P(Table, ChiSquaredReference,
                         testing::Values(Chi2Case{1, 3.841},
                                         Chi2Case{2, 5.991},
                                         Chi2Case{5, 11.070},
                                         Chi2Case{10, 18.307},
                                         Chi2Case{20, 31.410},
                                         Chi2Case{50, 67.505}));

// ----------------------------------------- subgroup threshold monotonicity

TEST(SubgroupMonotonicity, HigherThresholdYieldsSubsetOfGroups) {
  Rng rng(77);
  const size_t kGroups = 40;
  std::vector<double> conf(kGroups), hidden(kGroups);
  for (auto& v : conf) v = rng.NextGaussian();
  for (auto& v : hidden) v = rng.NextGaussian();
  TableBuilder b(Schema({{"g", DataType::kString},
                         {"region", DataType::kString},
                         {"conf", DataType::kDouble},
                         {"o", DataType::kDouble}}));
  for (int i = 0; i < 8000; ++i) {
    size_t g = rng.NextBelow(kGroups);
    std::string region = "R" + std::to_string(g % 4);
    double o = (g % 4 == 0 ? 3.0 * hidden[g] : 3.0 * conf[g]) +
               rng.NextGaussian(0, 0.3);
    MESA_CHECK(b.AppendRow({Value::String("g" + std::to_string(g)),
                            Value::String(region), Value::Double(conf[g]),
                            Value::Double(o)})
                   .ok());
  }
  Table t = *b.Finish();
  QuerySpec q;
  q.exposure = "g";
  q.outcome = "o";
  SubgroupOptions lo, hi;
  lo.top_k = hi.top_k = 10;
  lo.threshold = 0.05;
  hi.threshold = 0.5;
  lo.refinement_attributes = hi.refinement_attributes = {"region"};
  auto groups_lo = FindUnexplainedSubgroups(t, q, {"conf"}, lo);
  auto groups_hi = FindUnexplainedSubgroups(t, q, {"conf"}, hi);
  ASSERT_TRUE(groups_lo.ok() && groups_hi.ok());
  EXPECT_GE(groups_lo->size(), groups_hi->size());
  // Every high-threshold group also qualifies at the low threshold.
  for (const auto& g_hi : *groups_hi) {
    bool found = false;
    for (const auto& g_lo : *groups_lo) {
      if (g_lo.refinement.ToString() == g_hi.refinement.ToString()) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << g_hi.refinement.ToString();
  }
}

}  // namespace
}  // namespace mesa
