// Fuzz-style tests for the SQL parser (primary ASan target; build with
// cmake -DMESA_SANITIZE=address and run this binary). Two attack modes:
//
//  1. A seeded generator emits random *valid* queries, which must
//     round-trip parse -> ToSql -> parse to a fixed point (the second and
//     third renderings are byte-identical, and the parsed specs agree).
//  2. Those queries are then mutated — truncated, spliced, peppered with
//     random bytes (quotes, parens, control and non-ASCII bytes) — and
//     the parser must return an error Status or a spec, but never crash,
//     hang, or touch memory it does not own.

#include "query/sql_parser.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "query/query_spec.h"

namespace mesa {
namespace {

// Keywords and aggregate names the generator must not emit as
// identifiers: ToSql() prints identifiers bare, so a keyword-shaped
// identifier would legitimately parse differently on the second pass.
bool IsReservedWord(const std::string& word) {
  static const std::vector<std::string> kReserved = {
      "select", "from",  "where", "group", "by",     "and",
      "in",     "true",  "false", "null",  "avg",    "mean",
      "average", "sum",  "count", "min",   "max",    "median",
      "stddev", "std",   "stdev"};
  std::string lower;
  for (char c : word) {
    lower += static_cast<char>(c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c);
  }
  for (const auto& r : kReserved) {
    if (lower == r) return true;
  }
  return false;
}

class QueryGenerator {
 public:
  explicit QueryGenerator(uint64_t seed) : rng_(seed) {}

  std::string Identifier() {
    static const char kFirst[] =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_";
    static const char kRest[] =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_0123456789";
    for (;;) {
      std::string id;
      id += kFirst[rng_.NextBelow(sizeof(kFirst) - 1)];
      size_t len = rng_.NextBelow(9);
      for (size_t i = 0; i < len; ++i) {
        id += kRest[rng_.NextBelow(sizeof(kRest) - 1)];
      }
      if (!IsReservedWord(id)) return id;
    }
  }

  std::string StringLiteral() {
    // Printable ASCII including embedded quotes (escaped as '' by the
    // lexer/printer) and spaces.
    std::string s = "'";
    size_t len = rng_.NextBelow(12);
    for (size_t i = 0; i < len; ++i) {
      char c = static_cast<char>(0x20 + rng_.NextBelow(0x5f));
      if (c == '\'') {
        s += "''";
      } else {
        s += c;
      }
    }
    s += '\'';
    return s;
  }

  std::string Literal() {
    switch (rng_.NextBelow(4)) {
      case 0:
        return std::to_string(static_cast<int64_t>(rng_.NextBelow(2000000)) -
                              1000000);
      case 1: {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.6g",
                      rng_.NextUniform(-1e6, 1e6));
        return buf;
      }
      case 2:
        return rng_.NextBelow(2) == 0 ? "true" : "false";
      default:
        return StringLiteral();
    }
  }

  std::string Condition() {
    static const char* kOps[] = {"=", "!=", "<>", "<", "<=", ">", ">="};
    std::string cond = Identifier();
    if (rng_.NextBelow(5) == 0) {
      cond += " IN (";
      size_t n = 1 + rng_.NextBelow(4);
      for (size_t i = 0; i < n; ++i) {
        if (i > 0) cond += ", ";
        cond += Literal();
      }
      cond += ")";
    } else {
      cond += " ";
      cond += kOps[rng_.NextBelow(7)];
      cond += " ";
      cond += Literal();
    }
    return cond;
  }

  std::string Query() {
    // Grouping columns (1-3) + one aggregate, in any select-list slot.
    size_t num_groups = 1 + rng_.NextBelow(3);
    std::vector<std::string> groups;
    for (size_t i = 0; i < num_groups; ++i) groups.push_back(Identifier());
    static const char* kAggs[] = {"avg", "sum", "count", "min", "max",
                                  "median", "stddev"};
    std::string agg = kAggs[rng_.NextBelow(7)];
    size_t agg_slot = rng_.NextBelow(num_groups + 1);

    std::string sql = "SELECT ";
    size_t emitted = 0;
    for (size_t slot = 0; slot <= num_groups; ++slot) {
      if (emitted > 0) sql += ", ";
      if (slot == agg_slot) {
        sql += agg;
        sql += "(";
        sql += Identifier();
        sql += ")";
      } else {
        sql += groups[slot < agg_slot ? slot : slot - 1];
      }
      ++emitted;
    }
    sql += " FROM ";
    sql += Identifier();
    if (rng_.NextBelow(2) == 0) {
      sql += " WHERE ";
      size_t n = 1 + rng_.NextBelow(3);
      for (size_t i = 0; i < n; ++i) {
        if (i > 0) sql += " AND ";
        sql += Condition();
      }
    }
    sql += " GROUP BY ";
    for (size_t i = 0; i < groups.size(); ++i) {
      if (i > 0) sql += ", ";
      sql += groups[i];
    }
    if (rng_.NextBelow(3) == 0) sql += ";";
    return sql;
  }

  Rng& rng() { return rng_; }

 private:
  Rng rng_;
};

TEST(SqlParserFuzz, GeneratedQueriesRoundTripToFixedPoint) {
  QueryGenerator gen(20260807);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::string sql = gen.Query();
    SCOPED_TRACE("sql: " + sql);
    auto spec1 = ParseQuery(sql);
    ASSERT_TRUE(spec1.ok()) << spec1.status().ToString();
    const std::string sql2 = spec1->ToSql();
    auto spec2 = ParseQuery(sql2);
    ASSERT_TRUE(spec2.ok())
        << "printed form failed to reparse: " << sql2 << " — "
        << spec2.status().ToString();
    // Fixed point: printing the reparsed spec changes nothing.
    EXPECT_EQ(sql2, spec2->ToSql());
    // And the specs agree on every semantic field.
    EXPECT_EQ(spec1->exposure, spec2->exposure);
    EXPECT_EQ(spec1->secondary_exposures, spec2->secondary_exposures);
    EXPECT_EQ(spec1->outcome, spec2->outcome);
    EXPECT_EQ(spec1->aggregate, spec2->aggregate);
    EXPECT_EQ(spec1->table_name, spec2->table_name);
    EXPECT_TRUE(spec1->context == spec2->context);
  }
}

TEST(SqlParserFuzz, MutatedQueriesNeverCrash) {
  QueryGenerator gen(97);
  // Byte pool biased toward syntax-relevant characters plus control and
  // non-ASCII bytes.
  const std::string pool =
      "'\"(),;=<>! \t\n\rSELECTfromwheregroupbyandin0123456789.-_"
      "\x01\x07\x1b\x7f\x80\xc3\xff";
  for (int iter = 0; iter < 4000; ++iter) {
    std::string sql = gen.Query();
    size_t mutations = 1 + gen.rng().NextBelow(4);
    for (size_t m = 0; m < mutations && !sql.empty(); ++m) {
      switch (gen.rng().NextBelow(5)) {
        case 0:  // truncate
          sql.resize(gen.rng().NextBelow(sql.size() + 1));
          break;
        case 1:  // insert a byte
          sql.insert(sql.begin() + static_cast<ptrdiff_t>(
                                       gen.rng().NextBelow(sql.size() + 1)),
                     pool[gen.rng().NextBelow(pool.size())]);
          break;
        case 2:  // overwrite a byte
          sql[gen.rng().NextBelow(sql.size())] =
              pool[gen.rng().NextBelow(pool.size())];
          break;
        case 3: {  // delete a range
          size_t at = gen.rng().NextBelow(sql.size());
          size_t len = 1 + gen.rng().NextBelow(8);
          sql.erase(at, len);
          break;
        }
        default: {  // duplicate a range elsewhere
          size_t at = gen.rng().NextBelow(sql.size());
          size_t len = 1 + gen.rng().NextBelow(8);
          std::string piece = sql.substr(at, len);
          sql.insert(gen.rng().NextBelow(sql.size() + 1), piece);
          break;
        }
      }
    }
    SCOPED_TRACE("mutated sql: " + sql);
    // Must return — error or spec — without crashing; and whatever
    // parses must still print.
    auto spec = ParseQuery(sql);
    if (spec.ok()) {
      std::string printed = spec->ToSql();
      EXPECT_FALSE(printed.empty());
    } else {
      EXPECT_FALSE(spec.status().ToString().empty());
    }
  }
}

TEST(SqlParserFuzz, HostileCorpusReturnsErrorsNotCrashes) {
  std::vector<std::string> corpus = {
      "",
      " ",
      "'",
      "\"",
      "''",
      ";",
      "SELECT",
      "SELECT ",
      "SELECT (",
      "SELECT a, avg(b)",
      "SELECT a, avg(b) FROM",
      "SELECT a, avg(b FROM t GROUP BY a",
      "SELECT avg(b), avg(c) FROM t",
      "SELECT a FROM t GROUP BY a",
      "SELECT a, avg(b) FROM t GROUP BY b",
      "SELECT a, avg(b) FROM t WHERE GROUP BY a",
      "SELECT a, avg(b) FROM t WHERE x GROUP BY a",
      "SELECT a, avg(b) FROM t WHERE x = GROUP BY a",
      "SELECT a, avg(b) FROM t WHERE x IN GROUP BY a",
      "SELECT a, avg(b) FROM t WHERE x IN () GROUP BY a",
      "SELECT a, avg(b) FROM t WHERE x IN ('y' GROUP BY a",
      "SELECT a, avg(b) FROM t GROUP BY a extra",
      "SELECT a, avg(b) FROM t GROUP BY a;;",
      "select a, avg(b) from t where c = 'unterminated",
      "SELECT \"a, avg(b) FROM t GROUP BY \"a",
      std::string(5000, '9'),
      std::string(5000, '('),
      "SELECT " + std::string(2000, 'x') + ", avg(y) FROM t GROUP BY " +
          std::string(2000, 'x'),
  };
  // A deep IN list and a long conjunction exercise any recursion and
  // buffer growth in the lexer/parser.
  std::string big_in = "SELECT a, avg(b) FROM t WHERE c IN (";
  for (int i = 0; i < 1000; ++i) {
    if (i > 0) big_in += ",";
    big_in += "'v" + std::to_string(i) + "'";
  }
  big_in += ") GROUP BY a";
  corpus.push_back(big_in);
  std::string big_and = "SELECT a, avg(b) FROM t WHERE x0 = 0";
  for (int i = 1; i < 500; ++i) {
    big_and += " AND x" + std::to_string(i) + " = " + std::to_string(i);
  }
  big_and += " GROUP BY a";
  corpus.push_back(big_and);

  for (const std::string& sql : corpus) {
    SCOPED_TRACE("corpus sql (first 80 bytes): " + sql.substr(0, 80));
    auto spec = ParseQuery(sql);
    if (spec.ok()) {
      auto again = ParseQuery(spec->ToSql());
      EXPECT_TRUE(again.ok());
    } else {
      EXPECT_FALSE(spec.status().ToString().empty());
    }
  }
}

}  // namespace
}  // namespace mesa
