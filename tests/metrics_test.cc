#include "common/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "core/mesa.h"
#include "datagen/registry.h"

namespace mesa {
namespace {

using metrics::CounterValue;

// Tests use unique metric names (other tests in this binary run the real
// pipeline, which touches the shared registry) and assert on deltas.

TEST(MetricsCounter, SingleThreadExact) {
  metrics::Counter& c = metrics::GetCounter("test/counter_single");
  const uint64_t before = c.Value();
  for (int i = 0; i < 1000; ++i) MESA_COUNT("test/counter_single");
  MESA_COUNT_N("test/counter_single", 42);
#if MESA_METRICS_ENABLED
  EXPECT_EQ(c.Value() - before, 1042u);
#else
  EXPECT_EQ(c.Value() - before, 0u);
#endif
}

TEST(MetricsCounter, MultiThreadSumsMatch) {
  const size_t prev_threads = NumThreads();
  SetNumThreads(8);
  metrics::Counter& c = metrics::GetCounter("test/counter_mt");
  const uint64_t before = c.Value();
  constexpr size_t kIters = 100000;
  ParallelFor(0, kIters, [&](size_t i) {
    MESA_COUNT("test/counter_mt");
    if (i % 10 == 0) MESA_COUNT_N("test/counter_mt", 2);
  });
  SetNumThreads(prev_threads);
#if MESA_METRICS_ENABLED
  EXPECT_EQ(c.Value() - before, kIters + 2 * (kIters / 10));
#else
  EXPECT_EQ(c.Value() - before, 0u);
#endif
}

TEST(MetricsCounter, RuntimeDisableStopsCollection) {
  metrics::Counter& c = metrics::GetCounter("test/counter_disabled");
  const uint64_t before = c.Value();
  metrics::SetEnabled(false);
  MESA_COUNT("test/counter_disabled");
  metrics::SetEnabled(true);
  EXPECT_EQ(c.Value() - before, 0u);
  MESA_COUNT("test/counter_disabled");
#if MESA_METRICS_ENABLED
  EXPECT_EQ(c.Value() - before, 1u);
#else
  EXPECT_EQ(c.Value() - before, 0u);
#endif
}

TEST(MetricsCounter, CounterValueLookupDoesNotCreate) {
  EXPECT_EQ(CounterValue("test/never_touched_counter"), 0u);
  auto snapshot = metrics::TakeSnapshot();
  for (const auto& [name, value] : snapshot.counters) {
    (void)value;
    EXPECT_NE(name, "test/never_touched_counter");
  }
}

TEST(MetricsDistribution, ExactMomentsAndQuantileEstimates) {
  metrics::Distribution& d = metrics::GetDistribution("test/dist_values");
  const auto before = d.GetStats();
  for (int v = 1; v <= 1000; ++v) d.Record(static_cast<double>(v));
  const auto stats = d.GetStats();
  EXPECT_EQ(stats.count - before.count, 1000u);
  EXPECT_DOUBLE_EQ(stats.sum - before.sum, 500500.0);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 1000.0);
  // Quantiles come from a log histogram with 4 buckets/octave: <= ~9%
  // relative error, so give it 15% headroom.
  EXPECT_NEAR(stats.p50, 500.0, 75.0);
  EXPECT_NEAR(stats.p99, 990.0, 150.0);
}

TEST(MetricsDistribution, MultiThreadRecordsAllLand) {
  metrics::Distribution& d = metrics::GetDistribution("test/dist_mt");
  const auto before = d.GetStats();
  constexpr size_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&d] {
      for (size_t i = 0; i < kPerThread; ++i) d.Record(3.0);
    });
  }
  for (auto& t : threads) t.join();
  const auto stats = d.GetStats();
  EXPECT_EQ(stats.count - before.count, 4 * kPerThread);
  EXPECT_DOUBLE_EQ(stats.sum - before.sum, 3.0 * 4 * kPerThread);
}

TEST(MetricsSpan, NestedSpansBuildSlashPaths) {
#if MESA_METRICS_ENABLED
  const std::string outer = "test_span_outer";
  const std::string inner = "test_span_inner";
  const uint64_t outer_before =
      metrics::GetDistribution(outer).GetStats().count;
  const uint64_t nested_before =
      metrics::GetDistribution(outer + "/" + inner).GetStats().count;
  {
    MESA_SPAN("test_span_outer");
    EXPECT_EQ(metrics::CurrentPath(), outer);
    MESA_SPAN("test_span_inner");
    EXPECT_EQ(metrics::CurrentPath(), outer + "/" + inner);
  }
  EXPECT_EQ(metrics::CurrentPath(), "");
  EXPECT_EQ(metrics::GetDistribution(outer).GetStats().count - outer_before,
            1u);
  EXPECT_EQ(metrics::GetDistribution(outer + "/" + inner).GetStats().count -
                nested_before,
            1u);
#else
  GTEST_SKIP() << "metrics compiled out (MESA_METRICS=OFF)";
#endif
}

TEST(MetricsSpan, PathPropagatesIntoPoolWorkers) {
#if MESA_METRICS_ENABLED
  const size_t prev_threads = NumThreads();
  SetNumThreads(4);
  const std::string nested = "test_prop_outer/test_prop_unit";
  const uint64_t before = metrics::GetDistribution(nested).GetStats().count;
  constexpr size_t kTasks = 64;
  {
    MESA_SPAN("test_prop_outer");
    ParallelFor(0, kTasks, [](size_t) { MESA_SPAN("test_prop_unit"); });
  }
  SetNumThreads(prev_threads);
  // Every task's span lands under the caller's path, no matter which
  // pool thread ran it — paths are invariant to the pool size.
  EXPECT_EQ(metrics::GetDistribution(nested).GetStats().count - before,
            kTasks);
#else
  GTEST_SKIP() << "metrics compiled out (MESA_METRICS=OFF)";
#endif
}

TEST(MetricsRegistry, ResetZeroesButKeepsHandles) {
  metrics::Counter& c = metrics::GetCounter("test/reset_counter");
  metrics::Distribution& d = metrics::GetDistribution("test/reset_dist");
  c.Add(5);
  d.Record(7.0);
  metrics::ResetAll();
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(d.GetStats().count, 0u);
  EXPECT_DOUBLE_EQ(d.GetStats().sum, 0.0);
  // Handles stay live after reset.
  c.Add(2);
  EXPECT_EQ(c.Value(), 2u);
  EXPECT_EQ(CounterValue("test/reset_counter"), 2u);
}

TEST(MetricsRegistry, JsonSnapshotShape) {
  metrics::GetCounter("test/json_counter").Add(3);
  metrics::GetDistribution("test/json_dist").Record(2.5);
  std::string json = metrics::SnapshotJson();
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"distributions\":{"), std::string::npos);
  EXPECT_NE(json.find("\"test/json_counter\":"), std::string::npos);
  EXPECT_NE(json.find("\"test/json_dist\":{\"count\":1,"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  // Names are escaped JSON strings; no raw control characters leak out.
  for (char ch : json) {
    EXPECT_GE(static_cast<unsigned char>(ch), 0x20);
  }
}

// End-to-end: running the pipeline populates the counters the paper's
// evaluation reports (CMI evaluations, cache hits/misses, span timings).
TEST(MetricsPipeline, ExplainPopulatesPipelineMetrics) {
#if MESA_METRICS_ENABLED
  auto ds = MakeDataset(DatasetKind::kCovid, GenOptions{});
  ASSERT_TRUE(ds.ok());
  const uint64_t cmi_before = CounterValue("info/cmi_evals");
  const uint64_t miss_before = CounterValue("qa/single_cmi/miss");
  Mesa mesa(ds->table, ds->kg.get(), ds->extraction_columns);
  auto report = mesa.Explain(CanonicalQueries(DatasetKind::kCovid)[0].query);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(CounterValue("info/cmi_evals"), cmi_before);
  EXPECT_GT(CounterValue("qa/single_cmi/miss"), miss_before);
  std::string json = metrics::SnapshotJson();
  EXPECT_NE(json.find("\"explain\""), std::string::npos);
  EXPECT_NE(json.find("\"explain/prepare_query\""), std::string::npos);
#else
  GTEST_SKIP() << "metrics compiled out (MESA_METRICS=OFF)";
#endif
}

}  // namespace
}  // namespace mesa
