#include <gtest/gtest.h>

#include "common/logging.h"
#include "kg/entity_linker.h"
#include "kg/extractor.h"
#include "kg/synthetic_kg.h"
#include "kg/triple_store.h"
#include "table/csv.h"

namespace mesa {
namespace {

// ------------------------------------------------------------ TripleStore

TEST(TripleStore, AddEntitiesAndTriples) {
  TripleStore kg;
  EntityId de = *kg.AddEntity("Germany", "Country");
  EntityId fr = *kg.AddEntity("France", "Country");
  ASSERT_TRUE(kg.AddLiteral(de, "hdi", Value::Double(0.94)).ok());
  ASSERT_TRUE(kg.AddLiteral(de, "gini", Value::Double(31.0)).ok());
  ASSERT_TRUE(kg.AddEdge(de, "neighbor", fr).ok());
  EXPECT_EQ(kg.num_entities(), 2u);
  EXPECT_EQ(kg.num_triples(), 3u);
  EXPECT_EQ(kg.num_predicates(), 3u);
  auto props = kg.PropertiesOf(de);
  EXPECT_EQ(props.size(), 3u);
  EXPECT_TRUE(kg.PropertiesOf(fr).empty());
}

TEST(TripleStore, RejectsDuplicateLabels) {
  TripleStore kg;
  ASSERT_TRUE(kg.AddEntity("X", "T").ok());
  EXPECT_FALSE(kg.AddEntity("X", "T").ok());
}

TEST(TripleStore, RejectsBadIds) {
  TripleStore kg;
  EXPECT_FALSE(kg.AddLiteral(5, "p", Value::Int(1)).ok());
  EXPECT_FALSE(kg.AddAlias(5, "a").ok());
}

TEST(TripleStore, PredicateInterning) {
  TripleStore kg;
  PredicateId a = kg.InternPredicate("hdi");
  PredicateId b = kg.InternPredicate("hdi");
  EXPECT_EQ(a, b);
  EXPECT_EQ(kg.predicate_name(a), "hdi");
}

TEST(TripleStore, LabelAndAliasLookup) {
  TripleStore kg;
  EntityId ru = *kg.AddEntity("Russia", "Country");
  ASSERT_TRUE(kg.AddAlias(ru, "Russian Federation").ok());
  EXPECT_EQ(*kg.FindByLabel("Russia"), ru);
  EXPECT_FALSE(kg.FindByLabel("Russian Federation").has_value());
  auto by_alias = kg.FindByAlias("Russian Federation");
  ASSERT_EQ(by_alias.size(), 1u);
  EXPECT_EQ(by_alias[0], ru);
  // Normalised lookup matches case / punctuation variants.
  auto norm = kg.FindByNormalized("russian federation");
  ASSERT_EQ(norm.size(), 1u);
}

TEST(TripleStore, EntitiesAndPredicatesOfType) {
  TripleStore kg;
  EntityId a = *kg.AddEntity("A", "Country");
  EntityId b = *kg.AddEntity("B", "City");
  ASSERT_TRUE(kg.AddLiteral(a, "hdi", Value::Double(1)).ok());
  ASSERT_TRUE(kg.AddLiteral(b, "pop", Value::Double(2)).ok());
  EXPECT_EQ(kg.EntitiesOfType("Country").size(), 1u);
  auto preds = kg.PredicatesOfType("Country");
  ASSERT_EQ(preds.size(), 1u);
  EXPECT_EQ(preds[0], "hdi");
}

// ------------------------------------------------------------ EntityLinker

TEST(EntityLinker, ExactLabelWins) {
  TripleStore kg;
  EntityId de = *kg.AddEntity("Germany", "Country");
  EntityLinker linker(&kg);
  auto r = linker.Link("Germany");
  EXPECT_EQ(r.outcome, LinkOutcome::kExactLabel);
  EXPECT_EQ(*r.entity, de);
}

TEST(EntityLinker, AliasResolution) {
  TripleStore kg;
  EntityId ru = *kg.AddEntity("Russia", "Country");
  ASSERT_TRUE(kg.AddAlias(ru, "Russian Federation").ok());
  EntityLinker linker(&kg);
  auto r = linker.Link("Russian Federation");
  EXPECT_EQ(r.outcome, LinkOutcome::kAliasMatch);
  EXPECT_EQ(*r.entity, ru);
}

TEST(EntityLinker, AmbiguousAliasFails) {
  // The paper's Ronaldo example: two entities share a surface form.
  TripleStore kg;
  EntityId a = *kg.AddEntity("Ronaldo Nazario", "Person");
  EntityId b = *kg.AddEntity("Cristiano Ronaldo", "Person");
  ASSERT_TRUE(kg.AddAlias(a, "Ronaldo").ok());
  ASSERT_TRUE(kg.AddAlias(b, "Ronaldo").ok());
  EntityLinker linker(&kg);
  auto r = linker.Link("Ronaldo");
  EXPECT_EQ(r.outcome, LinkOutcome::kAmbiguous);
  EXPECT_FALSE(r.linked());
}

TEST(EntityLinker, FuzzyMatchSmallTypo) {
  TripleStore kg;
  EntityId de = *kg.AddEntity("Germany", "Country");
  EntityLinker linker(&kg);
  auto r = linker.Link("Germny");
  EXPECT_EQ(r.outcome, LinkOutcome::kFuzzyMatch);
  EXPECT_EQ(*r.entity, de);
}

TEST(EntityLinker, FuzzyDisabled) {
  TripleStore kg;
  ASSERT_TRUE(kg.AddEntity("Germany", "Country").ok());
  EntityLinkerOptions opts;
  opts.enable_fuzzy = false;
  EntityLinker linker(&kg, opts);
  EXPECT_EQ(linker.Link("Germny").outcome, LinkOutcome::kNotFound);
}

TEST(EntityLinker, TypeFilterExcludes) {
  TripleStore kg;
  EntityId city = *kg.AddEntity("Mexico", "City");
  (void)city;
  EntityLinkerOptions opts;
  opts.type_filter = "Country";
  EntityLinker linker(&kg, opts);
  EXPECT_FALSE(linker.Link("Mexico").linked());
}

TEST(EntityLinker, NotFoundForDistantStrings) {
  TripleStore kg;
  ASSERT_TRUE(kg.AddEntity("Germany", "Country").ok());
  EntityLinker linker(&kg);
  EXPECT_EQ(linker.Link("Oceania Republic").outcome, LinkOutcome::kNotFound);
}

// -------------------------------------------------------------- Extractor

TripleStore CountryKg() {
  TripleStore kg;
  EntityId de = *kg.AddEntity("Germany", "Country");
  EntityId fr = *kg.AddEntity("France", "Country");
  EntityId us = *kg.AddEntity("United States", "Country");
  MESA_CHECK(kg.AddAlias(us, "USA").ok());
  MESA_CHECK(kg.AddLiteral(de, "hdi", Value::Double(0.94)).ok());
  MESA_CHECK(kg.AddLiteral(fr, "hdi", Value::Double(0.90)).ok());
  MESA_CHECK(kg.AddLiteral(us, "hdi", Value::Double(0.92)).ok());
  MESA_CHECK(kg.AddLiteral(de, "gini", Value::Double(31)).ok());
  // fr has no gini: missing value downstream.
  MESA_CHECK(kg.AddLiteral(us, "gini", Value::Double(41)).ok());
  MESA_CHECK(kg.AddLiteral(de, "capital_name", Value::String("Berlin")).ok());
  // 2-hop: leader entity with literal properties.
  EntityId leader = *kg.AddEntity("Chancellor", "Person");
  MESA_CHECK(kg.AddEdge(de, "leader", leader).ok());
  MESA_CHECK(kg.AddLiteral(leader, "age", Value::Double(65)).ok());
  // One-to-many numeric: two ethnic group sizes on us.
  MESA_CHECK(kg.AddLiteral(us, "group_size", Value::Double(10)).ok());
  MESA_CHECK(kg.AddLiteral(us, "group_size", Value::Double(30)).ok());
  return kg;
}

Table BaseTable() {
  return *ReadCsvString(
      "Country,Salary\nGermany,100\nGermany,120\nFrance,90\nUSA,200\n"
      "Atlantis,50\n");
}

TEST(Extractor, OneHopUniversalRelation) {
  TripleStore kg = CountryKg();
  Table base = BaseTable();
  ExtractionStats stats;
  auto e = ExtractAttributes(base, "Country", kg, {}, &stats);
  ASSERT_TRUE(e.ok());
  // One row per distinct key value (Atlantis, France, Germany, USA).
  EXPECT_EQ(e->num_rows(), 4u);
  EXPECT_TRUE(e->schema().Contains("hdi"));
  EXPECT_TRUE(e->schema().Contains("gini"));
  EXPECT_TRUE(e->schema().Contains("capital_name"));
  // Hop-1 only: the leader edge contributes its label but not its props.
  EXPECT_TRUE(e->schema().Contains("leader"));
  EXPECT_FALSE(e->schema().Contains("leader_age"));
  EXPECT_EQ(stats.values_total, 4u);
  EXPECT_EQ(stats.values_linked, 3u);  // Atlantis unlinked
  EXPECT_EQ(stats.values_not_found, 1u);
}

TEST(Extractor, MissingPropertiesAreNull) {
  TripleStore kg = CountryKg();
  auto e = ExtractAttributes(BaseTable(), "Country", kg);
  ASSERT_TRUE(e.ok());
  // Find France's row (rows sorted by key: Atlantis, France, Germany, USA).
  EXPECT_TRUE(e->GetCell(1, "gini")->is_null());
  EXPECT_FALSE(e->GetCell(2, "gini")->is_null());
  // Unlinked Atlantis: all attributes null.
  EXPECT_TRUE(e->GetCell(0, "hdi")->is_null());
}

TEST(Extractor, TwoHopsBringLeaderAge) {
  TripleStore kg = CountryKg();
  ExtractionOptions opts;
  opts.hops = 2;
  auto e = ExtractAttributes(BaseTable(), "Country", kg, opts);
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(e->schema().Contains("leader_age"));
  EXPECT_DOUBLE_EQ(e->GetCell(2, "leader_age")->double_value(), 65.0);
}

TEST(Extractor, OneToManyAggregation) {
  TripleStore kg = CountryKg();
  ExtractionOptions avg_opts;
  avg_opts.one_to_many_agg = AggregateFunction::kAvg;
  auto e = ExtractAttributes(BaseTable(), "Country", kg, avg_opts);
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(e->GetCell(3, "group_size")->double_value(), 20.0);
  ExtractionOptions max_opts;
  max_opts.one_to_many_agg = AggregateFunction::kMax;
  auto e2 = ExtractAttributes(BaseTable(), "Country", kg, max_opts);
  ASSERT_TRUE(e2.ok());
  EXPECT_DOUBLE_EQ(e2->GetCell(3, "group_size")->double_value(), 30.0);
}

TEST(Extractor, AliasLinksUsa) {
  TripleStore kg = CountryKg();
  auto e = ExtractAttributes(BaseTable(), "Country", kg);
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(e->GetCell(3, "hdi")->double_value(), 0.92);
}

TEST(Extractor, RejectsNumericKeyColumn) {
  TripleStore kg = CountryKg();
  Table base = *ReadCsvString("k,v\n1,2\n");
  EXPECT_FALSE(ExtractAttributes(base, "k", kg).ok());
}

TEST(Extractor, AugmentJoinsOntoBase) {
  TripleStore kg = CountryKg();
  auto aug = AugmentTableFromKg(BaseTable(), {"Country"}, kg);
  ASSERT_TRUE(aug.ok());
  EXPECT_EQ(aug->table.num_rows(), 5u);
  EXPECT_TRUE(aug->table.schema().Contains("hdi"));
  // Germany appears twice; both rows carry its hdi.
  EXPECT_DOUBLE_EQ(aug->table.GetCell(0, "hdi")->double_value(), 0.94);
  EXPECT_DOUBLE_EQ(aug->table.GetCell(1, "hdi")->double_value(), 0.94);
  // Atlantis row: nulls.
  EXPECT_TRUE(aug->table.GetCell(4, "hdi")->is_null());
  EXPECT_FALSE(aug->extracted_columns.empty());
  ASSERT_EQ(aug->entity_tables.size(), 1u);
  EXPECT_EQ(aug->entity_tables[0].num_rows(), 4u);
}

TEST(Extractor, AugmentPrefixesCollisions) {
  TripleStore kg = CountryKg();
  // Base already has an "hdi" column.
  Table base = *ReadCsvString("Country,hdi\nGermany,9\n");
  auto aug = AugmentTableFromKg(base, {"Country"}, kg);
  ASSERT_TRUE(aug.ok());
  EXPECT_TRUE(aug->table.schema().Contains("Country.hdi"));
  EXPECT_DOUBLE_EQ(aug->table.GetCell(0, "Country.hdi")->double_value(), 0.94);
  EXPECT_EQ(aug->table.GetCell(0, "hdi")->int_value(), 9);
}

// ---------------------------------------------------------- TriplePattern

TEST(TriplePatternMatch, BySubject) {
  TripleStore kg = CountryKg();
  EntityId de = *kg.FindByLabel("Germany");
  auto triples = kg.Match({.subject = de});
  EXPECT_EQ(triples.size(), kg.PropertiesOf(de).size());
}

TEST(TriplePatternMatch, ByPredicateAcrossSubjects) {
  TripleStore kg = CountryKg();
  auto triples = kg.Match({.predicate = "hdi"});
  EXPECT_EQ(triples.size(), 3u);
  auto none = kg.Match({.predicate = "no_such_predicate"});
  EXPECT_TRUE(none.empty());
}

TEST(TriplePatternMatch, ByLiteralValue) {
  TripleStore kg = CountryKg();
  auto triples = kg.Match({.predicate = "hdi", .literal = Value::Double(0.94)});
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(kg.entity(triples[0]->subject).label, "Germany");
}

TEST(TriplePatternMatch, ByObjectEntity) {
  TripleStore kg = CountryKg();
  EntityId leader = *kg.FindByLabel("Chancellor");
  auto triples = kg.Match({.object_entity = leader});
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(kg.predicate_name(triples[0]->predicate), "leader");
  // A literal pattern never matches an entity edge.
  EXPECT_TRUE(kg.Match({.predicate = "leader",
                        .literal = Value::String("Chancellor")})
                  .empty());
}

TEST(TriplePatternMatch, WildcardEverything) {
  TripleStore kg = CountryKg();
  EXPECT_EQ(kg.Match({}).size(), kg.num_triples());
}

// ----------------------------------------------------------- SyntheticKg

TEST(SyntheticKg, BuilderAddsEntitiesIdempotently) {
  TripleStore kg;
  SyntheticKgBuilder b(&kg, 1);
  EntityId a = b.EnsureEntity("X", "T");
  EntityId a2 = b.EnsureEntity("X", "T");
  EXPECT_EQ(a, a2);
  EXPECT_EQ(kg.num_entities(), 1u);
}

TEST(SyntheticKg, MissingRateDropsProperties) {
  TripleStore kg;
  SyntheticKgBuilder b(&kg, 2);
  for (int i = 0; i < 500; ++i) {
    EntityId e = b.EnsureEntity("E" + std::to_string(i), "T");
    b.AddNumeric(e, "p", 1.0, 0.4);
  }
  double present = static_cast<double>(kg.num_triples()) / 500.0;
  EXPECT_NEAR(present, 0.6, 0.07);
}

TEST(SyntheticKg, NoisePropertiesIncludeIdAndType) {
  TripleStore kg;
  SyntheticKgBuilder b(&kg, 3);
  EntityId e = b.EnsureEntity("X", "Country");
  b.AddNoiseProperties(e, "Country", 2, 0.0);
  auto preds = kg.PredicatesOfType("Country");
  EXPECT_NE(std::find(preds.begin(), preds.end(), "type"), preds.end());
  EXPECT_NE(std::find(preds.begin(), preds.end(), "wikiID"), preds.end());
  EXPECT_NE(std::find(preds.begin(), preds.end(), "noise_attr_0"), preds.end());
  EXPECT_NE(std::find(preds.begin(), preds.end(), "noise_attr_1"), preds.end());
}

TEST(SyntheticKg, RankTwinAdded) {
  TripleStore kg;
  SyntheticKgBuilder b(&kg, 4);
  EntityId e = b.EnsureEntity("X", "T");
  b.AddNumericWithRank(e, "hdi", 0.9, 3.0, 0.0);
  auto props = kg.PropertiesOf(e);
  ASSERT_EQ(props.size(), 2u);
}

}  // namespace
}  // namespace mesa
