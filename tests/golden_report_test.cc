// Golden-file regression test for the report mesa_cli prints.
//
// Runs the same pipeline as `mesa_cli explain --subgroups WHO_Region` on
// the seeded covid dataset (the cli_test round trip) and compares the
// rendered report byte-for-byte against tests/golden/covid_report.txt.
// Any change to extraction, pruning, MCIMR, responsibility, subgroup
// search, or report formatting shows up here as a readable text diff.
//
// To regenerate after an intentional output change:
//
//   MESA_UPDATE_GOLDEN=1 ./mesa_tests --gtest_filter='GoldenReport.*'
//
// then commit the updated file under tests/golden/ with the change that
// caused it.

#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "core/mesa.h"
#include "core/report_format.h"
#include "datagen/registry.h"
#include "query/sql_parser.h"

namespace mesa {
namespace {

const char kGoldenPath[] = MESA_TEST_SOURCE_DIR "/golden/covid_report.txt";

bool ReadFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[4096];
  size_t n;
  out->clear();
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  std::fclose(f);
  return true;
}

TEST(GoldenReport, CovidExplainMatchesGolden) {
  auto ds = MakeDataset(DatasetKind::kCovid, GenOptions{});
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();

  auto query = ParseQuery(
      "SELECT Country, avg(Deaths_per_100_cases) FROM covid "
      "GROUP BY Country");
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  Mesa mesa(ds->table, ds->kg.get(), {"Country", "WHO_Region"});
  auto report = mesa.Explain(*query);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  std::string actual = FormatReport(*report);
  SubgroupOptions sg;
  sg.threshold = 0.05 * report->base_cmi;
  sg.refinement_attributes = {"WHO_Region"};
  auto groups =
      mesa.FindSubgroups(*query, report->explanation.attribute_names, sg);
  ASSERT_TRUE(groups.ok()) << groups.status().ToString();
  actual += FormatSubgroups(*groups);

  if (std::getenv("MESA_UPDATE_GOLDEN") != nullptr) {
    std::FILE* f = std::fopen(kGoldenPath, "wb");
    ASSERT_NE(f, nullptr) << "cannot write " << kGoldenPath;
    std::fwrite(actual.data(), 1, actual.size(), f);
    std::fclose(f);
    GTEST_SKIP() << "golden file regenerated: " << kGoldenPath;
  }

  std::string expected;
  ASSERT_TRUE(ReadFile(kGoldenPath, &expected))
      << "missing golden file " << kGoldenPath
      << " — regenerate with MESA_UPDATE_GOLDEN=1 (see header comment)";
  EXPECT_EQ(expected, actual)
      << "report drifted from " << kGoldenPath
      << "; if the change is intentional, regenerate with "
         "MESA_UPDATE_GOLDEN=1 and commit the diff";
}

}  // namespace
}  // namespace mesa
