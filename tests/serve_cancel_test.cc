// Deadline / cancellation / drain contract for the serving layer
// (docs/robustness.md "Request deadlines and graceful drain"):
//
//  - Deadlines are strictly abort-or-continue: a request that completes
//    under its deadline is byte-identical to the same request with no
//    deadline, at any thread count.
//  - A request that blows its deadline unwinds in bounded time with
//    deadline_exceeded, releases its admission permit, and leaves the
//    router fully servable — a follow-up query returns the golden reply.
//  - Explicit cancellation surfaces as `cancelled`, never as an error.
//  - Server::Drain tells every in-flight explain to stop, still delivers
//    their replies, and shuts down cleanly; SIGTERM on a real mesa_serve
//    process drains to exit code 0.
//  - Client-side timeouts turn an unresponsive daemon into a
//    DeadlineExceeded status instead of a hang.

#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/cancel.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "core/mesa.h"
#include "core/report_format.h"
#include "datagen/registry.h"
#include "kg/serialization.h"
#include "query/sql_parser.h"
#include "serve/client.h"
#include "serve/json.h"
#include "serve/router.h"
#include "serve/server.h"
#include "table/csv.h"

namespace mesa {
namespace serve {
namespace {

constexpr char kQuery[] =
    "SELECT Country, avg(Deaths_per_100_cases) FROM covid GROUP BY Country";

// Explain request line with an optional deadline, exactly as the wire
// clients emit it.
std::string ExplainLine(uint64_t deadline_ms) {
  JsonValue request = JsonValue::Object();
  request.Set("verb", JsonValue::Str("explain"));
  request.Set("dataset", JsonValue::Str("covid"));
  request.Set("sql", JsonValue::Str(kQuery));
  if (deadline_ms > 0) {
    request.Set("deadline_ms",
                JsonValue::Number(static_cast<double>(deadline_ms)));
  }
  return request.Serialize();
}

// Same fixture shape as serve_chaos_test: covid on disk once per
// process, plus the serial fault-free golden report.
class ServeCancelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto ds = MakeDataset(DatasetKind::kCovid, GenOptions{});
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    const std::string tag = std::to_string(::getpid());
    csv_path_ =
        new std::string(testing::TempDir() + "/serve_cancel." + tag + ".csv");
    kg_path_ =
        new std::string(testing::TempDir() + "/serve_cancel." + tag + ".kg");
    ASSERT_TRUE(WriteCsvFile(ds->table, *csv_path_).ok());
    ASSERT_TRUE(WriteKgFile(*ds->kg, *kg_path_).ok());

    auto table = ReadCsvFile(*csv_path_);
    ASSERT_TRUE(table.ok());
    auto kg = ReadKgFile(*kg_path_);
    ASSERT_TRUE(kg.ok());
    Mesa mesa(std::move(*table), &*kg, {"Country", "WHO_Region"},
              MesaOptions{});
    auto query = ParseQuery(kQuery);
    ASSERT_TRUE(query.ok());
    auto report = mesa.Explain(*query);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    golden_report_ = new std::string(FormatReport(*report));
  }

  static void TearDownTestSuite() {
    std::remove(csv_path_->c_str());
    std::remove(kg_path_->c_str());
    delete csv_path_;
    delete kg_path_;
    delete golden_report_;
    csv_path_ = kg_path_ = golden_report_ = nullptr;
  }

  static void BuildRouter(Router* router, bool warm = true) {
    Router::DatasetSpec spec;
    spec.name = "covid";
    spec.csv_path = *csv_path_;
    spec.kg_path = *kg_path_;
    spec.extraction_columns = {"Country", "WHO_Region"};
    ASSERT_TRUE(router->AddDataset(spec).ok());
    if (warm) ASSERT_TRUE(router->WarmStart().ok());
  }

  static std::string* csv_path_;
  static std::string* kg_path_;
  static std::string* golden_report_;
};

std::string* ServeCancelTest::csv_path_ = nullptr;
std::string* ServeCancelTest::kg_path_ = nullptr;
std::string* ServeCancelTest::golden_report_ = nullptr;

// The determinism half of the contract: a deadline that never fires must
// not perturb a single byte of the report, whatever the thread count.
// (Replies are compared by report field, not whole line — trace IDs are
// unique per request by design.)
TEST_F(ServeCancelTest, GenerousDeadlineIsByteIdenticalAtEveryThreadCount) {
  Router router;
  BuildRouter(&router);

  auto no_deadline = router.Handle(ExplainLine(0));
  auto baseline = JsonValue::Parse(no_deadline.reply_line);
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(baseline->GetBool("ok")) << baseline->GetString("error");
  ASSERT_EQ(baseline->GetString("report"), *golden_report_);

  const size_t saved = NumThreads();
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    SetNumThreads(threads);
    auto result = router.Handle(ExplainLine(60'000));
    auto reply = JsonValue::Parse(result.reply_line);
    ASSERT_TRUE(reply.ok());
    EXPECT_TRUE(reply->GetBool("ok")) << reply->GetString("error");
    EXPECT_EQ(reply->GetString("report"), *golden_report_);
  }
  SetNumThreads(saved);
}

// The abort half: an absurdly tight deadline on a COLD router (so the
// request pays preprocessing and has many checkpoints to cross) unwinds
// with deadline_exceeded in bounded time — and the unwound preprocess
// leaves no half-built state: the next query, with no deadline, on the
// SAME router, is golden.
TEST_F(ServeCancelTest, TightDeadlineUnwindsAndLeavesTheRouterServable) {
  Router router;
  BuildRouter(&router, /*warm=*/false);
#if MESA_METRICS_ENABLED
  const uint64_t exceeded_before = metrics::CounterValue(
      "serve/deadline_exceeded");
#endif

  const auto start = std::chrono::steady_clock::now();
  auto result = router.Handle(ExplainLine(1));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  auto reply = JsonValue::Parse(result.reply_line);
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(reply->GetBool("ok"));
  EXPECT_EQ(reply->GetString("code"), "deadline_exceeded");
  // Bounded unwind: checkpoint spacing is far under this, even cold
  // under TSan on a loaded machine.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            30);
#if MESA_METRICS_ENABLED
  EXPECT_GT(metrics::CounterValue("serve/deadline_exceeded"), exceeded_before);
#endif

  // Permit released, caches valid, preprocessing restartable.
  EXPECT_EQ(router.inflight_requests(), 0u);
  auto retry = router.Handle(ExplainLine(0));
  auto retry_reply = JsonValue::Parse(retry.reply_line);
  ASSERT_TRUE(retry_reply.ok());
  ASSERT_TRUE(retry_reply->GetBool("ok")) << retry_reply->GetString("error");
  EXPECT_EQ(retry_reply->GetString("report"), *golden_report_);
}

// Explicit cancellation (the drain path's mechanism, driven directly):
// a request whose token is cancelled mid-flight replies `cancelled`,
// and the router serves the golden reply immediately after.
TEST_F(ServeCancelTest, ExplicitCancelRepliesCancelledNotError) {
  Router router;
  BuildRouter(&router);
  router.set_explain_hook([] { CurrentCancelToken()->Cancel(); });
#if MESA_METRICS_ENABLED
  const uint64_t cancelled_before = metrics::CounterValue("serve/cancelled");
#endif

  auto result = router.Handle(ExplainLine(0));
  auto reply = JsonValue::Parse(result.reply_line);
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(reply->GetBool("ok"));
  EXPECT_EQ(reply->GetString("code"), "cancelled");
#if MESA_METRICS_ENABLED
  EXPECT_EQ(metrics::CounterValue("serve/cancelled"), cancelled_before + 1);
#endif

  router.set_explain_hook(nullptr);
  auto retry = router.Handle(ExplainLine(0));
  auto retry_reply = JsonValue::Parse(retry.reply_line);
  ASSERT_TRUE(retry_reply.ok());
  ASSERT_TRUE(retry_reply->GetBool("ok")) << retry_reply->GetString("error");
  EXPECT_EQ(retry_reply->GetString("report"), *golden_report_);
}

// Drain against a live server: an explain held in flight is told to
// stop, its (deadline_exceeded) reply still reaches the client, and the
// drain resolves clean — no reply is ever dropped on the floor.
TEST_F(ServeCancelTest, DrainCancelsInflightButStillDeliversTheReply) {
  Router router;
  BuildRouter(&router);
  // Hold the request in flight until drain tightens its token.
  router.set_explain_hook([] {
    auto token = CurrentCancelToken();
    while (token->Check().ok()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  Server server(&router);
  ASSERT_TRUE(server.Start().ok());
#if MESA_METRICS_ENABLED
  const uint64_t drain_cancelled_before =
      metrics::CounterValue("serve/drain_cancelled");
  const uint64_t drain_clean_before =
      metrics::CounterValue("serve/drain_clean");
#endif

  std::string code;
  std::thread client_thread([&] {
    auto client = Client::Connect(server.port());
    if (!client.ok()) return;
    auto reply = (*client)->Explain("covid", kQuery);
    if (reply.ok()) code = reply->code;
  });
  while (router.inflight_requests() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  server.Drain(/*budget_ms=*/50);
  client_thread.join();
  // The held request had no deadline of its own; the drain gave it one.
  EXPECT_EQ(code, "deadline_exceeded");
  EXPECT_EQ(router.inflight_requests(), 0u);
#if MESA_METRICS_ENABLED
  EXPECT_EQ(metrics::CounterValue("serve/drain_cancelled"),
            drain_cancelled_before + 1);
  EXPECT_EQ(metrics::CounterValue("serve/drain_clean"),
            drain_clean_before + 1);
  EXPECT_GT(metrics::CounterValue("serve/drain_started"), 0u);
#endif
}

// The watchdog flags a request that blew far past its budget — once,
// not every scan — and the request is untouched: released, it completes
// with the golden reply.
TEST_F(ServeCancelTest, WatchdogFlagsStuckRequestsExactlyOnce) {
  Router router;
  BuildRouter(&router);
  std::atomic<bool> release{false};
  router.set_explain_hook([&] {
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
#if MESA_METRICS_ENABLED
  const uint64_t stuck_before = metrics::CounterValue("serve/stuck_requests");
#endif

  std::string report;
  bool ok = false;
  std::thread request_thread([&] {
    auto result = router.Handle(ExplainLine(10'000));
    auto reply = JsonValue::Parse(result.reply_line);
    if (!reply.ok()) return;
    ok = reply->GetBool("ok");
    report = reply->GetString("report");
  });
  while (router.inflight_requests() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Pretend 40 s elapsed against a 10 s budget with multiplier 3: stuck.
  const uint64_t fake_now = CancelClockNowNs() + 40ULL * 1'000'000'000ULL;
  EXPECT_EQ(router.ScanStuck(fake_now, 3.0), 1u);
  EXPECT_EQ(router.ScanStuck(fake_now, 3.0), 0u);  // flagged once only.
#if MESA_METRICS_ENABLED
  EXPECT_EQ(metrics::CounterValue("serve/stuck_requests"), stuck_before + 1);
#endif

  release.store(true, std::memory_order_release);
  request_thread.join();
  EXPECT_TRUE(ok);
  EXPECT_EQ(report, *golden_report_);
}

// Client read timeout: a listener that never accepts (the connection
// parks in the SYN backlog) would hang a timeout-less client forever;
// with read_timeout_ms set, the call returns DeadlineExceeded instead.
TEST_F(ServeCancelTest, ClientReadTimeoutTurnsASilentPeerIntoAStatus) {
  int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const uint16_t port = ntohs(addr.sin_port);

  ClientOptions options;
  options.connect_timeout_ms = 5000;
  options.read_timeout_ms = 100;
  auto client = Client::Connect(port, "127.0.0.1", options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  const auto start = std::chrono::steady_clock::now();
  auto raw = (*client)->CallRaw("{\"verb\":\"status\"}");
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(raw.ok());
  EXPECT_EQ(raw.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            10);
  ::close(listen_fd);
}

// End to end: a real mesa_serve process answers a query, takes SIGTERM,
// drains, and exits 0 — the whole graceful-shutdown story in one child.
TEST_F(ServeCancelTest, SigtermDrainsARealDaemonToExitZero) {
  // The daemon binary lives next to the test tree; probe the layouts the
  // test runs under (ctest in build/tests, direct invocation from build/).
  const char* candidates[] = {"../src/mesa_serve", "src/mesa_serve",
                              "./mesa_serve", "build/src/mesa_serve"};
  std::string binary;
  for (const char* candidate : candidates) {
    if (::access(candidate, X_OK) == 0) {
      binary = candidate;
      break;
    }
  }
  if (binary.empty()) {
    GTEST_SKIP() << "mesa_serve binary not found relative to cwd";
  }

  const std::string tag = std::to_string(::getpid());
  const std::string port_file =
      testing::TempDir() + "/serve_cancel." + tag + ".port";
  const std::string data_spec =
      "covid=" + *csv_path_ + ":" + *kg_path_ + ":Country+WHO_Region";

  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::execl(binary.c_str(), "mesa_serve", "--data", data_spec.c_str(),
            "--port-file", port_file.c_str(), "--drain-budget-ms", "2000",
            static_cast<char*>(nullptr));
    _exit(127);  // exec failed.
  }

  // Wait for the (atomically renamed) port file.
  int port = 0;
  for (int i = 0; i < 3000 && port == 0; ++i) {
    std::FILE* f = std::fopen(port_file.c_str(), "r");
    if (f != nullptr) {
      if (std::fscanf(f, "%d", &port) != 1) port = 0;
      std::fclose(f);
    }
    if (port == 0) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GT(port, 0) << "daemon never published its port";

  auto client = Client::Connect(static_cast<uint16_t>(port));
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto reply = (*client)->Explain("covid", kQuery);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_TRUE(reply->ok) << reply->error;
  EXPECT_EQ(reply->report, *golden_report_);

  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus)) << "daemon did not exit normally";
  EXPECT_EQ(WEXITSTATUS(wstatus), 0);
  std::remove(port_file.c_str());
}

}  // namespace
}  // namespace serve
}  // namespace mesa
