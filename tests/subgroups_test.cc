#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "core/subgroups.h"
#include "table/table_builder.h"

namespace mesa {
namespace {

// World where conf explains the outcome everywhere EXCEPT inside region
// "R0", where a second latent (unexposed to the explanation) drives it.
// FindUnexplainedSubgroups must surface Region = 'R0'.
Table MakeRegionWorld(size_t rows = 12000, uint64_t seed = 31) {
  Rng rng(seed);
  const size_t kGroups = 60;
  std::vector<double> conf(kGroups), hidden(kGroups);
  std::vector<std::string> region(kGroups);
  for (size_t g = 0; g < kGroups; ++g) {
    conf[g] = rng.NextGaussian();
    hidden[g] = rng.NextGaussian();
    region[g] = "R" + std::to_string(g % 3);
  }
  TableBuilder b(Schema({{"group", DataType::kString},
                         {"region", DataType::kString},
                         {"other", DataType::kString},
                         {"conf", DataType::kDouble},
                         {"outcome", DataType::kDouble}}));
  for (size_t i = 0; i < rows; ++i) {
    size_t g = rng.NextBelow(kGroups);
    // In R0 the outcome ignores conf entirely and follows the hidden
    // latent; elsewhere conf explains it.
    double outcome = region[g] == "R0"
                         ? 3.0 * hidden[g] + rng.NextGaussian(0, 0.3)
                         : 3.0 * conf[g] + rng.NextGaussian(0, 0.3);
    MESA_CHECK(b.AppendRow({Value::String("g" + std::to_string(g)),
                            Value::String(region[g]),
                            Value::String(i % 2 == 0 ? "even" : "odd"),
                            Value::Double(conf[g]), Value::Double(outcome)})
                   .ok());
  }
  return *b.Finish();
}

QuerySpec RegionQuery() {
  QuerySpec q;
  q.exposure = "group";
  q.outcome = "outcome";
  return q;
}

TEST(Subgroups, FindsThePlantedUnexplainedRegion) {
  Table t = MakeRegionWorld();
  SubgroupOptions opts;
  opts.top_k = 2;
  opts.threshold = 0.4;
  // Only the region attribute refines here: with "other" included the
  // larger (but also noisy) "other = even" half can legitimately rank
  // first by size; the planted-region recovery is what this test checks.
  opts.refinement_attributes = {"region"};
  auto r = FindUnexplainedSubgroups(t, RegionQuery(), {"conf"}, opts);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->empty());
  // The top group must be the R0 refinement.
  EXPECT_EQ(r->front().refinement.conditions().back().ToString(),
            "region = 'R0'");
  EXPECT_GT(r->front().score, opts.threshold);
  EXPECT_GT(r->front().size, 1000u);
}

TEST(Subgroups, ResultsOrderedBySizeAndNoAncestorDuplicates) {
  Table t = MakeRegionWorld();
  SubgroupOptions opts;
  opts.top_k = 5;
  opts.threshold = 0.2;
  opts.refinement_attributes = {"region", "other"};
  auto r = FindUnexplainedSubgroups(t, RegionQuery(), {"conf"}, opts);
  ASSERT_TRUE(r.ok());
  for (size_t i = 0; i < r->size(); ++i) {
    // No reported refinement extends another reported one.
    for (size_t j = 0; j < r->size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE((*r)[i].refinement.Contains((*r)[j].refinement) &&
                   (*r)[i].refinement.size() >
                       (*r)[j].refinement.size());
    }
  }
}

TEST(Subgroups, HighThresholdYieldsNothing) {
  Table t = MakeRegionWorld(6000);
  SubgroupOptions opts;
  opts.top_k = 3;
  opts.threshold = 100.0;  // unreachable
  opts.refinement_attributes = {"region", "other"};
  auto r = FindUnexplainedSubgroups(t, RegionQuery(), {"conf"}, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(Subgroups, RefinementIncludesOriginalContext) {
  Table t = MakeRegionWorld();
  QuerySpec q = RegionQuery();
  q.context.Add({"other", CompareOp::kEq, Value::String("even"), {}});
  SubgroupOptions opts;
  opts.top_k = 1;
  opts.threshold = 0.4;
  opts.refinement_attributes = {"region"};
  auto r = FindUnexplainedSubgroups(t, q, {"conf"}, opts);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->empty());
  EXPECT_TRUE(r->front().refinement.Contains(q.context));
}

TEST(Subgroups, MinGroupSizeRespected) {
  Table t = MakeRegionWorld(3000);
  SubgroupOptions opts;
  opts.top_k = 10;
  opts.threshold = 0.0;  // everything qualifies...
  opts.min_group_size = 100000;  // ...but no group is big enough
  opts.refinement_attributes = {"region", "other"};
  auto r = FindUnexplainedSubgroups(t, RegionQuery(), {"conf"}, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(Subgroups, MaxDepthLimitsRefinementLength) {
  Table t = MakeRegionWorld();
  SubgroupOptions opts;
  opts.top_k = 10;
  opts.threshold = 0.15;
  opts.max_depth = 1;
  opts.refinement_attributes = {"region", "other"};
  auto r = FindUnexplainedSubgroups(t, RegionQuery(), {"conf"}, opts);
  ASSERT_TRUE(r.ok());
  for (const auto& g : *r) {
    EXPECT_LE(g.refinement.size(), 1u);
  }
}

TEST(Subgroups, ExposureAndOutcomeNeverRefinementAtoms) {
  Table t = MakeRegionWorld(3000);
  SubgroupOptions opts;
  opts.top_k = 3;
  opts.threshold = 0.1;
  opts.refinement_attributes = {"group", "outcome", "region"};
  auto r = FindUnexplainedSubgroups(t, RegionQuery(), {"conf"}, opts);
  ASSERT_TRUE(r.ok());
  for (const auto& g : *r) {
    for (const auto& cond : g.refinement.conditions()) {
      EXPECT_NE(cond.column, "group");
      EXPECT_NE(cond.column, "outcome");
    }
  }
}

TEST(Subgroups, BadQueryErrors) {
  Table t = MakeRegionWorld(1000);
  QuerySpec q;
  q.exposure = "ghost";
  q.outcome = "outcome";
  SubgroupOptions opts;
  EXPECT_FALSE(FindUnexplainedSubgroups(t, q, {"conf"}, opts).ok());
}

}  // namespace
}  // namespace mesa
