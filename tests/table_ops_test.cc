#include <gtest/gtest.h>

#include "table/csv.h"
#include "table/table_ops.h"

namespace mesa {
namespace {

Table Sample() {
  return *ReadCsvString(
      "name,score,team\n"
      "dan,3,red\n"
      "ann,1,blue\n"
      "cat,,red\n"
      "bob,2,blue\n"
      "ann,1,blue\n");
}

TEST(SortBy, SingleKeyAscendingNullsFirst) {
  auto t = SortBy(Sample(), {{"score", true}});
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->column(1).IsNull(0));  // cat's null first
  EXPECT_EQ(t->GetCell(1, "name")->string_value(), "ann");
  EXPECT_EQ(t->GetCell(4, "name")->string_value(), "dan");
}

TEST(SortBy, DescendingNullsLast) {
  auto t = SortBy(Sample(), {{"score", false}});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->GetCell(0, "name")->string_value(), "dan");
  EXPECT_TRUE(t->column(1).IsNull(4));
}

TEST(SortBy, MultiKeyStable) {
  auto t = SortBy(Sample(), {{"team", true}, {"name", true}});
  ASSERT_TRUE(t.ok());
  // blue team first (ann, ann, bob), then red (cat, dan).
  EXPECT_EQ(t->GetCell(0, "name")->string_value(), "ann");
  EXPECT_EQ(t->GetCell(2, "name")->string_value(), "bob");
  EXPECT_EQ(t->GetCell(3, "name")->string_value(), "cat");
}

TEST(SortBy, UnknownColumnErrors) {
  EXPECT_FALSE(SortBy(Sample(), {{"ghost", true}}).ok());
}

TEST(Distinct, AllColumns) {
  auto t = Distinct(Sample());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 4u);  // duplicate ann row removed
}

TEST(Distinct, SubsetOfColumns) {
  auto t = Distinct(Sample(), {"team"});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 2u);
  // First occurrences kept, in row order.
  EXPECT_EQ(t->GetCell(0, "name")->string_value(), "dan");
  EXPECT_EQ(t->GetCell(1, "name")->string_value(), "ann");
}

TEST(Distinct, NullsCompareEqual) {
  Table t = *ReadCsvString("x,y\n,1\n,2\n");
  auto d = Distinct(t, {"x"});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_rows(), 1u);
}

TEST(Distinct, UnknownColumnErrors) {
  EXPECT_FALSE(Distinct(Sample(), {"ghost"}).ok());
}

TEST(Concat, StacksRows) {
  Table a = *ReadCsvString("x,y\n1,a\n");
  Table b = *ReadCsvString("x,y\n2,b\n3,\n");
  auto t = Concat({&a, &b});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 3u);
  EXPECT_EQ(t->GetCell(1, "y")->string_value(), "b");
  EXPECT_TRUE(t->GetCell(2, "y")->is_null());
}

TEST(Concat, SchemaMismatchErrors) {
  Table a = *ReadCsvString("x,y\n1,a\n");
  Table b = *ReadCsvString("x,z\n1,a\n");
  EXPECT_FALSE(Concat({&a, &b}).ok());
  EXPECT_FALSE(Concat({}).ok());
}

TEST(ProfileColumns, CountsNullsAndDistinct) {
  auto profiles = ProfileColumns(Sample());
  ASSERT_EQ(profiles.size(), 3u);
  EXPECT_EQ(profiles[0].name, "name");
  EXPECT_EQ(profiles[0].distinct, 4u);
  EXPECT_EQ(profiles[1].nulls, 1u);
  EXPECT_EQ(profiles[1].distinct, 3u);
  EXPECT_EQ(profiles[2].distinct, 2u);
}

}  // namespace
}  // namespace mesa
