// Chaos harness for the mesa_serve daemon (docs/serving.md +
// docs/robustness.md): the daemon inherits the library's fault-injection
// and resilience machinery, so the contracts proven for one-shot runs in
// kg_chaos_test must hold when the same pipeline is resident and serving.
//
//  - A transient-only fault plan on the daemon's KG endpoint is masked
//    completely: replies stay byte-identical to the fault-free golden.
//  - Permanent faults degrade visibly: every reply carries coverage /
//    values_failed, and the report text says so.
//  - Admission over-capacity sheds with resource_exhausted immediately —
//    a burst against a full daemon never hangs and never queues.
//  - Malformed input (bad JSON, unknown verb, oversized line, non-object)
//    gets a clean error reply and the connection survives.

#include <unistd.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "core/mesa.h"
#include "core/report_format.h"
#include "datagen/registry.h"
#include "kg/serialization.h"
#include "query/sql_parser.h"
#include "serve/client.h"
#include "serve/json.h"
#include "serve/router.h"
#include "serve/server.h"
#include "table/csv.h"

namespace mesa {
namespace serve {
namespace {

constexpr char kQuery[] =
    "SELECT Country, avg(Deaths_per_100_cases) FROM covid GROUP BY Country";

// Transient-only plan: everything the retry layer must mask.
constexpr char kTransientPlan[] =
    "seed=101;timeout=0.15;rate_limit=0.1;unavailable=0.05;truncate=0.05;"
    "latency=1:5";
// Permanent plan: half the KG keys never resolve.
constexpr char kPermanentPlan[] = "seed=7;fail_keys=0.5";

// Covid on disk, written once for the whole binary.
class ServeChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto ds = MakeDataset(DatasetKind::kCovid, GenOptions{});
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    // PID-unique paths: parallel ctest runs each test of this binary in
    // its own process, and their fixtures must not race on shared files.
    const std::string tag = std::to_string(::getpid());
    csv_path_ =
        new std::string(testing::TempDir() + "/serve_chaos." + tag + ".csv");
    kg_path_ =
        new std::string(testing::TempDir() + "/serve_chaos." + tag + ".kg");
    ASSERT_TRUE(WriteCsvFile(ds->table, *csv_path_).ok());
    ASSERT_TRUE(WriteKgFile(*ds->kg, *kg_path_).ok());

    // Fault-free golden, serial, exactly the daemon's reply shape.
    auto table = ReadCsvFile(*csv_path_);
    ASSERT_TRUE(table.ok());
    auto kg = ReadKgFile(*kg_path_);
    ASSERT_TRUE(kg.ok());
    Mesa mesa(std::move(*table), &*kg, {"Country", "WHO_Region"},
              MesaOptions{});
    auto query = ParseQuery(kQuery);
    ASSERT_TRUE(query.ok());
    auto report = mesa.Explain(*query);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    golden_report_ = new std::string(FormatReport(*report));
  }

  static void TearDownTestSuite() {
    std::remove(csv_path_->c_str());
    std::remove(kg_path_->c_str());
    delete csv_path_;
    delete kg_path_;
    delete golden_report_;
    csv_path_ = kg_path_ = golden_report_ = nullptr;
  }

  // A warm single-dataset router whose KG endpoint runs `fault_plan`.
  static void BuildRouter(Router* router, const std::string& fault_plan,
                          bool warm = true) {
    Router::DatasetSpec spec;
    spec.name = "covid";
    spec.csv_path = *csv_path_;
    spec.kg_path = *kg_path_;
    spec.extraction_columns = {"Country", "WHO_Region"};
    spec.options.fault_plan = fault_plan;
    ASSERT_TRUE(router->AddDataset(spec).ok());
    if (warm) ASSERT_TRUE(router->WarmStart().ok());
  }

  static std::string* csv_path_;
  static std::string* kg_path_;
  static std::string* golden_report_;
};

std::string* ServeChaosTest::csv_path_ = nullptr;
std::string* ServeChaosTest::kg_path_ = nullptr;
std::string* ServeChaosTest::golden_report_ = nullptr;

TEST_F(ServeChaosTest, TransientFaultsAreMaskedInDaemonReplies) {
  Router router;
  BuildRouter(&router, kTransientPlan);
  Server server(&router);
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::Connect(server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto reply = (*client)->Explain("covid", kQuery);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_TRUE(reply->ok) << reply->error;
  // Byte-identical to the fault-free golden: the outage left no trace.
  EXPECT_EQ(reply->report, *golden_report_);
  EXPECT_EQ(reply->values_failed, 0u);
  EXPECT_DOUBLE_EQ(reply->coverage, 1.0);

  server.Shutdown();
}

TEST_F(ServeChaosTest, PermanentFaultsSurfaceInEveryReply) {
  Router router;
  BuildRouter(&router, kPermanentPlan);
  Server server(&router);
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::Connect(server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto reply = (*client)->Explain("covid", kQuery);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_TRUE(reply->ok) << reply->error;
  // Degraded coverage is visible in the reply fields AND the report text.
  EXPECT_GT(reply->values_failed, 0u);
  EXPECT_LT(reply->coverage, 1.0);
  EXPECT_NE(reply->report.find("failed lookups"), std::string::npos);
  EXPECT_NE(reply->report, *golden_report_);

  server.Shutdown();
}

TEST_F(ServeChaosTest, CoverageFloorTurnsDegradationIntoAnErrorReply) {
  Router router;
  Router::DatasetSpec spec;
  spec.name = "covid";
  spec.csv_path = *csv_path_;
  spec.kg_path = *kg_path_;
  spec.extraction_columns = {"Country", "WHO_Region"};
  spec.options.fault_plan = kPermanentPlan;
  spec.options.extraction.min_coverage = 0.95;
  ASSERT_TRUE(router.AddDataset(spec).ok());
  // Warm start itself must fail: the dataset cannot meet its floor.
  Status warmed = router.WarmStart();
  ASSERT_FALSE(warmed.ok());
  EXPECT_EQ(warmed.code(), StatusCode::kUnavailable);

  // A cold daemon serving anyway turns the failure into an error reply,
  // not a crash or a hang.
  Server server(&router);
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect(server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto reply = (*client)->Explain("covid", kQuery);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_FALSE(reply->ok);
  EXPECT_EQ(reply->code, "unavailable");
  EXPECT_NE(reply->error.find("coverage"), std::string::npos);

  server.Shutdown();
}

// Admission: with every permit manually held, a burst of explains is shed
// immediately with resource_exhausted — nothing queues, nothing hangs.
TEST_F(ServeChaosTest, OverCapacityExplainsAreShedNeverQueued) {
  RouterOptions options;
  options.max_inflight = 2;
  Router router(options);
  BuildRouter(&router, "");
  Server server(&router);
  ASSERT_TRUE(server.Start().ok());

  // Hold both permits so every request in the burst is over capacity.
  auto p1 = router.admission().TryAcquire();
  auto p2 = router.admission().TryAcquire();
  ASSERT_TRUE(p1.ok() && p2.ok());

  constexpr int kBurst = 6;
  std::vector<std::thread> burst;
  std::vector<std::string> codes(kBurst);
  for (int i = 0; i < kBurst; ++i) {
    burst.emplace_back([&, i] {
      auto client = Client::Connect(server.port());
      if (!client.ok()) return;
      auto reply = (*client)->Explain("covid", kQuery);
      if (reply.ok()) codes[i] = reply->code;
    });
  }
  // The test's own deadline is the hang detector: joins complete because
  // shedding is non-blocking by construction.
  for (std::thread& t : burst) t.join();
  for (int i = 0; i < kBurst; ++i) {
    EXPECT_EQ(codes[i], "resource_exhausted") << "burst request " << i;
  }
  EXPECT_GE(router.admission().shed(), static_cast<size_t>(kBurst));

  // Releasing the permits restores service on the same daemon.
  p1.Release();
  p2.Release();
  auto client = Client::Connect(server.port());
  ASSERT_TRUE(client.ok());
  auto reply = (*client)->Explain("covid", kQuery);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_TRUE(reply->ok) << reply->error;
  EXPECT_EQ(reply->report, *golden_report_);

  server.Shutdown();
}

// A zero cap pins the shed path deterministically end to end.
TEST_F(ServeChaosTest, ZeroCapDaemonShedsEveryExplainButStillAnswersStatus) {
  RouterOptions options;
  options.max_inflight = 0;
  Router router(options);
  BuildRouter(&router, "");
  Server server(&router);
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::Connect(server.port());
  ASSERT_TRUE(client.ok());
  auto reply = (*client)->Explain("covid", kQuery);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_FALSE(reply->ok);
  EXPECT_EQ(reply->code, "resource_exhausted");
  // Cheap verbs are not subject to explain admission.
  auto status = (*client)->GetStatus();
  ASSERT_TRUE(status.ok());
  EXPECT_TRUE(status->GetBool("ok"));
  EXPECT_GE(status->GetNumber("shed"), 1.0);

  server.Shutdown();
}

// Malformed input: each case gets one clean error reply, and the SAME
// connection keeps working afterwards.
TEST_F(ServeChaosTest, MalformedRequestsGetErrorRepliesAndTheConnectionLives) {
  ServerOptions server_options;
  server_options.max_line_bytes = 4096;  // small cap to exercise oversize.
  Router router;
  BuildRouter(&router, "");
  Server server(&router, server_options);
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::Connect(server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  struct Case {
    const char* label;
    std::string line;
    const char* expect_code;
  };
  const Case cases[] = {
      {"bad json", "{\"verb\":", "invalid_argument"},
      {"not an object", "[1,2,3]", "invalid_argument"},
      {"missing verb", "{}", "invalid_argument"},
      {"unknown verb", "{\"verb\":\"frobnicate\"}", "invalid_argument"},
      {"explain without sql", "{\"verb\":\"explain\",\"dataset\":\"covid\"}",
       "invalid_argument"},
      {"unknown dataset",
       "{\"verb\":\"explain\",\"dataset\":\"nope\",\"sql\":\"SELECT a, "
       "avg(b) FROM t GROUP BY a\"}",
       "not_found"},
      {"oversized line",
       "{\"verb\":\"explain\",\"pad\":\"" + std::string(8192, 'x') + "\"}",
       "invalid_argument"},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.label);
    auto raw = (*client)->CallRaw(c.line);
    ASSERT_TRUE(raw.ok()) << raw.status().ToString();
    auto reply = JsonValue::Parse(*raw);
    ASSERT_TRUE(reply.ok()) << "reply not JSON: " << *raw;
    EXPECT_FALSE(reply->GetBool("ok"));
    EXPECT_EQ(reply->GetString("code"), c.expect_code);
    EXPECT_FALSE(reply->GetString("trace_id").empty());
    EXPECT_FALSE(reply->GetString("error").empty());
  }

  // After all that abuse, the same connection still serves a real explain.
  auto reply = (*client)->Explain("covid", kQuery);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_TRUE(reply->ok) << reply->error;
  EXPECT_EQ(reply->report, *golden_report_);

  server.Shutdown();
}

// A malformed fault plan fails dataset warm-up loudly, not silently.
TEST_F(ServeChaosTest, MalformedFaultPlanFailsWarmStart) {
  Router router;
  Router::DatasetSpec spec;
  spec.name = "covid";
  spec.csv_path = *csv_path_;
  spec.kg_path = *kg_path_;
  spec.extraction_columns = {"Country", "WHO_Region"};
  spec.options.fault_plan = "seed=7;typo_rate=0.5";
  ASSERT_TRUE(router.AddDataset(spec).ok());
  Status warmed = router.WarmStart();
  ASSERT_FALSE(warmed.ok());
  EXPECT_EQ(warmed.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace serve
}  // namespace mesa
