// Tests for the deterministic parallel-execution layer (common/parallel.h)
// and for the thread-count invariance of everything built on it: the
// permutation CI test and full MCIMR explanations must be byte-identical
// at 1, 2, and 8 threads. This binary is also the primary TSan target
// (see docs/sanitizers.md).

#include "common/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/parallel_sort.h"
#include "common/rng.h"
#include "core/mcimr.h"
#include "core/mesa.h"
#include "datagen/registry.h"
#include "info/independence.h"

namespace mesa {
namespace {

// ------------------------------------------------------------- pool basics

TEST(ParallelFor, EmptyRange) {
  std::atomic<int> calls{0};
  ParallelFor(5, 5, [&](size_t) { ++calls; });
  ParallelFor(7, 3, [&](size_t) { ++calls; });
  ParallelForChunks(2, 2, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, SingleElement) {
  std::vector<int> hits(1, 0);
  ParallelFor(0, 1, [&](size_t i) { hits[i]++; });
  EXPECT_EQ(hits[0], 1);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  SetNumThreads(4);
  constexpr size_t kN = 10'000;
  std::vector<int> hits(kN, 0);
  ParallelFor(0, kN, [&](size_t i) { hits[i]++; });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ParallelFor, ChunksCoverRangeWithoutOverlap) {
  SetNumThreads(8);
  constexpr size_t kBegin = 17, kEnd = 4321;
  std::vector<int> hits(kEnd, 0);
  ParallelForChunks(kBegin, kEnd, [&](size_t lo, size_t hi) {
    ASSERT_LT(lo, hi);
    for (size_t i = lo; i < hi; ++i) hits[i]++;
  });
  for (size_t i = 0; i < kBegin; ++i) ASSERT_EQ(hits[i], 0);
  for (size_t i = kBegin; i < kEnd; ++i) ASSERT_EQ(hits[i], 1);
}

TEST(ParallelFor, MaxThreadsCapRespectsResults) {
  SetNumThreads(8);
  std::vector<int> hits(100, 0);
  ParallelFor(0, 100, [&](size_t i) { hits[i]++; }, /*max_threads=*/2);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ParallelFor, NestedCallsRunInline) {
  SetNumThreads(4);
  constexpr size_t kOuter = 8, kInner = 500;
  std::vector<uint64_t> sums(kOuter, 0);
  ParallelFor(0, kOuter, [&](size_t o) {
    // A nested parallel call from a pool worker must not deadlock and must
    // still cover its whole range.
    uint64_t local = 0;
    std::vector<uint64_t> inner(kInner, 0);
    ParallelFor(0, kInner, [&](size_t i) { inner[i] = o * kInner + i; });
    for (uint64_t v : inner) local += v;
    sums[o] = local;
  });
  for (size_t o = 0; o < kOuter; ++o) {
    uint64_t expect = 0;
    for (size_t i = 0; i < kInner; ++i) expect += o * kInner + i;
    EXPECT_EQ(sums[o], expect);
  }
}

TEST(ParallelFor, PropagatesWorkerExceptionToCaller) {
  SetNumThreads(4);
  EXPECT_THROW(
      ParallelFor(0, 1000,
                  [&](size_t i) {
                    if (i == 617) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
  // The pool stays usable after an exception.
  std::atomic<size_t> count{0};
  ParallelFor(0, 100, [&](size_t) { ++count; });
  EXPECT_EQ(count.load(), 100u);
}

TEST(ThreadPool, ResizeTakesEffectAndPreservesResults) {
  SetNumThreads(3);
  EXPECT_EQ(NumThreads(), 3u);
  auto sum = [] {
    return ParallelMapReduce<uint64_t>(
        0, 5000, 0, [](size_t i) { return static_cast<uint64_t>(i * i); },
        [](uint64_t a, uint64_t b) { return a + b; });
  };
  const uint64_t at3 = sum();
  SetNumThreads(1);
  EXPECT_EQ(NumThreads(), 1u);
  const uint64_t at1 = sum();
  SetNumThreads(8);
  EXPECT_EQ(NumThreads(), 8u);
  const uint64_t at8 = sum();
  EXPECT_EQ(at1, at3);
  EXPECT_EQ(at1, at8);
}

TEST(ParallelMapReduce, FloatSumBitIdenticalAcrossThreadCounts) {
  // Chunk boundaries depend only on the range, so even a non-associative
  // floating-point reduction is bit-identical at any thread count.
  auto sum = [] {
    return ParallelMapReduce<double>(
        0, 9999, 0.0,
        [](size_t i) { return 1.0 / (1.0 + static_cast<double>(i)); },
        [](double a, double b) { return a + b; });
  };
  SetNumThreads(1);
  const double serial = sum();
  for (size_t threads : {2, 3, 8}) {
    SetNumThreads(threads);
    const double parallel = sum();
    EXPECT_EQ(serial, parallel) << "threads=" << threads;
  }
}

TEST(MixSeed, DistinctStreamsPerIndex) {
  EXPECT_NE(MixSeed(42, 0), 42u);
  EXPECT_NE(MixSeed(42, 0), MixSeed(42, 1));
  EXPECT_NE(MixSeed(42, 0), MixSeed(43, 0));
  EXPECT_EQ(MixSeed(42, 7), MixSeed(42, 7));
}

// ------------------------------------------------- determinism end to end

CodedVariable RandomCoded(Rng& rng, size_t n, int32_t card) {
  CodedVariable v;
  v.cardinality = card;
  v.codes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    v.codes.push_back(static_cast<int32_t>(rng.NextBelow(card)));
  }
  return v;
}

TEST(Determinism, IndependenceResultInvariantAcrossThreadCounts) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(1000 + seed);
    const size_t n = 400 + 37 * seed;
    CodedVariable z = RandomCoded(rng, n, 4);
    CodedVariable x = RandomCoded(rng, n, 3);
    CodedVariable y;
    y.cardinality = 3;
    for (size_t i = 0; i < n; ++i) {
      y.codes.push_back(rng.NextBernoulli(0.5)
                            ? x.codes[i]
                            : static_cast<int32_t>(rng.NextBelow(3)));
    }
    IndependenceOptions opts;
    opts.seed = 77 + seed;
    opts.num_permutations = 99;
    SetNumThreads(1);
    IndependenceResult ref = ConditionalIndependenceTest(x, y, z, opts);
    for (size_t threads : {2, 8}) {
      SetNumThreads(threads);
      IndependenceResult r = ConditionalIndependenceTest(x, y, z, opts);
      EXPECT_EQ(ref.cmi, r.cmi) << "seed=" << seed << " threads=" << threads;
      EXPECT_EQ(ref.p_value, r.p_value)
          << "seed=" << seed << " threads=" << threads;
      EXPECT_EQ(ref.independent, r.independent)
          << "seed=" << seed << " threads=" << threads;
    }
  }
  SetNumThreads(1);
}

// Compares every observable part of two explanations, bitwise on doubles.
void ExpectSameExplanation(const Explanation& a, const Explanation& b,
                           const std::string& label) {
  EXPECT_EQ(a.attribute_indices, b.attribute_indices) << label;
  EXPECT_EQ(a.attribute_names, b.attribute_names) << label;
  EXPECT_EQ(a.base_cmi, b.base_cmi) << label;
  EXPECT_EQ(a.final_cmi, b.final_cmi) << label;
  EXPECT_EQ(a.stopped_by_responsibility, b.stopped_by_responsibility) << label;
  ASSERT_EQ(a.trace.size(), b.trace.size()) << label;
  for (size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].attribute_index, b.trace[i].attribute_index) << label;
    EXPECT_EQ(a.trace[i].selection_score, b.trace[i].selection_score) << label;
    EXPECT_EQ(a.trace[i].cmi_after, b.trace[i].cmi_after) << label;
  }
}

GeneratedDataset MakeSmallDataset(uint64_t i) {
  const DatasetKind kinds[] = {DatasetKind::kStackOverflow,
                               DatasetKind::kCovid, DatasetKind::kFlights,
                               DatasetKind::kForbes};
  const DatasetKind kind = kinds[i % 4];
  GenOptions gen;
  gen.seed = 2000 + i;
  // Small row counts keep 20 datasets x 3 thread counts inside tier-1
  // budgets; Covid/Forbes use their (already small) paper defaults.
  if (kind == DatasetKind::kStackOverflow) gen.rows = 1200;
  if (kind == DatasetKind::kFlights) gen.rows = 1500;
  auto ds = MakeDataset(kind, gen);
  EXPECT_TRUE(ds.ok());
  return std::move(*ds);
}

TEST(Determinism, McimrExplanationInvariantAcrossThreadCounts) {
  for (uint64_t i = 0; i < 20; ++i) {
    GeneratedDataset ds = MakeSmallDataset(i);
    const QuerySpec query =
        CanonicalQueries(static_cast<DatasetKind>(i % 4)).front().query;

    auto explain = [&]() -> MesaReport {
      Mesa mesa(ds.table, ds.kg.get(), ds.extraction_columns);
      auto report = mesa.Explain(query);
      EXPECT_TRUE(report.ok()) << report.status().ToString();
      return std::move(*report);
    };

    SetNumThreads(1);
    MesaReport ref = explain();
    for (size_t threads : {2, 8}) {
      SetNumThreads(threads);
      MesaReport got = explain();
      const std::string label =
          "dataset=" + std::to_string(i) + " threads=" + std::to_string(threads);
      ExpectSameExplanation(ref.explanation, got.explanation, label);
      EXPECT_EQ(ref.base_cmi, got.base_cmi) << label;
      EXPECT_EQ(ref.final_cmi, got.final_cmi) << label;
      EXPECT_EQ(ref.candidates_after_online, got.candidates_after_online)
          << label;
      ASSERT_EQ(ref.responsibilities.size(), got.responsibilities.size())
          << label;
      for (size_t r = 0; r < ref.responsibilities.size(); ++r) {
        EXPECT_EQ(ref.responsibilities[r].attribute_index,
                  got.responsibilities[r].attribute_index)
            << label;
        EXPECT_EQ(ref.responsibilities[r].responsibility,
                  got.responsibilities[r].responsibility)
            << label;
      }
    }
  }
  SetNumThreads(1);
}

// ------------------------------------------------------------------ stress

TEST(Stress, ConcurrentCallersShareOnePool) {
  SetNumThreads(4);
  constexpr size_t kCallers = 4;
  constexpr size_t kRounds = 200;
  std::vector<std::thread> callers;
  std::vector<uint64_t> results(kCallers, 0);
  std::atomic<bool> failed{false};
  for (size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([c, &results, &failed] {
      uint64_t acc = 0;
      for (size_t round = 0; round < kRounds; ++round) {
        acc ^= ParallelMapReduce<uint64_t>(
            0, 512, 0,
            [c, round](size_t i) {
              return MixSeed(c * 31 + round, i);
            },
            [](uint64_t a, uint64_t b) { return a + b; });
      }
      results[c] = acc;
      if (acc == 0) failed = true;
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_FALSE(failed.load());
  // The same work done serially must agree with every concurrent caller.
  for (size_t c = 0; c < kCallers; ++c) {
    uint64_t expect = 0;
    for (size_t round = 0; round < kRounds; ++round) {
      uint64_t sum = 0;
      for (size_t i = 0; i < 512; ++i) sum += MixSeed(c * 31 + round, i);
      expect ^= sum;
    }
    EXPECT_EQ(results[c], expect) << "caller " << c;
  }
}

// estimator_evaluations() is an *exact* count of distinct cached CMI/MI
// computations: when pool workers race to fill the same cache slot, only
// the winning store is counted. The count must therefore match the serial
// run at any thread count.
TEST(Determinism, EstimatorEvaluationsExactAcrossThreadCounts) {
  GeneratedDataset ds = MakeSmallDataset(1);  // Covid (188 rows)
  const QuerySpec q = CanonicalQueries(DatasetKind::kCovid).front().query;

  auto count_evals = [&](size_t threads) {
    SetNumThreads(threads);
    Mesa mesa(ds.table, ds.kg.get(), ds.extraction_columns);
    auto pq = mesa.PrepareQuery(q);
    EXPECT_TRUE(pq.ok());
    RunMcimr(*pq->analysis, pq->candidate_indices);
    return pq->analysis->estimator_evaluations();
  };

  const size_t serial = count_evals(1);
  EXPECT_GT(serial, 0u);
  EXPECT_EQ(count_evals(2), serial);
  EXPECT_EQ(count_evals(8), serial);
  SetNumThreads(1);
}

TEST(Stress, TwoConcurrentMesaRunsShareOnePool) {
  SetNumThreads(4);
  GeneratedDataset ds0 = MakeSmallDataset(1);  // Covid (188 rows)
  GeneratedDataset ds1 = MakeSmallDataset(3);  // Forbes (1647 rows)
  const QuerySpec q0 = CanonicalQueries(DatasetKind::kCovid).front().query;
  const QuerySpec q1 = CanonicalQueries(DatasetKind::kForbes).front().query;

  auto explain = [](const GeneratedDataset& ds, const QuerySpec& q) {
    Mesa mesa(ds.table, ds.kg.get(), ds.extraction_columns);
    auto report = mesa.Explain(q);
    EXPECT_TRUE(report.ok());
    return std::move(*report);
  };

  // Serial references first.
  MesaReport ref0 = explain(ds0, q0);
  MesaReport ref1 = explain(ds1, q1);

  // Then both explanations concurrently, twice each, on the shared pool —
  // a deadlock here would hang well past the test's runtime budget.
  MesaReport got0a, got0b, got1a, got1b;
  std::thread t0([&] {
    got0a = explain(ds0, q0);
    got0b = explain(ds0, q0);
  });
  std::thread t1([&] {
    got1a = explain(ds1, q1);
    got1b = explain(ds1, q1);
  });
  t0.join();
  t1.join();
  ExpectSameExplanation(ref0.explanation, got0a.explanation, "run 0a");
  ExpectSameExplanation(ref0.explanation, got0b.explanation, "run 0b");
  ExpectSameExplanation(ref1.explanation, got1a.explanation, "run 1a");
  ExpectSameExplanation(ref1.explanation, got1b.explanation, "run 1b");
  SetNumThreads(1);
}

// ------------------------------------------------------ stable radix sort

// The morsel-parallel LSD radix sort (common/parallel_sort.h) must equal
// std::stable_sort on every input — any key width, any size (straddling
// the serial-fallback threshold), any thread count.
TEST(StableRadixSort, MatchesStdSortAcrossWidthsSizesAndThreads) {
  for (int key_bits : {1, 8, 13, 24, 37, 64}) {
    const uint64_t mask = key_bits == 64
                              ? ~uint64_t{0}
                              : ((uint64_t{1} << key_bits) - 1);
    for (size_t n : {size_t{0}, size_t{1}, size_t{1000}, size_t{100000}}) {
      Rng rng(uint64_t(key_bits) * 1000 + n);
      std::vector<uint64_t> input(n);
      for (auto& k : input) k = rng.NextUint64() & mask;
      std::vector<uint64_t> expected = input;
      std::sort(expected.begin(), expected.end());
      for (size_t threads : {1, 2, 8}) {
        SetNumThreads(threads);
        std::vector<uint64_t> got = input;
        StableRadixSort(&got, key_bits);
        EXPECT_EQ(got, expected)
            << "bits=" << key_bits << " n=" << n << " threads=" << threads;
      }
    }
  }
  SetNumThreads(1);
}

// Stability is the property the packed CMI kernel leans on: rows with
// equal keys must come out in input order, and — since a stable sort's
// output is unique — the whole output must be identical at every thread
// count.
TEST(StableRadixSort, StableOnEqualKeysAndThreadCountInvariant) {
  struct Row {
    uint64_t key;
    uint32_t idx;
  };
  const size_t n = 120000;  // past the parallel threshold
  Rng rng(99);
  std::vector<Row> input(n);
  for (size_t i = 0; i < n; ++i) {
    // 64 distinct keys over 120k rows: ~2000 rows per tie group.
    input[i] = {rng.NextUint64() & 63, static_cast<uint32_t>(i)};
  }
  std::vector<Row> reference;
  for (size_t threads : {1, 2, 8}) {
    SetNumThreads(threads);
    std::vector<Row> rows = input;
    StableRadixSortByKey(&rows, 6, [](const Row& r) { return r.key; });
    for (size_t i = 1; i < n; ++i) {
      ASSERT_LE(rows[i - 1].key, rows[i].key) << "unsorted at " << i;
      if (rows[i - 1].key == rows[i].key) {
        ASSERT_LT(rows[i - 1].idx, rows[i].idx)
            << "stability violated at " << i << " threads=" << threads;
      }
    }
    if (reference.empty()) {
      reference = rows;
    } else {
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(reference[i].key, rows[i].key) << "threads=" << threads;
        ASSERT_EQ(reference[i].idx, rows[i].idx) << "threads=" << threads;
      }
    }
  }
  SetNumThreads(1);
}

}  // namespace
}  // namespace mesa
