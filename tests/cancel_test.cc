// Unit tests for common/cancel.h: token state machine, deadline
// tightening, thread-local scope install/restore, checkpoint throw
// semantics, and propagation into thread-pool workers (the property the
// serving layer's end-to-end deadline enforcement rests on).

#include "common/cancel.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"

namespace mesa {
namespace {

TEST(CancelToken, DefaultTokenIsLiveWithNoDeadline) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.deadline_ns(), 0u);
  EXPECT_TRUE(token.Check().ok());
}

TEST(CancelToken, WithTimeoutZeroMeansNoDeadline) {
  auto token = CancelToken::WithTimeoutMs(0);
  EXPECT_EQ(token->deadline_ns(), 0u);
  EXPECT_TRUE(token->Check().ok());
}

TEST(CancelToken, ExplicitCancelFailsCheckWithCancelled) {
  CancelToken token;
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  Status status = token.Check();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
}

TEST(CancelToken, ExpiredDeadlineFailsCheckWithDeadlineExceeded) {
  auto token = CancelToken::WithTimeoutMs(1);
  ASSERT_GT(token->deadline_ns(), 0u);
  // Spin past the deadline; 1 ms is far below any scheduler hiccup that
  // could make this flaky in the other direction.
  while (CancelClockNowNs() <= token->deadline_ns()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Status status = token->Check();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelToken, ExplicitCancelWinsOverExpiredDeadline) {
  CancelToken token;
  token.set_deadline_ns(1);  // long past.
  token.Cancel();
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
}

TEST(CancelToken, TightenAdoptsDeadlineWhenNoneSet) {
  CancelToken token;
  token.TightenDeadlineNs(12345);
  EXPECT_EQ(token.deadline_ns(), 12345u);
}

TEST(CancelToken, TightenOnlyMovesDeadlinesEarlier) {
  CancelToken token;
  token.set_deadline_ns(1000);
  token.TightenDeadlineNs(2000);  // later: must be ignored.
  EXPECT_EQ(token.deadline_ns(), 1000u);
  token.TightenDeadlineNs(500);  // earlier: must win.
  EXPECT_EQ(token.deadline_ns(), 500u);
}

TEST(CancelScope, InstallsAndRestoresTheThreadLocalToken) {
  EXPECT_EQ(CurrentCancelToken(), nullptr);
  auto outer = std::make_shared<CancelToken>();
  {
    CancelScope outer_scope(outer);
    EXPECT_EQ(CurrentCancelToken(), outer);
    auto inner = std::make_shared<CancelToken>();
    {
      CancelScope inner_scope(inner);
      EXPECT_EQ(CurrentCancelToken(), inner);
    }
    EXPECT_EQ(CurrentCancelToken(), outer);
  }
  EXPECT_EQ(CurrentCancelToken(), nullptr);
}

TEST(CancelCheckpoint, NoTokenInstalledIsANoOp) {
  ASSERT_EQ(CurrentCancelToken(), nullptr);
  EXPECT_NO_THROW(CancelCheckpoint());
  EXPECT_TRUE(CancelCheckStatus().ok());
}

TEST(CancelCheckpoint, LiveTokenDoesNotThrow) {
  auto token = std::make_shared<CancelToken>();
  CancelScope scope(token);
  EXPECT_NO_THROW(CancelCheckpoint());
}

TEST(CancelCheckpoint, CancelledTokenThrowsCancelledError) {
  auto token = std::make_shared<CancelToken>();
  token->Cancel();
  CancelScope scope(token);
  try {
    CancelCheckpoint();
    FAIL() << "checkpoint did not throw";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kCancelled);
  }
  EXPECT_EQ(CancelCheckStatus().code(), StatusCode::kCancelled);
}

TEST(CancelPropagation, PoolWorkersSeeTheSubmittersToken) {
  const size_t saved = NumThreads();
  SetNumThreads(4);
  auto token = std::make_shared<CancelToken>();
  CancelScope scope(token);
  constexpr size_t kTasks = 32;
  std::vector<int> saw_token(kTasks, 0);
  ParallelFor(
      0, kTasks,
      [&](size_t i) { saw_token[i] = CurrentCancelToken() == token ? 1 : 0; },
      4);
  SetNumThreads(saved);
  for (size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(saw_token[i], 1) << "task " << i << " lost the token";
  }
}

TEST(CancelPropagation, CheckpointInWorkerUnwindsOutOfParallelFor) {
  const size_t saved = NumThreads();
  SetNumThreads(4);
  auto token = std::make_shared<CancelToken>();
  token->Cancel();
  CancelScope scope(token);
  bool caught = false;
  try {
    ParallelFor(
        0, 16, [&](size_t) { CancelCheckpoint(); }, 4);
  } catch (const CancelledError& e) {
    caught = true;
    EXPECT_EQ(e.status().code(), StatusCode::kCancelled);
  }
  SetNumThreads(saved);
  EXPECT_TRUE(caught);
}

// A worker that trips the checkpoint must not poison the pool: the same
// pool serves a clean run right after.
TEST(CancelPropagation, PoolSurvivesACancelledRun) {
  const size_t saved = NumThreads();
  SetNumThreads(4);
  {
    auto token = std::make_shared<CancelToken>();
    token->Cancel();
    CancelScope scope(token);
    EXPECT_THROW(
        ParallelFor(0, 16, [&](size_t) { CancelCheckpoint(); }, 4),
        CancelledError);
  }
  std::atomic<size_t> ran{0};
  ParallelFor(
      0, 16, [&](size_t) { ran.fetch_add(1, std::memory_order_relaxed); }, 4);
  SetNumThreads(saved);
  EXPECT_EQ(ran.load(), 16u);
}

}  // namespace
}  // namespace mesa
