#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "core/baselines/brute_force.h"
#include "core/baselines/hypdb.h"
#include "core/baselines/lr_explainer.h"
#include "core/baselines/top_k.h"
#include "core/mcimr.h"
#include "core/pruning.h"
#include "table/table_builder.h"

namespace mesa {
namespace {

// Same structure as core_test's world: 100 groups, outcome = 3u + 2v +
// indiv, with a redundant twin of u and a per-group noise attribute.
struct World {
  Table table;
  QuerySpec query;
};

World MakeWorld(size_t rows = 12000, uint64_t seed = 177) {
  Rng rng(seed);
  const size_t kGroups = 100;
  std::vector<double> u(kGroups), v(kGroups), noise(kGroups);
  for (size_t g = 0; g < kGroups; ++g) {
    u[g] = rng.NextGaussian();
    v[g] = rng.NextGaussian();
    noise[g] = rng.NextGaussian();
  }
  TableBuilder b(Schema({{"group", DataType::kString},
                         {"outcome", DataType::kDouble},
                         {"conf_u", DataType::kDouble},
                         {"conf_u_twin", DataType::kDouble},
                         {"conf_v", DataType::kDouble},
                         {"noise", DataType::kDouble},
                         {"indiv", DataType::kDouble}}));
  for (size_t i = 0; i < rows; ++i) {
    size_t g = rng.NextBelow(kGroups);
    double indiv = rng.NextGaussian();
    double outcome =
        3.0 * u[g] + 2.0 * v[g] + indiv + rng.NextGaussian(0, 0.4);
    MESA_CHECK(b.AppendRow({Value::String("g" + std::to_string(g)),
                            Value::Double(outcome), Value::Double(u[g]),
                            Value::Double(u[g] + 0.01 * noise[g]),
                            Value::Double(v[g]), Value::Double(noise[g]),
                            Value::Double(indiv)})
                   .ok());
  }
  World w;
  w.table = *b.Finish();
  w.query.exposure = "group";
  w.query.outcome = "outcome";
  return w;
}

std::vector<std::string> Candidates() {
  return {"conf_u", "conf_u_twin", "conf_v", "noise", "indiv"};
}

struct Prepared {
  std::shared_ptr<QueryAnalysis> qa;
  std::vector<size_t> kept;
};

Prepared PrepareWorld(const World& w) {
  auto qa = QueryAnalysis::Prepare(w.table, w.query, Candidates());
  MESA_CHECK(qa.ok());
  Prepared p;
  p.qa = std::make_shared<QueryAnalysis>(std::move(*qa));
  p.kept = OnlinePrune(*p.qa).kept_indices;
  return p;
}

// ------------------------------------------------------------- BruteForce

TEST(BruteForce, MatchesOrBeatsMcimrObjective) {
  World w = MakeWorld();
  Prepared p = PrepareWorld(w);
  auto bf = RunBruteForce(*p.qa, p.kept);
  ASSERT_TRUE(bf.ok());
  Explanation greedy = RunMcimr(*p.qa, p.kept);
  EXPECT_LE(bf->Objective(), greedy.Objective() + 1e-9);
  EXPECT_FALSE(bf->attribute_names.empty());
}

TEST(BruteForce, FindsConfounderPair) {
  World w = MakeWorld();
  Prepared p = PrepareWorld(w);
  BruteForceOptions opts;
  opts.max_size = 2;
  auto bf = RunBruteForce(*p.qa, p.kept, opts);
  ASSERT_TRUE(bf.ok());
  bool has_u = false, has_v = false;
  for (const auto& n : bf->attribute_names) {
    has_u |= n == "conf_u" || n == "conf_u_twin";
    has_v |= n == "conf_v";
  }
  EXPECT_TRUE(has_u) << bf->ToString();
  EXPECT_TRUE(has_v) << bf->ToString();
}

TEST(BruteForce, RespectsSubsetBudget) {
  World w = MakeWorld(2000);
  Prepared p = PrepareWorld(w);
  BruteForceOptions opts;
  opts.max_subsets = 1;
  EXPECT_EQ(RunBruteForce(*p.qa, p.kept, opts).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(BruteForce, EmptyCandidateSet) {
  World w = MakeWorld(2000);
  Prepared p = PrepareWorld(w);
  auto bf = RunBruteForce(*p.qa, {});
  ASSERT_TRUE(bf.ok());
  EXPECT_TRUE(bf->attribute_names.empty());
  EXPECT_DOUBLE_EQ(bf->final_cmi, p.qa->BaseCmi());
}

// ------------------------------------------------------------------ TopK

TEST(TopK, RanksByIndividualCmi) {
  World w = MakeWorld();
  Prepared p = PrepareWorld(w);
  Explanation ex = RunTopK(*p.qa, p.kept, 2);
  ASSERT_EQ(ex.attribute_names.size(), 2u);
  // The two individually best attributes are conf_u and its twin: Top-K's
  // signature redundancy failure (the paper's Year Low F / Year Avg F).
  auto is_u = [](const std::string& s) {
    return s == "conf_u" || s == "conf_u_twin";
  };
  EXPECT_TRUE(is_u(ex.attribute_names[0]));
  EXPECT_TRUE(is_u(ex.attribute_names[1]));
}

TEST(TopK, TruncatesToAvailable) {
  World w = MakeWorld(2000);
  Prepared p = PrepareWorld(w);
  Explanation ex = RunTopK(*p.qa, p.kept, 50);
  EXPECT_EQ(ex.attribute_names.size(), p.kept.size());
  EXPECT_TRUE(RunTopK(*p.qa, {}, 3).attribute_names.empty());
}

// -------------------------------------------------------------------- LR

TEST(LrExplainer, PicksOutcomeCorrelates) {
  World w = MakeWorld();
  Prepared p = PrepareWorld(w);
  auto lr = RunLrExplainer(*p.qa, p.kept);
  ASSERT_TRUE(lr.ok());
  ASSERT_FALSE(lr->attribute_names.empty());
  // LR ranks by association with O: indiv is a direct cause of O and
  // should be among the picks even though it explains nothing about the
  // group correlation — the paper's core criticism of this baseline.
  bool has_indiv = false;
  for (const auto& n : lr->attribute_names) has_indiv |= n == "indiv";
  EXPECT_TRUE(has_indiv) << lr->ToString();
}

TEST(LrExplainer, PValueGateCanEmptyTheExplanation) {
  World w = MakeWorld();
  Prepared p = PrepareWorld(w);
  LrExplainerOptions opts;
  opts.p_value_threshold = -1.0;  // nothing clears the bar
  auto lr = RunLrExplainer(*p.qa, p.kept, opts);
  ASSERT_TRUE(lr.ok());
  EXPECT_TRUE(lr->attribute_names.empty());
  EXPECT_DOUBLE_EQ(lr->final_cmi, lr->base_cmi);
}

TEST(LrExplainer, MaxSizeRespected) {
  World w = MakeWorld();
  Prepared p = PrepareWorld(w);
  LrExplainerOptions opts;
  opts.max_size = 1;
  auto lr = RunLrExplainer(*p.qa, p.kept, opts);
  ASSERT_TRUE(lr.ok());
  EXPECT_LE(lr->attribute_names.size(), 1u);
}

// ----------------------------------------------------------------- HypDB

TEST(HypDb, FindsConfounders) {
  World w = MakeWorld();
  Prepared p = PrepareWorld(w);
  auto hy = RunHypDb(*p.qa, p.kept);
  ASSERT_TRUE(hy.ok());
  ASSERT_FALSE(hy->attribute_names.empty());
  bool has_conf = false;
  for (const auto& n : hy->attribute_names) {
    has_conf |= n == "conf_u" || n == "conf_u_twin" || n == "conf_v";
  }
  EXPECT_TRUE(has_conf) << hy->ToString();
  EXPECT_LT(hy->final_cmi, hy->base_cmi);
}

TEST(HypDb, AttributeCapSamples) {
  World w = MakeWorld();
  Prepared p = PrepareWorld(w);
  HypDbOptions opts;
  opts.max_attributes = 2;
  auto hy = RunHypDb(*p.qa, p.kept, opts);
  ASSERT_TRUE(hy.ok());
  EXPECT_LE(hy->attribute_names.size(), 2u);
}

TEST(HypDb, NoConfoundersYieldsEmpty) {
  // Outcome is pure noise: no candidate passes the confounder criteria.
  Rng rng(9);
  TableBuilder b(Schema({{"g", DataType::kString},
                         {"o", DataType::kDouble},
                         {"attr", DataType::kDouble}}));
  for (int i = 0; i < 3000; ++i) {
    MESA_CHECK(b.AppendRow({Value::String("g" + std::to_string(i % 8)),
                            Value::Double(rng.NextGaussian()),
                            Value::Double(rng.NextGaussian())})
                   .ok());
  }
  Table t = *b.Finish();
  QuerySpec q;
  q.exposure = "g";
  q.outcome = "o";
  auto qa = QueryAnalysis::Prepare(t, q, {"attr"});
  ASSERT_TRUE(qa.ok());
  auto hy = RunHypDb(*qa, {0});
  ASSERT_TRUE(hy.ok());
  EXPECT_TRUE(hy->attribute_names.empty());
}

// -------------------------------------------------- Quality ordering

TEST(Baselines, ExplainabilityOrderingMatchesPaper) {
  // Fig. 2's shape: MESA's explainability score is close to Brute-Force's
  // and at least as good as Top-K's.
  World w = MakeWorld();
  Prepared p = PrepareWorld(w);
  auto bf = RunBruteForce(*p.qa, p.kept);
  ASSERT_TRUE(bf.ok());
  Explanation mesa_ex = RunMcimr(*p.qa, p.kept);
  Explanation topk = RunTopK(*p.qa, p.kept, mesa_ex.attribute_names.size());
  EXPECT_LE(bf->final_cmi, mesa_ex.final_cmi + 1e-9);
  EXPECT_LE(mesa_ex.final_cmi, topk.final_cmi + 1e-9);
}

}  // namespace
}  // namespace mesa
