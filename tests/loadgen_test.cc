// Unit tests for the load-harness building blocks (src/loadgen/):
// seeded workload generation, deterministic schedules, pinned percentile
// math, counter deltas, and the JSON summary schema. The end-to-end
// load runs against a live Router live in serve_load_test.cc.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "datagen/registry.h"
#include "loadgen/driver.h"
#include "loadgen/latency.h"
#include "loadgen/schedule.h"
#include "loadgen/summary.h"
#include "loadgen/workload.h"
#include "serve/json.h"

namespace mesa {
namespace loadgen {
namespace {

// ---------------------------------------------------------------------
// Workload generation.

class WorkloadGenTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto covid = MakeDataset(DatasetKind::kCovid);
    ASSERT_TRUE(covid.ok());
    GenOptions flights_gen;
    flights_gen.rows = 2000;
    auto flights = MakeDataset(DatasetKind::kFlights, flights_gen);
    ASSERT_TRUE(flights.ok());
    datasets_ = new std::vector<WorkloadDataset>;
    datasets_->push_back(MakeWorkloadDataset(
        "covid", covid->table, covid->extraction_columns, {"WHO_Region"}));
    datasets_->push_back(MakeWorkloadDataset("flights", flights->table,
                                             flights->extraction_columns,
                                             {"Origin_state"}));
  }
  static void TearDownTestSuite() {
    delete datasets_;
    datasets_ = nullptr;
  }

  static std::vector<WorkloadDataset>* datasets_;
};

std::vector<WorkloadDataset>* WorkloadGenTest::datasets_ = nullptr;

TEST_F(WorkloadGenTest, DrawPoolsAreNonEmpty) {
  for (const WorkloadDataset& dataset : *datasets_) {
    EXPECT_FALSE(dataset.exposures.empty()) << dataset.name;
    EXPECT_FALSE(dataset.outcomes.empty()) << dataset.name;
    EXPECT_FALSE(dataset.contexts.empty()) << dataset.name;
    // Outcomes never repeat an exposure column.
    for (const std::string& outcome : dataset.outcomes) {
      EXPECT_EQ(std::count(dataset.exposures.begin(), dataset.exposures.end(),
                           outcome),
                0)
          << dataset.name << "." << outcome;
    }
  }
}

TEST_F(WorkloadGenTest, SameSeedSameQuerySequence) {
  WorkloadOptions options;
  options.seed = 4242;
  options.distinct_queries = 10;
  auto first = GenerateWorkload(*datasets_, options);
  auto second = GenerateWorkload(*datasets_, options);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->size(), 10u);
  ASSERT_EQ(second->size(), 10u);
  for (size_t i = 0; i < first->size(); ++i) {
    EXPECT_EQ((*first)[i].RequestLine(), (*second)[i].RequestLine()) << i;
  }
}

TEST_F(WorkloadGenTest, DifferentSeedDifferentPool) {
  WorkloadOptions a;
  a.seed = 1;
  WorkloadOptions b;
  b.seed = 2;
  auto first = GenerateWorkload(*datasets_, a);
  auto second = GenerateWorkload(*datasets_, b);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  size_t differing = 0;
  for (size_t i = 0; i < first->size(); ++i) {
    if ((*first)[i].RequestLine() != (*second)[i].RequestLine()) ++differing;
  }
  EXPECT_GT(differing, 0u);
}

TEST_F(WorkloadGenTest, RoundRobinCoversEveryDataset) {
  WorkloadOptions options;
  options.distinct_queries = 7;
  auto queries = GenerateWorkload(*datasets_, options);
  ASSERT_TRUE(queries.ok());
  for (size_t i = 0; i < queries->size(); ++i) {
    EXPECT_EQ((*queries)[i].dataset, (*datasets_)[i % datasets_->size()].name)
        << i;
  }
}

TEST_F(WorkloadGenTest, QueriesAreDistinct) {
  WorkloadOptions options;
  options.distinct_queries = 12;
  auto queries = GenerateWorkload(*datasets_, options);
  ASSERT_TRUE(queries.ok());
  std::set<std::string> lines;
  for (const WorkloadQuery& query : *queries) {
    lines.insert(query.RequestLine());
  }
  EXPECT_EQ(lines.size(), queries->size());
}

TEST_F(WorkloadGenTest, RequestLineIsTheWireFormat) {
  WorkloadQuery query;
  query.dataset = "covid";
  query.sql = "SELECT X, AVG(Y) FROM T GROUP BY X";
  query.subgroups = {"WHO_Region"};
  auto parsed = serve::JsonValue::Parse(query.RequestLine());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->GetString("verb"), "explain");
  EXPECT_EQ(parsed->GetString("dataset"), "covid");
  EXPECT_EQ(parsed->GetString("sql"), query.sql);
  // No subgroups => no subgroups key (exactly what Client::Explain sends).
  query.subgroups.clear();
  EXPECT_EQ(query.RequestLine().find("subgroups"), std::string::npos);
}

TEST(WorkloadErrorsTest, EmptyInputsAreRejected) {
  EXPECT_FALSE(GenerateWorkload({}, WorkloadOptions()).ok());
  WorkloadDataset hollow;
  hollow.name = "hollow";
  EXPECT_FALSE(GenerateWorkload({hollow}, WorkloadOptions()).ok());
}

// ---------------------------------------------------------------------
// Schedules.

TEST(ScheduleTest, QueryIndexIsPureAndInRange) {
  for (size_t worker = 0; worker < 4; ++worker) {
    for (size_t request = 0; request < 16; ++request) {
      size_t index = QueryIndexFor(7, worker, request, 5);
      EXPECT_LT(index, 5u);
      EXPECT_EQ(index, QueryIndexFor(7, worker, request, 5));
    }
  }
}

TEST(ScheduleTest, QueryIndexCoversThePool) {
  std::set<size_t> seen;
  for (size_t request = 0; request < 200; ++request) {
    seen.insert(QueryIndexFor(11, 0, request, 6));
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(ScheduleTest, OpenLoopArrivalsDeterministic) {
  OpenLoopOptions options;
  options.seed = 99;
  options.target_qps = 1000.0;
  options.total_requests = 64;
  std::vector<uint64_t> first = OpenLoopArrivalsNs(options);
  std::vector<uint64_t> second = OpenLoopArrivalsNs(options);
  ASSERT_EQ(first.size(), 64u);
  EXPECT_EQ(first, second);
  EXPECT_TRUE(std::is_sorted(first.begin(), first.end()));
}

TEST(ScheduleTest, OpenLoopMeanInterArrivalTracksRate) {
  OpenLoopOptions options;
  options.seed = 5;
  options.target_qps = 100.0;  // mean gap 10ms.
  options.total_requests = 2000;
  std::vector<uint64_t> arrivals = OpenLoopArrivalsNs(options);
  double mean_gap_ms =
      static_cast<double>(arrivals.back()) / (arrivals.size() * 1e6);
  EXPECT_GT(mean_gap_ms, 8.0);
  EXPECT_LT(mean_gap_ms, 12.0);
}

TEST(ScheduleTest, OpenLoopDegenerateInputsYieldNothing) {
  OpenLoopOptions options;
  options.total_requests = 0;
  EXPECT_TRUE(OpenLoopArrivalsNs(options).empty());
  options.total_requests = 8;
  options.target_qps = 0.0;
  EXPECT_TRUE(OpenLoopArrivalsNs(options).empty());
  options.target_qps = -3.0;
  EXPECT_TRUE(OpenLoopArrivalsNs(options).empty());
}

// ---------------------------------------------------------------------
// Percentiles — pinned against hand-computed nearest-rank fixtures.

TEST(PercentileTest, HundredSamples) {
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) samples.push_back(i);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(samples, 50.0), 50.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(samples, 95.0), 95.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(samples, 99.0), 99.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(samples, 100.0), 100.0);
}

TEST(PercentileTest, FourSamples) {
  // N=4: rank(50) = ceil(2) = 2 -> 20; rank(95) = ceil(3.8) = 4 -> 40.
  std::vector<double> samples = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(PercentileNearestRank(samples, 50.0), 20.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(samples, 95.0), 40.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(samples, 99.0), 40.0);
}

TEST(PercentileTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(PercentileNearestRank({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank({7.0}, 50.0), 7.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank({7.0}, 99.0), 7.0);
}

TEST(PercentileTest, ComputeLatencyStatsSortsItsInput) {
  LatencyStats stats = ComputeLatencyStats({30.0, 10.0, 40.0, 20.0});
  EXPECT_EQ(stats.count, 4u);
  EXPECT_DOUBLE_EQ(stats.p50_ms, 20.0);
  EXPECT_DOUBLE_EQ(stats.p95_ms, 40.0);
  EXPECT_DOUBLE_EQ(stats.max_ms, 40.0);
  EXPECT_DOUBLE_EQ(stats.mean_ms, 25.0);
  LatencyStats empty = ComputeLatencyStats({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.p99_ms, 0.0);
}

// ---------------------------------------------------------------------
// The driver against a scripted target: classification + fingerprints
// without a real service in the loop.

// Replies deterministically from the request line itself; every Nth
// call per instance is shed. One instance per worker, like real targets.
class ScriptedTarget : public RequestTarget {
 public:
  explicit ScriptedTarget(size_t shed_every) : shed_every_(shed_every) {}
  Result<std::string> Call(const std::string& request_line) override {
    ++calls_;
    if (shed_every_ > 0 && calls_ % shed_every_ == 0) {
      return std::string(
          "{\"ok\":false,\"code\":\"resource_exhausted\",\"error\":\"shed\"}");
    }
    auto request = serve::JsonValue::Parse(request_line);
    if (!request.ok()) return request.status();
    serve::JsonValue reply = serve::JsonValue::Object();
    reply.Set("ok", serve::JsonValue::Bool(true));
    reply.Set("report",
              serve::JsonValue::Str("echo:" + request->GetString("sql")));
    return reply.Serialize();
  }

 private:
  size_t shed_every_;
  size_t calls_ = 0;
};

std::vector<WorkloadQuery> ScriptedQueries(size_t n) {
  std::vector<WorkloadQuery> queries;
  for (size_t i = 0; i < n; ++i) {
    WorkloadQuery query;
    query.dataset = "scripted";
    query.sql = "SELECT q" + std::to_string(i);
    queries.push_back(query);
  }
  return queries;
}

TEST(DriverTest, ClosedLoopFingerprintsReproduce) {
  DriverOptions options;
  options.mode = LoadMode::kClosed;
  options.seed = 321;
  options.workers = 4;
  options.requests_per_worker = 8;
  options.capture_replies = true;
  TargetFactory factory = [](size_t) {
    return Result<std::unique_ptr<RequestTarget>>(
        std::unique_ptr<RequestTarget>(new ScriptedTarget(0)));
  };
  auto first = RunWorkload(ScriptedQueries(5), factory, options);
  auto second = RunWorkload(ScriptedQueries(5), factory, options);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->attempted, 32u);
  EXPECT_EQ(first->ok, 32u);
  EXPECT_EQ(first->request_fingerprint, second->request_fingerprint);
  EXPECT_EQ(first->reply_fingerprint, second->reply_fingerprint);
  ASSERT_EQ(first->logs.size(), 4u);
  for (const WorkerLog& log : first->logs) {
    EXPECT_EQ(log.records.size(), 8u);
    for (const LatencyRecord& record : log.records) {
      EXPECT_TRUE(record.ok);
      EXPECT_EQ(record.report.rfind("echo:SELECT q", 0), 0u);
    }
  }
}

TEST(DriverTest, ShedsAreClassifiedNotErrored) {
  DriverOptions options;
  options.workers = 2;
  options.requests_per_worker = 6;
  TargetFactory factory = [](size_t) {
    return Result<std::unique_ptr<RequestTarget>>(
        std::unique_ptr<RequestTarget>(new ScriptedTarget(3)));
  };
  auto result = RunWorkload(ScriptedQueries(4), factory, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->attempted, 12u);
  EXPECT_EQ(result->shed, 4u);  // every 3rd of 6, per worker.
  EXPECT_EQ(result->ok, 8u);
  EXPECT_EQ(result->errors, 0u);
}

TEST(DriverTest, OpenLoopIssuesEveryArrival) {
  DriverOptions options;
  options.mode = LoadMode::kOpen;
  options.seed = 17;
  options.workers = 3;
  options.target_qps = 5000.0;
  options.total_requests = 20;
  TargetFactory factory = [](size_t) {
    return Result<std::unique_ptr<RequestTarget>>(
        std::unique_ptr<RequestTarget>(new ScriptedTarget(0)));
  };
  auto first = RunWorkload(ScriptedQueries(4), factory, options);
  auto second = RunWorkload(ScriptedQueries(4), factory, options);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->attempted, 20u);
  EXPECT_EQ(first->ok, 20u);
  EXPECT_EQ(first->request_fingerprint, second->request_fingerprint);
  EXPECT_EQ(first->reply_fingerprint, second->reply_fingerprint);
}

TEST(DriverTest, TargetFactoryFailureFailsTheRunUpFront) {
  DriverOptions options;
  options.workers = 2;
  TargetFactory factory = [](size_t worker)
      -> Result<std::unique_ptr<RequestTarget>> {
    if (worker == 1) return Status::Unavailable("no connection");
    return std::unique_ptr<RequestTarget>(new ScriptedTarget(0));
  };
  EXPECT_FALSE(RunWorkload(ScriptedQueries(2), factory, options).ok());
}

// ---------------------------------------------------------------------
// Counter maps + the JSON summary schema.

TEST(SummaryTest, CounterDeltaSemantics) {
  CounterMap before = {{"serve/requests", 10}, {"serve/errors", 2}};
  CounterMap after = {{"serve/requests", 25}, {"info_cache/scalar_hit", 7}};
  CounterMap delta = CounterDelta(before, after);
  EXPECT_EQ(delta["serve/requests"], 15u);
  EXPECT_EQ(delta["info_cache/scalar_hit"], 7u);  // new name counts from 0.
  EXPECT_EQ(delta.count("serve/errors"), 0u);     // gone from after: dropped.
}

TEST(SummaryTest, ParseCountersJsonFiltersByPrefix) {
  const std::string metrics_json =
      "{\"counters\":{\"serve/requests\":3,\"kg/endpoint_calls\":9,"
      "\"info_cache/scalar_hit\":4},\"distributions\":{}}";
  auto counters = ParseCountersJson(metrics_json, DefaultCounterPrefixes());
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->size(), 2u);
  EXPECT_EQ((*counters)["serve/requests"], 3u);
  EXPECT_EQ((*counters)["info_cache/scalar_hit"], 4u);
}

TEST(SummaryTest, JsonSummaryRoundTripsThroughTheParser) {
  DriverOptions options;
  options.mode = LoadMode::kOpen;
  options.seed = 77;
  options.workers = 3;
  RunResult result;
  result.logs.resize(3);
  LatencyRecord record;
  record.ok = true;
  record.duration_ns = 2000000;  // 2ms.
  result.logs[0].records.push_back(record);
  result.wall_seconds = 0.5;
  result.attempted = 4;
  result.ok = 1;
  result.shed = 2;
  result.errors = 1;
  result.request_fingerprint = 0xdeadbeef01234567ULL;
  result.reply_fingerprint = 0x1122334455667788ULL;
  WorkloadSummary summary = Summarize(options, result, 6,
                                      {{"serve/requests", 4}});
  EXPECT_DOUBLE_EQ(summary.shed_rate, 0.5);
  EXPECT_DOUBLE_EQ(summary.qps, 8.0);

  auto parsed = serve::JsonValue::Parse(SummaryToJson(summary));
  ASSERT_TRUE(parsed.ok());
  const serve::JsonValue* workload = parsed->Find("workload");
  ASSERT_NE(workload, nullptr);
  EXPECT_EQ(workload->GetString("mode"), "open");
  EXPECT_EQ(workload->GetNumber("seed"), 77.0);
  EXPECT_EQ(workload->GetNumber("attempted"), 4.0);
  EXPECT_EQ(workload->GetNumber("shed"), 2.0);
  EXPECT_EQ(workload->GetString("request_fingerprint"), "0xdeadbeef01234567");
  EXPECT_EQ(workload->GetString("reply_fingerprint"), "0x1122334455667788");
  const serve::JsonValue* latency = workload->Find("latency_ms");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->GetNumber("count"), 1.0);
  EXPECT_DOUBLE_EQ(latency->GetNumber("p50"), 2.0);
  const serve::JsonValue* deltas = workload->Find("counter_deltas");
  ASSERT_NE(deltas, nullptr);
  EXPECT_EQ(deltas->GetNumber("serve/requests"), 4.0);
}

}  // namespace
}  // namespace loadgen
}  // namespace mesa
