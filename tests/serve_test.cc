// Tests for the mesa_serve daemon stack (docs/serving.md): the wire JSON
// value, the admission controller, and — the core contract — a resident
// daemon answering 8 concurrent clients over two datasets byte-identically
// to serial one-shot runs over the same files, at 1/2/8 pool threads.
// Every request carries a unique trace ID that lands in the metrics
// snapshot's trace ring. A final test drives the real mesa_serve binary as
// a child process over a real socket (skipped when the binary is absent).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/parallel.h"
#include "core/mesa.h"
#include "core/report_format.h"
#include "datagen/registry.h"
#include "kg/serialization.h"
#include "query/sql_parser.h"
#include "serve/admission.h"
#include "serve/client.h"
#include "serve/json.h"
#include "serve/router.h"
#include "serve/server.h"
#include "table/csv.h"

namespace mesa {
namespace serve {
namespace {

// ---------------------------------------------------------------------------
// JSON wire value.

TEST(ServeJson, ParsesAndSerializesRoundTrip) {
  auto v = JsonValue::Parse(
      R"({"verb":"explain","n":3,"x":-2.5,"ok":true,"none":null,)"
      R"("cols":["a","b"],"nested":{"k":"v"}})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->GetString("verb"), "explain");
  EXPECT_EQ(v->GetNumber("n"), 3.0);
  EXPECT_EQ(v->GetNumber("x"), -2.5);
  EXPECT_TRUE(v->GetBool("ok"));
  EXPECT_TRUE(v->Find("none")->is_null());
  ASSERT_TRUE(v->Find("cols")->is_array());
  EXPECT_EQ(v->Find("cols")->elements().size(), 2u);
  EXPECT_EQ(v->Find("nested")->GetString("k"), "v");

  // Round trip: serialize, reparse, and the fields survive.
  auto again = JsonValue::Parse(v->Serialize());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->Serialize(), v->Serialize());
}

TEST(ServeJson, EscapesControlCharactersSoLinesStaySingleLines) {
  JsonValue obj = JsonValue::Object();
  obj.Set("text", JsonValue::Str("line1\nline2\ttab\"quote\\slash\x01"));
  std::string wire = obj.Serialize();
  EXPECT_EQ(wire.find('\n'), std::string::npos)
      << "serialized JSON must never contain a raw newline";
  auto parsed = JsonValue::Parse(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->GetString("text"), "line1\nline2\ttab\"quote\\slash\x01");
}

TEST(ServeJson, UnicodeEscapes) {
  auto v = JsonValue::Parse(R"({"s":"é€😀"})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->GetString("s"), "\xc3\xa9\xe2\x82\xac\xf0\x9f\x98\x80");
  // A lone surrogate is an error, not silent garbage.
  EXPECT_FALSE(JsonValue::Parse(R"({"s":"\ud83d"})").ok());
}

TEST(ServeJson, RejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("{'a':1}").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":01}").ok());
  EXPECT_FALSE(JsonValue::Parse("nope").ok());
  // Depth bomb: 100 nested arrays exceeds the 64-deep cap.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
}

TEST(ServeJson, DuplicateKeysKeepTheLastValue) {
  auto v = JsonValue::Parse(R"({"k":1,"k":2})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->GetNumber("k"), 2.0);
}

// ---------------------------------------------------------------------------
// Admission controller.

TEST(Admission, CapBoundsInFlightAndReleaseFreesSlots) {
  AdmissionController admission(2);
  AdmissionController::Permit a = admission.TryAcquire();
  AdmissionController::Permit b = admission.TryAcquire();
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.ok());
  EXPECT_EQ(admission.in_flight(), 2u);

  AdmissionController::Permit c = admission.TryAcquire();
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(admission.shed(), 1u);

  a.Release();
  EXPECT_EQ(admission.in_flight(), 1u);
  AdmissionController::Permit d = admission.TryAcquire();
  EXPECT_TRUE(d.ok());
}

TEST(Admission, ZeroCapShedsEverything) {
  AdmissionController admission(0);
  EXPECT_FALSE(admission.TryAcquire().ok());
  EXPECT_FALSE(admission.TryAcquire().ok());
  EXPECT_EQ(admission.shed(), 2u);
  EXPECT_EQ(admission.in_flight(), 0u);
}

TEST(Admission, MovedFromPermitDoesNotDoubleRelease) {
  AdmissionController admission(1);
  AdmissionController::Permit a = admission.TryAcquire();
  AdmissionController::Permit b = std::move(a);
  a.Release();  // moved-from: must be a no-op.
  EXPECT_EQ(admission.in_flight(), 1u);
  b.Release();
  EXPECT_EQ(admission.in_flight(), 0u);
}

// ---------------------------------------------------------------------------
// Resident daemon vs serial golden.

struct World {
  std::string csv_path;
  std::string kg_path;
  std::vector<std::string> extraction_columns;
};

// Generates `kind` and writes it to temp CSV + KG files — the on-disk
// form both the daemon and the serial golden below load, exactly as
// `mesa_cli gen` + `mesa_cli explain` would. Paths embed the PID:
// parallel ctest runs each test of this binary in its own process, and
// their fixtures must not race on shared files.
World WriteWorld(DatasetKind kind, const std::string& name) {
  auto ds = MakeDataset(kind, GenOptions{});
  EXPECT_TRUE(ds.ok()) << ds.status().ToString();
  World world;
  const std::string tag = name + "." + std::to_string(::getpid());
  world.csv_path = testing::TempDir() + "/serve_" + tag + ".csv";
  world.kg_path = testing::TempDir() + "/serve_" + tag + ".kg";
  EXPECT_TRUE(WriteCsvFile(ds->table, world.csv_path).ok());
  EXPECT_TRUE(WriteKgFile(*ds->kg, world.kg_path).ok());
  world.extraction_columns = ds->extraction_columns;
  return world;
}

// One request the concurrent clients will issue, with its precomputed
// serial answer.
struct MixEntry {
  std::string dataset;
  std::string sql;
  std::vector<std::string> subgroups;
  std::string golden_report;
};

// The serial reference: a fresh one-shot Mesa over the same files,
// formatted exactly as the daemon formats its reply (and as mesa_cli
// prints), run on the current pool.
std::string SerialGolden(const World& world, const std::string& sql,
                         const std::vector<std::string>& subgroups) {
  auto table = ReadCsvFile(world.csv_path);
  EXPECT_TRUE(table.ok()) << table.status().ToString();
  auto kg = ReadKgFile(world.kg_path);
  EXPECT_TRUE(kg.ok()) << kg.status().ToString();
  Mesa mesa(std::move(*table), &*kg, world.extraction_columns, MesaOptions{});
  auto query = ParseQuery(sql);
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  auto report = mesa.Explain(*query);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  std::string text = FormatReport(*report);
  if (!subgroups.empty()) {
    SubgroupOptions sg;
    sg.threshold = 0.05 * report->base_cmi;
    sg.refinement_attributes = subgroups;
    auto groups =
        mesa.FindSubgroups(*query, report->explanation.attribute_names, sg);
    EXPECT_TRUE(groups.ok()) << groups.status().ToString();
    text += FormatSubgroups(*groups);
  }
  return text;
}

constexpr char kCovidQuery[] =
    "SELECT Country, avg(Deaths_per_100_cases) FROM covid GROUP BY Country";
constexpr char kCovidQuery2[] =
    "SELECT Country, avg(Confirmed_per_100k) FROM covid GROUP BY Country";
constexpr char kFlightsQuery[] =
    "SELECT Airline, avg(Departure_delay) FROM flights GROUP BY Airline";

// Worlds and goldens are expensive (dataset generation + four explains);
// build them once for the whole binary.
class ServeDaemonTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    covid_ = new World(WriteWorld(DatasetKind::kCovid, "covid"));
    flights_ = new World(WriteWorld(DatasetKind::kFlights, "flights"));
    mix_ = new std::vector<MixEntry>{
        {"covid", kCovidQuery, {"WHO_Region"}, ""},
        {"covid", kCovidQuery2, {}, ""},
        {"flights", kFlightsQuery, {"Origin_state"}, ""},
        {"flights", kFlightsQuery, {}, ""},
    };
    SetNumThreads(1);  // goldens on the serial pool; results are
                       // thread-count-invariant anyway (parallel_test).
    for (MixEntry& entry : *mix_) {
      const World& world = entry.dataset == "covid" ? *covid_ : *flights_;
      entry.golden_report = SerialGolden(world, entry.sql, entry.subgroups);
      ASSERT_FALSE(entry.golden_report.empty());
    }
  }

  static void TearDownTestSuite() {
    std::remove(covid_->csv_path.c_str());
    std::remove(covid_->kg_path.c_str());
    std::remove(flights_->csv_path.c_str());
    std::remove(flights_->kg_path.c_str());
    delete covid_;
    delete flights_;
    delete mix_;
    covid_ = flights_ = nullptr;
    mix_ = nullptr;
  }

  // A router with both worlds resident, warm.
  static void BuildRouter(Router* router) {
    const std::pair<std::string, const World*> worlds[] = {
        {"covid", covid_}, {"flights", flights_}};
    for (const auto& named : worlds) {
      Router::DatasetSpec spec;
      spec.name = named.first;
      spec.csv_path = named.second->csv_path;
      spec.kg_path = named.second->kg_path;
      spec.extraction_columns = named.second->extraction_columns;
      ASSERT_TRUE(router->AddDataset(spec).ok());
    }
    ASSERT_TRUE(router->WarmStart().ok());
  }

  static World* covid_;
  static World* flights_;
  static std::vector<MixEntry>* mix_;
};

World* ServeDaemonTest::covid_ = nullptr;
World* ServeDaemonTest::flights_ = nullptr;
std::vector<MixEntry>* ServeDaemonTest::mix_ = nullptr;

TEST_F(ServeDaemonTest, ConcurrentClientsMatchSerialGoldenAtAnyThreadCount) {
  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 5;

  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    SetNumThreads(threads);
    metrics::ResetAll();

    RouterOptions router_options;
    router_options.max_inflight = kClients;  // no shedding in this test.
    Router router(router_options);
    BuildRouter(&router);
    Server server(&router);
    ASSERT_TRUE(server.Start().ok());

    std::mutex mu;
    std::set<std::string> trace_ids;
    std::vector<std::string> failures;
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        auto fail = [&](const std::string& what) {
          std::lock_guard<std::mutex> lock(mu);
          failures.push_back("client " + std::to_string(c) + ": " + what);
        };
        auto client = Client::Connect(server.port());
        if (!client.ok()) {
          fail(client.status().ToString());
          return;
        }
        for (int r = 0; r < kRequestsPerClient; ++r) {
          // Seeded deterministic mix: every client hits both datasets.
          const MixEntry& entry = (*mix_)[(c * 13 + r * 7) % mix_->size()];
          auto reply =
              (*client)->Explain(entry.dataset, entry.sql, entry.subgroups);
          if (!reply.ok()) {
            fail(reply.status().ToString());
            continue;
          }
          if (!reply->ok) {
            fail("explain error: " + reply->error);
            continue;
          }
          if (reply->report != entry.golden_report) {
            fail("reply for " + entry.dataset +
                 " diverged from the serial golden");
          }
          if (reply->trace_id.empty()) fail("empty trace id");
          std::lock_guard<std::mutex> lock(mu);
          trace_ids.insert(reply->trace_id);
        }
      });
    }
    for (std::thread& t : clients) t.join();

    EXPECT_TRUE(failures.empty()) << failures.front() << " (and "
                                  << failures.size() - 1 << " more)";
    // Every reply carried a distinct trace ID.
    EXPECT_EQ(trace_ids.size(),
              static_cast<size_t>(kClients * kRequestsPerClient));

#if MESA_METRICS_ENABLED
    // The IDs are also in the snapshot's trace ring, with their spans.
    auto probe = Client::Connect(server.port());
    ASSERT_TRUE(probe.ok());
    auto metrics_json = (*probe)->MetricsJson();
    ASSERT_TRUE(metrics_json.ok()) << metrics_json.status().ToString();
    auto snapshot = JsonValue::Parse(*metrics_json);
    ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
    const JsonValue* traces = snapshot->Find("traces");
    ASSERT_NE(traces, nullptr);
    ASSERT_TRUE(traces->is_array());
    std::set<std::string> snapshot_ids;
    for (const JsonValue& event : traces->elements()) {
      snapshot_ids.insert(event.GetString("id"));
      EXPECT_FALSE(event.GetString("name").empty());
    }
    for (const std::string& id : trace_ids) {
      EXPECT_TRUE(snapshot_ids.count(id) > 0)
          << "trace " << id << " missing from the metrics snapshot";
    }
#endif

    server.Shutdown();
  }
  SetNumThreads(1);
}

TEST_F(ServeDaemonTest, StatusReportsResidentDatasets) {
  Router router;
  BuildRouter(&router);
  Server server(&router);
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::Connect(server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto status = (*client)->GetStatus();
  ASSERT_TRUE(status.ok()) << status.status().ToString();
  EXPECT_TRUE(status->GetBool("ok"));
  const JsonValue* datasets = status->Find("datasets");
  ASSERT_NE(datasets, nullptr);
  ASSERT_TRUE(datasets->is_array());
  ASSERT_EQ(datasets->elements().size(), 2u);
  EXPECT_EQ(datasets->elements()[0].GetString("name"), "covid");
  EXPECT_EQ(datasets->elements()[1].GetString("name"), "flights");
  for (const JsonValue& entry : datasets->elements()) {
    EXPECT_GT(entry.GetNumber("rows"), 0.0);
    EXPECT_GT(entry.GetNumber("kg_columns"), 0.0);
    EXPECT_EQ(entry.GetNumber("coverage"), 1.0);
  }
  EXPECT_EQ(status->GetNumber("in_flight"), 0.0);
  EXPECT_GE(status->GetNumber("requests"), 1.0);

  server.Shutdown();
}

TEST_F(ServeDaemonTest, ShutdownVerbStopsTheServer) {
  Router router;
  BuildRouter(&router);
  Server server(&router);
  ASSERT_TRUE(server.Start().ok());

  std::thread waiter([&] { server.Wait(); });
  auto client = Client::Connect(server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE((*client)->Shutdown().ok());
  waiter.join();
  EXPECT_FALSE(server.running());
  // Note: no "connecting again fails" assertion here — under parallel
  // ctest another test process can bind the just-released ephemeral
  // port immediately, making a reconnect succeed against a stranger.
  // running() == false is the contract; port reuse is the kernel's.
}

// Sends `line` + '\n' on a raw socket and closes WITHOUT reading the
// reply — the rude-client shape the server must tolerate.
void FireAndForget(uint16_t port, const std::string& line) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string payload = line + "\n";
  ASSERT_EQ(::send(fd, payload.data(), payload.size(), 0),
            static_cast<ssize_t>(payload.size()));
  ::close(fd);
}

// Regression: the accepted shutdown must be honored even when the client
// disconnects before the reply is written (the reply write fails, but
// the router already committed to shutting down).
TEST(ServeServer, ShutdownVerbHonoredWhenClientNeverReadsTheReply) {
  Router router;
  Server server(&router);
  ASSERT_TRUE(server.Start().ok());
  std::thread waiter([&] { server.Wait(); });
  FireAndForget(server.port(), "{\"verb\":\"shutdown\"}");
  waiter.join();
  EXPECT_FALSE(server.running());
}

// Regression: Shutdown() must not poison the server — a subsequent
// Start() serves connections again (running() is documented as "between
// a successful Start and Shutdown", with no single-use caveat).
TEST(ServeServer, RestartAfterShutdownServesAgain) {
  Router router;
  Server server(&router);
  for (int round = 0; round < 2; ++round) {
    SCOPED_TRACE("round=" + std::to_string(round));
    ASSERT_TRUE(server.Start().ok());
    auto client = Client::Connect(server.port());
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    auto status = (*client)->GetStatus();
    ASSERT_TRUE(status.ok()) << status.status().ToString();
    EXPECT_TRUE(status->GetBool("ok"));
    server.Shutdown();
    EXPECT_FALSE(server.running());
  }
}

// Regression: the max_line_bytes bound is exact. A complete line just
// over the cap — whose terminating newline arrives in the same recv
// chunk that crossed the limit, so the partial-buffer check never fires
// — still gets an invalid_argument reply, and the connection survives.
TEST(ServeServer, CompleteLineJustOverTheLimitIsRejectedExactly) {
  ServerOptions options;
  options.max_line_bytes = 64;
  Router router;
  Server server(&router, options);
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::Connect(server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // 65 bytes: one over the cap, far under the 4096-byte recv chunk.
  std::string over(65, 'x');
  auto raw = (*client)->CallRaw(over);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  auto reply = JsonValue::Parse(*raw);
  ASSERT_TRUE(reply.ok()) << "reply not JSON: " << *raw;
  EXPECT_FALSE(reply->GetBool("ok"));
  EXPECT_EQ(reply->GetString("code"), "invalid_argument");

  // At the cap is fine (it is not valid JSON, but it is not oversized).
  std::string at_cap(64, 'x');
  auto at_cap_raw = (*client)->CallRaw(at_cap);
  ASSERT_TRUE(at_cap_raw.ok()) << at_cap_raw.status().ToString();
  auto at_cap_reply = JsonValue::Parse(*at_cap_raw);
  ASSERT_TRUE(at_cap_reply.ok());
  EXPECT_EQ(at_cap_reply->GetString("code"), "invalid_argument");
  EXPECT_NE(at_cap_reply->GetString("error").find("json"), std::string::npos)
      << at_cap_reply->GetString("error");

  // The connection still serves real requests.
  auto status = (*client)->GetStatus();
  ASSERT_TRUE(status.ok()) << status.status().ToString();
  EXPECT_TRUE(status->GetBool("ok"));

  server.Shutdown();
}

// Regression smoke for the reap/shutdown deadlock: short-lived
// connections finish (making them reapable by the accept loop) while a
// shutdown-verb handler races them into RequestShutdown. With the old
// ordering — done published before RequestShutdown, joins under mu_ —
// the accept thread could join a handler that was itself blocked on mu_.
// Restart loops amplify the window; the test simply must not hang.
TEST(ServeServer, ConnectionChurnRacingShutdownNeverHangs) {
  Router router;
  for (int round = 0; round < 20; ++round) {
    SCOPED_TRACE("round=" + std::to_string(round));
    Server server(&router);
    ASSERT_TRUE(server.Start().ok());
    const uint16_t port = server.port();

    std::atomic<bool> stop{false};
    std::thread churn([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto client = Client::Connect(port);
        if (!client.ok()) break;  // server is tearing down.
        (void)(*client)->GetStatus();
      }
    });

    std::thread waiter([&] { server.Wait(); });
    FireAndForget(port, "{\"verb\":\"shutdown\"}");
    waiter.join();
    stop.store(true, std::memory_order_release);
    churn.join();
    EXPECT_FALSE(server.running());
  }
}

TEST(ServeServer, RefusesNonLoopbackBind) {
  Router router;
  ServerOptions options;
  options.host = "0.0.0.0";
  Server server(&router, options);
  Status started = server.Start();
  ASSERT_FALSE(started.ok());
  EXPECT_EQ(started.code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Mesa reentrancy: the daemon shares ONE Mesa per dataset across all
// connection threads. Regression for the lazy-Preprocess race: two
// explains arriving at a cold instance must both succeed and match the
// serial answers (first-call preprocessing is serialized internally; see
// core/mesa.h).

TEST(MesaReentrancy, InterleavedExplainsOverOneColdInstance) {
  auto ds = MakeDataset(DatasetKind::kCovid, GenOptions{});
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  auto q1 = ParseQuery(kCovidQuery);
  auto q2 = ParseQuery(kCovidQuery2);
  ASSERT_TRUE(q1.ok() && q2.ok());
  const std::vector<std::string> extract = {"Country", "WHO_Region"};

  // Serial references, each from its own fresh instance.
  std::string serial1, serial2;
  {
    Mesa mesa(ds->table, ds->kg.get(), extract, MesaOptions{});
    auto report = mesa.Explain(*q1);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    serial1 = FormatReport(*report);
  }
  {
    Mesa mesa(ds->table, ds->kg.get(), extract, MesaOptions{});
    auto report = mesa.Explain(*q2);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    serial2 = FormatReport(*report);
  }

  // Now both queries race into one cold shared instance, repeatedly.
  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE("round=" + std::to_string(round));
    Mesa shared(ds->table, ds->kg.get(), extract, MesaOptions{});
    std::string got1, got2;
    Status status1, status2;
    std::thread t1([&] {
      auto report = shared.Explain(*q1);
      status1 = report.status();
      if (report.ok()) got1 = FormatReport(*report);
    });
    std::thread t2([&] {
      auto report = shared.Explain(*q2);
      status2 = report.status();
      if (report.ok()) got2 = FormatReport(*report);
    });
    t1.join();
    t2.join();
    ASSERT_TRUE(status1.ok()) << status1.ToString();
    ASSERT_TRUE(status2.ok()) << status2.ToString();
    EXPECT_EQ(got1, serial1);
    EXPECT_EQ(got2, serial2);
  }
}

// ---------------------------------------------------------------------------
// The real binary over a real socket.

std::string ServeBinaryPath() {
  for (const char* candidate :
       {"../src/mesa_serve", "./src/mesa_serve", "build/src/mesa_serve"}) {
    std::ifstream probe(candidate);
    if (probe.good()) return candidate;
  }
  return "";
}

TEST_F(ServeDaemonTest, ChildProcessServesOverARealSocket) {
  std::string binary = ServeBinaryPath();
  if (binary.empty()) GTEST_SKIP() << "mesa_serve binary not found";

  std::string command = binary + " --data \"covid=" + covid_->csv_path + ":" +
                        covid_->kg_path + ":Country+WHO_Region\" 2>&1";
  std::FILE* child = popen(command.c_str(), "r");
  ASSERT_NE(child, nullptr);

  // The daemon prints exactly one line once it is serving.
  char line[256] = {0};
  ASSERT_NE(std::fgets(line, sizeof(line), child), nullptr);
  unsigned port = 0;
  ASSERT_EQ(std::sscanf(line, "listening on 127.0.0.1:%u", &port), 1)
      << "unexpected startup line: " << line;

  auto client = Client::Connect(static_cast<uint16_t>(port));
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const MixEntry& entry = (*mix_)[0];
  auto reply = (*client)->Explain(entry.dataset, entry.sql, entry.subgroups);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_TRUE(reply->ok) << reply->error;
  EXPECT_EQ(reply->report, entry.golden_report);

  EXPECT_TRUE((*client)->Shutdown().ok());
  client->reset();  // close our socket before reaping the child.
  EXPECT_EQ(pclose(child), 0);
}

}  // namespace
}  // namespace serve
}  // namespace mesa
