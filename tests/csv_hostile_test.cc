// Hostile-input tests for the CSV reader, built into the ASan target
// binary (sql_parser_fuzz_test; see docs/sanitizers.md): every case here
// feeds the reader damaged or adversarial input and requires a clean
// non-OK Status — never a crash, a silent truncation, or an integer wrap.

#include <string>

#include <gtest/gtest.h>

#include "table/csv.h"

namespace mesa {
namespace {

TEST(CsvHostile, TruncatedFinalRowIsAnError) {
  // The file was cut mid-row: the last record has too few fields.
  auto t = ReadCsvString("a,b,c\n1,2,3\n4,5");
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(t.status().message().find("expected 3"), std::string::npos);
}

TEST(CsvHostile, UnbalancedQuoteIsAnError) {
  // An opening quote that never closes swallows the rest of the file;
  // the reader must refuse rather than store the tail as one cell.
  auto t = ReadCsvString("a,b\n\"oops,2\n3,4\n");
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(t.status().message().find("unterminated"), std::string::npos);
}

TEST(CsvHostile, UnbalancedQuoteInHeaderIsAnError) {
  auto t = ReadCsvString("\"a,b\n1,2\n");
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("header"), std::string::npos);
}

TEST(CsvHostile, FileTruncatedInsideQuotedFieldIsAnError) {
  auto t = ReadCsvString("a,b\n1,\"cut off he");
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvHostile, BalancedQuotesStillParse) {
  auto t = ReadCsvString("a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(t->column(0).GetValue(0).ToString(), "x,y");
  EXPECT_EQ(t->column(1).GetValue(0).ToString(), "he said \"hi\"");
}

TEST(CsvHostile, GarbageInDeclaredIntColumnIsAnError) {
  CsvReadOptions options;
  options.declared_types["n"] = DataType::kInt64;
  auto t = ReadCsvString("n,s\n1,x\ntwo,y\n", options);
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(t.status().message().find("'two'"), std::string::npos);
  EXPECT_NE(t.status().message().find("int64"), std::string::npos);
}

TEST(CsvHostile, GarbageInDeclaredDoubleColumnIsAnError) {
  CsvReadOptions options;
  options.declared_types["x"] = DataType::kDouble;
  auto t = ReadCsvString("x\n1.5\n1.5.2\n", options);
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvHostile, Int64OverflowIsAnErrorNotAWrap) {
  CsvReadOptions options;
  options.declared_types["n"] = DataType::kInt64;
  // INT64_MAX + 1: undeclared inference would widen this to double;
  // a declared int64 column must hard-fail instead.
  auto t = ReadCsvString("n\n9223372036854775808\n", options);
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);

  // The boundary value itself is fine.
  auto max_ok = ReadCsvString("n\n9223372036854775807\n", options);
  ASSERT_TRUE(max_ok.ok()) << max_ok.status().ToString();
  EXPECT_EQ(max_ok->column(0).GetValue(0).int_value(), INT64_MAX);
}

TEST(CsvHostile, DeclaredTypesStillAllowNulls) {
  CsvReadOptions options;
  options.declared_types["n"] = DataType::kInt64;
  auto t = ReadCsvString("n\n1\nNA\n2\n", options);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->schema().field(0).type, DataType::kInt64);
  EXPECT_TRUE(t->column(0).IsNull(1));
}

TEST(CsvHostile, DeclaredTypeForUnknownColumnIsAnError) {
  CsvReadOptions options;
  options.declared_types["no_such_column"] = DataType::kInt64;
  auto t = ReadCsvString("a\n1\n", options);
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("no_such_column"), std::string::npos);
}

TEST(CsvHostile, UndeclaredColumnsStillInferLeniently) {
  // Without a declaration the old behaviour stands: garbage degrades the
  // column to string, overflow widens to double.
  auto t = ReadCsvString("n,m\n1,9223372036854775808\ntwo,3\n");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->schema().field(0).type, DataType::kString);
  EXPECT_EQ(t->schema().field(1).type, DataType::kDouble);
}

}  // namespace
}  // namespace mesa
