#ifndef MESA_BENCH_BENCH_UTIL_H_
#define MESA_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/mesa.h"
#include "datagen/registry.h"

namespace mesa {
namespace bench {

/// Wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// The six methods of Section 5.
enum class Method {
  kBruteForce,
  kMesaMinus,  ///< MCIMR without pruning
  kMesa,
  kTopK,
  kLr,
  kHypDb,
};

const char* MethodName(Method m);
std::vector<Method> AllMethods();

/// One method's output on one query.
struct MethodResult {
  Explanation explanation;
  double seconds = 0.0;
  bool ok = true;
  std::string error;
};

/// Runs every baseline on an already prepared query. `unpruned` carries all
/// candidate indices (for MESA-); `pruned` the post-pruning set used by the
/// other methods (as in the paper's setup).
std::map<Method, MethodResult> RunAllMethods(
    const QueryAnalysis& analysis, const std::vector<size_t>& pruned,
    const std::vector<size_t>& unpruned, size_t k = 5,
    bool include_brute_force = true);

/// Quality scoring — the user-study substitution (see DESIGN.md): a
/// deterministic stand-in for the MTurk 1–5 ratings of Table 3. Ground
/// truth is a list of factor groups, each "alt1|alt2|..."; an explanation
/// covering more groups with fewer irrelevant/redundant picks scores
/// higher. Empty explanations score 1 (the "does not make sense" floor).
double QualityScore(const std::vector<std::string>& explanation,
                    const std::vector<std::string>& ground_truth_groups);

/// Pretty fixed-width cell.
std::string Pad(const std::string& s, size_t width);

/// "{a, b}" for a name list.
std::string SetToString(const std::vector<std::string>& names);

/// Builds a dataset + Mesa with standard benchmark options. Flights rows
/// default small enough for interactive benching.
struct BenchWorld {
  GeneratedDataset dataset;
  std::unique_ptr<Mesa> mesa;
};
BenchWorld MakeBenchWorld(DatasetKind kind, size_t rows = 0,
                          MesaOptions options = {});

/// Default row counts used by the report benches (kept below the paper's
/// full sizes so the whole suite runs in minutes; Fig. 5 sweeps beyond).
size_t BenchRows(DatasetKind kind);

/// Wall-time of `fn` at each global pool size in `thread_counts`
/// (default {1, 2, hardware_concurrency}), restoring the previous pool
/// size afterwards. The parallel layer is deterministic, so each timing
/// runs the same computation — the ratio IS the speedup.
struct ThreadTiming {
  size_t threads = 0;
  double seconds = 0.0;
};
std::vector<ThreadTiming> TimeAtThreadCounts(
    const std::function<void()>& fn, std::vector<size_t> thread_counts = {});

/// One-line JSON record for the perf trajectory:
/// {"bench":"<label>","thread_sweep":[{"threads":1,"seconds":...},...]}
std::string ThreadSweepJson(const std::string& label,
                            const std::vector<ThreadTiming>& timings);

/// Estimator-evaluation counters read from the metrics registry (see
/// docs/observability.md). All zero when the build has MESA_METRICS=OFF.
/// Take a reading before and after a phase and subtract to attribute the
/// work to that phase.
struct EvalCounts {
  uint64_t cmi = 0;       ///< info/cmi_evals
  uint64_t mi = 0;        ///< info/mi_evals
  uint64_t entropy = 0;   ///< info/entropy_evals
  uint64_t ci_tests = 0;  ///< info/ci_tests
};
EvalCounts ReadEvalCounts();
EvalCounts operator-(const EvalCounts& a, const EvalCounts& b);
/// "cmi=812 mi=40 H=120 ci=6"
std::string EvalCountsToString(const EvalCounts& c);

/// Cumulative wall time spent inside the information-theoretic kernels,
/// in seconds: the sum of every span distribution whose final path
/// segment is cmi / mi / entropy / cond_entropy (span sums are
/// nanoseconds; see docs/observability.md). Take a reading before and
/// after a phase and subtract. Zero when MESA_METRICS=OFF — the cache
/// A/B sections of the benches report "n/a" in that case.
double InfoKernelSeconds();

/// Compact rendering of the sufficient-statistics cache counters:
/// "scalar <hits>/<misses> cube <hits>/<misses> evict <n>". Pass a
/// before/after delta for per-phase numbers. Works regardless of
/// MESA_METRICS (reads the cache's own atomics).
struct InfoCacheDelta {
  uint64_t scalar_hits = 0;
  uint64_t scalar_misses = 0;
  uint64_t cube_hits = 0;
  uint64_t cube_misses = 0;
  uint64_t evictions = 0;
};
InfoCacheDelta ReadInfoCacheCounters();
InfoCacheDelta operator-(const InfoCacheDelta& a, const InfoCacheDelta& b);
std::string InfoCacheDeltaToString(const InfoCacheDelta& d);

}  // namespace bench
}  // namespace mesa

#endif  // MESA_BENCH_BENCH_UTIL_H_
