// Ablation over the estimator-level design choices documented in DESIGN.md:
//   - discretisation granularity (4 / 6 / 8 quantile bins),
//   - Miller-Madow small-sample bias correction on/off,
//   - permutation vs asymptotic G-test for the responsibility stopping rule.
// Reported per variant: quality vs planted ground truth, explanation size,
// and runtime — averaged over the 14 canonical queries.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"

namespace mesa {
namespace bench {
namespace {

struct Variant {
  const char* name;
  size_t bins;
  bool miller_madow;
  IndependenceMethod ci_method;
};

constexpr Variant kVariants[] = {
    {"6 bins (default)", 6, false, IndependenceMethod::kPermutation},
    {"4 bins", 4, false, IndependenceMethod::kPermutation},
    {"8 bins", 8, false, IndependenceMethod::kPermutation},
    {"6 bins + Miller-Madow", 6, true, IndependenceMethod::kPermutation},
    {"6 bins + G-test stop", 6, false, IndependenceMethod::kGTest},
};

void Run() {
  std::printf("=== Ablation: estimator choices (avg over 14 queries) ===\n");
  struct Acc {
    double quality = 0, size = 0, seconds = 0;
    size_t n = 0;
  };
  std::vector<Acc> acc(std::size(kVariants));

  for (size_t vi = 0; vi < std::size(kVariants); ++vi) {
    const Variant& v = kVariants[vi];
    MesaOptions options;
    options.prepare.discretizer.num_bins = v.bins;
    options.prepare.entropy.miller_madow = v.miller_madow;
    options.mcimr.independence.method = v.ci_method;
    for (DatasetKind kind : AllDatasetKinds()) {
      BenchWorld world = MakeBenchWorld(kind, BenchRows(kind), options);
      for (const BenchQuery& bq : CanonicalQueries(kind)) {
        Timer timer;
        auto rep = world.mesa->Explain(bq.query);
        if (!rep.ok()) continue;
        acc[vi].seconds += timer.Seconds();
        acc[vi].quality += QualityScore(rep->explanation.attribute_names,
                                        bq.ground_truth);
        acc[vi].size +=
            static_cast<double>(rep->explanation.attribute_names.size());
        ++acc[vi].n;
      }
    }
  }

  std::printf("%s %s %s %s\n", Pad("variant", 24).c_str(),
              Pad("quality", 8).c_str(), Pad("|E|", 5).c_str(),
              Pad("sec/query", 10).c_str());
  for (size_t vi = 0; vi < std::size(kVariants); ++vi) {
    double n = static_cast<double>(std::max<size_t>(1, acc[vi].n));
    std::printf("%s %-8.2f %-5.2f %-10.3f\n",
                Pad(kVariants[vi].name, 24).c_str(), acc[vi].quality / n,
                acc[vi].size / n, acc[vi].seconds / n);
  }
  std::printf(
      "\nReading: quality is stable in a band around 6 bins (finer binning\n"
      "re-inflates structural MI, coarser loses resolution); Miller-Madow\n"
      "changes little at these sample sizes; the G-test stop trades a\n"
      "little robustness for speed.\n");
}

}  // namespace
}  // namespace bench
}  // namespace mesa

int main() {
  mesa::bench::Run();
  return 0;
}
