// Reproduces the §5.1 usefulness experiment: 40 random aggregate queries
// (10 per dataset; exposure = an extraction column, outcome = a random
// numeric attribute, WHERE = a random categorical value covering >= 10% of
// the rows). A query counts as "useful" when (1) conditioning on MESA's
// explanation lowers the T-O correlation and (2) at least one selected
// attribute was mined from the KG. The paper reports 72.5%.

#include <cstdio>
#include <set>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "query/group_by.h"

namespace mesa {
namespace bench {
namespace {

// Outcomes per dataset — the paper hand-picks numerical attributes "that
// could be predicted from the data" (Departure/Arrival Delay, New/Death
// Cases, ...), excluding pure-noise demographics like Age.
std::vector<std::string> OutcomeCandidates(DatasetKind kind,
                                           const std::string& skip) {
  std::vector<std::string> all;
  switch (kind) {
    case DatasetKind::kStackOverflow:
      all = {"Salary"};
      break;
    case DatasetKind::kCovid:
      all = {"Deaths_per_100_cases", "Confirmed_per_100k",
             "Recovered_per_100_cases", "New_cases_per_100k"};
      break;
    case DatasetKind::kFlights:
      all = {"Departure_delay", "Security_delay"};
      break;
    case DatasetKind::kForbes:
      all = {"Pay"};
      break;
  }
  std::vector<std::string> out;
  for (auto& name : all) {
    if (name != skip) out.push_back(std::move(name));
  }
  return out;
}

// Categorical columns + values covering >= 10% of rows for WHERE clauses.
struct ContextChoice {
  std::string column;
  Value value;
};
std::vector<ContextChoice> ContextCandidates(const Table& t) {
  std::vector<ContextChoice> out;
  for (const auto& f : t.schema().fields()) {
    if (f.type != DataType::kString && f.type != DataType::kBool) continue;
    std::vector<Value> values;
    auto codes = EncodeGroups(t, f.name, &values);
    if (!codes.ok() || values.size() < 2 || values.size() > 30) continue;
    std::vector<size_t> counts(values.size(), 0);
    for (int32_t c : *codes) {
      if (c >= 0) ++counts[static_cast<size_t>(c)];
    }
    for (size_t v = 0; v < values.size(); ++v) {
      if (counts[v] * 10 >= t.num_rows()) {
        out.push_back({f.name, values[v]});
      }
    }
  }
  return out;
}

void Run() {
  std::printf("=== §5.1 usefulness over random aggregate queries ===\n");
  Rng rng(20230707);
  size_t total = 0, useful = 0;
  for (DatasetKind kind : AllDatasetKinds()) {
    BenchWorld world = MakeBenchWorld(kind, BenchRows(kind));
    MESA_CHECK(world.mesa->Preprocess().ok());
    const Table& t = world.dataset.table;
    auto contexts = ContextCandidates(t);
    size_t made = 0, attempts = 0;
    while (made < 10 && attempts < 60) {
      ++attempts;
      QuerySpec q;
      q.exposure = world.dataset.extraction_columns[rng.NextBelow(
          world.dataset.extraction_columns.size())];
      auto outcomes = OutcomeCandidates(kind, q.exposure);
      if (outcomes.empty()) break;
      q.outcome = outcomes[rng.NextBelow(outcomes.size())];
      if (!contexts.empty() && rng.NextBernoulli(0.8)) {
        const auto& c = contexts[rng.NextBelow(contexts.size())];
        if (c.column != q.exposure && c.column != q.outcome) {
          q.context.Add({c.column, CompareOp::kEq, c.value, {}});
        }
      }
      auto rep = world.mesa->Explain(q);
      if (!rep.ok()) continue;
      ++made;
      ++total;
      bool lowered = rep->final_cmi < rep->base_cmi - 1e-9;
      bool has_kg = false;
      std::set<std::string> kg_cols(world.mesa->kg_columns().begin(),
                                    world.mesa->kg_columns().end());
      for (const auto& name : rep->explanation.attribute_names) {
        has_kg |= kg_cols.count(name) > 0;
      }
      bool is_useful = lowered && has_kg;
      useful += is_useful ? 1 : 0;
      std::printf("  [%s] %-7s %s\n", is_useful ? "useful" : "  no  ",
                  DatasetKindName(kind), q.ToSql().c_str());
    }
  }
  std::printf("\nUseful: %zu / %zu = %.1f%%  (paper: 72.5%%)\n", useful, total,
              total ? 100.0 * static_cast<double>(useful) /
                          static_cast<double>(total)
                    : 0.0);
}

}  // namespace
}  // namespace bench
}  // namespace mesa

int main() {
  mesa::bench::Run();
  return 0;
}
