// Reproduces Figure 2: the distance between each method's explainability
// score I(O;T|E) and Brute-Force's, per query (lower is better; 0 means
// matching the exhaustive optimum).

#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"

namespace mesa {
namespace bench {
namespace {

void Run() {
  std::printf("=== Figure 2: distance from Brute-Force explainability ===\n");
  std::printf("%s", Pad("Query", 12).c_str());
  for (Method m : AllMethods()) {
    if (m == Method::kBruteForce) continue;
    std::printf(" %s", Pad(MethodName(m), 10).c_str());
  }
  std::printf("\n");

  std::map<Method, std::vector<double>> all_distances;
  for (DatasetKind kind : AllDatasetKinds()) {
    BenchWorld world = MakeBenchWorld(kind, BenchRows(kind));
    for (const BenchQuery& bq : CanonicalQueries(kind)) {
      auto pq = world.mesa->PrepareQuery(bq.query);
      MESA_CHECK(pq.ok());
      std::vector<size_t> unpruned(pq->analysis->attributes().size());
      for (size_t i = 0; i < unpruned.size(); ++i) unpruned[i] = i;
      if (pq->candidate_indices.size() > 40) {
        std::printf("%s (Brute-Force infeasible; skipped)\n",
                    Pad(bq.id, 12).c_str());
        continue;
      }
      auto results = RunAllMethods(*pq->analysis, pq->candidate_indices,
                                   unpruned, 5, true);
      double bf = results.at(Method::kBruteForce).explanation.final_cmi;
      std::printf("%s", Pad(bq.id, 12).c_str());
      for (Method m : AllMethods()) {
        if (m == Method::kBruteForce) continue;
        const auto& r = results.at(m);
        double d = r.ok ? std::fabs(r.explanation.final_cmi - bf) : NAN;
        all_distances[m].push_back(d);
        std::printf(" %-10.3f", d);
      }
      std::printf("\n");
    }
  }

  std::printf("\n%s", Pad("MEAN", 12).c_str());
  for (Method m : AllMethods()) {
    if (m == Method::kBruteForce) continue;
    const auto& v = all_distances[m];
    double mean = 0;
    size_t n = 0;
    for (double d : v) {
      if (!std::isnan(d)) {
        mean += d;
        ++n;
      }
    }
    std::printf(" %-10.3f", n ? mean / n : NAN);
  }
  std::printf("\n\nShape check (paper): MESA/MESA- distances are near 0;\n"
              "Top-K and LR are substantially farther from Brute-Force.\n");
}

}  // namespace
}  // namespace bench
}  // namespace mesa

int main() {
  mesa::bench::Run();
  return 0;
}
