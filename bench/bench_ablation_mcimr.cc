// Ablation study over MCIMR's design choices (the DESIGN.md decisions):
//   1. Min-Redundancy term: off / raw Eq. 5 / normalised (NMIFS-style);
//   2. responsibility-test stopping: on / off (fixed k);
//   3. the set-level identification guard (Lemma A.2 in set form): on/off.
// Reported per variant: quality score vs planted ground truth, explanation
// size, explainability, and runtime — averaged over the 14 queries.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "info/info_cache.h"

namespace mesa {
namespace bench {
namespace {

struct Variant {
  const char* name;
  McimrOptions options;
};

std::vector<Variant> Variants() {
  std::vector<Variant> out;
  {
    Variant v{"full MCIMR (default)", {}};
    out.push_back(v);
  }
  {
    Variant v{"no redundancy term", {}};
    v.options.use_redundancy_term = false;
    out.push_back(v);
  }
  {
    Variant v{"raw Eq.5 redundancy", {}};
    v.options.normalize_redundancy = false;
    out.push_back(v);
  }
  {
    Variant v{"no responsibility stop", {}};
    v.options.responsibility_stopping = false;
    out.push_back(v);
  }
  {
    Variant v{"no identification guard", {}};
    v.options.max_identification_fraction = 0.0;
    out.push_back(v);
  }
  return out;
}

// Interleaved A/B of the sufficient-statistics cache over the ablation's
// heaviest workload: every variant on every canonical query of one
// dataset. Each rep re-prepares each query from scratch, so warm reps
// measure the serving scenario (repeated queries against a filled
// process-wide cache) and the cold fill bounds one-shot overhead. The
// acceptance bar is a >= 25% reduction in total CMI-kernel time (see
// docs/performance.md for recorded numbers).
void RunCacheAb(DatasetKind kind) {
  BenchWorld world = MakeBenchWorld(kind, BenchRows(kind));
  const size_t prev_threads = NumThreads();
  SetNumThreads(1);
  auto once = [&] {
    for (const BenchQuery& bq : CanonicalQueries(kind)) {
      auto pq = world.mesa->PrepareQuery(bq.query);
      MESA_CHECK(pq.ok());
      for (const Variant& v : Variants()) {
        RunMcimr(*pq->analysis, pq->candidate_indices, v.options);
      }
    }
  };
  info_cache::SetEnabled(false);
  once();  // warm-up, cache untouched

  // Cold fill: one cache-on run against an empty cache.
  info_cache::SetEnabled(true);
  info_cache::Clear();
  InfoCacheDelta cold_counters = ReadInfoCacheCounters();
  double cold_s = InfoKernelSeconds();
  once();
  cold_s = InfoKernelSeconds() - cold_s;
  cold_counters = ReadInfoCacheCounters() - cold_counters;

  constexpr size_t kReps = 3;
  std::vector<double> kernel_on, kernel_off;
  InfoCacheDelta warm_counters{};
  for (size_t i = 0; i < kReps; ++i) {
    info_cache::SetEnabled(true);  // cache stays warm across reps
    InfoCacheDelta cb = ReadInfoCacheCounters();
    double kb = InfoKernelSeconds();
    once();
    kernel_on.push_back(InfoKernelSeconds() - kb);
    warm_counters = ReadInfoCacheCounters() - cb;
    info_cache::SetEnabled(false);
    kb = InfoKernelSeconds();
    once();
    kernel_off.push_back(InfoKernelSeconds() - kb);
  }
  info_cache::SetEnabled(true);
  SetNumThreads(prev_threads);
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  double on_s = median(kernel_on), off_s = median(kernel_off);
  std::printf(
      "\nsufficient-statistics cache A/B (%s, %zu rows, all variants x all\n"
      "queries, 1 thread, interleaved, median of %zu):\n"
      "  CMI-kernel time: warm cache %.3fs, off %.3fs -> %+.1f%%"
      " (target: <= -25%%)\n"
      "                   cold fill  %.3fs vs off -> %+.1f%%\n"
      "  counters: cold fill %s\n"
      "            one warm  %s\n",
      DatasetKindName(kind), BenchRows(kind), kReps, on_s, off_s,
      off_s > 0.0 ? 100.0 * (on_s - off_s) / off_s : 0.0, cold_s,
      off_s > 0.0 ? 100.0 * (cold_s - off_s) / off_s : 0.0,
      InfoCacheDeltaToString(cold_counters).c_str(),
      InfoCacheDeltaToString(warm_counters).c_str());
}

void Run() {
  std::printf("=== Ablation: MCIMR design choices (avg over 14 queries) ===\n");
  struct Acc {
    double quality = 0, size = 0, cmi_ratio = 0, seconds = 0;
    size_t n = 0;
  };
  std::vector<Acc> acc(Variants().size());

  for (DatasetKind kind : AllDatasetKinds()) {
    BenchWorld world = MakeBenchWorld(kind, BenchRows(kind));
    for (const BenchQuery& bq : CanonicalQueries(kind)) {
      auto pq = world.mesa->PrepareQuery(bq.query);
      MESA_CHECK(pq.ok());
      auto variants = Variants();
      for (size_t vi = 0; vi < variants.size(); ++vi) {
        Timer timer;
        Explanation ex = RunMcimr(*pq->analysis, pq->candidate_indices,
                                  variants[vi].options);
        acc[vi].seconds += timer.Seconds();
        acc[vi].quality +=
            QualityScore(ex.attribute_names, bq.ground_truth);
        acc[vi].size += static_cast<double>(ex.attribute_names.size());
        acc[vi].cmi_ratio +=
            ex.base_cmi > 0 ? ex.final_cmi / ex.base_cmi : 0.0;
        ++acc[vi].n;
      }
    }
  }

  std::printf("%s %s %s %s %s\n", Pad("variant", 25).c_str(),
              Pad("quality", 8).c_str(), Pad("|E|", 5).c_str(),
              Pad("cmi/base", 9).c_str(), Pad("sec/query", 10).c_str());
  auto variants = Variants();
  for (size_t vi = 0; vi < variants.size(); ++vi) {
    double n = static_cast<double>(acc[vi].n);
    std::printf("%s %-8.2f %-5.2f %-9.3f %-10.3f\n",
                Pad(variants[vi].name, 25).c_str(), acc[vi].quality / n,
                acc[vi].size / n, acc[vi].cmi_ratio / n,
                acc[vi].seconds / n);
  }
  std::printf(
      "\nReading: the redundancy term and the identification guard protect\n"
      "quality (without them redundant twins / entity-keying sets creep\n"
      "in); disabling the responsibility stop inflates explanation size\n"
      "without improving quality.\n");

  RunCacheAb(DatasetKind::kFlights);
}

}  // namespace
}  // namespace bench
}  // namespace mesa

int main() {
  mesa::bench::Run();
  return 0;
}
