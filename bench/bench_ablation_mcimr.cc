// Ablation study over MCIMR's design choices (the DESIGN.md decisions):
//   1. Min-Redundancy term: off / raw Eq. 5 / normalised (NMIFS-style);
//   2. responsibility-test stopping: on / off (fixed k);
//   3. the set-level identification guard (Lemma A.2 in set form): on/off.
// Reported per variant: quality score vs planted ground truth, explanation
// size, explainability, and runtime — averaged over the 14 queries.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"

namespace mesa {
namespace bench {
namespace {

struct Variant {
  const char* name;
  McimrOptions options;
};

std::vector<Variant> Variants() {
  std::vector<Variant> out;
  {
    Variant v{"full MCIMR (default)", {}};
    out.push_back(v);
  }
  {
    Variant v{"no redundancy term", {}};
    v.options.use_redundancy_term = false;
    out.push_back(v);
  }
  {
    Variant v{"raw Eq.5 redundancy", {}};
    v.options.normalize_redundancy = false;
    out.push_back(v);
  }
  {
    Variant v{"no responsibility stop", {}};
    v.options.responsibility_stopping = false;
    out.push_back(v);
  }
  {
    Variant v{"no identification guard", {}};
    v.options.max_identification_fraction = 0.0;
    out.push_back(v);
  }
  return out;
}

void Run() {
  std::printf("=== Ablation: MCIMR design choices (avg over 14 queries) ===\n");
  struct Acc {
    double quality = 0, size = 0, cmi_ratio = 0, seconds = 0;
    size_t n = 0;
  };
  std::vector<Acc> acc(Variants().size());

  for (DatasetKind kind : AllDatasetKinds()) {
    BenchWorld world = MakeBenchWorld(kind, BenchRows(kind));
    for (const BenchQuery& bq : CanonicalQueries(kind)) {
      auto pq = world.mesa->PrepareQuery(bq.query);
      MESA_CHECK(pq.ok());
      auto variants = Variants();
      for (size_t vi = 0; vi < variants.size(); ++vi) {
        Timer timer;
        Explanation ex = RunMcimr(*pq->analysis, pq->candidate_indices,
                                  variants[vi].options);
        acc[vi].seconds += timer.Seconds();
        acc[vi].quality +=
            QualityScore(ex.attribute_names, bq.ground_truth);
        acc[vi].size += static_cast<double>(ex.attribute_names.size());
        acc[vi].cmi_ratio +=
            ex.base_cmi > 0 ? ex.final_cmi / ex.base_cmi : 0.0;
        ++acc[vi].n;
      }
    }
  }

  std::printf("%s %s %s %s %s\n", Pad("variant", 25).c_str(),
              Pad("quality", 8).c_str(), Pad("|E|", 5).c_str(),
              Pad("cmi/base", 9).c_str(), Pad("sec/query", 10).c_str());
  auto variants = Variants();
  for (size_t vi = 0; vi < variants.size(); ++vi) {
    double n = static_cast<double>(acc[vi].n);
    std::printf("%s %-8.2f %-5.2f %-9.3f %-10.3f\n",
                Pad(variants[vi].name, 25).c_str(), acc[vi].quality / n,
                acc[vi].size / n, acc[vi].cmi_ratio / n,
                acc[vi].seconds / n);
  }
  std::printf(
      "\nReading: the redundancy term and the identification guard protect\n"
      "quality (without them redundant twins / entity-keying sets creep\n"
      "in); disabling the responsibility stop inflates explanation size\n"
      "without improving quality.\n");
}

}  // namespace
}  // namespace bench
}  // namespace mesa

int main() {
  mesa::bench::Run();
  return 0;
}
