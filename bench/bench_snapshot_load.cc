// Cold-start readout for binary snapshots (docs/performance.md §8,
// docs/snapshot_format.md): what `--snapshot FILE.msnap` buys over
// parsing CSV + .kg text at process start.
//
// Three load paths per dataset, best of kTrials (the first trial also
// warms the page cache, so "best" isolates the parse/validate compute
// from disk):
//
//   parse      ReadCsvFile + ReadKgFile — what `mesa_cli --data` and a
//              mesa_serve CSV spec pay on every start;
//   snapshot   SnapshotReader::Open + ReadTable + ReadKg with full
//              CRC-32C verification (the default);
//   table-only Open + ReadTable with verify_checksums=false — the pure
//              zero-copy path: O(metadata) validation, columns borrowed
//              straight from the mapping (the KG always rebuilds its
//              hash indexes, so it is excluded here by design).
//
// Each timed load runs in-process; numbers are single-threaded (loading
// is not parallelized on any path).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "kg/serialization.h"
#include "snapshot/reader.h"
#include "snapshot/writer.h"
#include "table/csv.h"

namespace mesa {
namespace bench {
namespace {

constexpr int kTrials = 5;

long FileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  MESA_CHECK(f != nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  return size;
}

double BestOf(int trials, double (*fn)(const std::string&,
                                       const std::string&),
              const std::string& a, const std::string& b) {
  double best = fn(a, b);
  for (int i = 1; i < trials; ++i) {
    double t = fn(a, b);
    if (t < best) best = t;
  }
  return best;
}

double ParseLoad(const std::string& csv_path, const std::string& kg_path) {
  Timer timer;
  auto table = ReadCsvFile(csv_path);
  MESA_CHECK(table.ok());
  auto kg = ReadKgFile(kg_path);
  MESA_CHECK(kg.ok());
  MESA_CHECK(table->num_rows() > 0 && kg->num_triples() > 0);
  return timer.Seconds();
}

double SnapshotLoad(const std::string& snap_path, const std::string&) {
  Timer timer;
  auto reader = snapshot::SnapshotReader::Open(snap_path);
  MESA_CHECK(reader.ok());
  auto table = reader->ReadTable();
  MESA_CHECK(table.ok());
  auto kg = reader->ReadKg();
  MESA_CHECK(kg.ok());
  MESA_CHECK(table->num_rows() > 0 && (*kg)->num_triples() > 0);
  return timer.Seconds();
}

double SnapshotTableOnly(const std::string& snap_path, const std::string&) {
  Timer timer;
  snapshot::SnapshotReadOptions options;
  options.verify_checksums = false;
  auto reader = snapshot::SnapshotReader::Open(snap_path, options);
  MESA_CHECK(reader.ok());
  auto table = reader->ReadTable();
  MESA_CHECK(table.ok());
  MESA_CHECK(table->num_rows() > 0);
  return timer.Seconds();
}

void RunDataset(DatasetKind kind, const char* name) {
  GenOptions gen;
  gen.rows = BenchRows(kind);
  auto ds = MakeDataset(kind, gen);
  MESA_CHECK(ds.ok());

  const std::string prefix = std::string("/tmp/bench_snapshot_load.") + name;
  const std::string csv_path = prefix + ".csv";
  const std::string kg_path = prefix + ".kg";
  const std::string snap_path = prefix + ".msnap";
  MESA_CHECK(WriteCsvFile(ds->table, csv_path).ok());
  MESA_CHECK(WriteKgFile(*ds->kg, kg_path).ok());
  snapshot::SnapshotWriter writer;
  writer.SetTable(&ds->table);
  writer.SetKg(ds->kg.get());
  writer.SetExtractionColumns(ds->extraction_columns);
  MESA_CHECK(writer.WriteFile(snap_path).ok());

  const double parse = BestOf(kTrials, ParseLoad, csv_path, kg_path);
  const double snap = BestOf(kTrials, SnapshotLoad, snap_path, kg_path);
  const double table_only =
      BestOf(kTrials, SnapshotTableOnly, snap_path, kg_path);

  std::printf("%s  %7zu  %8ld  %7ld  %9.2f  %12.2f  %13.2f  %6.1fx\n",
              Pad(name, 8).c_str(), ds->table.num_rows(),
              FileBytes(csv_path) + FileBytes(kg_path), FileBytes(snap_path),
              parse * 1e3, snap * 1e3, table_only * 1e3, parse / snap);

  std::remove(csv_path.c_str());
  std::remove(kg_path.c_str());
  std::remove(snap_path.c_str());
}

void Run() {
  std::printf("cold-start load: CSV + .kg parse vs binary snapshot "
              "(best of %d, ms)\n\n", kTrials);
  std::printf("dataset      rows   txt(B)  msnap(B)  parse_ms  snapshot_ms  "
              "table_only_ms  speedup\n");
  RunDataset(DatasetKind::kCovid, "covid");
  RunDataset(DatasetKind::kFlights, "flights");
  std::printf(
      "\nsnapshot_ms includes full CRC verification and the KG index\n"
      "rebuild; table_only_ms is the pure zero-copy table path\n"
      "(verify_checksums=false). Single-threaded on all paths.\n");
}

}  // namespace
}  // namespace bench
}  // namespace mesa

int main() { mesa::bench::Run(); }
