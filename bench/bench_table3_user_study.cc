// Reproduces Table 3 under the user-study substitution (see DESIGN.md):
// 150 MTurk raters are replaced by a deterministic quality score measuring
// how well each method's explanation covers the generative model's planted
// confounders (1-5 scale). The reproduction target is the *ranking*:
//   Brute-Force ~ MESA- ~ MESA  >  HypDB  >  Top-K  >  LR.

#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"

namespace mesa {
namespace bench {
namespace {

void Run() {
  std::map<Method, std::vector<double>> scores;
  for (DatasetKind kind : AllDatasetKinds()) {
    BenchWorld world = MakeBenchWorld(kind, BenchRows(kind));
    for (const BenchQuery& bq : CanonicalQueries(kind)) {
      auto pq = world.mesa->PrepareQuery(bq.query);
      MESA_CHECK(pq.ok());
      std::vector<size_t> unpruned(pq->analysis->attributes().size());
      for (size_t i = 0; i < unpruned.size(); ++i) unpruned[i] = i;
      bool bf_feasible = pq->candidate_indices.size() <= 40;
      auto results = RunAllMethods(*pq->analysis, pq->candidate_indices,
                                   unpruned, 5, bf_feasible);
      for (auto& [method, r] : results) {
        if (!r.ok) continue;
        scores[method].push_back(
            QualityScore(r.explanation.attribute_names, bq.ground_truth));
      }
    }
  }

  std::printf("=== Table 3: average explanation quality (substituted user "
              "study) ===\n");
  std::printf("%s %s %s %s\n", Pad("Baseline", 13).c_str(),
              Pad("Avg Score", 10).c_str(), Pad("Variance", 9).c_str(),
              Pad("#Queries", 8).c_str());
  for (Method m : AllMethods()) {
    const auto& v = scores[m];
    if (v.empty()) continue;
    double mean = 0;
    for (double s : v) mean += s;
    mean /= static_cast<double>(v.size());
    double var = 0;
    for (double s : v) var += (s - mean) * (s - mean);
    var /= static_cast<double>(v.size());
    std::printf("%s %s %s %zu\n", Pad(MethodName(m), 13).c_str(),
                Pad(std::to_string(mean).substr(0, 4), 10).c_str(),
                Pad(std::to_string(var).substr(0, 4), 9).c_str(), v.size());
  }
  std::printf("\nPaper's MTurk means: Brute-Force 3.8, MESA- 3.7, MESA 3.5,\n"
              "HypDB 2.8, Top-K 2.1, LR 1.8 — compare the ordering, not the\n"
              "absolute values.\n");
}

}  // namespace
}  // namespace bench
}  // namespace mesa

int main() {
  mesa::bench::Run();
  return 0;
}
