// Reproduces Figure 5: running time as a function of the dataset size
// (rows subsampled uniformly at random, as in the paper). Times are split
// the way the paper reports them: `mcimr_s` is the algorithm of §4.1 (what
// the paper claims stays below 10s at 5.8M rows), `analysis_s` is query
// preparation (coding, selection-bias detection, IPW, online pruning), and
// `preproc_s` is the across-queries extraction + offline pruning.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/mcimr.h"
#include "info/info_cache.h"
#include "stats/discretizer.h"

namespace mesa {
namespace bench {
namespace {

void RunDataset(DatasetKind kind, const std::vector<size_t>& row_counts) {
  // Generate at the largest size once, then subsample.
  GenOptions gen;
  gen.rows = row_counts.back();
  auto ds = MakeDataset(kind, gen);
  MESA_CHECK(ds.ok());
  const QuerySpec query = CanonicalQueries(kind)[0].query;

  std::printf("\n--- %s ---\n", DatasetKindName(kind));
  std::printf("  %s %s %s %s %s %s %s\n", Pad("rows", 10).c_str(),
              Pad("mcimr_s", 9).c_str(), Pad("analysis_s", 11).c_str(),
              Pad("preproc_s", 10).c_str(), Pad("kernel_s", 9).c_str(),
              Pad("mcimr evals", 24).c_str(), "cache hit/miss");
  Rng rng(99);
  for (size_t rows : row_counts) {
    std::vector<size_t> idx = rng.Permutation(ds->table.num_rows());
    idx.resize(rows);
    Table sub = ds->table.TakeRows(idx);
    Mesa mesa(std::move(sub), ds->kg.get(), ds->extraction_columns);
    // Fresh cache per row count so reported hit rates are per-run, not
    // residue from the previous (subsampled, so different-content) run.
    info_cache::Clear();
    Timer preproc_timer;
    MESA_CHECK(mesa.Preprocess().ok());
    double preproc_s = preproc_timer.Seconds();
    Timer analysis_timer;
    auto pq = mesa.PrepareQuery(query);
    MESA_CHECK(pq.ok());
    double analysis_s = analysis_timer.Seconds();
    EvalCounts before = ReadEvalCounts();
    InfoCacheDelta cache_before = ReadInfoCacheCounters();
    double kernel_before = InfoKernelSeconds();
    Timer mcimr_timer;
    Explanation ex = RunMcimr(*pq->analysis, pq->candidate_indices);
    (void)ex;
    double mcimr_s = mcimr_timer.Seconds();
    std::printf("  %s %-9.3f %-11.3f %-10.3f %-9.3f %s %s\n",
                Pad(std::to_string(rows), 10).c_str(), mcimr_s, analysis_s,
                preproc_s, InfoKernelSeconds() - kernel_before,
                Pad(EvalCountsToString(ReadEvalCounts() - before), 24).c_str(),
                InfoCacheDeltaToString(ReadInfoCacheCounters() - cache_before)
                    .c_str());
  }
}

// Interleaved A/B of the sufficient-statistics cache on the full
// prepare+MCIMR pipeline at one dataset size. Two cache-on numbers are
// reported: the *cold* first run (the cache fills — this bounds the
// overhead a one-shot query pays) and the *warm* steady state (the
// query repeats against a filled cache — the serving scenario the
// cache exists for). The acceptance bar is a >= 25% reduction in total
// CMI-kernel time at the largest benchmarked row count
// (docs/performance.md records measured numbers).
void RunCacheAb(DatasetKind kind, size_t rows) {
  GenOptions gen;
  gen.rows = rows;
  auto ds = MakeDataset(kind, gen);
  MESA_CHECK(ds.ok());
  const QuerySpec query = CanonicalQueries(kind)[0].query;
  Mesa mesa(ds->table, ds->kg.get(), ds->extraction_columns);
  MESA_CHECK(mesa.Preprocess().ok());
  const size_t prev_threads = NumThreads();
  SetNumThreads(1);
  auto once = [&] {
    auto pq = mesa.PrepareQuery(query);
    MESA_CHECK(pq.ok());
    RunMcimr(*pq->analysis, pq->candidate_indices);
  };
  info_cache::SetEnabled(false);
  once();  // warm-up (pool, allocator, page cache), cache untouched

  // Cold fill: one cache-on run against an empty cache.
  info_cache::SetEnabled(true);
  info_cache::Clear();
  InfoCacheDelta cold_counters = ReadInfoCacheCounters();
  double cold_s = InfoKernelSeconds();
  once();
  cold_s = InfoKernelSeconds() - cold_s;
  cold_counters = ReadInfoCacheCounters() - cold_counters;

  // Steady state: interleaved on/off reps; the cache stays warm across
  // them (off runs never read or write it).
  constexpr size_t kReps = 5;
  std::vector<double> kernel_on, kernel_off, wall_on, wall_off;
  InfoCacheDelta warm_counters{};
  for (size_t i = 0; i < kReps; ++i) {
    info_cache::SetEnabled(true);
    InfoCacheDelta cb = ReadInfoCacheCounters();
    double kb = InfoKernelSeconds();
    Timer t_on;
    once();
    wall_on.push_back(t_on.Seconds());
    kernel_on.push_back(InfoKernelSeconds() - kb);
    warm_counters = ReadInfoCacheCounters() - cb;
    info_cache::SetEnabled(false);
    kb = InfoKernelSeconds();
    Timer t_off;
    once();
    wall_off.push_back(t_off.Seconds());
    kernel_off.push_back(InfoKernelSeconds() - kb);
  }
  info_cache::SetEnabled(true);
  SetNumThreads(prev_threads);
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  double on_s = median(kernel_on), off_s = median(kernel_off);
  std::printf(
      "\nsufficient-statistics cache A/B (%s, %zu rows, prepare+mcimr,\n"
      "1 thread, interleaved, median of %zu):\n"
      "  CMI-kernel time: warm cache %.3fs, off %.3fs -> %+.1f%%"
      " (target: <= -25%%)\n"
      "                   cold fill  %.3fs vs off -> %+.1f%%\n"
      "  wall time:       warm cache %.3fs, off %.3fs -> %+.1f%%\n"
      "  counters: cold fill %s\n"
      "            one warm  %s\n",
      DatasetKindName(kind), rows, kReps, on_s, off_s,
      off_s > 0.0 ? 100.0 * (on_s - off_s) / off_s : 0.0, cold_s,
      off_s > 0.0 ? 100.0 * (cold_s - off_s) / off_s : 0.0,
      median(wall_on), median(wall_off),
      median(wall_off) > 0.0
          ? 100.0 * (median(wall_on) - median(wall_off)) / median(wall_off)
          : 0.0,
      InfoCacheDeltaToString(cold_counters).c_str(),
      InfoCacheDeltaToString(warm_counters).c_str());
}

void Run() {
  std::printf("=== Figure 5: runtime vs number of rows ===\n");
  RunDataset(DatasetKind::kStackOverflow, {5000, 10000, 20000, 47623});
  RunDataset(DatasetKind::kFlights, {25000, 50000, 100000, 200000, 400000});
  RunDataset(DatasetKind::kForbes, {400, 800, 1647});

  // Cache A/B at the largest row counts of the two biggest datasets.
  RunCacheAb(DatasetKind::kStackOverflow, 47623);
  RunCacheAb(DatasetKind::kFlights, 400000);

  // Thread sweep: the same prepare+MCIMR pipeline at 1 / 2 / N pool
  // threads (bit-identical explanations; only wall time moves). Each run
  // builds a fresh QueryAnalysis so caches never carry across timings.
  {
    auto ds = MakeDataset(DatasetKind::kStackOverflow, GenOptions{20000});
    MESA_CHECK(ds.ok());
    const QuerySpec query =
        CanonicalQueries(DatasetKind::kStackOverflow)[0].query;
    Mesa mesa(ds->table, ds->kg.get(), ds->extraction_columns);
    MESA_CHECK(mesa.Preprocess().ok());
    auto timings = TimeAtThreadCounts([&] {
      auto pq = mesa.PrepareQuery(query);
      MESA_CHECK(pq.ok());
      RunMcimr(*pq->analysis, pq->candidate_indices);
    });
    std::printf("\n%s\n",
                ThreadSweepJson("fig5_so20000_prepare_mcimr", timings).c_str());
  }

  // Preprocess data-plane thread sweep A/B: the morsel-driven group-by /
  // hash-join / extraction paths against their serial reference loops.
  // The baseline arm times Preprocess with SetDataPlaneParallel(false) at
  // one thread (the exact pre-parallelization code); the parallel arm
  // sweeps 1 / 2 / 8 pool threads. Every arm computes byte-identical
  // tables and reports (asserted in tests/query_parallel_test.cc), so the
  // ratio IS the speedup. Both memo caches are cleared inside each run —
  // the arms must all pay the same cold-cache work. Acceptance: >= 2.5x
  // at 8 threads vs the serial baseline at the Flights scale.
  {
    auto ds = MakeDataset(DatasetKind::kFlights, GenOptions{400000});
    MESA_CHECK(ds.ok());
    auto preprocess_once = [&] {
      info_cache::Clear();
      ClearDiscretizerCache();
      Mesa mesa(ds->table, ds->kg.get(), ds->extraction_columns);
      MESA_CHECK(mesa.Preprocess().ok());
    };
    preprocess_once();  // warm-up (allocator, page cache)
    const size_t prev_threads = NumThreads();
    SetDataPlaneParallel(false);
    SetNumThreads(1);
    Timer serial_timer;
    preprocess_once();
    const double serial_s = serial_timer.Seconds();
    SetDataPlaneParallel(true);
    auto timings = TimeAtThreadCounts(preprocess_once, {1, 2, 8});
    SetNumThreads(prev_threads);
    std::printf(
        "\npreprocess data-plane thread sweep (flights, 400000 rows,\n"
        "extraction + join + offline pruning; serial reference %.3fs):\n",
        serial_s);
    for (const auto& t : timings) {
      std::printf("  %zu threads: %.3fs -> %.2fx vs serial\n", t.threads,
                  t.seconds, t.seconds > 0.0 ? serial_s / t.seconds : 0.0);
    }
    std::printf("  (target: >= 2.5x at 8 threads)\n%s\n",
                ThreadSweepJson("fig5_flights400k_preprocess", timings).c_str());
  }

  // Metrics overhead: the same prepare+MCIMR pipeline with the metrics
  // runtime gate on vs off. Runs are interleaved A/B (so clock-frequency
  // drift hits both arms equally), single-threaded (so scheduler noise
  // doesn't swamp the signal), and compared at the median. The
  // instrumentation budget is < 2% end-to-end wall time.
  {
    auto ds = MakeDataset(DatasetKind::kStackOverflow, GenOptions{20000});
    MESA_CHECK(ds.ok());
    const QuerySpec query =
        CanonicalQueries(DatasetKind::kStackOverflow)[0].query;
    Mesa mesa(ds->table, ds->kg.get(), ds->extraction_columns);
    MESA_CHECK(mesa.Preprocess().ok());
    const size_t prev_threads = NumThreads();
    SetNumThreads(1);
    auto once = [&] {
      auto pq = mesa.PrepareQuery(query);
      MESA_CHECK(pq.ok());
      RunMcimr(*pq->analysis, pq->candidate_indices);
    };
    once();  // warm-up
    constexpr size_t kReps = 11;
    std::vector<double> on, off;
    for (size_t i = 0; i < kReps; ++i) {
      metrics::SetEnabled(true);
      Timer t_on;
      once();
      on.push_back(t_on.Seconds());
      metrics::SetEnabled(false);
      Timer t_off;
      once();
      off.push_back(t_off.Seconds());
    }
    metrics::SetEnabled(true);
    SetNumThreads(prev_threads);
    std::sort(on.begin(), on.end());
    std::sort(off.begin(), off.end());
    double with_metrics = on[kReps / 2];
    double without_metrics = off[kReps / 2];
    std::printf(
        "\nmetrics overhead (so, 20000 rows, prepare+mcimr, 1 thread,\n"
        "interleaved A/B, median of %zu):\n"
        "  enabled %.3fs, disabled %.3fs -> %+0.2f%% (budget: < 2%%)\n",
        kReps, with_metrics, without_metrics,
        without_metrics > 0.0
            ? 100.0 * (with_metrics - without_metrics) / without_metrics
            : 0.0);
  }

  std::printf(
      "\nShape check (paper): MCIMR's own time grows sub-linearly for\n"
      "SO/Flights (big groups survive subsampling) and near-linearly for\n"
      "Forbes (tiny groups). At the paper's full 5.8M Flights rows this\n"
      "implementation measures MCIMR in the ~10-15s band single-threaded\n"
      "(see EXPERIMENTS.md), with preparation adding ~30s on top.\n");
}

}  // namespace
}  // namespace bench
}  // namespace mesa

int main() {
  mesa::bench::Run();
  return 0;
}
