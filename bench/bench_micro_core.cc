// Micro-benchmarks (google-benchmark) for the core explanation machinery
// over the SO world: query preparation, the NextBestAtt inner loop, joint
// conditioning-set evaluation, the identification guard, full MCIMR, and
// the unexplained-subgroup search. These are the building blocks behind
// Figures 4-6.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/logging.h"
#include "core/mcimr.h"
#include "core/mesa.h"
#include "core/pruning.h"
#include "core/subgroups.h"
#include "datagen/registry.h"

namespace mesa {
namespace {

struct SoFixture {
  GeneratedDataset dataset;
  std::unique_ptr<Mesa> mesa;
  Mesa::PreparedQuery pq;
  QuerySpec query;

  static SoFixture& Get() {
    static SoFixture* fixture = [] {
      auto* f = new SoFixture();
      GenOptions gen;
      gen.rows = 20000;
      auto ds = MakeDataset(DatasetKind::kStackOverflow, gen);
      MESA_CHECK(ds.ok());
      f->dataset = std::move(*ds);
      f->mesa = std::make_unique<Mesa>(f->dataset.table, f->dataset.kg.get(),
                                       f->dataset.extraction_columns);
      f->query = CanonicalQueries(DatasetKind::kStackOverflow)[0].query;
      auto pq = f->mesa->PrepareQuery(f->query);
      MESA_CHECK(pq.ok());
      f->pq = std::move(*pq);
      return f;
    }();
    return *fixture;
  }
};

void BM_PrepareQuery(benchmark::State& state) {
  SoFixture& f = SoFixture::Get();
  for (auto _ : state) {
    auto pq = f.mesa->PrepareQuery(f.query);
    benchmark::DoNotOptimize(pq);
  }
}
BENCHMARK(BM_PrepareQuery)->Unit(benchmark::kMillisecond);

void BM_NextBestAttributeColdCache(benchmark::State& state) {
  SoFixture& f = SoFixture::Get();
  McimrOptions opts;
  for (auto _ : state) {
    state.PauseTiming();
    // A fresh analysis so per-candidate CMI caches start cold.
    auto pq = f.mesa->PrepareQuery(f.query);
    MESA_CHECK(pq.ok());
    state.ResumeTiming();
    double score = 0;
    benchmark::DoNotOptimize(NextBestAttribute(
        *pq->analysis, pq->candidate_indices, {}, opts, &score));
  }
}
BENCHMARK(BM_NextBestAttributeColdCache)->Unit(benchmark::kMillisecond);

void BM_CmiGivenPair(benchmark::State& state) {
  SoFixture& f = SoFixture::Get();
  auto& a = *f.pq.analysis;
  size_t i = f.pq.candidate_indices[0];
  size_t j = f.pq.candidate_indices[1];
  for (auto _ : state) {
    // Fresh set each iteration defeats the set cache via alternating order.
    benchmark::DoNotOptimize(a.CmiGivenSet({i, j}));
    benchmark::DoNotOptimize(a.CmiGivenSet({j, i}));  // cache hit path
  }
}
BENCHMARK(BM_CmiGivenPair)->Unit(benchmark::kMicrosecond);

void BM_IdentificationFraction(benchmark::State& state) {
  SoFixture& f = SoFixture::Get();
  auto& a = *f.pq.analysis;
  std::vector<size_t> set = {f.pq.candidate_indices[0],
                             f.pq.candidate_indices[1]};
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.IdentificationFraction(set));
  }
}
BENCHMARK(BM_IdentificationFraction)->Unit(benchmark::kMicrosecond);

void BM_FullMcimr(benchmark::State& state) {
  SoFixture& f = SoFixture::Get();
  for (auto _ : state) {
    state.PauseTiming();
    auto pq = f.mesa->PrepareQuery(f.query);
    MESA_CHECK(pq.ok());
    state.ResumeTiming();
    benchmark::DoNotOptimize(RunMcimr(*pq->analysis, pq->candidate_indices));
  }
}
BENCHMARK(BM_FullMcimr)->Unit(benchmark::kMillisecond);

void BM_OnlinePrune(benchmark::State& state) {
  SoFixture& f = SoFixture::Get();
  for (auto _ : state) {
    state.PauseTiming();
    auto pq = f.mesa->PrepareQuery(f.query);
    MESA_CHECK(pq.ok());
    state.ResumeTiming();
    benchmark::DoNotOptimize(OnlinePrune(*pq->analysis));
  }
}
BENCHMARK(BM_OnlinePrune)->Unit(benchmark::kMillisecond);

void BM_SubgroupSearch(benchmark::State& state) {
  SoFixture& f = SoFixture::Get();
  auto rep = f.mesa->Explain(f.query);
  MESA_CHECK(rep.ok());
  SubgroupOptions opts;
  opts.threshold = 0.05 * rep->base_cmi;
  opts.refinement_attributes = {"Continent", "Gender", "DevType"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.mesa->FindSubgroups(
        f.query, rep->explanation.attribute_names, opts));
  }
}
BENCHMARK(BM_SubgroupSearch)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mesa

BENCHMARK_MAIN();
