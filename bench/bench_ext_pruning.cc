// Reproduces the appendix pruning statistics: how many extracted attributes
// each pruning stage removes per dataset (the paper: offline pruning drops
// 41-73% of extracted attributes; online pruning a further 3-14% of the
// survivors), plus the per-dataset missing-value and selection-bias rates
// of §5.2.

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "common/logging.h"

namespace mesa {
namespace bench {
namespace {

void Run() {
  std::printf("=== Appendix: pruning impact and §5.2 missingness stats ===\n");
  std::printf("%s %s %s %s %s %s\n", Pad("Dataset", 9).c_str(),
              Pad("extracted", 10).c_str(), Pad("off-drop%", 10).c_str(),
              Pad("on-drop%", 9).c_str(), Pad("missing%", 9).c_str(),
              Pad("biased%", 8).c_str());
  for (DatasetKind kind : AllDatasetKinds()) {
    BenchWorld world = MakeBenchWorld(kind, BenchRows(kind));
    MESA_CHECK(world.mesa->Preprocess().ok());

    // Offline: pruned / (pruned + kept) over extracted attributes only.
    size_t off_pruned = 0;
    for (const auto& p : world.mesa->offline_prune_result().pruned) {
      (void)p;
      ++off_pruned;
    }
    size_t extracted = world.mesa->kg_columns().size() + off_pruned;

    // Online pruning + per-attribute stats on Q1.
    const QuerySpec query = CanonicalQueries(kind)[0].query;
    auto pq = world.mesa->PrepareQuery(query);
    MESA_CHECK(pq.ok());
    size_t on_pruned = pq->pruned_online.size();
    size_t on_total = pq->analysis->attributes().size();

    double missing_sum = 0.0;
    size_t kg_attrs = 0, biased = 0;
    for (const auto& attr : pq->analysis->attributes()) {
      if (!attr.from_kg) continue;
      ++kg_attrs;
      missing_sum += attr.missing_fraction;
      biased += attr.selection_biased ? 1 : 0;
    }
    std::printf("%s %s %s %s %s %s\n", Pad(world.dataset.name, 9).c_str(),
                Pad(std::to_string(extracted), 10).c_str(),
                Pad(std::to_string(100 * off_pruned /
                                   std::max<size_t>(1, extracted)),
                    10)
                    .c_str(),
                Pad(std::to_string(100 * on_pruned /
                                   std::max<size_t>(1, on_total)),
                    9)
                    .c_str(),
                Pad(std::to_string(static_cast<int>(
                        100.0 * missing_sum / std::max<size_t>(1, kg_attrs))),
                    9)
                    .c_str(),
                Pad(std::to_string(100 * biased /
                                   std::max<size_t>(1, kg_attrs)),
                    8)
                    .c_str());
  }
  std::printf(
      "\nShape check (paper): substantial offline drop (type/wikiID/sparse\n"
      "attributes), smaller online drop; Forbes has the highest missing\n"
      "rate (category-specific vocabularies); a noticeable minority of\n"
      "attributes carries selection bias.\n");
}

}  // namespace
}  // namespace bench
}  // namespace mesa

int main() {
  mesa::bench::Run();
  return 0;
}
