// bench_workload — the sustained-load harness for mesa_serve
// (docs/performance.md §7, docs/serving.md).
//
// Generates covid + flights, makes both resident, draws a seeded pool of
// distinct explain queries, and drives them in closed-loop (N workers,
// optional think time) or open-loop (target QPS, seeded Poisson arrivals)
// mode. Reports p50/p95/p99 latency, queries/sec, shed rate, and
// serve/* + info_cache/* counter deltas as text and (with --json=FILE) as
// one machine-readable JSON object, so CI and multi-core hosts publish
// comparable scaling numbers.
//
// Targets:
//   --target=router   in-process serve::Router (default; deterministic,
//                     no sockets — the mode ctest pins byte-identity on)
//   --target=socket   a local Server in this process, driven through one
//                     real serve::Client connection per worker
//   --connect=PORT    an external daemon on localhost (counter deltas are
//                     then read over its `metrics` verb; --verify assumes
//                     it serves the same generated covid/flights files)
//
// --verify computes a serial oracle (fresh Router, pool pinned to one
// thread, one request at a time) for every distinct query and asserts
// each load reply is byte-identical to it; admission sheds are counted
// but exempt. Exit code 1 on any mismatch.
//
// Chaos-under-load: --fault-plan installs a seeded KG fault plan on the
// resident datasets and --max-inflight caps admission, so retries and
// sheds happen while the load is in flight (docs/robustness.md).
//
// Same --seed => same query pool, same schedule, same request
// fingerprint; with no sheds the reply fingerprint is identical too.

#include <unistd.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "datagen/registry.h"
#include "kg/serialization.h"
#include "loadgen/driver.h"
#include "loadgen/schedule.h"
#include "loadgen/summary.h"
#include "loadgen/workload.h"
#include "serve/client.h"
#include "serve/json.h"
#include "serve/router.h"
#include "serve/server.h"
#include "table/csv.h"

namespace mesa {
namespace bench {
namespace {

// Same minimal --flag parser as mesa_cli / mesa_serve.
class Flags {
 public:
  Flags(int argc, char** argv, int start) {
    for (int i = start; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        error_ = "unexpected argument: " + arg;
        return;
      }
      std::string name = arg.substr(2);
      size_t eq = name.find('=');
      if (eq != std::string::npos) {
        values_[name.substr(0, eq)] = name.substr(eq + 1);
        continue;
      }
      if (name == "verify" || name == "no-warm" || name == "gen-only" ||
          name == "allow-disconnect") {
        values_[name] = "true";
        continue;
      }
      if (i + 1 >= argc) {
        error_ = "flag --" + name + " needs a value";
        return;
      }
      values_[name] = argv[++i];
    }
  }

  const std::string& error() const { return error_; }
  bool Has(const std::string& name) const { return values_.count(name) > 0; }
  std::string Get(const std::string& name,
                  const std::string& dflt = "") const {
    auto it = values_.find(name);
    return it == values_.end() ? dflt : it->second;
  }
  int64_t GetInt(const std::string& name, int64_t dflt) const {
    auto it = values_.find(name);
    if (it == values_.end()) return dflt;
    int64_t v = dflt;
    ParseInt64(it->second, &v);
    return v;
  }
  double GetDouble(const std::string& name, double dflt) const {
    auto it = values_.find(name);
    if (it == values_.end()) return dflt;
    double v = dflt;
    ParseDouble(it->second, &v);
    return v;
  }

 private:
  std::map<std::string, std::string> values_;
  std::string error_;
};

int Usage() {
  std::fprintf(stderr, R"(usage: bench_workload [flags]
  --mode=closed|open    load discipline (default closed)
  --seed=S              workload + schedule seed (default 20230707)
  --workers=N           concurrent workers / connections (default 8)
  --requests=N          closed loop: requests per worker (default 8)
  --think-ms=N          closed loop: pause between a worker's requests
  --total=N             open loop: total requests (default 64)
  --qps=Q               open loop: target arrival rate (default 200)
  --distinct=N          distinct-query pool size (default 8)
  --flights-rows=N      flights dataset rows (default 20000)
  --target=router|socket  in-process Router or local real-socket daemon
  --connect=PORT        drive an external daemon on 127.0.0.1:PORT
  --max-inflight=N      admission cap on the local daemon (default = workers)
  --fault-plan=PLAN     seeded KG fault plan, e.g. "seed=7;timeout=0.2"
  --no-warm             skip warm start (first requests race lazy preprocess)
  --threads=N           pool size (default $MESA_NUM_THREADS)
  --deadline-ms=N       attach a deadline_ms field to every explain; the
                        summary then reports the deadline-hit rate and
                        cancellation-unwind latency (default 0 = none)
  --verify              assert every reply matches the serial oracle
                        (sheds / deadline_exceeded / cancelled exempt)
  --allow-disconnect    verify: also exempt transport failures — for runs
                        whose daemon is killed mid-load (drain chaos)
  --data-dir=DIR        write the generated datasets to DIR with stable
                        names instead of PID-unique /tmp files (DIR must
                        exist); files are kept, so an external daemon can
                        serve exactly what --verify's oracle loads
  --gen-only            with --data-dir: write the datasets, print the
                        matching mesa_serve --data spec, and exit
  --json=FILE           also write the machine-readable summary
)");
  return 1;
}

struct OnDiskDataset {
  std::string name;
  std::string csv_path;
  std::string kg_path;
  std::vector<std::string> extraction_columns;
  std::vector<std::string> subgroup_attributes;
  loadgen::WorkloadDataset workload;
};

// Generates `kind`, writes it to PID-unique temp files (the form every
// serving path loads) — or to stable names under `dir` when non-empty,
// so a separately started daemon can serve the identical bytes — and
// builds the workload draw pools.
OnDiskDataset WriteDataset(DatasetKind kind, const std::string& name,
                           size_t rows,
                           std::vector<std::string> subgroup_attributes,
                           const std::string& dir) {
  GenOptions gen;
  gen.rows = rows;
  auto ds = MakeDataset(kind, gen);
  MESA_CHECK(ds.ok());
  OnDiskDataset out;
  out.name = name;
  const std::string tag =
      dir.empty()
          ? "/tmp/bench_workload." + std::to_string(::getpid()) + "." + name
          : dir + "/" + name;
  out.csv_path = tag + ".csv";
  out.kg_path = tag + ".kg";
  MESA_CHECK(WriteCsvFile(ds->table, out.csv_path).ok());
  MESA_CHECK(WriteKgFile(*ds->kg, out.kg_path).ok());
  out.extraction_columns = ds->extraction_columns;
  out.subgroup_attributes = subgroup_attributes;
  out.workload = loadgen::MakeWorkloadDataset(
      name, ds->table, ds->extraction_columns, subgroup_attributes);
  return out;
}

Status BuildRouter(serve::Router* router,
                   const std::vector<OnDiskDataset>& datasets,
                   const std::string& fault_plan, bool warm) {
  for (const OnDiskDataset& dataset : datasets) {
    serve::Router::DatasetSpec spec;
    spec.name = dataset.name;
    spec.csv_path = dataset.csv_path;
    spec.kg_path = dataset.kg_path;
    spec.extraction_columns = dataset.extraction_columns;
    spec.options.fault_plan = fault_plan;
    MESA_RETURN_IF_ERROR(router->AddDataset(spec));
  }
  if (warm) MESA_RETURN_IF_ERROR(router->WarmStart());
  return Status::OK();
}

// The expected reply fields for one distinct query, from the serial
// oracle: a fresh Router over the same files, pool pinned to one
// thread, requests issued one at a time.
struct OracleReply {
  bool ok = false;
  std::string code;
  std::string report;
  std::string error;
};

std::vector<OracleReply> ComputeOracle(
    const std::vector<OnDiskDataset>& datasets,
    const std::vector<loadgen::WorkloadQuery>& queries,
    const std::string& fault_plan) {
  size_t pool_size = NumThreads();
  SetNumThreads(1);
  serve::RouterOptions options;
  options.max_inflight = 1;  // serial: one request ever in flight.
  serve::Router router(options);
  MESA_CHECK(BuildRouter(&router, datasets, fault_plan, true).ok());
  std::vector<OracleReply> oracle;
  oracle.reserve(queries.size());
  for (const loadgen::WorkloadQuery& query : queries) {
    auto handled = router.Handle(query.RequestLine());
    auto reply = serve::JsonValue::Parse(handled.reply_line);
    MESA_CHECK(reply.ok());
    OracleReply expected;
    expected.ok = reply->GetBool("ok");
    expected.code = reply->GetString("code");
    expected.report = reply->GetString("report");
    expected.error = reply->GetString("error");
    oracle.push_back(std::move(expected));
  }
  SetNumThreads(pool_size);
  return oracle;
}

// Compares every captured reply to the oracle. Exempt: sheds (admission
// outcomes), deadline_exceeded / cancelled (cancellation outcomes — a
// reply that *completes* under a deadline must still match), and, with
// `allow_disconnect`, transport failures (the daemon was killed
// mid-load). Returns the mismatch count.
size_t VerifyAgainstOracle(const loadgen::RunResult& result,
                           const std::vector<OracleReply>& oracle,
                           bool allow_disconnect) {
  size_t mismatches = 0;
  for (const loadgen::WorkerLog& log : result.logs) {
    for (const loadgen::LatencyRecord& record : log.records) {
      if (!record.ok && (record.code == "resource_exhausted" ||
                         record.code == "deadline_exceeded" ||
                         record.code == "cancelled")) {
        continue;
      }
      if (!record.ok && allow_disconnect && record.code == "transport") {
        continue;
      }
      const OracleReply& expected = oracle[record.query_index];
      if (record.ok != expected.ok || record.code != expected.code ||
          record.report != expected.report ||
          record.error != expected.error) {
        ++mismatches;
        if (mismatches <= 3) {
          std::fprintf(stderr,
                       "VERIFY MISMATCH worker=%zu request=%zu query=%zu "
                       "(ok=%d vs %d, code='%s' vs '%s')\n",
                       record.worker, record.request, record.query_index,
                       record.ok ? 1 : 0, expected.ok ? 1 : 0,
                       record.code.c_str(), expected.code.c_str());
        }
      }
    }
  }
  return mismatches;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv, 1);
  if (!flags.error().empty()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return Usage();
  }
  const std::string mode_name = flags.Get("mode", "closed");
  const std::string target_name = flags.Get("target", "router");
  if ((mode_name != "closed" && mode_name != "open") ||
      (target_name != "router" && target_name != "socket")) {
    return Usage();
  }
  if (flags.Has("threads")) {
    SetNumThreads(static_cast<size_t>(flags.GetInt("threads", 1)));
  }

  loadgen::DriverOptions driver;
  driver.mode = mode_name == "open" ? loadgen::LoadMode::kOpen
                                    : loadgen::LoadMode::kClosed;
  driver.seed = static_cast<uint64_t>(flags.GetInt("seed", 20230707));
  driver.workers = static_cast<size_t>(flags.GetInt("workers", 8));
  driver.requests_per_worker =
      static_cast<size_t>(flags.GetInt("requests", 8));
  driver.think_ns =
      static_cast<uint64_t>(flags.GetInt("think-ms", 0)) * 1000000ULL;
  driver.total_requests = static_cast<size_t>(flags.GetInt("total", 64));
  driver.target_qps = flags.GetDouble("qps", 200.0);
  driver.deadline_ms = static_cast<uint64_t>(flags.GetInt("deadline-ms", 0));
  const bool verify = flags.Has("verify");
  driver.capture_replies = verify;
  const std::string data_dir = flags.Get("data-dir");
  if (flags.Has("gen-only") && data_dir.empty()) {
    std::fprintf(stderr, "--gen-only needs --data-dir\n");
    return Usage();
  }

  // Datasets + seeded query pool.
  std::vector<OnDiskDataset> datasets;
  datasets.push_back(WriteDataset(DatasetKind::kCovid, "covid", 0,
                                  {"WHO_Region"}, data_dir));
  datasets.push_back(WriteDataset(
      DatasetKind::kFlights, "flights",
      static_cast<size_t>(flags.GetInt("flights-rows", 20000)),
      {"Origin_state"}, data_dir));

  if (flags.Has("gen-only")) {
    // Print the mesa_serve --data spec covering exactly these files, so
    // a harness can do: mesa_serve --data "$(bench_workload --gen-only
    // --data-dir=DIR)" and then drive it with --connect --data-dir=DIR.
    std::string spec;
    for (const OnDiskDataset& dataset : datasets) {
      if (!spec.empty()) spec += ';';
      spec += dataset.name + "=" + dataset.csv_path + ":" + dataset.kg_path +
              ":";
      for (size_t i = 0; i < dataset.extraction_columns.size(); ++i) {
        if (i > 0) spec += '+';
        spec += dataset.extraction_columns[i];
      }
    }
    std::printf("%s\n", spec.c_str());
    return 0;
  }

  loadgen::WorkloadOptions workload_options;
  workload_options.seed = driver.seed;
  workload_options.distinct_queries =
      static_cast<size_t>(flags.GetInt("distinct", 8));
  std::vector<loadgen::WorkloadDataset> pools;
  for (const OnDiskDataset& dataset : datasets) pools.push_back(dataset.workload);
  auto queries = loadgen::GenerateWorkload(pools, workload_options);
  MESA_CHECK(queries.ok());

  const std::string fault_plan = flags.Get("fault-plan");
  std::vector<OracleReply> oracle;
  if (verify) {
    std::printf("computing serial oracle over %zu distinct queries...\n",
                queries->size());
    oracle = ComputeOracle(datasets, *queries, fault_plan);
  }

  // The service under load + a target factory for it.
  serve::RouterOptions router_options;
  router_options.max_inflight = static_cast<size_t>(
      flags.GetInt("max-inflight", static_cast<int64_t>(driver.workers)));
  serve::Router router(router_options);
  serve::Server server(&router);
  loadgen::TargetFactory factory;
  uint16_t connect_port = 0;
  const bool external = flags.Has("connect");
  if (external) {
    connect_port = static_cast<uint16_t>(flags.GetInt("connect", 0));
  } else {
    Status built =
        BuildRouter(&router, datasets, fault_plan, !flags.Has("no-warm"));
    if (!built.ok()) {
      std::fprintf(stderr, "cannot build router: %s\n",
                   built.ToString().c_str());
      return 2;
    }
    if (target_name == "socket") {
      Status started = server.Start();
      if (!started.ok()) {
        std::fprintf(stderr, "cannot start server: %s\n",
                     started.ToString().c_str());
        return 2;
      }
      connect_port = server.port();
    }
  }
  if (!external && target_name == "router") {
    factory = [&](size_t) -> Result<std::unique_ptr<loadgen::RequestTarget>> {
      return std::unique_ptr<loadgen::RequestTarget>(
          new loadgen::RouterTarget(&router));
    };
  } else {
    factory = [&](size_t) -> Result<std::unique_ptr<loadgen::RequestTarget>> {
      MESA_ASSIGN_OR_RETURN(std::unique_ptr<loadgen::SocketTarget> target,
                            loadgen::SocketTarget::Connect(connect_port));
      return std::unique_ptr<loadgen::RequestTarget>(std::move(target));
    };
  }

  // Counter deltas: process-local registry for local targets, the
  // daemon's metrics verb for an external one.
  auto read_counters = [&]() -> loadgen::CounterMap {
    if (!external) {
      return loadgen::ReadProcessCounters(loadgen::DefaultCounterPrefixes());
    }
    auto probe = serve::Client::Connect(connect_port);
    if (!probe.ok()) return {};
    auto json = (*probe)->MetricsJson();
    if (!json.ok()) return {};
    auto counters =
        loadgen::ParseCountersJson(*json, loadgen::DefaultCounterPrefixes());
    return counters.ok() ? *counters : loadgen::CounterMap{};
  };

  loadgen::CounterMap before = read_counters();
  auto result = loadgen::RunWorkload(*queries, factory, driver);
  MESA_CHECK(result.ok());
  loadgen::CounterMap deltas = loadgen::CounterDelta(before, read_counters());

  loadgen::WorkloadSummary summary =
      loadgen::Summarize(driver, *result, queries->size(), std::move(deltas));
  std::printf("=== workload: %s-loop over covid+flights (target=%s) ===\n",
              summary.mode.c_str(),
              external ? "external daemon" : target_name.c_str());
  std::printf("%s", loadgen::SummaryToText(summary).c_str());

  int exit_code = 0;
  if (verify) {
    size_t mismatches =
        VerifyAgainstOracle(*result, oracle, flags.Has("allow-disconnect"));
    const size_t exempt =
        summary.shed + summary.deadline_exceeded + summary.cancelled;
    std::printf("verify: %zu replies checked against the serial oracle, "
                "%zu mismatches, %zu exempt (shed=%zu deadline_exceeded=%zu "
                "cancelled=%zu)\n",
                summary.attempted - exempt, mismatches, exempt, summary.shed,
                summary.deadline_exceeded, summary.cancelled);
    if (mismatches > 0) exit_code = 1;
  }
  if (flags.Has("json")) {
    Status written = loadgen::WriteSummaryJsonFile(summary, flags.Get("json"));
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      exit_code = 2;
    }
  }

  if (server.running()) server.Shutdown();
  if (data_dir.empty()) {
    // PID-unique temp files are ours alone; stable --data-dir files stay
    // (an external daemon may still be serving them).
    for (const OnDiskDataset& dataset : datasets) {
      std::remove(dataset.csv_path.c_str());
      std::remove(dataset.kg_path.c_str());
    }
  }
  return exit_code;
}

}  // namespace
}  // namespace bench
}  // namespace mesa

int main(int argc, char** argv) { return mesa::bench::Run(argc, argv); }
