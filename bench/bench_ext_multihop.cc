// Reproduces the §5.4 multi-hop extension experiment: extracting attributes
// 1, 2, and 3 hops deep in the KG. The paper reports that explanations are
// mostly unaffected (relevant information lives in the first hop) while the
// candidate space and running times grow.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/logging.h"

namespace mesa {
namespace bench {
namespace {

void Run() {
  std::printf("=== §5.4: effect of multi-hop extraction ===\n");
  for (DatasetKind kind :
       {DatasetKind::kStackOverflow, DatasetKind::kCovid}) {
    std::printf("\n--- %s ---\n", DatasetKindName(kind));
    std::printf("  %s %s %s %s %s\n", Pad("hops", 5).c_str(),
                Pad("#extracted", 11).c_str(), Pad("prep_s", 8).c_str(),
                Pad("explain_s", 10).c_str(), "explanation (Q1)");
    const QuerySpec query = CanonicalQueries(kind)[0].query;
    for (size_t hops : {1u, 2u, 3u}) {
      MesaOptions opts;
      opts.extraction.hops = hops;
      BenchWorld world = MakeBenchWorld(kind, BenchRows(kind), opts);
      Timer prep;
      MESA_CHECK(world.mesa->Preprocess().ok());
      double prep_s = prep.Seconds();
      Timer timer;
      auto rep = world.mesa->Explain(query);
      MESA_CHECK(rep.ok());
      std::printf("  %s %s %-8.2f %-10.2f %s\n",
                  Pad(std::to_string(hops), 5).c_str(),
                  Pad(std::to_string(world.mesa->kg_columns().size()), 11)
                      .c_str(),
                  prep_s, timer.Seconds(),
                  rep->explanation.ToString().c_str());
      if (hops == 2) {
        // §7 future work: which links were worth following?
        auto links = world.mesa->RankLinks(query);
        if (links.ok()) {
          for (const auto& l : *links) {
            std::printf("        link '%s' -> best %s (I=%.3f of base "
                        "%.3f, %zu attrs)\n",
                        l.link.c_str(), l.best_attribute.c_str(),
                        l.best_cmi, rep->base_cmi, l.attributes);
          }
        }
      }
    }
  }
  std::printf(
      "\nShape check (paper): hop 2 adds leader_* attributes (rarely used\n"
      "in explanations); hop 3 adds nothing relevant; candidate counts and\n"
      "times grow with hops.\n");
}

}  // namespace
}  // namespace bench
}  // namespace mesa

int main() {
  mesa::bench::Run();
  return 0;
}
