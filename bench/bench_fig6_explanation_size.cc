// Reproduces Figure 6: running time as a function of the bound k on the
// explanation size. MCIMR treats k as an upper bound and stops via the
// responsibility test, so k has almost no effect once it exceeds the
// natural explanation size (<= 3 in the paper's runs).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/logging.h"

namespace mesa {
namespace bench {
namespace {

void RunDataset(DatasetKind kind) {
  BenchWorld world = MakeBenchWorld(kind, BenchRows(kind));
  const QuerySpec query = CanonicalQueries(kind)[0].query;
  auto pq = world.mesa->PrepareQuery(query);
  MESA_CHECK(pq.ok());

  std::printf("\n--- %s ---\n", DatasetKindName(kind));
  std::printf("  %s %s %s\n", Pad("k", 4).c_str(), Pad("seconds", 10).c_str(),
              Pad("|explanation|", 14).c_str());
  for (size_t k = 1; k <= 8; ++k) {
    McimrOptions opts;
    opts.max_size = k;
    Timer timer;
    Explanation ex = RunMcimr(*pq->analysis, pq->candidate_indices, opts);
    std::printf("  %s %-10.3f %zu\n", Pad(std::to_string(k), 4).c_str(),
                timer.Seconds(), ex.attribute_names.size());
  }
}

void Run() {
  std::printf("=== Figure 6: runtime vs bound on explanation size ===\n");
  std::printf("(cached estimator calls are reused across k, as in an\n"
              "interactive session; the first sweep value pays the cost)\n");
  RunDataset(DatasetKind::kStackOverflow);
  RunDataset(DatasetKind::kFlights);
  RunDataset(DatasetKind::kForbes);
  std::printf(
      "\nShape check (paper): explanations never exceed ~3 attributes, so\n"
      "k has almost no effect on running time.\n");
}

}  // namespace
}  // namespace bench
}  // namespace mesa

int main() {
  mesa::bench::Run();
  return 0;
}
