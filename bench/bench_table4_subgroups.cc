// Reproduces Table 4: the top-5 largest unexplained data groups for SO Q1
// (Algorithm 2), plus average subgroup-search time over all SO queries
// (the paper reports 4.4s on its hardware).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/logging.h"

namespace mesa {
namespace bench {
namespace {

void Run() {
  std::printf("=== Table 4: top-5 unexplained groups for SO Q1 ===\n");
  BenchWorld world = MakeBenchWorld(DatasetKind::kStackOverflow,
                                    BenchRows(DatasetKind::kStackOverflow));
  auto queries = CanonicalQueries(DatasetKind::kStackOverflow);
  auto rep = world.mesa->Explain(queries[0].query);
  MESA_CHECK(rep.ok());
  std::printf("explanation for SO Q1: %s (I(O;T|E)=%.3f of base %.3f)\n",
              rep->explanation.ToString().c_str(), rep->final_cmi,
              rep->base_cmi);

  SubgroupOptions opts;
  opts.top_k = 5;
  opts.threshold = 0.05 * rep->base_cmi;
  opts.refinement_attributes = {"Continent", "Gender", "DevType", "Hobby"};
  Timer timer;
  auto groups = world.mesa->FindSubgroups(
      queries[0].query, rep->explanation.attribute_names, opts);
  MESA_CHECK(groups.ok());
  double q1_seconds = timer.Seconds();

  std::printf("\n%s %s %s %s\n", Pad("Rank", 5).c_str(), Pad("Size", 8).c_str(),
              Pad("Score", 7).c_str(), "Data group");
  size_t rank = 1;
  for (const auto& g : *groups) {
    std::printf("%s %s %-7.3f %s\n", Pad(std::to_string(rank++), 5).c_str(),
                Pad(std::to_string(g.size), 8).c_str(), g.score,
                g.refinement.ToString().c_str());
  }

  // Average over the other SO queries (paper: 4.4s average).
  double total = q1_seconds;
  size_t count = 1;
  for (size_t qi = 1; qi < queries.size(); ++qi) {
    auto r = world.mesa->Explain(queries[qi].query);
    if (!r.ok()) continue;
    Timer t;
    auto g = world.mesa->FindSubgroups(queries[qi].query,
                                       r->explanation.attribute_names, opts);
    if (!g.ok()) continue;
    total += t.Seconds();
    ++count;
  }
  std::printf("\naverage subgroup-search time over %zu SO queries: %.2fs\n",
              count, total / static_cast<double>(count));
  std::printf(
      "\nShape check (paper): the top unexplained groups are continent-level\n"
      "slices (internally consistent economies), led by the biggest ones.\n");
}

}  // namespace
}  // namespace bench
}  // namespace mesa

int main() {
  mesa::bench::Run();
  return 0;
}
