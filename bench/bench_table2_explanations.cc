// Reproduces Table 2: the explanations every method produces for the 14
// representative queries. Brute-Force runs only where feasible (it is
// exponential; the paper reports it on the small Covid-19/Forbes datasets
// only — we let it run wherever the pruned candidate set keeps it cheap).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/logging.h"

namespace mesa {
namespace bench {
namespace {

void Run() {
  std::printf("=== Table 2: explanations per query and method ===\n");
  for (DatasetKind kind : AllDatasetKinds()) {
    BenchWorld world = MakeBenchWorld(kind, BenchRows(kind));
    for (const BenchQuery& bq : CanonicalQueries(kind)) {
      auto pq = world.mesa->PrepareQuery(bq.query);
      MESA_CHECK(pq.ok());
      std::vector<size_t> unpruned(pq->analysis->attributes().size());
      for (size_t i = 0; i < unpruned.size(); ++i) unpruned[i] = i;
      bool bf_feasible = pq->candidate_indices.size() <= 40;
      auto results = RunAllMethods(*pq->analysis, pq->candidate_indices,
                                   unpruned, 5, bf_feasible);
      std::printf("\n%s — %s\n", bq.id.c_str(), bq.description.c_str());
      std::printf("  %s\n", bq.query.ToSql().c_str());
      std::printf("  ground truth: ");
      for (size_t i = 0; i < bq.ground_truth.size(); ++i) {
        std::printf("%s[%s]", i ? "  " : "", bq.ground_truth[i].c_str());
      }
      std::printf("\n");
      for (Method m : AllMethods()) {
        auto it = results.find(m);
        if (it == results.end()) {
          std::printf("  %s -\n", Pad(MethodName(m), 12).c_str());
          continue;
        }
        const MethodResult& r = it->second;
        if (!r.ok) {
          std::printf("  %s (%s)\n", Pad(MethodName(m), 12).c_str(),
                      r.error.c_str());
          continue;
        }
        std::printf("  %s %s  [I(O;T|E)=%.3f, %.2fs]\n",
                    Pad(MethodName(m), 12).c_str(),
                    r.explanation.attribute_names.empty()
                        ? "-"
                        : SetToString(r.explanation.attribute_names).c_str(),
                    r.explanation.final_cmi, r.seconds);
      }
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace mesa

int main() {
  mesa::bench::Run();
  return 0;
}
