#include "bench/bench_util.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <thread>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "info/info_cache.h"
#include "common/string_util.h"
#include "core/baselines/brute_force.h"
#include "core/baselines/hypdb.h"
#include "core/baselines/lr_explainer.h"
#include "core/baselines/top_k.h"

namespace mesa {
namespace bench {

const char* MethodName(Method m) {
  switch (m) {
    case Method::kBruteForce:
      return "Brute-Force";
    case Method::kMesaMinus:
      return "MESA-";
    case Method::kMesa:
      return "MESA";
    case Method::kTopK:
      return "Top-K";
    case Method::kLr:
      return "LR";
    case Method::kHypDb:
      return "HypDB";
  }
  return "?";
}

std::vector<Method> AllMethods() {
  return {Method::kBruteForce, Method::kMesaMinus, Method::kMesa,
          Method::kTopK,       Method::kLr,        Method::kHypDb};
}

std::map<Method, MethodResult> RunAllMethods(
    const QueryAnalysis& analysis, const std::vector<size_t>& pruned,
    const std::vector<size_t>& unpruned, size_t k, bool include_brute_force) {
  std::map<Method, MethodResult> out;

  auto run = [&](Method m, auto&& fn) {
    Timer timer;
    MethodResult r;
    fn(&r);
    r.seconds = timer.Seconds();
    out.emplace(m, std::move(r));
  };

  McimrOptions mcimr;
  mcimr.max_size = k;
  run(Method::kMesa, [&](MethodResult* r) {
    r->explanation = RunMcimr(analysis, pruned, mcimr);
  });
  run(Method::kMesaMinus, [&](MethodResult* r) {
    r->explanation = RunMcimr(analysis, unpruned, mcimr);
  });
  run(Method::kTopK, [&](MethodResult* r) {
    r->explanation = RunTopK(analysis, pruned, k);
  });
  run(Method::kLr, [&](MethodResult* r) {
    LrExplainerOptions opts;
    opts.max_size = k;
    auto lr = RunLrExplainer(analysis, pruned, opts);
    if (lr.ok()) {
      r->explanation = std::move(*lr);
    } else {
      r->ok = false;
      r->error = lr.status().ToString();
    }
  });
  run(Method::kHypDb, [&](MethodResult* r) {
    HypDbOptions opts;
    opts.max_size = k;
    // The paper had to subsample HypDB's candidates to <= 50 of ~460-708
    // extracted attributes (~11%) to make it terminate; our synthetic KG
    // carries proportionally fewer candidates, so the cap scales with the
    // pool to reproduce the same information loss.
    opts.max_attributes = std::max<size_t>(5, pruned.size() / 6);
    auto hy = RunHypDb(analysis, pruned, opts);
    if (hy.ok()) {
      r->explanation = std::move(*hy);
    } else {
      r->ok = false;
      r->error = hy.status().ToString();
    }
  });
  if (include_brute_force) {
    run(Method::kBruteForce, [&](MethodResult* r) {
      BruteForceOptions opts;
      opts.max_size = std::min<size_t>(k, 3);  // as in the paper: feasible k
      auto bf = RunBruteForce(analysis, pruned, opts);
      if (bf.ok()) {
        r->explanation = std::move(*bf);
      } else {
        r->ok = false;
        r->error = bf.status().ToString();
      }
    });
  }
  return out;
}

double QualityScore(const std::vector<std::string>& explanation,
                    const std::vector<std::string>& ground_truth_groups) {
  if (explanation.empty()) return 1.0;  // "does not make sense" floor
  // Which truth group (if any) does each pick belong to?
  std::vector<std::set<std::string>> groups;
  for (const auto& g : ground_truth_groups) {
    auto alts = Split(g, '|');
    groups.emplace_back(alts.begin(), alts.end());
  }
  // Classify picks: first hit of a group (what raters reward), redundant
  // repeat of a covered group (mildly annoying — the paper's raters marked
  // Top-K down for Year Low F + Year Avg F), or junk (an attribute with no
  // causal role — what sinks an explanation's credibility hardest).
  std::set<size_t> covered;
  double first_hits = 0, junk = 0;
  for (const auto& pick : explanation) {
    bool matched = false;
    for (size_t gi = 0; gi < groups.size(); ++gi) {
      if (groups[gi].count(pick) > 0) {
        matched = true;
        if (covered.insert(gi).second) first_hits += 1.0;
        break;
      }
    }
    if (!matched) junk += 1.0;
  }
  double coverage =
      static_cast<double>(covered.size()) / static_cast<double>(groups.size());
  // Junk is penalised harder than redundancy: a redundant pick merely
  // dilutes, a junk pick actively argues against the explanation.
  double credibility =
      std::max(0.0, (first_hits - 1.5 * junk) /
                        static_cast<double>(explanation.size()));
  return 1.0 + 4.0 * (0.55 * coverage + 0.45 * credibility);
}

std::string Pad(const std::string& s, size_t width) {
  if (s.size() >= width) return s.substr(0, width);
  return s + std::string(width - s.size(), ' ');
}

std::string SetToString(const std::vector<std::string>& names) {
  std::string out = "{";
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ", ";
    out += names[i];
  }
  out += "}";
  return out;
}

size_t BenchRows(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kStackOverflow:
      return 30'000;
    case DatasetKind::kCovid:
      return 0;  // paper default (188)
    case DatasetKind::kFlights:
      return 60'000;
    case DatasetKind::kForbes:
      return 0;  // paper default (1647)
  }
  return 0;
}

std::vector<ThreadTiming> TimeAtThreadCounts(
    const std::function<void()>& fn, std::vector<size_t> thread_counts) {
  if (thread_counts.empty()) {
    unsigned hw = std::thread::hardware_concurrency();
    size_t top = hw == 0 ? 4 : static_cast<size_t>(hw);
    thread_counts = {1, 2};
    if (top > 2) thread_counts.push_back(top);  // skip dup on small machines
  }
  const size_t prev = NumThreads();
  std::vector<ThreadTiming> out;
  for (size_t threads : thread_counts) {
    SetNumThreads(threads);
    Timer timer;
    fn();
    out.push_back({threads, timer.Seconds()});
  }
  SetNumThreads(prev);
  return out;
}

std::string ThreadSweepJson(const std::string& label,
                            const std::vector<ThreadTiming>& timings) {
  std::string out = "{\"bench\":\"" + label + "\",\"thread_sweep\":[";
  char buf[64];
  for (size_t i = 0; i < timings.size(); ++i) {
    if (i > 0) out += ",";
    std::snprintf(buf, sizeof(buf), "{\"threads\":%zu,\"seconds\":%.6f}",
                  timings[i].threads, timings[i].seconds);
    out += buf;
  }
  out += "]}";
  return out;
}

EvalCounts ReadEvalCounts() {
  EvalCounts c;
  c.cmi = metrics::CounterValue("info/cmi_evals");
  c.mi = metrics::CounterValue("info/mi_evals");
  c.entropy = metrics::CounterValue("info/entropy_evals");
  c.ci_tests = metrics::CounterValue("info/ci_tests");
  return c;
}

EvalCounts operator-(const EvalCounts& a, const EvalCounts& b) {
  EvalCounts c;
  c.cmi = a.cmi - b.cmi;
  c.mi = a.mi - b.mi;
  c.entropy = a.entropy - b.entropy;
  c.ci_tests = a.ci_tests - b.ci_tests;
  return c;
}

std::string EvalCountsToString(const EvalCounts& c) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "cmi=%llu mi=%llu H=%llu ci=%llu",
                static_cast<unsigned long long>(c.cmi),
                static_cast<unsigned long long>(c.mi),
                static_cast<unsigned long long>(c.entropy),
                static_cast<unsigned long long>(c.ci_tests));
  return buf;
}

double InfoKernelSeconds() {
  metrics::Snapshot snap = metrics::TakeSnapshot();
  double ns = 0.0;
  for (const auto& [name, stats] : snap.distributions) {
    size_t pos = name.rfind('/');
    const std::string seg =
        pos == std::string::npos ? name : name.substr(pos + 1);
    if (seg == "cmi" || seg == "mi" || seg == "entropy" ||
        seg == "cond_entropy") {
      ns += stats.sum;
    }
  }
  return ns / 1e9;
}

InfoCacheDelta ReadInfoCacheCounters() {
  info_cache::Stats s = info_cache::GetStats();
  InfoCacheDelta d;
  d.scalar_hits = s.scalar_hits;
  d.scalar_misses = s.scalar_misses;
  d.cube_hits = s.cube_hits;
  d.cube_misses = s.cube_misses;
  d.evictions = s.scalar_evictions + s.cube_evictions;
  return d;
}

InfoCacheDelta operator-(const InfoCacheDelta& a, const InfoCacheDelta& b) {
  InfoCacheDelta d;
  d.scalar_hits = a.scalar_hits - b.scalar_hits;
  d.scalar_misses = a.scalar_misses - b.scalar_misses;
  d.cube_hits = a.cube_hits - b.cube_hits;
  d.cube_misses = a.cube_misses - b.cube_misses;
  d.evictions = a.evictions - b.evictions;
  return d;
}

std::string InfoCacheDeltaToString(const InfoCacheDelta& d) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "scalar %llu/%llu cube %llu/%llu evict %llu",
                static_cast<unsigned long long>(d.scalar_hits),
                static_cast<unsigned long long>(d.scalar_misses),
                static_cast<unsigned long long>(d.cube_hits),
                static_cast<unsigned long long>(d.cube_misses),
                static_cast<unsigned long long>(d.evictions));
  return buf;
}

BenchWorld MakeBenchWorld(DatasetKind kind, size_t rows, MesaOptions options) {
  GenOptions gen;
  gen.rows = rows;
  auto ds = MakeDataset(kind, gen);
  MESA_CHECK(ds.ok());
  BenchWorld world{std::move(*ds), nullptr};
  world.mesa = std::make_unique<Mesa>(world.dataset.table,
                                      world.dataset.kg.get(),
                                      world.dataset.extraction_columns,
                                      std::move(options));
  return world;
}

}  // namespace bench
}  // namespace mesa
