// Reproduces Figure 4: running time as a function of the number of
// candidate attributes, for No-Pruning (MCIMR over everything), Offline
// Pruning only, and full MCIMR (offline + online pruning). The candidate
// space is scaled by growing the synthetic KG's per-entity attribute
// vocabulary, so preparation, pruning, and selection all see the larger
// |A| — matching the paper's protocol of varying the extracted set.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/logging.h"

namespace mesa {
namespace bench {
namespace {

struct VariantTimes {
  size_t candidates = 0;
  double no_pruning = 0.0;
  double offline_only = 0.0;
  double full = 0.0;
  // CMI-estimator evaluations per variant (the paper's cost unit; what
  // pruning actually saves). Zero when built with MESA_METRICS=OFF.
  uint64_t no_pruning_evals = 0;
  uint64_t offline_only_evals = 0;
  uint64_t full_evals = 0;
};

VariantTimes TimeAtWidth(DatasetKind kind, size_t rows, size_t noise_attrs) {
  GenOptions gen;
  gen.rows = rows;
  gen.kg_noise_attributes = noise_attrs;
  auto ds = MakeDataset(kind, gen);
  MESA_CHECK(ds.ok());
  const QuerySpec query = CanonicalQueries(kind)[0].query;

  VariantTimes out;
  auto run = [&](bool offline, bool online, double* seconds,
                 uint64_t* evals) {
    MesaOptions options;
    options.enable_offline_pruning = offline;
    options.enable_online_pruning = online;
    Mesa mesa(ds->table, ds->kg.get(), ds->extraction_columns, options);
    EvalCounts before = ReadEvalCounts();
    Timer timer;
    auto rep = mesa.Explain(query);
    MESA_CHECK(rep.ok());
    *seconds = timer.Seconds();
    *evals = (ReadEvalCounts() - before).cmi;
    out.candidates = std::max(out.candidates, rep->candidates_total);
  };
  run(false, false, &out.no_pruning, &out.no_pruning_evals);
  run(true, false, &out.offline_only, &out.offline_only_evals);
  run(true, true, &out.full, &out.full_evals);
  return out;
}

void RunDataset(DatasetKind kind) {
  size_t rows = kind == DatasetKind::kFlights ? 40000 : BenchRows(kind);
  std::printf("\n--- %s (%zu rows) ---\n", DatasetKindName(kind), rows);
  std::printf("  %s %s %s %s %s\n", Pad("#candidates", 12).c_str(),
              Pad("No-Pruning", 12).c_str(), Pad("Offline", 12).c_str(),
              Pad("MCIMR", 12).c_str(), Pad("cmi evals (np/off/full)", 24).c_str());
  for (size_t noise : {6u, 20u, 48u, 96u}) {
    VariantTimes t = TimeAtWidth(kind, rows, noise);
    std::printf("  %s %-12.3f %-12.3f %-12.3f %llu/%llu/%llu\n",
                Pad(std::to_string(t.candidates), 12).c_str(), t.no_pruning,
                t.offline_only, t.full,
                static_cast<unsigned long long>(t.no_pruning_evals),
                static_cast<unsigned long long>(t.offline_only_evals),
                static_cast<unsigned long long>(t.full_evals));
  }
}

void Run() {
  std::printf("=== Figure 4: runtime vs number of candidate attributes ===\n");
  std::printf("(seconds per explanation, end to end: extraction already "
              "cached,\n prepare + prune + MCIMR timed)\n");
  RunDataset(DatasetKind::kStackOverflow);
  RunDataset(DatasetKind::kFlights);
  RunDataset(DatasetKind::kForbes);
  std::printf(
      "\nShape check (paper): near-linear growth in |A|; No-Pruning is the\n"
      "slowest; on the small Forbes dataset online pruning overhead can\n"
      "exceed its savings.\n");
}

}  // namespace
}  // namespace bench
}  // namespace mesa

int main() {
  mesa::bench::Run();
  return 0;
}
