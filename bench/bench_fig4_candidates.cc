// Reproduces Figure 4: running time as a function of the number of
// candidate attributes, for No-Pruning (MCIMR over everything), Offline
// Pruning only, and full MCIMR (offline + online pruning). The candidate
// space is scaled by growing the synthetic KG's per-entity attribute
// vocabulary, so preparation, pruning, and selection all see the larger
// |A| — matching the paper's protocol of varying the extracted set.

#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "kg/endpoint.h"
#include "kg/extractor.h"
#include "kg/resilient_client.h"

namespace mesa {
namespace bench {
namespace {

struct VariantTimes {
  size_t candidates = 0;
  double no_pruning = 0.0;
  double offline_only = 0.0;
  double full = 0.0;
  // CMI-estimator evaluations per variant (the paper's cost unit; what
  // pruning actually saves). Zero when built with MESA_METRICS=OFF.
  uint64_t no_pruning_evals = 0;
  uint64_t offline_only_evals = 0;
  uint64_t full_evals = 0;
};

VariantTimes TimeAtWidth(DatasetKind kind, size_t rows, size_t noise_attrs) {
  GenOptions gen;
  gen.rows = rows;
  gen.kg_noise_attributes = noise_attrs;
  auto ds = MakeDataset(kind, gen);
  MESA_CHECK(ds.ok());
  const QuerySpec query = CanonicalQueries(kind)[0].query;

  VariantTimes out;
  auto run = [&](bool offline, bool online, double* seconds,
                 uint64_t* evals) {
    MesaOptions options;
    options.enable_offline_pruning = offline;
    options.enable_online_pruning = online;
    Mesa mesa(ds->table, ds->kg.get(), ds->extraction_columns, options);
    EvalCounts before = ReadEvalCounts();
    Timer timer;
    auto rep = mesa.Explain(query);
    MESA_CHECK(rep.ok());
    *seconds = timer.Seconds();
    *evals = (ReadEvalCounts() - before).cmi;
    out.candidates = std::max(out.candidates, rep->candidates_total);
  };
  run(false, false, &out.no_pruning, &out.no_pruning_evals);
  run(true, false, &out.offline_only, &out.offline_only_evals);
  run(true, true, &out.full, &out.full_evals);
  return out;
}

void RunDataset(DatasetKind kind) {
  size_t rows = kind == DatasetKind::kFlights ? 40000 : BenchRows(kind);
  std::printf("\n--- %s (%zu rows) ---\n", DatasetKindName(kind), rows);
  std::printf("  %s %s %s %s %s\n", Pad("#candidates", 12).c_str(),
              Pad("No-Pruning", 12).c_str(), Pad("Offline", 12).c_str(),
              Pad("MCIMR", 12).c_str(), Pad("cmi evals (np/off/full)", 24).c_str());
  for (size_t noise : {6u, 20u, 48u, 96u}) {
    VariantTimes t = TimeAtWidth(kind, rows, noise);
    std::printf("  %s %-12.3f %-12.3f %-12.3f %llu/%llu/%llu\n",
                Pad(std::to_string(t.candidates), 12).c_str(), t.no_pruning,
                t.offline_only, t.full,
                static_cast<unsigned long long>(t.no_pruning_evals),
                static_cast<unsigned long long>(t.offline_only_evals),
                static_cast<unsigned long long>(t.full_evals));
  }
}

// Resilience overhead: the extraction's KG lookup sequence (Resolve each
// distinct key, Properties for each linked entity — hops = 1) straight
// off the TripleStore vs through ResilientKgClient over a fault-free
// LocalEndpoint (the path the Mesa pipeline now uses; see
// docs/robustness.md). A single pass is tens of microseconds — far below
// the timing noise of a busy host — so each arm is timed in alternating
// ~0.25 s blocks of many passes and compared at the best block. The
// per-pass delta is then expressed against the wall time of the full
// extraction+augmentation it rides in: that ratio is what the < 2%
// budget bounds. The client is rebuilt per pass so its response cache
// never carries across passes — every pass pays the full lookup load,
// exactly like the raw arm.
void RunResilienceOverhead() {
  auto ds = MakeDataset(DatasetKind::kStackOverflow, GenOptions{20000});
  MESA_CHECK(ds.ok());
  const TripleStore* kg = ds->kg.get();
  const EntityLinkerOptions lopts;

  // The distinct lookup keys of the extraction, exactly as the extractor
  // derives them (sorted distinct values per extraction column).
  std::vector<std::string> keys;
  for (const std::string& column : ds->extraction_columns) {
    auto col = ds->table.ColumnByName(column);
    MESA_CHECK(col.ok());
    std::set<std::string> distinct;
    for (size_t r = 0; r < (*col)->size(); ++r) {
      if ((*col)->IsValid(r)) distinct.insert((*col)->StringAt(r));
    }
    keys.insert(keys.end(), distinct.begin(), distinct.end());
  }

  size_t lookups = 0;
  auto raw_pass = [&]() -> size_t {
    size_t sink = 0;
    EntityLinker linker(kg, lopts);
    for (const std::string& key : keys) {
      LinkResult link = linker.Link(key);
      if (!link.linked()) continue;
      for (const Triple* t : kg->PropertiesOf(*link.entity)) {
        sink += kg->predicate_name(t->predicate).size() +
                (t->object.is_entity()
                     ? kg->entity(t->object.entity).label.size()
                     : 1);
      }
    }
    return sink;
  };
  auto client_pass = [&]() -> size_t {
    size_t sink = 0;
    ResilientKgClient client(std::make_shared<LocalEndpoint>(kg));
    for (const std::string& key : keys) {
      Result<LinkResult> link = client.Resolve(key, lopts);
      MESA_CHECK(link.ok());
      if (!link->linked()) continue;
      Result<std::vector<KgProperty>> props =
          client.Properties(*link->entity);
      MESA_CHECK(props.ok());
      for (const KgProperty& p : *props) {
        sink += p.predicate.size() +
                (p.is_entity ? p.entity_label.size() : 1);
      }
    }
    lookups = client.counters().calls;
    return sink;
  };

  volatile size_t sink = raw_pass() + client_pass();  // warm-up
  // Size one timed block to ~0.25 s of passes.
  size_t passes = 1;
  {
    Timer t;
    sink = sink + raw_pass();
    double one = std::max(t.Seconds(), 1e-6);
    passes = std::max<size_t>(1, static_cast<size_t>(0.25 / one));
  }
  constexpr int kCycles = 3;
  double raw_best = 1e9, cli_best = 1e9;
  for (int c = 0; c < kCycles; ++c) {
    Timer tr;
    for (size_t i = 0; i < passes; ++i) sink = sink + raw_pass();
    raw_best = std::min(raw_best, tr.Seconds() / passes);
    Timer tc;
    for (size_t i = 0; i < passes; ++i) sink = sink + client_pass();
    cli_best = std::min(cli_best, tc.Seconds() / passes);
  }

  // The pipeline this overhead actually lands in.
  double augment_s = 1e9;
  for (int i = 0; i < 3; ++i) {
    ResilientKgClient client(std::make_shared<LocalEndpoint>(kg));
    Timer t;
    auto aug = AugmentTableFromKg(ds->table, ds->extraction_columns, &client);
    MESA_CHECK(aug.ok());
    augment_s = std::min(augment_s, t.Seconds());
  }

  double delta_ms = (cli_best - raw_best) * 1e3;
  std::printf(
      "\nresilient-client overhead (so, 20000 rows, fault rate 0,\n"
      "alternating ~0.25s A/B blocks, best of %d):\n"
      "  lookup sequence (%zu lookups): raw %.3fms, client %.3fms per pass\n"
      "  -> %+.3fms per extraction = %+.2f%% of the %.1fms "
      "extraction+augment (budget: < 2%%)\n",
      kCycles, lookups, raw_best * 1e3, cli_best * 1e3, delta_ms,
      100.0 * (cli_best - raw_best) / augment_s, augment_s * 1e3);
}

void Run() {
  std::printf("=== Figure 4: runtime vs number of candidate attributes ===\n");
  std::printf("(seconds per explanation, end to end: extraction already "
              "cached,\n prepare + prune + MCIMR timed)\n");
  RunDataset(DatasetKind::kStackOverflow);
  RunDataset(DatasetKind::kFlights);
  RunDataset(DatasetKind::kForbes);
  RunResilienceOverhead();
  std::printf(
      "\nShape check (paper): near-linear growth in |A|; No-Pruning is the\n"
      "slowest; on the small Forbes dataset online pruning overhead can\n"
      "exceed its savings.\n");
}

}  // namespace
}  // namespace bench
}  // namespace mesa

int main() {
  mesa::bench::Run();
  return 0;
}
