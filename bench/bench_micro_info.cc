// Micro-benchmarks (google-benchmark) for the information-theoretic
// estimator stack: entropy, MI, CMI (packed fast path vs generic fallback),
// code combination, weighted estimation, and the permutation independence
// test. These are the inner loops of MCIMR; Figure 4/5's scaling follows
// directly from their costs.

#include <benchmark/benchmark.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "info/cmi_kernel.h"
#include "info/contingency.h"
#include "info/independence.h"
#include "info/info_cache.h"
#include "info/mutual_information.h"

namespace mesa {
namespace {

CodedVariable RandomVar(size_t n, int32_t card, uint64_t seed,
                        double missing = 0.0) {
  Rng rng(seed);
  CodedVariable v;
  v.cardinality = card;
  v.codes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (missing > 0.0 && rng.NextBernoulli(missing)) {
      v.codes.push_back(-1);
    } else {
      v.codes.push_back(static_cast<int32_t>(rng.NextBelow(card)));
    }
  }
  return v;
}

void BM_Entropy(benchmark::State& state) {
  auto x = RandomVar(static_cast<size_t>(state.range(0)), 8, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Entropy(x));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Entropy)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void BM_MutualInformation(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto x = RandomVar(n, 8, 1);
  auto y = RandomVar(n, 8, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MutualInformation(x, y));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MutualInformation)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void BM_CmiPackedPath(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto x = RandomVar(n, 8, 1);
  auto y = RandomVar(n, 64, 2);
  auto z = RandomVar(n, 8, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ConditionalMutualInformation(x, y, z));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CmiPackedPath)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void BM_CmiGenericFallback(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto x = RandomVar(n, 8, 1);
  auto y = RandomVar(n, 64, 2);
  auto z = RandomVar(n, 8, 3);
  // Oversized declared cardinalities force the CombinePair fallback.
  x.cardinality = 1 << 30;
  z.cardinality = 1 << 30;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ConditionalMutualInformation(x, y, z));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CmiGenericFallback)->Arg(10'000)->Arg(100'000);

void BM_CmiWeighted(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto x = RandomVar(n, 8, 1, 0.2);
  auto y = RandomVar(n, 64, 2);
  auto z = RandomVar(n, 8, 3);
  Rng rng(4);
  std::vector<double> w(n);
  for (auto& v : w) v = rng.NextUniform(0.5, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ConditionalMutualInformation(x, y, z, &w));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CmiWeighted)->Arg(10'000)->Arg(100'000);

void BM_CombinePair(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto a = RandomVar(n, 16, 1);
  auto b = RandomVar(n, 16, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CombinePair(a, b));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CombinePair)->Arg(10'000)->Arg(100'000);

void BM_IndependenceTest(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(7);
  CodedVariable x, y, z = RandomVar(n, 4, 3);
  x.cardinality = y.cardinality = 3;
  for (size_t i = 0; i < n; ++i) {
    int32_t v = static_cast<int32_t>(rng.NextBelow(3));
    x.codes.push_back(v);
    y.codes.push_back(rng.NextBernoulli(0.6)
                          ? v
                          : static_cast<int32_t>(rng.NextBelow(3)));
  }
  IndependenceOptions opts;
  opts.num_permutations = 49;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ConditionalIndependenceTest(x, y, z, opts));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IndependenceTest)->Arg(10'000)->Arg(50'000);

void BM_IndependenceTestThreadSweep(benchmark::State& state) {
  // The permutation CI test at a fixed size across pool sizes: the
  // speedup trajectory (1 / 2 / 4 / 8 threads) lands in the benchmark
  // JSON. The p-value is bit-identical at every arg — only the wall time
  // moves (hence UseRealTime: the work runs on pool threads).
  const size_t n = 50'000;
  Rng rng(7);
  CodedVariable x, y, z = RandomVar(n, 4, 3);
  x.cardinality = y.cardinality = 3;
  for (size_t i = 0; i < n; ++i) {
    int32_t v = static_cast<int32_t>(rng.NextBelow(3));
    x.codes.push_back(v);
    y.codes.push_back(rng.NextBernoulli(0.6)
                          ? v
                          : static_cast<int32_t>(rng.NextBelow(3)));
  }
  IndependenceOptions opts;
  opts.num_permutations = 49;
  const size_t prev_threads = NumThreads();
  SetNumThreads(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ConditionalIndependenceTest(x, y, z, opts));
  }
  SetNumThreads(prev_threads);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_IndependenceTestThreadSweep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

// CMI kernel A/B: dense arena vs sort-packed vs legacy hash over the
// same triple, with the estimator caches bypassed so each iteration
// measures the kernel itself, not the scalar memo. arg0 = rows, arg1 =
// |Y| (x and z stay at 8, so arg1 sweeps the joint-key width: 64 → 12
// bits, 4096 → 18 bits, 65536 → 22 bits — past the 20-bit dense arena,
// where "dense" silently clamps to packed; see docs/performance.md §9).
void CmiKernelBench(benchmark::State& state, CmiKernel kernel) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto x = RandomVar(n, 8, 1);
  auto y = RandomVar(n, static_cast<int32_t>(state.range(1)), 2);
  auto z = RandomVar(n, 8, 3);
  info_cache::EphemeralScope no_cache;
  SetCmiKernelMode(kernel);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ConditionalMutualInformation(x, y, z));
  }
  SetCmiKernelMode(CmiKernel::kAuto);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_CmiKernelDense(benchmark::State& state) {
  CmiKernelBench(state, CmiKernel::kDense);
}
void BM_CmiKernelPacked(benchmark::State& state) {
  CmiKernelBench(state, CmiKernel::kPacked);
}
void BM_CmiKernelHash(benchmark::State& state) {
  CmiKernelBench(state, CmiKernel::kHash);
}
BENCHMARK(BM_CmiKernelDense)
    ->Args({100'000, 64})
    ->Args({100'000, 4'096})
    ->Args({100'000, 65'536})
    ->Args({1'000'000, 4'096});
BENCHMARK(BM_CmiKernelPacked)
    ->Args({100'000, 64})
    ->Args({100'000, 4'096})
    ->Args({100'000, 65'536})
    ->Args({1'000'000, 4'096});
BENCHMARK(BM_CmiKernelHash)
    ->Args({100'000, 64})
    ->Args({100'000, 4'096})
    ->Args({100'000, 65'536})
    ->Args({1'000'000, 4'096});

// The packed kernel's radix sort is morsel-parallel (the dense and hash
// kernels are single-threaded by construction): the 1M-row arm across
// pool sizes shows what the sweep buys. UseRealTime: work runs on pool
// threads.
void BM_CmiKernelPackedThreadSweep(benchmark::State& state) {
  const size_t n = 1'000'000;
  auto x = RandomVar(n, 8, 1);
  auto y = RandomVar(n, 4'096, 2);
  auto z = RandomVar(n, 8, 3);
  info_cache::EphemeralScope no_cache;
  SetCmiKernelMode(CmiKernel::kPacked);
  const size_t prev_threads = NumThreads();
  SetNumThreads(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ConditionalMutualInformation(x, y, z));
  }
  SetNumThreads(prev_threads);
  SetCmiKernelMode(CmiKernel::kAuto);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_CmiKernelPackedThreadSweep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

}  // namespace
}  // namespace mesa

BENCHMARK_MAIN();
