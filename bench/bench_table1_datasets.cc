// Reproduces Table 1: the examined datasets — row counts, the columns used
// for KG extraction, and the number of candidate attributes mined from the
// synthetic DBpedia stand-in (|E| in the paper).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/logging.h"

namespace mesa {
namespace bench {
namespace {

void Run() {
  std::printf("=== Table 1: Examined datasets ===\n");
  std::printf("%s %s %s %s %s\n", Pad("Dataset", 10).c_str(),
              Pad("n", 9).c_str(), Pad("|E|", 6).c_str(),
              Pad("KG triples", 11).c_str(), "Columns used for extraction");
  for (DatasetKind kind : AllDatasetKinds()) {
    BenchWorld world = MakeBenchWorld(kind, /*rows=*/0);  // paper sizes
    MESA_CHECK(world.mesa->Preprocess().ok());
    std::string cols;
    for (size_t i = 0; i < world.dataset.extraction_columns.size(); ++i) {
      if (i > 0) cols += ", ";
      cols += world.dataset.extraction_columns[i];
    }
    std::printf("%s %s %s %s %s\n", Pad(world.dataset.name, 10).c_str(),
                Pad(std::to_string(world.dataset.table.num_rows()), 9).c_str(),
                Pad(std::to_string(world.mesa->kg_columns().size()), 6).c_str(),
                Pad(std::to_string(world.dataset.kg->num_triples()), 11)
                    .c_str(),
                cols.c_str());
  }
  std::printf(
      "\nNote: |E| counts extracted attribute columns before pruning; the\n"
      "paper's 461-708 came from live DBpedia, our synthetic KG carries a\n"
      "curated vocabulary per entity class (plus noise/rank/id predicates).\n");
}

}  // namespace
}  // namespace bench
}  // namespace mesa

int main() {
  mesa::bench::Run();
  return 0;
}
