// Reproduces Figure 3: robustness of the explainability score to missing
// data. For SO and Covid-19, the fraction of missing values in the ten most
// outcome-relevant extracted attributes is swept from 0% to 70%, removing
// values either at random or biased (top values first). Three estimators
// are compared: MESA's IPW handling, naive complete-case analysis (bias
// handling off), and mean imputation. A robust method keeps the curve flat
// until most of the information is gone; imputation degrades immediately.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "missing/imputation.h"
#include "missing/mask.h"

namespace mesa {
namespace bench {
namespace {

enum class Handling { kIpw, kCompleteCase, kMeanImputation, kMultipleImputation };

const char* HandlingName(Handling h) {
  switch (h) {
    case Handling::kIpw:
      return "MESA (IPW)";
    case Handling::kCompleteCase:
      return "complete-case";
    case Handling::kMeanImputation:
      return "mean imputation";
    case Handling::kMultipleImputation:
      return "multiple imput.";
  }
  return "?";
}

// Explainability of MESA's explanation on a copy of the augmented table
// with extra missingness injected into the most relevant KG attributes.
double ScoreWithMissing(const Table& augmented, const QuerySpec& query,
                        const std::vector<std::string>& target_attrs,
                        double fraction, RemovalMode mode, Handling handling,
                        uint64_t seed) {
  Table damaged = augmented;  // deep copy
  Rng rng(seed);
  for (const auto& attr : target_attrs) {
    Status st = InjectMissing(&damaged, attr, fraction, mode, &rng).status();
    MESA_CHECK(st.ok());
  }

  auto analyze = [&](const Table& table, bool ipw) {
    PrepareOptions prep;
    prep.handle_selection_bias = ipw;
    auto qa = QueryAnalysis::Prepare(table, query, target_attrs, target_attrs,
                                     prep);
    MESA_CHECK(qa.ok());
    std::vector<size_t> all(qa->attributes().size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
    return RunMcimr(*qa, all).final_cmi;
  };

  switch (handling) {
    case Handling::kIpw:
      return analyze(damaged, true);
    case Handling::kCompleteCase:
      return analyze(damaged, false);
    case Handling::kMeanImputation: {
      for (const auto& attr : target_attrs) {
        MESA_CHECK(
            ImputeColumn(&damaged, attr, ImputationStrategy::kMeanOrMode)
                .ok());
      }
      return analyze(damaged, false);
    }
    case Handling::kMultipleImputation: {
      // Rubin-style pooling of the point estimate: average the analysis
      // over m independently hot-deck-imputed completions.
      constexpr int kImputations = 5;
      double sum = 0.0;
      for (int m = 0; m < kImputations; ++m) {
        Table copy = damaged;
        Rng imp_rng(seed * 131 + static_cast<uint64_t>(m));
        for (const auto& attr : target_attrs) {
          MESA_CHECK(ImputeColumn(&copy, attr, ImputationStrategy::kHotDeck,
                                  &imp_rng)
                         .ok());
        }
        sum += analyze(copy, false);
      }
      return sum / kImputations;
    }
  }
  return 0.0;
}

void RunDataset(DatasetKind kind) {
  BenchWorld world = MakeBenchWorld(
      kind, kind == DatasetKind::kStackOverflow ? 15000 : 0);
  MESA_CHECK(world.mesa->Preprocess().ok());
  auto aug = world.mesa->augmented_table();
  MESA_CHECK(aug.ok());
  const QuerySpec query = CanonicalQueries(kind)[0].query;

  // Rank extracted attributes by individual relevance to the outcome and
  // take the top 10 (the paper's protocol).
  auto pq = world.mesa->PrepareQuery(query);
  MESA_CHECK(pq.ok());
  std::vector<std::pair<double, std::string>> ranked;
  for (size_t idx : pq->candidate_indices) {
    const auto& attr = pq->analysis->attributes()[idx];
    if (!attr.from_kg) continue;
    // Biased removal (top values first) needs numeric attributes.
    auto col = (*aug)->ColumnByName(attr.name);
    if (!col.ok() || (*col)->type() == DataType::kString) continue;
    ranked.emplace_back(pq->analysis->CmiGivenAttribute(idx), attr.name);
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<std::string> targets;
  for (size_t i = 0; i < std::min<size_t>(10, ranked.size()); ++i) {
    targets.push_back(ranked[i].second);
  }

  std::printf("\n--- %s (query: %s) — top-%zu relevant attributes ---\n",
              DatasetKindName(kind), query.ToSql().c_str(), targets.size());
  for (RemovalMode mode : {RemovalMode::kRandom, RemovalMode::kTopValues}) {
    std::printf("removal: %s\n",
                mode == RemovalMode::kRandom ? "at random" : "biased (top values)");
    std::printf("  %s", Pad("handling \\ missing%", 18).c_str());
    for (int pct : {0, 10, 30, 50, 70}) std::printf(" %6d%%", pct);
    std::printf("\n");
    for (Handling h : {Handling::kIpw, Handling::kCompleteCase,
                       Handling::kMeanImputation,
                       Handling::kMultipleImputation}) {
      std::printf("  %s", Pad(HandlingName(h), 18).c_str());
      for (int pct : {0, 10, 30, 50, 70}) {
        double s = ScoreWithMissing(**aug, query, targets, pct / 100.0, mode,
                                    h, 1000 + pct);
        std::printf(" %7.3f", s);
      }
      std::printf("\n");
    }
  }
}

void Run() {
  std::printf("=== Figure 3: explainability vs missing data ===\n");
  RunDataset(DatasetKind::kStackOverflow);
  RunDataset(DatasetKind::kCovid);
  std::printf(
      "\nShape check (paper): IPW/complete-case stay nearly flat up to ~50%%\n"
      "missing; mean imputation degrades (scores drift upward) immediately.\n");
}

}  // namespace
}  // namespace bench
}  // namespace mesa

int main() {
  mesa::bench::Run();
  return 0;
}
