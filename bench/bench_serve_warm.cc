// Warm-vs-cold serving readout (docs/serving.md, docs/performance.md):
// what a resident mesa_serve daemon buys over one-shot mesa_cli runs.
//
// The cold path is what every `mesa_cli explain` pays: read the CSV and
// KG from disk, build a Mesa, extract + prune, then answer. The daemon
// pays that once at warm start; afterwards each request is query-time
// work only (plus the localhost socket round trip, which this in-process
// readout deliberately excludes so the numbers isolate the compute).
//
// Columns: cold = full one-shot; first = first request on a resident but
// un-warmed instance (lazy preprocessing); warm = steady-state request on
// the warm instance (the daemon's second request and beyond).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "core/report_format.h"
#include "kg/serialization.h"
#include "query/sql_parser.h"
#include "table/csv.h"

namespace mesa {
namespace bench {
namespace {

constexpr char kQuery[] =
    "SELECT Country, avg(Deaths_per_100_cases) FROM covid GROUP BY Country";
constexpr int kWarmRequests = 5;

// One full cold one-shot: load from disk, build, explain.
double ColdOneShot(const std::string& csv_path, const std::string& kg_path) {
  Timer timer;
  auto table = ReadCsvFile(csv_path);
  MESA_CHECK(table.ok());
  auto kg = ReadKgFile(kg_path);
  MESA_CHECK(kg.ok());
  Mesa mesa(std::move(*table), &*kg, {"Country", "WHO_Region"}, MesaOptions{});
  auto query = ParseQuery(kQuery);
  MESA_CHECK(query.ok());
  auto report = mesa.Explain(*query);
  MESA_CHECK(report.ok());
  MESA_CHECK(!FormatReport(*report).empty());
  return timer.Seconds();
}

void Run() {
  auto ds = MakeDataset(DatasetKind::kCovid, GenOptions{});
  MESA_CHECK(ds.ok());
  const std::string csv_path = "/tmp/bench_serve_warm.csv";
  const std::string kg_path = "/tmp/bench_serve_warm.kg";
  MESA_CHECK(WriteCsvFile(ds->table, csv_path).ok());
  MESA_CHECK(WriteKgFile(*ds->kg, kg_path).ok());

  auto query = ParseQuery(kQuery);
  MESA_CHECK(query.ok());

  // Cold: three one-shots (first also warms the page cache; report the
  // best, which is the fairest cold-compute figure).
  double cold = ColdOneShot(csv_path, kg_path);
  for (int i = 0; i < 2; ++i) {
    double t = ColdOneShot(csv_path, kg_path);
    if (t < cold) cold = t;
  }

  // Resident instance, loaded like the daemon loads it.
  auto table = ReadCsvFile(csv_path);
  MESA_CHECK(table.ok());
  auto kg = ReadKgFile(kg_path);
  MESA_CHECK(kg.ok());
  Mesa mesa(std::move(*table), &*kg, {"Country", "WHO_Region"}, MesaOptions{});

  // First request on the un-warmed instance pays lazy preprocessing.
  Timer first_timer;
  auto first = mesa.Explain(*query);
  MESA_CHECK(first.ok());
  double first_seconds = first_timer.Seconds();

  // Steady state: what every further daemon request costs.
  double warm_total = 0.0;
  for (int i = 0; i < kWarmRequests; ++i) {
    Timer timer;
    auto report = mesa.Explain(*query);
    MESA_CHECK(report.ok());
    warm_total += timer.Seconds();
  }
  double warm = warm_total / kWarmRequests;

  std::printf("=== Resident daemon: warm vs cold (covid, %zu rows) ===\n",
              ds->table.num_rows());
  std::printf("%s %s %s %s %s\n", Pad("query", 8).c_str(),
              Pad("cold ms", 9).c_str(), Pad("first ms", 9).c_str(),
              Pad("warm ms", 9).c_str(), Pad("cold/warm", 9).c_str());
  std::printf("%s %s %s %s %s\n", Pad("covid Q1", 8).c_str(),
              Pad(std::to_string(cold * 1e3).substr(0, 7), 9).c_str(),
              Pad(std::to_string(first_seconds * 1e3).substr(0, 7), 9).c_str(),
              Pad(std::to_string(warm * 1e3).substr(0, 7), 9).c_str(),
              Pad(std::to_string(cold / warm).substr(0, 6) + "x", 9).c_str());
  std::printf(
      "cold = load CSV+KG, build, extract, prune, explain (every mesa_cli "
      "run)\nfirst = resident instance, lazy preprocessing on request 1\n"
      "warm = resident instance, steady state (daemon request 2+)\n");

  std::remove(csv_path.c_str());
  std::remove(kg_path.c_str());
}

}  // namespace
}  // namespace bench
}  // namespace mesa

int main() {
  mesa::bench::Run();
  return 0;
}
