# Empty compiler generated dependencies file for mesa_tests.
# This may be replaced when dependencies are built.
