
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines_test.cc" "tests/CMakeFiles/mesa_tests.dir/baselines_test.cc.o" "gcc" "tests/CMakeFiles/mesa_tests.dir/baselines_test.cc.o.d"
  "/root/repo/tests/cli_test.cc" "tests/CMakeFiles/mesa_tests.dir/cli_test.cc.o" "gcc" "tests/CMakeFiles/mesa_tests.dir/cli_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/mesa_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/mesa_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/mesa_tests.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/mesa_tests.dir/core_test.cc.o.d"
  "/root/repo/tests/csv_test.cc" "tests/CMakeFiles/mesa_tests.dir/csv_test.cc.o" "gcc" "tests/CMakeFiles/mesa_tests.dir/csv_test.cc.o.d"
  "/root/repo/tests/datagen_test.cc" "tests/CMakeFiles/mesa_tests.dir/datagen_test.cc.o" "gcc" "tests/CMakeFiles/mesa_tests.dir/datagen_test.cc.o.d"
  "/root/repo/tests/info_test.cc" "tests/CMakeFiles/mesa_tests.dir/info_test.cc.o" "gcc" "tests/CMakeFiles/mesa_tests.dir/info_test.cc.o.d"
  "/root/repo/tests/kg_test.cc" "tests/CMakeFiles/mesa_tests.dir/kg_test.cc.o" "gcc" "tests/CMakeFiles/mesa_tests.dir/kg_test.cc.o.d"
  "/root/repo/tests/mesa_integration_test.cc" "tests/CMakeFiles/mesa_tests.dir/mesa_integration_test.cc.o" "gcc" "tests/CMakeFiles/mesa_tests.dir/mesa_integration_test.cc.o.d"
  "/root/repo/tests/missing_test.cc" "tests/CMakeFiles/mesa_tests.dir/missing_test.cc.o" "gcc" "tests/CMakeFiles/mesa_tests.dir/missing_test.cc.o.d"
  "/root/repo/tests/multi_exposure_test.cc" "tests/CMakeFiles/mesa_tests.dir/multi_exposure_test.cc.o" "gcc" "tests/CMakeFiles/mesa_tests.dir/multi_exposure_test.cc.o.d"
  "/root/repo/tests/property2_test.cc" "tests/CMakeFiles/mesa_tests.dir/property2_test.cc.o" "gcc" "tests/CMakeFiles/mesa_tests.dir/property2_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/mesa_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/mesa_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/query_test.cc" "tests/CMakeFiles/mesa_tests.dir/query_test.cc.o" "gcc" "tests/CMakeFiles/mesa_tests.dir/query_test.cc.o.d"
  "/root/repo/tests/report_format_test.cc" "tests/CMakeFiles/mesa_tests.dir/report_format_test.cc.o" "gcc" "tests/CMakeFiles/mesa_tests.dir/report_format_test.cc.o.d"
  "/root/repo/tests/serialization_test.cc" "tests/CMakeFiles/mesa_tests.dir/serialization_test.cc.o" "gcc" "tests/CMakeFiles/mesa_tests.dir/serialization_test.cc.o.d"
  "/root/repo/tests/sql_parser_test.cc" "tests/CMakeFiles/mesa_tests.dir/sql_parser_test.cc.o" "gcc" "tests/CMakeFiles/mesa_tests.dir/sql_parser_test.cc.o.d"
  "/root/repo/tests/stats_test.cc" "tests/CMakeFiles/mesa_tests.dir/stats_test.cc.o" "gcc" "tests/CMakeFiles/mesa_tests.dir/stats_test.cc.o.d"
  "/root/repo/tests/subgroups_test.cc" "tests/CMakeFiles/mesa_tests.dir/subgroups_test.cc.o" "gcc" "tests/CMakeFiles/mesa_tests.dir/subgroups_test.cc.o.d"
  "/root/repo/tests/table_ops_test.cc" "tests/CMakeFiles/mesa_tests.dir/table_ops_test.cc.o" "gcc" "tests/CMakeFiles/mesa_tests.dir/table_ops_test.cc.o.d"
  "/root/repo/tests/table_test.cc" "tests/CMakeFiles/mesa_tests.dir/table_test.cc.o" "gcc" "tests/CMakeFiles/mesa_tests.dir/table_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mesa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
