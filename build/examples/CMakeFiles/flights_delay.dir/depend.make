# Empty dependencies file for flights_delay.
# This may be replaced when dependencies are built.
