file(REMOVE_RECURSE
  "CMakeFiles/flights_delay.dir/flights_delay.cpp.o"
  "CMakeFiles/flights_delay.dir/flights_delay.cpp.o.d"
  "flights_delay"
  "flights_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flights_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
