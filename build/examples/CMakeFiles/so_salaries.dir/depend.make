# Empty dependencies file for so_salaries.
# This may be replaced when dependencies are built.
