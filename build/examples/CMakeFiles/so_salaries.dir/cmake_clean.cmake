file(REMOVE_RECURSE
  "CMakeFiles/so_salaries.dir/so_salaries.cpp.o"
  "CMakeFiles/so_salaries.dir/so_salaries.cpp.o.d"
  "so_salaries"
  "so_salaries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/so_salaries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
