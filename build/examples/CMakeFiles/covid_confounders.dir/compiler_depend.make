# Empty compiler generated dependencies file for covid_confounders.
# This may be replaced when dependencies are built.
