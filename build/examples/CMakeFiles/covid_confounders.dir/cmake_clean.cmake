file(REMOVE_RECURSE
  "CMakeFiles/covid_confounders.dir/covid_confounders.cpp.o"
  "CMakeFiles/covid_confounders.dir/covid_confounders.cpp.o.d"
  "covid_confounders"
  "covid_confounders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/covid_confounders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
