# Empty dependencies file for mesa.
# This may be replaced when dependencies are built.
