file(REMOVE_RECURSE
  "libmesa.a"
)
