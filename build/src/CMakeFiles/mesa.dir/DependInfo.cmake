
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/mesa.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/mesa.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/mesa.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/mesa.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/mesa.dir/common/status.cc.o" "gcc" "src/CMakeFiles/mesa.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/mesa.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/mesa.dir/common/string_util.cc.o.d"
  "/root/repo/src/core/baselines/brute_force.cc" "src/CMakeFiles/mesa.dir/core/baselines/brute_force.cc.o" "gcc" "src/CMakeFiles/mesa.dir/core/baselines/brute_force.cc.o.d"
  "/root/repo/src/core/baselines/hypdb.cc" "src/CMakeFiles/mesa.dir/core/baselines/hypdb.cc.o" "gcc" "src/CMakeFiles/mesa.dir/core/baselines/hypdb.cc.o.d"
  "/root/repo/src/core/baselines/lr_explainer.cc" "src/CMakeFiles/mesa.dir/core/baselines/lr_explainer.cc.o" "gcc" "src/CMakeFiles/mesa.dir/core/baselines/lr_explainer.cc.o.d"
  "/root/repo/src/core/baselines/top_k.cc" "src/CMakeFiles/mesa.dir/core/baselines/top_k.cc.o" "gcc" "src/CMakeFiles/mesa.dir/core/baselines/top_k.cc.o.d"
  "/root/repo/src/core/candidates.cc" "src/CMakeFiles/mesa.dir/core/candidates.cc.o" "gcc" "src/CMakeFiles/mesa.dir/core/candidates.cc.o.d"
  "/root/repo/src/core/mcimr.cc" "src/CMakeFiles/mesa.dir/core/mcimr.cc.o" "gcc" "src/CMakeFiles/mesa.dir/core/mcimr.cc.o.d"
  "/root/repo/src/core/mesa.cc" "src/CMakeFiles/mesa.dir/core/mesa.cc.o" "gcc" "src/CMakeFiles/mesa.dir/core/mesa.cc.o.d"
  "/root/repo/src/core/pruning.cc" "src/CMakeFiles/mesa.dir/core/pruning.cc.o" "gcc" "src/CMakeFiles/mesa.dir/core/pruning.cc.o.d"
  "/root/repo/src/core/report_format.cc" "src/CMakeFiles/mesa.dir/core/report_format.cc.o" "gcc" "src/CMakeFiles/mesa.dir/core/report_format.cc.o.d"
  "/root/repo/src/core/responsibility.cc" "src/CMakeFiles/mesa.dir/core/responsibility.cc.o" "gcc" "src/CMakeFiles/mesa.dir/core/responsibility.cc.o.d"
  "/root/repo/src/core/subgroups.cc" "src/CMakeFiles/mesa.dir/core/subgroups.cc.o" "gcc" "src/CMakeFiles/mesa.dir/core/subgroups.cc.o.d"
  "/root/repo/src/datagen/common_gen.cc" "src/CMakeFiles/mesa.dir/datagen/common_gen.cc.o" "gcc" "src/CMakeFiles/mesa.dir/datagen/common_gen.cc.o.d"
  "/root/repo/src/datagen/covid_gen.cc" "src/CMakeFiles/mesa.dir/datagen/covid_gen.cc.o" "gcc" "src/CMakeFiles/mesa.dir/datagen/covid_gen.cc.o.d"
  "/root/repo/src/datagen/flights_gen.cc" "src/CMakeFiles/mesa.dir/datagen/flights_gen.cc.o" "gcc" "src/CMakeFiles/mesa.dir/datagen/flights_gen.cc.o.d"
  "/root/repo/src/datagen/forbes_gen.cc" "src/CMakeFiles/mesa.dir/datagen/forbes_gen.cc.o" "gcc" "src/CMakeFiles/mesa.dir/datagen/forbes_gen.cc.o.d"
  "/root/repo/src/datagen/registry.cc" "src/CMakeFiles/mesa.dir/datagen/registry.cc.o" "gcc" "src/CMakeFiles/mesa.dir/datagen/registry.cc.o.d"
  "/root/repo/src/datagen/so_gen.cc" "src/CMakeFiles/mesa.dir/datagen/so_gen.cc.o" "gcc" "src/CMakeFiles/mesa.dir/datagen/so_gen.cc.o.d"
  "/root/repo/src/info/contingency.cc" "src/CMakeFiles/mesa.dir/info/contingency.cc.o" "gcc" "src/CMakeFiles/mesa.dir/info/contingency.cc.o.d"
  "/root/repo/src/info/entropy.cc" "src/CMakeFiles/mesa.dir/info/entropy.cc.o" "gcc" "src/CMakeFiles/mesa.dir/info/entropy.cc.o.d"
  "/root/repo/src/info/independence.cc" "src/CMakeFiles/mesa.dir/info/independence.cc.o" "gcc" "src/CMakeFiles/mesa.dir/info/independence.cc.o.d"
  "/root/repo/src/info/mutual_information.cc" "src/CMakeFiles/mesa.dir/info/mutual_information.cc.o" "gcc" "src/CMakeFiles/mesa.dir/info/mutual_information.cc.o.d"
  "/root/repo/src/kg/entity_linker.cc" "src/CMakeFiles/mesa.dir/kg/entity_linker.cc.o" "gcc" "src/CMakeFiles/mesa.dir/kg/entity_linker.cc.o.d"
  "/root/repo/src/kg/extractor.cc" "src/CMakeFiles/mesa.dir/kg/extractor.cc.o" "gcc" "src/CMakeFiles/mesa.dir/kg/extractor.cc.o.d"
  "/root/repo/src/kg/serialization.cc" "src/CMakeFiles/mesa.dir/kg/serialization.cc.o" "gcc" "src/CMakeFiles/mesa.dir/kg/serialization.cc.o.d"
  "/root/repo/src/kg/synthetic_kg.cc" "src/CMakeFiles/mesa.dir/kg/synthetic_kg.cc.o" "gcc" "src/CMakeFiles/mesa.dir/kg/synthetic_kg.cc.o.d"
  "/root/repo/src/kg/triple_store.cc" "src/CMakeFiles/mesa.dir/kg/triple_store.cc.o" "gcc" "src/CMakeFiles/mesa.dir/kg/triple_store.cc.o.d"
  "/root/repo/src/missing/imputation.cc" "src/CMakeFiles/mesa.dir/missing/imputation.cc.o" "gcc" "src/CMakeFiles/mesa.dir/missing/imputation.cc.o.d"
  "/root/repo/src/missing/ipw.cc" "src/CMakeFiles/mesa.dir/missing/ipw.cc.o" "gcc" "src/CMakeFiles/mesa.dir/missing/ipw.cc.o.d"
  "/root/repo/src/missing/mask.cc" "src/CMakeFiles/mesa.dir/missing/mask.cc.o" "gcc" "src/CMakeFiles/mesa.dir/missing/mask.cc.o.d"
  "/root/repo/src/missing/selection_bias.cc" "src/CMakeFiles/mesa.dir/missing/selection_bias.cc.o" "gcc" "src/CMakeFiles/mesa.dir/missing/selection_bias.cc.o.d"
  "/root/repo/src/query/aggregate.cc" "src/CMakeFiles/mesa.dir/query/aggregate.cc.o" "gcc" "src/CMakeFiles/mesa.dir/query/aggregate.cc.o.d"
  "/root/repo/src/query/group_by.cc" "src/CMakeFiles/mesa.dir/query/group_by.cc.o" "gcc" "src/CMakeFiles/mesa.dir/query/group_by.cc.o.d"
  "/root/repo/src/query/join.cc" "src/CMakeFiles/mesa.dir/query/join.cc.o" "gcc" "src/CMakeFiles/mesa.dir/query/join.cc.o.d"
  "/root/repo/src/query/predicate.cc" "src/CMakeFiles/mesa.dir/query/predicate.cc.o" "gcc" "src/CMakeFiles/mesa.dir/query/predicate.cc.o.d"
  "/root/repo/src/query/query_spec.cc" "src/CMakeFiles/mesa.dir/query/query_spec.cc.o" "gcc" "src/CMakeFiles/mesa.dir/query/query_spec.cc.o.d"
  "/root/repo/src/query/sql_parser.cc" "src/CMakeFiles/mesa.dir/query/sql_parser.cc.o" "gcc" "src/CMakeFiles/mesa.dir/query/sql_parser.cc.o.d"
  "/root/repo/src/stats/correlation.cc" "src/CMakeFiles/mesa.dir/stats/correlation.cc.o" "gcc" "src/CMakeFiles/mesa.dir/stats/correlation.cc.o.d"
  "/root/repo/src/stats/descriptive.cc" "src/CMakeFiles/mesa.dir/stats/descriptive.cc.o" "gcc" "src/CMakeFiles/mesa.dir/stats/descriptive.cc.o.d"
  "/root/repo/src/stats/discretizer.cc" "src/CMakeFiles/mesa.dir/stats/discretizer.cc.o" "gcc" "src/CMakeFiles/mesa.dir/stats/discretizer.cc.o.d"
  "/root/repo/src/stats/distributions.cc" "src/CMakeFiles/mesa.dir/stats/distributions.cc.o" "gcc" "src/CMakeFiles/mesa.dir/stats/distributions.cc.o.d"
  "/root/repo/src/stats/logistic.cc" "src/CMakeFiles/mesa.dir/stats/logistic.cc.o" "gcc" "src/CMakeFiles/mesa.dir/stats/logistic.cc.o.d"
  "/root/repo/src/stats/ols.cc" "src/CMakeFiles/mesa.dir/stats/ols.cc.o" "gcc" "src/CMakeFiles/mesa.dir/stats/ols.cc.o.d"
  "/root/repo/src/table/column.cc" "src/CMakeFiles/mesa.dir/table/column.cc.o" "gcc" "src/CMakeFiles/mesa.dir/table/column.cc.o.d"
  "/root/repo/src/table/csv.cc" "src/CMakeFiles/mesa.dir/table/csv.cc.o" "gcc" "src/CMakeFiles/mesa.dir/table/csv.cc.o.d"
  "/root/repo/src/table/schema.cc" "src/CMakeFiles/mesa.dir/table/schema.cc.o" "gcc" "src/CMakeFiles/mesa.dir/table/schema.cc.o.d"
  "/root/repo/src/table/table.cc" "src/CMakeFiles/mesa.dir/table/table.cc.o" "gcc" "src/CMakeFiles/mesa.dir/table/table.cc.o.d"
  "/root/repo/src/table/table_builder.cc" "src/CMakeFiles/mesa.dir/table/table_builder.cc.o" "gcc" "src/CMakeFiles/mesa.dir/table/table_builder.cc.o.d"
  "/root/repo/src/table/table_ops.cc" "src/CMakeFiles/mesa.dir/table/table_ops.cc.o" "gcc" "src/CMakeFiles/mesa.dir/table/table_ops.cc.o.d"
  "/root/repo/src/table/value.cc" "src/CMakeFiles/mesa.dir/table/value.cc.o" "gcc" "src/CMakeFiles/mesa.dir/table/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
