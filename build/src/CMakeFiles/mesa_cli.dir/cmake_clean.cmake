file(REMOVE_RECURSE
  "CMakeFiles/mesa_cli.dir/tools/mesa_cli.cc.o"
  "CMakeFiles/mesa_cli.dir/tools/mesa_cli.cc.o.d"
  "mesa_cli"
  "mesa_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesa_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
