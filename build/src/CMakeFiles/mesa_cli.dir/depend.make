# Empty dependencies file for mesa_cli.
# This may be replaced when dependencies are built.
