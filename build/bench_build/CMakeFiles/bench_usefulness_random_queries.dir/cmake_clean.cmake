file(REMOVE_RECURSE
  "../bench/bench_usefulness_random_queries"
  "../bench/bench_usefulness_random_queries.pdb"
  "CMakeFiles/bench_usefulness_random_queries.dir/bench_usefulness_random_queries.cc.o"
  "CMakeFiles/bench_usefulness_random_queries.dir/bench_usefulness_random_queries.cc.o.d"
  "CMakeFiles/bench_usefulness_random_queries.dir/bench_util.cc.o"
  "CMakeFiles/bench_usefulness_random_queries.dir/bench_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_usefulness_random_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
