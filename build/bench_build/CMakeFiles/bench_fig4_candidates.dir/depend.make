# Empty dependencies file for bench_fig4_candidates.
# This may be replaced when dependencies are built.
