file(REMOVE_RECURSE
  "../bench/bench_fig5_rows"
  "../bench/bench_fig5_rows.pdb"
  "CMakeFiles/bench_fig5_rows.dir/bench_fig5_rows.cc.o"
  "CMakeFiles/bench_fig5_rows.dir/bench_fig5_rows.cc.o.d"
  "CMakeFiles/bench_fig5_rows.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig5_rows.dir/bench_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_rows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
