file(REMOVE_RECURSE
  "../bench/bench_fig3_missing_data"
  "../bench/bench_fig3_missing_data.pdb"
  "CMakeFiles/bench_fig3_missing_data.dir/bench_fig3_missing_data.cc.o"
  "CMakeFiles/bench_fig3_missing_data.dir/bench_fig3_missing_data.cc.o.d"
  "CMakeFiles/bench_fig3_missing_data.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig3_missing_data.dir/bench_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_missing_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
