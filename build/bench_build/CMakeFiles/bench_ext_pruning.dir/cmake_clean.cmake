file(REMOVE_RECURSE
  "../bench/bench_ext_pruning"
  "../bench/bench_ext_pruning.pdb"
  "CMakeFiles/bench_ext_pruning.dir/bench_ext_pruning.cc.o"
  "CMakeFiles/bench_ext_pruning.dir/bench_ext_pruning.cc.o.d"
  "CMakeFiles/bench_ext_pruning.dir/bench_util.cc.o"
  "CMakeFiles/bench_ext_pruning.dir/bench_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
