# Empty dependencies file for bench_ext_pruning.
# This may be replaced when dependencies are built.
