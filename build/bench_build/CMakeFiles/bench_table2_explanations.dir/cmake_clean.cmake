file(REMOVE_RECURSE
  "../bench/bench_table2_explanations"
  "../bench/bench_table2_explanations.pdb"
  "CMakeFiles/bench_table2_explanations.dir/bench_table2_explanations.cc.o"
  "CMakeFiles/bench_table2_explanations.dir/bench_table2_explanations.cc.o.d"
  "CMakeFiles/bench_table2_explanations.dir/bench_util.cc.o"
  "CMakeFiles/bench_table2_explanations.dir/bench_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_explanations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
