file(REMOVE_RECURSE
  "../bench/bench_ablation_estimators"
  "../bench/bench_ablation_estimators.pdb"
  "CMakeFiles/bench_ablation_estimators.dir/bench_ablation_estimators.cc.o"
  "CMakeFiles/bench_ablation_estimators.dir/bench_ablation_estimators.cc.o.d"
  "CMakeFiles/bench_ablation_estimators.dir/bench_util.cc.o"
  "CMakeFiles/bench_ablation_estimators.dir/bench_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_estimators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
