# Empty compiler generated dependencies file for bench_micro_info.
# This may be replaced when dependencies are built.
