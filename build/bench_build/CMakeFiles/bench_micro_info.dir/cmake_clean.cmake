file(REMOVE_RECURSE
  "../bench/bench_micro_info"
  "../bench/bench_micro_info.pdb"
  "CMakeFiles/bench_micro_info.dir/bench_micro_info.cc.o"
  "CMakeFiles/bench_micro_info.dir/bench_micro_info.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
