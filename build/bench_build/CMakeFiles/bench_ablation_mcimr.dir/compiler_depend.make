# Empty compiler generated dependencies file for bench_ablation_mcimr.
# This may be replaced when dependencies are built.
