file(REMOVE_RECURSE
  "../bench/bench_ablation_mcimr"
  "../bench/bench_ablation_mcimr.pdb"
  "CMakeFiles/bench_ablation_mcimr.dir/bench_ablation_mcimr.cc.o"
  "CMakeFiles/bench_ablation_mcimr.dir/bench_ablation_mcimr.cc.o.d"
  "CMakeFiles/bench_ablation_mcimr.dir/bench_util.cc.o"
  "CMakeFiles/bench_ablation_mcimr.dir/bench_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mcimr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
