# Empty dependencies file for bench_fig2_explainability.
# This may be replaced when dependencies are built.
