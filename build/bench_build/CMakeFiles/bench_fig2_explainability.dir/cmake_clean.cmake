file(REMOVE_RECURSE
  "../bench/bench_fig2_explainability"
  "../bench/bench_fig2_explainability.pdb"
  "CMakeFiles/bench_fig2_explainability.dir/bench_fig2_explainability.cc.o"
  "CMakeFiles/bench_fig2_explainability.dir/bench_fig2_explainability.cc.o.d"
  "CMakeFiles/bench_fig2_explainability.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig2_explainability.dir/bench_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_explainability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
