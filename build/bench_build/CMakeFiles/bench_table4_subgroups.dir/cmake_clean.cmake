file(REMOVE_RECURSE
  "../bench/bench_table4_subgroups"
  "../bench/bench_table4_subgroups.pdb"
  "CMakeFiles/bench_table4_subgroups.dir/bench_table4_subgroups.cc.o"
  "CMakeFiles/bench_table4_subgroups.dir/bench_table4_subgroups.cc.o.d"
  "CMakeFiles/bench_table4_subgroups.dir/bench_util.cc.o"
  "CMakeFiles/bench_table4_subgroups.dir/bench_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_subgroups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
