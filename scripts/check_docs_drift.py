#!/usr/bin/env python3
"""Checks that measured tables in the docs carry bench provenance.

Usage: scripts/check_docs_drift.py [FILE.md ...]
       (defaults to docs/performance.md relative to the repo root)

Numbers in the docs drift silently: someone reworks a bench, the table
it fed keeps quoting the old run, and nothing fails. This guard makes
the link explicit and machine-checked. Every markdown table in the
checked files must be immediately preceded (blank lines allowed) by a
provenance comment, one of:

  <!-- bench: TARGET optional free-text on how to read the output -->
  <!-- nobench: why this table is not a measurement -->

and every `bench:` marker — adjacent to a table or not — must name a
bench target actually declared in bench/CMakeLists.txt, so renaming or
deleting a bench without updating the docs fails CI (the docs-links
job runs this next to the link checker). Exit code is the number of
violations.
"""

import os
import re
import sys

MARKER = re.compile(r"<!--\s*(bench|nobench):\s*(.*?)\s*-->")
CODE_FENCE = re.compile(r"^(```|~~~)")
# A table is a header row followed by a |---| separator row.
TABLE_SEPARATOR = re.compile(r"^\s*\|?[\s:|-]+\|[\s:|-]*$")


def bench_targets(repo_root):
    """Every add_executable'd bench target in bench/CMakeLists.txt."""
    path = os.path.join(repo_root, "bench", "CMakeLists.txt")
    with open(path, encoding="utf-8") as f:
        body = f.read()
    # Target names appear bare (in set() lists and foreach()); sources
    # appear as NAME.cc — the \b(?!\.cc) keeps those out.
    return set(re.findall(r"\b(bench_\w+)\b(?!\.cc)", body))


def check_file(md_path, targets):
    with open(md_path, encoding="utf-8") as f:
        lines = f.read().splitlines()

    errors = []
    in_fence = False
    for i, line in enumerate(lines):
        if CODE_FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue

        marker = MARKER.search(line)
        if marker and marker.group(1) == "bench":
            name = marker.group(2).split()[0] if marker.group(2) else ""
            if name not in targets:
                errors.append(
                    f"{md_path}:{i + 1}: bench marker names '{name}', "
                    "which is not a target in bench/CMakeLists.txt")
            continue

        # Table header: a '|' line whose next line is the separator row.
        if (line.lstrip().startswith("|") and i + 1 < len(lines)
                and TABLE_SEPARATOR.match(lines[i + 1])
                and "|" in lines[i + 1]):
            # Walk upward past blank lines to the provenance comment.
            j = i - 1
            while j >= 0 and not lines[j].strip():
                j -= 1
            if j < 0 or not MARKER.search(lines[j]):
                errors.append(
                    f"{md_path}:{i + 1}: table has no provenance marker — "
                    "precede it with <!-- bench: TARGET ... --> or "
                    "<!-- nobench: reason -->")
    return errors


def main():
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    args = sys.argv[1:] or [os.path.join(repo_root, "docs", "performance.md")]
    targets = bench_targets(repo_root)
    errors = []
    for md in args:
        errors += check_file(md, targets)
    for e in errors:
        print(e)
    print(f"checked {len(args)} files against {len(targets)} bench targets: "
          f"{'OK' if not errors else f'{len(errors)} drift violations'}")
    return min(len(errors), 125)


if __name__ == "__main__":
    sys.exit(main())
