#!/usr/bin/env python3
"""Checks that every relative link in the repo's markdown files resolves.

Usage: scripts/check_markdown_links.py [FILE_OR_DIR ...]
       (defaults to README.md and docs/ relative to the repo root)

Verifies, for each `[text](target)` and `[ref]: target` link:
  - relative file targets exist (resolved against the linking file);
  - `#anchor` fragments match a heading in the target file, using
    GitHub's slug rules (lowercase, spaces to dashes, punctuation
    dropped);
  - bare `#anchor` links match a heading in the linking file itself.

External links (http/https/mailto) are NOT fetched — CI must not
depend on network weather. Exit code is the number of broken links.
"""

import os
import re
import sys

# Inline [text](target) — target ends at the first unnested ')'.
INLINE_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# Reference definitions: [label]: target
REF_LINK = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$", re.MULTILINE)
CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading):
    """GitHub's anchor slug: lowercase, punctuation out, spaces to dashes."""
    # Inline code/links inside the heading contribute their text only.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = text.replace("`", "").strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path, cache={}):
    if path not in cache:
        try:
            with open(path, encoding="utf-8") as f:
                body = f.read()
        except OSError:
            cache[path] = set()
        else:
            slugs = set()
            for m in HEADING.finditer(CODE_FENCE.sub("", body)):
                slug = github_slug(m.group(1))
                # Duplicate headings get -1, -2, ... suffixes on GitHub.
                n = 0
                candidate = slug
                while candidate in slugs:
                    n += 1
                    candidate = f"{slug}-{n}"
                slugs.add(candidate)
            cache[path] = slugs
    return cache[path]


def check_file(md_path):
    with open(md_path, encoding="utf-8") as f:
        body = f.read()
    body = CODE_FENCE.sub("", body)  # links in code blocks are examples
    targets = [m.group(1) for m in INLINE_LINK.finditer(body)]
    targets += [m.group(1) for m in REF_LINK.finditer(body)]
    errors = []
    for target in targets:
        if target.startswith(EXTERNAL) or target.startswith("<"):
            continue
        path_part, _, fragment = target.partition("#")
        if path_part:
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(md_path), path_part))
            if not os.path.exists(resolved):
                errors.append(f"{md_path}: broken link -> {target}")
                continue
        else:
            resolved = md_path
        if fragment and resolved.endswith(".md"):
            if fragment.lower() not in anchors_of(resolved):
                errors.append(f"{md_path}: missing anchor -> {target}")
    return errors


def collect(paths):
    files = []
    for p in paths:
        if os.path.isdir(p):
            for root, _, names in os.walk(p):
                files += [os.path.join(root, n) for n in sorted(names)
                          if n.endswith(".md")]
        elif p.endswith(".md"):
            files.append(p)
    return files


def main():
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    args = sys.argv[1:] or [os.path.join(repo_root, "README.md"),
                            os.path.join(repo_root, "docs")]
    errors = []
    files = collect(args)
    for md in files:
        errors += check_file(md)
    for e in errors:
        print(e)
    print(f"checked {len(files)} files: "
          f"{'OK' if not errors else f'{len(errors)} broken links'}")
    return min(len(errors), 125)


if __name__ == "__main__":
    sys.exit(main())
