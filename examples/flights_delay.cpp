// Flights-delay scenario (the paper's Flights Q1/Q5): why do some origin
// cities — and some airlines — run so late? The KG contributes weather and
// population attributes for cities, and financial/operational attributes
// for airlines. Also demonstrates robustness to missing data: injecting
// biased missingness into a key attribute and letting the IPW machinery
// handle it.
//
//   ./build/examples/flights_delay

#include <cstdio>

#include "common/rng.h"
#include "core/mesa.h"
#include "datagen/registry.h"
#include "missing/mask.h"

using namespace mesa;

int main() {
  GenOptions gen;
  gen.rows = 50000;
  auto ds = MakeDataset(DatasetKind::kFlights, gen);
  if (!ds.ok()) return 1;

  Mesa mesa(ds->table, ds->kg.get(), ds->extraction_columns);

  std::printf("== delay per origin city ==\n");
  auto by_city = mesa.ExplainSql(
      "SELECT Origin_city, avg(Departure_delay) FROM flights "
      "GROUP BY Origin_city");
  if (!by_city.ok()) return 1;
  std::printf("%s\n", by_city->Summary().c_str());

  std::printf("\n== delay per airline ==\n");
  auto by_airline = mesa.ExplainSql(
      "SELECT Airline, avg(Departure_delay) FROM flights GROUP BY Airline");
  if (!by_airline.ok()) return 1;
  std::printf("%s\n", by_airline->Summary().c_str());

  std::printf("\n== winter flights only ==\n");
  auto winter = mesa.ExplainSql(
      "SELECT Origin_city, avg(Departure_delay) FROM flights "
      "WHERE Month IN (12, 1, 2) GROUP BY Origin_city");
  if (winter.ok()) std::printf("%s\n", winter->Summary().c_str());

  // Missing-data robustness: wipe the top half of a weather attribute
  // (biased removal induces selection bias by construction) and re-run.
  auto augmented = mesa.augmented_table();
  if (!augmented.ok()) return 1;
  Table damaged = **augmented;
  Rng rng(11);
  if (!InjectMissing(&damaged, "precipitation_days", 0.5,
                     RemovalMode::kTopValues, &rng)
           .ok()) {
    return 1;
  }
  Mesa mesa_damaged(std::move(damaged), nullptr, {});
  auto robust = mesa_damaged.ExplainSql(
      "SELECT Origin_city, avg(Departure_delay) FROM flights "
      "GROUP BY Origin_city");
  if (robust.ok()) {
    std::printf("\n== same query, 50%% of precipitation_days removed "
                "(biased) ==\n%s\n",
                robust->Summary().c_str());
    std::printf("(IPW weights kick in automatically when the selection-bias\n"
                "detector fires; see src/missing/.)\n");
  }
  return 0;
}
