// The paper's Stack Overflow walkthrough (Examples 2.1-2.7 and §4.3): the
// salary-per-country correlation, its explanation, the per-attribute
// responsibilities, a comparison of all baselines, and the Table-4 style
// unexplained-subgroup discovery.
//
//   ./build/examples/so_salaries

#include <cstdio>

#include "core/baselines/brute_force.h"
#include "core/baselines/lr_explainer.h"
#include "core/baselines/top_k.h"
#include "core/mesa.h"
#include "datagen/registry.h"

using namespace mesa;

int main() {
  GenOptions gen;
  gen.rows = 30000;
  auto ds = MakeDataset(DatasetKind::kStackOverflow, gen);
  if (!ds.ok()) return 1;

  Mesa mesa(ds->table, ds->kg.get(), ds->extraction_columns);
  QuerySpec q = CanonicalQueries(DatasetKind::kStackOverflow)[0].query;

  std::printf("== %s ==\n", q.ToSql().c_str());
  auto report = mesa.Explain(q);
  if (!report.ok()) {
    std::printf("error: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report->Summary().c_str());
  for (const auto& r : report->responsibilities) {
    std::printf("  responsibility(%-20s) = %5.2f\n", r.name.c_str(),
                r.responsibility);
  }

  // How the baselines see the same query.
  auto pq = mesa.PrepareQuery(q);
  if (!pq.ok()) return 1;
  std::printf("\n-- baselines on the same candidates --\n");
  Explanation topk = RunTopK(*pq->analysis, pq->candidate_indices, 3);
  std::printf("Top-K:       %s  (I=%.3f)  <- note the redundant picks\n",
              topk.ToString().c_str(), topk.final_cmi);
  auto lr = RunLrExplainer(*pq->analysis, pq->candidate_indices, {});
  if (lr.ok()) {
    std::printf("LR:          %s  (I=%.3f)\n", lr->ToString().c_str(),
                lr->final_cmi);
  }
  BruteForceOptions bf_opts;
  bf_opts.max_size = 2;
  auto bf = RunBruteForce(*pq->analysis, pq->candidate_indices, bf_opts);
  if (bf.ok()) {
    std::printf("Brute-Force: %s  (I=%.3f)\n", bf->ToString().c_str(),
                bf->final_cmi);
  }

  // Where does the explanation fail? (Section 4.3 / Table 4.)
  SubgroupOptions sg;
  sg.top_k = 5;
  sg.threshold = 0.05 * report->base_cmi;
  sg.refinement_attributes = {"Continent", "Gender", "DevType"};
  auto groups =
      mesa.FindSubgroups(q, report->explanation.attribute_names, sg);
  if (groups.ok()) {
    std::printf("\n-- largest data groups the explanation does NOT cover --\n");
    for (const auto& g : *groups) {
      std::printf("  size=%-6zu score=%.3f  %s\n", g.size, g.score,
                  g.refinement.ToString().c_str());
    }
  }
  return 0;
}
