// The paper's running Covid-19 example (Examples 1.1/1.2): why does the
// choice of country have such a strong effect on the death rate? MESA
// mines country properties from the knowledge graph and reports the
// confounders (country success: HDI/GDP — plus the in-table confirmed-case
// load), then shows each attribute's responsibility.
//
//   ./build/examples/covid_confounders

#include <cstdio>

#include "core/mesa.h"
#include "datagen/registry.h"
#include "query/group_by.h"

using namespace mesa;

int main() {
  // The Covid-19 world: country-level pandemic snapshots + a DBpedia-like
  // country KG (see src/datagen/covid_gen.cc).
  auto ds = MakeDataset(DatasetKind::kCovid, {});
  if (!ds.ok()) return 1;

  // What Ann sees first: the grouped aggregate itself.
  auto grouped = GroupByAggregate(ds->table, "Country",
                                  "Deaths_per_100_cases",
                                  AggregateFunction::kAvg);
  if (!grouped.ok()) return 1;
  std::printf("SELECT Country, avg(Deaths_per_100_cases) FROM Covid GROUP BY "
              "Country\n");
  std::printf("(%zu countries; first five)\n", grouped->groups.size());
  for (size_t i = 0; i < 5 && i < grouped->groups.size(); ++i) {
    std::printf("  %-14s %.2f\n",
                grouped->groups[i].group.ToString().c_str(),
                grouped->groups[i].aggregate);
  }

  // MESA explains the puzzling spread.
  Mesa mesa(ds->table, ds->kg.get(), ds->extraction_columns);
  auto report = mesa.ExplainSql(
      "SELECT Country, avg(Deaths_per_100_cases) FROM Covid "
      "GROUP BY Country");
  if (!report.ok()) {
    std::printf("error: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s\n", report->Summary().c_str());
  std::printf("candidates: %zu after offline pruning, %zu after online\n",
              report->candidates_after_offline,
              report->candidates_after_online);
  for (const auto& r : report->responsibilities) {
    std::printf("  responsibility(%-22s) = %5.2f\n", r.name.c_str(),
                r.responsibility);
  }

  // Refined query, as in the paper: Europe only. (At 188 rows the
  // within-region estimates are rough — the paper's Covid Q2 has the same
  // caveat; see bench_table2_explanations for the systematic run.)
  auto europe = mesa.ExplainSql(
      "SELECT Country, avg(Deaths_per_100_cases) FROM Covid "
      "WHERE WHO_Region = 'Europe' GROUP BY Country");
  if (europe.ok()) {
    std::printf("\nWithin Europe (%zu-row subgroup): %s\n",
                static_cast<size_t>(europe->explanation.trace.size()),
                europe->Summary().c_str());
  }
  std::printf(
      "\nReading: countries with similar development levels (and similar\n"
      "case loads) have similar death rates — the paper's Example 1.2.\n");
  return 0;
}
