// Quickstart: build a tiny dataset + knowledge graph by hand, ask MESA to
// explain a suspicious correlation, and read the report.
//
//   ./build/examples/quickstart
//
// The story: average bonus differs wildly between offices. Is the office
// really what drives the bonus? MESA mines office properties from a
// knowledge graph and finds the confounder (the office's market size).

#include <cstdio>

#include "core/mesa.h"
#include "common/rng.h"
#include "table/table_builder.h"

using namespace mesa;

int main() {
  Rng rng(7);

  // 1. A knowledge graph describing offices (the "external source").
  auto kg = std::make_shared<TripleStore>();
  struct Office {
    const char* name;
    double market;   // latent market size: the true confounder
    double altitude; // irrelevant property
  };
  const Office offices[] = {
      {"Amsterdam", 0.9, 0.0}, {"Berlin", 0.8, 34.0}, {"Cairo", 0.3, 23.0},
      {"Delhi", 0.4, 216.0},   {"Eugene", 0.5, 130.0}, {"Florence", 0.6, 50.0},
      {"Geneva", 0.95, 375.0}, {"Hanoi", 0.35, 16.0},  {"Igarka", 0.2, 20.0},
      {"Jakarta", 0.45, 8.0},  {"Kigali", 0.3, 1567.0}, {"Lisbon", 0.7, 2.0},
      {"Madrid", 0.75, 667.0}, {"Nairobi", 0.4, 1795.0}, {"Oslo", 0.85, 23.0},
      {"Prague", 0.65, 177.0}, {"Quito", 0.35, 2850.0}, {"Riga", 0.6, 6.0},
      {"Sydney", 0.8, 58.0},   {"Tunis", 0.45, 4.0},
  };
  for (const Office& o : offices) {
    EntityId id = *kg->AddEntity(o.name, "Office");
    (void)kg->AddLiteral(id, "market_size", Value::Double(o.market));
    (void)kg->AddLiteral(id, "altitude_m", Value::Double(o.altitude));
  }

  // 2. The analyst's dataset: one row per employee. Bonus depends on the
  //    office's market size plus personal noise — NOT on the office per se.
  TableBuilder builder(Schema({{"Office", DataType::kString},
                               {"Tenure", DataType::kInt64},
                               {"Bonus", DataType::kDouble}}));
  for (int i = 0; i < 6000; ++i) {
    const Office& o = offices[rng.NextBelow(std::size(offices))];
    int64_t tenure = rng.NextInt(0, 15);
    double bonus = 2000.0 + 9000.0 * o.market +
                   150.0 * static_cast<double>(tenure) +
                   rng.NextGaussian(0, 400.0);
    if (!builder
             .AppendRow({Value::String(o.name), Value::Int(tenure),
                         Value::Double(bonus)})
             .ok()) {
      return 1;
    }
  }
  auto table = builder.Finish();
  if (!table.ok()) return 1;

  // 3. Point MESA at the dataset, the KG, and the entity-bearing column.
  Mesa mesa(std::move(*table), kg.get(), {"Office"});

  // 4. Ask the question exactly the way the paper does — as SQL.
  auto report = mesa.ExplainSql(
      "SELECT Office, avg(Bonus) FROM employees GROUP BY Office");
  if (!report.ok()) {
    std::printf("error: %s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("query:       SELECT Office, avg(Bonus) ... GROUP BY Office\n");
  std::printf("correlation: I(Bonus; Office) = %.3f bits\n",
              report->base_cmi);
  std::printf("explanation: %s  ->  I(Bonus; Office | E) = %.3f bits\n",
              report->explanation.ToString().c_str(), report->final_cmi);
  for (const auto& r : report->responsibilities) {
    std::printf("  responsibility(%s) = %.2f\n", r.name.c_str(),
                r.responsibility);
  }
  std::printf("\nReading: offices with similar market size pay similar\n"
              "bonuses — the office itself is not the cause.\n");
  return 0;
}
