// End-to-end workflow from CSV text: load an analyst's table, build a small
// knowledge source, run a parsed SQL query, explain the correlation, and
// write the augmented table back out as CSV. Demonstrates the pieces a
// downstream user wires together when their data does NOT come from the
// bundled generators.
//
//   ./build/examples/csv_workflow

#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "core/mesa.h"
#include "kg/synthetic_kg.h"
#include "table/csv.h"

using namespace mesa;

namespace {

// Simulates the analyst's CSV export (in real use: ReadCsvFile(path)).
std::string MakeCsv() {
  Rng rng(21);
  const char* cities[] = {
      "Aarhus",  "Bergen",  "Cork",    "Dresden", "Evora",   "Fargo",
      "Gdansk",  "Hobart",  "Inverness", "Jena",  "Kassel",  "Leiden",
      "Malmo",   "Nantes",  "Odense",  "Porto",   "Quimper", "Riga",
      "Seville", "Tartu",   "Utrecht", "Vaasa",   "Wroclaw", "York"};
  // Latent walkability score per city drives both the KG attribute and the
  // outcome.
  double walk[24];
  for (double& w : walk) w = rng.NextUniform(0.2, 0.95);
  std::string csv = "city,commute_minutes\n";
  for (int i = 0; i < 4000; ++i) {
    size_t c = rng.NextBelow(24);
    double commute = 55.0 - 35.0 * walk[c] + rng.NextGaussian(0, 4.0);
    csv += std::string(cities[c]) + "," + std::to_string(commute) + "\n";
  }
  return csv;
}

}  // namespace

int main() {
  // 1. Load the analyst's CSV (type inference included).
  auto table = ReadCsvString(MakeCsv());
  if (!table.ok()) {
    std::printf("csv error: %s\n", table.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu rows: %s\n", table->num_rows(),
              table->schema().ToString().c_str());

  // 2. The knowledge source. A real deployment would load triples from
  //    disk; here we synthesise a city KG whose walkability attribute is
  //    the true confounder and whose founding year is junk.
  TripleStore kg;
  SyntheticKgBuilder builder(&kg, 33);
  // Replay exactly the latent walkability draws MakeCsv used (same seed,
  // same draw order: the ten walk scores come first).
  Rng rng(21);
  double walk[24];
  for (double& w : walk) w = rng.NextUniform(0.2, 0.95);
  Rng junk_rng(99);
  const char* cities[] = {
      "Aarhus",  "Bergen",  "Cork",    "Dresden", "Evora",   "Fargo",
      "Gdansk",  "Hobart",  "Inverness", "Jena",  "Kassel",  "Leiden",
      "Malmo",   "Nantes",  "Odense",  "Porto",   "Quimper", "Riga",
      "Seville", "Tartu",   "Utrecht", "Vaasa",   "Wroclaw", "York"};
  for (size_t c = 0; c < 24; ++c) {
    EntityId id = builder.EnsureEntity(cities[c], "City");
    builder.AddNumeric(id, "walkability", walk[c]);
    builder.AddNumeric(id, "founded_year",
                       std::round(junk_rng.NextUniform(900, 1900)));
  }

  // 3. Explain the query the analyst typed.
  Mesa mesa(std::move(*table), &kg, {"city"});
  auto report = mesa.ExplainSql(
      "SELECT city, avg(commute_minutes) FROM commutes GROUP BY city");
  if (!report.ok()) {
    std::printf("error: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report->Summary().c_str());

  // 4. Persist the augmented table for further analysis elsewhere.
  auto augmented = mesa.augmented_table();
  if (augmented.ok()) {
    std::string out = WriteCsvString(**augmented);
    std::printf("augmented table: %zu columns, %zu bytes of CSV\n",
                (*augmented)->num_columns(), out.size());
  }
  return 0;
}
