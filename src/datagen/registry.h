#ifndef MESA_DATAGEN_REGISTRY_H_
#define MESA_DATAGEN_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "kg/triple_store.h"
#include "query/query_spec.h"
#include "table/table.h"

namespace mesa {

/// The four evaluation datasets of Section 5 (Table 1).
enum class DatasetKind {
  kStackOverflow,
  kCovid,
  kFlights,
  kForbes,
};

const char* DatasetKindName(DatasetKind kind);

/// Options for dataset generation.
struct GenOptions {
  /// Row count; 0 = the dataset's paper-matching default (Table 1).
  size_t rows = 0;
  uint64_t seed = 43;
  /// Per-property drop probability in the synthetic KG; negative = the
  /// dataset's default (tuned to reproduce the missing rates of §5.2).
  double kg_missing_rate = -1.0;
  /// Pure-noise predicates per entity (widens the candidate space).
  size_t kg_noise_attributes = 6;
};

/// A generated dataset plus its knowledge source.
struct GeneratedDataset {
  std::string name;
  Table table;
  std::shared_ptr<TripleStore> kg;
  /// Columns used for extraction (Table 1's last column).
  std::vector<std::string> extraction_columns;
};

/// One of the 14 representative queries of Table 2, with the planted
/// ground-truth confounders of our generative model (used by the
/// user-study substitution to score explanation quality).
struct BenchQuery {
  std::string id;           ///< "SO Q1"
  std::string description;  ///< "Average salary per country"
  QuerySpec query;
  /// Attribute names that genuinely drive the outcome in the generator
  /// (including accepted proxies such as *_rank twins).
  std::vector<std::string> ground_truth;
};

/// Builds a dataset (table + KG) of the given kind.
Result<GeneratedDataset> MakeDataset(DatasetKind kind,
                                     const GenOptions& options = {});

/// The canonical Table 2 queries for a dataset.
std::vector<BenchQuery> CanonicalQueries(DatasetKind kind);

/// All four dataset kinds, in Table 1 order.
std::vector<DatasetKind> AllDatasetKinds();

}  // namespace mesa

#endif  // MESA_DATAGEN_REGISTRY_H_
