#ifndef MESA_DATAGEN_SO_GEN_H_
#define MESA_DATAGEN_SO_GEN_H_

#include "datagen/registry.h"

namespace mesa {

/// Generates the Stack Overflow developer-survey world: one row per
/// developer (Country, Continent, Gender, DevType, Age, YearsCode, Hobby,
/// Salary) plus a country KG. Salary is driven by the country's HDI and
/// Gini, a population-scarcity term, and a gender gap — so the planted
/// confounders for "salary per country" are exactly the paper's
/// {HDI, Gini} with {Population} mattering once HDI is controlled
/// (SO Q3). Default size 47,623 rows (Table 1).
Result<GeneratedDataset> MakeStackOverflowDataset(const GenOptions& options);

}  // namespace mesa

#endif  // MESA_DATAGEN_SO_GEN_H_
