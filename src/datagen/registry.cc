#include "datagen/registry.h"

#include "datagen/covid_gen.h"
#include "datagen/flights_gen.h"
#include "datagen/forbes_gen.h"
#include "datagen/so_gen.h"

namespace mesa {

const char* DatasetKindName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kStackOverflow:
      return "SO";
    case DatasetKind::kCovid:
      return "COVID-19";
    case DatasetKind::kFlights:
      return "Flights";
    case DatasetKind::kForbes:
      return "Forbes";
  }
  return "?";
}

std::vector<DatasetKind> AllDatasetKinds() {
  return {DatasetKind::kStackOverflow, DatasetKind::kCovid,
          DatasetKind::kFlights, DatasetKind::kForbes};
}

Result<GeneratedDataset> MakeDataset(DatasetKind kind,
                                     const GenOptions& options) {
  switch (kind) {
    case DatasetKind::kStackOverflow:
      return MakeStackOverflowDataset(options);
    case DatasetKind::kCovid:
      return MakeCovidDataset(options);
    case DatasetKind::kFlights:
      return MakeFlightsDataset(options);
    case DatasetKind::kForbes:
      return MakeForbesDataset(options);
  }
  return Status::InvalidArgument("unknown dataset kind");
}

namespace {

QuerySpec Avg(const std::string& exposure, const std::string& outcome,
              Conjunction context = {}) {
  QuerySpec q;
  q.exposure = exposure;
  q.outcome = outcome;
  q.aggregate = AggregateFunction::kAvg;
  q.context = std::move(context);
  return q;
}

Conjunction Where(const std::string& column, const std::string& value) {
  Conjunction c;
  c.Add({column, CompareOp::kEq, Value::String(value), {}});
  return c;
}

}  // namespace

std::vector<BenchQuery> CanonicalQueries(DatasetKind kind) {
  // Ground-truth entries are groups of acceptable alternatives separated by
  // '|': picking any member of a group covers that causal factor of the
  // generative model (e.g. hdi and hdi_rank are interchangeable proxies).
  switch (kind) {
    case DatasetKind::kStackOverflow:
      return {
          {"SO Q1", "Average salary per country",
           Avg("Country", "Salary"),
           {"hdi|hdi_rank|gdp|gdp_rank", "gini",
            "population_census|population_estimate"}},
          {"SO Q2", "Average salary per continent",
           Avg("Continent", "Salary"),
           {"hdi|hdi_rank|gdp|gdp_rank|continent_gdp",
            "population_census|population_estimate|density|"
            "continent_density"}},
          {"SO Q3", "Average salary per country in Europe",
           Avg("Country", "Salary", Where("Continent", "Europe")),
           {"gini", "population_census|population_estimate"}},
      };
    case DatasetKind::kCovid:
      return {
          {"Covid Q1", "Deaths per country",
           Avg("Country", "Deaths_per_100_cases"),
           {"hdi|hdi_rank|gdp|gdp_rank", "Confirmed_per_100k", "density"}},
          {"Covid Q2", "Deaths per country in Europe",
           Avg("Country", "Deaths_per_100_cases",
               Where("WHO_Region", "Europe")),
           {"Confirmed_per_100k", "density"}},
          {"Covid Q3", "Average deaths per WHO region",
           Avg("WHO_Region", "Deaths_per_100_cases"),
           {"density", "Confirmed_per_100k",
            "hdi|hdi_rank|gdp|gdp_rank"}},
      };
    case DatasetKind::kFlights:
      return {
          {"Flights Q1", "Average delay per origin city",
           Avg("Origin_city", "Departure_delay"),
           {"precipitation_days|year_low_f|year_avg_f|december_low_f",
            "population_total|population_urban|population_metropolitan|"
            "density"}},
          {"Flights Q2", "Average delay per origin state",
           Avg("Origin_state", "Departure_delay"),
           {"precipitation_days|year_low_f|year_avg_f|december_low_f",
            "population_total|population_urban|population_metropolitan|"
            "density"}},
          {"Flights Q3", "Average delay per origin city in California",
           Avg("Origin_city", "Departure_delay",
               Where("Origin_state", "CA")),
           {"population_total|population_urban|population_metropolitan|"
            "density",
            "Security_delay"}},
          {"Flights Q4", "Average delay per origin state and airline",
           [] {
             QuerySpec q = Avg("Origin_state", "Departure_delay");
             q.secondary_exposures = {"Airline"};
             return q;
           }(),
           {"equity|fleet_size|net_income",
            "precipitation_days|year_low_f|year_avg_f|december_low_f|"
            "population_total|population_urban|population_metropolitan|"
            "density"}},
          {"Flights Q5", "Average delay per airline",
           Avg("Airline", "Departure_delay"),
           {"equity|fleet_size|net_income"}},
      };
    case DatasetKind::kForbes:
      return {
          {"Forbes Q1", "Salary of actors",
           Avg("Name", "Pay", Where("Category", "Actors")),
           {"net_worth", "gender"}},
          {"Forbes Q2", "Salary of directors/producers",
           Avg("Name", "Pay", Where("Category", "Directors/Producers")),
           {"net_worth", "awards"}},
          {"Forbes Q3", "Salary of athletes",
           Avg("Name", "Pay", Where("Category", "Athletes")),
           {"cups|national_cups", "draft_pick"}},
      };
  }
  return {};
}

}  // namespace mesa
