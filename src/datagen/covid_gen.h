#ifndef MESA_DATAGEN_COVID_GEN_H_
#define MESA_DATAGEN_COVID_GEN_H_

#include "datagen/registry.h"

namespace mesa {

/// Generates the Covid-19 world: country-level pandemic snapshots
/// (Country, WHO_Region, Confirmed_per_100k, Deaths_per_100_cases,
/// Recovered_per_100_cases, New_cases_per_100k) plus the country KG. The
/// case-fatality outcome is driven by the country's latent success (so HDI
/// and GDP confound it — the paper's Covid Q1 explanation) together with
/// the in-table Confirmed attribute. Default size 188 rows (Table 1):
/// roughly three snapshots per country.
Result<GeneratedDataset> MakeCovidDataset(const GenOptions& options);

}  // namespace mesa

#endif  // MESA_DATAGEN_COVID_GEN_H_
