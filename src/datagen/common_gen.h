#ifndef MESA_DATAGEN_COMMON_GEN_H_
#define MESA_DATAGEN_COMMON_GEN_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "kg/synthetic_kg.h"
#include "kg/triple_store.h"
#include "table/table.h"

namespace mesa {

/// Latent model of one country, shared by the SO and Covid-19 worlds. The
/// single `success` latent drives every economic property (the paper's
/// "country success" factor from Kaklauskas et al.), so HDI/GDP/Gini are
/// genuine confounders of any outcome that also depends on success.
struct CountryModel {
  std::string name;
  std::string alias;  ///< alternative surface form ("" = none).
  std::string continent;
  std::string currency;
  std::string who_region;
  double success = 0.0;  ///< latent in [0, 1].
  double hdi = 0.0;
  double gdp = 0.0;       ///< per-capita, thousands USD.
  double gini = 0.0;
  double density = 0.0;   ///< people / km^2.
  double population = 0.0;
  double area = 0.0;
  double leader_age = 0.0;
  std::string leader_gender;
};

/// Builds the deterministic country world (~60 countries across 6
/// continents). Within Europe, HDI is nearly constant while Gini and
/// density vary — exactly the structure behind the paper's SO Q1 vs Q3
/// explanations and the Table 4 subgroups.
std::vector<CountryModel> BuildCountryWorld(Rng* rng);

/// Options for populating a country KG.
struct CountryKgOptions {
  double missing_rate = 0.2;   ///< per-property drop probability.
  size_t noise_attributes = 6; ///< pure-noise numeric predicates.
  bool add_leader_hop = true;  ///< entity-valued `leader` (2-hop data).
  bool add_rank_twins = true;  ///< hdi_rank / gdp_rank redundancy.
};

/// Writes the country world into a TripleStore as DBpedia-style entities
/// with aliases, sparsity, noise predicates, rank twins, and (optionally) a
/// 2-hop leader entity per country.
void PopulateCountryKg(const std::vector<CountryModel>& countries,
                       SyntheticKgBuilder* builder,
                       const CountryKgOptions& options = {});

/// Latent model of one US city (Flights world). `weather` drives both the
/// KG weather properties and flight delays; `population` drives traffic.
struct CityModel {
  std::string name;
  std::string state;
  double weather = 0.0;     ///< latent bad-weather score in [0, 1].
  double population = 0.0;
  double precipitation_days = 0.0;
  double year_low_f = 0.0;
  double year_avg_f = 0.0;  ///< strongly correlated with year_low_f.
  double density = 0.0;
};

/// Latent model of one airline. `quality` (operations) drives delays;
/// `scale` drives fleet/equity/revenue.
struct AirlineModel {
  std::string name;
  double quality = 0.0;  ///< latent operational quality in [0, 1].
  double scale = 0.0;    ///< latent size in [0, 1].
  double fleet_size = 0.0;
  double equity = 0.0;
  double revenue = 0.0;
  double net_income = 0.0;
  double num_employees = 0.0;
};

std::vector<CityModel> BuildCityWorld(Rng* rng);
std::vector<AirlineModel> BuildAirlineWorld(Rng* rng);

/// KG population for the Flights world (city + airline entities).
struct FlightsKgOptions {
  double missing_rate = 0.25;
  size_t noise_attributes = 6;
};
void PopulateFlightsKg(const std::vector<CityModel>& cities,
                       const std::vector<AirlineModel>& airlines,
                       SyntheticKgBuilder* builder,
                       const FlightsKgOptions& options = {});

/// Latent model of one celebrity (Forbes world). Properties are
/// category-specific, reproducing the 73% missingness the paper reports.
struct CelebrityModel {
  std::string name;
  std::string category;  ///< Actors / Directors / Athletes / Musicians.
  double talent = 0.0;   ///< latent in [0, 1]; drives pay and accolades.
  double net_worth = 0.0;
  std::string gender;
  double age = 0.0;
  double awards = 0.0;
  double active_since = 0.0;
  // Athlete-only:
  double cups = 0.0;
  double draft_pick = 0.0;
  double national_cups = 0.0;
};

std::vector<CelebrityModel> BuildCelebrityWorld(Rng* rng, size_t count);

struct ForbesKgOptions {
  double missing_rate = 0.35;  ///< on top of category-specific absence.
  size_t noise_attributes = 4;
  bool add_ambiguous_aliases = true;  ///< the "Ronaldo" NED failure.
};
void PopulateForbesKg(const std::vector<CelebrityModel>& celebrities,
                      SyntheticKgBuilder* builder,
                      const ForbesKgOptions& options = {});

}  // namespace mesa

#endif  // MESA_DATAGEN_COMMON_GEN_H_
