#ifndef MESA_DATAGEN_FLIGHTS_GEN_H_
#define MESA_DATAGEN_FLIGHTS_GEN_H_

#include "datagen/registry.h"

namespace mesa {

/// Generates the Flights-delay world: one row per domestic flight
/// (Airline, Origin_city, Origin_state, Destination_city, Month,
/// Day_of_week, Distance, Security_delay, Cancelled, Departure_delay) plus
/// a city + airline KG. Departure delay is driven by the origin city's
/// weather latent (precipitation / temperature properties in the KG), its
/// population (traffic volume), and the airline's operational quality
/// (equity / fleet size) — the paper's Flights Q1–Q5 structure. Default
/// size 100,000 rows (scale with GenOptions::rows up to the paper's 5.8M).
Result<GeneratedDataset> MakeFlightsDataset(const GenOptions& options);

}  // namespace mesa

#endif  // MESA_DATAGEN_FLIGHTS_GEN_H_
