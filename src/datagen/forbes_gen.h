#ifndef MESA_DATAGEN_FORBES_GEN_H_
#define MESA_DATAGEN_FORBES_GEN_H_

#include "datagen/registry.h"

namespace mesa {

/// Generates the Forbes celebrity-earnings world: one row per celebrity
/// per year (Name, Category, Year, Pay) plus a person KG whose property
/// vocabulary differs by category (actors have awards/honors, athletes
/// have cups/draft picks) — reproducing the 73% missingness of §5.2. Pay
/// is driven by the latent talent (proxied by Net Worth in the KG), a
/// gender pay gap for actors, and performance attributes for athletes —
/// the paper's Forbes Q1–Q3 structure. Default size 1,647 rows (Table 1):
/// ~150 celebrities over 11 years.
Result<GeneratedDataset> MakeForbesDataset(const GenOptions& options);

}  // namespace mesa

#endif  // MESA_DATAGEN_FORBES_GEN_H_
