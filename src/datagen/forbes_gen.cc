#include "datagen/forbes_gen.h"

#include <algorithm>
#include <cmath>

#include "datagen/common_gen.h"
#include "table/table_builder.h"

namespace mesa {

Result<GeneratedDataset> MakeForbesDataset(const GenOptions& options) {
  const size_t rows = options.rows > 0 ? options.rows : 1'647;
  constexpr size_t kYears = 11;  // 2005..2015
  const size_t num_celebs = std::max<size_t>(20, (rows + kYears - 1) / kYears);
  Rng rng(options.seed ^ 0xF0BE5);

  std::vector<CelebrityModel> celebs = BuildCelebrityWorld(&rng, num_celebs);

  GeneratedDataset out;
  out.name = "Forbes";
  out.kg = std::make_shared<TripleStore>();
  SyntheticKgBuilder kg_builder(out.kg.get(), options.seed ^ 0xF0B);
  ForbesKgOptions kg_opts;
  if (options.kg_missing_rate >= 0.0) {
    kg_opts.missing_rate = options.kg_missing_rate;
  }
  kg_opts.noise_attributes = options.kg_noise_attributes;
  PopulateForbesKg(celebs, &kg_builder, kg_opts);
  out.extraction_columns = {"Name"};

  Schema schema({{"Name", DataType::kString},
                 {"Category", DataType::kString},
                 {"Year", DataType::kInt64},
                 {"Pay", DataType::kDouble}});
  TableBuilder builder(std::move(schema));

  size_t emitted = 0;
  for (size_t year_idx = 0; year_idx < kYears && emitted < rows; ++year_idx) {
    for (size_t ci = 0; ci < celebs.size() && emitted < rows; ++ci) {
      const CelebrityModel& c = celebs[ci];
      double base;
      if (c.category == "Athletes") {
        // Performance-based pay: cups and (inverse) draft pick dominate.
        base = 4.0 + 5.5 * c.cups + 2.0 * c.national_cups +
               0.35 * (60.0 - c.draft_pick);
      } else if (c.category == "Actors") {
        // Experience (net worth proxy) plus a gender gap.
        base = 6.0 + 9.0 * std::log1p(c.net_worth);
        base *= c.gender == "male" ? 1.28 : 1.0;
      } else if (c.category == "Directors/Producers") {
        base = 5.0 + 7.0 * std::log1p(c.net_worth) + 1.6 * c.awards;
      } else {  // Musicians
        base = 5.0 + 8.0 * std::log1p(c.net_worth) + 0.9 * c.awards;
      }
      double year_trend =
          1.0 + 0.03 * static_cast<double>(year_idx);  // market growth
      double pay = std::max(
          0.5, base * year_trend + rng.NextGaussian(0.0, 3.0));
      MESA_RETURN_IF_ERROR(builder.AppendRow(
          {Value::String(c.name), Value::String(c.category),
           Value::Int(static_cast<int64_t>(2005 + year_idx)),
           Value::Double(pay)}));
      ++emitted;
    }
  }
  MESA_ASSIGN_OR_RETURN(out.table, builder.Finish());
  return out;
}

}  // namespace mesa
