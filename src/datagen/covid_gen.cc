#include "datagen/covid_gen.h"

#include <algorithm>
#include <cmath>

#include "datagen/common_gen.h"
#include "table/table_builder.h"

namespace mesa {

Result<GeneratedDataset> MakeCovidDataset(const GenOptions& options) {
  const size_t rows = options.rows > 0 ? options.rows : 188;
  Rng rng(options.seed ^ 0xC0D1D0);

  std::vector<CountryModel> countries = BuildCountryWorld(&rng);

  GeneratedDataset out;
  out.name = "COVID-19";
  out.kg = std::make_shared<TripleStore>();
  SyntheticKgBuilder kg_builder(out.kg.get(), options.seed ^ 0xC0F);
  CountryKgOptions kg_opts;
  kg_opts.missing_rate =
      options.kg_missing_rate >= 0.0 ? options.kg_missing_rate : 0.15;
  kg_opts.noise_attributes = options.kg_noise_attributes;
  PopulateCountryKg(countries, &kg_builder, kg_opts);
  out.extraction_columns = {"Country", "WHO_Region"};

  for (const char* region : {"Europe", "Africa", "Americas",
                             "South-East Asia", "Western Pacific"}) {
    EntityId id = kg_builder.EnsureEntity(region, "WHORegion");
    kg_builder.AddNumeric(id, "region_population",
                          rng.NextUniform(4e8, 3e9), kg_opts.missing_rate);
    kg_builder.AddNoiseProperties(id, "WHORegion", 2, kg_opts.missing_rate);
  }

  Schema schema({{"Country", DataType::kString},
                 {"WHO_Region", DataType::kString},
                 {"Confirmed_per_100k", DataType::kDouble},
                 {"Deaths_per_100_cases", DataType::kDouble},
                 {"Recovered_per_100_cases", DataType::kDouble},
                 {"New_cases_per_100k", DataType::kDouble}});
  TableBuilder builder(std::move(schema));

  // Per-country base epidemiology; snapshots add temporal noise.
  for (size_t r = 0; r < rows; ++r) {
    const CountryModel& c = countries[r % countries.size()];
    // Testing capacity tracks success, so richer countries *confirm* more
    // per 100k even with similar true incidence.
    double confirmed = std::exp(rng.NextUniform(4.0, 6.5)) *
                       (0.4 + 1.2 * c.success);
    // Case fatality falls with country success (healthcare quality) and
    // rises mildly with load (confirmed).
    // Density adds a success-independent driver, so deaths stay explainable
    // inside Europe where success is near-constant (Covid Q2's {Gini,
    // Density, Confirmed} shape).
    double deaths = 9.5 * (1.05 - c.success) + 0.0035 * confirmed +
                    1.1 * std::log10(std::max(1.0, c.density)) +
                    rng.NextGaussian(0.0, 0.45);
    deaths = std::clamp(deaths, 0.1, 25.0);
    double recovered = std::clamp(
        55.0 + 35.0 * c.success + rng.NextGaussian(0.0, 4.0), 5.0, 99.0);
    double new_cases = confirmed * rng.NextUniform(0.01, 0.06);

    MESA_RETURN_IF_ERROR(builder.AppendRow(
        {Value::String(c.name), Value::String(c.who_region),
         Value::Double(confirmed), Value::Double(deaths),
         Value::Double(recovered), Value::Double(new_cases)}));
  }
  MESA_ASSIGN_OR_RETURN(out.table, builder.Finish());
  return out;
}

}  // namespace mesa
