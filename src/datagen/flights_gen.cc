#include "datagen/flights_gen.h"

#include <algorithm>
#include <cmath>

#include "datagen/common_gen.h"
#include "table/table_builder.h"

namespace mesa {

Result<GeneratedDataset> MakeFlightsDataset(const GenOptions& options) {
  const size_t rows = options.rows > 0 ? options.rows : 100'000;
  Rng rng(options.seed ^ 0xF11875);

  std::vector<CityModel> cities = BuildCityWorld(&rng);
  std::vector<AirlineModel> airlines = BuildAirlineWorld(&rng);

  GeneratedDataset out;
  out.name = "Flights";
  out.kg = std::make_shared<TripleStore>();
  SyntheticKgBuilder kg_builder(out.kg.get(), options.seed ^ 0xA1B);
  FlightsKgOptions kg_opts;
  if (options.kg_missing_rate >= 0.0) {
    kg_opts.missing_rate = options.kg_missing_rate;
  }
  kg_opts.noise_attributes = options.kg_noise_attributes;
  PopulateFlightsKg(cities, airlines, &kg_builder, kg_opts);
  out.extraction_columns = {"Airline", "Origin_city"};

  // Traffic weights: flights concentrate in big cities and big airlines.
  std::vector<double> city_w, airline_w;
  for (const auto& c : cities) city_w.push_back(std::sqrt(c.population));
  for (const auto& a : airlines) airline_w.push_back(0.2 + a.scale);

  Schema schema({{"Airline", DataType::kString},
                 {"Origin_city", DataType::kString},
                 {"Origin_state", DataType::kString},
                 {"Destination_city", DataType::kString},
                 {"Month", DataType::kInt64},
                 {"Day_of_week", DataType::kInt64},
                 {"Distance", DataType::kDouble},
                 {"Security_delay", DataType::kDouble},
                 {"Cancelled", DataType::kBool},
                 {"Departure_delay", DataType::kDouble}});
  TableBuilder builder(std::move(schema));

  for (size_t r = 0; r < rows; ++r) {
    const AirlineModel& airline = airlines[rng.NextWeighted(airline_w)];
    size_t oi = rng.NextWeighted(city_w);
    size_t di = rng.NextWeighted(city_w);
    if (di == oi) di = (di + 1) % cities.size();
    const CityModel& origin = cities[oi];
    const CityModel& dest = cities[di];

    int64_t month = rng.NextInt(1, 12);
    int64_t dow = rng.NextInt(1, 7);
    double distance = rng.NextUniform(150.0, 2800.0);
    // Winter amplifies the weather effect.
    double season = (month <= 2 || month == 12) ? 1.5 : 1.0;
    double traffic = std::log10(origin.population / 1e5);
    // Busier airports run longer security queues, so Security_delay is a
    // row-level proxy of the origin's traffic — a genuine confounder the
    // paper's Flights Q3/Q4 explanations include.
    double security = std::max(
        0.0, rng.NextExponential(0.55) * (0.5 + 0.55 * traffic) - 0.9);
    double delay = -4.0 + 26.0 * origin.weather * season + 6.5 * traffic +
                   17.0 * (1.0 - airline.quality) + 2.2 * security +
                   rng.NextGaussian(0.0, 9.0);
    // Heavy right tail: a few catastrophic delays, as in the BTS data.
    if (rng.NextBernoulli(0.03)) delay += rng.NextExponential(0.02);
    bool cancelled = rng.NextBernoulli(
        0.004 + 0.02 * origin.weather * season);
    if (cancelled) delay = 0.0;

    MESA_RETURN_IF_ERROR(builder.AppendRow(
        {Value::String(airline.name), Value::String(origin.name),
         Value::String(origin.state), Value::String(dest.name),
         Value::Int(month), Value::Int(dow), Value::Double(distance),
         Value::Double(security), Value::Bool(cancelled),
         Value::Double(delay)}));
  }
  MESA_ASSIGN_OR_RETURN(out.table, builder.Finish());
  return out;
}

}  // namespace mesa
