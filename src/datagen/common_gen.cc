#include "datagen/common_gen.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace mesa {

namespace {

struct CountrySeed {
  const char* name;
  const char* alias;  // nullptr = none
  const char* continent;
  const char* currency;
};

// ~60 countries. Aliases exercise the NED linker the way DBpedia does
// ("Russian Federation" in the table vs "Russia" in the KG).
constexpr CountrySeed kCountrySeeds[] = {
    // Europe (19)
    {"Germany", nullptr, "Europe", "Euro"},
    {"France", nullptr, "Europe", "Euro"},
    {"United Kingdom", "UK", "Europe", "Pound"},
    {"Spain", nullptr, "Europe", "Euro"},
    {"Italy", nullptr, "Europe", "Euro"},
    {"Poland", nullptr, "Europe", "Zloty"},
    {"Netherlands", "Holland", "Europe", "Euro"},
    {"Sweden", nullptr, "Europe", "Krona"},
    {"Norway", nullptr, "Europe", "Krone"},
    {"Denmark", nullptr, "Europe", "Krone"},
    {"Finland", nullptr, "Europe", "Euro"},
    {"Switzerland", nullptr, "Europe", "Franc"},
    {"Austria", nullptr, "Europe", "Euro"},
    {"Belgium", nullptr, "Europe", "Euro"},
    {"Portugal", nullptr, "Europe", "Euro"},
    {"Greece", nullptr, "Europe", "Euro"},
    {"Czechia", "Czech Republic", "Europe", "Koruna"},
    {"Ireland", nullptr, "Europe", "Euro"},
    {"Russia", "Russian Federation", "Europe", "Ruble"},
    {"Romania", nullptr, "Europe", "Leu"},
    {"Hungary", nullptr, "Europe", "Forint"},
    {"Bulgaria", nullptr, "Europe", "Lev"},
    {"Croatia", nullptr, "Europe", "Euro"},
    {"Slovakia", nullptr, "Europe", "Euro"},
    {"Slovenia", nullptr, "Europe", "Euro"},
    {"Lithuania", nullptr, "Europe", "Euro"},
    {"Latvia", nullptr, "Europe", "Euro"},
    {"Estonia", nullptr, "Europe", "Euro"},
    {"Serbia", nullptr, "Europe", "Dinar"},
    {"Ukraine", nullptr, "Europe", "Hryvnia"},
    {"Iceland", nullptr, "Europe", "Krona"},
    {"Luxembourg", nullptr, "Europe", "Euro"},
    {"Albania", nullptr, "Europe", "Lek"},
    {"Bosnia", nullptr, "Europe", "Mark"},
    {"North Macedonia", nullptr, "Europe", "Denar"},
    {"Moldova", nullptr, "Europe", "Leu"},
    {"Montenegro", nullptr, "Europe", "Euro"},
    {"Cyprus", nullptr, "Europe", "Euro"},
    {"Malta", nullptr, "Europe", "Euro"},
    // Asia (14)
    {"China", nullptr, "Asia", "Yuan"},
    {"India", nullptr, "Asia", "Rupee"},
    {"Japan", nullptr, "Asia", "Yen"},
    {"South Korea", "Korea", "Asia", "Won"},
    {"Indonesia", nullptr, "Asia", "Rupiah"},
    {"Vietnam", "Viet Nam", "Asia", "Dong"},
    {"Thailand", nullptr, "Asia", "Baht"},
    {"Philippines", nullptr, "Asia", "Peso"},
    {"Malaysia", nullptr, "Asia", "Ringgit"},
    {"Pakistan", nullptr, "Asia", "Rupee"},
    {"Bangladesh", nullptr, "Asia", "Taka"},
    {"Israel", nullptr, "Asia", "Shekel"},
    {"Turkey", nullptr, "Asia", "Lira"},
    {"Saudi Arabia", nullptr, "Asia", "Riyal"},
    {"Singapore", nullptr, "Asia", "Dollar"},
    {"Taiwan", nullptr, "Asia", "Dollar"},
    {"Sri Lanka", nullptr, "Asia", "Rupee"},
    {"Nepal", nullptr, "Asia", "Rupee"},
    {"Kazakhstan", nullptr, "Asia", "Tenge"},
    {"Jordan", nullptr, "Asia", "Dinar"},
    {"Lebanon", nullptr, "Asia", "Pound"},
    {"Qatar", nullptr, "Asia", "Riyal"},
    {"United Arab Emirates", "UAE", "Asia", "Dirham"},
    {"Mongolia", nullptr, "Asia", "Tugrik"},
    {"Myanmar", "Burma", "Asia", "Kyat"},
    {"Cambodia", nullptr, "Asia", "Riel"},
    {"Laos", nullptr, "Asia", "Kip"},
    {"Uzbekistan", nullptr, "Asia", "Som"},
    {"Azerbaijan", nullptr, "Asia", "Manat"},
    {"Georgia", nullptr, "Asia", "Lari"},
    {"Armenia", nullptr, "Asia", "Dram"},
    {"Kuwait", nullptr, "Asia", "Dinar"},
    {"Oman", nullptr, "Asia", "Rial"},
    {"Bahrain", nullptr, "Asia", "Dinar"},
    // North America (6)
    {"United States", "USA", "North America", "Dollar"},
    {"Canada", nullptr, "North America", "Dollar"},
    {"Mexico", nullptr, "North America", "Peso"},
    {"Cuba", nullptr, "North America", "Peso"},
    {"Guatemala", nullptr, "North America", "Quetzal"},
    {"Panama", nullptr, "North America", "Balboa"},
    {"Costa Rica", nullptr, "North America", "Colon"},
    {"Honduras", nullptr, "North America", "Lempira"},
    {"Jamaica", nullptr, "North America", "Dollar"},
    {"Dominican Republic", nullptr, "North America", "Peso"},
    {"Nicaragua", nullptr, "North America", "Cordoba"},
    {"El Salvador", nullptr, "North America", "Dollar"},
    {"Haiti", nullptr, "North America", "Gourde"},
    {"Trinidad", nullptr, "North America", "Dollar"},
    // South America (7)
    {"Brazil", nullptr, "South America", "Real"},
    {"Argentina", nullptr, "South America", "Peso"},
    {"Chile", nullptr, "South America", "Peso"},
    {"Colombia", nullptr, "South America", "Peso"},
    {"Peru", nullptr, "South America", "Sol"},
    {"Uruguay", nullptr, "South America", "Peso"},
    {"Ecuador", nullptr, "South America", "Dollar"},
    {"Bolivia", nullptr, "South America", "Boliviano"},
    {"Paraguay", nullptr, "South America", "Guarani"},
    {"Venezuela", nullptr, "South America", "Bolivar"},
    {"Guyana", nullptr, "South America", "Dollar"},
    {"Suriname", nullptr, "South America", "Dollar"},
    // Africa (12)
    {"Nigeria", nullptr, "Africa", "Naira"},
    {"Egypt", nullptr, "Africa", "Pound"},
    {"South Africa", nullptr, "Africa", "Rand"},
    {"Kenya", nullptr, "Africa", "Shilling"},
    {"Ethiopia", nullptr, "Africa", "Birr"},
    {"Ghana", nullptr, "Africa", "Cedi"},
    {"Morocco", nullptr, "Africa", "Dirham"},
    {"Algeria", nullptr, "Africa", "Dinar"},
    {"Tunisia", nullptr, "Africa", "Dinar"},
    {"Tanzania", nullptr, "Africa", "Shilling"},
    {"Uganda", nullptr, "Africa", "Shilling"},
    {"Senegal", nullptr, "Africa", "Franc"},
    {"Ivory Coast", "Cote d'Ivoire", "Africa", "Franc"},
    {"Cameroon", nullptr, "Africa", "Franc"},
    {"Zambia", nullptr, "Africa", "Kwacha"},
    {"Zimbabwe", nullptr, "Africa", "Dollar"},
    {"Botswana", nullptr, "Africa", "Pula"},
    {"Namibia", nullptr, "Africa", "Dollar"},
    {"Rwanda", nullptr, "Africa", "Franc"},
    {"Mozambique", nullptr, "Africa", "Metical"},
    {"Mali", nullptr, "Africa", "Franc"},
    {"Niger", nullptr, "Africa", "Franc"},
    {"Chad", nullptr, "Africa", "Franc"},
    {"Sudan", nullptr, "Africa", "Pound"},
    {"Angola", nullptr, "Africa", "Kwanza"},
    {"Benin", nullptr, "Africa", "Franc"},
    {"Togo", nullptr, "Africa", "Franc"},
    {"Gabon", nullptr, "Africa", "Franc"},
    {"Madagascar", nullptr, "Africa", "Ariary"},
    {"Malawi", nullptr, "Africa", "Kwacha"},
    // Oceania (3)
    {"Australia", nullptr, "Oceania", "Dollar"},
    {"New Zealand", nullptr, "Oceania", "Dollar"},
    {"Fiji", nullptr, "Oceania", "Dollar"},
    {"Papua New Guinea", nullptr, "Oceania", "Kina"},
    {"Samoa", nullptr, "Oceania", "Tala"},
};

double ContinentSuccessMean(const std::string& continent) {
  if (continent == "Europe") return 0.85;
  if (continent == "North America") return 0.74;
  if (continent == "Oceania") return 0.82;
  if (continent == "Asia") return 0.55;
  if (continent == "South America") return 0.52;
  return 0.35;  // Africa
}

double ContinentSuccessSpread(const std::string& continent) {
  // Europe is deliberately tight: HDI ends up near-constant there, which
  // is what makes the Europe subgroup unexplained by {HDI, ...}.
  if (continent == "Europe") return 0.015;
  if (continent == "Oceania") return 0.04;
  return 0.12;
}

const char* WhoRegionOf(const std::string& continent) {
  if (continent == "Europe") return "Europe";
  if (continent == "Africa") return "Africa";
  if (continent == "Asia") return "South-East Asia";
  if (continent == "Oceania") return "Western Pacific";
  return "Americas";  // both Americas
}

}  // namespace

std::vector<CountryModel> BuildCountryWorld(Rng* rng) {
  std::vector<CountryModel> out;
  out.reserve(std::size(kCountrySeeds));
  for (const CountrySeed& seed : kCountrySeeds) {
    CountryModel c;
    c.name = seed.name;
    c.alias = seed.alias != nullptr ? seed.alias : "";
    c.continent = seed.continent;
    c.currency = seed.currency;
    c.who_region = WhoRegionOf(c.continent);
    double mean = ContinentSuccessMean(c.continent);
    double spread = ContinentSuccessSpread(c.continent);
    c.success = std::clamp(rng->NextGaussian(mean, spread), 0.05, 0.98);

    c.hdi = std::clamp(0.30 + 0.65 * c.success + rng->NextGaussian(0.0, 0.015),
                       0.2, 0.99);
    c.gdp = std::max(0.8, 95.0 * c.success * c.success +
                              rng->NextGaussian(0.0, 4.0));
    // Gini carries a success-independent component so it varies *within*
    // Europe, where success is near-constant.
    c.gini = std::clamp(
        52.0 - 16.0 * c.success + 16.0 * rng->NextDouble(), 22.0, 65.0);
    c.population = std::exp(rng->NextUniform(14.0, 20.5));  // ~1.2M..800M
    c.area = std::exp(rng->NextUniform(10.5, 15.8));        // ~36k..7.3M km^2
    c.density = c.population / c.area;
    c.leader_age = std::round(rng->NextUniform(38.0, 82.0));
    c.leader_gender = rng->NextBernoulli(0.22) ? "female" : "male";
    out.push_back(std::move(c));
  }
  return out;
}

void PopulateCountryKg(const std::vector<CountryModel>& countries,
                       SyntheticKgBuilder* builder,
                       const CountryKgOptions& options) {
  // Dense ranks by hdi / gdp (1 = best) — the redundancy twins.
  std::vector<size_t> by_hdi(countries.size());
  std::vector<size_t> by_gdp(countries.size());
  for (size_t i = 0; i < countries.size(); ++i) by_hdi[i] = by_gdp[i] = i;
  std::sort(by_hdi.begin(), by_hdi.end(), [&](size_t a, size_t b) {
    return countries[a].hdi > countries[b].hdi;
  });
  std::sort(by_gdp.begin(), by_gdp.end(), [&](size_t a, size_t b) {
    return countries[a].gdp > countries[b].gdp;
  });
  std::vector<double> hdi_rank(countries.size()), gdp_rank(countries.size());
  for (size_t r = 0; r < countries.size(); ++r) {
    hdi_rank[by_hdi[r]] = static_cast<double>(r + 1);
    gdp_rank[by_gdp[r]] = static_cast<double>(r + 1);
  }

  const double m = options.missing_rate;
  for (size_t i = 0; i < countries.size(); ++i) {
    const CountryModel& c = countries[i];
    EntityId id = builder->EnsureEntity(c.name, "Country");
    if (!c.alias.empty()) {
      Status st = builder->store()->AddAlias(id, c.alias);
      MESA_CHECK(st.ok());
    }
    if (options.add_rank_twins) {
      builder->AddNumericWithRank(id, "hdi", c.hdi, hdi_rank[i], m);
      builder->AddNumericWithRank(id, "gdp", c.gdp, gdp_rank[i], m);
    } else {
      builder->AddNumeric(id, "hdi", c.hdi, m);
      builder->AddNumeric(id, "gdp", c.gdp, m);
    }
    builder->AddNumeric(id, "gini", c.gini, m);
    builder->AddNumeric(id, "density", c.density, m);
    builder->AddNumeric(id, "population_census", c.population, m);
    builder->AddNumeric(id, "population_estimate",
                        c.population * builder->rng().NextUniform(0.97, 1.03),
                        m);
    builder->AddNumeric(id, "area_km2", c.area, m);
    builder->AddCategorical(id, "currency_name", c.currency, m);
    builder->AddCategorical(id, "official_language",
                            "Lang_" + std::to_string(i % 23), m);
    builder->AddNumeric(id, "established_year",
                        std::round(builder->rng().NextUniform(1100, 1990)), m);
    builder->AddNoiseProperties(id, "Country", options.noise_attributes, m);

    if (options.add_leader_hop) {
      EntityId leader =
          builder->EnsureEntity("Leader of " + c.name, "Person");
      Status st = builder->store()->AddEdge(id, "leader", leader);
      MESA_CHECK(st.ok());
      builder->AddNumeric(leader, "age", c.leader_age, m);
      builder->AddCategorical(leader, "gender", c.leader_gender, m);
    }
  }
}

namespace {

struct CitySeed {
  const char* name;
  const char* state;
  double weather;  // latent bad-weather score
  double pop_m;    // population, millions
};

constexpr CitySeed kCitySeeds[] = {
    {"New York", "NY", 0.55, 8.4},      {"Los Angeles", "CA", 0.15, 3.9},
    {"Chicago", "IL", 0.80, 2.7},       {"Houston", "TX", 0.45, 2.3},
    {"Phoenix", "AZ", 0.08, 1.6},       {"Philadelphia", "PA", 0.58, 1.6},
    {"San Antonio", "TX", 0.35, 1.5},   {"San Diego", "CA", 0.10, 1.4},
    {"Dallas", "TX", 0.42, 1.3},        {"San Jose", "CA", 0.14, 1.0},
    {"Austin", "TX", 0.33, 0.96},       {"Seattle", "WA", 0.72, 0.74},
    {"Denver", "CO", 0.66, 0.72},       {"Boston", "MA", 0.70, 0.69},
    {"Detroit", "MI", 0.78, 0.67},      {"Atlanta", "GA", 0.50, 0.50},
    {"Miami", "FL", 0.47, 0.45},        {"Minneapolis", "MN", 0.85, 0.43},
    {"New Orleans", "LA", 0.52, 0.39},  {"Cleveland", "OH", 0.76, 0.37},
    {"Tampa", "FL", 0.44, 0.39},        {"Pittsburgh", "PA", 0.68, 0.30},
    {"St Louis", "MO", 0.62, 0.30},     {"Cincinnati", "OH", 0.64, 0.31},
    {"Orlando", "FL", 0.42, 0.29},      {"Salt Lake City", "UT", 0.58, 0.20},
    {"Buffalo", "NY", 0.88, 0.26},      {"Portland", "OR", 0.69, 0.65},
    {"Las Vegas", "NV", 0.07, 0.64},    {"Charlotte", "NC", 0.46, 0.87},
    {"Nashville", "TN", 0.48, 0.69},    {"Kansas City", "MO", 0.60, 0.50},
    {"Sacramento", "CA", 0.20, 0.52},   {"Anchorage", "AK", 0.92, 0.29},
    {"Honolulu", "HI", 0.18, 0.35},     {"Baltimore", "MD", 0.56, 0.59},
    {"Indianapolis", "IN", 0.63, 0.88}, {"Columbus", "OH", 0.61, 0.90},
    {"Memphis", "TN", 0.49, 0.63},      {"Milwaukee", "WI", 0.82, 0.57},
};

constexpr const char* kAirlineNames[] = {
    "American Airlines", "Delta Air Lines", "United Airlines",
    "Southwest Airlines", "JetBlue Airways", "Alaska Airlines",
    "Spirit Airlines",   "Frontier Airlines", "Hawaiian Airlines",
    "Allegiant Air",     "SkyWest Airlines",  "Envoy Air",
    "Republic Airways",  "Sun Country Airlines", "Endeavor Air",
    "PSA Airlines",      "Piedmont Airlines", "Horizon Air",
    "Mesa Airlines",     "GoJet Airlines", "Air Wisconsin",
    "CommuteAir",        "SkyValue Airways", "Breeze Airways",
};

}  // namespace

std::vector<CityModel> BuildCityWorld(Rng* rng) {
  std::vector<CityModel> out;
  out.reserve(std::size(kCitySeeds));
  for (const CitySeed& seed : kCitySeeds) {
    CityModel c;
    c.name = seed.name;
    c.state = seed.state;
    c.weather = std::clamp(seed.weather + rng->NextGaussian(0.0, 0.03), 0.0,
                           1.0);
    c.population = seed.pop_m * 1e6 * rng->NextUniform(0.95, 1.05);
    c.precipitation_days = 40.0 + 140.0 * c.weather +
                           rng->NextGaussian(0.0, 6.0);
    c.year_low_f = 60.0 - 55.0 * c.weather + rng->NextGaussian(0.0, 2.5);
    c.year_avg_f = c.year_low_f + 22.0 + rng->NextGaussian(0.0, 1.5);
    c.density = c.population / rng->NextUniform(200.0, 1200.0);
    out.push_back(std::move(c));
  }
  return out;
}

std::vector<AirlineModel> BuildAirlineWorld(Rng* rng) {
  std::vector<AirlineModel> out;
  out.reserve(std::size(kAirlineNames));
  for (const char* name : kAirlineNames) {
    AirlineModel a;
    a.name = name;
    a.quality = rng->NextUniform(0.15, 0.95);
    a.scale = rng->NextUniform(0.1, 1.0);
    // Financial health tracks operational quality closely: well-run
    // carriers accumulate equity and fleet (these attributes are what
    // explains delay-per-airline, the paper's Flights Q5).
    double q_mix = 0.8 * a.quality + 0.2 * a.scale;
    a.fleet_size = std::round(40.0 + 900.0 * q_mix +
                              rng->NextGaussian(0.0, 15.0));
    a.equity = 0.5 + 14.0 * q_mix + rng->NextGaussian(0.0, 0.4);
    a.revenue = 1.0 + 45.0 * a.scale + rng->NextGaussian(0.0, 2.0);
    a.net_income = a.revenue * (0.02 + 0.08 * a.quality) +
                   rng->NextGaussian(0.0, 0.3);
    a.num_employees = std::round(3000.0 + 90000.0 * a.scale +
                                 rng->NextGaussian(0.0, 2500.0));
    out.push_back(std::move(a));
  }
  return out;
}

void PopulateFlightsKg(const std::vector<CityModel>& cities,
                       const std::vector<AirlineModel>& airlines,
                       SyntheticKgBuilder* builder,
                       const FlightsKgOptions& options) {
  const double m = options.missing_rate;
  for (const CityModel& c : cities) {
    EntityId id = builder->EnsureEntity(c.name, "City");
    builder->AddNumeric(id, "precipitation_days", c.precipitation_days, m);
    builder->AddNumeric(id, "year_low_f", c.year_low_f, m);
    builder->AddNumeric(id, "year_avg_f", c.year_avg_f, m);
    builder->AddNumeric(id, "december_low_f",
                        c.year_low_f - 18.0 + builder->rng().NextGaussian(0, 2),
                        m);
    builder->AddNumeric(id, "population_total", c.population, m);
    builder->AddNumeric(id, "population_urban", c.population * 0.8, m);
    builder->AddNumeric(id, "population_metropolitan", c.population * 1.6, m);
    builder->AddNumeric(id, "density", c.density, m);
    builder->AddNumeric(id, "median_household_income",
                        builder->rng().NextUniform(38000, 95000), m);
    builder->AddCategorical(id, "state_name", c.state, m);
    builder->AddNoiseProperties(id, "City", options.noise_attributes, m);
  }
  for (const AirlineModel& a : airlines) {
    EntityId id = builder->EnsureEntity(a.name, "Airline");
    builder->AddNumeric(id, "fleet_size", a.fleet_size, m);
    builder->AddNumeric(id, "equity", a.equity, m);
    builder->AddNumeric(id, "revenue", a.revenue, m);
    builder->AddNumeric(id, "net_income", a.net_income, m);
    builder->AddNumeric(id, "num_employees", a.num_employees, m);
    builder->AddNoiseProperties(id, "Airline", options.noise_attributes, m);
  }
}

namespace {

constexpr const char* kFirstNames[] = {
    "James", "Maria", "Robert", "Linda",  "Carlos", "Sofia", "David",
    "Emma",  "Diego", "Olivia", "Ethan",  "Ava",    "Lucas", "Mia",
    "Noah",  "Iris",  "Leo",    "Nina",   "Omar",   "Tara",
};
constexpr const char* kLastNames[] = {
    "Smith",   "Garcia",   "Johnson",  "Silva",   "Brown",  "Martinez",
    "Miller",  "Rossi",    "Davis",    "Kim",     "Wilson", "Chen",
    "Moore",   "Tanaka",   "Taylor",   "Novak",   "Clark",  "Costa",
    "Lewis",   "Haddad",
};
constexpr const char* kCategories[] = {"Actors", "Directors/Producers",
                                       "Athletes", "Musicians"};

}  // namespace

std::vector<CelebrityModel> BuildCelebrityWorld(Rng* rng, size_t count) {
  std::vector<CelebrityModel> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    CelebrityModel c;
    c.name = std::string(kFirstNames[rng->NextBelow(std::size(kFirstNames))]) +
             " " + kLastNames[rng->NextBelow(std::size(kLastNames))] + " " +
             std::to_string(i);  // unique surname suffix
    c.category = kCategories[rng->NextBelow(std::size(kCategories))];
    c.talent = rng->NextUniform(0.05, 1.0);
    c.gender = rng->NextBernoulli(0.42) ? "female" : "male";
    c.age = std::round(rng->NextUniform(19.0, 78.0));
    c.active_since = std::round(2015.0 - (c.age - 18.0) *
                                             rng->NextUniform(0.4, 0.9));
    c.net_worth = std::exp(rng->NextUniform(0.0, 2.0) + 3.5 * c.talent);
    c.awards = std::round(12.0 * c.talent * rng->NextUniform(0.3, 1.0));
    if (c.category == std::string("Athletes")) {
      c.cups = std::round(8.0 * c.talent * rng->NextUniform(0.4, 1.0));
      c.national_cups = std::round(c.cups * rng->NextUniform(0.5, 1.5));
      c.draft_pick = std::round(1.0 + 59.0 * (1.0 - c.talent) *
                                          rng->NextUniform(0.5, 1.0));
    }
    out.push_back(std::move(c));
  }
  return out;
}

void PopulateForbesKg(const std::vector<CelebrityModel>& celebrities,
                      SyntheticKgBuilder* builder,
                      const ForbesKgOptions& options) {
  const double m = options.missing_rate;
  for (const CelebrityModel& c : celebrities) {
    EntityId id = builder->EnsureEntity(c.name, "Person");
    // Category-specific property vocabularies: DBpedia describes actors and
    // athletes with different predicates, which is why Forbes shows 73%
    // missing values overall.
    builder->AddNumeric(id, "net_worth", c.net_worth, m);
    builder->AddCategorical(id, "gender", c.gender, m);
    builder->AddNumeric(id, "age", c.age, m);
    builder->AddNumeric(id, "active_since", c.active_since, m);
    if (c.category == "Athletes") {
      builder->AddNumeric(id, "cups", c.cups, m);
      builder->AddNumeric(id, "national_cups", c.national_cups, m);
      builder->AddNumeric(id, "draft_pick", c.draft_pick, m);
    } else {
      builder->AddNumeric(id, "awards", c.awards, m);
      builder->AddCategorical(id, "citizenship",
                              "Country_" + std::to_string(
                                  builder->rng().NextBelow(25)),
                              m);
      if (c.category == "Actors" || c.category == "Directors/Producers") {
        builder->AddNumeric(id, "honors",
                            std::round(c.awards *
                                       builder->rng().NextUniform(0.3, 0.8)),
                            m);
      }
    }
    builder->AddNoiseProperties(id, "Person", options.noise_attributes, m);
  }
  if (options.add_ambiguous_aliases && celebrities.size() >= 2) {
    // Two entities sharing one surface form: the linker must report
    // ambiguity (the paper's Ronaldo example).
    EntityId a = builder->EnsureEntity("Ronaldo Nazario", "Person");
    EntityId b = builder->EnsureEntity("Cristiano Ronaldo", "Person");
    MESA_CHECK(builder->store()->AddAlias(a, "Ronaldo").ok());
    MESA_CHECK(builder->store()->AddAlias(b, "Ronaldo").ok());
  }
}

}  // namespace mesa
