#include "datagen/so_gen.h"

#include <cmath>

#include "datagen/common_gen.h"
#include "table/table_builder.h"

namespace mesa {

namespace {

constexpr const char* kDevTypes[] = {
    "Backend", "Frontend", "Fullstack", "Mobile",
    "DevOps",  "DataScience", "Embedded", "QA",
};

double DevTypeBonus(size_t dev_type) {
  static const double kBonus[] = {1.08, 0.88, 1.0, 0.95, 1.18, 1.32, 1.04, 0.76};
  return kBonus[dev_type];
}

}  // namespace

Result<GeneratedDataset> MakeStackOverflowDataset(const GenOptions& options) {
  const size_t rows = options.rows > 0 ? options.rows : 47'623;
  Rng rng(options.seed);

  std::vector<CountryModel> countries = BuildCountryWorld(&rng);

  GeneratedDataset out;
  out.name = "SO";
  out.kg = std::make_shared<TripleStore>();
  SyntheticKgBuilder kg_builder(out.kg.get(), options.seed ^ 0x50F7);
  CountryKgOptions kg_opts;
  if (options.kg_missing_rate >= 0.0) {
    kg_opts.missing_rate = options.kg_missing_rate;
  }
  kg_opts.noise_attributes = options.kg_noise_attributes;
  PopulateCountryKg(countries, &kg_builder, kg_opts);
  out.extraction_columns = {"Country", "Continent"};

  // Continents as linkable entities too (SO extracts on both columns).
  for (const char* continent :
       {"Europe", "Asia", "North America", "South America", "Africa",
        "Oceania"}) {
    double mean_success = 0.0;
    double mean_density = 0.0;
    double total_pop = 0.0, total_area = 0.0;
    size_t n = 0;
    for (const auto& c : countries) {
      if (c.continent == continent) {
        mean_success += c.success;
        total_pop += c.population;
        total_area += c.area;
        ++n;
      }
    }
    mean_success /= static_cast<double>(n);
    mean_density = total_pop / total_area;
    EntityId id = kg_builder.EnsureEntity(continent, "Continent");
    kg_builder.AddNumeric(id, "continent_gdp",
                          95.0 * mean_success * mean_success,
                          kg_opts.missing_rate);
    kg_builder.AddNumeric(id, "continent_density", mean_density,
                          kg_opts.missing_rate);
    kg_builder.AddNumeric(id, "continent_area", total_area,
                          kg_opts.missing_rate);
    kg_builder.AddNoiseProperties(id, "Continent", 2, kg_opts.missing_rate);
  }

  // Row sampling weights: developers come disproportionately from large,
  // successful countries.
  std::vector<double> weights;
  weights.reserve(countries.size());
  for (const auto& c : countries) {
    weights.push_back(std::sqrt(c.population) * (0.3 + c.success));
  }

  Schema schema({{"Country", DataType::kString},
                 {"Continent", DataType::kString},
                 {"Gender", DataType::kString},
                 {"DevType", DataType::kString},
                 {"Age", DataType::kInt64},
                 {"YearsCode", DataType::kInt64},
                 {"Hobby", DataType::kBool},
                 {"Salary", DataType::kDouble}});
  TableBuilder builder(std::move(schema));

  for (size_t r = 0; r < rows; ++r) {
    const CountryModel& c = countries[rng.NextWeighted(weights)];
    bool male = rng.NextBernoulli(0.78);
    size_t dev_type = rng.NextBelow(std::size(kDevTypes));
    int64_t age = rng.NextInt(18, 64);
    int64_t years_code =
        std::min<int64_t>(age - 17, rng.NextInt(1, 30));
    bool hobby = rng.NextBernoulli(0.55);

    // Salary model: HDI and Gini are the real country-level drivers, with
    // a developer-scarcity term in population. Individual effects (gender
    // gap, dev type, experience) add within-country variance.
    double pop_millions = c.population / 1e6;
    double salary = 4000.0 + 74000.0 * (c.hdi - 0.2) / 0.8 +
                    (40.0 - c.gini) * 1400.0 -
                    9000.0 * std::log10(std::max(1.0, pop_millions));
    salary *= DevTypeBonus(dev_type);
    salary *= male ? 1.10 : 0.94;
    salary *= 1.0 + 0.024 * static_cast<double>(years_code);
    salary += rng.NextGaussian(0.0, 4200.0);
    salary = std::max(1200.0, salary);

    MESA_RETURN_IF_ERROR(builder.AppendRow(
        {Value::String(c.name), Value::String(c.continent),
         Value::String(male ? "Man" : "Woman"),
         Value::String(kDevTypes[dev_type]), Value::Int(age),
         Value::Int(years_code), Value::Bool(hobby),
         Value::Double(salary)}));
  }
  MESA_ASSIGN_OR_RETURN(out.table, builder.Finish());
  return out;
}

}  // namespace mesa
