#ifndef MESA_STATS_OLS_H_
#define MESA_STATS_OLS_H_

#include <vector>

#include "common/result.h"

namespace mesa {

/// Fit summary of an ordinary-least-squares regression y ~ X (an intercept
/// column is added internally; index 0 of every output refers to it).
struct OlsFit {
  std::vector<double> coefficients;  ///< beta, intercept first.
  std::vector<double> std_errors;    ///< per-coefficient standard errors.
  std::vector<double> t_stats;       ///< beta / stderr.
  std::vector<double> p_values;      ///< two-sided, df = n - p.
  double r_squared = 0.0;
  double residual_variance = 0.0;    ///< SSE / (n - p)
  size_t n = 0;                      ///< observations
  size_t p = 0;                      ///< parameters incl. intercept
};

/// Fits OLS via the normal equations with ridge-stabilised Cholesky
/// (a tiny diagonal jitter handles collinear design matrices; exact
/// rank-deficiency is reported as an error). `x` is row-major, one inner
/// vector per observation; all rows must have the same arity.
Result<OlsFit> FitOls(const std::vector<std::vector<double>>& x,
                      const std::vector<double>& y);

/// Solves the symmetric positive-definite system A b = rhs (dimension n) by
/// Cholesky decomposition, in place. Exposed for tests and the logistic
/// solver. Returns false if A is not positive definite.
bool CholeskySolve(std::vector<double>& a, std::vector<double>& rhs, size_t n);

}  // namespace mesa

#endif  // MESA_STATS_OLS_H_
