#include "stats/ols.h"

#include <cmath>

#include "stats/distributions.h"

namespace mesa {

bool CholeskySolve(std::vector<double>& a, std::vector<double>& rhs,
                   size_t n) {
  // Decompose A = L L^T in place (lower triangle).
  for (size_t j = 0; j < n; ++j) {
    double d = a[j * n + j];
    for (size_t k = 0; k < j; ++k) d -= a[j * n + k] * a[j * n + k];
    if (d <= 0.0) return false;
    a[j * n + j] = std::sqrt(d);
    for (size_t i = j + 1; i < n; ++i) {
      double s = a[i * n + j];
      for (size_t k = 0; k < j; ++k) s -= a[i * n + k] * a[j * n + k];
      a[i * n + j] = s / a[j * n + j];
    }
  }
  // Forward substitution L z = rhs.
  for (size_t i = 0; i < n; ++i) {
    double s = rhs[i];
    for (size_t k = 0; k < i; ++k) s -= a[i * n + k] * rhs[k];
    rhs[i] = s / a[i * n + i];
  }
  // Back substitution L^T b = z.
  for (size_t ii = n; ii > 0; --ii) {
    size_t i = ii - 1;
    double s = rhs[i];
    for (size_t k = i + 1; k < n; ++k) s -= a[k * n + i] * rhs[k];
    rhs[i] = s / a[i * n + i];
  }
  return true;
}

namespace {

// Inverts SPD matrix A (given already Cholesky-decomposed lower triangle L)
// by solving for each unit vector. Returns the full inverse, row-major.
std::vector<double> CholeskyInverse(const std::vector<double>& l, size_t n) {
  std::vector<double> inv(n * n, 0.0);
  for (size_t col = 0; col < n; ++col) {
    std::vector<double> e(n, 0.0);
    e[col] = 1.0;
    // Forward.
    for (size_t i = 0; i < n; ++i) {
      double s = e[i];
      for (size_t k = 0; k < i; ++k) s -= l[i * n + k] * e[k];
      e[i] = s / l[i * n + i];
    }
    // Backward.
    for (size_t ii = n; ii > 0; --ii) {
      size_t i = ii - 1;
      double s = e[i];
      for (size_t k = i + 1; k < n; ++k) s -= l[k * n + i] * e[k];
      e[i] = s / l[i * n + i];
    }
    for (size_t i = 0; i < n; ++i) inv[i * n + col] = e[i];
  }
  return inv;
}

}  // namespace

Result<OlsFit> FitOls(const std::vector<std::vector<double>>& x,
                      const std::vector<double>& y) {
  const size_t n = y.size();
  if (x.size() != n) return Status::InvalidArgument("x/y length mismatch");
  if (n == 0) return Status::InvalidArgument("empty sample");
  const size_t k = x[0].size();
  const size_t p = k + 1;  // + intercept
  if (n <= p) {
    return Status::InvalidArgument("need more observations than parameters");
  }
  for (const auto& row : x) {
    if (row.size() != k) return Status::InvalidArgument("ragged design matrix");
  }

  // Normal equations: (X'X) beta = X'y, with intercept prepended.
  std::vector<double> xtx(p * p, 0.0);
  std::vector<double> xty(p, 0.0);
  auto feature = [&](size_t row, size_t j) -> double {
    return j == 0 ? 1.0 : x[row][j - 1];
  };
  for (size_t r = 0; r < n; ++r) {
    for (size_t i = 0; i < p; ++i) {
      double fi = feature(r, i);
      xty[i] += fi * y[r];
      for (size_t j = i; j < p; ++j) {
        xtx[i * p + j] += fi * feature(r, j);
      }
    }
  }
  for (size_t i = 0; i < p; ++i) {
    for (size_t j = 0; j < i; ++j) xtx[i * p + j] = xtx[j * p + i];
  }
  // Tiny ridge jitter stabilises near-collinear designs.
  double trace = 0.0;
  for (size_t i = 0; i < p; ++i) trace += xtx[i * p + i];
  double jitter = 1e-10 * (trace / static_cast<double>(p) + 1.0);
  for (size_t i = 0; i < p; ++i) xtx[i * p + i] += jitter;

  std::vector<double> chol = xtx;
  std::vector<double> beta = xty;
  if (!CholeskySolve(chol, beta, p)) {
    return Status::InvalidArgument("design matrix is rank deficient");
  }

  OlsFit fit;
  fit.n = n;
  fit.p = p;
  fit.coefficients = beta;

  // Residuals & SSE.
  double sse = 0.0, sst = 0.0, ymean = 0.0;
  for (double v : y) ymean += v;
  ymean /= static_cast<double>(n);
  for (size_t r = 0; r < n; ++r) {
    double pred = 0.0;
    for (size_t j = 0; j < p; ++j) pred += beta[j] * feature(r, j);
    double e = y[r] - pred;
    sse += e * e;
    double d = y[r] - ymean;
    sst += d * d;
  }
  double df = static_cast<double>(n - p);
  fit.residual_variance = sse / df;
  fit.r_squared = sst > 0.0 ? 1.0 - sse / sst : 0.0;

  // Covariance of beta = sigma^2 (X'X)^{-1}.
  std::vector<double> inv = CholeskyInverse(chol, p);
  fit.std_errors.resize(p);
  fit.t_stats.resize(p);
  fit.p_values.resize(p);
  for (size_t j = 0; j < p; ++j) {
    double var = fit.residual_variance * inv[j * p + j];
    fit.std_errors[j] = var > 0.0 ? std::sqrt(var) : 0.0;
    if (fit.std_errors[j] > 0.0) {
      fit.t_stats[j] = beta[j] / fit.std_errors[j];
      fit.p_values[j] = StudentTPValueTwoSided(fit.t_stats[j], df);
    } else {
      fit.t_stats[j] = 0.0;
      fit.p_values[j] = 1.0;
    }
  }
  return fit;
}

}  // namespace mesa
