#ifndef MESA_STATS_DESCRIPTIVE_H_
#define MESA_STATS_DESCRIPTIVE_H_

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace mesa {

/// Summary statistics of a numeric sample.
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< population variance (divides by n)
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Computes summary statistics. Empty input yields a zeroed Summary.
Summary Summarize(const std::vector<double>& values);

/// Arithmetic mean; error on empty input.
Result<double> Mean(const std::vector<double>& values);

/// Sample variance (divides by n-1); error when n < 2.
Result<double> SampleVariance(const std::vector<double>& values);

/// The q-quantile (0 <= q <= 1) by linear interpolation of the sorted
/// sample; error on empty input.
Result<double> Quantile(std::vector<double> values, double q);

/// Mean of values weighted by w (both same length, weights non-negative,
/// positive total). Used by the IPW estimators.
Result<double> WeightedMean(const std::vector<double>& values,
                            const std::vector<double>& weights);

}  // namespace mesa

#endif  // MESA_STATS_DESCRIPTIVE_H_
