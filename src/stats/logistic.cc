#include "stats/logistic.h"

#include <algorithm>
#include <cmath>

#include "stats/ols.h"

namespace mesa {

namespace {

double Sigmoid(double z) {
  if (z >= 0.0) {
    double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

double LogisticModel::PredictProbability(
    const std::vector<double>& features) const {
  double z = coefficients_.empty() ? 0.0 : coefficients_[0];
  size_t arity = std::min(features.size(), coefficients_.size() - 1);
  for (size_t j = 0; j < arity; ++j) z += coefficients_[j + 1] * features[j];
  return Sigmoid(z);
}

Result<LogisticModel> FitLogistic(const std::vector<std::vector<double>>& x,
                                  const std::vector<uint8_t>& y,
                                  const LogisticOptions& options) {
  const size_t n = y.size();
  if (x.size() != n) return Status::InvalidArgument("x/y length mismatch");
  if (n == 0) return Status::InvalidArgument("empty sample");
  const size_t k = x[0].size();
  const size_t p = k + 1;
  for (const auto& row : x) {
    if (row.size() != k) return Status::InvalidArgument("ragged design matrix");
  }

  auto feature = [&](size_t row, size_t j) -> double {
    return j == 0 ? 1.0 : x[row][j - 1];
  };

  LogisticModel model;
  std::vector<double>& beta = model.coefficients_;
  beta.assign(p, 0.0);

  // Start the intercept at the log-odds of the base rate: one Newton step
  // from a sensible point converges much faster on imbalanced labels.
  double pos = 0.0;
  for (uint8_t label : y) pos += label;
  double base = std::clamp(pos / static_cast<double>(n), 1e-6, 1.0 - 1e-6);
  beta[0] = std::log(base / (1.0 - base));

  std::vector<double> hess(p * p);
  std::vector<double> grad(p);
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    std::fill(hess.begin(), hess.end(), 0.0);
    std::fill(grad.begin(), grad.end(), 0.0);
    for (size_t r = 0; r < n; ++r) {
      double z = 0.0;
      for (size_t j = 0; j < p; ++j) z += beta[j] * feature(r, j);
      double mu = Sigmoid(z);
      double w = std::max(mu * (1.0 - mu), 1e-10);
      double resid = static_cast<double>(y[r]) - mu;
      for (size_t i = 0; i < p; ++i) {
        double fi = feature(r, i);
        grad[i] += fi * resid;
        for (size_t j = i; j < p; ++j) {
          hess[i * p + j] += w * fi * feature(r, j);
        }
      }
    }
    for (size_t i = 0; i < p; ++i) {
      grad[i] -= options.l2_penalty * beta[i];
      hess[i * p + i] += options.l2_penalty;
      for (size_t j = 0; j < i; ++j) hess[i * p + j] = hess[j * p + i];
    }
    std::vector<double> step = grad;
    std::vector<double> chol = hess;
    if (!CholeskySolve(chol, step, p)) {
      return Status::Internal("logistic Hessian not positive definite");
    }
    double max_delta = 0.0;
    for (size_t j = 0; j < p; ++j) {
      beta[j] += step[j];
      max_delta = std::max(max_delta, std::fabs(step[j]));
    }
    model.iterations_ = iter + 1;
    if (max_delta < options.tolerance) {
      model.converged_ = true;
      break;
    }
  }
  return model;
}

}  // namespace mesa
