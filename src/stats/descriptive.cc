#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

namespace mesa {

Summary Summarize(const std::vector<double>& values) {
  Summary s;
  if (values.empty()) return s;
  s.count = values.size();
  s.min = values[0];
  s.max = values[0];
  double sum = 0.0;
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.count);
  double ss = 0.0;
  for (double v : values) {
    double d = v - s.mean;
    ss += d * d;
  }
  s.variance = ss / static_cast<double>(s.count);
  s.stddev = std::sqrt(s.variance);
  return s;
}

Result<double> Mean(const std::vector<double>& values) {
  if (values.empty()) return Status::InvalidArgument("mean of empty sample");
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

Result<double> SampleVariance(const std::vector<double>& values) {
  if (values.size() < 2) {
    return Status::InvalidArgument("sample variance needs n >= 2");
  }
  MESA_ASSIGN_OR_RETURN(double m, Mean(values));
  double ss = 0.0;
  for (double v : values) {
    double d = v - m;
    ss += d * d;
  }
  return ss / static_cast<double>(values.size() - 1);
}

Result<double> Quantile(std::vector<double> values, double q) {
  if (values.empty()) {
    return Status::InvalidArgument("quantile of empty sample");
  }
  if (q < 0.0 || q > 1.0) {
    return Status::InvalidArgument("quantile q must be in [0, 1]");
  }
  std::sort(values.begin(), values.end());
  double pos = q * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(pos));
  size_t hi = static_cast<size_t>(std::ceil(pos));
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Result<double> WeightedMean(const std::vector<double>& values,
                            const std::vector<double>& weights) {
  if (values.size() != weights.size()) {
    return Status::InvalidArgument("values/weights length mismatch");
  }
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    if (weights[i] < 0.0) {
      return Status::InvalidArgument("negative weight");
    }
    num += values[i] * weights[i];
    den += weights[i];
  }
  if (den <= 0.0) {
    return Status::InvalidArgument("non-positive total weight");
  }
  return num / den;
}

}  // namespace mesa
