#ifndef MESA_STATS_DISTRIBUTIONS_H_
#define MESA_STATS_DISTRIBUTIONS_H_

namespace mesa {

/// Natural log of the gamma function (Lanczos approximation).
double LogGamma(double x);

/// Regularised incomplete gamma P(a, x) = γ(a,x)/Γ(a), a > 0, x >= 0.
double RegularizedGammaP(double a, double x);

/// Regularised incomplete beta I_x(a, b), 0 <= x <= 1, a,b > 0.
double RegularizedIncompleteBeta(double a, double b, double x);

/// Standard normal CDF.
double NormalCdf(double z);

/// Student-t CDF with `df` degrees of freedom.
double StudentTCdf(double t, double df);

/// Two-sided p-value for a t statistic with `df` degrees of freedom.
double StudentTPValueTwoSided(double t, double df);

/// Chi-squared upper-tail probability P(X >= x) with `df` degrees of
/// freedom (the p-value of a chi-squared test statistic).
double ChiSquaredSf(double x, double df);

}  // namespace mesa

#endif  // MESA_STATS_DISTRIBUTIONS_H_
