#include "stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace mesa {

Result<double> PearsonCorrelation(const std::vector<double>& x,
                                  const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("length mismatch");
  }
  const size_t n = x.size();
  if (n < 2) return Status::InvalidArgument("need at least 2 observations");
  double mx = 0.0, my = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double dx = x[i] - mx, dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) {
    return Status::InvalidArgument("constant sample has undefined correlation");
  }
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> Ranks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Average rank for the tie block [i, j], 1-based.
    double avg = 0.5 * (static_cast<double>(i + 1) + static_cast<double>(j + 1));
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

Result<double> SpearmanCorrelation(const std::vector<double>& x,
                                   const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("length mismatch");
  }
  return PearsonCorrelation(Ranks(x), Ranks(y));
}

}  // namespace mesa
