#ifndef MESA_STATS_DISCRETIZER_H_
#define MESA_STATS_DISCRETIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "table/table.h"

namespace mesa {

/// Binning strategies for numeric attributes. Information-theoretic
/// estimators need discrete variables, so every column is mapped to integer
/// codes before estimation (the paper bins numeric exposures and candidate
/// attributes the same way).
enum class BinningStrategy {
  /// Bins of equal width over [min, max].
  kEqualWidth,
  /// Bins holding (approximately) equal row counts (quantile binning).
  kEqualFrequency,
};

/// Options controlling discretisation.
struct DiscretizerOptions {
  BinningStrategy strategy = BinningStrategy::kEqualFrequency;
  /// Number of bins for numeric columns. Six keeps the conditional
  /// contingency tables dense enough for plug-in CMI at the entity counts
  /// the evaluation datasets carry (~100 countries / ~40 cities); finer
  /// binning inflates the structural MI between same-entity attributes.
  size_t num_bins = 6;
  /// Numeric columns with at most this many distinct values are treated as
  /// categorical (one code per distinct value) instead of binned. Kept
  /// below typical entity counts so per-entity numeric attributes (one
  /// equity value per airline) are binned rather than turned into entity
  /// identifiers.
  size_t categorical_threshold = 10;
};

/// A discretised column: per-row codes in [0, cardinality), -1 for null.
struct Discretized {
  std::vector<int32_t> codes;
  int32_t cardinality = 0;
  /// Human-readable label per code (bin range or category value).
  std::vector<std::string> labels;
};

/// Discretises one column of a table. String/bool/low-cardinality columns
/// get one code per distinct value (assigned in sorted order for
/// determinism); other numeric columns are binned per `options`.
Result<Discretized> DiscretizeColumn(const Table& table,
                                     const std::string& column,
                                     const DiscretizerOptions& options = {});

/// Discretises a raw numeric vector (no nulls represented; caller handles
/// them by filtering first). Exposed for tests and the info estimators.
Discretized DiscretizeVector(const std::vector<double>& values,
                             const DiscretizerOptions& options = {});

/// Hit/miss counters of the content-addressed DiscretizeColumn memo (see
/// discretizer.cc). The memo keys on (column content fingerprint, binning
/// spec), so two queries over identical context slices — even of different
/// Table objects — share one discretisation, which in turn makes their
/// CodedVariable fingerprints (and so their info-cache entries) collide.
struct DiscretizerCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
};
DiscretizerCacheStats GetDiscretizerCacheStats();

/// Drops every memoized discretisation (counters are kept). For tests.
void ClearDiscretizerCache();

}  // namespace mesa

#endif  // MESA_STATS_DISCRETIZER_H_
