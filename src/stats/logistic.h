#ifndef MESA_STATS_LOGISTIC_H_
#define MESA_STATS_LOGISTIC_H_

#include <vector>

#include "common/result.h"

namespace mesa {

/// Options for the logistic-regression solver.
struct LogisticOptions {
  size_t max_iterations = 50;     ///< Newton (IRLS) iterations.
  double tolerance = 1e-8;        ///< convergence on max |delta beta|.
  double l2_penalty = 1e-6;       ///< small ridge for separable data.
};

/// A fitted logistic model P(y=1|x) = sigmoid(b0 + b.x).
class LogisticModel {
 public:
  LogisticModel() = default;
  explicit LogisticModel(std::vector<double> coefficients)
      : coefficients_(std::move(coefficients)) {}

  /// Coefficients, intercept first.
  const std::vector<double>& coefficients() const { return coefficients_; }

  /// Predicted probability for one feature vector (arity = p - 1).
  double PredictProbability(const std::vector<double>& features) const;

  bool converged() const { return converged_; }
  size_t iterations() const { return iterations_; }

 private:
  friend Result<LogisticModel> FitLogistic(
      const std::vector<std::vector<double>>& x, const std::vector<uint8_t>& y,
      const LogisticOptions& options);

  std::vector<double> coefficients_;
  bool converged_ = false;
  size_t iterations_ = 0;
};

/// Fits logistic regression by iteratively reweighted least squares (Newton-
/// Raphson), with an L2 ridge to keep separable problems well posed. `x` is
/// row-major (no intercept column; one is added), `y` holds 0/1 labels.
/// Used to estimate missingness propensities P(R_E = 1 | X) for IPW
/// (Section 3.2 of the paper).
Result<LogisticModel> FitLogistic(const std::vector<std::vector<double>>& x,
                                  const std::vector<uint8_t>& y,
                                  const LogisticOptions& options = {});

}  // namespace mesa

#endif  // MESA_STATS_LOGISTIC_H_
