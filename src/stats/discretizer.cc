#include "stats/discretizer.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <set>

#include "common/logging.h"
#include "common/lru_cache.h"
#include "common/rng.h"
#include "info/info_cache.h"

namespace mesa {

namespace {

// Content-addressed memo for DiscretizeColumn: key = (column content
// fingerprint, strategy, num_bins, categorical_threshold). Discretisation
// is a pure function of exactly those inputs, so a hit returns the bytes a
// recompute would produce. Shares the info-cache on/off gate — both exist
// to make repeated queries over the same context cheap.
ShardedLruCache<std::shared_ptr<const Discretized>>* DiscretizerCache() {
  static auto* cache =
      new ShardedLruCache<std::shared_ptr<const Discretized>>(uint64_t{4}
                                                              << 20);
  return cache;
}

std::atomic<uint64_t> g_discretizer_hits{0};
std::atomic<uint64_t> g_discretizer_misses{0};

uint64_t DiscretizeKey(const Column& col, const DiscretizerOptions& options) {
  uint64_t h = col.ContentFingerprint();
  h = MixSeed(h, static_cast<uint64_t>(options.strategy) * 2 + 1);
  h = MixSeed(h, options.num_bins);
  h = MixSeed(h, options.categorical_threshold);
  return h;
}

std::string FormatRange(double lo, double hi) {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "[%.4g, %.4g)", lo, hi);
  return buf;
}

// Categorical coding: one code per distinct value, sorted for determinism.
Discretized CodeCategorical(const std::vector<Value>& cells) {
  std::map<Value, int32_t> codes;
  for (const auto& v : cells) {
    if (!v.is_null()) codes.emplace(v, 0);
  }
  int32_t next = 0;
  Discretized out;
  for (auto& [value, code] : codes) {
    code = next++;
    out.labels.push_back(value.ToString());
  }
  out.cardinality = next;
  out.codes.reserve(cells.size());
  for (const auto& v : cells) {
    if (v.is_null()) {
      out.codes.push_back(-1);
    } else {
      out.codes.push_back(codes.at(v));
    }
  }
  return out;
}

Discretized BinNumeric(const std::vector<double>& values,
                       const std::vector<uint8_t>& valid,
                       const DiscretizerOptions& options) {
  Discretized out;
  std::vector<double> present;
  present.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (valid.empty() || valid[i]) present.push_back(values[i]);
  }
  if (present.empty()) {
    out.codes.assign(values.size(), -1);
    out.cardinality = 0;
    return out;
  }

  // Bin edges: k-1 interior cut points; value v -> first bin whose upper
  // edge exceeds v.
  std::vector<double> edges;
  size_t k = std::max<size_t>(1, options.num_bins);
  if (options.strategy == BinningStrategy::kEqualWidth) {
    auto [mn_it, mx_it] = std::minmax_element(present.begin(), present.end());
    double mn = *mn_it, mx = *mx_it;
    if (mn == mx) {
      k = 1;
    } else {
      double width = (mx - mn) / static_cast<double>(k);
      for (size_t i = 1; i < k; ++i) edges.push_back(mn + width * i);
    }
    double lo = mn;
    for (size_t i = 0; i < k; ++i) {
      double hi = i + 1 < k ? edges[i] : mx;
      out.labels.push_back(FormatRange(lo, hi));
      lo = hi;
    }
  } else {
    std::sort(present.begin(), present.end());
    std::set<double> cuts;
    for (size_t i = 1; i < k; ++i) {
      size_t idx = i * present.size() / k;
      cuts.insert(present[idx]);
    }
    // Drop cut points equal to the minimum (they would create empty bins).
    cuts.erase(present.front());
    edges.assign(cuts.begin(), cuts.end());
    k = edges.size() + 1;
    double lo = present.front();
    for (size_t i = 0; i < k; ++i) {
      double hi = i < edges.size() ? edges[i] : present.back();
      out.labels.push_back(FormatRange(lo, hi));
      lo = hi;
    }
  }

  out.cardinality = static_cast<int32_t>(k);
  out.codes.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (!valid.empty() && !valid[i]) {
      out.codes.push_back(-1);
      continue;
    }
    double v = values[i];
    auto it = std::upper_bound(edges.begin(), edges.end(), v);
    out.codes.push_back(static_cast<int32_t>(it - edges.begin()));
  }
  return out;
}

Result<Discretized> DiscretizeColumnUncached(const Column* col,
                                             const DiscretizerOptions& options) {
  const size_t n = col->size();

  if (col->type() == DataType::kString) {
    // Fast path: code string columns without materialising Values. Codes
    // are assigned in sorted label order for determinism.
    std::map<std::string_view, int32_t> codes;
    for (size_t r = 0; r < n; ++r) {
      if (col->IsValid(r)) codes.emplace(col->StringAt(r), 0);
    }
    Discretized out;
    int32_t next = 0;
    for (auto& [label, code] : codes) {
      code = next++;
      out.labels.emplace_back(label);
    }
    out.cardinality = next;
    out.codes.resize(n);
    for (size_t r = 0; r < n; ++r) {
      out.codes[r] = col->IsValid(r) ? codes.find(col->StringAt(r))->second
                                     : -1;
    }
    return out;
  }
  if (col->type() == DataType::kBool) {
    std::vector<Value> cells;
    cells.reserve(n);
    for (size_t r = 0; r < n; ++r) cells.push_back(col->GetValue(r));
    return CodeCategorical(cells);
  }

  // Numeric: check cardinality first.
  std::set<double> distinct;
  for (size_t r = 0; r < n && distinct.size() <= options.categorical_threshold;
       ++r) {
    if (col->IsValid(r)) distinct.insert(col->NumericAt(r));
  }
  if (distinct.size() <= options.categorical_threshold) {
    // Low-cardinality numeric: direct double coding.
    std::map<double, int32_t> codes;
    for (size_t r = 0; r < n; ++r) {
      if (col->IsValid(r)) codes.emplace(col->NumericAt(r), 0);
    }
    Discretized out;
    int32_t next = 0;
    for (auto& [v, code] : codes) {
      code = next++;
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.6g", v);
      out.labels.push_back(buf);
    }
    out.cardinality = next;
    out.codes.resize(n);
    for (size_t r = 0; r < n; ++r) {
      out.codes[r] =
          col->IsValid(r) ? codes.find(col->NumericAt(r))->second : -1;
    }
    return out;
  }

  std::vector<double> values(n, 0.0);
  std::vector<uint8_t> valid(n, 0);
  for (size_t r = 0; r < n; ++r) {
    if (col->IsValid(r)) {
      values[r] = col->NumericAt(r);
      valid[r] = 1;
    }
  }
  return BinNumeric(values, valid, options);
}

}  // namespace

Result<Discretized> DiscretizeColumn(const Table& table,
                                     const std::string& column,
                                     const DiscretizerOptions& options) {
  MESA_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(column));
  const bool use_cache = info_cache::Enabled();
  uint64_t key = 0;
  if (use_cache) {
    key = DiscretizeKey(*col, options);
    std::shared_ptr<const Discretized> hit;
    if (DiscretizerCache()->Lookup(key, &hit)) {
      g_discretizer_hits.fetch_add(1, std::memory_order_relaxed);
      return *hit;
    }
    g_discretizer_misses.fetch_add(1, std::memory_order_relaxed);
  }
  MESA_ASSIGN_OR_RETURN(Discretized out,
                        DiscretizeColumnUncached(col, options));
  if (use_cache) {
    DiscretizerCache()->Insert(key, std::make_shared<const Discretized>(out),
                               out.codes.size() + 1);
  }
  return out;
}

DiscretizerCacheStats GetDiscretizerCacheStats() {
  DiscretizerCacheStats s;
  s.hits = g_discretizer_hits.load(std::memory_order_relaxed);
  s.misses = g_discretizer_misses.load(std::memory_order_relaxed);
  return s;
}

void ClearDiscretizerCache() { DiscretizerCache()->Clear(); }

Discretized DiscretizeVector(const std::vector<double>& values,
                             const DiscretizerOptions& options) {
  std::set<double> distinct(values.begin(), values.end());
  if (distinct.size() <= options.categorical_threshold) {
    std::map<double, int32_t> codes;
    for (double v : distinct) {
      codes.emplace(v, static_cast<int32_t>(codes.size()));
    }
    Discretized out;
    out.cardinality = static_cast<int32_t>(codes.size());
    for (const auto& [v, c] : codes) {
      (void)c;
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.6g", v);
      out.labels.push_back(buf);
    }
    out.codes.reserve(values.size());
    for (double v : values) out.codes.push_back(codes.at(v));
    return out;
  }
  return BinNumeric(values, {}, options);
}

}  // namespace mesa
