#ifndef MESA_STATS_CORRELATION_H_
#define MESA_STATS_CORRELATION_H_

#include <vector>

#include "common/result.h"

namespace mesa {

/// Pearson's r. Error if lengths differ, n < 2, or either sample is
/// constant.
Result<double> PearsonCorrelation(const std::vector<double>& x,
                                  const std::vector<double>& y);

/// Spearman's rank correlation (Pearson over mid-ranks, ties averaged).
Result<double> SpearmanCorrelation(const std::vector<double>& x,
                                   const std::vector<double>& y);

/// Mid-ranks of a sample (1-based, ties get the average rank).
std::vector<double> Ranks(const std::vector<double>& values);

}  // namespace mesa

#endif  // MESA_STATS_CORRELATION_H_
