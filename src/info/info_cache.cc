#include "info/info_cache.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>

#include "common/lru_cache.h"
#include "common/metrics.h"
#include "common/retry.h"
#include "common/rng.h"

namespace mesa {
namespace info_cache {
namespace {

// Default budgets. Scalar entries are ~100 bytes each with LRU/index
// overhead; cube cost is counted in cells (16 bytes each), so the cube
// default of 4M cells per shard * 16 shards ~= 1 GiB worst case but in
// practice a query's working set is a few thousand cubes of a few
// hundred cells. MESA_INFO_CACHE=<MB> scales the cube budget.
constexpr uint64_t kDefaultScalarBudgetPerShard = 1 << 16;
constexpr uint64_t kDefaultCubeCellsPerShard = uint64_t{4} << 20;

struct Caches {
  ShardedLruCache<double> scalar;
  ShardedLruCache<std::shared_ptr<const JointCube>> cube;
  Caches(uint64_t scalar_budget, uint64_t cube_budget)
      : scalar(scalar_budget), cube(cube_budget) {}
};

std::mutex g_caches_mu;
std::shared_ptr<Caches> g_caches;  // created lazily under g_caches_mu

std::atomic<uint64_t> g_scalar_hits{0};
std::atomic<uint64_t> g_scalar_misses{0};
std::atomic<uint64_t> g_cube_hits{0};
std::atomic<uint64_t> g_cube_misses{0};

// -1 = follow the MESA_INFO_CACHE environment variable, 0/1 = forced.
std::atomic<int> g_enabled_override{-1};

bool EnvDisabled(uint64_t* cube_budget_cells) {
  const char* env = std::getenv("MESA_INFO_CACHE");
  if (env == nullptr || env[0] == '\0') return false;
  std::string v(env);
  for (char& c : v) c = static_cast<char>(std::tolower(c));
  if (v == "off" || v == "0" || v == "false") return true;
  if (v == "on" || v == "true") return false;
  char* end = nullptr;
  unsigned long long mb = std::strtoull(v.c_str(), &end, 10);
  if (end != v.c_str() && *end == '\0' && mb > 0) {
    // Interpret a number as the total cube budget in MB; a cube cell
    // costs 16 bytes and the cache has 16 shards, so MB -> per-shard
    // cells is mb * 2^20 / 16 / 16.
    *cube_budget_cells = static_cast<uint64_t>(mb) * (1 << 12);
  }
  return false;
}

std::shared_ptr<Caches> GetCaches() {
  std::lock_guard<std::mutex> lock(g_caches_mu);
  if (g_caches == nullptr) {
    uint64_t cube_cells = kDefaultCubeCellsPerShard;
    EnvDisabled(&cube_cells);  // may scale the budget
    g_caches = std::make_shared<Caches>(kDefaultScalarBudgetPerShard,
                                        cube_cells);
  }
  return g_caches;
}

}  // namespace

// Depth, not flag: EphemeralScopes may nest (a CI test inside another
// estimator's scope).
thread_local int g_ephemeral_depth = 0;

EphemeralScope::EphemeralScope() { ++g_ephemeral_depth; }
EphemeralScope::~EphemeralScope() { --g_ephemeral_depth; }

bool Enabled() {
  if (g_ephemeral_depth > 0) return false;
  int forced = g_enabled_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  static const bool env_disabled = [] {
    uint64_t unused = 0;
    return EnvDisabled(&unused);
  }();
  return !env_disabled;
}

void SetEnabled(bool enabled) {
  g_enabled_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void Clear() {
  auto caches = GetCaches();
  caches->scalar.Clear();
  caches->cube.Clear();
}

Stats GetStats() {
  Stats s;
  s.scalar_hits = g_scalar_hits.load(std::memory_order_relaxed);
  s.scalar_misses = g_scalar_misses.load(std::memory_order_relaxed);
  s.cube_hits = g_cube_hits.load(std::memory_order_relaxed);
  s.cube_misses = g_cube_misses.load(std::memory_order_relaxed);
  auto caches = GetCaches();
  s.scalar_evictions = caches->scalar.evictions();
  s.cube_evictions = caches->cube.evictions();
  return s;
}

size_t ScalarEntries() { return GetCaches()->scalar.size(); }
size_t CubeEntries() { return GetCaches()->cube.size(); }

void SetCapacityForTest(uint64_t scalar_entries, uint64_t cube_cells) {
  std::lock_guard<std::mutex> lock(g_caches_mu);
  g_caches = std::make_shared<Caches>(scalar_entries, cube_cells);
}

uint64_t ScalarKey(uint64_t tag, const uint64_t* fps, size_t num_fps,
                   uint64_t weights_fp, bool miller_madow) {
  // Ordered mix: H(o1; c) != H(c; o1), which matters because the scalar
  // memo distinguishes e.g. H(X,Z) from H(Y,Z) by operand order.
  uint64_t h = MixSeed(tag, num_fps);
  for (size_t i = 0; i < num_fps; ++i) h = MixSeed(h, fps[i]);
  h = MixSeed(h, weights_fp);
  h = MixSeed(h, miller_madow ? 1 : 0);
  return h;
}

bool LookupScalar(uint64_t key, double* value) {
  if (GetCaches()->scalar.Lookup(key, value)) {
    g_scalar_hits.fetch_add(1, std::memory_order_relaxed);
    MESA_COUNT("info_cache/scalar_hit");
    return true;
  }
  g_scalar_misses.fetch_add(1, std::memory_order_relaxed);
  MESA_COUNT("info_cache/scalar_miss");
  return false;
}

void InsertScalar(uint64_t key, double value) {
  GetCaches()->scalar.Insert(key, value, 1);
}

uint64_t CiPValueKey(const uint64_t fps[3], uint64_t seed,
                     uint64_t num_permutations) {
  uint64_t h = MixSeed(0x4349u, 3);  // "CI"
  for (int i = 0; i < 3; ++i) h = MixSeed(h, fps[i]);
  h = MixSeed(h, seed);
  return MixSeed(h, num_permutations);
}

uint64_t CubeKey(uint64_t fp_x, uint64_t fp_y, uint64_t fp_z,
                 uint64_t weights_fp) {
  // Commutative over the axis fingerprints: any ordering of the same
  // three variables maps to the same cube. Each fingerprint is first
  // avalanched independently so the sum doesn't collapse related keys.
  uint64_t h = MixSeed(0x9A75u, fp_x) + MixSeed(0x9A75u, fp_y) +
               MixSeed(0x9A75u, fp_z);
  return MixSeed(h, weights_fp);
}

std::shared_ptr<const JointCube> LookupCube(uint64_t key) {
  std::shared_ptr<const JointCube> cube;
  if (GetCaches()->cube.Lookup(key, &cube)) {
    g_cube_hits.fetch_add(1, std::memory_order_relaxed);
    MESA_COUNT("info_cache/cube_hit");
    return cube;
  }
  g_cube_misses.fetch_add(1, std::memory_order_relaxed);
  MESA_COUNT("info_cache/cube_miss");
  return nullptr;
}

void InsertCube(uint64_t key, std::shared_ptr<const JointCube> cube) {
  uint64_t cost = cube->entries.size();
  if (cost == 0) cost = 1;
  GetCaches()->cube.Insert(key, std::move(cube), cost);
}

uint64_t WeightsFingerprint(const std::vector<double>* weights) {
  if (weights == nullptr || weights->empty()) return 0;
  return StableHash64Bytes(weights->data(), weights->size() * sizeof(double));
}

}  // namespace info_cache
}  // namespace mesa
