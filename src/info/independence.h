#ifndef MESA_INFO_INDEPENDENCE_H_
#define MESA_INFO_INDEPENDENCE_H_

#include <cstdint>

#include "common/rng.h"
#include "info/mutual_information.h"

namespace mesa {

/// Result of a conditional-independence test of X ⟂ Y | Z.
struct IndependenceResult {
  double cmi = 0.0;       ///< observed I(X;Y|Z) in bits.
  double p_value = 1.0;   ///< permutation p-value of that CMI.
  bool independent = false;  ///< p_value >= alpha.
};

/// How the conditional-independence p-value is computed.
enum class IndependenceMethod {
  /// Permutation test: X shuffled within strata of Z. Exact under
  /// exchangeability, cost = num_permutations CMI evaluations.
  kPermutation,
  /// Asymptotic G-test: G = 2 N ln2 · Î(X;Y|Z) ~ χ² with
  /// (Kx−1)(Ky−1)·K_z(observed) degrees of freedom. One CMI evaluation;
  /// HypDB-style systems use this for speed.
  kGTest,
};

/// Options for the independence tests.
struct IndependenceOptions {
  IndependenceMethod method = IndependenceMethod::kPermutation;
  size_t num_permutations = 99;
  double alpha = 0.05;
  uint64_t seed = 0xC0FFEE;
  /// Fast path: treat CMI below this as independent without permuting.
  /// (The responsibility test of Lemma 4.2 runs in the inner loop of
  /// MCIMR; the paper uses "the highly efficient independence test" of
  /// HypDB, which likewise short-circuits on tiny estimates.)
  double cmi_epsilon = 1e-3;
};

/// Permutation test for X ⟂ Y | Z: X is shuffled within strata of Z, so the
/// permuted samples preserve the X-Z and Y-Z relations while breaking any
/// conditional X-Y dependence. p-value = (1 + #{perm CMI >= observed}) /
/// (1 + permutations).
///
/// Permutation `i` shuffles a fresh copy of X with an Rng seeded
/// MixSeed(options.seed, i); the permutations run on the global thread pool
/// (see common/parallel.h) and the p-value is bit-identical at any thread
/// count, including 1.
IndependenceResult ConditionalIndependenceTest(
    const CodedVariable& x, const CodedVariable& y, const CodedVariable& z,
    const IndependenceOptions& options = {});

}  // namespace mesa

#endif  // MESA_INFO_INDEPENDENCE_H_
