#include "info/cmi_kernel.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <unordered_map>
#include <vector>

#include "common/cancel.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/parallel_sort.h"
#include "info/key_packing.h"

namespace mesa {

bool ParseCmiKernel(const std::string& name, CmiKernel* out) {
  if (name == "auto") {
    *out = CmiKernel::kAuto;
  } else if (name == "dense") {
    *out = CmiKernel::kDense;
  } else if (name == "packed") {
    *out = CmiKernel::kPacked;
  } else if (name == "hash") {
    *out = CmiKernel::kHash;
  } else {
    return false;
  }
  return true;
}

const char* CmiKernelName(CmiKernel kernel) {
  switch (kernel) {
    case CmiKernel::kAuto:
      return "auto";
    case CmiKernel::kDense:
      return "dense";
    case CmiKernel::kPacked:
      return "packed";
    case CmiKernel::kHash:
      return "hash";
  }
  return "auto";
}

namespace {

// -1 = follow the MESA_CMI_KERNEL environment variable, else a forced
// CmiKernel value (set by mesa_cli --cmi-kernel or tests).
std::atomic<int> g_kernel_override{-1};

CmiKernel EnvKernelMode() {
  static const CmiKernel mode = [] {
    CmiKernel m = CmiKernel::kAuto;
    const char* env = std::getenv("MESA_CMI_KERNEL");
    if (env != nullptr && !ParseCmiKernel(env, &m)) {
      MESA_LOG(Warning) << "MESA_CMI_KERNEL=" << env
                        << " is not auto|dense|packed|hash; using auto";
    }
    return m;
  }();
  return mode;
}

}  // namespace

CmiKernel CmiKernelMode() {
  int forced = g_kernel_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<CmiKernel>(forced);
  return EnvKernelMode();
}

void SetCmiKernelMode(CmiKernel kernel) {
  g_kernel_override.store(static_cast<int>(kernel),
                          std::memory_order_relaxed);
}

namespace info_internal {

namespace {

using info_cache::CubeEntry;

// Fixed morsel for the pack / run-length phases. A constant (never a
// function of the thread count) so every row's destination — and every
// run's owning chunk — is a pure function of the data.
constexpr size_t kPackChunkRows = size_t{1} << 15;

// Per-worker scratch for the dense kernel. The buffers hold the joint
// count cube and its three marginal projections; they grow to the
// largest key space seen by this thread and are *restored to all-zero*
// after every call by walking the touched cells (O(support)) instead of
// re-zeroing the whole buffer (O(cells), up to 8 MB per call at the
// 20-bit dense limit). The all-zero invariant between calls is what the
// counting loops rely on.
struct DenseArena {
  std::vector<double> xyz;
  std::vector<double> xz;
  std::vector<double> yz;
  std::vector<double> z;
};

DenseArena& Arena() {
  thread_local DenseArena arena;
  return arena;
}

void EnsureZeroed(std::vector<double>* buf, size_t size) {
  if (buf->size() < size) buf->resize(size, 0.0);
}

// A kept row in the packed kernel's sort vector (weighted variant).
struct KeyWeight {
  uint64_t key;
  double weight;
};

// Concatenates per-chunk vectors in chunk order — the parallel tail of
// the run-length phase. Offsets are prefix sums, so the result is the
// exact sequence a serial pass would have emitted.
void ConcatChunks(std::vector<std::vector<CubeEntry>>* parts,
                  std::vector<CubeEntry>* out) {
  std::vector<size_t> offsets(parts->size() + 1, 0);
  for (size_t c = 0; c < parts->size(); ++c) {
    offsets[c + 1] = offsets[c] + (*parts)[c].size();
  }
  out->resize(offsets.back());
  ParallelFor(0, parts->size(), [&](size_t c) {
    std::copy((*parts)[c].begin(), (*parts)[c].end(),
              out->begin() + offsets[c]);
  });
}

// Run-length counts a sorted row vector into cells. Each fixed chunk
// owns the runs *starting* inside it (a run extends past the chunk
// boundary; the continuation is skipped by the next chunk), and each
// run's weight is summed left-to-right — input-row order, since the sort
// was stable. The concatenated result is ascending by key with every
// floating-point sum in canonical order, at any thread count.
template <typename Row, typename KeyFn, typename SumFn>
void RunLengthCount(const std::vector<Row>& rows, const KeyFn& key_of,
                    const SumFn& sum_run, std::vector<CubeEntry>* entries) {
  const size_t n = rows.size();
  const size_t num_chunks =
      std::max<size_t>(1, (n + kPackChunkRows - 1) / kPackChunkRows);
  std::vector<std::vector<CubeEntry>> parts(num_chunks);
  ParallelFor(0, num_chunks, [&](size_t c) {
    CancelCheckpoint();
    size_t i = c * kPackChunkRows;
    const size_t hi = std::min(n, i + kPackChunkRows);
    if (i > 0 && i < n && key_of(rows[i - 1]) == key_of(rows[i])) {
      // This chunk opens mid-run; the run belongs to an earlier chunk.
      const uint64_t k = key_of(rows[i]);
      while (i < hi && key_of(rows[i]) == k) ++i;
    }
    std::vector<CubeEntry>& local = parts[c];
    while (i < hi) {
      const uint64_t k = key_of(rows[i]);
      size_t j = i;
      while (j < n && key_of(rows[j]) == k) ++j;
      local.push_back(CubeEntry{k, sum_run(i, j)});
      i = j;
    }
  });
  ConcatChunks(&parts, entries);
}

// Gathers the kept rows (all three codes present; positive weight when
// weighted) into a packed-key sort vector, in input-row order. Two-pass
// morsel-parallel: per-chunk kept counts, prefix offsets, disjoint fill.
template <typename Row, typename MakeFn>
void PackRows(size_t n, const MakeFn& make_row, std::vector<Row>* rows) {
  const size_t num_chunks =
      std::max<size_t>(1, (n + kPackChunkRows - 1) / kPackChunkRows);
  std::vector<size_t> kept(num_chunks, 0);
  ParallelFor(0, num_chunks, [&](size_t c) {
    CancelCheckpoint();
    const size_t lo = c * kPackChunkRows;
    const size_t hi = std::min(n, lo + kPackChunkRows);
    size_t count = 0;
    Row scratch;
    for (size_t i = lo; i < hi; ++i) {
      if (make_row(i, &scratch)) ++count;
    }
    kept[c] = count;
  });
  std::vector<size_t> offsets(num_chunks + 1, 0);
  for (size_t c = 0; c < num_chunks; ++c) {
    offsets[c + 1] = offsets[c] + kept[c];
  }
  rows->resize(offsets.back());
  ParallelFor(0, num_chunks, [&](size_t c) {
    CancelCheckpoint();
    const size_t lo = c * kPackChunkRows;
    const size_t hi = std::min(n, lo + kPackChunkRows);
    size_t at = offsets[c];
    Row scratch;
    for (size_t i = lo; i < hi; ++i) {
      if (make_row(i, &scratch)) (*rows)[at++] = scratch;
    }
  });
}

double EntropyOfMap(const std::unordered_map<uint64_t, double>& counts,
                    double total, const EntropyOptions& options) {
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (const auto& [key, c] : counts) {
    (void)key;
    if (c <= 0.0) continue;
    double p = c / total;
    h -= p * std::log2(p);
  }
  if (options.miller_madow && counts.size() > 1) {
    h += static_cast<double>(counts.size() - 1) /
         (2.0 * total * std::log(2.0));
  }
  return h;
}

}  // namespace

void BuildDenseEntries(const CodedVariable& x, const CodedVariable& y,
                       const CodedVariable& z,
                       const std::vector<double>* weights, int bx, int by,
                       int bz, std::vector<CubeEntry>* entries) {
  const size_t cells = size_t{1} << (bx + by + bz);
  std::vector<double>& xyz = Arena().xyz;
  EnsureZeroed(&xyz, cells);
  const size_t n = x.codes.size();
  if (weights == nullptr) {
    for (size_t i = 0; i < n; ++i) {
      int32_t cx = x.codes[i], cy = y.codes[i], cz = z.codes[i];
      if ((cx | cy | cz) < 0) continue;  // any missing
      size_t key = (static_cast<size_t>(cx) << (by + bz)) |
                   (static_cast<size_t>(cy) << bz) | static_cast<size_t>(cz);
      xyz[key] += 1.0;
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      int32_t cx = x.codes[i], cy = y.codes[i], cz = z.codes[i];
      if ((cx | cy | cz) < 0) continue;
      double w = (*weights)[i];
      if (w <= 0.0) continue;
      size_t key = (static_cast<size_t>(cx) << (by + bz)) |
                   (static_cast<size_t>(cy) << bz) | static_cast<size_t>(cz);
      xyz[key] += w;
    }
  }
  entries->clear();
  for (size_t key = 0; key < cells; ++key) {
    double c = xyz[key];
    if (c <= 0.0) continue;
    entries->push_back(CubeEntry{key, c});
    xyz[key] = 0.0;
  }
}

void BuildPackedEntries(const CodedVariable& x, const CodedVariable& y,
                        const CodedVariable& z,
                        const std::vector<double>* weights, int bx, int by,
                        int bz, std::vector<CubeEntry>* entries) {
  const int key_bits = bx + by + bz;
  MESA_DCHECK(key_bits <= 64);
  const size_t n = x.codes.size();
  if (weights == nullptr) {
    std::vector<uint64_t> keys;
    PackRows<uint64_t>(
        n,
        [&](size_t i, uint64_t* row) {
          int32_t cx = x.codes[i], cy = y.codes[i], cz = z.codes[i];
          if ((cx | cy | cz) < 0) return false;
          *row = info_internal::PackKey3(static_cast<uint64_t>(cx),
                                         static_cast<uint64_t>(cy),
                                         static_cast<uint64_t>(cz), by, bz);
          return true;
        },
        &keys);
    StableRadixSort(&keys, key_bits);
    RunLengthCount(
        keys, [](uint64_t k) { return k; },
        // Integer run length: exactly the value the dense arena reaches
        // by adding 1.0 per row (exact for any count below 2^53).
        [](size_t i, size_t j) { return static_cast<double>(j - i); },
        entries);
  } else {
    std::vector<KeyWeight> rows;
    PackRows<KeyWeight>(
        n,
        [&](size_t i, KeyWeight* row) {
          int32_t cx = x.codes[i], cy = y.codes[i], cz = z.codes[i];
          if ((cx | cy | cz) < 0) return false;
          double w = (*weights)[i];
          if (w <= 0.0) return false;
          row->key = info_internal::PackKey3(static_cast<uint64_t>(cx),
                                             static_cast<uint64_t>(cy),
                                             static_cast<uint64_t>(cz), by, bz);
          row->weight = w;
          return true;
        },
        &rows);
    StableRadixSortByKey(&rows, key_bits,
                         [](const KeyWeight& r) { return r.key; });
    RunLengthCount(
        rows, [](const KeyWeight& r) { return r.key; },
        // Left-to-right over a stable-sorted run = input-row order: the
        // dense arena's accumulation order for this cell, bit for bit.
        [&rows](size_t i, size_t j) {
          double c = 0.0;
          for (size_t k = i; k < j; ++k) c += rows[k].weight;
          return c;
        },
        entries);
  }
}

double SumEntriesAscending(const std::vector<CubeEntry>& entries) {
  double total = 0.0;
  for (const CubeEntry& e : entries) total += e.count;
  return total;
}

namespace {

// Sparse marginal projection: maps each cube cell to its projected key
// (in entries order), stable-sorts, and folds runs — per projected cell
// the addends arrive in xyz-entries order, and cells are visited
// ascending, so the entropy accumulation is bitwise the same sequence of
// operations as the dense arena projection below.
template <typename ProjFn>
double SparseProjectionEntropy(const std::vector<CubeEntry>& entries,
                               const ProjFn& proj, int proj_bits,
                               double inv_total, size_t* support) {
  std::vector<CubeEntry> cells(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    cells[i].key = proj(entries[i].key);
    cells[i].count = entries[i].count;
  }
  StableRadixSortByKey(&cells, proj_bits,
                       [](const CubeEntry& e) { return e.key; });
  double h = 0.0;
  size_t s = 0;
  size_t i = 0;
  while (i < cells.size()) {
    const uint64_t k = cells[i].key;
    double c = 0.0;
    size_t j = i;
    while (j < cells.size() && cells[j].key == k) c += cells[j++].count;
    if (c > 0.0) {
      ++s;
      double p = c * inv_total;
      h -= p * std::log2(p);
    }
    i = j;
  }
  *support = s;
  return h;
}

}  // namespace

double CmiFromEntries(const std::vector<CubeEntry>& entries, double total,
                      const EntropyOptions& options, int bx, int by,
                      int bz) {
  if (total <= 0.0) return 0.0;
  const double inv_total = 1.0 / total;
  double h_xyz = 0.0;
  size_t support_xyz = 0;
  double h_xz = 0.0, h_yz = 0.0, h_z = 0.0;
  size_t s_xz = 0, s_yz = 0, s_z = 0;

  if (bx + by + bz <= kDenseCmiBits) {
    // Small key space: project through the flat arena (O(1) per addend).
    DenseArena& arena = Arena();
    const size_t cells_xz = size_t{1} << (bx + bz);
    const size_t cells_yz = size_t{1} << (by + bz);
    const size_t cells_z = size_t{1} << bz;
    EnsureZeroed(&arena.xz, cells_xz);
    EnsureZeroed(&arena.yz, cells_yz);
    EnsureZeroed(&arena.z, cells_z);
    for (const CubeEntry& e : entries) {
      double c = e.count;
      if (c <= 0.0) continue;
      ++support_xyz;
      double p = c * inv_total;
      h_xyz -= p * std::log2(p);
      uint64_t kx, ky, kz;
      UnpackKey3(e.key, by, bz, &kx, &ky, &kz);
      arena.xz[(kx << bz) | kz] += c;
      arena.yz[(ky << bz) | kz] += c;
      arena.z[kz] += c;
    }
    auto entropy_of = [&](const std::vector<double>& counts, size_t limit,
                          size_t* support) {
      double h = 0.0;
      size_t s = 0;
      for (size_t i = 0; i < limit; ++i) {
        double c = counts[i];
        if (c <= 0.0) continue;
        ++s;
        double p = c * inv_total;
        h -= p * std::log2(p);
      }
      *support = s;
      return h;
    };
    h_xz = entropy_of(arena.xz, cells_xz, &s_xz);
    h_yz = entropy_of(arena.yz, cells_yz, &s_yz);
    h_z = entropy_of(arena.z, cells_z, &s_z);
    // Restore the arena's all-zero invariant by touched cell (repeated
    // zeroing of a shared projection cell is harmless).
    for (const CubeEntry& e : entries) {
      uint64_t kx, ky, kz;
      UnpackKey3(e.key, by, bz, &kx, &ky, &kz);
      arena.xz[(kx << bz) | kz] = 0.0;
      arena.yz[(ky << bz) | kz] = 0.0;
      arena.z[kz] = 0.0;
    }
  } else {
    // Wide key space: sorted sparse projections. Same cell visit order
    // and same per-cell addend order as the arena path, so the bits
    // match wherever both could run.
    for (const CubeEntry& e : entries) {
      double c = e.count;
      if (c <= 0.0) continue;
      ++support_xyz;
      double p = c * inv_total;
      h_xyz -= p * std::log2(p);
    }
    const uint64_t mask_z = (uint64_t{1} << bz) - 1;
    h_xz = SparseProjectionEntropy(
        entries,
        [by, bz, mask_z](uint64_t key) {
          return ((key >> (by + bz)) << bz) | (key & mask_z);
        },
        bx + bz, inv_total, &s_xz);
    h_yz = SparseProjectionEntropy(
        entries,
        [by, bz](uint64_t key) {
          return key & ((uint64_t{1} << (by + bz)) - 1);
        },
        by + bz, inv_total, &s_yz);
    h_z = SparseProjectionEntropy(
        entries, [mask_z](uint64_t key) { return key & mask_z; }, bz,
        inv_total, &s_z);
  }

  if (options.miller_madow) {
    const double mm = 1.0 / (2.0 * total * std::log(2.0));
    if (support_xyz > 1) h_xyz += (support_xyz - 1) * mm;
    if (s_xz > 1) h_xz += (s_xz - 1) * mm;
    if (s_yz > 1) h_yz += (s_yz - 1) * mm;
    if (s_z > 1) h_z += (s_z - 1) * mm;
  }
  return std::max(0.0, h_xz + h_yz - h_xyz - h_z);
}

double HashCmi(const CodedVariable& x, const CodedVariable& y,
               const CodedVariable& z, const std::vector<double>* weights,
               const EntropyOptions& options, int by, int bz) {
  std::unordered_map<uint64_t, double> xyz;
  xyz.reserve(256);
  double total = 0.0;
  const size_t n = x.codes.size();
  for (size_t i = 0; i < n; ++i) {
    int32_t cx = x.codes[i], cy = y.codes[i], cz = z.codes[i];
    if (cx < 0 || cy < 0 || cz < 0) continue;
    double w = weights != nullptr ? (*weights)[i] : 1.0;
    if (w <= 0.0) continue;
    uint64_t key = PackKey3(static_cast<uint32_t>(cx),
                            static_cast<uint32_t>(cy),
                            static_cast<uint32_t>(cz), by, bz);
    xyz[key] += w;
    total += w;
  }
  if (total <= 0.0) return 0.0;

  std::unordered_map<uint64_t, double> xz, yz, zonly;
  xz.reserve(xyz.size());
  yz.reserve(xyz.size());
  for (const auto& [key, c] : xyz) {
    uint64_t kx, ky, kz;
    UnpackKey3(key, by, bz, &kx, &ky, &kz);
    xz[(kx << bz) | kz] += c;
    yz[(ky << bz) | kz] += c;
    zonly[kz] += c;
  }
  double h_xyz = EntropyOfMap(xyz, total, options);
  double h_xz = EntropyOfMap(xz, total, options);
  double h_yz = EntropyOfMap(yz, total, options);
  double h_z = EntropyOfMap(zonly, total, options);
  return std::max(0.0, h_xz + h_yz - h_xyz - h_z);
}

}  // namespace info_internal
}  // namespace mesa
