#include "info/contingency.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "common/retry.h"

namespace mesa {

uint64_t CodedVariable::fingerprint() const {
  uint64_t v = fp.Load();
  if (v != 0) return v;
  uint64_t h = StableHash64Bytes(codes.data(), codes.size() * sizeof(int32_t));
  h ^= static_cast<uint64_t>(static_cast<uint32_t>(cardinality)) *
       0x9E3779B97F4A7C15ULL;
  if (h == 0) h = 1;  // 0 is the "not computed" sentinel
  fp.Store(h);
  return h;
}

CodedVariable ConstantCode(size_t n) {
  CodedVariable constant;
  constant.codes.assign(n, 0);
  constant.cardinality = 1;
  return constant;
}

CodedVariable CombinePair(const CodedVariable& a, const CodedVariable& b) {
  MESA_CHECK(a.codes.size() == b.codes.size());
  CodedVariable out;
  out.codes.resize(a.codes.size());
  std::unordered_map<uint64_t, int32_t> dict;
  dict.reserve(64);
  for (size_t i = 0; i < a.codes.size(); ++i) {
    if (a.codes[i] < 0 || b.codes[i] < 0) {
      out.codes[i] = -1;
      continue;
    }
    uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(a.codes[i]))
                    << 32) |
                   static_cast<uint32_t>(b.codes[i]);
    auto [it, inserted] =
        dict.emplace(key, static_cast<int32_t>(dict.size()));
    (void)inserted;
    out.codes[i] = it->second;
  }
  out.cardinality = static_cast<int32_t>(dict.size());
  return out;
}

CodedVariable CombineAll(const std::vector<const CodedVariable*>& vars,
                         size_t n) {
  if (vars.empty()) return ConstantCode(n);
  CodedVariable acc = *vars[0];
  for (size_t i = 1; i < vars.size(); ++i) {
    acc = CombinePair(acc, *vars[i]);
  }
  return acc;
}

std::vector<double> WeightedCounts(const CodedVariable& x,
                                   const std::vector<double>* weights,
                                   double* total) {
  // Size by the observed maximum when the declared cardinality is huge —
  // callers may pass pessimistic cardinalities (e.g. a product bound) and
  // the count vector must not balloon past the actual support.
  size_t size = static_cast<size_t>(std::max<int32_t>(0, x.cardinality));
  constexpr size_t kDenseLimit = size_t{1} << 22;
  if (size > kDenseLimit) {
    int32_t max_code = -1;
    for (int32_t c : x.codes) max_code = std::max(max_code, c);
    size = static_cast<size_t>(max_code + 1);
  }
  std::vector<double> counts(size, 0.0);
  double sum = 0.0;
  for (size_t i = 0; i < x.codes.size(); ++i) {
    int32_t c = x.codes[i];
    if (c < 0) continue;
    double w = weights != nullptr ? (*weights)[i] : 1.0;
    counts[static_cast<size_t>(c)] += w;
    sum += w;
  }
  if (total != nullptr) *total = sum;
  return counts;
}

}  // namespace mesa
