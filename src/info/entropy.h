#ifndef MESA_INFO_ENTROPY_H_
#define MESA_INFO_ENTROPY_H_

#include <vector>

#include "info/contingency.h"

namespace mesa {

/// Options for the plug-in entropy estimators. All quantities are in bits
/// (log base 2), matching the magnitudes quoted in the paper's examples.
struct EntropyOptions {
  /// Apply the Miller–Madow small-sample bias correction
  /// (+ (K_observed - 1) / (2 N ln 2)) to each raw entropy term.
  bool miller_madow = false;
};

/// Shannon entropy H(X) of a coded variable. Rows with code -1 are skipped;
/// optional per-row weights give the IPW estimator. Empty support yields 0.
double Entropy(const CodedVariable& x,
               const std::vector<double>* weights = nullptr,
               const EntropyOptions& options = {});

/// Joint entropy H(X, Y).
double JointEntropy(const CodedVariable& x, const CodedVariable& y,
                    const std::vector<double>* weights = nullptr,
                    const EntropyOptions& options = {});

/// Conditional entropy H(X | Y) = H(X,Y) - H(Y).
double ConditionalEntropy(const CodedVariable& x, const CodedVariable& y,
                          const std::vector<double>* weights = nullptr,
                          const EntropyOptions& options = {});

}  // namespace mesa

#endif  // MESA_INFO_ENTROPY_H_
