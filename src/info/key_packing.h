#ifndef MESA_INFO_KEY_PACKING_H_
#define MESA_INFO_KEY_PACKING_H_

/// Internal helpers shared by the information-theoretic estimators
/// (entropy.cc, mutual_information.cc, info_cache.cc): bit-width sizing
/// and packed-key composition for joint count cubes. Not part of the
/// public API — the layouts here are an implementation detail of the CMI
/// kernel and may change.

#include <cstdint>

namespace mesa {
namespace info_internal {

/// Bits needed to store codes in [0, cardinality). Always >= 1, so a
/// constant (cardinality 1) variable still occupies one key bit and the
/// packed layouts below stay shift-safe.
inline int BitsFor(int32_t cardinality) {
  int bits = 1;
  while ((int64_t{1} << bits) < cardinality) ++bits;
  return bits;
}

/// Packs per-axis codes (kx, ky, kz) into one key in x-major layout:
/// x occupies the high bits, z the low `bz` bits. This is the layout of
/// both the dense count cube and the packed hash cube.
inline uint64_t PackKey3(uint64_t kx, uint64_t ky, uint64_t kz, int by,
                         int bz) {
  return (kx << (by + bz)) | (ky << bz) | kz;
}

/// Extracts the per-axis codes out of a PackKey3 key.
inline void UnpackKey3(uint64_t key, int by, int bz, uint64_t* kx,
                       uint64_t* ky, uint64_t* kz) {
  *kz = key & ((uint64_t{1} << bz) - 1);
  *ky = (key >> bz) & ((uint64_t{1} << by) - 1);
  *kx = key >> (by + bz);
}

}  // namespace info_internal
}  // namespace mesa

#endif  // MESA_INFO_KEY_PACKING_H_
