#ifndef MESA_INFO_CMI_KERNEL_H_
#define MESA_INFO_CMI_KERNEL_H_

/// The CMI kernel family behind MutualInformation /
/// ConditionalMutualInformation (see docs/architecture.md, "Execution
/// plane: kernel selection"). Every kernel reduces the coded rows to the
/// same *canonical sparse cube* — nonzero joint cells ascending by
/// packed (x, y, z) key, each cell's weight summed in input-row order,
/// the grand total summed over cells ascending — and derives the four
/// entropy terms from it in one fixed order. Because the cube (and every
/// floating-point summation order downstream of it) is canonical, the
/// dense and packed kernels are bit-identical to each other at any
/// thread count, no matter which call (or which axis layout) first
/// materialized the cube. That is what lets the InfoCache joint-cube
/// layer serve *both* kernels: a cube counted at 30 bits by one
/// partition of a triple is repacked and replayed bit-exactly by any
/// other partition.
///
/// Kernels:
///   - dense:  row scan into a flat per-thread arena, cells extracted
///             ascending. O(2^bits) memory — only below ~20 key bits.
///   - packed: pack rows into 64-bit keys, morsel-parallel *stable*
///             radix sort (common/parallel_sort.h), run-length count
///             runs into cells. O(rows) memory — up to 64 key bits.
///             Bit-identical to dense where both apply.
///   - hash:   the legacy single-pass hash-map kernel. Summation order
///             follows the map's iteration order, so it agrees with the
///             canonical kernels only to ulp-level; kept as an escape
///             hatch and A/B baseline. Never shares cubes.
///
/// Selection: automatic by key width, overridable process-wide with the
/// MESA_CMI_KERNEL environment variable or `mesa_cli --cmi-kernel`
/// (auto|dense|packed|hash). A forced kernel that cannot serve a given
/// width degrades to the nearest one that can (dense above 20 bits runs
/// packed; anything above 64 bits takes the CombinePair fallback in
/// mutual_information.cc). Which kernel actually ran is counted in the
/// info/kernel_{dense,packed,hash} metrics (docs/observability.md).

#include <cstdint>
#include <string>
#include <vector>

#include "info/contingency.h"
#include "info/entropy.h"
#include "info/info_cache.h"

namespace mesa {

/// Process-wide kernel override. kAuto picks by key width.
enum class CmiKernel {
  kAuto,
  kDense,
  kPacked,
  kHash,
};

/// Parses "auto" | "dense" | "packed" | "hash" (case-sensitive, the
/// spelling MESA_CMI_KERNEL and --cmi-kernel accept). Returns false and
/// leaves *out untouched on anything else.
bool ParseCmiKernel(const std::string& name, CmiKernel* out);

/// The mode's canonical spelling (for --help and error messages).
const char* CmiKernelName(CmiKernel kernel);

/// Current selection mode: the last SetCmiKernelMode() value, else the
/// MESA_CMI_KERNEL environment variable (parsed once; unset or
/// unparseable means kAuto).
CmiKernel CmiKernelMode();
void SetCmiKernelMode(CmiKernel kernel);

namespace info_internal {

/// Key-width ceiling of the dense kernel: above this the flat arena
/// (2^bits cells) stops paying for itself and auto selection moves to
/// the packed kernel. Forcing `dense` above it also runs packed (the
/// two are bit-identical, so the clamp is invisible in the results).
constexpr int kDenseCmiBits = 20;

/// Builds the canonical sparse cube by dense counting: one row scan into
/// a flat per-thread arena of 2^(bx+by+bz) cells, nonzero cells
/// extracted ascending by key. Rows with any variable missing (code < 0)
/// are skipped, as are rows whose weight is <= 0. Requires
/// bx + by + bz small enough that the arena fits (the dispatcher caps it
/// at 20 bits).
void BuildDenseEntries(const CodedVariable& x, const CodedVariable& y,
                       const CodedVariable& z,
                       const std::vector<double>* weights, int bx, int by,
                       int bz, std::vector<info_cache::CubeEntry>* entries);

/// Builds the *same* canonical sparse cube by sort-packing: pack each
/// kept row into a 64-bit key, stable-radix-sort the keys
/// (morsel-parallel, order-stable), and run-length count each run into a
/// cell. Stability keeps equal-key rows in input order, so every cell's
/// weight sum replays the dense arena's accumulation order exactly:
/// entries are bitwise equal to BuildDenseEntries' at any thread count.
/// Requires bx + by + bz <= 64.
void BuildPackedEntries(const CodedVariable& x, const CodedVariable& y,
                        const CodedVariable& z,
                        const std::vector<double>* weights, int bx, int by,
                        int bz, std::vector<info_cache::CubeEntry>* entries);

/// The canonical grand total: cell counts summed ascending by key. Both
/// cube kernels (and cube-cache hits, after repacking into the caller's
/// layout) derive their total this way, so the value is independent of
/// which kernel — or which cached cube — produced the entries.
double SumEntriesAscending(const std::vector<info_cache::CubeEntry>& entries);

/// I(X;Y|Z) = H(X,Z) + H(Y,Z) - H(X,Y,Z) - H(Z) from a canonical cube.
/// Entries must be ascending by key in the caller's (bx, by, bz) layout;
/// all four entropy accumulations walk cells ascending by (projected)
/// key, with each projection cell's addends in entries order. The flat
/// arena is used for the projections when the key space is small, a
/// sorted sparse projection otherwise — the two walk cells in the same
/// order, so the choice never changes a bit of the result.
double CmiFromEntries(const std::vector<info_cache::CubeEntry>& entries,
                      double total, const EntropyOptions& options, int bx,
                      int by, int bz);

/// The legacy hash-map kernel: single pass, O(rows), up to 64 key bits.
/// Summation order is the hash map's iteration order — ulp-level
/// differences from the canonical kernels are expected and allowed.
double HashCmi(const CodedVariable& x, const CodedVariable& y,
               const CodedVariable& z, const std::vector<double>* weights,
               const EntropyOptions& options, int by, int bz);

}  // namespace info_internal
}  // namespace mesa

#endif  // MESA_INFO_CMI_KERNEL_H_
