#include "info/mutual_information.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.h"
#include "common/metrics.h"

namespace mesa {

namespace {

// Bits needed to store codes in [0, cardinality).
int BitsFor(int32_t cardinality) {
  int bits = 1;
  while ((int64_t{1} << bits) < cardinality) ++bits;
  return bits;
}

double EntropyOfMap(const std::unordered_map<uint64_t, double>& counts,
                    double total, const EntropyOptions& options) {
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (const auto& [key, c] : counts) {
    (void)key;
    if (c <= 0.0) continue;
    double p = c / total;
    h -= p * std::log2(p);
  }
  if (options.miller_madow && counts.size() > 1) {
    h += static_cast<double>(counts.size() - 1) /
         (2.0 * total * std::log(2.0));
  }
  return h;
}

// Dense-array variant of PackedCmi for small key spaces: counting into a
// flat vector avoids all hashing, which makes the estimator memory-bound
// instead of hash-bound (roughly 5x on the benchmark datasets, where the
// joint key space is a few thousand cells).
double DenseCmi(const CodedVariable& x, const CodedVariable& y,
                const CodedVariable& z, const std::vector<double>* weights,
                const EntropyOptions& options, int by, int bz) {
  const size_t cells_xyz = size_t{1} << (BitsFor(std::max<int32_t>(
                               1, x.cardinality)) +
                                         by + bz);
  std::vector<double> xyz(cells_xyz, 0.0);
  double total = 0.0;
  const size_t n = x.codes.size();
  if (weights == nullptr) {
    for (size_t i = 0; i < n; ++i) {
      int32_t cx = x.codes[i], cy = y.codes[i], cz = z.codes[i];
      if ((cx | cy | cz) < 0) continue;  // any missing
      size_t key = (static_cast<size_t>(cx) << (by + bz)) |
                   (static_cast<size_t>(cy) << bz) | static_cast<size_t>(cz);
      xyz[key] += 1.0;
      total += 1.0;
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      int32_t cx = x.codes[i], cy = y.codes[i], cz = z.codes[i];
      if ((cx | cy | cz) < 0) continue;
      double w = (*weights)[i];
      if (w <= 0.0) continue;
      size_t key = (static_cast<size_t>(cx) << (by + bz)) |
                   (static_cast<size_t>(cy) << bz) | static_cast<size_t>(cz);
      xyz[key] += w;
      total += w;
    }
  }
  if (total <= 0.0) return 0.0;

  const size_t cells_xz =
      size_t{1} << (BitsFor(std::max<int32_t>(1, x.cardinality)) + bz);
  std::vector<double> xz(cells_xz, 0.0);
  std::vector<double> yz(size_t{1} << (by + bz), 0.0);
  std::vector<double> zonly(size_t{1} << bz, 0.0);
  double h_xyz = 0.0;
  size_t support_xyz = 0;
  const double inv_total = 1.0 / total;
  for (size_t key = 0; key < cells_xyz; ++key) {
    double c = xyz[key];
    if (c <= 0.0) continue;
    ++support_xyz;
    double p = c * inv_total;
    h_xyz -= p * std::log2(p);
    size_t kx = key >> (by + bz);
    size_t ky = (key >> bz) & ((size_t{1} << by) - 1);
    size_t kz = key & ((size_t{1} << bz) - 1);
    xz[(kx << bz) | kz] += c;
    yz[(ky << bz) | kz] += c;
    zonly[kz] += c;
  }
  auto entropy_of = [&](const std::vector<double>& counts, size_t* support) {
    double h = 0.0;
    size_t s = 0;
    for (double c : counts) {
      if (c <= 0.0) continue;
      ++s;
      double p = c * inv_total;
      h -= p * std::log2(p);
    }
    if (support != nullptr) *support = s;
    return h;
  };
  size_t s_xz = 0, s_yz = 0, s_z = 0;
  double h_xz = entropy_of(xz, &s_xz);
  double h_yz = entropy_of(yz, &s_yz);
  double h_z = entropy_of(zonly, &s_z);
  if (options.miller_madow) {
    const double mm = 1.0 / (2.0 * total * std::log(2.0));
    if (support_xyz > 1) h_xyz += (support_xyz - 1) * mm;
    if (s_xz > 1) h_xz += (s_xz - 1) * mm;
    if (s_yz > 1) h_yz += (s_yz - 1) * mm;
    if (s_z > 1) h_z += (s_z - 1) * mm;
  }
  return std::max(0.0, h_xz + h_yz - h_xyz - h_z);
}

// Single-pass CMI over packed (x, y, z) keys. Requires the key widths to
// fit 64 bits; the caller falls back to the generic path otherwise. Rows
// missing any variable are skipped, so every entropy term shares one
// support, and optional row weights give the IPW estimator.
double PackedCmi(const CodedVariable& x, const CodedVariable& y,
                 const CodedVariable& z, const std::vector<double>* weights,
                 const EntropyOptions& options, int by, int bz) {
  std::unordered_map<uint64_t, double> xyz;
  xyz.reserve(256);
  double total = 0.0;
  const size_t n = x.codes.size();
  for (size_t i = 0; i < n; ++i) {
    int32_t cx = x.codes[i], cy = y.codes[i], cz = z.codes[i];
    if (cx < 0 || cy < 0 || cz < 0) continue;
    double w = weights != nullptr ? (*weights)[i] : 1.0;
    if (w <= 0.0) continue;
    uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(cx))
                    << (by + bz)) |
                   (static_cast<uint64_t>(static_cast<uint32_t>(cy)) << bz) |
                   static_cast<uint32_t>(cz);
    xyz[key] += w;
    total += w;
  }
  if (total <= 0.0) return 0.0;

  std::unordered_map<uint64_t, double> xz, yz, zonly;
  xz.reserve(xyz.size());
  yz.reserve(xyz.size());
  for (const auto& [key, c] : xyz) {
    uint64_t kx = key >> (by + bz);
    uint64_t ky = (key >> bz) & ((uint64_t{1} << by) - 1);
    uint64_t kz = key & ((uint64_t{1} << bz) - 1);
    xz[(kx << bz) | kz] += c;
    yz[(ky << bz) | kz] += c;
    zonly[kz] += c;
  }
  double h_xyz = EntropyOfMap(xyz, total, options);
  double h_xz = EntropyOfMap(xz, total, options);
  double h_yz = EntropyOfMap(yz, total, options);
  double h_z = EntropyOfMap(zonly, total, options);
  return std::max(0.0, h_xz + h_yz - h_xyz - h_z);
}

// Masks variable `v` to the rows present in `support` (code >= 0), so all
// entropy terms of an MI/CMI expression share one sample.
CodedVariable MaskTo(const CodedVariable& v, const CodedVariable& support) {
  CodedVariable out = v;
  for (size_t i = 0; i < out.codes.size(); ++i) {
    if (support.codes[i] < 0) out.codes[i] = -1;
  }
  return out;
}

}  // namespace

double MutualInformation(const CodedVariable& x, const CodedVariable& y,
                         const std::vector<double>* weights,
                         const EntropyOptions& options) {
  MESA_CHECK(x.size() == y.size());
  MESA_COUNT("info/mi_evals");
  MESA_SPAN("mi");
  // I(X;Y) = I(X;Y|const); small-cardinality pairs take the dense path.
  int bx = BitsFor(std::max<int32_t>(1, x.cardinality));
  int by = BitsFor(std::max<int32_t>(1, y.cardinality));
  if (bx + by + 1 <= 20) {
    CodedVariable trivial;
    trivial.codes.assign(x.codes.size(), 0);
    trivial.cardinality = 1;
    return DenseCmi(x, y, trivial, weights, options, by, 1);
  }
  CodedVariable xy = CombinePair(x, y);
  double h_x = Entropy(MaskTo(x, xy), weights, options);
  double h_y = Entropy(MaskTo(y, xy), weights, options);
  double h_xy = Entropy(xy, weights, options);
  return std::max(0.0, h_x + h_y - h_xy);
}

double ConditionalMutualInformation(const CodedVariable& x,
                                    const CodedVariable& y,
                                    const CodedVariable& z,
                                    const std::vector<double>* weights,
                                    const EntropyOptions& options) {
  MESA_CHECK(x.size() == y.size() && y.size() == z.size());
  MESA_COUNT("info/cmi_evals");
  MESA_SPAN("cmi");
  // Fast path: one hash pass over packed keys when the widths fit.
  int bx = BitsFor(std::max<int32_t>(1, x.cardinality));
  int by = BitsFor(std::max<int32_t>(1, y.cardinality));
  int bz = BitsFor(std::max<int32_t>(1, z.cardinality));
  if (bx + by + bz <= 20) {
    // Small key space: dense counting beats hashing.
    return DenseCmi(x, y, z, weights, options, by, bz);
  }
  if (bx + by + bz <= 64) {
    return PackedCmi(x, y, z, weights, options, by, bz);
  }
  CodedVariable xz = CombinePair(x, z);
  CodedVariable yz = CombinePair(y, z);
  CodedVariable xyz = CombinePair(xz, y);
  double h_xz = Entropy(MaskTo(xz, xyz), weights, options);
  double h_yz = Entropy(MaskTo(yz, xyz), weights, options);
  double h_xyz = Entropy(xyz, weights, options);
  double h_z = Entropy(MaskTo(z, xyz), weights, options);
  return std::max(0.0, h_xz + h_yz - h_xyz - h_z);
}

double InteractionInformation(const CodedVariable& x, const CodedVariable& y,
                              const CodedVariable& z,
                              const std::vector<double>* weights,
                              const EntropyOptions& options) {
  // Evaluate both terms over the common support of all three variables so
  // the difference is meaningful under missing data.
  CodedVariable xyz = CombinePair(CombinePair(x, z), y);
  CodedVariable xm = MaskTo(x, xyz);
  CodedVariable ym = MaskTo(y, xyz);
  CodedVariable zm = MaskTo(z, xyz);
  double mi = MutualInformation(xm, ym, weights, options);
  double cmi = ConditionalMutualInformation(xm, ym, zm, weights, options);
  return mi - cmi;
}

}  // namespace mesa
