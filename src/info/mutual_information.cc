#include "info/mutual_information.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/cancel.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "info/info_cache.h"
#include "info/key_packing.h"

namespace mesa {

namespace {

using info_cache::CubeEntry;
using info_cache::JointCube;
using info_internal::BitsFor;
using info_internal::PackKey3;
using info_internal::UnpackKey3;

// Scalar-memo tags: which estimator family a memoized double belongs to.
// MI through the dense path memoizes under the CMI tag (it *is* a CMI
// with a constant conditioning axis), so the same expression reached via
// either entry point shares one memo slot.
constexpr uint64_t kTagCmi = 0x434D49;  // "CMI"
constexpr uint64_t kTagMi = 0x4D49;     // "MI"

double EntropyOfMap(const std::unordered_map<uint64_t, double>& counts,
                    double total, const EntropyOptions& options) {
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (const auto& [key, c] : counts) {
    (void)key;
    if (c <= 0.0) continue;
    double p = c / total;
    h -= p * std::log2(p);
  }
  if (options.miller_madow && counts.size() > 1) {
    h += static_cast<double>(counts.size() - 1) /
         (2.0 * total * std::log(2.0));
  }
  return h;
}

// Per-worker scratch for the dense kernel. The buffers hold the joint
// count cube and its three marginal projections; they grow to the
// largest key space seen by this thread and are *restored to all-zero*
// after every call by walking the touched cells (O(support)) instead of
// re-zeroing the whole buffer (O(cells), up to 8 MB per call at the
// 20-bit dense limit). The all-zero invariant between calls is what the
// counting loops rely on.
struct DenseArena {
  std::vector<double> xyz;
  std::vector<double> xz;
  std::vector<double> yz;
  std::vector<double> z;
};

DenseArena& Arena() {
  thread_local DenseArena arena;
  return arena;
}

void EnsureZeroed(std::vector<double>* buf, size_t size) {
  if (buf->size() < size) buf->resize(size, 0.0);
}

// Counts the joint (x, y, z) cube into the arena and extracts the
// nonzero cells, ascending by packed key — the exact order the original
// dense kernel visited them — zeroing each extracted cell so the arena
// invariant holds on return. Row handling (skip any-missing rows, skip
// non-positive weights) is unchanged from the pre-cache kernel.
void BuildDenseEntries(const CodedVariable& x, const CodedVariable& y,
                       const CodedVariable& z,
                       const std::vector<double>* weights, int bx, int by,
                       int bz, std::vector<CubeEntry>* entries,
                       double* total_out) {
  const size_t cells = size_t{1} << (bx + by + bz);
  std::vector<double>& xyz = Arena().xyz;
  EnsureZeroed(&xyz, cells);
  double total = 0.0;
  const size_t n = x.codes.size();
  if (weights == nullptr) {
    for (size_t i = 0; i < n; ++i) {
      int32_t cx = x.codes[i], cy = y.codes[i], cz = z.codes[i];
      if ((cx | cy | cz) < 0) continue;  // any missing
      size_t key = (static_cast<size_t>(cx) << (by + bz)) |
                   (static_cast<size_t>(cy) << bz) | static_cast<size_t>(cz);
      xyz[key] += 1.0;
      total += 1.0;
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      int32_t cx = x.codes[i], cy = y.codes[i], cz = z.codes[i];
      if ((cx | cy | cz) < 0) continue;
      double w = (*weights)[i];
      if (w <= 0.0) continue;
      size_t key = (static_cast<size_t>(cx) << (by + bz)) |
                   (static_cast<size_t>(cy) << bz) | static_cast<size_t>(cz);
      xyz[key] += w;
      total += w;
    }
  }
  entries->clear();
  for (size_t key = 0; key < cells; ++key) {
    double c = xyz[key];
    if (c <= 0.0) continue;
    entries->push_back(CubeEntry{key, c});
    xyz[key] = 0.0;
  }
  *total_out = total;
}

// The dense CMI computation from an already-counted cube. Entries must
// be sorted ascending by key in the *caller's* (x, y, z) layout; since
// that is the order the old kernel scanned its flat array, every
// floating-point sum here happens in the same order as a pre-cache
// evaluation — the result is bit-identical whether the entries came from
// a fresh row scan or from a repacked cached cube.
double DenseCmiFromEntries(const std::vector<CubeEntry>& entries,
                           double total, const EntropyOptions& options,
                           int bx, int by, int bz) {
  if (total <= 0.0) return 0.0;
  DenseArena& arena = Arena();
  const size_t cells_xz = size_t{1} << (bx + bz);
  const size_t cells_yz = size_t{1} << (by + bz);
  const size_t cells_z = size_t{1} << bz;
  EnsureZeroed(&arena.xz, cells_xz);
  EnsureZeroed(&arena.yz, cells_yz);
  EnsureZeroed(&arena.z, cells_z);

  double h_xyz = 0.0;
  size_t support_xyz = 0;
  const double inv_total = 1.0 / total;
  for (const CubeEntry& e : entries) {
    double c = e.count;
    if (c <= 0.0) continue;
    ++support_xyz;
    double p = c * inv_total;
    h_xyz -= p * std::log2(p);
    uint64_t kx, ky, kz;
    UnpackKey3(e.key, by, bz, &kx, &ky, &kz);
    arena.xz[(kx << bz) | kz] += c;
    arena.yz[(ky << bz) | kz] += c;
    arena.z[kz] += c;
  }
  auto entropy_of = [&](const std::vector<double>& counts, size_t limit,
                        size_t* support) {
    double h = 0.0;
    size_t s = 0;
    for (size_t i = 0; i < limit; ++i) {
      double c = counts[i];
      if (c <= 0.0) continue;
      ++s;
      double p = c * inv_total;
      h -= p * std::log2(p);
    }
    *support = s;
    return h;
  };
  size_t s_xz = 0, s_yz = 0, s_z = 0;
  double h_xz = entropy_of(arena.xz, cells_xz, &s_xz);
  double h_yz = entropy_of(arena.yz, cells_yz, &s_yz);
  double h_z = entropy_of(arena.z, cells_z, &s_z);
  // Restore the arena's all-zero invariant by touched cell (repeated
  // zeroing of a shared projection cell is harmless).
  for (const CubeEntry& e : entries) {
    uint64_t kx, ky, kz;
    UnpackKey3(e.key, by, bz, &kx, &ky, &kz);
    arena.xz[(kx << bz) | kz] = 0.0;
    arena.yz[(ky << bz) | kz] = 0.0;
    arena.z[kz] = 0.0;
  }
  if (options.miller_madow) {
    const double mm = 1.0 / (2.0 * total * std::log(2.0));
    if (support_xyz > 1) h_xyz += (support_xyz - 1) * mm;
    if (s_xz > 1) h_xz += (s_xz - 1) * mm;
    if (s_yz > 1) h_yz += (s_yz - 1) * mm;
    if (s_z > 1) h_z += (s_z - 1) * mm;
  }
  return std::max(0.0, h_xz + h_yz - h_xyz - h_z);
}

// Matches our (x, y, z) axis identities against a cached cube's axes.
// On success perm[j] is the cube axis holding our j-th variable. Bits
// are compared as a collision guard on top of the fingerprints.
bool MatchAxes(const JointCube& cube, const uint64_t fps[3],
               const int bits[3], int perm[3]) {
  bool used[3] = {false, false, false};
  for (int j = 0; j < 3; ++j) {
    perm[j] = -1;
    for (int a = 0; a < 3; ++a) {
      if (used[a]) continue;
      if (cube.axes[a].fingerprint == fps[j] && cube.axes[a].bits == bits[j]) {
        used[a] = true;
        perm[j] = a;
        break;
      }
    }
    if (perm[j] < 0) return false;
  }
  return true;
}

// Translates a cached cube (counted in some other call's axis order)
// into the requesting call's layout and sorts ascending — producing
// exactly the entry sequence BuildDenseEntries would have emitted, since
// cell counts are layout-independent sums over the same rows.
void RepackEntries(const JointCube& cube, const int perm[3], int by, int bz,
                   std::vector<CubeEntry>* out) {
  const int cube_by = cube.axes[1].bits;
  const int cube_bz = cube.axes[2].bits;
  out->resize(cube.entries.size());
  for (size_t i = 0; i < cube.entries.size(); ++i) {
    uint64_t k[3];
    UnpackKey3(cube.entries[i].key, cube_by, cube_bz, &k[0], &k[1], &k[2]);
    (*out)[i].key = PackKey3(k[perm[0]], k[perm[1]], k[perm[2]], by, bz);
    (*out)[i].count = cube.entries[i].count;
  }
  std::sort(out->begin(), out->end(),
            [](const CubeEntry& a, const CubeEntry& b) {
              return a.key < b.key;
            });
}

// Dense CMI with both cache layers. Cache off reduces to exactly the
// pre-cache kernel (no fingerprinting, no lookups).
double CachedDenseCmi(const CodedVariable& x, const CodedVariable& y,
                      const CodedVariable& z,
                      const std::vector<double>* weights,
                      const EntropyOptions& options, int bx, int by, int bz) {
  thread_local std::vector<CubeEntry> entries;
  double total = 0.0;
  if (!info_cache::Enabled()) {
    BuildDenseEntries(x, y, z, weights, bx, by, bz, &entries, &total);
    return DenseCmiFromEntries(entries, total, options, bx, by, bz);
  }
  const uint64_t fps[3] = {x.fingerprint(), y.fingerprint(), z.fingerprint()};
  const uint64_t wfp = info_cache::WeightsFingerprint(weights);
  const uint64_t skey =
      info_cache::ScalarKey(kTagCmi, fps, 3, wfp, options.miller_madow);
  double memo = 0.0;
  if (info_cache::LookupScalar(skey, &memo)) return memo;

  const int bits[3] = {bx, by, bz};
  const uint64_t ckey = info_cache::CubeKey(fps[0], fps[1], fps[2], wfp);
  std::shared_ptr<const JointCube> cube = info_cache::LookupCube(ckey);
  int perm[3];
  if (cube != nullptr && MatchAxes(*cube, fps, bits, perm)) {
    RepackEntries(*cube, perm, by, bz, &entries);
    total = cube->total;
  } else {
    BuildDenseEntries(x, y, z, weights, bx, by, bz, &entries, &total);
    if (cube == nullptr) {
      auto fresh = std::make_shared<JointCube>();
      fresh->axes[0] = {fps[0], bx};
      fresh->axes[1] = {fps[1], by};
      fresh->axes[2] = {fps[2], bz};
      fresh->entries = entries;
      fresh->total = total;
      info_cache::InsertCube(ckey, std::move(fresh));
    }
  }
  double r = DenseCmiFromEntries(entries, total, options, bx, by, bz);
  info_cache::InsertScalar(skey, r);
  return r;
}

// Single-pass CMI over packed (x, y, z) keys. Requires the key widths to
// fit 64 bits; the caller falls back to the generic path otherwise. Rows
// missing any variable are skipped, so every entropy term shares one
// support, and optional row weights give the IPW estimator. This path
// keeps its original hash-map arithmetic (the scalar memo in the caller
// dedupes repeats); only the dense path shares cubes across calls,
// because only there is the summation order reproducible from a cube.
double PackedCmi(const CodedVariable& x, const CodedVariable& y,
                 const CodedVariable& z, const std::vector<double>* weights,
                 const EntropyOptions& options, int by, int bz) {
  std::unordered_map<uint64_t, double> xyz;
  xyz.reserve(256);
  double total = 0.0;
  const size_t n = x.codes.size();
  for (size_t i = 0; i < n; ++i) {
    int32_t cx = x.codes[i], cy = y.codes[i], cz = z.codes[i];
    if (cx < 0 || cy < 0 || cz < 0) continue;
    double w = weights != nullptr ? (*weights)[i] : 1.0;
    if (w <= 0.0) continue;
    uint64_t key = PackKey3(static_cast<uint32_t>(cx),
                            static_cast<uint32_t>(cy),
                            static_cast<uint32_t>(cz), by, bz);
    xyz[key] += w;
    total += w;
  }
  if (total <= 0.0) return 0.0;

  std::unordered_map<uint64_t, double> xz, yz, zonly;
  xz.reserve(xyz.size());
  yz.reserve(xyz.size());
  for (const auto& [key, c] : xyz) {
    uint64_t kx, ky, kz;
    UnpackKey3(key, by, bz, &kx, &ky, &kz);
    xz[(kx << bz) | kz] += c;
    yz[(ky << bz) | kz] += c;
    zonly[kz] += c;
  }
  double h_xyz = EntropyOfMap(xyz, total, options);
  double h_xz = EntropyOfMap(xz, total, options);
  double h_yz = EntropyOfMap(yz, total, options);
  double h_z = EntropyOfMap(zonly, total, options);
  return std::max(0.0, h_xz + h_yz - h_xyz - h_z);
}

// Masks variable `v` to the rows present in `support` (code >= 0), so all
// entropy terms of an MI/CMI expression share one sample.
CodedVariable MaskTo(const CodedVariable& v, const CodedVariable& support) {
  CodedVariable out = v;
  for (size_t i = 0; i < out.codes.size(); ++i) {
    if (support.codes[i] < 0) out.codes[i] = -1;
  }
  return out;
}

// The constant conditioning axis MI lends to the dense CMI kernel.
// Cached per thread so its fingerprint (an O(n) hash) is computed once
// per row count rather than per call.
const CodedVariable& TrivialFor(size_t n) {
  thread_local CodedVariable trivial;
  if (trivial.codes.size() != n || trivial.cardinality != 1) {
    trivial.codes.assign(n, 0);
    trivial.cardinality = 1;
    trivial.InvalidateFingerprint();
  }
  return trivial;
}

}  // namespace

double MutualInformation(const CodedVariable& x, const CodedVariable& y,
                         const std::vector<double>* weights,
                         const EntropyOptions& options) {
  MESA_CHECK(x.size() == y.size());
  MESA_COUNT("info/mi_evals");
  MESA_SPAN("mi");
  CancelCheckpoint();  // per-estimator-evaluation checkpoint
  // I(X;Y) = I(X;Y|const); small-cardinality pairs take the dense path.
  int bx = BitsFor(std::max<int32_t>(1, x.cardinality));
  int by = BitsFor(std::max<int32_t>(1, y.cardinality));
  if (bx + by + 1 <= 20) {
    return CachedDenseCmi(x, y, TrivialFor(x.codes.size()), weights, options,
                          bx, by, 1);
  }
  uint64_t skey = 0;
  if (info_cache::Enabled()) {
    const uint64_t fps[2] = {x.fingerprint(), y.fingerprint()};
    skey = info_cache::ScalarKey(kTagMi, fps, 2,
                                 info_cache::WeightsFingerprint(weights),
                                 options.miller_madow);
    double memo = 0.0;
    if (info_cache::LookupScalar(skey, &memo)) return memo;
  }
  CodedVariable xy = CombinePair(x, y);
  double h_x = Entropy(MaskTo(x, xy), weights, options);
  double h_y = Entropy(MaskTo(y, xy), weights, options);
  double h_xy = Entropy(xy, weights, options);
  double r = std::max(0.0, h_x + h_y - h_xy);
  if (info_cache::Enabled()) info_cache::InsertScalar(skey, r);
  return r;
}

double ConditionalMutualInformation(const CodedVariable& x,
                                    const CodedVariable& y,
                                    const CodedVariable& z,
                                    const std::vector<double>* weights,
                                    const EntropyOptions& options) {
  MESA_CHECK(x.size() == y.size() && y.size() == z.size());
  MESA_COUNT("info/cmi_evals");
  MESA_SPAN("cmi");
  CancelCheckpoint();  // per-estimator-evaluation checkpoint
  int bx = BitsFor(std::max<int32_t>(1, x.cardinality));
  int by = BitsFor(std::max<int32_t>(1, y.cardinality));
  int bz = BitsFor(std::max<int32_t>(1, z.cardinality));
  if (bx + by + bz <= 20) {
    // Small key space: dense counting beats hashing, and the counted
    // cube is shareable across partitions of the same triple.
    return CachedDenseCmi(x, y, z, weights, options, bx, by, bz);
  }
  uint64_t skey = 0;
  if (info_cache::Enabled()) {
    const uint64_t fps[3] = {x.fingerprint(), y.fingerprint(),
                             z.fingerprint()};
    skey = info_cache::ScalarKey(kTagCmi, fps, 3,
                                 info_cache::WeightsFingerprint(weights),
                                 options.miller_madow);
    double memo = 0.0;
    if (info_cache::LookupScalar(skey, &memo)) return memo;
  }
  double r;
  if (bx + by + bz <= 64) {
    r = PackedCmi(x, y, z, weights, options, by, bz);
  } else {
    CodedVariable xz = CombinePair(x, z);
    CodedVariable yz = CombinePair(y, z);
    CodedVariable xyz = CombinePair(xz, y);
    double h_xz = Entropy(MaskTo(xz, xyz), weights, options);
    double h_yz = Entropy(MaskTo(yz, xyz), weights, options);
    double h_xyz = Entropy(xyz, weights, options);
    double h_z = Entropy(MaskTo(z, xyz), weights, options);
    r = std::max(0.0, h_xz + h_yz - h_xyz - h_z);
  }
  if (info_cache::Enabled()) info_cache::InsertScalar(skey, r);
  return r;
}

double InteractionInformation(const CodedVariable& x, const CodedVariable& y,
                              const CodedVariable& z,
                              const std::vector<double>* weights,
                              const EntropyOptions& options) {
  // Evaluate both terms over the common support of all three variables so
  // the difference is meaningful under missing data.
  CodedVariable xyz = CombinePair(CombinePair(x, z), y);
  CodedVariable xm = MaskTo(x, xyz);
  CodedVariable ym = MaskTo(y, xyz);
  CodedVariable zm = MaskTo(z, xyz);
  double mi = MutualInformation(xm, ym, weights, options);
  double cmi = ConditionalMutualInformation(xm, ym, zm, weights, options);
  return mi - cmi;
}

}  // namespace mesa
