#include "info/mutual_information.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/cancel.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "info/cmi_kernel.h"
#include "info/info_cache.h"
#include "info/key_packing.h"

namespace mesa {

namespace {

using info_cache::CubeEntry;
using info_cache::JointCube;
using info_internal::BitsFor;
using info_internal::BuildDenseEntries;
using info_internal::BuildPackedEntries;
using info_internal::CmiFromEntries;
using info_internal::HashCmi;
using info_internal::kDenseCmiBits;
using info_internal::PackKey3;
using info_internal::SumEntriesAscending;
using info_internal::UnpackKey3;

// Scalar-memo tags: which estimator family a memoized double belongs to.
// MI through a cube kernel memoizes under the CMI tag (it *is* a CMI
// with a constant conditioning axis), so the same expression reached via
// either entry point shares one memo slot. The dense and packed kernels
// share kTagCmi — they are bit-identical by the canonical-cube contract —
// while the hash kernel's ulp-different results live under their own
// tag, so flipping MESA_CMI_KERNEL mid-process can never replay a stale
// value from the other arithmetic.
constexpr uint64_t kTagCmi = 0x434D49;       // "CMI"
constexpr uint64_t kTagCmiHash = 0x434D4948; // "CMIH"
constexpr uint64_t kTagMi = 0x4D49;          // "MI"

// What actually runs for one evaluation, after clamping the requested
// mode to the widths each kernel can serve.
enum class Resolved { kDense, kPacked, kHash, kFallback };

Resolved ResolveKernel(int key_bits) {
  if (key_bits > 64) return Resolved::kFallback;
  switch (CmiKernelMode()) {
    case CmiKernel::kPacked:
      return Resolved::kPacked;
    case CmiKernel::kHash:
      return Resolved::kHash;
    case CmiKernel::kAuto:
    case CmiKernel::kDense:
      break;
  }
  // Auto picks by width; a forced `dense` above the arena limit clamps
  // to packed, which is bit-identical where both could run.
  return key_bits <= kDenseCmiBits ? Resolved::kDense : Resolved::kPacked;
}

// Bumps the per-kernel selection counter (docs/observability.md).
void CountKernel(Resolved kernel) {
  switch (kernel) {
    case Resolved::kDense:
      MESA_COUNT("info/kernel_dense");
      break;
    case Resolved::kPacked:
      MESA_COUNT("info/kernel_packed");
      break;
    case Resolved::kHash:
      MESA_COUNT("info/kernel_hash");
      break;
    case Resolved::kFallback:
      MESA_COUNT("info/kernel_fallback");
      break;
  }
}

// Matches our (x, y, z) axis identities against a cached cube's axes.
// On success perm[j] is the cube axis holding our j-th variable. Bits
// are compared as a collision guard on top of the fingerprints.
bool MatchAxes(const JointCube& cube, const uint64_t fps[3],
               const int bits[3], int perm[3]) {
  bool used[3] = {false, false, false};
  for (int j = 0; j < 3; ++j) {
    perm[j] = -1;
    for (int a = 0; a < 3; ++a) {
      if (used[a]) continue;
      if (cube.axes[a].fingerprint == fps[j] && cube.axes[a].bits == bits[j]) {
        used[a] = true;
        perm[j] = a;
        break;
      }
    }
    if (perm[j] < 0) return false;
  }
  return true;
}

// Translates a cached cube (counted in some other call's axis order)
// into the requesting call's layout and sorts ascending — producing
// exactly the entry sequence a fresh build would have emitted: cell
// counts are stable row-order sums of the same rows in any layout, and
// the caller re-derives the grand total from the repacked ascending
// order, so nothing downstream can tell a cache hit from a fresh count.
void RepackEntries(const JointCube& cube, const int perm[3], int by, int bz,
                   std::vector<CubeEntry>* out) {
  const int cube_by = cube.axes[1].bits;
  const int cube_bz = cube.axes[2].bits;
  out->resize(cube.entries.size());
  for (size_t i = 0; i < cube.entries.size(); ++i) {
    uint64_t k[3];
    UnpackKey3(cube.entries[i].key, cube_by, cube_bz, &k[0], &k[1], &k[2]);
    (*out)[i].key = PackKey3(k[perm[0]], k[perm[1]], k[perm[2]], by, bz);
    (*out)[i].count = cube.entries[i].count;
  }
  std::sort(out->begin(), out->end(),
            [](const CubeEntry& a, const CubeEntry& b) {
              return a.key < b.key;
            });
}

// CMI through a canonical-cube kernel (dense or packed — bit-identical,
// so they share memo slots and cubes), with both cache layers. Cache off
// reduces to exactly the kernel (no fingerprinting, no lookups).
double CachedCubeCmi(const CodedVariable& x, const CodedVariable& y,
                     const CodedVariable& z,
                     const std::vector<double>* weights,
                     const EntropyOptions& options, int bx, int by, int bz,
                     bool dense_build) {
  thread_local std::vector<CubeEntry> entries;
  auto build = [&] {
    if (dense_build) {
      BuildDenseEntries(x, y, z, weights, bx, by, bz, &entries);
    } else {
      BuildPackedEntries(x, y, z, weights, bx, by, bz, &entries);
    }
  };
  if (!info_cache::Enabled()) {
    build();
    return CmiFromEntries(entries, SumEntriesAscending(entries), options, bx,
                          by, bz);
  }
  const uint64_t fps[3] = {x.fingerprint(), y.fingerprint(), z.fingerprint()};
  const uint64_t wfp = info_cache::WeightsFingerprint(weights);
  const uint64_t skey =
      info_cache::ScalarKey(kTagCmi, fps, 3, wfp, options.miller_madow);
  double memo = 0.0;
  if (info_cache::LookupScalar(skey, &memo)) return memo;

  const int bits[3] = {bx, by, bz};
  const uint64_t ckey = info_cache::CubeKey(fps[0], fps[1], fps[2], wfp);
  std::shared_ptr<const JointCube> cube = info_cache::LookupCube(ckey);
  int perm[3];
  if (cube != nullptr && MatchAxes(*cube, fps, bits, perm)) {
    RepackEntries(*cube, perm, by, bz, &entries);
  } else {
    build();
    if (cube == nullptr) {
      auto fresh = std::make_shared<JointCube>();
      fresh->axes[0] = {fps[0], bx};
      fresh->axes[1] = {fps[1], by};
      fresh->axes[2] = {fps[2], bz};
      fresh->entries = entries;
      fresh->total = SumEntriesAscending(entries);
      info_cache::InsertCube(ckey, std::move(fresh));
    }
  }
  double r = CmiFromEntries(entries, SumEntriesAscending(entries), options,
                            bx, by, bz);
  info_cache::InsertScalar(skey, r);
  return r;
}

// The hash escape kernel behind its own (salted) memo tag. No cube
// sharing: its summation order is not reproducible from a cube.
double CachedHashCmi(const CodedVariable& x, const CodedVariable& y,
                     const CodedVariable& z,
                     const std::vector<double>* weights,
                     const EntropyOptions& options, int by, int bz) {
  uint64_t skey = 0;
  if (info_cache::Enabled()) {
    const uint64_t fps[3] = {x.fingerprint(), y.fingerprint(),
                             z.fingerprint()};
    skey = info_cache::ScalarKey(kTagCmiHash, fps, 3,
                                 info_cache::WeightsFingerprint(weights),
                                 options.miller_madow);
    double memo = 0.0;
    if (info_cache::LookupScalar(skey, &memo)) return memo;
  }
  double r = HashCmi(x, y, z, weights, options, by, bz);
  if (info_cache::Enabled()) info_cache::InsertScalar(skey, r);
  return r;
}

// Masks variable `v` to the rows present in `support` (code >= 0), so all
// entropy terms of an MI/CMI expression share one sample.
CodedVariable MaskTo(const CodedVariable& v, const CodedVariable& support) {
  CodedVariable out = v;
  for (size_t i = 0; i < out.codes.size(); ++i) {
    if (support.codes[i] < 0) out.codes[i] = -1;
  }
  return out;
}

// The constant conditioning axis MI lends to the CMI kernels. Cached per
// thread so its fingerprint (an O(n) hash) is computed once per row
// count rather than per call.
const CodedVariable& TrivialFor(size_t n) {
  thread_local CodedVariable trivial;
  if (trivial.codes.size() != n || trivial.cardinality != 1) {
    trivial.codes.assign(n, 0);
    trivial.cardinality = 1;
    trivial.InvalidateFingerprint();
  }
  return trivial;
}

}  // namespace

double MutualInformation(const CodedVariable& x, const CodedVariable& y,
                         const std::vector<double>* weights,
                         const EntropyOptions& options) {
  MESA_CHECK(x.size() == y.size());
  MESA_COUNT("info/mi_evals");
  MESA_SPAN("mi");
  CancelCheckpoint();  // per-estimator-evaluation checkpoint
  // I(X;Y) = I(X;Y|const): every key width a cube kernel can serve goes
  // through it with a constant conditioning axis, which is what lets MI
  // evaluations share cubes (and memo slots) with CMI over the same
  // pair — above as well as below the dense limit since the packed
  // kernel arrived.
  int bx = BitsFor(std::max<int32_t>(1, x.cardinality));
  int by = BitsFor(std::max<int32_t>(1, y.cardinality));
  const Resolved kernel = ResolveKernel(bx + by + 1);
  CountKernel(kernel);
  switch (kernel) {
    case Resolved::kDense:
    case Resolved::kPacked:
      return CachedCubeCmi(x, y, TrivialFor(x.codes.size()), weights, options,
                           bx, by, 1, kernel == Resolved::kDense);
    case Resolved::kHash:
      return CachedHashCmi(x, y, TrivialFor(x.codes.size()), weights, options,
                           by, 1);
    case Resolved::kFallback:
      break;
  }
  uint64_t skey = 0;
  if (info_cache::Enabled()) {
    const uint64_t fps[2] = {x.fingerprint(), y.fingerprint()};
    skey = info_cache::ScalarKey(kTagMi, fps, 2,
                                 info_cache::WeightsFingerprint(weights),
                                 options.miller_madow);
    double memo = 0.0;
    if (info_cache::LookupScalar(skey, &memo)) return memo;
  }
  CodedVariable xy = CombinePair(x, y);
  double h_x = Entropy(MaskTo(x, xy), weights, options);
  double h_y = Entropy(MaskTo(y, xy), weights, options);
  double h_xy = Entropy(xy, weights, options);
  double r = std::max(0.0, h_x + h_y - h_xy);
  if (info_cache::Enabled()) info_cache::InsertScalar(skey, r);
  return r;
}

double ConditionalMutualInformation(const CodedVariable& x,
                                    const CodedVariable& y,
                                    const CodedVariable& z,
                                    const std::vector<double>* weights,
                                    const EntropyOptions& options) {
  MESA_CHECK(x.size() == y.size() && y.size() == z.size());
  MESA_COUNT("info/cmi_evals");
  MESA_SPAN("cmi");
  CancelCheckpoint();  // per-estimator-evaluation checkpoint
  int bx = BitsFor(std::max<int32_t>(1, x.cardinality));
  int by = BitsFor(std::max<int32_t>(1, y.cardinality));
  int bz = BitsFor(std::max<int32_t>(1, z.cardinality));
  const Resolved kernel = ResolveKernel(bx + by + bz);
  CountKernel(kernel);
  switch (kernel) {
    case Resolved::kDense:
    case Resolved::kPacked:
      return CachedCubeCmi(x, y, z, weights, options, bx, by, bz,
                           kernel == Resolved::kDense);
    case Resolved::kHash:
      return CachedHashCmi(x, y, z, weights, options, by, bz);
    case Resolved::kFallback:
      break;
  }
  // Key too wide for any packed kernel (> 64 bits): derive from the
  // composite-entropy identity.
  uint64_t skey = 0;
  if (info_cache::Enabled()) {
    const uint64_t fps[3] = {x.fingerprint(), y.fingerprint(),
                             z.fingerprint()};
    skey = info_cache::ScalarKey(kTagCmi, fps, 3,
                                 info_cache::WeightsFingerprint(weights),
                                 options.miller_madow);
    double memo = 0.0;
    if (info_cache::LookupScalar(skey, &memo)) return memo;
  }
  CodedVariable xz = CombinePair(x, z);
  CodedVariable yz = CombinePair(y, z);
  CodedVariable xyz = CombinePair(xz, y);
  double h_xz = Entropy(MaskTo(xz, xyz), weights, options);
  double h_yz = Entropy(MaskTo(yz, xyz), weights, options);
  double h_xyz = Entropy(xyz, weights, options);
  double h_z = Entropy(MaskTo(z, xyz), weights, options);
  double r = std::max(0.0, h_xz + h_yz - h_xyz - h_z);
  if (info_cache::Enabled()) info_cache::InsertScalar(skey, r);
  return r;
}

double InteractionInformation(const CodedVariable& x, const CodedVariable& y,
                              const CodedVariable& z,
                              const std::vector<double>* weights,
                              const EntropyOptions& options) {
  // Evaluate both terms over the common support of all three variables so
  // the difference is meaningful under missing data.
  CodedVariable xyz = CombinePair(CombinePair(x, z), y);
  CodedVariable xm = MaskTo(x, xyz);
  CodedVariable ym = MaskTo(y, xyz);
  CodedVariable zm = MaskTo(z, xyz);
  double mi = MutualInformation(xm, ym, weights, options);
  double cmi = ConditionalMutualInformation(xm, ym, zm, weights, options);
  return mi - cmi;
}

}  // namespace mesa
