#include "info/independence.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

#include "common/cancel.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "info/info_cache.h"
#include "stats/distributions.h"

namespace mesa {

IndependenceResult ConditionalIndependenceTest(
    const CodedVariable& x, const CodedVariable& y, const CodedVariable& z,
    const IndependenceOptions& options) {
  MESA_COUNT("info/ci_tests");
  MESA_SPAN("ci_test");
  IndependenceResult result;
  result.cmi = ConditionalMutualInformation(x, y, z);
  if (result.cmi < options.cmi_epsilon) {
    MESA_COUNT("info/ci_epsilon_short_circuits");
    result.p_value = 1.0;
    result.independent = true;
    return result;
  }

  if (options.method == IndependenceMethod::kGTest) {
    MESA_COUNT("info/ci_gtests");
    size_t n = 0;
    std::set<int32_t> z_seen;
    for (size_t i = 0; i < z.codes.size(); ++i) {
      if (x.codes[i] < 0 || y.codes[i] < 0 || z.codes[i] < 0) continue;
      ++n;
      z_seen.insert(z.codes[i]);
    }
    double df = static_cast<double>(std::max(1, x.cardinality - 1)) *
                static_cast<double>(std::max(1, y.cardinality - 1)) *
                static_cast<double>(std::max<size_t>(1, z_seen.size()));
    double g = 2.0 * static_cast<double>(n) * result.cmi * std::log(2.0);
    result.p_value = ChiSquaredSf(g, df);
    result.independent = result.p_value >= options.alpha;
    return result;
  }

  // The permutation p-value is a pure function of (x, y, z) content and
  // (seed, num_permutations) — every shuffle's Rng derives from them —
  // so a repeated test (MCIMR's responsibility stop re-testing the same
  // selected set across ablation variants, say) returns the memoized
  // value instead of re-running num_permutations CMI evaluations.
  uint64_t pkey = 0;
  if (info_cache::Enabled()) {
    const uint64_t fps[3] = {x.fingerprint(), y.fingerprint(),
                             z.fingerprint()};
    pkey = info_cache::CiPValueKey(fps, options.seed,
                                   options.num_permutations);
    double memo_p = 0.0;
    if (info_cache::LookupScalar(pkey, &memo_p)) {
      result.p_value = memo_p;
      result.independent = memo_p >= options.alpha;
      return result;
    }
  }

  // Group row indices by stratum of Z (only rows observed in all three).
  std::unordered_map<int32_t, std::vector<size_t>> strata;
  for (size_t i = 0; i < z.codes.size(); ++i) {
    if (z.codes[i] < 0 || x.codes[i] < 0 || y.codes[i] < 0) continue;
    strata[z.codes[i]].push_back(i);
  }

  // Deterministic order of strata for the shuffle (unordered_map iteration
  // order is not specified, so pin it down once).
  std::vector<const std::vector<size_t>*> stratum_rows;
  {
    std::vector<int32_t> codes;
    codes.reserve(strata.size());
    for (const auto& [code, rows] : strata) {
      (void)rows;
      codes.push_back(code);
    }
    std::sort(codes.begin(), codes.end());
    for (int32_t code : codes) stratum_rows.push_back(&strata.at(code));
  }

  // Each permutation shuffles a fresh copy of X with its own RNG seeded
  // MixSeed(options.seed, perm): permutations are independent of each other
  // and of the execution order, so the p-value is bit-identical whether the
  // loop runs serially or on any number of threads.
  MESA_COUNT_N("info/ci_permutations", options.num_permutations);
  const double observed_cmi = result.cmi;
  const size_t at_least = ParallelMapReduce<size_t>(
      0, options.num_permutations, 0,
      [&](size_t perm) -> size_t {
        // Per-permutation cancellation checkpoint: an expired request
        // aborts here instead of finishing the remaining shuffles.
        CancelCheckpoint();
        // Per-thread scratch: reset to X each permutation, so the result
        // never depends on which chunk this index landed in.
        thread_local CodedVariable xp;
        xp.codes = x.codes;
        xp.cardinality = x.cardinality;
        // In-place mutation of a reused object: forget the memoized
        // content fingerprint in case anything downstream reads it.
        xp.InvalidateFingerprint();
        Rng rng(MixSeed(options.seed, perm));
        for (const std::vector<size_t>* rows : stratum_rows) {
          for (size_t i = rows->size(); i > 1; --i) {
            size_t j = static_cast<size_t>(rng.NextBelow(i));
            std::swap(xp.codes[(*rows)[i - 1]], xp.codes[(*rows)[j]]);
          }
        }
        // Each shuffle is content that will never be evaluated again:
        // run it on the exact cache-off code path (no fingerprint hash,
        // no LRU pollution).
        info_cache::EphemeralScope ephemeral;
        double cmi = ConditionalMutualInformation(xp, y, z);
        return cmi >= observed_cmi ? 1 : 0;
      },
      [](size_t a, size_t b) { return a + b; });
  result.p_value = static_cast<double>(1 + at_least) /
                   static_cast<double>(1 + options.num_permutations);
  result.independent = result.p_value >= options.alpha;
  if (pkey != 0 && info_cache::Enabled()) {
    info_cache::InsertScalar(pkey, result.p_value);
  }
  return result;
}

}  // namespace mesa
