#include "info/independence.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

#include "stats/distributions.h"

namespace mesa {

IndependenceResult ConditionalIndependenceTest(
    const CodedVariable& x, const CodedVariable& y, const CodedVariable& z,
    const IndependenceOptions& options) {
  IndependenceResult result;
  result.cmi = ConditionalMutualInformation(x, y, z);
  if (result.cmi < options.cmi_epsilon) {
    result.p_value = 1.0;
    result.independent = true;
    return result;
  }

  if (options.method == IndependenceMethod::kGTest) {
    size_t n = 0;
    std::set<int32_t> z_seen;
    for (size_t i = 0; i < z.codes.size(); ++i) {
      if (x.codes[i] < 0 || y.codes[i] < 0 || z.codes[i] < 0) continue;
      ++n;
      z_seen.insert(z.codes[i]);
    }
    double df = static_cast<double>(std::max(1, x.cardinality - 1)) *
                static_cast<double>(std::max(1, y.cardinality - 1)) *
                static_cast<double>(std::max<size_t>(1, z_seen.size()));
    double g = 2.0 * static_cast<double>(n) * result.cmi * std::log(2.0);
    result.p_value = ChiSquaredSf(g, df);
    result.independent = result.p_value >= options.alpha;
    return result;
  }

  // Group row indices by stratum of Z (only rows observed in all three).
  std::unordered_map<int32_t, std::vector<size_t>> strata;
  for (size_t i = 0; i < z.codes.size(); ++i) {
    if (z.codes[i] < 0 || x.codes[i] < 0 || y.codes[i] < 0) continue;
    strata[z.codes[i]].push_back(i);
  }

  Rng rng(options.seed);
  size_t at_least = 0;
  CodedVariable xp = x;
  for (size_t perm = 0; perm < options.num_permutations; ++perm) {
    // Shuffle X within each stratum.
    for (auto& [code, rows] : strata) {
      (void)code;
      for (size_t i = rows.size(); i > 1; --i) {
        size_t j = static_cast<size_t>(rng.NextBelow(i));
        std::swap(xp.codes[rows[i - 1]], xp.codes[rows[j]]);
      }
    }
    double cmi = ConditionalMutualInformation(xp, y, z);
    if (cmi >= result.cmi) ++at_least;
  }
  result.p_value = static_cast<double>(1 + at_least) /
                   static_cast<double>(1 + options.num_permutations);
  result.independent = result.p_value >= options.alpha;
  return result;
}

}  // namespace mesa
