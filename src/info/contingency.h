#ifndef MESA_INFO_CONTINGENCY_H_
#define MESA_INFO_CONTINGENCY_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/result.h"

namespace mesa {

/// Lazily computed, memoized 64-bit content fingerprint of a
/// CodedVariable (see CodedVariable::fingerprint()). Copying or moving a
/// variable resets the cached value — the fresh object recomputes on
/// first use — so a copy-then-mutate sequence (MaskTo and friends) can
/// never serve a stale fingerprint. In-place mutation of `codes` after
/// the fingerprint has been read must call
/// CodedVariable::InvalidateFingerprint() (the permutation CI test's
/// scratch variable is the one site that does this).
class CodedFingerprint {
 public:
  CodedFingerprint() = default;
  CodedFingerprint(const CodedFingerprint&) {}
  CodedFingerprint(CodedFingerprint&&) noexcept {}
  CodedFingerprint& operator=(const CodedFingerprint&) {
    value_.store(0, std::memory_order_relaxed);
    return *this;
  }
  CodedFingerprint& operator=(CodedFingerprint&&) noexcept {
    value_.store(0, std::memory_order_relaxed);
    return *this;
  }

  uint64_t Load() const { return value_.load(std::memory_order_relaxed); }
  void Store(uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  // 0 means "not computed yet". Relaxed atomics: racing threads compute
  // the same pure value, and either store wins.
  std::atomic<uint64_t> value_{0};
};

/// A discrete variable over n rows: per-row code in [0, cardinality) or -1
/// for missing. All information-theoretic estimators operate on coded
/// variables; the discretizer produces them from table columns.
struct CodedVariable {
  std::vector<int32_t> codes;
  int32_t cardinality = 0;
  /// Cached content hash; see fingerprint().
  mutable CodedFingerprint fp;

  size_t size() const { return codes.size(); }

  /// 64-bit content fingerprint over (codes, cardinality), computed on
  /// first use and memoized. The sufficient-statistics cache
  /// (src/info/info_cache.h) keys every memoized entropy/MI/CMI result
  /// and joint count cube on these fingerprints, so repeated estimator
  /// calls over the same content cost one hash lookup instead of a row
  /// scan. Do not mutate `codes` in place after calling this without
  /// calling InvalidateFingerprint() (copies and moves reset themselves).
  uint64_t fingerprint() const;

  /// Forgets the memoized fingerprint. Required after in-place mutation
  /// of `codes` on an object whose fingerprint may have been read.
  void InvalidateFingerprint() const { fp.Reset(); }
};

/// Combines two coded variables into one whose codes identify the observed
/// (a, b) pairs. A row missing in either input is missing in the output.
/// Codes are assigned densely in order of first appearance, so cardinality
/// equals the number of distinct observed pairs (never the full product —
/// this keeps repeated combination overflow-free).
CodedVariable CombinePair(const CodedVariable& a, const CodedVariable& b);

/// Folds CombinePair over a list. An empty list yields the constant
/// variable (cardinality 1, all codes 0) over `n` rows — the neutral
/// conditioning set.
CodedVariable CombineAll(const std::vector<const CodedVariable*>& vars,
                         size_t n);

/// The constant (cardinality 1, all codes 0, nothing missing) variable
/// over `n` rows — the neutral conditioning set. Shared by every caller
/// that conditions "on nothing" (base CMI, online pruning, HypDB's
/// marginal tests) so the intent is greppable and the allocation pattern
/// uniform.
CodedVariable ConstantCode(size_t n);

/// Per-code total weight (count when `weights` is null). Rows with code -1
/// are skipped. Returns a vector of length `cardinality` plus the total in
/// `*total`.
std::vector<double> WeightedCounts(const CodedVariable& x,
                                   const std::vector<double>* weights,
                                   double* total);

}  // namespace mesa

#endif  // MESA_INFO_CONTINGENCY_H_
