#ifndef MESA_INFO_CONTINGENCY_H_
#define MESA_INFO_CONTINGENCY_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace mesa {

/// A discrete variable over n rows: per-row code in [0, cardinality) or -1
/// for missing. All information-theoretic estimators operate on coded
/// variables; the discretizer produces them from table columns.
struct CodedVariable {
  std::vector<int32_t> codes;
  int32_t cardinality = 0;

  size_t size() const { return codes.size(); }
};

/// Combines two coded variables into one whose codes identify the observed
/// (a, b) pairs. A row missing in either input is missing in the output.
/// Codes are assigned densely in order of first appearance, so cardinality
/// equals the number of distinct observed pairs (never the full product —
/// this keeps repeated combination overflow-free).
CodedVariable CombinePair(const CodedVariable& a, const CodedVariable& b);

/// Folds CombinePair over a list. An empty list yields the constant
/// variable (cardinality 1, all codes 0) over `n` rows — the neutral
/// conditioning set.
CodedVariable CombineAll(const std::vector<const CodedVariable*>& vars,
                         size_t n);

/// Per-code total weight (count when `weights` is null). Rows with code -1
/// are skipped. Returns a vector of length `cardinality` plus the total in
/// `*total`.
std::vector<double> WeightedCounts(const CodedVariable& x,
                                   const std::vector<double>* weights,
                                   double* total);

}  // namespace mesa

#endif  // MESA_INFO_CONTINGENCY_H_
