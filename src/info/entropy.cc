#include "info/entropy.h"

#include <algorithm>
#include <cmath>

#include "common/metrics.h"
#include "info/info_cache.h"
#include "info/key_packing.h"

namespace mesa {

namespace {

using info_internal::BitsFor;

// Scalar-memo tags for the entropy family (see info_cache.h). Entropy
// and conditional entropy have different missing-row semantics, so they
// must never share a memo slot.
constexpr uint64_t kTagEntropy = 0x48;      // "H"
constexpr uint64_t kTagCondEntropy = 0x4348;  // "CH"

double EntropyFromCounts(const std::vector<double>& counts, double total,
                         const EntropyOptions& options) {
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  size_t support = 0;
  for (double c : counts) {
    if (c <= 0.0) continue;
    ++support;
    double p = c / total;
    h -= p * std::log2(p);
  }
  if (options.miller_madow && support > 1) {
    h += static_cast<double>(support - 1) / (2.0 * total * std::log(2.0));
  }
  return h;
}

}  // namespace

double Entropy(const CodedVariable& x, const std::vector<double>* weights,
               const EntropyOptions& options) {
  MESA_COUNT("info/entropy_evals");
  MESA_SPAN("entropy");
  uint64_t skey = 0;
  if (info_cache::Enabled()) {
    const uint64_t fps[1] = {x.fingerprint()};
    skey = info_cache::ScalarKey(kTagEntropy, fps, 1,
                                 info_cache::WeightsFingerprint(weights),
                                 options.miller_madow);
    double memo = 0.0;
    if (info_cache::LookupScalar(skey, &memo)) return memo;
  }
  double total = 0.0;
  std::vector<double> counts = WeightedCounts(x, weights, &total);
  double r = EntropyFromCounts(counts, total, options);
  if (info_cache::Enabled()) info_cache::InsertScalar(skey, r);
  return r;
}

double JointEntropy(const CodedVariable& x, const CodedVariable& y,
                    const std::vector<double>* weights,
                    const EntropyOptions& options) {
  return Entropy(CombinePair(x, y), weights, options);
}

double ConditionalEntropy(const CodedVariable& x, const CodedVariable& y,
                          const std::vector<double>* weights,
                          const EntropyOptions& options) {
  MESA_COUNT("info/cond_entropy_evals");
  MESA_SPAN("cond_entropy");
  // Whole-expression memo only: H(X|Y) skips rows missing in X *or* Y,
  // a different support than any three-variable cube, so its kernel is
  // never derived from cached cubes by projection.
  uint64_t skey = 0;
  if (info_cache::Enabled()) {
    const uint64_t fps[2] = {x.fingerprint(), y.fingerprint()};
    skey = info_cache::ScalarKey(kTagCondEntropy, fps, 2,
                                 info_cache::WeightsFingerprint(weights),
                                 options.miller_madow);
    double memo = 0.0;
    if (info_cache::LookupScalar(skey, &memo)) return memo;
  }
  // Dense fast path: one flat-array pass when the joint key space is small
  // (this runs per candidate inside the trap tests, so it must not hash).
  const int bx = BitsFor(std::max<int32_t>(1, x.cardinality));
  const int by = BitsFor(std::max<int32_t>(1, y.cardinality));
  double r;
  if (bx + by <= 20) {
    std::vector<double> joint(size_t{1} << (bx + by), 0.0);
    double total = 0.0;
    const size_t n = x.codes.size();
    for (size_t i = 0; i < n; ++i) {
      int32_t cx = x.codes[i], cy = y.codes[i];
      if ((cx | cy) < 0) continue;
      double w = weights != nullptr ? (*weights)[i] : 1.0;
      if (w <= 0.0) continue;
      joint[(static_cast<size_t>(cx) << by) | static_cast<size_t>(cy)] += w;
      total += w;
    }
    if (total <= 0.0) {
      r = 0.0;
    } else {
      std::vector<double> marginal_y(size_t{1} << by, 0.0);
      double h_xy = 0.0;
      size_t support_xy = 0;
      const double inv_total = 1.0 / total;
      for (size_t key = 0; key < joint.size(); ++key) {
        double c = joint[key];
        if (c <= 0.0) continue;
        ++support_xy;
        double p = c * inv_total;
        h_xy -= p * std::log2(p);
        marginal_y[key & ((size_t{1} << by) - 1)] += c;
      }
      double h_y = 0.0;
      size_t support_y = 0;
      for (double c : marginal_y) {
        if (c <= 0.0) continue;
        ++support_y;
        double p = c * inv_total;
        h_y -= p * std::log2(p);
      }
      if (options.miller_madow) {
        const double mm = 1.0 / (2.0 * total * std::log(2.0));
        if (support_xy > 1) h_xy += (support_xy - 1) * mm;
        if (support_y > 1) h_y += (support_y - 1) * mm;
      }
      r = h_xy - h_y;
    }
  } else {
    // Restrict both terms to rows observed in *both* variables so the
    // difference is taken over one consistent sample.
    CodedVariable xy = CombinePair(x, y);
    CodedVariable y_joint = y;
    for (size_t i = 0; i < y_joint.codes.size(); ++i) {
      if (xy.codes[i] < 0) y_joint.codes[i] = -1;
    }
    r = Entropy(xy, weights, options) - Entropy(y_joint, weights, options);
  }
  if (info_cache::Enabled()) info_cache::InsertScalar(skey, r);
  return r;
}

}  // namespace mesa
