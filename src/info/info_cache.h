#ifndef MESA_INFO_INFO_CACHE_H_
#define MESA_INFO_INFO_CACHE_H_

/// The sufficient-statistics cache shared by every information-theoretic
/// estimator (entropy, conditional entropy, MI, CMI). Two layers, both
/// sharded LRU maps keyed on content fingerprints
/// (CodedVariable::fingerprint(), weights hashed with StableHash64Bytes):
///
///   1. a *scalar memo* — finished entropy/MI/CMI doubles keyed on the
///      exact expression (function tag, operand fingerprints, weights
///      fingerprint, EntropyOptions). A repeat of an identical call
///      returns the stored double: bit-identical by construction.
///
///   2. a *joint-cube cache* — the sparse (x, y, z) count cube a CMI/MI
///      evaluation builds anyway, keyed on the *unordered* set of axis
///      fingerprints. A later evaluation over the same three variables in
///      any partition — I(O;E|T) after I(O;T|E), say — repacks the cached
///      cube into its own layout and derives its entropy terms by
///      projection, skipping the O(rows) counting scan. Because the
///      repacked entries are sorted into exactly the order a fresh build
///      would produce, and the cell counts are order-independent sums of
///      the same row weights, the derived result is bit-identical to a
///      cache-off evaluation (asserted in tests/info_cache_test.cc at
///      1/2/8 threads).
///
/// Configuration: the MESA_INFO_CACHE environment variable — "OFF"/"0"
/// disables both layers entirely (the escape hatch; results are
/// identical, only time and memory change), a number sets the cube
/// budget in MB. SetEnabled()/SetCapacityForTest() override at runtime.
/// Hit/miss/eviction counts are surfaced both through common/metrics
/// counters ("info_cache/...", visible in `mesa_cli --metrics`) and
/// through GetStats(), which works even in MESA_METRICS=OFF builds.
///
/// Thread-safety: everything here is safe to call concurrently; values
/// are pure functions of their keys, so cache effects can change timing
/// but never results, at any thread count.

#include <cstdint>
#include <memory>
#include <vector>

#include "info/contingency.h"

namespace mesa {
namespace info_cache {

/// One nonzero cell of a joint count cube: packed (x, y, z) key in the
/// builder's layout, and the total weight that landed in the cell.
struct CubeEntry {
  uint64_t key;
  double count;
};

/// Sparse sufficient statistics of one (x, y, z) triple: every observed
/// cell of the joint distribution over rows where all three variables are
/// present (and, when weighted, carry positive weight). Entries are
/// sorted by key ascending — the order a dense scan emits them — which
/// is what makes projections deterministic.
struct JointCube {
  /// Per-axis identity in the builder's layout order: content
  /// fingerprint and packed bit width.
  struct Axis {
    uint64_t fingerprint = 0;
    int bits = 0;
  };
  Axis axes[3];
  std::vector<CubeEntry> entries;
  double total = 0.0;  ///< total weight over the common support
};

/// Whether the cache is active (env gate + runtime override + no
/// EphemeralScope on this thread).
bool Enabled();
void SetEnabled(bool enabled);

/// RAII bypass for estimator calls over throwaway data. While alive on
/// the current thread, Enabled() is false: no fingerprinting, no
/// lookups, no inserts — the exact cache-off code path. The permutation
/// CI test holds one around its shuffled evaluations: every permutation
/// is new content that can never be asked again, so caching it would
/// pay the fingerprint hash and pollute the LRU for zero future hits.
class EphemeralScope {
 public:
  EphemeralScope();
  ~EphemeralScope();
  EphemeralScope(const EphemeralScope&) = delete;
  EphemeralScope& operator=(const EphemeralScope&) = delete;
};

/// Drops every cached entry (both layers). Benchmarks call this between
/// timed arms so one arm cannot warm the next.
void Clear();

/// Cumulative counters, maintained independently of common/metrics so
/// tests work in MESA_METRICS=OFF builds.
struct Stats {
  uint64_t scalar_hits = 0;
  uint64_t scalar_misses = 0;
  uint64_t cube_hits = 0;
  uint64_t cube_misses = 0;
  uint64_t scalar_evictions = 0;
  uint64_t cube_evictions = 0;
};
Stats GetStats();

/// Current entry counts (for capacity tests).
size_t ScalarEntries();
size_t CubeEntries();

/// Replaces both LRU tables with fresh ones of the given budgets
/// (scalar: max finished results; cube: max total stored cells). Exposed
/// for the eviction/capacity unit tests; production sizing comes from
/// defaults / MESA_INFO_CACHE.
void SetCapacityForTest(uint64_t scalar_entries, uint64_t cube_cells);

/// Scalar memo keys. `tag` distinguishes the estimator family; operand
/// fingerprints, the weights fingerprint and the options bits are mixed
/// in by the helpers in info_cache.cc.
uint64_t ScalarKey(uint64_t tag, const uint64_t* fps, size_t num_fps,
                   uint64_t weights_fp, bool miller_madow);
bool LookupScalar(uint64_t key, double* value);
void InsertScalar(uint64_t key, double value);

/// Memo key for a permutation CI test's p-value. The p-value is a pure
/// function of the three operand contents, the base seed, and the
/// permutation count (every permutation derives its Rng from
/// MixSeed(seed, i)); alpha and the epsilon short-circuit are applied
/// by the caller on top. Stored through the scalar memo.
uint64_t CiPValueKey(const uint64_t fps[3], uint64_t seed,
                     uint64_t num_permutations);

/// Unordered-axis cube key (commutative over the three fingerprints, so
/// any partition of the same triple finds the same cube).
uint64_t CubeKey(uint64_t fp_x, uint64_t fp_y, uint64_t fp_z,
                 uint64_t weights_fp);
std::shared_ptr<const JointCube> LookupCube(uint64_t key);
void InsertCube(uint64_t key, std::shared_ptr<const JointCube> cube);

/// Fingerprint of an optional per-row weight vector (0 for unweighted).
uint64_t WeightsFingerprint(const std::vector<double>* weights);

}  // namespace info_cache
}  // namespace mesa

#endif  // MESA_INFO_INFO_CACHE_H_
