#ifndef MESA_INFO_MUTUAL_INFORMATION_H_
#define MESA_INFO_MUTUAL_INFORMATION_H_

#include <vector>

#include "info/entropy.h"

namespace mesa {

/// Mutual information I(X; Y) in bits, estimated by the plug-in estimator
/// over rows where both variables are observed; optional per-row weights
/// give the IPW estimator (Section 3.2). Never negative (clamped at 0).
double MutualInformation(const CodedVariable& x, const CodedVariable& y,
                         const std::vector<double>* weights = nullptr,
                         const EntropyOptions& options = {});

/// Conditional mutual information I(X; Y | Z) in bits:
///   H(X,Z) + H(Y,Z) - H(X,Y,Z) - H(Z)
/// over rows where X, Y and Z are all observed. Z is a composite code (use
/// CombineAll to build it from a conditioning set). Clamped at 0.
double ConditionalMutualInformation(const CodedVariable& x,
                                    const CodedVariable& y,
                                    const CodedVariable& z,
                                    const std::vector<double>* weights = nullptr,
                                    const EntropyOptions& options = {});

/// Interaction information I(X; Y; Z) = I(X;Y) - I(X;Y|Z). Positive means Z
/// explains away part of the X-Y association (what a confounder does);
/// negative means conditioning on Z *induces* association (the paper's
/// Hobby example).
double InteractionInformation(const CodedVariable& x, const CodedVariable& y,
                              const CodedVariable& z,
                              const std::vector<double>* weights = nullptr,
                              const EntropyOptions& options = {});

}  // namespace mesa

#endif  // MESA_INFO_MUTUAL_INFORMATION_H_
