#include "table/schema.h"

#include "common/logging.h"

namespace mesa {

Schema::Schema(std::vector<Field> fields) {
  for (auto& f : fields) {
    Status st = AddField(std::move(f));
    MESA_CHECK(st.ok());
  }
}

Status Schema::AddField(Field field) {
  if (index_.count(field.name) > 0) {
    return Status::AlreadyExists("duplicate field name: " + field.name);
  }
  index_.emplace(field.name, fields_.size());
  fields_.push_back(std::move(field));
  return Status::OK();
}

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

bool Schema::Contains(const std::string& name) const {
  return index_.count(name) > 0;
}

Result<Field> Schema::FieldByName(const std::string& name) const {
  auto idx = IndexOf(name);
  if (!idx.has_value()) {
    return Status::NotFound("no such field: " + name);
  }
  return fields_[*idx];
}

std::vector<std::string> Schema::names() const {
  std::vector<std::string> out;
  out.reserve(fields_.size());
  for (const auto& f : fields_) out.push_back(f.name);
  return out;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += DataTypeName(fields_[i].type);
  }
  return out;
}

}  // namespace mesa
