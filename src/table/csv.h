#ifndef MESA_TABLE_CSV_H_
#define MESA_TABLE_CSV_H_

#include <map>
#include <string>

#include "common/result.h"
#include "table/table.h"

namespace mesa {

/// Options for CSV parsing.
struct CsvReadOptions {
  char delimiter = ',';
  /// Treat the first row as a header (column names). Required true for now.
  bool has_header = true;
  /// Cell spellings interpreted as null, compared case-insensitively.
  std::vector<std::string> null_tokens = {"", "NULL", "NA", "N/A", "nan"};
  /// Columns with a declared type skip inference and parse *strictly*: a
  /// non-null cell that does not parse as the declared type (including an
  /// int64 literal that would overflow) fails the whole read with
  /// InvalidArgument instead of silently degrading the column to a wider
  /// type. Keyed by header name; names absent from the CSV are an error.
  std::map<std::string, DataType> declared_types;
};

/// Parses CSV text into a Table with per-column type inference:
/// a column is int64 if every non-null cell parses as an integer, else
/// double if every non-null cell parses as a number, else bool if every
/// non-null cell is true/false, else string.
///
/// Structural damage is never repaired silently: a record with the wrong
/// field count (e.g. a truncated final row) and a quoted field left open
/// at end of input both fail with InvalidArgument.
Result<Table> ReadCsvString(const std::string& text,
                            const CsvReadOptions& options = {});

/// Reads a CSV file from disk.
Result<Table> ReadCsvFile(const std::string& path,
                          const CsvReadOptions& options = {});

/// Serialises a table to CSV (RFC-4180-style quoting for cells containing
/// the delimiter, quotes, or newlines; nulls render as empty cells).
std::string WriteCsvString(const Table& table, char delimiter = ',');

/// Writes a table to a CSV file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    char delimiter = ',');

}  // namespace mesa

#endif  // MESA_TABLE_CSV_H_
