#ifndef MESA_TABLE_COLUMN_H_
#define MESA_TABLE_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "table/value.h"

namespace mesa {

/// A typed column with a validity (non-null) bitmap. Storage is columnar:
/// one contiguous run of the physical type plus a parallel validity run.
/// Null slots hold a default payload that must never be read.
///
/// A column is in one of two storage modes:
///
/// - **owned** (the default): payload and validity live in member vectors,
///   exactly as a `TableBuilder` / CSV load produces them.
/// - **borrowed** (zero-copy): payload and validity are `const` pointers
///   into memory kept alive by an opaque `owner` handle — in practice a
///   snapshot's mmap'd file (`src/snapshot/reader.h`). String columns
///   borrow a `uint32_t` code array and materialize only the dictionary
///   (one `std::string` per *distinct* value), so `StringAt` still returns
///   a `const std::string&` without per-row materialization.
///
/// Every read accessor behaves identically in both modes. Mutating a
/// borrowed column (Append / Set / SetNull) first detaches it — the
/// borrowed runs are copied into owned vectors — so snapshot-backed tables
/// stay safe under the missing-data machinery's in-place edits.
class Column {
 public:
  /// Creates an empty column of the given type. kNull-typed columns are not
  /// allowed; pick a concrete type.
  explicit Column(DataType type);

  Column(const Column& other);
  Column& operator=(const Column& other);
  Column(Column&& other) noexcept;
  Column& operator=(Column&& other) noexcept;

  /// Convenience factories from dense data (all valid).
  static Column FromDoubles(std::vector<double> values);
  static Column FromInts(std::vector<int64_t> values);
  static Column FromStrings(std::vector<std::string> values);
  static Column FromBools(std::vector<uint8_t> values);

  /// Zero-copy factories: the column reads through `payload` / `valid`
  /// (length `n` each) without copying; `owner` keeps the backing memory
  /// alive for the column's lifetime (and the lifetime of its copies).
  /// `null_count` must equal the number of zero bytes in `valid`.
  static Column BorrowDoubles(const double* payload, const uint8_t* valid,
                              size_t n, size_t null_count,
                              std::shared_ptr<const void> owner);
  static Column BorrowInts(const int64_t* payload, const uint8_t* valid,
                           size_t n, size_t null_count,
                           std::shared_ptr<const void> owner);
  static Column BorrowBools(const uint8_t* payload, const uint8_t* valid,
                            size_t n, size_t null_count,
                            std::shared_ptr<const void> owner);
  /// Dictionary-encoded zero-copy string column: row i reads
  /// `dict[codes[i]]`. Every code must be < dict.size() (the snapshot
  /// reader validates this before borrowing). Null rows must code the
  /// empty string so content fingerprints match an owned equivalent.
  static Column BorrowStringDict(std::vector<std::string> dict,
                                 const uint32_t* codes, const uint8_t* valid,
                                 size_t n, size_t null_count,
                                 std::shared_ptr<const void> owner);

  DataType type() const { return type_; }
  size_t size() const { return size_; }

  /// True when the column reads through borrowed (snapshot-backed) memory.
  bool is_borrowed() const { return owner_ != nullptr; }

  bool IsNull(size_t row) const { return valid_ptr_[row] == 0; }
  bool IsValid(size_t row) const { return valid_ptr_[row] != 0; }

  /// Number of null entries.
  size_t null_count() const { return null_count_; }

  /// Fraction of null entries (0 for an empty column).
  double null_fraction() const {
    return size() == 0 ? 0.0 : static_cast<double>(null_count_) / size();
  }

  /// Appends a (typed) value. Appending a Value of mismatched type fails;
  /// ints are accepted into double columns.
  Status Append(const Value& value);

  /// Appends a null entry.
  void AppendNull();

  /// Typed appends (no per-call type dispatch).
  void AppendDouble(double v);
  void AppendInt(int64_t v);
  void AppendString(std::string v);
  void AppendBool(bool v);

  /// Reads a cell as a dynamically typed Value (Null if invalid).
  Value GetValue(size_t row) const;

  /// Typed readers. Caller must ensure the row is valid and the type
  /// matches (checked in debug builds).
  double DoubleAt(size_t row) const { return double_ptr_[row]; }
  int64_t IntAt(size_t row) const { return int_ptr_[row]; }
  const std::string& StringAt(size_t row) const {
    return codes_ptr_ != nullptr ? dict_[codes_ptr_[row]] : strings_[row];
  }
  bool BoolAt(size_t row) const { return bool_ptr_[row] != 0; }

  /// Numeric payload of a valid cell as double (bools -> 0/1). Fails on
  /// string columns.
  double NumericAt(size_t row) const;

  /// Sets an existing slot (used by imputation). Type rules as Append.
  Status Set(size_t row, const Value& value);

  /// Marks an existing slot null (used by missing-data injection).
  void SetNull(size_t row);

  /// Appends every row of `src` (same type required), nulls included.
  /// Payload and validity runs are concatenated verbatim — a bulk vector
  /// insert when `src` is owned — so chaining AppendFrom over fragments
  /// built by per-row appends is byte-identical to issuing those appends
  /// sequentially on one column. This is the concatenation primitive the
  /// order-stable parallel gathers (join assembly, Take) are built on.
  void AppendFrom(const Column& src);

  /// Gathers the given rows into a new (owned) column. Large gathers run
  /// morsel-parallel over fixed row chunks, concatenated in chunk order —
  /// byte-identical to the serial gather at any thread count.
  Column Take(const std::vector<size_t>& rows) const;

  /// Stable 64-bit hash of the column's content: type, length, validity
  /// bitmap, and payload. Columns with equal fingerprints are treated as
  /// interchangeable by content-addressed caches (discretizer memo). Dead
  /// payload bytes under null slots are hashed too, so a Set-then-SetNull
  /// column may fingerprint differently from a freshly built equal one —
  /// that only costs a cache miss, never a false hit. (Snapshot writers
  /// canonicalize dead payloads to the default value, so a snapshot
  /// round trip of an unmutated column preserves the fingerprint.)
  uint64_t ContentFingerprint() const;

  /// Direct storage access for tight loops and serializers. Valid in both
  /// storage modes; pointers are invalidated by any mutation.
  const double* double_data() const { return double_ptr_; }
  const int64_t* int_data() const { return int_ptr_; }
  const uint8_t* bool_data() const { return bool_ptr_; }
  const uint8_t* validity_data() const { return valid_ptr_; }

 private:
  /// Points the read-through pointers at the owned vectors (owned mode
  /// only; borrowed pointers are set by the Borrow factories).
  void SyncPointers();

  /// Copies borrowed runs into owned vectors and drops the owner handle.
  /// No-op in owned mode. Called by every mutator.
  void EnsureOwned();

  DataType type_;
  size_t size_ = 0;
  size_t null_count_ = 0;

  /// Read-through pointers: either into the owned vectors below or into
  /// borrowed memory held alive by owner_.
  const uint8_t* valid_ptr_ = nullptr;
  const double* double_ptr_ = nullptr;
  const int64_t* int_ptr_ = nullptr;
  const uint8_t* bool_ptr_ = nullptr;
  const uint32_t* codes_ptr_ = nullptr;  ///< borrowed string mode only.

  /// Borrowed-string dictionary: one string per distinct value; rows read
  /// dict_[codes_ptr_[row]].
  std::vector<std::string> dict_;

  /// Keeps borrowed memory alive (e.g. a snapshot mapping); null in owned
  /// mode.
  std::shared_ptr<const void> owner_;

  /// Owned storage; exactly one payload vector is populated, according to
  /// type_, and only in owned mode.
  std::vector<uint8_t> valid_;
  std::vector<double> doubles_;
  std::vector<int64_t> ints_;
  std::vector<std::string> strings_;
  std::vector<uint8_t> bools_;
};

}  // namespace mesa

#endif  // MESA_TABLE_COLUMN_H_
