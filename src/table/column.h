#ifndef MESA_TABLE_COLUMN_H_
#define MESA_TABLE_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "table/value.h"

namespace mesa {

/// A typed column with a validity (non-null) bitmap. Storage is columnar:
/// one contiguous vector of the physical type plus a parallel validity
/// vector. Null slots hold a default payload that must never be read.
class Column {
 public:
  /// Creates an empty column of the given type. kNull-typed columns are not
  /// allowed; pick a concrete type.
  explicit Column(DataType type);

  /// Convenience factories from dense data (all valid).
  static Column FromDoubles(std::vector<double> values);
  static Column FromInts(std::vector<int64_t> values);
  static Column FromStrings(std::vector<std::string> values);
  static Column FromBools(std::vector<uint8_t> values);

  DataType type() const { return type_; }
  size_t size() const { return valid_.size(); }

  bool IsNull(size_t row) const { return valid_[row] == 0; }
  bool IsValid(size_t row) const { return valid_[row] != 0; }

  /// Number of null entries.
  size_t null_count() const { return null_count_; }

  /// Fraction of null entries (0 for an empty column).
  double null_fraction() const {
    return size() == 0 ? 0.0 : static_cast<double>(null_count_) / size();
  }

  /// Appends a (typed) value. Appending a Value of mismatched type fails;
  /// ints are accepted into double columns.
  Status Append(const Value& value);

  /// Appends a null entry.
  void AppendNull();

  /// Typed appends (no per-call type dispatch).
  void AppendDouble(double v);
  void AppendInt(int64_t v);
  void AppendString(std::string v);
  void AppendBool(bool v);

  /// Reads a cell as a dynamically typed Value (Null if invalid).
  Value GetValue(size_t row) const;

  /// Typed readers. Caller must ensure the row is valid and the type
  /// matches (checked in debug builds).
  double DoubleAt(size_t row) const { return doubles_[row]; }
  int64_t IntAt(size_t row) const { return ints_[row]; }
  const std::string& StringAt(size_t row) const { return strings_[row]; }
  bool BoolAt(size_t row) const { return bools_[row] != 0; }

  /// Numeric payload of a valid cell as double (bools -> 0/1). Fails on
  /// string columns.
  double NumericAt(size_t row) const;

  /// Sets an existing slot (used by imputation). Type rules as Append.
  Status Set(size_t row, const Value& value);

  /// Marks an existing slot null (used by missing-data injection).
  void SetNull(size_t row);

  /// Gathers the given rows into a new column.
  Column Take(const std::vector<size_t>& rows) const;

  /// Stable 64-bit hash of the column's content: type, length, validity
  /// bitmap, and payload. Columns with equal fingerprints are treated as
  /// interchangeable by content-addressed caches (discretizer memo). Dead
  /// payload bytes under null slots are hashed too, so a Set-then-SetNull
  /// column may fingerprint differently from a freshly built equal one —
  /// that only costs a cache miss, never a false hit.
  uint64_t ContentFingerprint() const;

  /// Direct storage access for tight loops.
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<std::string>& strings() const { return strings_; }
  const std::vector<uint8_t>& validity() const { return valid_; }

 private:
  DataType type_;
  std::vector<uint8_t> valid_;
  size_t null_count_ = 0;

  // Exactly one of these is populated, according to type_.
  std::vector<double> doubles_;
  std::vector<int64_t> ints_;
  std::vector<std::string> strings_;
  std::vector<uint8_t> bools_;
};

}  // namespace mesa

#endif  // MESA_TABLE_COLUMN_H_
