#ifndef MESA_TABLE_TABLE_OPS_H_
#define MESA_TABLE_TABLE_OPS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "table/table.h"

namespace mesa {

/// One sort key: a column and a direction.
struct SortKey {
  std::string column;
  bool ascending = true;
};

/// Returns a copy of `table` with rows stably sorted by the given keys
/// (nulls sort first in ascending order, last in descending).
Result<Table> SortBy(const Table& table, const std::vector<SortKey>& keys);

/// Returns a copy with duplicate rows (over the named columns; all columns
/// when empty) removed, keeping the first occurrence in row order.
Result<Table> Distinct(const Table& table,
                       const std::vector<std::string>& columns = {});

/// Vertically concatenates tables with identical schemas.
Result<Table> Concat(const std::vector<const Table*>& tables);

/// Per-column null counts and distinct counts — the profile the pruning
/// stages and Table 1 report from.
struct ColumnProfile {
  std::string name;
  DataType type = DataType::kNull;
  size_t nulls = 0;
  size_t distinct = 0;
};
std::vector<ColumnProfile> ProfileColumns(const Table& table);

}  // namespace mesa

#endif  // MESA_TABLE_TABLE_OPS_H_
