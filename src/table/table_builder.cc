#include "table/table_builder.h"

#include "common/logging.h"

namespace mesa {

TableBuilder::TableBuilder(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  for (const auto& f : schema_.fields()) {
    columns_.emplace_back(f.type);
  }
}

Status TableBuilder::AppendRow(const std::vector<Value>& row) {
  MESA_CHECK(!finished_);
  if (row.size() != schema_.num_fields()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  // Validate the full row before mutating any column so a failed append
  // leaves the builder consistent.
  for (size_t i = 0; i < row.size(); ++i) {
    const Value& v = row[i];
    if (v.is_null()) continue;
    DataType want = schema_.field(i).type;
    bool ok = false;
    switch (want) {
      case DataType::kDouble:
        ok = v.is_numeric();
        break;
      case DataType::kInt64:
        ok = v.is_int();
        break;
      case DataType::kString:
        ok = v.is_string();
        break;
      case DataType::kBool:
        ok = v.is_bool();
        break;
      case DataType::kNull:
        ok = false;
        break;
    }
    if (!ok) {
      return Status::InvalidArgument("type mismatch at field " +
                                     schema_.field(i).name);
    }
  }
  for (size_t i = 0; i < row.size(); ++i) {
    Status st = columns_[i].Append(row[i]);
    MESA_CHECK(st.ok());  // validated above
  }
  ++num_rows_;
  return Status::OK();
}

Result<Table> TableBuilder::Finish() {
  MESA_CHECK(!finished_);
  finished_ = true;
  return Table::Make(std::move(schema_), std::move(columns_));
}

}  // namespace mesa
