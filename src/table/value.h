#ifndef MESA_TABLE_VALUE_H_
#define MESA_TABLE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace mesa {

/// Physical column types supported by the engine.
enum class DataType {
  kNull = 0,
  kBool,
  kInt64,
  kDouble,
  kString,
};

/// Returns a stable lower-case name ("int64", "double", ...).
const char* DataTypeName(DataType type);

/// True for kInt64 / kDouble.
bool IsNumeric(DataType type);

/// A dynamically typed cell value. Null is represented by the monostate
/// alternative. Values are ordered first by type, then by payload, so they
/// can key ordered containers; numeric cross-type comparison (int vs double)
/// compares by numeric value.
class Value {
 public:
  /// Constructs a null value.
  Value() : repr_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Repr(v)); }
  static Value Int(int64_t v) { return Value(Repr(v)); }
  static Value Double(double v) { return Value(Repr(v)); }
  static Value String(std::string v) { return Value(Repr(std::move(v))); }

  bool is_null() const { return std::holds_alternative<std::monostate>(repr_); }
  bool is_bool() const { return std::holds_alternative<bool>(repr_); }
  bool is_int() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_double() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }
  bool is_numeric() const { return is_int() || is_double(); }

  DataType type() const;

  bool bool_value() const { return std::get<bool>(repr_); }
  int64_t int_value() const { return std::get<int64_t>(repr_); }
  double double_value() const { return std::get<double>(repr_); }
  const std::string& string_value() const { return std::get<std::string>(repr_); }

  /// Numeric payload as double; bools map to 0/1. Requires !is_null() and
  /// !is_string().
  double AsDouble() const;

  /// Renders the value ("NULL", "3.14", "true", "abc").
  std::string ToString() const;

  /// Hash suitable for unordered containers.
  size_t Hash() const;

  friend bool operator==(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator<(const Value& a, const Value& b);

 private:
  using Repr = std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Repr repr) : repr_(std::move(repr)) {}

  Repr repr_;
};

/// Hash functor so Value can key std::unordered_map.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace mesa

#endif  // MESA_TABLE_VALUE_H_
