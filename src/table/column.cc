#include "table/column.h"

#include "common/logging.h"
#include "common/retry.h"
#include "common/rng.h"

namespace mesa {

Column::Column(DataType type) : type_(type) {
  MESA_CHECK(type != DataType::kNull);
}

Column Column::FromDoubles(std::vector<double> values) {
  Column c(DataType::kDouble);
  c.doubles_ = std::move(values);
  c.valid_.assign(c.doubles_.size(), 1);
  return c;
}

Column Column::FromInts(std::vector<int64_t> values) {
  Column c(DataType::kInt64);
  c.ints_ = std::move(values);
  c.valid_.assign(c.ints_.size(), 1);
  return c;
}

Column Column::FromStrings(std::vector<std::string> values) {
  Column c(DataType::kString);
  c.strings_ = std::move(values);
  c.valid_.assign(c.strings_.size(), 1);
  return c;
}

Column Column::FromBools(std::vector<uint8_t> values) {
  Column c(DataType::kBool);
  c.bools_ = std::move(values);
  c.valid_.assign(c.bools_.size(), 1);
  return c;
}

Status Column::Append(const Value& value) {
  if (value.is_null()) {
    AppendNull();
    return Status::OK();
  }
  switch (type_) {
    case DataType::kDouble:
      if (!value.is_numeric()) {
        return Status::InvalidArgument("expected numeric value for double column");
      }
      AppendDouble(value.AsDouble());
      return Status::OK();
    case DataType::kInt64:
      if (!value.is_int()) {
        return Status::InvalidArgument("expected int value for int64 column");
      }
      AppendInt(value.int_value());
      return Status::OK();
    case DataType::kString:
      if (!value.is_string()) {
        return Status::InvalidArgument("expected string value for string column");
      }
      AppendString(value.string_value());
      return Status::OK();
    case DataType::kBool:
      if (!value.is_bool()) {
        return Status::InvalidArgument("expected bool value for bool column");
      }
      AppendBool(value.bool_value());
      return Status::OK();
    case DataType::kNull:
      break;
  }
  return Status::Internal("corrupt column type");
}

void Column::AppendNull() {
  valid_.push_back(0);
  ++null_count_;
  switch (type_) {
    case DataType::kDouble:
      doubles_.push_back(0.0);
      break;
    case DataType::kInt64:
      ints_.push_back(0);
      break;
    case DataType::kString:
      strings_.emplace_back();
      break;
    case DataType::kBool:
      bools_.push_back(0);
      break;
    case DataType::kNull:
      break;
  }
}

void Column::AppendDouble(double v) {
  MESA_DCHECK(type_ == DataType::kDouble);
  doubles_.push_back(v);
  valid_.push_back(1);
}

void Column::AppendInt(int64_t v) {
  MESA_DCHECK(type_ == DataType::kInt64);
  ints_.push_back(v);
  valid_.push_back(1);
}

void Column::AppendString(std::string v) {
  MESA_DCHECK(type_ == DataType::kString);
  strings_.push_back(std::move(v));
  valid_.push_back(1);
}

void Column::AppendBool(bool v) {
  MESA_DCHECK(type_ == DataType::kBool);
  bools_.push_back(v ? 1 : 0);
  valid_.push_back(1);
}

Value Column::GetValue(size_t row) const {
  MESA_DCHECK(row < size());
  if (IsNull(row)) return Value::Null();
  switch (type_) {
    case DataType::kDouble:
      return Value::Double(doubles_[row]);
    case DataType::kInt64:
      return Value::Int(ints_[row]);
    case DataType::kString:
      return Value::String(strings_[row]);
    case DataType::kBool:
      return Value::Bool(bools_[row] != 0);
    case DataType::kNull:
      break;
  }
  return Value::Null();
}

double Column::NumericAt(size_t row) const {
  MESA_DCHECK(IsValid(row));
  switch (type_) {
    case DataType::kDouble:
      return doubles_[row];
    case DataType::kInt64:
      return static_cast<double>(ints_[row]);
    case DataType::kBool:
      return bools_[row] ? 1.0 : 0.0;
    default:
      MESA_CHECK(false && "NumericAt on string column");
  }
  return 0.0;
}

Status Column::Set(size_t row, const Value& value) {
  if (row >= size()) return Status::OutOfRange("row out of range");
  if (value.is_null()) {
    SetNull(row);
    return Status::OK();
  }
  switch (type_) {
    case DataType::kDouble:
      if (!value.is_numeric()) {
        return Status::InvalidArgument("expected numeric value");
      }
      doubles_[row] = value.AsDouble();
      break;
    case DataType::kInt64:
      if (!value.is_int()) return Status::InvalidArgument("expected int value");
      ints_[row] = value.int_value();
      break;
    case DataType::kString:
      if (!value.is_string()) {
        return Status::InvalidArgument("expected string value");
      }
      strings_[row] = value.string_value();
      break;
    case DataType::kBool:
      if (!value.is_bool()) return Status::InvalidArgument("expected bool value");
      bools_[row] = value.bool_value() ? 1 : 0;
      break;
    case DataType::kNull:
      return Status::Internal("corrupt column type");
  }
  if (valid_[row] == 0) {
    valid_[row] = 1;
    --null_count_;
  }
  return Status::OK();
}

void Column::SetNull(size_t row) {
  MESA_DCHECK(row < size());
  if (valid_[row] != 0) {
    valid_[row] = 0;
    ++null_count_;
  }
}

uint64_t Column::ContentFingerprint() const {
  uint64_t h = MixSeed(static_cast<uint64_t>(type_), size());
  h = MixSeed(h, StableHash64Bytes(valid_.data(), valid_.size()));
  switch (type_) {
    case DataType::kDouble:
      h = MixSeed(h, StableHash64Bytes(doubles_.data(),
                                       doubles_.size() * sizeof(double)));
      break;
    case DataType::kInt64:
      h = MixSeed(h, StableHash64Bytes(ints_.data(),
                                       ints_.size() * sizeof(int64_t)));
      break;
    case DataType::kString:
      for (const std::string& s : strings_) {
        h = MixSeed(h, StableHash64Bytes(s.data(), s.size()));
      }
      break;
    case DataType::kBool:
      h = MixSeed(h, StableHash64Bytes(bools_.data(), bools_.size()));
      break;
    case DataType::kNull:
      break;
  }
  return h;
}

Column Column::Take(const std::vector<size_t>& rows) const {
  Column out(type_);
  out.valid_.reserve(rows.size());
  switch (type_) {
    case DataType::kDouble:
      out.doubles_.reserve(rows.size());
      break;
    case DataType::kInt64:
      out.ints_.reserve(rows.size());
      break;
    case DataType::kString:
      out.strings_.reserve(rows.size());
      break;
    case DataType::kBool:
      out.bools_.reserve(rows.size());
      break;
    case DataType::kNull:
      break;
  }
  for (size_t row : rows) {
    MESA_DCHECK(row < size());
    if (IsNull(row)) {
      out.AppendNull();
      continue;
    }
    switch (type_) {
      case DataType::kDouble:
        out.AppendDouble(doubles_[row]);
        break;
      case DataType::kInt64:
        out.AppendInt(ints_[row]);
        break;
      case DataType::kString:
        out.AppendString(strings_[row]);
        break;
      case DataType::kBool:
        out.AppendBool(bools_[row] != 0);
        break;
      case DataType::kNull:
        break;
    }
  }
  return out;
}

}  // namespace mesa
