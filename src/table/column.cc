#include "table/column.h"

#include <algorithm>

#include "common/cancel.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/retry.h"
#include "common/rng.h"

namespace mesa {

Column::Column(DataType type) : type_(type) {
  MESA_CHECK(type != DataType::kNull);
}

Column::Column(const Column& other)
    : type_(other.type_),
      size_(other.size_),
      null_count_(other.null_count_),
      valid_ptr_(other.valid_ptr_),
      double_ptr_(other.double_ptr_),
      int_ptr_(other.int_ptr_),
      bool_ptr_(other.bool_ptr_),
      codes_ptr_(other.codes_ptr_),
      dict_(other.dict_),
      owner_(other.owner_),
      valid_(other.valid_),
      doubles_(other.doubles_),
      ints_(other.ints_),
      strings_(other.strings_),
      bools_(other.bools_) {
  // A borrowed copy shares the owner and keeps the borrowed pointers; an
  // owned copy must re-point at its *own* vectors, not the source's.
  if (owner_ == nullptr) SyncPointers();
}

Column& Column::operator=(const Column& other) {
  if (this == &other) return *this;
  Column copy(other);
  *this = std::move(copy);
  return *this;
}

Column::Column(Column&& other) noexcept
    : type_(other.type_),
      size_(other.size_),
      null_count_(other.null_count_),
      valid_ptr_(other.valid_ptr_),
      double_ptr_(other.double_ptr_),
      int_ptr_(other.int_ptr_),
      bool_ptr_(other.bool_ptr_),
      codes_ptr_(other.codes_ptr_),
      dict_(std::move(other.dict_)),
      owner_(std::move(other.owner_)),
      valid_(std::move(other.valid_)),
      doubles_(std::move(other.doubles_)),
      ints_(std::move(other.ints_)),
      strings_(std::move(other.strings_)),
      bools_(std::move(other.bools_)) {
  // Vector moves transfer the heap buffer, so owned pointers stay valid;
  // re-sync anyway to keep the invariant obvious and the moved-from
  // column consistent (empty).
  if (owner_ == nullptr) SyncPointers();
  other.size_ = 0;
  other.null_count_ = 0;
  other.codes_ptr_ = nullptr;
  other.SyncPointers();
}

Column& Column::operator=(Column&& other) noexcept {
  if (this == &other) return *this;
  type_ = other.type_;
  size_ = other.size_;
  null_count_ = other.null_count_;
  valid_ptr_ = other.valid_ptr_;
  double_ptr_ = other.double_ptr_;
  int_ptr_ = other.int_ptr_;
  bool_ptr_ = other.bool_ptr_;
  codes_ptr_ = other.codes_ptr_;
  dict_ = std::move(other.dict_);
  owner_ = std::move(other.owner_);
  valid_ = std::move(other.valid_);
  doubles_ = std::move(other.doubles_);
  ints_ = std::move(other.ints_);
  strings_ = std::move(other.strings_);
  bools_ = std::move(other.bools_);
  if (owner_ == nullptr) SyncPointers();
  other.size_ = 0;
  other.null_count_ = 0;
  other.codes_ptr_ = nullptr;
  other.SyncPointers();
  return *this;
}

void Column::SyncPointers() {
  valid_ptr_ = valid_.data();
  double_ptr_ = doubles_.data();
  int_ptr_ = ints_.data();
  bool_ptr_ = bools_.data();
}

void Column::EnsureOwned() {
  if (owner_ == nullptr) return;
  valid_.assign(valid_ptr_, valid_ptr_ + size_);
  switch (type_) {
    case DataType::kDouble:
      doubles_.assign(double_ptr_, double_ptr_ + size_);
      break;
    case DataType::kInt64:
      ints_.assign(int_ptr_, int_ptr_ + size_);
      break;
    case DataType::kString:
      strings_.reserve(size_);
      for (size_t row = 0; row < size_; ++row) {
        strings_.push_back(dict_[codes_ptr_[row]]);
      }
      dict_.clear();
      break;
    case DataType::kBool:
      bools_.assign(bool_ptr_, bool_ptr_ + size_);
      break;
    case DataType::kNull:
      break;
  }
  codes_ptr_ = nullptr;
  owner_.reset();
  SyncPointers();
}

Column Column::FromDoubles(std::vector<double> values) {
  Column c(DataType::kDouble);
  c.doubles_ = std::move(values);
  c.valid_.assign(c.doubles_.size(), 1);
  c.size_ = c.doubles_.size();
  c.SyncPointers();
  return c;
}

Column Column::FromInts(std::vector<int64_t> values) {
  Column c(DataType::kInt64);
  c.ints_ = std::move(values);
  c.valid_.assign(c.ints_.size(), 1);
  c.size_ = c.ints_.size();
  c.SyncPointers();
  return c;
}

Column Column::FromStrings(std::vector<std::string> values) {
  Column c(DataType::kString);
  c.strings_ = std::move(values);
  c.valid_.assign(c.strings_.size(), 1);
  c.size_ = c.strings_.size();
  c.SyncPointers();
  return c;
}

Column Column::FromBools(std::vector<uint8_t> values) {
  Column c(DataType::kBool);
  c.bools_ = std::move(values);
  c.valid_.assign(c.bools_.size(), 1);
  c.size_ = c.bools_.size();
  c.SyncPointers();
  return c;
}

Column Column::BorrowDoubles(const double* payload, const uint8_t* valid,
                             size_t n, size_t null_count,
                             std::shared_ptr<const void> owner) {
  MESA_CHECK(owner != nullptr);
  Column c(DataType::kDouble);
  c.size_ = n;
  c.null_count_ = null_count;
  c.valid_ptr_ = valid;
  c.double_ptr_ = payload;
  c.owner_ = std::move(owner);
  return c;
}

Column Column::BorrowInts(const int64_t* payload, const uint8_t* valid,
                          size_t n, size_t null_count,
                          std::shared_ptr<const void> owner) {
  MESA_CHECK(owner != nullptr);
  Column c(DataType::kInt64);
  c.size_ = n;
  c.null_count_ = null_count;
  c.valid_ptr_ = valid;
  c.int_ptr_ = payload;
  c.owner_ = std::move(owner);
  return c;
}

Column Column::BorrowBools(const uint8_t* payload, const uint8_t* valid,
                           size_t n, size_t null_count,
                           std::shared_ptr<const void> owner) {
  MESA_CHECK(owner != nullptr);
  Column c(DataType::kBool);
  c.size_ = n;
  c.null_count_ = null_count;
  c.valid_ptr_ = valid;
  c.bool_ptr_ = payload;
  c.owner_ = std::move(owner);
  return c;
}

Column Column::BorrowStringDict(std::vector<std::string> dict,
                                const uint32_t* codes, const uint8_t* valid,
                                size_t n, size_t null_count,
                                std::shared_ptr<const void> owner) {
  MESA_CHECK(owner != nullptr);
  Column c(DataType::kString);
  c.size_ = n;
  c.null_count_ = null_count;
  c.valid_ptr_ = valid;
  c.codes_ptr_ = codes;
  c.dict_ = std::move(dict);
  c.owner_ = std::move(owner);
  return c;
}

Status Column::Append(const Value& value) {
  if (value.is_null()) {
    AppendNull();
    return Status::OK();
  }
  switch (type_) {
    case DataType::kDouble:
      if (!value.is_numeric()) {
        return Status::InvalidArgument("expected numeric value for double column");
      }
      AppendDouble(value.AsDouble());
      return Status::OK();
    case DataType::kInt64:
      if (!value.is_int()) {
        return Status::InvalidArgument("expected int value for int64 column");
      }
      AppendInt(value.int_value());
      return Status::OK();
    case DataType::kString:
      if (!value.is_string()) {
        return Status::InvalidArgument("expected string value for string column");
      }
      AppendString(value.string_value());
      return Status::OK();
    case DataType::kBool:
      if (!value.is_bool()) {
        return Status::InvalidArgument("expected bool value for bool column");
      }
      AppendBool(value.bool_value());
      return Status::OK();
    case DataType::kNull:
      break;
  }
  return Status::Internal("corrupt column type");
}

void Column::AppendNull() {
  EnsureOwned();
  valid_.push_back(0);
  ++null_count_;
  switch (type_) {
    case DataType::kDouble:
      doubles_.push_back(0.0);
      break;
    case DataType::kInt64:
      ints_.push_back(0);
      break;
    case DataType::kString:
      strings_.emplace_back();
      break;
    case DataType::kBool:
      bools_.push_back(0);
      break;
    case DataType::kNull:
      break;
  }
  ++size_;
  SyncPointers();
}

void Column::AppendDouble(double v) {
  MESA_DCHECK(type_ == DataType::kDouble);
  EnsureOwned();
  doubles_.push_back(v);
  valid_.push_back(1);
  ++size_;
  SyncPointers();
}

void Column::AppendInt(int64_t v) {
  MESA_DCHECK(type_ == DataType::kInt64);
  EnsureOwned();
  ints_.push_back(v);
  valid_.push_back(1);
  ++size_;
  SyncPointers();
}

void Column::AppendString(std::string v) {
  MESA_DCHECK(type_ == DataType::kString);
  EnsureOwned();
  strings_.push_back(std::move(v));
  valid_.push_back(1);
  ++size_;
  SyncPointers();
}

void Column::AppendBool(bool v) {
  MESA_DCHECK(type_ == DataType::kBool);
  EnsureOwned();
  bools_.push_back(v ? 1 : 0);
  valid_.push_back(1);
  ++size_;
  SyncPointers();
}

Value Column::GetValue(size_t row) const {
  MESA_DCHECK(row < size());
  if (IsNull(row)) return Value::Null();
  switch (type_) {
    case DataType::kDouble:
      return Value::Double(double_ptr_[row]);
    case DataType::kInt64:
      return Value::Int(int_ptr_[row]);
    case DataType::kString:
      return Value::String(StringAt(row));
    case DataType::kBool:
      return Value::Bool(bool_ptr_[row] != 0);
    case DataType::kNull:
      break;
  }
  return Value::Null();
}

double Column::NumericAt(size_t row) const {
  MESA_DCHECK(IsValid(row));
  switch (type_) {
    case DataType::kDouble:
      return double_ptr_[row];
    case DataType::kInt64:
      return static_cast<double>(int_ptr_[row]);
    case DataType::kBool:
      return bool_ptr_[row] ? 1.0 : 0.0;
    default:
      MESA_CHECK(false && "NumericAt on string column");
  }
  return 0.0;
}

Status Column::Set(size_t row, const Value& value) {
  if (row >= size()) return Status::OutOfRange("row out of range");
  if (value.is_null()) {
    SetNull(row);
    return Status::OK();
  }
  EnsureOwned();
  switch (type_) {
    case DataType::kDouble:
      if (!value.is_numeric()) {
        return Status::InvalidArgument("expected numeric value");
      }
      doubles_[row] = value.AsDouble();
      break;
    case DataType::kInt64:
      if (!value.is_int()) return Status::InvalidArgument("expected int value");
      ints_[row] = value.int_value();
      break;
    case DataType::kString:
      if (!value.is_string()) {
        return Status::InvalidArgument("expected string value");
      }
      strings_[row] = value.string_value();
      break;
    case DataType::kBool:
      if (!value.is_bool()) return Status::InvalidArgument("expected bool value");
      bools_[row] = value.bool_value() ? 1 : 0;
      break;
    case DataType::kNull:
      return Status::Internal("corrupt column type");
  }
  if (valid_[row] == 0) {
    valid_[row] = 1;
    --null_count_;
  }
  return Status::OK();
}

void Column::SetNull(size_t row) {
  MESA_DCHECK(row < size());
  EnsureOwned();
  if (valid_[row] != 0) {
    valid_[row] = 0;
    ++null_count_;
  }
}

uint64_t Column::ContentFingerprint() const {
  uint64_t h = MixSeed(static_cast<uint64_t>(type_), size());
  h = MixSeed(h, StableHash64Bytes(valid_ptr_, size_));
  switch (type_) {
    case DataType::kDouble:
      h = MixSeed(h, StableHash64Bytes(double_ptr_, size_ * sizeof(double)));
      break;
    case DataType::kInt64:
      h = MixSeed(h, StableHash64Bytes(int_ptr_, size_ * sizeof(int64_t)));
      break;
    case DataType::kString:
      // Hash row strings in row order, dictionary-encoded or not, so the
      // fingerprint is a function of content alone, not storage mode.
      for (size_t row = 0; row < size_; ++row) {
        const std::string& s = StringAt(row);
        h = MixSeed(h, StableHash64Bytes(s.data(), s.size()));
      }
      break;
    case DataType::kBool:
      h = MixSeed(h, StableHash64Bytes(bool_ptr_, size_));
      break;
    case DataType::kNull:
      break;
  }
  return h;
}

void Column::AppendFrom(const Column& src) {
  MESA_CHECK(src.type_ == type_);
  MESA_DCHECK(&src != this);
  EnsureOwned();
  const size_t n = src.size_;
  valid_.insert(valid_.end(), src.valid_ptr_, src.valid_ptr_ + n);
  switch (type_) {
    case DataType::kDouble:
      doubles_.insert(doubles_.end(), src.double_ptr_, src.double_ptr_ + n);
      break;
    case DataType::kInt64:
      ints_.insert(ints_.end(), src.int_ptr_, src.int_ptr_ + n);
      break;
    case DataType::kString:
      if (src.codes_ptr_ == nullptr) {
        strings_.insert(strings_.end(), src.strings_.begin(),
                        src.strings_.end());
      } else {
        // Dictionary-encoded source: materialize per row. Null rows code
        // the empty string, matching AppendNull's dead payload.
        strings_.reserve(strings_.size() + n);
        for (size_t r = 0; r < n; ++r) strings_.push_back(src.StringAt(r));
      }
      break;
    case DataType::kBool:
      bools_.insert(bools_.end(), src.bool_ptr_, src.bool_ptr_ + n);
      break;
    case DataType::kNull:
      break;
  }
  null_count_ += src.null_count_;
  size_ += n;
  SyncPointers();
}

namespace {

// Fixed morsel for parallel Take: a constant (never a function of the
// thread count) so the fragment boundaries — and with them every
// concatenation — are a pure function of the row list.
constexpr size_t kTakeChunkRows = 4096;
constexpr size_t kTakeParallelThreshold = 4096;

}  // namespace

Column Column::Take(const std::vector<size_t>& rows) const {
  // Serial gather of a subrange of the row list.
  auto gather = [this](const std::vector<size_t>& all, size_t lo, size_t hi) {
    Column out(type_);
    out.valid_.reserve(hi - lo);
    switch (type_) {
      case DataType::kDouble:
        out.doubles_.reserve(hi - lo);
        break;
      case DataType::kInt64:
        out.ints_.reserve(hi - lo);
        break;
      case DataType::kString:
        out.strings_.reserve(hi - lo);
        break;
      case DataType::kBool:
        out.bools_.reserve(hi - lo);
        break;
      case DataType::kNull:
        break;
    }
    for (size_t i = lo; i < hi; ++i) {
      size_t row = all[i];
      MESA_DCHECK(row < size());
      if (IsNull(row)) {
        out.AppendNull();
        continue;
      }
      switch (type_) {
        case DataType::kDouble:
          out.AppendDouble(double_ptr_[row]);
          break;
        case DataType::kInt64:
          out.AppendInt(int_ptr_[row]);
          break;
        case DataType::kString:
          out.AppendString(StringAt(row));
          break;
        case DataType::kBool:
          out.AppendBool(bool_ptr_[row] != 0);
          break;
        case DataType::kNull:
          break;
      }
    }
    return out;
  };

  if (rows.size() < kTakeParallelThreshold || !DataPlaneParallel()) {
    return gather(rows, 0, rows.size());
  }
  // Morsel-parallel gather: fixed chunks, concatenated in chunk order.
  // AppendFrom copies each fragment's payload/validity runs verbatim, so
  // the result is byte-identical to the serial gather above.
  const size_t num_chunks = (rows.size() + kTakeChunkRows - 1) / kTakeChunkRows;
  std::vector<Column> fragments;
  fragments.reserve(num_chunks);
  for (size_t c = 0; c < num_chunks; ++c) fragments.emplace_back(type_);
  ParallelFor(0, num_chunks, [&](size_t c) {
    CancelCheckpoint();
    const size_t lo = c * kTakeChunkRows;
    const size_t hi = std::min(rows.size(), lo + kTakeChunkRows);
    fragments[c] = gather(rows, lo, hi);
  });
  Column out(type_);
  for (const Column& fragment : fragments) out.AppendFrom(fragment);
  return out;
}

}  // namespace mesa
