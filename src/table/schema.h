#ifndef MESA_TABLE_SCHEMA_H_
#define MESA_TABLE_SCHEMA_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "table/value.h"

namespace mesa {

/// A named, typed column descriptor.
struct Field {
  std::string name;
  DataType type = DataType::kNull;

  friend bool operator==(const Field& a, const Field& b) {
    return a.name == b.name && a.type == b.type;
  }
};

/// Ordered collection of fields with O(1) lookup by name. Field names are
/// unique within a schema.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  /// Appends a field; fails if the name already exists.
  Status AddField(Field field);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the named field, or nullopt.
  std::optional<size_t> IndexOf(const std::string& name) const;

  /// True if a field with this name exists.
  bool Contains(const std::string& name) const;

  /// Field lookup by name.
  Result<Field> FieldByName(const std::string& name) const;

  /// All field names, in schema order.
  std::vector<std::string> names() const;

  /// "name:type, name:type, ..." rendering.
  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.fields_ == b.fields_;
  }

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace mesa

#endif  // MESA_TABLE_SCHEMA_H_
