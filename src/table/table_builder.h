#ifndef MESA_TABLE_TABLE_BUILDER_H_
#define MESA_TABLE_TABLE_BUILDER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "table/table.h"

namespace mesa {

/// Row-oriented table construction: declare the schema up front, append rows
/// of Values, then Finish(). Appended rows must match the schema arity and
/// per-field types (nulls are always accepted).
class TableBuilder {
 public:
  explicit TableBuilder(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }

  /// Appends one row. `row.size()` must equal the schema arity.
  Status AppendRow(const std::vector<Value>& row);

  /// Consumes the builder and produces the table.
  Result<Table> Finish();

 private:
  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
  bool finished_ = false;
};

}  // namespace mesa

#endif  // MESA_TABLE_TABLE_BUILDER_H_
