#include "table/table_ops.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

namespace mesa {

namespace {

// Null-aware three-way comparison: nulls order before all values.
int CompareCells(const Column& col, size_t a, size_t b) {
  bool na = col.IsNull(a), nb = col.IsNull(b);
  if (na && nb) return 0;
  if (na) return -1;
  if (nb) return 1;
  Value va = col.GetValue(a), vb = col.GetValue(b);
  if (va < vb) return -1;
  if (vb < va) return 1;
  return 0;
}

// Hash of one row over the given columns (for Distinct).
struct RowKey {
  const Table* table;
  const std::vector<size_t>* cols;
  size_t row;
};

struct RowKeyHash {
  size_t operator()(const RowKey& k) const {
    size_t h = 0x9E3779B97F4A7C15ULL;
    for (size_t c : *k.cols) {
      const Column& col = k.table->column(c);
      size_t cell = col.IsNull(k.row) ? 0x517CC1B7ULL
                                      : col.GetValue(k.row).Hash();
      h ^= cell + 0x9E3779B9 + (h << 6) + (h >> 2);
    }
    return h;
  }
};

struct RowKeyEq {
  bool operator()(const RowKey& a, const RowKey& b) const {
    for (size_t c : *a.cols) {
      const Column& col = a.table->column(c);
      bool na = col.IsNull(a.row), nb = col.IsNull(b.row);
      if (na != nb) return false;
      if (!na && !(col.GetValue(a.row) == col.GetValue(b.row))) return false;
    }
    return true;
  }
};

}  // namespace

Result<Table> SortBy(const Table& table, const std::vector<SortKey>& keys) {
  std::vector<const Column*> cols;
  cols.reserve(keys.size());
  for (const auto& key : keys) {
    MESA_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(key.column));
    cols.push_back(col);
  }
  std::vector<size_t> order(table.num_rows());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (size_t k = 0; k < keys.size(); ++k) {
      int c = CompareCells(*cols[k], a, b);
      if (c != 0) return keys[k].ascending ? c < 0 : c > 0;
    }
    return false;
  });
  return table.TakeRows(order);
}

Result<Table> Distinct(const Table& table,
                       const std::vector<std::string>& columns) {
  std::vector<size_t> col_indices;
  if (columns.empty()) {
    for (size_t c = 0; c < table.num_columns(); ++c) col_indices.push_back(c);
  } else {
    for (const auto& name : columns) {
      auto idx = table.schema().IndexOf(name);
      if (!idx.has_value()) return Status::NotFound("no such column: " + name);
      col_indices.push_back(*idx);
    }
  }
  std::unordered_set<RowKey, RowKeyHash, RowKeyEq> seen;
  std::vector<size_t> keep;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (seen.insert({&table, &col_indices, r}).second) keep.push_back(r);
  }
  return table.TakeRows(keep);
}

Result<Table> Concat(const std::vector<const Table*>& tables) {
  if (tables.empty()) return Status::InvalidArgument("nothing to concat");
  const Schema& schema = tables[0]->schema();
  for (const Table* t : tables) {
    if (!(t->schema() == schema)) {
      return Status::InvalidArgument("schema mismatch in Concat");
    }
  }
  std::vector<Column> columns;
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    Column col(schema.field(c).type);
    for (const Table* t : tables) {
      const Column& src = t->column(c);
      for (size_t r = 0; r < src.size(); ++r) {
        if (src.IsNull(r)) {
          col.AppendNull();
        } else {
          MESA_RETURN_IF_ERROR(col.Append(src.GetValue(r)));
        }
      }
    }
    columns.push_back(std::move(col));
  }
  return Table::Make(schema, std::move(columns));
}

std::vector<ColumnProfile> ProfileColumns(const Table& table) {
  std::vector<ColumnProfile> out;
  out.reserve(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& col = table.column(c);
    ColumnProfile p;
    p.name = table.schema().field(c).name;
    p.type = col.type();
    p.nulls = col.null_count();
    std::unordered_set<Value, ValueHash> distinct;
    for (size_t r = 0; r < col.size(); ++r) {
      if (col.IsValid(r)) distinct.insert(col.GetValue(r));
    }
    p.distinct = distinct.size();
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace mesa
