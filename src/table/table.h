#ifndef MESA_TABLE_TABLE_H_
#define MESA_TABLE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "table/column.h"
#include "table/schema.h"

namespace mesa {

/// An immutable-ish in-memory columnar table: a Schema plus one Column per
/// field, all of equal length. The query layer and all algorithms operate on
/// Tables. Mutation is limited to whole-column replacement / addition and
/// cell updates used by the missing-data machinery.
class Table {
 public:
  Table() = default;

  /// Builds a table from parallel fields/columns. All columns must have the
  /// same length.
  static Result<Table> Make(Schema schema, std::vector<Column> columns);

  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }
  size_t num_columns() const { return columns_.size(); }
  const Schema& schema() const { return schema_; }

  const Column& column(size_t i) const { return columns_[i]; }
  Column& mutable_column(size_t i) { return columns_[i]; }

  /// Column lookup by field name.
  Result<const Column*> ColumnByName(const std::string& name) const;
  Result<Column*> MutableColumnByName(const std::string& name);

  /// Cell access by (row, column name); mostly for tests and display.
  Result<Value> GetCell(size_t row, const std::string& column) const;

  /// Appends a column; length must equal num_rows() (or the table must be
  /// empty of columns).
  Status AddColumn(Field field, Column column);

  /// Removes the named column.
  Status DropColumn(const std::string& name);

  /// New table with only the named columns, in the given order.
  Result<Table> Select(const std::vector<std::string>& names) const;

  /// New table with the given rows (indices may repeat / reorder).
  Table TakeRows(const std::vector<size_t>& rows) const;

  /// New table keeping rows where mask[i] != 0. mask.size() == num_rows().
  Table FilterRows(const std::vector<uint8_t>& mask) const;

  /// Pretty-prints up to `max_rows` rows (for examples / debugging).
  std::string ToString(size_t max_rows = 10) const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
};

}  // namespace mesa

#endif  // MESA_TABLE_TABLE_H_
