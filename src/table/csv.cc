#include "table/csv.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace mesa {

namespace {

// Splits one logical CSV record honouring quotes. `pos` points at the start
// of the record within `text` and is advanced past the trailing newline.
// A quote still open at end of input sets `*unterminated_quote`: the input
// was cut inside a quoted field (or a quote was never balanced) and the
// "record" consumed everything to EOF — the caller must reject it rather
// than store the tail of the file as one cell.
std::vector<std::string> ParseRecord(const std::string& text, size_t* pos,
                                     char delim, bool* unterminated_quote) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  size_t i = *pos;
  for (; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delim) {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\n') {
      ++i;
      break;
    } else if (c == '\r') {
      // swallow; handled with the following \n if present
    } else {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  *pos = i;
  *unterminated_quote = in_quotes;
  return fields;
}

bool IsNullToken(const std::string& cell,
                 const std::vector<std::string>& tokens) {
  for (const auto& t : tokens) {
    if (EqualsIgnoreCase(cell, t)) return true;
  }
  return false;
}

bool ParseBoolToken(const std::string& cell, bool* out) {
  if (EqualsIgnoreCase(cell, "true")) {
    *out = true;
    return true;
  }
  if (EqualsIgnoreCase(cell, "false")) {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace

Result<Table> ReadCsvString(const std::string& text,
                            const CsvReadOptions& options) {
  if (!options.has_header) {
    return Status::NotImplemented("CSV without header is not supported");
  }
  size_t pos = 0;
  if (text.empty()) return Status::InvalidArgument("empty CSV input");
  bool unterminated = false;
  std::vector<std::string> header =
      ParseRecord(text, &pos, options.delimiter, &unterminated);
  if (unterminated) {
    return Status::InvalidArgument("unterminated quoted field in CSV header");
  }

  std::vector<std::vector<std::string>> cells;  // row-major
  while (pos < text.size()) {
    size_t before = pos;
    std::vector<std::string> rec =
        ParseRecord(text, &pos, options.delimiter, &unterminated);
    if (unterminated) {
      return Status::InvalidArgument(
          "unterminated quoted field in CSV record at byte " +
          std::to_string(before));
    }
    if (rec.size() == 1 && rec[0].empty()) continue;  // blank line
    if (rec.size() != header.size()) {
      return Status::InvalidArgument(
          "CSV record at byte " + std::to_string(before) + " has " +
          std::to_string(rec.size()) + " fields, expected " +
          std::to_string(header.size()));
    }
    cells.push_back(std::move(rec));
  }

  const size_t ncols = header.size();
  const size_t nrows = cells.size();

  // Declared columns must exist and use a storable type: a typo'd name
  // would silently disable the strict check the caller asked for.
  for (const auto& [name, type] : options.declared_types) {
    bool found = false;
    for (const auto& h : header) found = found || h == name;
    if (!found) {
      return Status::InvalidArgument("declared type for unknown CSV column '" +
                                     name + "'");
    }
    if (type != DataType::kInt64 && type != DataType::kDouble &&
        type != DataType::kBool && type != DataType::kString) {
      return Status::InvalidArgument("column '" + name +
                                     "' declared with unsupported type " +
                                     DataTypeName(type));
    }
  }

  // Per column: declared type (strict) or inference (lenient).
  Schema schema;
  std::vector<DataType> types(ncols);
  for (size_t c = 0; c < ncols; ++c) {
    auto declared = options.declared_types.find(header[c]);
    if (declared != options.declared_types.end()) {
      const DataType t = declared->second;
      for (size_t r = 0; r < nrows; ++r) {
        const std::string& cell = cells[r][c];
        if (IsNullToken(cell, options.null_tokens)) continue;
        int64_t iv;
        double dv;
        bool bv;
        // ParseInt64 rejects out-of-range literals, so an int64 overflow
        // is an error here rather than a silent wrap or widen.
        const bool cell_ok =
            t == DataType::kString ||
            (t == DataType::kInt64 && ParseInt64(cell, &iv)) ||
            (t == DataType::kDouble && ParseDouble(cell, &dv)) ||
            (t == DataType::kBool && ParseBoolToken(cell, &bv));
        if (!cell_ok) {
          return Status::InvalidArgument(
              "cell '" + cell + "' in column '" + header[c] + "' (data row " +
              std::to_string(r + 1) + ") does not parse as declared type " +
              DataTypeName(t));
        }
      }
      types[c] = t;
      MESA_RETURN_IF_ERROR(schema.AddField({header[c], t}));
      continue;
    }
    bool all_int = true, all_num = true, all_bool = true, any_value = false;
    for (size_t r = 0; r < nrows; ++r) {
      const std::string& cell = cells[r][c];
      if (IsNullToken(cell, options.null_tokens)) continue;
      any_value = true;
      int64_t iv;
      double dv;
      bool bv;
      if (!ParseInt64(cell, &iv)) all_int = false;
      if (!ParseDouble(cell, &dv)) all_num = false;
      if (!ParseBoolToken(cell, &bv)) all_bool = false;
      if (!all_int && !all_num && !all_bool) break;
    }
    DataType t;
    if (!any_value) {
      t = DataType::kString;  // all-null column: degrade to string
    } else if (all_int) {
      t = DataType::kInt64;
    } else if (all_num) {
      t = DataType::kDouble;
    } else if (all_bool) {
      t = DataType::kBool;
    } else {
      t = DataType::kString;
    }
    types[c] = t;
    MESA_RETURN_IF_ERROR(schema.AddField({header[c], t}));
  }

  std::vector<Column> columns;
  columns.reserve(ncols);
  for (size_t c = 0; c < ncols; ++c) columns.emplace_back(types[c]);
  for (size_t r = 0; r < nrows; ++r) {
    for (size_t c = 0; c < ncols; ++c) {
      const std::string& cell = cells[r][c];
      if (IsNullToken(cell, options.null_tokens)) {
        columns[c].AppendNull();
        continue;
      }
      switch (types[c]) {
        case DataType::kInt64: {
          int64_t v = 0;
          ParseInt64(cell, &v);
          columns[c].AppendInt(v);
          break;
        }
        case DataType::kDouble: {
          double v = 0;
          ParseDouble(cell, &v);
          columns[c].AppendDouble(v);
          break;
        }
        case DataType::kBool: {
          bool v = false;
          ParseBoolToken(cell, &v);
          columns[c].AppendBool(v);
          break;
        }
        case DataType::kString:
          columns[c].AppendString(cell);
          break;
        case DataType::kNull:
          break;
      }
    }
  }
  return Table::Make(std::move(schema), std::move(columns));
}

Result<Table> ReadCsvFile(const std::string& path,
                          const CsvReadOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ReadCsvString(buf.str(), options);
}

namespace {

std::string EscapeCell(const std::string& cell, char delim) {
  bool needs_quotes = cell.find(delim) != std::string::npos ||
                      cell.find('"') != std::string::npos ||
                      cell.find('\n') != std::string::npos ||
                      cell.find('\r') != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string WriteCsvString(const Table& table, char delimiter) {
  std::string out;
  const auto& schema = table.schema();
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    if (c > 0) out += delimiter;
    out += EscapeCell(schema.field(c).name, delimiter);
  }
  out += '\n';
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out += delimiter;
      const Column& col = table.column(c);
      if (col.IsNull(r)) continue;  // empty cell
      out += EscapeCell(col.GetValue(r).ToString(), delimiter);
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    char delimiter) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << WriteCsvString(table, delimiter);
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace mesa
