#include "table/table.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "common/parallel.h"

namespace mesa {

Result<Table> Table::Make(Schema schema, std::vector<Column> columns) {
  if (schema.num_fields() != columns.size()) {
    return Status::InvalidArgument("schema/column count mismatch");
  }
  size_t rows = columns.empty() ? 0 : columns[0].size();
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].size() != rows) {
      return Status::InvalidArgument("column length mismatch at " +
                                     schema.field(i).name);
    }
    if (columns[i].type() != schema.field(i).type) {
      return Status::InvalidArgument("column type mismatch at " +
                                     schema.field(i).name);
    }
  }
  Table t;
  t.schema_ = std::move(schema);
  t.columns_ = std::move(columns);
  return t;
}

Result<const Column*> Table::ColumnByName(const std::string& name) const {
  auto idx = schema_.IndexOf(name);
  if (!idx.has_value()) return Status::NotFound("no such column: " + name);
  return &columns_[*idx];
}

Result<Column*> Table::MutableColumnByName(const std::string& name) {
  auto idx = schema_.IndexOf(name);
  if (!idx.has_value()) return Status::NotFound("no such column: " + name);
  return &columns_[*idx];
}

Result<Value> Table::GetCell(size_t row, const std::string& column) const {
  MESA_ASSIGN_OR_RETURN(const Column* col, ColumnByName(column));
  if (row >= col->size()) return Status::OutOfRange("row out of range");
  return col->GetValue(row);
}

Status Table::AddColumn(Field field, Column column) {
  if (!columns_.empty() && column.size() != num_rows()) {
    return Status::InvalidArgument("column length mismatch for " + field.name);
  }
  if (column.type() != field.type) {
    return Status::InvalidArgument("column type mismatch for " + field.name);
  }
  MESA_RETURN_IF_ERROR(schema_.AddField(std::move(field)));
  columns_.push_back(std::move(column));
  return Status::OK();
}

Status Table::DropColumn(const std::string& name) {
  auto idx = schema_.IndexOf(name);
  if (!idx.has_value()) return Status::NotFound("no such column: " + name);
  std::vector<Field> fields = schema_.fields();
  fields.erase(fields.begin() + static_cast<ptrdiff_t>(*idx));
  columns_.erase(columns_.begin() + static_cast<ptrdiff_t>(*idx));
  schema_ = Schema(std::move(fields));
  return Status::OK();
}

Result<Table> Table::Select(const std::vector<std::string>& names) const {
  Schema schema;
  std::vector<Column> cols;
  for (const auto& name : names) {
    auto idx = schema_.IndexOf(name);
    if (!idx.has_value()) return Status::NotFound("no such column: " + name);
    MESA_RETURN_IF_ERROR(schema.AddField(schema_.field(*idx)));
    cols.push_back(columns_[*idx]);
  }
  return Table::Make(std::move(schema), std::move(cols));
}

Table Table::TakeRows(const std::vector<size_t>& rows) const {
  Table out;
  out.schema_ = schema_;
  out.columns_.reserve(columns_.size());
  // Column gathers are independent, so large takes run one column per
  // task; each column's output is identical to its serial Take.
  if (columns_.size() > 1 && rows.size() >= 4096 && DataPlaneParallel()) {
    for (const auto& col : columns_) out.columns_.emplace_back(col.type());
    ParallelFor(0, columns_.size(),
                [&](size_t c) { out.columns_[c] = columns_[c].Take(rows); });
  } else {
    for (const auto& col : columns_) out.columns_.push_back(col.Take(rows));
  }
  return out;
}

Table Table::FilterRows(const std::vector<uint8_t>& mask) const {
  MESA_CHECK(mask.size() == num_rows());
  std::vector<size_t> rows;
  rows.reserve(mask.size());
  for (size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) rows.push_back(i);
  }
  return TakeRows(rows);
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream out;
  out << schema_.ToString() << "\n";
  size_t shown = std::min(max_rows, num_rows());
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < num_columns(); ++c) {
      if (c > 0) out << " | ";
      out << columns_[c].GetValue(r).ToString();
    }
    out << "\n";
  }
  if (shown < num_rows()) {
    out << "... (" << num_rows() - shown << " more rows)\n";
  }
  return out.str();
}

}  // namespace mesa
