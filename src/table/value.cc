#include "table/value.h"

#include <cmath>
#include <cstdio>
#include <functional>

#include "common/logging.h"

namespace mesa {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "null";
    case DataType::kBool:
      return "bool";
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "?";
}

bool IsNumeric(DataType type) {
  return type == DataType::kInt64 || type == DataType::kDouble;
}

DataType Value::type() const {
  switch (repr_.index()) {
    case 0:
      return DataType::kNull;
    case 1:
      return DataType::kBool;
    case 2:
      return DataType::kInt64;
    case 3:
      return DataType::kDouble;
    case 4:
      return DataType::kString;
  }
  return DataType::kNull;
}

double Value::AsDouble() const {
  if (is_bool()) return bool_value() ? 1.0 : 0.0;
  if (is_int()) return static_cast<double>(int_value());
  if (is_double()) return double_value();
  MESA_CHECK(false && "AsDouble on non-numeric Value");
  return 0.0;
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return bool_value() ? "true" : "false";
    case DataType::kInt64:
      return std::to_string(int_value());
    case DataType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", double_value());
      return buf;
    }
    case DataType::kString:
      return string_value();
  }
  return "?";
}

size_t Value::Hash() const {
  switch (type()) {
    case DataType::kNull:
      return 0x2545F4914F6CDD1DULL;
    case DataType::kBool:
      return bool_value() ? 0x9E3779B1u : 0x85EBCA77u;
    case DataType::kInt64:
      return std::hash<int64_t>{}(int_value());
    case DataType::kDouble: {
      double d = double_value();
      // Make -0.0 and integral doubles hash like the equal int.
      if (d == 0.0) d = 0.0;
      double integral = 0.0;
      if (std::modf(d, &integral) == 0.0 &&
          integral >= -9.2e18 && integral <= 9.2e18) {
        return std::hash<int64_t>{}(static_cast<int64_t>(integral));
      }
      return std::hash<double>{}(d);
    }
    case DataType::kString:
      return std::hash<std::string>{}(string_value());
  }
  return 0;
}

bool operator==(const Value& a, const Value& b) {
  if (a.is_numeric() && b.is_numeric()) return a.AsDouble() == b.AsDouble();
  return a.repr_ == b.repr_;
}

bool operator<(const Value& a, const Value& b) {
  if (a.is_numeric() && b.is_numeric()) return a.AsDouble() < b.AsDouble();
  return a.repr_ < b.repr_;
}

}  // namespace mesa
