#ifndef MESA_SNAPSHOT_MAPPED_FILE_H_
#define MESA_SNAPSHOT_MAPPED_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"

namespace mesa {
namespace snapshot {

/// A read-only memory mapping of a whole file. The mapping lives as long
/// as the MappedFile object; `SnapshotReader` hands tables a
/// `shared_ptr<MappedFile>` so zero-copy column views keep the pages
/// alive past the reader itself.
///
/// The file descriptor is closed immediately after mmap succeeds — the
/// mapping survives the close, so the object holds no fd.
class MappedFile {
 public:
  /// Maps `path` read-only. Fails with IOError on open/stat/mmap errors
  /// and InvalidArgument on an empty file (a valid snapshot is never
  /// empty, and mmap of zero bytes is unspecified).
  static Result<std::shared_ptr<MappedFile>> Open(const std::string& path);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  MappedFile(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  const uint8_t* data_;
  size_t size_;
};

}  // namespace snapshot
}  // namespace mesa

#endif  // MESA_SNAPSHOT_MAPPED_FILE_H_
