#ifndef MESA_SNAPSHOT_WRITER_H_
#define MESA_SNAPSHOT_WRITER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "kg/triple_store.h"
#include "table/table.h"

namespace mesa {
namespace snapshot {

/// Serializes a dataset bundle — a columnar Table, optionally a knowledge
/// graph and its extraction column list — into the `mesa-snapshot v1`
/// container (docs/snapshot_format.md). The writer is deterministic: the
/// same inputs produce byte-identical files, so snapshots can be diffed
/// and content-addressed.
///
/// Dead payload bytes under null slots are canonicalized to the type's
/// default (0 / 0.0 / "") on the way out, so a snapshot round trip yields
/// the canonical `Column::ContentFingerprint` for the data regardless of
/// the source column's mutation history.
///
/// The borrowed pointers passed to SetTable / SetKg must outlive the
/// Serialize / WriteFile call.
class SnapshotWriter {
 public:
  SnapshotWriter() = default;

  void SetTable(const Table* table) { table_ = table; }
  void SetKg(const TripleStore* kg) { kg_ = kg; }
  void SetExtractionColumns(std::vector<std::string> columns) {
    extraction_columns_ = std::move(columns);
  }

  /// Serializes the bundle to an in-memory buffer. Fails if no table was
  /// set (a snapshot always carries a table; the KG is optional).
  Result<std::string> Serialize() const;

  /// Serializes and writes atomically-ish: to `path + ".tmp"`, then
  /// renamed over `path`.
  Status WriteFile(const std::string& path) const;

 private:
  const Table* table_ = nullptr;
  const TripleStore* kg_ = nullptr;
  std::vector<std::string> extraction_columns_;
};

}  // namespace snapshot
}  // namespace mesa

#endif  // MESA_SNAPSHOT_WRITER_H_
