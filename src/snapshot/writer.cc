#include "snapshot/writer.h"

#include <cstdio>
#include <cstring>
#include <unordered_map>

#include "snapshot/crc32c.h"
#include "snapshot/format.h"

namespace mesa {
namespace snapshot {
namespace {

/// Accumulates the file: header, 8-aligned CRC'd sections, section table,
/// footer. All multi-byte values are host-endian; the writer refuses to
/// run on big-endian hosts (checked in Serialize) so host order == the
/// little-endian on-disk order.
class FileBuilder {
 public:
  FileBuilder() {
    Header header{kMagic, kVersion, 0};
    AppendRaw(&header, sizeof(header));
  }

  void AddSection(SectionKind kind, uint32_t arg, const std::string& payload) {
    PadToAlignment();
    SectionEntry entry;
    entry.kind = static_cast<uint32_t>(kind);
    entry.arg = arg;
    entry.offset = buffer_.size();
    entry.size = payload.size();
    entry.crc32c = Crc32c(payload.data(), payload.size());
    entry.reserved = 0;
    sections_.push_back(entry);
    buffer_.append(payload);
  }

  std::string Finish() {
    PadToAlignment();
    const uint64_t table_offset = buffer_.size();
    for (const SectionEntry& entry : sections_) {
      AppendRaw(&entry, sizeof(entry));
    }
    Footer footer;
    footer.section_table_offset = table_offset;
    footer.section_count = sections_.size();
    footer.section_table_crc32c =
        Crc32c(buffer_.data() + table_offset, buffer_.size() - table_offset);
    footer.reserved = 0;
    footer.file_size = buffer_.size() + sizeof(Footer);
    footer.footer_magic = kFooterMagic;
    AppendRaw(&footer, sizeof(footer));
    return std::move(buffer_);
  }

 private:
  void AppendRaw(const void* data, size_t n) {
    buffer_.append(static_cast<const char*>(data), n);
  }

  void PadToAlignment() {
    buffer_.resize(AlignUp(buffer_.size()), '\0');
  }

  std::string buffer_;
  std::vector<SectionEntry> sections_;
};

void AppendRaw(std::string* out, const void* data, size_t n) {
  out->append(static_cast<const char*>(data), n);
}

template <typename T>
void AppendPod(std::string* out, const T& value) {
  AppendRaw(out, &value, sizeof(value));
}

/// String list payload: u64 count, u64 end_offsets[count] (cumulative byte
/// ends into the blob), then the concatenated bytes.
std::string EncodeStringList(const std::vector<std::string>& strings) {
  std::string out;
  AppendPod(&out, static_cast<uint64_t>(strings.size()));
  uint64_t end = 0;
  for (const std::string& s : strings) {
    end += s.size();
    AppendPod(&out, end);
  }
  for (const std::string& s : strings) out.append(s);
  return out;
}

/// First-occurrence-order string interner for the KG literal / alias
/// dictionaries.
class StringInterner {
 public:
  uint32_t Intern(const std::string& s) {
    auto [it, inserted] =
        ids_.emplace(s, static_cast<uint32_t>(strings_.size()));
    if (inserted) strings_.push_back(s);
    return it->second;
  }
  const std::vector<std::string>& strings() const { return strings_; }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, uint32_t> ids_;
};

uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

void WriteColumn(FileBuilder* builder, uint32_t index, const Column& column) {
  const size_t rows = column.size();

  std::string meta_payload;
  ColumnMeta meta;
  meta.type = static_cast<uint32_t>(column.type());
  meta.reserved = 0;
  meta.null_count = column.null_count();
  AppendPod(&meta_payload, meta);
  builder->AddSection(SectionKind::kColumnMeta, index, meta_payload);

  // Validity canonicalized to 0/1 bytes.
  std::string validity(rows, '\0');
  for (size_t row = 0; row < rows; ++row) {
    validity[row] = column.IsValid(row) ? 1 : 0;
  }
  builder->AddSection(SectionKind::kColumnValidity, index, validity);

  std::string payload;
  switch (column.type()) {
    case DataType::kDouble: {
      payload.reserve(rows * sizeof(double));
      for (size_t row = 0; row < rows; ++row) {
        // Dead payloads canonicalized to 0 so equal data writes equal bytes.
        AppendPod(&payload, column.IsValid(row) ? column.DoubleAt(row) : 0.0);
      }
      builder->AddSection(SectionKind::kColumnPayload, index, payload);
      break;
    }
    case DataType::kInt64: {
      payload.reserve(rows * sizeof(int64_t));
      for (size_t row = 0; row < rows; ++row) {
        AppendPod(&payload,
                  column.IsValid(row) ? column.IntAt(row) : int64_t{0});
      }
      builder->AddSection(SectionKind::kColumnPayload, index, payload);
      break;
    }
    case DataType::kBool: {
      payload.resize(rows, '\0');
      for (size_t row = 0; row < rows; ++row) {
        payload[row] = (column.IsValid(row) && column.BoolAt(row)) ? 1 : 0;
      }
      builder->AddSection(SectionKind::kColumnPayload, index, payload);
      break;
    }
    case DataType::kString: {
      // Dictionary-encode: distinct values in first-occurrence order. Null
      // rows code the empty string — the same dead payload an owned column
      // carries — so fingerprints survive the round trip.
      StringInterner dict;
      static const std::string kEmpty;
      std::string codes;
      codes.reserve(rows * sizeof(uint32_t));
      for (size_t row = 0; row < rows; ++row) {
        const std::string& value =
            column.IsValid(row) ? column.StringAt(row) : kEmpty;
        AppendPod(&codes, dict.Intern(value));
      }
      builder->AddSection(SectionKind::kColumnDictCodes, index, codes);
      builder->AddSection(SectionKind::kColumnDict, index,
                          EncodeStringList(dict.strings()));
      break;
    }
    case DataType::kNull:
      // Unreachable: Column's constructor rejects kNull.
      break;
  }
}

void WriteTable(FileBuilder* builder, const Table& table) {
  std::string meta_payload;
  TableMeta meta;
  meta.num_rows = table.num_rows();
  meta.num_columns = table.num_columns();
  AppendPod(&meta_payload, meta);
  builder->AddSection(SectionKind::kTableMeta, 0, meta_payload);

  builder->AddSection(SectionKind::kSchema, 0,
                      EncodeStringList(table.schema().names()));

  for (size_t i = 0; i < table.num_columns(); ++i) {
    WriteColumn(builder, static_cast<uint32_t>(i), table.column(i));
  }
}

void WriteKg(FileBuilder* builder, const TripleStore& kg) {
  // Triples in insertion order: an all-wildcard pattern scans the store.
  const std::vector<const Triple*> triples = kg.Match({});

  // Aliases in (entity id, per-entity registration order) — the same
  // canonical order the text `.kg` format round-trips through.
  StringInterner alias_strings;
  std::string alias_payload;
  uint64_t num_aliases = 0;
  AppendPod(&alias_payload, num_aliases);  // patched below.
  for (EntityId id = 0; id < kg.num_entities(); ++id) {
    for (const std::string& alias : kg.AliasesOf(id)) {
      AliasRecord record{id, alias_strings.Intern(alias)};
      AppendPod(&alias_payload, record);
      ++num_aliases;
    }
  }
  std::memcpy(alias_payload.data(), &num_aliases, sizeof(num_aliases));

  std::string meta_payload;
  KgMeta meta;
  meta.num_entities = kg.num_entities();
  meta.num_triples = triples.size();
  meta.num_aliases = num_aliases;
  meta.num_predicates = kg.num_predicates();
  AppendPod(&meta_payload, meta);
  builder->AddSection(SectionKind::kKgMeta, 0, meta_payload);

  std::vector<std::string> labels, types;
  labels.reserve(kg.num_entities());
  types.reserve(kg.num_entities());
  for (EntityId id = 0; id < kg.num_entities(); ++id) {
    labels.push_back(kg.entity(id).label);
    types.push_back(kg.entity(id).type);
  }
  builder->AddSection(SectionKind::kKgEntityLabels, 0,
                      EncodeStringList(labels));
  builder->AddSection(SectionKind::kKgEntityTypes, 0, EncodeStringList(types));

  std::vector<std::string> predicates;
  predicates.reserve(kg.num_predicates());
  for (PredicateId id = 0; id < kg.num_predicates(); ++id) {
    predicates.push_back(kg.predicate_name(id));
  }
  builder->AddSection(SectionKind::kKgPredicates, 0,
                      EncodeStringList(predicates));

  StringInterner literal_strings;
  std::string triple_payload;
  AppendPod(&triple_payload, static_cast<uint64_t>(triples.size()));
  for (const Triple* triple : triples) {
    TripleRecord record;
    record.subject = triple->subject;
    record.predicate = triple->predicate;
    if (triple->object.is_entity()) {
      record.object_kind = kObjectEntity;
      record.literal_type = static_cast<uint32_t>(DataType::kNull);
      record.payload = triple->object.entity;
    } else {
      const Value& v = triple->object.literal;
      record.object_kind = kObjectLiteral;
      record.literal_type = static_cast<uint32_t>(v.type());
      switch (v.type()) {
        case DataType::kNull:
          record.payload = 0;
          break;
        case DataType::kBool:
          record.payload = v.bool_value() ? 1 : 0;
          break;
        case DataType::kInt64:
          record.payload = static_cast<uint64_t>(v.int_value());
          break;
        case DataType::kDouble:
          record.payload = DoubleBits(v.double_value());
          break;
        case DataType::kString:
          record.payload = literal_strings.Intern(v.string_value());
          break;
      }
    }
    AppendPod(&triple_payload, record);
  }
  builder->AddSection(SectionKind::kKgTriples, 0, triple_payload);
  builder->AddSection(SectionKind::kKgLiteralStrings, 0,
                      EncodeStringList(literal_strings.strings()));
  builder->AddSection(SectionKind::kKgAliases, 0, alias_payload);
  builder->AddSection(SectionKind::kKgAliasStrings, 0,
                      EncodeStringList(alias_strings.strings()));
}

}  // namespace

Result<std::string> SnapshotWriter::Serialize() const {
  if (table_ == nullptr) {
    return Status::FailedPrecondition(
        "snapshot writer: no table set (a snapshot always carries a table)");
  }
  // The format is little-endian by definition; this writer emits host
  // order, so a big-endian host would silently produce garbage.
  const uint32_t probe = 1;
  if (*reinterpret_cast<const uint8_t*>(&probe) != 1) {
    return Status::FailedPrecondition(
        "snapshot writer requires a little-endian host");
  }

  FileBuilder builder;
  WriteTable(&builder, *table_);
  if (!extraction_columns_.empty()) {
    builder.AddSection(SectionKind::kExtractionColumns, 0,
                       EncodeStringList(extraction_columns_));
  }
  if (kg_ != nullptr) WriteKg(&builder, *kg_);
  return builder.Finish();
}

Status SnapshotWriter::WriteFile(const std::string& path) const {
  Result<std::string> bytes = Serialize();
  if (!bytes.ok()) return bytes.status();

  const std::string tmp_path = path + ".tmp";
  std::FILE* file = std::fopen(tmp_path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IOError("cannot open " + tmp_path + " for writing");
  }
  const size_t written = std::fwrite(bytes->data(), 1, bytes->size(), file);
  const bool close_ok = std::fclose(file) == 0;
  if (written != bytes->size() || !close_ok) {
    std::remove(tmp_path.c_str());
    return Status::IOError("short write to " + tmp_path);
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IOError("cannot rename " + tmp_path + " to " + path);
  }
  return Status::OK();
}

}  // namespace snapshot
}  // namespace mesa
