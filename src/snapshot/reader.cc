#include "snapshot/reader.h"

#include <chrono>
#include <cstring>

#include "common/metrics.h"
#include "snapshot/crc32c.h"
#include "snapshot/mapped_file.h"

namespace mesa {
namespace snapshot {
namespace {

Status Corrupt(const std::string& what) {
  return Status::InvalidArgument("snapshot: " + what);
}

/// All struct reads go through memcpy: the mmap base is page-aligned and
/// sections are 8-aligned, but memcpy keeps the reader correct for any
/// future layout and is free on modern compilers.
template <typename T>
T LoadPod(const uint8_t* p) {
  T value;
  std::memcpy(&value, p, sizeof(T));
  return value;
}

bool HostIsLittleEndian() {
  const uint32_t probe = 1;
  return *reinterpret_cast<const uint8_t*>(&probe) == 1;
}

/// Parses a string-list payload (u64 count, u64 cumulative end offsets,
/// concatenated bytes) with full bounds checking.
Result<std::vector<std::string>> ParseStringList(const uint8_t* p, uint64_t n,
                                                 const char* what) {
  const std::string label(what);
  if (n < sizeof(uint64_t)) {
    return Corrupt(label + ": string list shorter than its count field");
  }
  const uint64_t count = LoadPod<uint64_t>(p);
  if (count > (n - sizeof(uint64_t)) / sizeof(uint64_t)) {
    return Corrupt(label + ": string count " + std::to_string(count) +
                   " exceeds section size");
  }
  const uint64_t blob_start = sizeof(uint64_t) * (1 + count);
  const uint64_t blob_size = n - blob_start;
  std::vector<std::string> out;
  out.reserve(count);
  uint64_t prev_end = 0;
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t end = LoadPod<uint64_t>(p + sizeof(uint64_t) * (1 + i));
    if (end < prev_end || end > blob_size) {
      return Corrupt(label + ": string offsets not monotonic within blob");
    }
    out.emplace_back(reinterpret_cast<const char*>(p + blob_start + prev_end),
                     end - prev_end);
    prev_end = end;
  }
  if (prev_end != blob_size) {
    return Corrupt(label + ": trailing bytes after last string");
  }
  return out;
}

bool IsValidDataType(uint32_t type) {
  return type >= static_cast<uint32_t>(DataType::kBool) &&
         type <= static_cast<uint32_t>(DataType::kString);
}

}  // namespace

Result<SnapshotReader> SnapshotReader::Open(
    const std::string& path, const SnapshotReadOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  MESA_ASSIGN_OR_RETURN(std::shared_ptr<MappedFile> mapped,
                        MappedFile::Open(path));
  const uint8_t* data = mapped->data();
  const size_t size = mapped->size();
  MESA_ASSIGN_OR_RETURN(
      SnapshotReader reader,
      FromBuffer(data, size, std::move(mapped), options));
  MESA_COUNT("snapshot/open");
  MESA_COUNT_N("snapshot/load_bytes", size);
  using FractionalMs = std::chrono::duration<double, std::milli>;
  const double open_ms =
      FractionalMs(std::chrono::steady_clock::now() - start).count();
  MESA_RECORD("snapshot/open_ms", open_ms);
  return reader;
}

Result<SnapshotReader> SnapshotReader::FromBuffer(
    const uint8_t* data, size_t size, std::shared_ptr<const void> owner,
    const SnapshotReadOptions& options) {
  if (!HostIsLittleEndian()) {
    return Status::FailedPrecondition(
        "snapshot reader requires a little-endian host");
  }
  if (reinterpret_cast<uintptr_t>(data) % kAlignment != 0) {
    return Status::InvalidArgument(
        "snapshot: buffer base address must be 8-aligned");
  }
  SnapshotReader reader;
  reader.data_ = data;
  reader.size_ = size;
  reader.owner_ = std::move(owner);
  MESA_RETURN_IF_ERROR(reader.Validate(options));
  return reader;
}

Status SnapshotReader::Validate(const SnapshotReadOptions& options) {
  if (size_ < sizeof(Header) + sizeof(Footer)) {
    return Corrupt("file of " + std::to_string(size_) +
                   " bytes is too small to hold header and footer");
  }
  const Header header = LoadPod<Header>(data_);
  if (header.magic != kMagic) {
    return Corrupt("bad magic (not a mesa-snapshot file)");
  }
  if (header.version != kVersion) {
    return Corrupt("unsupported format version " +
                   std::to_string(header.version) + " (this build reads v" +
                   std::to_string(kVersion) + " only)");
  }
  if (header.flags != 0) {
    return Corrupt("reserved header flags set");
  }

  const Footer footer = LoadPod<Footer>(data_ + size_ - sizeof(Footer));
  if (footer.footer_magic != kFooterMagic) {
    return Corrupt("bad footer magic (file truncated or overwritten)");
  }
  if (footer.file_size != size_) {
    return Corrupt("footer claims " + std::to_string(footer.file_size) +
                   " bytes, file has " + std::to_string(size_));
  }
  if (footer.reserved != 0) return Corrupt("reserved footer field set");
  if (footer.section_table_offset % kAlignment != 0) {
    return Corrupt("section table offset not 8-aligned");
  }
  const uint64_t table_bytes = size_ - sizeof(Footer);
  if (footer.section_table_offset < sizeof(Header) ||
      footer.section_table_offset > table_bytes ||
      footer.section_count >
          (table_bytes - footer.section_table_offset) / sizeof(SectionEntry)) {
    return Corrupt("section table out of bounds");
  }
  const uint8_t* table = data_ + footer.section_table_offset;
  const uint64_t table_size = footer.section_count * sizeof(SectionEntry);
  if (Crc32c(table, table_size) != footer.section_table_crc32c) {
    return Corrupt("section table checksum mismatch");
  }

  sections_.reserve(footer.section_count);
  for (uint64_t i = 0; i < footer.section_count; ++i) {
    const SectionEntry entry =
        LoadPod<SectionEntry>(table + i * sizeof(SectionEntry));
    if (entry.kind < static_cast<uint32_t>(SectionKind::kTableMeta) ||
        entry.kind > static_cast<uint32_t>(SectionKind::kKgAliasStrings)) {
      return Corrupt("unknown section kind " + std::to_string(entry.kind));
    }
    if (entry.reserved != 0) return Corrupt("reserved section field set");
    if (entry.offset % kAlignment != 0) {
      return Corrupt("section " + std::to_string(entry.kind) +
                     " offset not 8-aligned");
    }
    if (entry.offset < sizeof(Header) ||
        entry.offset > footer.section_table_offset ||
        entry.size > footer.section_table_offset - entry.offset) {
      return Corrupt("section " + std::to_string(entry.kind) +
                     " extends out of bounds");
    }
    if (options.verify_checksums &&
        Crc32c(data_ + entry.offset, entry.size) != entry.crc32c) {
      return Corrupt("section " + std::to_string(entry.kind) + "/" +
                     std::to_string(entry.arg) + " checksum mismatch");
    }
    sections_.push_back(entry);
  }

  if (FindSection(SectionKind::kTableMeta, 0) == nullptr) {
    return Corrupt("missing table section");
  }
  if (const SectionEntry* entry =
          FindSection(SectionKind::kExtractionColumns, 0)) {
    MESA_ASSIGN_OR_RETURN(
        extraction_columns_,
        ParseStringList(data_ + entry->offset, entry->size,
                        "extraction columns"));
  }
  return Status::OK();
}

const SectionEntry* SnapshotReader::FindSection(SectionKind kind,
                                                uint32_t arg) const {
  for (const SectionEntry& entry : sections_) {
    if (entry.kind == static_cast<uint32_t>(kind) && entry.arg == arg) {
      return &entry;
    }
  }
  return nullptr;
}

Result<const uint8_t*> SnapshotReader::RequireSection(
    SectionKind kind, uint32_t arg, uint64_t* size_out) const {
  const SectionEntry* entry = FindSection(kind, arg);
  if (entry == nullptr) {
    return Corrupt("missing section kind " +
                   std::to_string(static_cast<uint32_t>(kind)) + " arg " +
                   std::to_string(arg));
  }
  *size_out = entry->size;
  return data_ + entry->offset;
}

bool SnapshotReader::has_kg() const {
  return FindSection(SectionKind::kKgMeta, 0) != nullptr;
}

Result<Table> SnapshotReader::ReadTable() const {
  uint64_t n = 0;
  MESA_ASSIGN_OR_RETURN(const uint8_t* meta_bytes,
                        RequireSection(SectionKind::kTableMeta, 0, &n));
  if (n != sizeof(TableMeta)) return Corrupt("table meta has wrong size");
  const TableMeta meta = LoadPod<TableMeta>(meta_bytes);
  const uint64_t rows = meta.num_rows;
  // A column needs at least one validity byte per row, so a plausible
  // column count is bounded by the file size; this also bounds the loop
  // below against a hostile huge count.
  if (meta.num_columns > size_) return Corrupt("implausible column count");

  MESA_ASSIGN_OR_RETURN(const uint8_t* schema_bytes,
                        RequireSection(SectionKind::kSchema, 0, &n));
  MESA_ASSIGN_OR_RETURN(std::vector<std::string> names,
                        ParseStringList(schema_bytes, n, "schema"));
  if (names.size() != meta.num_columns) {
    return Corrupt("schema names " + std::to_string(names.size()) +
                   " != column count " + std::to_string(meta.num_columns));
  }

  std::vector<Field> fields;
  std::vector<Column> columns;
  fields.reserve(meta.num_columns);
  columns.reserve(meta.num_columns);
  for (uint32_t i = 0; i < meta.num_columns; ++i) {
    MESA_ASSIGN_OR_RETURN(const uint8_t* column_meta_bytes,
                          RequireSection(SectionKind::kColumnMeta, i, &n));
    if (n != sizeof(ColumnMeta)) {
      return Corrupt("column meta has wrong size");
    }
    const ColumnMeta column_meta = LoadPod<ColumnMeta>(column_meta_bytes);
    if (!IsValidDataType(column_meta.type)) {
      return Corrupt("column " + names[i] + " has invalid type " +
                     std::to_string(column_meta.type));
    }
    if (column_meta.reserved != 0) {
      return Corrupt("reserved column meta field set");
    }
    const DataType type = static_cast<DataType>(column_meta.type);

    MESA_ASSIGN_OR_RETURN(const uint8_t* valid,
                          RequireSection(SectionKind::kColumnValidity, i, &n));
    if (n != rows) {
      return Corrupt("column " + names[i] + " validity size " +
                     std::to_string(n) + " != row count " +
                     std::to_string(rows));
    }
    // Recount rather than trust: null_count feeds statistics and the
    // borrow contract, and the recount touches pages the query would
    // anyway.
    uint64_t null_count = 0;
    for (uint64_t row = 0; row < rows; ++row) {
      if (valid[row] == 0) ++null_count;
    }
    if (null_count != column_meta.null_count) {
      return Corrupt("column " + names[i] + " null count mismatch");
    }

    switch (type) {
      case DataType::kDouble: {
        MESA_ASSIGN_OR_RETURN(
            const uint8_t* payload,
            RequireSection(SectionKind::kColumnPayload, i, &n));
        if (n != rows * sizeof(double)) {
          return Corrupt("column " + names[i] + " payload size mismatch");
        }
        columns.push_back(Column::BorrowDoubles(
            reinterpret_cast<const double*>(payload), valid, rows, null_count,
            owner_));
        break;
      }
      case DataType::kInt64: {
        MESA_ASSIGN_OR_RETURN(
            const uint8_t* payload,
            RequireSection(SectionKind::kColumnPayload, i, &n));
        if (n != rows * sizeof(int64_t)) {
          return Corrupt("column " + names[i] + " payload size mismatch");
        }
        columns.push_back(Column::BorrowInts(
            reinterpret_cast<const int64_t*>(payload), valid, rows, null_count,
            owner_));
        break;
      }
      case DataType::kBool: {
        MESA_ASSIGN_OR_RETURN(
            const uint8_t* payload,
            RequireSection(SectionKind::kColumnPayload, i, &n));
        if (n != rows) {
          return Corrupt("column " + names[i] + " payload size mismatch");
        }
        columns.push_back(
            Column::BorrowBools(payload, valid, rows, null_count, owner_));
        break;
      }
      case DataType::kString: {
        MESA_ASSIGN_OR_RETURN(
            const uint8_t* codes_bytes,
            RequireSection(SectionKind::kColumnDictCodes, i, &n));
        if (n != rows * sizeof(uint32_t)) {
          return Corrupt("column " + names[i] + " code array size mismatch");
        }
        uint64_t dict_size = 0;
        MESA_ASSIGN_OR_RETURN(
            const uint8_t* dict_bytes,
            RequireSection(SectionKind::kColumnDict, i, &dict_size));
        MESA_ASSIGN_OR_RETURN(
            std::vector<std::string> dict,
            ParseStringList(dict_bytes, dict_size, "column dictionary"));
        // Memory-safety gate (unconditional): every code must index the
        // dictionary, or StringAt would read out of bounds.
        const uint32_t* codes =
            reinterpret_cast<const uint32_t*>(codes_bytes);
        for (uint64_t row = 0; row < rows; ++row) {
          if (codes[row] >= dict.size()) {
            return Corrupt("column " + names[i] + " row " +
                           std::to_string(row) +
                           " dictionary code out of range");
          }
        }
        columns.push_back(Column::BorrowStringDict(
            std::move(dict), codes, valid, rows, null_count, owner_));
        break;
      }
      case DataType::kNull:
        return Corrupt("column " + names[i] + " has null type");
    }
    fields.push_back(Field{names[i], type});
  }

  MESA_ASSIGN_OR_RETURN(
      Table table, Table::Make(Schema(std::move(fields)), std::move(columns)));
  MESA_COUNT("snapshot/table_reads");
  return table;
}

Result<std::shared_ptr<TripleStore>> SnapshotReader::ReadKg() const {
  uint64_t n = 0;
  const SectionEntry* meta_entry = FindSection(SectionKind::kKgMeta, 0);
  if (meta_entry == nullptr) {
    return Status::NotFound("snapshot has no knowledge graph");
  }
  if (meta_entry->size != sizeof(KgMeta)) {
    return Corrupt("kg meta has wrong size");
  }
  const KgMeta meta = LoadPod<KgMeta>(data_ + meta_entry->offset);
  if (meta.num_entities > UINT32_MAX || meta.num_predicates > UINT32_MAX) {
    return Corrupt("kg entity/predicate count exceeds id space");
  }

  MESA_ASSIGN_OR_RETURN(const uint8_t* labels_bytes,
                        RequireSection(SectionKind::kKgEntityLabels, 0, &n));
  MESA_ASSIGN_OR_RETURN(std::vector<std::string> labels,
                        ParseStringList(labels_bytes, n, "entity labels"));
  MESA_ASSIGN_OR_RETURN(const uint8_t* types_bytes,
                        RequireSection(SectionKind::kKgEntityTypes, 0, &n));
  MESA_ASSIGN_OR_RETURN(std::vector<std::string> types,
                        ParseStringList(types_bytes, n, "entity types"));
  if (labels.size() != meta.num_entities || types.size() != meta.num_entities) {
    return Corrupt("entity label/type list sizes disagree with kg meta");
  }

  MESA_ASSIGN_OR_RETURN(const uint8_t* predicates_bytes,
                        RequireSection(SectionKind::kKgPredicates, 0, &n));
  MESA_ASSIGN_OR_RETURN(std::vector<std::string> predicates,
                        ParseStringList(predicates_bytes, n, "predicates"));
  if (predicates.size() != meta.num_predicates) {
    return Corrupt("predicate list size disagrees with kg meta");
  }

  MESA_ASSIGN_OR_RETURN(
      const uint8_t* literal_strings_bytes,
      RequireSection(SectionKind::kKgLiteralStrings, 0, &n));
  MESA_ASSIGN_OR_RETURN(
      std::vector<std::string> literal_strings,
      ParseStringList(literal_strings_bytes, n, "literal strings"));
  MESA_ASSIGN_OR_RETURN(const uint8_t* alias_strings_bytes,
                        RequireSection(SectionKind::kKgAliasStrings, 0, &n));
  MESA_ASSIGN_OR_RETURN(
      std::vector<std::string> alias_strings,
      ParseStringList(alias_strings_bytes, n, "alias strings"));

  auto kg = std::make_shared<TripleStore>();
  for (uint64_t i = 0; i < meta.num_entities; ++i) {
    Result<EntityId> id = kg->AddEntity(labels[i], types[i]);
    if (!id.ok()) {
      return Corrupt("duplicate entity label '" + labels[i] + "'");
    }
  }
  for (const std::string& predicate : predicates) {
    kg->InternPredicate(predicate);
  }
  if (kg->num_predicates() != meta.num_predicates) {
    return Corrupt("duplicate predicate names");
  }

  MESA_ASSIGN_OR_RETURN(const uint8_t* aliases_bytes,
                        RequireSection(SectionKind::kKgAliases, 0, &n));
  if (n < sizeof(uint64_t)) return Corrupt("alias section too small");
  const uint64_t num_aliases = LoadPod<uint64_t>(aliases_bytes);
  if (num_aliases != meta.num_aliases ||
      num_aliases > (n - sizeof(uint64_t)) / sizeof(AliasRecord)) {
    return Corrupt("alias count disagrees with section size");
  }
  for (uint64_t i = 0; i < num_aliases; ++i) {
    const AliasRecord record = LoadPod<AliasRecord>(
        aliases_bytes + sizeof(uint64_t) + i * sizeof(AliasRecord));
    if (record.entity >= meta.num_entities ||
        record.string_index >= alias_strings.size()) {
      return Corrupt("alias record out of range");
    }
    MESA_RETURN_IF_ERROR(
        kg->AddAlias(record.entity, alias_strings[record.string_index]));
  }

  MESA_ASSIGN_OR_RETURN(const uint8_t* triples_bytes,
                        RequireSection(SectionKind::kKgTriples, 0, &n));
  if (n < sizeof(uint64_t)) return Corrupt("triple section too small");
  const uint64_t num_triples = LoadPod<uint64_t>(triples_bytes);
  if (num_triples != meta.num_triples ||
      num_triples > (n - sizeof(uint64_t)) / sizeof(TripleRecord)) {
    return Corrupt("triple count disagrees with section size");
  }
  for (uint64_t i = 0; i < num_triples; ++i) {
    const TripleRecord record = LoadPod<TripleRecord>(
        triples_bytes + sizeof(uint64_t) + i * sizeof(TripleRecord));
    if (record.subject >= meta.num_entities ||
        record.predicate >= meta.num_predicates) {
      return Corrupt("triple subject/predicate out of range");
    }
    const std::string& predicate = predicates[record.predicate];
    if (record.object_kind == kObjectEntity) {
      if (record.payload >= meta.num_entities) {
        return Corrupt("triple object entity out of range");
      }
      MESA_RETURN_IF_ERROR(kg->AddEdge(
          record.subject, predicate, static_cast<EntityId>(record.payload)));
      continue;
    }
    if (record.object_kind != kObjectLiteral) {
      return Corrupt("triple object kind invalid");
    }
    Value literal;
    switch (record.literal_type) {
      case static_cast<uint32_t>(DataType::kNull):
        literal = Value::Null();
        break;
      case static_cast<uint32_t>(DataType::kBool):
        literal = Value::Bool(record.payload != 0);
        break;
      case static_cast<uint32_t>(DataType::kInt64):
        literal = Value::Int(static_cast<int64_t>(record.payload));
        break;
      case static_cast<uint32_t>(DataType::kDouble): {
        double v;
        std::memcpy(&v, &record.payload, sizeof(v));
        literal = Value::Double(v);
        break;
      }
      case static_cast<uint32_t>(DataType::kString): {
        if (record.payload >= literal_strings.size()) {
          return Corrupt("triple literal string index out of range");
        }
        literal = Value::String(literal_strings[record.payload]);
        break;
      }
      default:
        return Corrupt("triple literal type invalid");
    }
    MESA_RETURN_IF_ERROR(
        kg->AddLiteral(record.subject, predicate, std::move(literal)));
  }

  MESA_COUNT("snapshot/kg_reads");
  return kg;
}

}  // namespace snapshot
}  // namespace mesa
