#ifndef MESA_SNAPSHOT_READER_H_
#define MESA_SNAPSHOT_READER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "kg/triple_store.h"
#include "snapshot/format.h"
#include "table/table.h"

namespace mesa {
namespace snapshot {

struct SnapshotReadOptions {
  /// Verify the CRC-32C of every section at open time. Costs one pass over
  /// the file (and faults in every page); with it off, opening is
  /// O(metadata) and table loads touch only the pages the query reads.
  /// Structural validation — magic, version, bounds, alignment, dictionary
  /// code ranges — is unconditional: a hostile file yields an error Status
  /// with checksums off too, never a crash.
  bool verify_checksums = true;
};

/// Reads the `mesa-snapshot v1` container (docs/snapshot_format.md).
///
/// `Open` mmaps the file; `ReadTable` then builds a Table whose numeric /
/// bool columns are zero-copy views into the mapping (string columns
/// borrow the code array and materialize only the per-distinct-value
/// dictionary). The views hold a shared handle on the mapping, so the
/// Table — and any copies of its columns — stay valid after the reader is
/// destroyed.
///
/// Every structural claim the file makes is validated before any payload
/// pointer is formed: magic and exact version, footer round trip, section
/// bounds and 8-alignment, string-list offset monotonicity, dictionary
/// code ranges, and KG id ranges. A malformed or truncated file produces
/// an InvalidArgument Status, never undefined behavior.
class SnapshotReader {
 public:
  /// Maps and validates `path`.
  static Result<SnapshotReader> Open(const std::string& path,
                                     const SnapshotReadOptions& options = {});

  /// Validates an in-memory image. `data` must be 8-aligned (mmap and
  /// aligned test buffers are; arbitrary string storage may not be) and
  /// stay alive as long as `owner` is held.
  static Result<SnapshotReader> FromBuffer(
      const uint8_t* data, size_t size, std::shared_ptr<const void> owner,
      const SnapshotReadOptions& options = {});

  /// True if the snapshot carries a knowledge graph.
  bool has_kg() const;

  /// Extraction column list stored alongside the KG (empty if none).
  const std::vector<std::string>& extraction_columns() const {
    return extraction_columns_;
  }

  /// Builds the table with zero-copy column views into the mapping.
  Result<Table> ReadTable() const;

  /// Rebuilds the triple store (indexes are hash maps, so the KG is
  /// materialized, not borrowed). Fails with NotFound if !has_kg().
  Result<std::shared_ptr<TripleStore>> ReadKg() const;

  size_t file_size() const { return size_; }

 private:
  SnapshotReader() = default;

  Status Validate(const SnapshotReadOptions& options);

  /// Section lookup by (kind, arg); nullptr if absent.
  const SectionEntry* FindSection(SectionKind kind, uint32_t arg) const;

  /// Payload bytes of a section that must exist; InvalidArgument if absent.
  Result<const uint8_t*> RequireSection(SectionKind kind, uint32_t arg,
                                        uint64_t* size_out) const;

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  std::shared_ptr<const void> owner_;
  std::vector<SectionEntry> sections_;
  std::vector<std::string> extraction_columns_;
};

}  // namespace snapshot
}  // namespace mesa

#endif  // MESA_SNAPSHOT_READER_H_
