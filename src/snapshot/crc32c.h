#ifndef MESA_SNAPSHOT_CRC32C_H_
#define MESA_SNAPSHOT_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace mesa {
namespace snapshot {

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) —
/// the checksum guarding every snapshot section and the section table
/// itself (docs/snapshot_format.md). Software slice-by-one table
/// implementation: ~1 GB/s, plenty for a load path that is otherwise
/// page-fault bound, and dependency-free.
///
/// `Crc32c(data, n)` is shorthand for `Crc32cExtend(0, data, n)`;
/// Extend lets callers checksum discontiguous runs incrementally.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);
uint32_t Crc32c(const void* data, size_t n);

}  // namespace snapshot
}  // namespace mesa

#endif  // MESA_SNAPSHOT_CRC32C_H_
