#include "snapshot/crc32c.h"

namespace mesa {
namespace snapshot {
namespace {

/// 256-entry lookup table for the reflected Castagnoli polynomial,
/// generated once at first use (thread-safe via static-local init).
struct Crc32cTable {
  uint32_t entries[256];
  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);
      }
      entries[i] = crc;
    }
  }
};

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  static const Crc32cTable table;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = table.entries[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32c(const void* data, size_t n) { return Crc32cExtend(0, data, n); }

}  // namespace snapshot
}  // namespace mesa
