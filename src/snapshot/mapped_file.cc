#include "snapshot/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mesa {
namespace snapshot {

Result<std::shared_ptr<MappedFile>> MappedFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status status = Status::IOError("cannot stat " + path + ": " +
                                    std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (st.st_size == 0) {
    ::close(fd);
    return Status::InvalidArgument("empty file is not a snapshot: " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // The mapping keeps the pages; the fd is no longer needed.
  if (addr == MAP_FAILED) {
    return Status::IOError("cannot mmap " + path + ": " +
                           std::strerror(errno));
  }
  return std::shared_ptr<MappedFile>(
      new MappedFile(static_cast<const uint8_t*>(addr), size));
}

MappedFile::~MappedFile() {
  ::munmap(const_cast<uint8_t*>(data_), size_);
}

}  // namespace snapshot
}  // namespace mesa
