#ifndef MESA_SNAPSHOT_FORMAT_H_
#define MESA_SNAPSHOT_FORMAT_H_

/// On-disk constants and structs of the `mesa-snapshot v1` binary
/// container ("msnap"). The byte-level specification lives in
/// docs/snapshot_format.md; this header is its code mirror — any change
/// here is a format change and must bump `kVersion` and the spec
/// together.
///
/// Layout invariants (enforced by the reader, relied on by zero-copy
/// column views):
///  - everything is little-endian; readers on big-endian hosts refuse.
///  - every section starts at a file offset that is a multiple of 8 and
///    is zero-padded up to the next multiple of 8.
///  - fixed-width payload arrays (f64 / i64 / u32 / u8) start at their
///    section's offset, so 8-alignment of the section aligns them.
///  - the section table sits after every section; the fixed-size footer
///    is the last 40 bytes of the file and locates the table.

#include <cstddef>
#include <cstdint>

namespace mesa {
namespace snapshot {

/// "MESASNAP" read as a little-endian u64.
inline constexpr uint64_t kMagic = 0x50414E534153454DULL;
/// "PANSASEM" — the reversed spelling closes the file.
inline constexpr uint64_t kFooterMagic = 0x4D455341534E4150ULL;
/// Current (and only) format version. Readers hard-reject any other
/// value — forward compatibility is explicitly *not* attempted.
inline constexpr uint32_t kVersion = 1;

/// Section payload alignment; also the granularity of inter-section
/// zero padding.
inline constexpr uint64_t kAlignment = 8;

/// File-leading header.
struct Header {
  uint64_t magic;    ///< kMagic
  uint32_t version;  ///< kVersion; any other value is rejected.
  uint32_t flags;    ///< reserved, must be 0.
};
static_assert(sizeof(Header) == 16, "on-disk struct must stay packed");

/// Section kinds. `arg` in the table entry carries the column index for
/// per-column kinds and is 0 otherwise. Unknown kinds are rejected (a
/// new kind is a format change and bumps kVersion).
enum class SectionKind : uint32_t {
  kTableMeta = 1,         ///< TableMeta struct.
  kSchema = 2,            ///< string list: field names (types in kColumnMeta).
  kColumnMeta = 3,        ///< ColumnMeta struct (arg = column).
  kColumnValidity = 4,    ///< u8[rows] (arg = column).
  kColumnPayload = 5,     ///< f64[rows] | i64[rows] | u8[rows] (arg = column).
  kColumnDictCodes = 6,   ///< u32[rows] dictionary codes (arg = column).
  kColumnDict = 7,        ///< string list: the column's dictionary (arg = column).
  kExtractionColumns = 8, ///< string list: KG extraction attribute names.
  kKgMeta = 9,            ///< KgMeta struct.
  kKgEntityLabels = 10,   ///< string list, one per entity, id order.
  kKgEntityTypes = 11,    ///< string list, one per entity, id order.
  kKgPredicates = 12,     ///< string list, interning order.
  kKgTriples = 13,        ///< u64 count + TripleRecord[count].
  kKgLiteralStrings = 14, ///< string list: dedup dictionary for string literals.
  kKgAliases = 15,        ///< u64 count + AliasRecord[count].
  kKgAliasStrings = 16,   ///< string list: dedup dictionary for aliases.
};

/// One entry of the section table (32 bytes).
struct SectionEntry {
  uint32_t kind;      ///< SectionKind.
  uint32_t arg;       ///< column index for per-column kinds, else 0.
  uint64_t offset;    ///< absolute file offset, multiple of kAlignment.
  uint64_t size;      ///< payload bytes (excluding inter-section padding).
  uint32_t crc32c;    ///< CRC-32C of the payload bytes.
  uint32_t reserved;  ///< must be 0.
};
static_assert(sizeof(SectionEntry) == 32, "on-disk struct must stay packed");

/// File-trailing footer (last 40 bytes).
struct Footer {
  uint64_t section_table_offset;  ///< multiple of kAlignment.
  uint64_t section_count;
  uint32_t section_table_crc32c;  ///< CRC-32C over all SectionEntry bytes.
  uint32_t reserved;              ///< must be 0.
  uint64_t file_size;             ///< must equal the actual file size.
  uint64_t footer_magic;          ///< kFooterMagic.
};
static_assert(sizeof(Footer) == 40, "on-disk struct must stay packed");

/// kTableMeta payload.
struct TableMeta {
  uint64_t num_rows;
  uint64_t num_columns;
};
static_assert(sizeof(TableMeta) == 16, "on-disk struct must stay packed");

/// kColumnMeta payload. `type` is the DataType enum value.
struct ColumnMeta {
  uint32_t type;
  uint32_t reserved;  ///< must be 0.
  uint64_t null_count;
};
static_assert(sizeof(ColumnMeta) == 16, "on-disk struct must stay packed");

/// kKgMeta payload.
struct KgMeta {
  uint64_t num_entities;
  uint64_t num_triples;
  uint64_t num_aliases;
  uint64_t num_predicates;
};
static_assert(sizeof(KgMeta) == 32, "on-disk struct must stay packed");

/// KgObject::Kind on disk.
inline constexpr uint32_t kObjectLiteral = 0;
inline constexpr uint32_t kObjectEntity = 1;

/// One triple (24 bytes). For literal objects `literal_type` is the
/// DataType of the literal (kNull encodes a null literal) and `payload`
/// holds the raw bits of the double / int64, 0 or 1 for bools, or an
/// index into kKgLiteralStrings. For entity objects `payload` is the
/// object EntityId.
struct TripleRecord {
  uint32_t subject;
  uint32_t predicate;
  uint32_t object_kind;   ///< kObjectLiteral | kObjectEntity.
  uint32_t literal_type;  ///< DataType; 0 (kNull) for entity objects.
  uint64_t payload;
};
static_assert(sizeof(TripleRecord) == 24, "on-disk struct must stay packed");

/// One alias registration (8 bytes): entity id + index into
/// kKgAliasStrings. Written in (entity id, per-entity registration
/// order) — the same canonical order the text `.kg` format uses.
struct AliasRecord {
  uint32_t entity;
  uint32_t string_index;
};
static_assert(sizeof(AliasRecord) == 8, "on-disk struct must stay packed");

/// Rounds `n` up to the next multiple of kAlignment.
inline uint64_t AlignUp(uint64_t n) {
  return (n + (kAlignment - 1)) & ~(kAlignment - 1);
}

}  // namespace snapshot
}  // namespace mesa

#endif  // MESA_SNAPSHOT_FORMAT_H_
