#ifndef MESA_CORE_REPORT_FORMAT_H_
#define MESA_CORE_REPORT_FORMAT_H_

#include <string>

#include "core/mesa.h"

namespace mesa {

/// Options for the plain-text report renderer.
struct ReportFormatOptions {
  /// Width of the responsibility bar, in characters.
  size_t bar_width = 28;
  /// Include the candidate-funnel line (total -> offline -> online).
  bool show_funnel = true;
  /// Include the per-step selection trace.
  bool show_trace = false;
  /// Include the KG-coverage line (printed only when extraction ran).
  /// Failed lookups make partial results visible right in the report;
  /// retry counts live in the metrics snapshot, not here, so a fully
  /// masked transient outage leaves the report byte-identical.
  bool show_kg_coverage = true;
};

/// Renders a MesaReport as a human-readable block, e.g.:
///
///   SELECT Country, avg(Salary) FROM SO GROUP BY Country
///   correlation  I(O;T|C)   = 1.157 bits
///   explained    I(O;T|E,C) = 0.104 bits   (91% explained away)
///   explanation  {gdp, gini}
///     gdp   ############################   0.62
///     gini  ################               0.38
///
/// The bars make the Definition 2.5 responsibilities readable at a glance;
/// negative responsibilities render with a '-' marker instead of a bar.
std::string FormatReport(const MesaReport& report,
                         const ReportFormatOptions& options = {});

/// Renders the top-k unexplained subgroups (Table 4 style).
std::string FormatSubgroups(const std::vector<UnexplainedSubgroup>& groups);

}  // namespace mesa

#endif  // MESA_CORE_REPORT_FORMAT_H_
