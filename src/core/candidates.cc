#include "core/candidates.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "common/cancel.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/parallel.h"

namespace mesa {

namespace {

// Cache key of a *sorted* candidate index set ("" for the empty set).
std::string SetKey(const std::vector<size_t>& sorted) {
  std::string key;
  for (size_t i : sorted) {
    key += std::to_string(i);
    key += ',';
  }
  return key;
}

}  // namespace

Result<QueryAnalysis> QueryAnalysis::Prepare(
    const Table& table, const QuerySpec& query,
    const std::vector<std::string>& candidates,
    const std::vector<std::string>& kg_columns, const PrepareOptions& options) {
  MESA_RETURN_IF_ERROR(query.Validate(table));

  QueryAnalysis qa;
  qa.query_ = query;
  qa.options_ = options;

  // Condition on C by restricting to matching rows.
  MESA_ASSIGN_OR_RETURN(std::vector<size_t> rows,
                        query.context.MatchingRows(table));
  if (rows.empty()) {
    return Status::InvalidArgument("query context matches no rows");
  }
  qa.context_table_ = table.TakeRows(rows);
  qa.n_ = qa.context_table_.num_rows();

  MESA_ASSIGN_OR_RETURN(
      Discretized o,
      DiscretizeColumn(qa.context_table_, query.outcome, options.discretizer));
  qa.outcome_ = CodedVariable{std::move(o.codes), o.cardinality};
  // The effective exposure is the composite of all grouping attributes;
  // the components are kept for per-component trap tests.
  for (const std::string& name : query.AllExposures()) {
    MESA_ASSIGN_OR_RETURN(
        Discretized t,
        DiscretizeColumn(qa.context_table_, name, options.discretizer));
    qa.exposure_components_.push_back(
        CodedVariable{std::move(t.codes), t.cardinality});
  }
  {
    std::vector<const CodedVariable*> ptrs;
    for (const auto& p : qa.exposure_components_) ptrs.push_back(&p);
    qa.exposure_ = CombineAll(ptrs, qa.n_);
  }

  std::set<std::string> kg_set(kg_columns.begin(), kg_columns.end());

  // IPW covariates default to the query attributes themselves (always
  // observed in the base data).
  IpwOptions ipw = options.ipw;
  if (ipw.covariates.empty()) {
    ipw.covariates = {query.exposure, query.outcome};
  }

  // Candidate preparation (discretization, selection-bias detection, IPW
  // weight fitting) is independent per attribute: fan out over the pool
  // into order-stable slots, then assemble serially. The first error in
  // candidate order wins, matching the serial loop.
  std::vector<std::string> names;
  for (const std::string& name : candidates) {
    if (name == query.outcome || query.IsExposure(name)) continue;
    names.push_back(name);
  }
  MESA_SPAN("qa_prepare");
  MESA_COUNT_N("qa/candidates_prepared", names.size());
  std::vector<Status> statuses(names.size());
  std::vector<PreparedAttribute> prepared(names.size());
  ParallelFor(
      0, names.size(),
      [&](size_t ci) {
        CancelCheckpoint();  // per-candidate preparation checkpoint
        statuses[ci] = [&]() -> Status {
          const std::string& name = names[ci];
          MESA_ASSIGN_OR_RETURN(const Column* col,
                                qa.context_table_.ColumnByName(name));
          PreparedAttribute attr;
          attr.name = name;
          attr.from_kg = kg_set.count(name) > 0;
          attr.missing_fraction = col->null_fraction();
          MESA_ASSIGN_OR_RETURN(
              Discretized d,
              DiscretizeColumn(qa.context_table_, name, options.discretizer));
          attr.coded = CodedVariable{std::move(d.codes), d.cardinality};

          if (options.handle_selection_bias && col->null_count() > 0) {
            SelectionBiasOptions bias = options.bias;
            bias.outcome_codes = &qa.outcome_;
            bias.exposure_codes = &qa.exposure_;
            MESA_ASSIGN_OR_RETURN(
                SelectionBiasReport report,
                DetectSelectionBias(qa.context_table_, name, query.outcome,
                                    query.exposure, bias));
            attr.selection_biased = report.biased;
            if (report.biased) {
              MESA_ASSIGN_OR_RETURN(
                  IpwWeights w,
                  ComputeIpwWeights(qa.context_table_, name, ipw));
              attr.weights = std::move(w.weights);
            }
          }
          prepared[ci] = std::move(attr);
          return Status::OK();
        }();
      },
      options.num_threads);
  for (const Status& st : statuses) {
    MESA_RETURN_IF_ERROR(st);
  }
  for (PreparedAttribute& attr : prepared) {
    qa.attribute_index_.emplace(attr.name, qa.attributes_.size());
    qa.attributes_.push_back(std::move(attr));
  }

  // I(O;T|C): context already applied, so condition on the trivial code.
  qa.base_cmi_ = ConditionalMutualInformation(qa.outcome_, qa.exposure_,
                                              qa.CombinedCode({}), nullptr,
                                              options.entropy);
  qa.single_cmi_cache_.assign(qa.attributes_.size(),
                              std::numeric_limits<double>::quiet_NaN());
  qa.entropy_cache_.assign(qa.attributes_.size(),
                           std::numeric_limits<double>::quiet_NaN());
  qa.trap_cache_.assign(qa.attributes_.size(), -1);
  return qa;
}

int QueryAnalysis::FindAttribute(const std::string& name) const {
  auto it = attribute_index_.find(name);
  if (it == attribute_index_.end()) return -1;
  return static_cast<int>(it->second);
}

double QueryAnalysis::CmiGivenAttribute(size_t index) const {
  MESA_CHECK(index < attributes_.size());
  {
    std::lock_guard<std::mutex> lock(*cache_mu_);
    double cached = single_cmi_cache_[index];
    if (!std::isnan(cached)) {
      MESA_COUNT("qa/single_cmi/hit");
      return cached;
    }
  }
  MESA_COUNT("qa/single_cmi/miss");
  const PreparedAttribute& attr = attributes_[index];
  const std::vector<double>* w =
      attr.weights.empty() ? nullptr : &attr.weights;
  double v = ConditionalMutualInformation(outcome_, exposure_, attr.coded, w,
                                          options_.entropy);
  std::lock_guard<std::mutex> lock(*cache_mu_);
  // Two threads may race to compute the same entry; only the first store
  // counts, so evaluations_ is exactly the number of distinct cached
  // computations regardless of thread count. (The racers computed the
  // same deterministic value, so either store is fine.)
  if (std::isnan(single_cmi_cache_[index])) {
    ++evaluations_;
    single_cmi_cache_[index] = v;
  }
  return v;
}

std::vector<double> QueryAnalysis::CombinedWeights(
    const std::vector<size_t>& indices) const {
  bool any = false;
  for (size_t i : indices) {
    if (!attributes_[i].weights.empty()) {
      any = true;
      break;
    }
  }
  if (!any) return {};
  std::vector<double> w(n_, 1.0);
  for (size_t i : indices) {
    const auto& aw = attributes_[i].weights;
    if (aw.empty()) continue;
    for (size_t r = 0; r < n_; ++r) w[r] *= aw[r];
  }
  return w;
}

const CodedVariable& QueryAnalysis::CombinedCode(
    const std::vector<size_t>& indices) const {
  // Singletons alias the prepared code (no fold, and the memoized
  // fingerprint lives with the attribute).
  if (indices.size() == 1) {
    MESA_CHECK(indices[0] < attributes_.size());
    return attributes_[indices[0]].coded;
  }
  std::vector<size_t> sorted = indices;
  std::sort(sorted.begin(), sorted.end());
  std::string key = SetKey(sorted);
  {
    std::lock_guard<std::mutex> lock(*cache_mu_);
    auto it = combined_code_cache_.find(key);
    if (it != combined_code_cache_.end()) {
      MESA_COUNT("qa/combined_code/hit");
      return *it->second;
    }
  }
  MESA_COUNT("qa/combined_code/miss");
  auto code = std::make_shared<CodedVariable>();
  if (sorted.empty()) {
    *code = ConstantCode(n_);
  } else {
    std::vector<const CodedVariable*> parts;
    parts.reserve(sorted.size());
    for (size_t i : sorted) parts.push_back(&attributes_[i].coded);
    *code = CombineAll(parts, n_);
  }
  std::lock_guard<std::mutex> lock(*cache_mu_);
  // A lost compute race keeps the first insert (same pure value).
  auto [it, inserted] = combined_code_cache_.emplace(
      std::move(key), std::move(code));
  (void)inserted;
  return *it->second;
}

double QueryAnalysis::CmiGivenSet(const std::vector<size_t>& indices) const {
  if (indices.empty()) return base_cmi_;
  if (indices.size() == 1) return CmiGivenAttribute(indices[0]);
  std::vector<size_t> sorted = indices;
  std::sort(sorted.begin(), sorted.end());
  std::string key = SetKey(sorted);
  {
    std::lock_guard<std::mutex> lock(*cache_mu_);
    auto it = set_cmi_cache_.find(key);
    if (it != set_cmi_cache_.end()) {
      MESA_COUNT("qa/set_cmi/hit");
      return it->second;
    }
  }
  MESA_COUNT("qa/set_cmi/miss");

  const CodedVariable& z = CombinedCode(sorted);
  std::vector<double> w = CombinedWeights(sorted);
  double v = ConditionalMutualInformation(
      outcome_, exposure_, z, w.empty() ? nullptr : &w, options_.entropy);
  std::lock_guard<std::mutex> lock(*cache_mu_);
  // Count only the insert that wins a compute race (see CmiGivenAttribute).
  auto [it, inserted] = set_cmi_cache_.emplace(std::move(key), v);
  if (inserted) ++evaluations_;
  return it->second;
}

double QueryAnalysis::AttributeEntropy(size_t i) const {
  MESA_CHECK(i < attributes_.size());
  {
    std::lock_guard<std::mutex> lock(*cache_mu_);
    double cached = entropy_cache_[i];
    if (!std::isnan(cached)) {
      MESA_COUNT("qa/entropy/hit");
      return cached;
    }
  }
  MESA_COUNT("qa/entropy/miss");
  const PreparedAttribute& attr = attributes_[i];
  const std::vector<double>* w =
      attr.weights.empty() ? nullptr : &attr.weights;
  double h = Entropy(attr.coded, w, options_.entropy);
  std::lock_guard<std::mutex> lock(*cache_mu_);
  entropy_cache_[i] = h;
  return h;
}

double QueryAnalysis::NormalizedRedundancy(size_t a, size_t b) const {
  double h = std::min(AttributeEntropy(a), AttributeEntropy(b));
  if (h < 1e-9) return 0.0;
  return PairwiseMi(a, b) / h;
}

bool QueryAnalysis::IsExposureTrap(size_t i) const {
  MESA_CHECK(i < attributes_.size());
  {
    std::lock_guard<std::mutex> lock(*cache_mu_);
    if (trap_cache_[i] >= 0) {
      MESA_COUNT("qa/trap/hit");
      return trap_cache_[i] != 0;
    }
  }
  MESA_COUNT("qa/trap/miss");
  const PreparedAttribute& attr = attributes_[i];
  const std::vector<double>* w =
      attr.weights.empty() ? nullptr : &attr.weights;
  bool trap = false;

  if (attr.coded.cardinality <= 1) {
    trap = true;  // constant: useless, flagged here for uniformity
  }

  // Approximate FD against the outcome, the composite exposure, and every
  // exposure component (a copy of one grouping attribute must not "explain"
  // a composite grouping).
  constexpr double kFdEpsilon = 0.05;
  constexpr double kFdRatio = 0.15;
  auto fd_against = [&](const CodedVariable& q) {
    double h_q = Entropy(q, nullptr, options_.entropy);
    double h_q_given_e = ConditionalEntropy(q, attr.coded, w,
                                            options_.entropy);
    return h_q_given_e < std::max(kFdEpsilon, kFdRatio * h_q);
  };
  if (!trap) {
    trap = fd_against(outcome_) || fd_against(exposure_);
    for (size_t c = 0; !trap && c < exposure_components_.size(); ++c) {
      trap = fd_against(exposure_components_[c]);
    }
  }

  // Local identification test against the composite exposure.
  constexpr double kMaxIdentification = 0.20;
  if (!trap) {
    trap = IdentificationFraction({i}) > kMaxIdentification;
  }

  std::lock_guard<std::mutex> lock(*cache_mu_);
  trap_cache_[i] = trap ? 1 : 0;
  return trap;
}

double QueryAnalysis::IdentificationFraction(
    const std::vector<size_t>& indices) const {
  if (indices.empty()) return 0.0;
  std::vector<size_t> sorted = indices;
  std::sort(sorted.begin(), sorted.end());
  std::string key = SetKey(sorted);
  {
    std::lock_guard<std::mutex> lock(*cache_mu_);
    auto it = ident_cache_.find(key);
    if (it != ident_cache_.end()) {
      MESA_COUNT("qa/ident/hit");
      return it->second;
    }
  }
  MESA_COUNT("qa/ident/miss");

  const CodedVariable& z = CombinedCode(sorted);
  // stratum -> (T code or -2 when impure, row count)
  std::unordered_map<int32_t, std::pair<int32_t, size_t>> strata;
  size_t observed = 0;
  for (size_t r = 0; r < n_; ++r) {
    if (z.codes[r] < 0 || exposure_.codes[r] < 0) continue;
    ++observed;
    auto [sit, inserted] = strata.emplace(
        z.codes[r], std::make_pair(exposure_.codes[r], size_t{1}));
    if (!inserted) {
      if (sit->second.first != exposure_.codes[r]) sit->second.first = -2;
      ++sit->second.second;
    }
  }
  // For a low-cardinality exposure (<= 20 values: continents, airlines,
  // WHO regions) a *large* pure stratum is legitimate explanation —
  // "countries with Africa-level GDP are exactly Africa" — so strata
  // holding >= 5% of the rows are exempt. For high-cardinality exposures
  // (countries, cities, people) every pure stratum is per-value isolation,
  // i.e. row keying, and counts.
  const bool low_card_exposure = exposure_.cardinality <= 20;
  const double small_stratum = 0.05 * static_cast<double>(observed);
  size_t identified = 0;
  for (const auto& [code, st] : strata) {
    (void)code;
    if (st.first < 0) continue;
    if (low_card_exposure &&
        static_cast<double>(st.second) >= small_stratum) {
      continue;
    }
    identified += st.second;
  }
  double frac = observed == 0
                    ? 1.0
                    : static_cast<double>(identified) /
                          static_cast<double>(observed);
  std::lock_guard<std::mutex> lock(*cache_mu_);
  ident_cache_.emplace(std::move(key), frac);
  return frac;
}

double QueryAnalysis::PairwiseMi(size_t a, size_t b) const {
  MESA_CHECK(a < attributes_.size() && b < attributes_.size());
  if (a > b) std::swap(a, b);
  uint64_t key = (static_cast<uint64_t>(a) << 32) | b;
  {
    std::lock_guard<std::mutex> lock(*cache_mu_);
    auto it = pair_mi_cache_.find(key);
    if (it != pair_mi_cache_.end()) {
      MESA_COUNT("qa/pair_mi/hit");
      return it->second;
    }
  }
  MESA_COUNT("qa/pair_mi/miss");
  // Weighted when either side carries IPW weights (Proposition 3.3's
  // conditions fail exactly when missingness depends on the values).
  std::vector<double> w = CombinedWeights({a, b});
  double v = MutualInformation(attributes_[a].coded, attributes_[b].coded,
                               w.empty() ? nullptr : &w, options_.entropy);
  std::lock_guard<std::mutex> lock(*cache_mu_);
  // Count only the insert that wins a compute race (see CmiGivenAttribute).
  auto [it, inserted] = pair_mi_cache_.emplace(key, v);
  if (inserted) ++evaluations_;
  return it->second;
}

}  // namespace mesa
