#ifndef MESA_CORE_RESPONSIBILITY_H_
#define MESA_CORE_RESPONSIBILITY_H_

#include <string>
#include <vector>

#include "core/candidates.h"

namespace mesa {

/// The degree of responsibility of one attribute within an explanation
/// (Definition 2.5).
struct AttributeResponsibility {
  size_t attribute_index = 0;
  std::string name;
  /// I(O;T|E\{Ei},C) - I(O;T|E,C): the attribute's marginal contribution.
  double marginal_contribution = 0.0;
  /// Normalised share; negative when the attribute harms the explanation
  /// (negative interaction information — the paper's Hobby example).
  double responsibility = 0.0;
};

/// Computes the responsibility of every attribute of an explanation set,
/// sorted by descending responsibility. When the set has a single member
/// its responsibility is 1 by convention. A zero denominator (every
/// attribute contributes nothing) yields all-zero responsibilities.
std::vector<AttributeResponsibility> ComputeResponsibilities(
    const QueryAnalysis& analysis, const std::vector<size_t>& explanation);

}  // namespace mesa

#endif  // MESA_CORE_RESPONSIBILITY_H_
