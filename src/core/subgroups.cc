#include "core/subgroups.h"

#include <algorithm>
#include <queue>

#include "info/contingency.h"
#include "info/mutual_information.h"

namespace mesa {

namespace {

// A refinement atom: one (attribute, value) equality condition, realised as
// the set of context rows it matches.
struct Atom {
  size_t attribute = 0;  // index into the refinement attribute list
  Condition condition;
  std::vector<uint32_t> rows;  // sorted context-row indices
};

// A node of the pattern graph: a set of atoms (strictly increasing indices,
// which both dedupes and gives each node a unique generation path).
struct Node {
  std::vector<size_t> atoms;
  std::vector<uint32_t> rows;
};

struct NodeSizeLess {
  bool operator()(const Node& a, const Node& b) const {
    return a.rows.size() < b.rows.size();
  }
};

std::vector<uint32_t> IntersectSorted(const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

CodedVariable GatherCodes(const CodedVariable& full,
                          const std::vector<uint32_t>& rows) {
  CodedVariable out;
  out.cardinality = full.cardinality;
  out.codes.reserve(rows.size());
  for (uint32_t r : rows) out.codes.push_back(full.codes[r]);
  return out;
}

}  // namespace

Result<std::vector<UnexplainedSubgroup>> FindUnexplainedSubgroups(
    const Table& table, const QuerySpec& query,
    const std::vector<std::string>& explanation,
    const SubgroupOptions& options) {
  MESA_RETURN_IF_ERROR(query.Validate(table));

  // Work over the context-filtered rows.
  MESA_ASSIGN_OR_RETURN(std::vector<size_t> ctx_rows,
                        query.context.MatchingRows(table));
  Table ctx = table.TakeRows(ctx_rows);
  const size_t n = ctx.num_rows();

  // Code O, T, and the joint explanation Z once over the context table.
  MESA_ASSIGN_OR_RETURN(Discretized o,
                        DiscretizeColumn(ctx, query.outcome,
                                         options.discretizer));
  CodedVariable oc{std::move(o.codes), o.cardinality};
  CodedVariable tc;
  {
    std::vector<CodedVariable> exposure_parts;
    for (const std::string& name : query.AllExposures()) {
      MESA_ASSIGN_OR_RETURN(
          Discretized t, DiscretizeColumn(ctx, name, options.discretizer));
      exposure_parts.push_back(CodedVariable{std::move(t.codes),
                                             t.cardinality});
    }
    std::vector<const CodedVariable*> ptrs;
    for (const auto& p : exposure_parts) ptrs.push_back(&p);
    tc = CombineAll(ptrs, n);
  }

  std::vector<CodedVariable> explanation_codes;
  std::vector<const CodedVariable*> parts;
  explanation_codes.reserve(explanation.size());
  for (const std::string& name : explanation) {
    MESA_ASSIGN_OR_RETURN(Discretized d,
                          DiscretizeColumn(ctx, name, options.discretizer));
    explanation_codes.push_back(CodedVariable{std::move(d.codes),
                                              d.cardinality});
  }
  for (const auto& c : explanation_codes) parts.push_back(&c);
  CodedVariable z = CombineAll(parts, n);

  // Build refinement atoms from the allowed attributes.
  std::vector<Atom> atoms;
  size_t attr_idx = 0;
  for (const std::string& name : options.refinement_attributes) {
    if (name == query.outcome || query.IsExposure(name)) {
      ++attr_idx;
      continue;
    }
    std::vector<Value> values;
    MESA_ASSIGN_OR_RETURN(std::vector<int32_t> codes,
                          EncodeGroups(ctx, name, &values));
    if (values.size() > options.max_values_per_attribute || values.size() < 2) {
      ++attr_idx;
      continue;
    }
    for (size_t v = 0; v < values.size(); ++v) {
      Atom atom;
      atom.attribute = attr_idx;
      atom.condition = {name, CompareOp::kEq, values[v], {}};
      for (size_t r = 0; r < n; ++r) {
        if (codes[r] == static_cast<int32_t>(v)) {
          atom.rows.push_back(static_cast<uint32_t>(r));
        }
      }
      if (atom.rows.size() >= options.min_group_size) {
        atoms.push_back(std::move(atom));
      }
    }
    ++attr_idx;
  }

  // Raw outcome values for per-subgroup re-discretisation: global outcome
  // bins have no resolution inside a tight subgroup (all European salaries
  // share the top global bin), which would under-score exactly the groups
  // Algorithm 2 exists to find.
  MESA_ASSIGN_OR_RETURN(const Column* ocol, ctx.ColumnByName(query.outcome));
  const bool numeric_outcome = ocol->type() != DataType::kString;

  auto score_of = [&](const std::vector<uint32_t>& rows) {
    CodedVariable os;
    if (numeric_outcome) {
      std::vector<double> values;
      std::vector<uint32_t> present;
      values.reserve(rows.size());
      for (uint32_t r : rows) {
        if (ocol->IsValid(r)) {
          values.push_back(ocol->NumericAt(r));
          present.push_back(r);
        }
      }
      Discretized d = DiscretizeVector(values, options.discretizer);
      os.cardinality = d.cardinality;
      os.codes.assign(rows.size(), -1);
      size_t k = 0;
      for (size_t i = 0; i < rows.size(); ++i) {
        if (ocol->IsValid(rows[i])) os.codes[i] = d.codes[k++];
      }
    } else {
      os = GatherCodes(oc, rows);
    }
    CodedVariable ts = GatherCodes(tc, rows);
    CodedVariable zs = GatherCodes(z, rows);
    return ConditionalMutualInformation(os, ts, zs, nullptr, options.entropy);
  };

  // Top-down traversal with a size-ordered max-heap (Algorithm 2). Seeding
  // with the single-atom children of C; a node's children extend it with
  // atoms of a strictly later atom index, so every refinement is generated
  // at most once.
  std::priority_queue<Node, std::vector<Node>, NodeSizeLess> heap;
  for (size_t a = 0; a < atoms.size(); ++a) {
    heap.push(Node{{a}, atoms[a].rows});
  }

  std::vector<UnexplainedSubgroup> results;
  std::vector<std::vector<size_t>> result_atoms;
  while (results.size() < options.top_k && !heap.empty()) {
    Node node = heap.top();
    heap.pop();
    double score = score_of(node.rows);
    if (score > options.threshold) {
      // update(R, C'): drop C' if an ancestor is already reported.
      bool has_ancestor = false;
      for (const auto& prev : result_atoms) {
        bool subset = std::includes(node.atoms.begin(), node.atoms.end(),
                                    prev.begin(), prev.end());
        if (subset) {
          has_ancestor = true;
          break;
        }
      }
      if (!has_ancestor) {
        UnexplainedSubgroup g;
        g.refinement = query.context;
        for (size_t a : node.atoms) g.refinement.Add(atoms[a].condition);
        g.size = node.rows.size();
        g.score = score;
        results.push_back(std::move(g));
        result_atoms.push_back(node.atoms);
      }
      continue;
    }
    // Expand: add one atom with a later index and a different attribute.
    if (node.atoms.size() >= options.max_depth) continue;
    size_t last = node.atoms.back();
    for (size_t a = last + 1; a < atoms.size(); ++a) {
      if (atoms[a].attribute == atoms[last].attribute) continue;
      std::vector<uint32_t> rows = IntersectSorted(node.rows, atoms[a].rows);
      if (rows.size() < options.min_group_size) continue;
      std::vector<size_t> child_atoms = node.atoms;
      child_atoms.push_back(a);
      heap.push(Node{std::move(child_atoms), std::move(rows)});
    }
  }
  return results;
}

}  // namespace mesa
