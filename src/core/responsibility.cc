#include "core/responsibility.h"

#include <algorithm>
#include <cmath>

namespace mesa {

std::vector<AttributeResponsibility> ComputeResponsibilities(
    const QueryAnalysis& analysis, const std::vector<size_t>& explanation) {
  std::vector<AttributeResponsibility> out;
  if (explanation.empty()) return out;

  double full_cmi = analysis.CmiGivenSet(explanation);
  double denominator = 0.0;
  for (size_t i = 0; i < explanation.size(); ++i) {
    std::vector<size_t> without;
    for (size_t j = 0; j < explanation.size(); ++j) {
      if (j != i) without.push_back(explanation[j]);
    }
    double cmi_without = analysis.CmiGivenSet(without);
    AttributeResponsibility r;
    r.attribute_index = explanation[i];
    r.name = analysis.attributes()[explanation[i]].name;
    r.marginal_contribution = cmi_without - full_cmi;
    out.push_back(std::move(r));
    denominator += out.back().marginal_contribution;
  }

  if (explanation.size() == 1) {
    out[0].responsibility = 1.0;
  } else if (std::fabs(denominator) < 1e-12) {
    for (auto& r : out) r.responsibility = 0.0;
  } else {
    for (auto& r : out) {
      r.responsibility = r.marginal_contribution / denominator;
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const AttributeResponsibility& a,
                      const AttributeResponsibility& b) {
                     return a.responsibility > b.responsibility;
                   });
  return out;
}

}  // namespace mesa
