#ifndef MESA_CORE_PRUNING_H_
#define MESA_CORE_PRUNING_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/candidates.h"
#include "table/table.h"

namespace mesa {

/// Options for the across-queries (offline) pruning of Section 4.2.
struct OfflinePruneOptions {
  /// Drop attributes whose missing fraction exceeds this (paper: 0.9).
  double max_missing_fraction = 0.9;
  /// High-entropy filter: drop attributes whose number of distinct values
  /// exceeds this fraction of the (non-null) rows — wikiID-style keys.
  double max_distinct_fraction = 0.9;
  /// Also require at least this many distinct values for the high-entropy
  /// rule to apply (tiny tables would otherwise trip it).
  size_t high_entropy_min_distinct = 16;
};

/// Why an attribute was pruned.
enum class PruneReason {
  kConstant,
  kTooManyMissing,
  kHighEntropy,
  kLogicalDependency,
  kLowRelevance,
};

const char* PruneReasonName(PruneReason reason);

/// One pruning decision, for reporting.
struct PrunedAttribute {
  std::string name;
  PruneReason reason;
};

/// Result of a pruning pass.
struct PruneResult {
  std::vector<std::string> kept;
  std::vector<PrunedAttribute> pruned;
};

/// Offline (pre-processing) pruning: Simple Filtering (constant value,
/// > max missing) and the High Entropy filter. Runs on the raw table before
/// any query is known.
Result<PruneResult> OfflinePrune(const Table& table,
                                 const std::vector<std::string>& attributes,
                                 const OfflinePruneOptions& options = {});

/// Options for the query-specific (online) pruning of Section 4.2.
struct OnlinePruneOptions {
  /// Low-relevance test: drop E when I(O;E|C) and I(O;E|C,T) are both
  /// below this plus the estimator's chance level (the appendix's
  /// Relevance Test). The logical-dependency / identification tests are
  /// shared with the selection loop and live in
  /// QueryAnalysis::IsExposureTrap.
  double relevance_epsilon = 0.01;
};

/// Online pruning over a prepared analysis: logical-dependency and
/// low-relevance tests against the query's O and T. Returns indices into
/// `analysis.attributes()` that survive, plus the pruned names.
struct OnlinePruneResult {
  std::vector<size_t> kept_indices;
  std::vector<PrunedAttribute> pruned;
};
OnlinePruneResult OnlinePrune(const QueryAnalysis& analysis,
                              const OnlinePruneOptions& options = {});

}  // namespace mesa

#endif  // MESA_CORE_PRUNING_H_
