#include "core/report_format.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace mesa {

namespace {

std::string Bar(double fraction, size_t width) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  size_t filled = static_cast<size_t>(std::lround(fraction * width));
  return std::string(filled, '#') + std::string(width - filled, ' ');
}

}  // namespace

std::string FormatReport(const MesaReport& report,
                         const ReportFormatOptions& options) {
  std::ostringstream out;
  char line[256];

  out << report.query.ToSql() << "\n";
  std::snprintf(line, sizeof(line), "correlation  I(O;T|C)   = %.3f bits\n",
                report.base_cmi);
  out << line;
  double explained_pct =
      report.base_cmi > 0
          ? 100.0 * (1.0 - report.final_cmi / report.base_cmi)
          : 0.0;
  std::snprintf(line, sizeof(line),
                "explained    I(O;T|E,C) = %.3f bits   (%.0f%% explained "
                "away)\n",
                report.final_cmi, explained_pct);
  out << line;
  out << "explanation  "
      << (report.explanation.attribute_names.empty()
              ? "(none found)"
              : report.explanation.ToString())
      << "\n";

  // Responsibility bars, aligned on the longest attribute name.
  size_t name_width = 0;
  for (const auto& r : report.responsibilities) {
    name_width = std::max(name_width, r.name.size());
  }
  for (const auto& r : report.responsibilities) {
    std::string padded = r.name + std::string(name_width - r.name.size(), ' ');
    if (r.responsibility >= 0.0) {
      std::snprintf(line, sizeof(line), "  %s  %s  %.2f\n", padded.c_str(),
                    Bar(r.responsibility, options.bar_width).c_str(),
                    r.responsibility);
    } else {
      std::snprintf(line, sizeof(line),
                    "  %s  %s  %.2f (harms the explanation)\n",
                    padded.c_str(),
                    std::string(options.bar_width, '-').c_str(),
                    r.responsibility);
    }
    out << line;
  }

  if (options.show_funnel) {
    std::snprintf(line, sizeof(line),
                  "candidates   %zu -> %zu after offline -> %zu after "
                  "online pruning\n",
                  report.candidates_total, report.candidates_after_offline,
                  report.candidates_after_online);
    out << line;
  }
  if (options.show_kg_coverage && report.extraction.values_total > 0) {
    const ExtractionStats& ex = report.extraction;
    std::snprintf(line, sizeof(line),
                  "kg coverage  %zu/%zu values linked (%zu ambiguous, %zu "
                  "not found, %zu failed lookups)\n",
                  ex.values_linked, ex.values_total, ex.values_ambiguous,
                  ex.values_not_found, ex.values_failed);
    out << line;
  }
  if (options.show_trace) {
    for (const auto& step : report.explanation.trace) {
      std::snprintf(line, sizeof(line),
                    "  step  +%-20s score=%.3f  I(O;T|E)=%.3f\n",
                    step.attribute_name.c_str(), step.selection_score,
                    step.cmi_after);
      out << line;
    }
  }
  return out.str();
}

std::string FormatSubgroups(const std::vector<UnexplainedSubgroup>& groups) {
  std::ostringstream out;
  out << "unexplained data groups (largest first):\n";
  char line[256];
  size_t rank = 1;
  for (const auto& g : groups) {
    std::snprintf(line, sizeof(line), "  %2zu. size=%-7zu score=%.3f  %s\n",
                  rank++, g.size, g.score,
                  g.refinement.ToString().c_str());
    out << line;
  }
  if (groups.empty()) out << "  (none above the threshold)\n";
  return out.str();
}

}  // namespace mesa
