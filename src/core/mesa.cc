#include "core/mesa.h"

#include "common/cancel.h"
#include "common/metrics.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

namespace mesa {

namespace {

// The library's no-exceptions-across-the-public-API contract meets
// cooperative cancellation here: pipeline checkpoints unwind with
// CancelledError, and every public Mesa entry point converts it back to
// its Status (kCancelled / kDeadlineExceeded) before returning. The
// unwind is state-safe: caches only ever insert completed values
// computed outside their locks, and Preprocess leaves preprocessed_
// false so a later request retries from scratch.
template <typename Fn>
auto CatchCancel(const Fn& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const CancelledError& e) {
    return e.status();
  }
}

}  // namespace

std::string MesaReport::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "I(O;T|C) = %.3f; explanation %s brings it to %.3f",
                base_cmi, explanation.ToString().c_str(), final_cmi);
  return buf;
}

Mesa::Mesa(Table base_table, const TripleStore* kg,
           std::vector<std::string> extraction_columns, MesaOptions options)
    : base_table_(std::move(base_table)),
      kg_(kg),
      extraction_columns_(std::move(extraction_columns)),
      options_(std::move(options)) {
  if (options_.prepare.num_threads == 0) {
    options_.prepare.num_threads = options_.num_threads;
  }
  if (options_.extraction.num_threads == 0) {
    options_.extraction.num_threads = options_.num_threads;
  }
  if (kg != nullptr) WireEndpoint(std::make_shared<LocalEndpoint>(kg));
}

Mesa::Mesa(Table base_table, std::shared_ptr<KgEndpoint> endpoint,
           std::vector<std::string> extraction_columns, MesaOptions options)
    : base_table_(std::move(base_table)),
      kg_(endpoint == nullptr ? nullptr : endpoint->local_store()),
      extraction_columns_(std::move(extraction_columns)),
      options_(std::move(options)) {
  if (options_.prepare.num_threads == 0) {
    options_.prepare.num_threads = options_.num_threads;
  }
  if (options_.extraction.num_threads == 0) {
    options_.extraction.num_threads = options_.num_threads;
  }
  if (endpoint != nullptr) WireEndpoint(std::move(endpoint));
}

void Mesa::WireEndpoint(std::shared_ptr<KgEndpoint> endpoint) {
  // Fault layer: an explicit plan wins over MESA_FAULT_PLAN. A malformed
  // plan is remembered and surfaced from Preprocess — silently ignoring
  // it would fake a reliable endpoint.
  Result<FaultPlan> plan = options_.fault_plan.empty()
                               ? FaultPlan::FromEnv()
                               : FaultPlan::Parse(options_.fault_plan);
  if (!plan.ok()) {
    setup_status_ = plan.status();
    return;
  }
  endpoint_ = plan->has_faults()
                  ? std::make_shared<FaultInjectingEndpoint>(
                        std::move(endpoint), std::move(*plan))
                  : std::move(endpoint);
  kg_client_ =
      std::make_unique<ResilientKgClient>(endpoint_, options_.kg_client);
}

Status Mesa::Preprocess() {
  // Serialize concurrent first queries: the winner preprocesses, the rest
  // block on the mutex and then see preprocessed_ == true (the mutex
  // hand-off publishes every write the winner made). A failed attempt
  // leaves preprocessed_ false so a later call can retry, matching the
  // single-threaded behaviour.
  std::lock_guard<std::mutex> lock(*preprocess_mu_);
  if (preprocessed_) return Status::OK();
  Status status = CatchCancel([&] { return PreprocessLocked(); });
  if (status.ok()) preprocessed_ = true;
  return status;
}

Status Mesa::PreprocessLocked() {
  MESA_RETURN_IF_ERROR(setup_status_);
  MESA_SPAN("preprocess");

  std::vector<Table> entity_tables;
  if (kg_client_ != nullptr && !extraction_columns_.empty()) {
    MESA_ASSIGN_OR_RETURN(
        AugmentResult aug,
        AugmentTableFromKg(base_table_, extraction_columns_,
                           kg_client_.get(), options_.extraction));
    augmented_ = std::move(aug.table);
    kg_columns_ = std::move(aug.extracted_columns);
    extraction_stats_ = aug.stats;
    entity_tables = std::move(aug.entity_tables);
  } else {
    augmented_ = base_table_;
  }

  // Offline pruning is query-independent. Base-table attributes are pruned
  // at row level; extracted attributes at *entity* level (wikiID is unique
  // per country, not per developer — the high-entropy filter must see the
  // entity table to catch it, exactly as the paper prunes the extracted
  // relation E).
  if (options_.enable_offline_pruning) {
    std::vector<std::string> base_names;
    for (const auto& f : base_table_.schema().fields()) {
      base_names.push_back(f.name);
    }
    MESA_ASSIGN_OR_RETURN(
        offline_result_,
        OfflinePrune(augmented_, base_names, options_.offline_prune));
    for (const Table& et : entity_tables) {
      std::vector<std::string> attr_names;
      for (size_t c = 1; c < et.num_columns(); ++c) {
        attr_names.push_back(et.schema().field(c).name);
      }
      MESA_ASSIGN_OR_RETURN(PruneResult pr,
                            OfflinePrune(et, attr_names,
                                         options_.offline_prune));
      for (auto& name : pr.kept) {
        offline_result_.kept.push_back(std::move(name));
      }
      for (auto& p : pr.pruned) offline_result_.pruned.push_back(std::move(p));
    }
    candidate_pool_ = offline_result_.kept;
  } else {
    for (const auto& f : augmented_.schema().fields()) {
      candidate_pool_.push_back(f.name);
    }
  }
  return Status::OK();
}

Result<const Table*> Mesa::augmented_table() {
  MESA_RETURN_IF_ERROR(Preprocess());
  return &augmented_;
}

Result<Mesa::PreparedQuery> Mesa::PrepareQuery(const QuerySpec& query) {
  return CatchCancel([&]() -> Result<PreparedQuery> {
  MESA_RETURN_IF_ERROR(Preprocess());
  MESA_SPAN("prepare_query");
  PreparedQuery out;
  MESA_ASSIGN_OR_RETURN(
      QueryAnalysis analysis,
      QueryAnalysis::Prepare(augmented_, query, candidate_pool_, kg_columns_,
                             options_.prepare));
  out.analysis = std::make_shared<QueryAnalysis>(std::move(analysis));
  if (options_.enable_online_pruning) {
    OnlinePruneResult pr = OnlinePrune(*out.analysis, options_.online_prune);
    out.candidate_indices = std::move(pr.kept_indices);
    out.pruned_online = std::move(pr.pruned);
  } else {
    for (size_t i = 0; i < out.analysis->attributes().size(); ++i) {
      out.candidate_indices.push_back(i);
    }
  }
  return out;
  });
}

Result<MesaReport> Mesa::Explain(const QuerySpec& query) {
  return CatchCancel([&]() -> Result<MesaReport> {
  MESA_SPAN("explain");
  MESA_COUNT("mesa/explains");
  MESA_ASSIGN_OR_RETURN(PreparedQuery pq, PrepareQuery(query));
  MesaReport report;
  report.query = query;
  report.candidates_total = augmented_.num_columns();
  report.candidates_after_offline = candidate_pool_.size();
  report.candidates_after_online = pq.candidate_indices.size();
  report.pruned_online = pq.pruned_online;
  report.extraction = extraction_stats_;

  report.explanation =
      RunMcimr(*pq.analysis, pq.candidate_indices, options_.mcimr);
  report.responsibilities = ComputeResponsibilities(
      *pq.analysis, report.explanation.attribute_indices);
  report.base_cmi = report.explanation.base_cmi;
  report.final_cmi = report.explanation.final_cmi;
  return report;
  });
}

Result<MesaReport> Mesa::ExplainSql(const std::string& sql) {
  MESA_ASSIGN_OR_RETURN(QuerySpec query, ParseQuery(sql));
  return Explain(query);
}

Result<std::vector<Mesa::LinkRelevance>> Mesa::RankLinks(
    const QuerySpec& query) {
  return CatchCancel([&]() -> Result<std::vector<LinkRelevance>> {
  MESA_RETURN_IF_ERROR(Preprocess());
  std::vector<LinkRelevance> out;
  if (kg_ == nullptr) return out;

  // Entity-valued predicates are the followable links.
  std::set<std::string> links;
  for (EntityId id = 0; id < kg_->num_entities(); ++id) {
    for (const Triple* t : kg_->PropertiesOf(id)) {
      if (t->object.is_entity()) {
        links.insert(kg_->predicate_name(t->predicate));
      }
    }
  }
  if (links.empty()) return out;

  MESA_ASSIGN_OR_RETURN(PreparedQuery pq, PrepareQuery(query));
  std::map<std::string, LinkRelevance> by_link;
  for (size_t i = 0; i < pq.analysis->attributes().size(); ++i) {
    const PreparedAttribute& attr = pq.analysis->attributes()[i];
    if (!attr.from_kg) continue;
    // Strip a "<column>." collision prefix if present.
    std::string name = attr.name;
    size_t dot = name.find('.');
    if (dot != std::string::npos) name = name.substr(dot + 1);
    for (const std::string& link : links) {
      if (name.rfind(link + "_", 0) != 0) continue;
      double cmi = pq.analysis->CmiGivenAttribute(i);
      auto [it, inserted] = by_link.emplace(link, LinkRelevance{});
      LinkRelevance& r = it->second;
      if (inserted) {
        r.link = link;
        r.best_cmi = cmi;
        r.best_attribute = attr.name;
      } else if (cmi < r.best_cmi) {
        r.best_cmi = cmi;
        r.best_attribute = attr.name;
      }
      ++r.attributes;
      break;
    }
  }
  for (auto& [link, r] : by_link) {
    (void)link;
    out.push_back(std::move(r));
  }
  std::sort(out.begin(), out.end(),
            [](const LinkRelevance& a, const LinkRelevance& b) {
              return a.best_cmi < b.best_cmi;
            });
  return out;
  });
}

Result<std::vector<UnexplainedSubgroup>> Mesa::FindSubgroups(
    const QuerySpec& query, const std::vector<std::string>& explanation,
    SubgroupOptions options) {
  return CatchCancel([&]() -> Result<std::vector<UnexplainedSubgroup>> {
  MESA_RETURN_IF_ERROR(Preprocess());
  if (options.refinement_attributes.empty()) {
    // Default: categorical columns of the *base* table (the paper refines
    // on dataset attributes like Continent and Currency).
    for (const auto& f : base_table_.schema().fields()) {
      if (f.type == DataType::kString && !query.IsExposure(f.name) &&
          f.name != query.outcome) {
        options.refinement_attributes.push_back(f.name);
      }
    }
  }
  return FindUnexplainedSubgroups(augmented_, query, explanation, options);
  });
}

}  // namespace mesa
