#ifndef MESA_CORE_CANDIDATES_H_
#define MESA_CORE_CANDIDATES_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "info/mutual_information.h"
#include "missing/ipw.h"
#include "missing/selection_bias.h"
#include "query/query_spec.h"
#include "stats/discretizer.h"
#include "table/table.h"

namespace mesa {

/// One candidate confounding attribute, prepared for estimation: coded over
/// the context-filtered rows, with selection-bias diagnosis and IPW weights
/// when needed.
struct PreparedAttribute {
  std::string name;
  CodedVariable coded;
  double missing_fraction = 0.0;
  bool from_kg = false;
  bool selection_biased = false;
  /// IPW weights over context rows; empty when unweighted estimation is
  /// appropriate (no nulls, no detected bias, or weighting disabled).
  std::vector<double> weights;
};

/// Options controlling preparation.
struct PrepareOptions {
  DiscretizerOptions discretizer;
  /// Run the selection-bias detector on attributes with missing values and
  /// attach IPW weights where it fires (Section 3.2). Disabling this gives
  /// the complete-case estimator everywhere.
  bool handle_selection_bias = true;
  SelectionBiasOptions bias;
  IpwOptions ipw;  ///< covariates default to {exposure, outcome} if empty.
  EntropyOptions entropy;
  /// Concurrency cap for this analysis's parallel paths (candidate
  /// preparation and the score caches' fan-out callers). 0 = the global
  /// pool size (MESA_NUM_THREADS env var / SetNumThreads). Results are
  /// bit-identical at any setting — this is a resource knob, not a
  /// semantics knob (see common/parallel.h).
  size_t num_threads = 0;
};

/// Everything the explanation algorithms need about one query over one
/// (possibly KG-augmented) table: the context-filtered rows, coded outcome/
/// exposure, prepared candidates, and cached information-theoretic scores.
/// All scores are conditioned on the query context C by construction
/// (estimation happens over the rows matching C).
class QueryAnalysis {
 public:
  /// Prepares the analysis. `candidates` lists candidate attribute column
  /// names (the paper's A = E ∪ T \ {O, T}); `kg_columns` marks which of
  /// them came from external extraction (for reporting only).
  static Result<QueryAnalysis> Prepare(
      const Table& table, const QuerySpec& query,
      const std::vector<std::string>& candidates,
      const std::vector<std::string>& kg_columns = {},
      const PrepareOptions& options = {});

  /// Rows matching the query context.
  size_t num_rows() const { return n_; }
  const Table& context_table() const { return context_table_; }
  const QuerySpec& query() const { return query_; }
  const PrepareOptions& options() const { return options_; }

  const CodedVariable& outcome() const { return outcome_; }
  const CodedVariable& exposure() const { return exposure_; }

  const std::vector<PreparedAttribute>& attributes() const {
    return attributes_;
  }
  /// Index of a candidate by name, or -1.
  int FindAttribute(const std::string& name) const;

  /// I(O; T | C) — the unconditioned association to be explained.
  double BaseCmi() const { return base_cmi_; }

  /// I(O; T | C, E_i) for a single candidate (cached).
  double CmiGivenAttribute(size_t index) const;

  /// I(O; T | C, E) for a set of candidates, estimated on the joint
  /// conditioning code (cached by index set).
  double CmiGivenSet(const std::vector<size_t>& indices) const;

  /// The composite conditioning code over a candidate index set, built
  /// once per distinct set and cached for the analysis lifetime. Every
  /// consumer of a set encoding (CmiGivenSet, IdentificationFraction,
  /// MCIMR's responsibility re-checks, the baselines) goes through here,
  /// so the CombinePair fold — and the content fingerprint the
  /// sufficient-statistics cache keys on — is computed once per set
  /// instead of once per use. Singletons alias the prepared attribute's
  /// code; the empty set is the constant (trivial) code. The reference
  /// stays valid as long as the analysis lives.
  const CodedVariable& CombinedCode(const std::vector<size_t>& indices) const;

  /// I(E_a; E_b) between candidates (cached, symmetric).
  double PairwiseMi(size_t a, size_t b) const;

  /// H(E_i) of a candidate (cached); used to normalise redundancy.
  double AttributeEntropy(size_t i) const;

  /// Normalised redundancy I(E_a;E_b) / min(H(E_a), H(E_b)) in [0, ~1] —
  /// the NMIFS refinement of the MRMR redundancy term. Raw MI between two
  /// attributes that are both functions of a common key (two properties of
  /// Country) is structurally inflated; normalising keeps the redundancy
  /// penalty comparable across attribute granularities.
  double NormalizedRedundancy(size_t a, size_t b) const;

  /// True when candidate `i` is an exposure trap (Lemma A.2): it
  /// approximately functionally determines the exposure or one of its
  /// components (H(T|E) below max(0.05 bits, 0.15·H(T))), or it identifies
  /// the exposure on more than 20% of rows (small pure strata; large pure
  /// strata are exempt for low-cardinality exposures). Such attributes
  /// "explain" any correlation trivially and are excluded both by online
  /// pruning and inside NextBestAtt — which is why MCIMR without pruning
  /// (MESA-) still produces sound explanations, matching the paper's
  /// "pruning has little effect on quality". Cached per candidate.
  bool IsExposureTrap(size_t i) const;

  /// Per-component exposure codes (size >= 1; [0] is the primary).
  const std::vector<CodedVariable>& exposure_components() const {
    return exposure_components_;
  }

  /// Fraction of (jointly observed) rows living in strata of the combined
  /// conditioning code that contain a single exposure value. In such strata
  /// the set *identifies* T, so Lemma A.2 applies locally and the set
  /// "explains" trivially. Both MCIMR and Brute-Force reject conditioning
  /// sets whose identification fraction is too high (cached by index set).
  double IdentificationFraction(const std::vector<size_t>& indices) const;

  /// Exact count of distinct CMI/MI estimator evaluations cached by this
  /// analysis; lets the benchmarks report estimator work the way the
  /// paper does. Under concurrent scoring two threads may race to compute
  /// the same (pure, identical) entry, but only the store that wins the
  /// cache insert is counted, so the count equals the serial count at any
  /// thread count (asserted in tests/parallel_test.cc).
  size_t estimator_evaluations() const {
    std::lock_guard<std::mutex> lock(*cache_mu_);
    return evaluations_;
  }

 private:
  /// Combined IPW weights for a set (product of each member's weights;
  /// empty if no member is weighted).
  std::vector<double> CombinedWeights(const std::vector<size_t>& indices) const;

  Table context_table_;
  QuerySpec query_;
  PrepareOptions options_;
  size_t n_ = 0;
  CodedVariable outcome_;
  CodedVariable exposure_;
  std::vector<CodedVariable> exposure_components_;
  std::vector<PreparedAttribute> attributes_;
  std::unordered_map<std::string, size_t> attribute_index_;
  double base_cmi_ = 0.0;

  /// Guards every cache below. The scoring loops of MCIMR and the
  /// baselines run concurrently over one analysis; lookups and inserts are
  /// serialized but the estimator computations themselves run outside the
  /// lock (a lost race recomputes the same pure value — harmless).
  /// shared_ptr keeps QueryAnalysis movable.
  mutable std::shared_ptr<std::mutex> cache_mu_ =
      std::make_shared<std::mutex>();
  mutable std::vector<double> single_cmi_cache_;
  mutable std::vector<double> entropy_cache_;
  mutable std::unordered_map<uint64_t, double> pair_mi_cache_;
  mutable std::unordered_map<std::string, double> set_cmi_cache_;
  /// Composite conditioning codes by sorted index-set key ("" = trivial).
  /// shared_ptr so returned references survive rehashing and moves.
  mutable std::unordered_map<std::string,
                             std::shared_ptr<const CodedVariable>>
      combined_code_cache_;
  mutable std::unordered_map<std::string, double> ident_cache_;
  mutable std::vector<int8_t> trap_cache_;  ///< -1 unknown, 0 no, 1 yes
  mutable size_t evaluations_ = 0;
};

}  // namespace mesa

#endif  // MESA_CORE_CANDIDATES_H_
