#include "core/mcimr.h"

#include <algorithm>
#include <limits>

#include "common/cancel.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "info/contingency.h"

namespace mesa {

std::string Explanation::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < attribute_names.size(); ++i) {
    if (i > 0) out += ", ";
    out += attribute_names[i];
  }
  out += "}";
  return out;
}

int NextBestAttribute(const QueryAnalysis& analysis,
                      const std::vector<size_t>& candidates,
                      const std::vector<size_t>& selected,
                      const McimrOptions& options, double* score_out) {
  // The redundancy penalty is scaled into CMI units: a fully redundant
  // attribute (normalised redundancy 1) costs as much as zero explanatory
  // progress.
  const double red_scale = options.redundancy_weight * analysis.BaseCmi();
  const double inf = std::numeric_limits<double>::infinity();
  // Score every candidate concurrently (ineligible ones stay at +inf),
  // then take the argmin serially in candidate order — the same value and
  // tie-breaking as a serial scan, at any thread count.
  std::vector<double> scores(candidates.size(), inf);
  ParallelFor(
      0, candidates.size(),
      [&](size_t k) {
        MESA_SPAN("score_candidate");
        CancelCheckpoint();  // per-candidate scoring checkpoint
        size_t cand = candidates[k];
        if (std::find(selected.begin(), selected.end(), cand) !=
            selected.end()) {
          return;
        }
        // Min-CI term: I(O;T|C,E). Individually unimportant attributes are
        // excluded outright (Key Assumption, §2.2), as are single-attribute
        // exposure identifiers (Lemma A.2).
        double v1 = analysis.CmiGivenAttribute(cand);
        if (v1 > analysis.BaseCmi() *
                     (1.0 - options.individual_relevance_margin)) {
          return;
        }
        if (options.exclude_exposure_traps && analysis.IsExposureTrap(cand)) {
          return;
        }
        // Min-Redundancy term: mean redundancy against selected attributes.
        double v2 = 0.0;
        if (options.use_redundancy_term && !selected.empty()) {
          for (size_t s : selected) {
            v2 += options.normalize_redundancy
                      ? red_scale * analysis.NormalizedRedundancy(cand, s)
                      : analysis.PairwiseMi(cand, s);
          }
          v2 /= static_cast<double>(selected.size());
        }
        scores[k] = v1 + v2;
      },
      analysis.options().num_threads);
  int best = -1;
  double best_score = inf;
  for (size_t k = 0; k < candidates.size(); ++k) {
    if (scores[k] < best_score) {
      best_score = scores[k];
      best = static_cast<int>(candidates[k]);
    }
  }
  if (score_out != nullptr) *score_out = best_score;
  return best;
}

Explanation RunMcimr(const QueryAnalysis& analysis,
                     const std::vector<size_t>& candidate_indices,
                     const McimrOptions& options) {
  MESA_SPAN("mcimr");
  Explanation ex;
  ex.base_cmi = analysis.BaseCmi();
  ex.final_cmi = ex.base_cmi;

  std::vector<size_t> selected;
  std::vector<size_t> rejected;  // identification-guard rejections
  double current_cmi = ex.base_cmi;
  for (size_t iter = 0; iter < options.max_size; ++iter) {
    if (current_cmi < options.cmi_floor) break;  // fully explained
    MESA_SPAN("round");
    MESA_COUNT("mcimr/rounds");
    CancelCheckpoint();  // per-round checkpoint

    // Pick the best candidate that does not turn the conditioning set into
    // an exposure identifier (Lemma A.2 applied to sets).
    int next = -1;
    double score = 0.0;
    for (;;) {
      std::vector<size_t> excluded = selected;
      excluded.insert(excluded.end(), rejected.begin(), rejected.end());
      next = NextBestAttribute(analysis, candidate_indices, excluded,
                               options, &score);
      if (next < 0) break;
      if (options.max_identification_fraction > 0.0) {
        std::vector<size_t> tentative = selected;
        tentative.push_back(static_cast<size_t>(next));
        if (analysis.IdentificationFraction(tentative) >
            options.max_identification_fraction) {
          MESA_COUNT("mcimr/identification_rejections");
          rejected.push_back(static_cast<size_t>(next));
          continue;
        }
      }
      break;
    }
    if (next < 0) break;  // candidates exhausted
    size_t idx = static_cast<size_t>(next);

    if (options.responsibility_stopping) {
      // Responsibility test (Lemma 4.2): if O ⟂ E_next | E_selected the
      // newcomer's responsibility is <= 0 — return what we have. On large
      // samples the permutation count drops to the minimum that still
      // resolves alpha = 0.05 (each permutation costs a full O(n) CMI
      // pass; at millions of rows the test's power is not the constraint).
      const CodedVariable& z = analysis.CombinedCode(selected);
      IndependenceOptions ind = options.independence;
      if (analysis.num_rows() > 400'000) {
        ind.num_permutations = std::min<size_t>(ind.num_permutations, 39);
      }
      IndependenceResult test = ConditionalIndependenceTest(
          analysis.outcome(), analysis.attributes()[idx].coded, z, ind);
      if (test.independent) {
        MESA_COUNT("mcimr/responsibility_stops");
        ex.stopped_by_responsibility = true;
        break;
      }
    }

    selected.push_back(idx);
    double cmi_after = analysis.CmiGivenSet(selected);
    double required = std::max(
        options.min_improvement,
        options.min_relative_improvement * ex.base_cmi);
    if (options.responsibility_stopping &&
        cmi_after > current_cmi - required) {
      // No further improvement: reject the newcomer and stop.
      selected.pop_back();
      ex.stopped_by_responsibility = true;
      break;
    }
    ex.trace.push_back({idx, analysis.attributes()[idx].name, score,
                        cmi_after});
    ex.final_cmi = cmi_after;
    current_cmi = cmi_after;
  }

  ex.attribute_indices = selected;
  for (size_t s : selected) {
    ex.attribute_names.push_back(analysis.attributes()[s].name);
  }
  return ex;
}

}  // namespace mesa
