#include "core/baselines/hypdb.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/baselines/brute_force.h"
#include "core/responsibility.h"

namespace mesa {

Result<Explanation> RunHypDb(const QueryAnalysis& analysis,
                             const std::vector<size_t>& candidate_indices,
                             const HypDbOptions& options) {
  MESA_SPAN("baseline_hypdb");
  // Cap the candidate pool by uniform sampling, as the paper did to make
  // HypDB terminate.
  std::vector<size_t> pool = candidate_indices;
  if (pool.size() > options.max_attributes) {
    Rng rng(options.sample_seed);
    rng.Shuffle(pool);
    pool.resize(options.max_attributes);
    std::sort(pool.begin(), pool.end());
  }

  // Confounder criteria: E must be associated with T, and with O given T.
  const CodedVariable& o = analysis.outcome();
  const CodedVariable& t = analysis.exposure();
  const EntropyOptions& eopts = analysis.options().entropy;
  const CodedVariable& trivial = analysis.CombinedCode({});

  // Confounder criteria: E associated with T and with O (marginally — a
  // group-level attribute has no within-T variation, so a conditional test
  // against T would reject every true confounder). Thresholds are adjusted
  // for the plug-in MI's chance level ~ (K_e-1)(K_x-1) / (2 N ln 2).
  const double ln2 = 0.6931471805599453;
  const double n = static_cast<double>(t.codes.size());
  // The two dependence tests are independent per attribute; evaluate them
  // concurrently and collect the survivors in pool order.
  std::vector<char> passes(pool.size(), 0);
  ParallelFor(
      0, pool.size(),
      [&](size_t i) {
        const PreparedAttribute& attr = analysis.attributes()[pool[i]];
        const std::vector<double>* w =
            attr.weights.empty() ? nullptr : &attr.weights;
        double ke = std::max(1, attr.coded.cardinality - 1);
        double bias_t = ke * std::max(1, t.cardinality - 1) / (2.0 * n * ln2);
        double bias_o = ke * std::max(1, o.cardinality - 1) / (2.0 * n * ln2);
        double mi_et =
            ConditionalMutualInformation(attr.coded, t, trivial, w, eopts);
        if (mi_et <= options.dependence_epsilon + bias_t) return;
        double mi_eo =
            ConditionalMutualInformation(attr.coded, o, trivial, w, eopts);
        if (mi_eo <= options.dependence_epsilon + bias_o) return;
        passes[i] = 1;
      },
      analysis.options().num_threads);
  std::vector<size_t> confounders;
  for (size_t i = 0; i < pool.size(); ++i) {
    if (passes[i]) confounders.push_back(pool[i]);
  }

  Explanation ex;
  ex.base_cmi = analysis.BaseCmi();
  ex.final_cmi = ex.base_cmi;
  if (confounders.empty()) return ex;

  // Exponential subset search over the confounders for the best joint
  // conditioning set. To keep the *this* process from running 10 hours,
  // trim the pool to the strongest 18 individual contributors first when
  // necessary — the search over subsets is still exponential in that pool.
  std::vector<size_t> search_pool = confounders;
  constexpr size_t kMaxSearchPool = 18;
  if (search_pool.size() > kMaxSearchPool) {
    std::vector<std::pair<double, size_t>> scored;
    for (size_t idx : search_pool) {
      scored.emplace_back(analysis.CmiGivenAttribute(idx), idx);
    }
    std::sort(scored.begin(), scored.end());
    search_pool.clear();
    for (size_t i = 0; i < kMaxSearchPool; ++i) {
      search_pool.push_back(scored[i].second);
    }
    std::sort(search_pool.begin(), search_pool.end());
  }

  BruteForceOptions bf;
  bf.max_size = options.max_size;
  bf.max_subsets = 3'000'000;
  MESA_ASSIGN_OR_RETURN(Explanation best,
                        RunBruteForce(analysis, search_pool, bf));
  if (best.final_cmi >= best.base_cmi) return ex;  // nothing helped

  // Rank the chosen attributes by responsibility (descending), the order
  // HypDB reports confounders in.
  std::vector<AttributeResponsibility> resp =
      ComputeResponsibilities(analysis, best.attribute_indices);
  Explanation out;
  out.base_cmi = best.base_cmi;
  out.final_cmi = best.final_cmi;
  for (const auto& r : resp) {
    out.attribute_indices.push_back(r.attribute_index);
    out.attribute_names.push_back(r.name);
  }
  return out;
}

}  // namespace mesa
