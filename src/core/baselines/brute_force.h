#ifndef MESA_CORE_BASELINES_BRUTE_FORCE_H_
#define MESA_CORE_BASELINES_BRUTE_FORCE_H_

#include <vector>

#include "common/result.h"
#include "core/mcimr.h"

namespace mesa {

/// Options for the exhaustive baseline.
struct BruteForceOptions {
  size_t max_size = 5;
  /// Abort if the number of subsets to score would exceed this (the paper
  /// could only run Brute-Force on the small Covid-19/Forbes datasets).
  size_t max_subsets = 2'000'000;
  /// Skip subsets whose joint code identifies the exposure on more than
  /// this fraction of rows (Lemma A.2's trap in set form; <= 0 disables).
  double max_identification_fraction = 0.35;
};

/// The optimal solution of Definition 2.3 by exhaustive search: scores
/// every non-empty subset of `candidate_indices` up to `max_size` by
/// I(O;T|E,C) * |E| and returns the argmin (ties broken toward smaller,
/// then lexicographically earlier sets, for determinism).
Result<Explanation> RunBruteForce(const QueryAnalysis& analysis,
                                  const std::vector<size_t>& candidate_indices,
                                  const BruteForceOptions& options = {});

}  // namespace mesa

#endif  // MESA_CORE_BASELINES_BRUTE_FORCE_H_
