#include "core/baselines/brute_force.h"

#include <algorithm>
#include <limits>

#include "common/metrics.h"

#include "common/parallel.h"

namespace mesa {

namespace {

// C(n, k) with saturation.
size_t Choose(size_t n, size_t k, size_t cap) {
  size_t result = 1;
  for (size_t i = 0; i < k; ++i) {
    if (result > cap) return cap + 1;
    result = result * (n - i) / (i + 1);
  }
  return result;
}

// Advances `pick` to the next k-combination of [0, n); false when done.
bool NextCombination(std::vector<size_t>& pick, size_t n) {
  const size_t k = pick.size();
  for (size_t ii = k; ii > 0; --ii) {
    size_t i = ii - 1;
    if (pick[i] < i + n - k) {
      ++pick[i];
      for (size_t j = i + 1; j < k; ++j) pick[j] = pick[j - 1] + 1;
      return true;
    }
  }
  return false;
}

}  // namespace

Result<Explanation> RunBruteForce(const QueryAnalysis& analysis,
                                  const std::vector<size_t>& candidate_indices,
                                  const BruteForceOptions& options) {
  MESA_SPAN("baseline_brute_force");
  const size_t n = candidate_indices.size();
  size_t total = 0;
  for (size_t k = 1; k <= std::min(options.max_size, n); ++k) {
    total += Choose(n, k, options.max_subsets);
    if (total > options.max_subsets) {
      return Status::FailedPrecondition(
          "brute force infeasible: more than " +
          std::to_string(options.max_subsets) + " subsets over " +
          std::to_string(n) + " candidates");
    }
  }

  Explanation best;
  best.base_cmi = analysis.BaseCmi();
  best.final_cmi = best.base_cmi;
  double best_objective = std::numeric_limits<double>::infinity();
  const double inf = std::numeric_limits<double>::infinity();

  // Enumerate subsets of each size k via the combinations odometer, in
  // blocks: each block's subsets are scored on the thread pool, then the
  // winner is folded in serially in enumeration order — identical result
  // to the fully serial scan.
  constexpr size_t kBlock = 1024;
  std::vector<std::vector<size_t>> block;
  std::vector<double> block_cmi;
  block.reserve(kBlock);
  auto flush_block = [&] {
    if (block.empty()) return;
    MESA_COUNT_N("baseline/brute_force_subsets", block.size());
    block_cmi.assign(block.size(), inf);
    ParallelFor(
        0, block.size(),
        [&](size_t bi) {
          const std::vector<size_t>& subset = block[bi];
          if (options.max_identification_fraction > 0.0 &&
              analysis.IdentificationFraction(subset) >
                  options.max_identification_fraction) {
            return;  // guarded out; stays +inf
          }
          block_cmi[bi] = analysis.CmiGivenSet(subset);
        },
        analysis.options().num_threads);
    for (size_t bi = 0; bi < block.size(); ++bi) {
      if (block_cmi[bi] == inf) continue;
      double objective =
          block_cmi[bi] * static_cast<double>(block[bi].size());
      if (objective < best_objective - 1e-12) {
        best_objective = objective;
        best.attribute_indices = block[bi];
        best.final_cmi = block_cmi[bi];
      }
    }
    block.clear();
  };
  std::vector<size_t> pick;
  for (size_t k = 1; k <= std::min(options.max_size, n); ++k) {
    pick.assign(k, 0);
    for (size_t i = 0; i < k; ++i) pick[i] = i;
    for (;;) {
      std::vector<size_t> subset(k);
      for (size_t i = 0; i < k; ++i) subset[i] = candidate_indices[pick[i]];
      block.push_back(std::move(subset));
      if (block.size() >= kBlock) flush_block();
      if (!NextCombination(pick, n)) break;
    }
  }
  flush_block();

  best.attribute_names.clear();
  for (size_t s : best.attribute_indices) {
    best.attribute_names.push_back(analysis.attributes()[s].name);
  }
  return best;
}

}  // namespace mesa
