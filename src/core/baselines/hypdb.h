#ifndef MESA_CORE_BASELINES_HYPDB_H_
#define MESA_CORE_BASELINES_HYPDB_H_

#include <vector>

#include "common/result.h"
#include "core/mcimr.h"

namespace mesa {

/// Options for the HypDB-style baseline.
struct HypDbOptions {
  size_t max_size = 5;
  /// HypDB's subset search is exponential in the candidate count (the
  /// paper had to cap it at 50 attributes, sampled uniformly, to finish);
  /// when more candidates are passed in, a uniform sample of this size is
  /// taken.
  size_t max_attributes = 50;
  uint64_t sample_seed = 7;
  /// Dependence thresholds for the confounder tests (in bits).
  double dependence_epsilon = 0.01;
};

/// A reimplementation of the HypDB-style causal baseline (Salimi et al.
/// 2018) on our estimator stack:
///   1. keep candidates that pass the confounder criteria — dependence with
///      the exposure (I(E;T|C) > ε) and with the outcome given the exposure
///      (I(E;O|C,T) > ε);
///   2. exhaustively search subsets (size <= k) of the surviving
///      candidates — the exponential step — for the one minimising the
///      joint I(O;T|C,E);
///   3. rank the chosen attributes by individual responsibility.
/// The exponential step is why HypDB cannot scale to KG-sized candidate
/// sets (Section 5.1).
Result<Explanation> RunHypDb(const QueryAnalysis& analysis,
                             const std::vector<size_t>& candidate_indices,
                             const HypDbOptions& options = {});

}  // namespace mesa

#endif  // MESA_CORE_BASELINES_HYPDB_H_
