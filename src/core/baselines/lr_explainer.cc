#include "core/baselines/lr_explainer.h"

#include <algorithm>
#include <cmath>

#include "common/metrics.h"
#include "stats/ols.h"

namespace mesa {

Result<Explanation> RunLrExplainer(
    const QueryAnalysis& analysis, const std::vector<size_t>& candidate_indices,
    const LrExplainerOptions& options) {
  MESA_SPAN("baseline_lr");
  Explanation ex;
  ex.base_cmi = analysis.BaseCmi();
  ex.final_cmi = ex.base_cmi;
  const Table& ctx = analysis.context_table();
  const size_t n = ctx.num_rows();
  if (candidate_indices.empty()) return ex;

  // Outcome vector (null outcome rows enter with the mean — OLS needs a
  // rectangular sample and the baseline should see the same rows MESA does).
  MESA_ASSIGN_OR_RETURN(const Column* ocol,
                        ctx.ColumnByName(analysis.query().outcome));
  std::vector<double> y(n, 0.0);
  double ymean = 0.0;
  size_t ycount = 0;
  for (size_t r = 0; r < n; ++r) {
    if (ocol->IsValid(r)) {
      ymean += ocol->NumericAt(r);
      ++ycount;
    }
  }
  if (ycount == 0) return Status::InvalidArgument("outcome entirely null");
  ymean /= static_cast<double>(ycount);
  for (size_t r = 0; r < n; ++r) {
    y[r] = ocol->IsValid(r) ? ocol->NumericAt(r) : ymean;
  }

  // Standardised feature per candidate: numeric value or dense code, with
  // nulls at the mean.
  std::vector<std::vector<double>> x(n,
                                     std::vector<double>(candidate_indices.size()));
  for (size_t c = 0; c < candidate_indices.size(); ++c) {
    const PreparedAttribute& attr =
        analysis.attributes()[candidate_indices[c]];
    std::vector<double> raw(n, 0.0);
    std::vector<uint8_t> ok(n, 0);
    MESA_ASSIGN_OR_RETURN(const Column* col, ctx.ColumnByName(attr.name));
    for (size_t r = 0; r < n; ++r) {
      if (col->IsNull(r)) continue;
      raw[r] = col->type() == DataType::kString
                   ? static_cast<double>(attr.coded.codes[r])
                   : col->NumericAt(r);
      ok[r] = 1;
    }
    double mean = 0.0, cnt = 0.0;
    for (size_t r = 0; r < n; ++r) {
      if (ok[r]) {
        mean += raw[r];
        cnt += 1.0;
      }
    }
    mean = cnt > 0.0 ? mean / cnt : 0.0;
    double var = 0.0;
    for (size_t r = 0; r < n; ++r) {
      if (ok[r]) {
        double d = raw[r] - mean;
        var += d * d;
      }
    }
    double sd = cnt > 1.0 ? std::sqrt(var / (cnt - 1.0)) : 1.0;
    if (sd <= 0.0) sd = 1.0;
    for (size_t r = 0; r < n; ++r) {
      x[r][c] = ok[r] ? (raw[r] - mean) / sd : 0.0;
    }
  }

  MESA_ASSIGN_OR_RETURN(OlsFit fit, FitOls(x, y));

  // Coefficient j+1 belongs to candidate j (0 is the intercept).
  std::vector<std::pair<double, size_t>> ranked;  // (-|coef|, candidate)
  for (size_t c = 0; c < candidate_indices.size(); ++c) {
    if (fit.p_values[c + 1] < options.p_value_threshold) {
      ranked.emplace_back(-std::fabs(fit.coefficients[c + 1]),
                          candidate_indices[c]);
    }
  }
  std::sort(ranked.begin(), ranked.end());
  for (size_t i = 0; i < std::min(options.max_size, ranked.size()); ++i) {
    ex.attribute_indices.push_back(ranked[i].second);
    ex.attribute_names.push_back(
        analysis.attributes()[ranked[i].second].name);
  }
  if (!ex.attribute_indices.empty()) {
    ex.final_cmi = analysis.CmiGivenSet(ex.attribute_indices);
  }
  return ex;
}

}  // namespace mesa
