#ifndef MESA_CORE_BASELINES_TOP_K_H_
#define MESA_CORE_BASELINES_TOP_K_H_

#include <vector>

#include "core/mcimr.h"

namespace mesa {

/// The Top-K baseline of Section 5: ranks candidates by their individual
/// explanation power alone (ascending I(O;T|C,E)) and takes the best k —
/// i.e. the Min-CI criterion without the Min-Redundancy term, so highly
/// correlated attributes (Year Low F / Year Avg F) get picked together.
Explanation RunTopK(const QueryAnalysis& analysis,
                    const std::vector<size_t>& candidate_indices, size_t k);

}  // namespace mesa

#endif  // MESA_CORE_BASELINES_TOP_K_H_
