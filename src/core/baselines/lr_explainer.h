#ifndef MESA_CORE_BASELINES_LR_EXPLAINER_H_
#define MESA_CORE_BASELINES_LR_EXPLAINER_H_

#include <vector>

#include "common/result.h"
#include "core/mcimr.h"

namespace mesa {

/// Options for the linear-regression baseline.
struct LrExplainerOptions {
  size_t max_size = 5;
  double p_value_threshold = 0.05;
};

/// The LR baseline of Section 5: OLS of the outcome on all candidate
/// attributes (standardised; categoricals enter as dense codes, nulls as
/// the column mean), then the top-k attributes by |standardised
/// coefficient| among those with p < .05. The paper observes it often
/// fails to produce any explanation — when no coefficient clears the
/// p-value bar, the returned explanation is empty (matching the "-" cells
/// of Table 2).
Result<Explanation> RunLrExplainer(const QueryAnalysis& analysis,
                                   const std::vector<size_t>& candidate_indices,
                                   const LrExplainerOptions& options = {});

}  // namespace mesa

#endif  // MESA_CORE_BASELINES_LR_EXPLAINER_H_
