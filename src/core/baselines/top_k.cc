#include "core/baselines/top_k.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/parallel.h"

namespace mesa {

Explanation RunTopK(const QueryAnalysis& analysis,
                    const std::vector<size_t>& candidate_indices, size_t k) {
  MESA_SPAN("baseline_topk");
  Explanation ex;
  ex.base_cmi = analysis.BaseCmi();
  ex.final_cmi = ex.base_cmi;

  // Per-candidate scores are independent; the sort key (score, index) is
  // unique, so the ranking is deterministic at any thread count.
  std::vector<std::pair<double, size_t>> scored(candidate_indices.size());
  ParallelFor(
      0, candidate_indices.size(),
      [&](size_t i) {
        size_t idx = candidate_indices[i];
        scored[i] = {analysis.CmiGivenAttribute(idx), idx};
      },
      analysis.options().num_threads);
  std::sort(scored.begin(), scored.end());
  for (size_t i = 0; i < std::min(k, scored.size()); ++i) {
    ex.attribute_indices.push_back(scored[i].second);
    ex.attribute_names.push_back(
        analysis.attributes()[scored[i].second].name);
    ex.trace.push_back({scored[i].second,
                        analysis.attributes()[scored[i].second].name,
                        scored[i].first, 0.0});
  }
  if (!ex.attribute_indices.empty()) {
    ex.final_cmi = analysis.CmiGivenSet(ex.attribute_indices);
    ex.trace.back().cmi_after = ex.final_cmi;
  }
  return ex;
}

}  // namespace mesa
