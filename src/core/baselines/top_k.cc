#include "core/baselines/top_k.h"

#include <algorithm>

namespace mesa {

Explanation RunTopK(const QueryAnalysis& analysis,
                    const std::vector<size_t>& candidate_indices, size_t k) {
  Explanation ex;
  ex.base_cmi = analysis.BaseCmi();
  ex.final_cmi = ex.base_cmi;

  std::vector<std::pair<double, size_t>> scored;
  scored.reserve(candidate_indices.size());
  for (size_t idx : candidate_indices) {
    scored.emplace_back(analysis.CmiGivenAttribute(idx), idx);
  }
  std::sort(scored.begin(), scored.end());
  for (size_t i = 0; i < std::min(k, scored.size()); ++i) {
    ex.attribute_indices.push_back(scored[i].second);
    ex.attribute_names.push_back(
        analysis.attributes()[scored[i].second].name);
    ex.trace.push_back({scored[i].second,
                        analysis.attributes()[scored[i].second].name,
                        scored[i].first, 0.0});
  }
  if (!ex.attribute_indices.empty()) {
    ex.final_cmi = analysis.CmiGivenSet(ex.attribute_indices);
    ex.trace.back().cmi_after = ex.final_cmi;
  }
  return ex;
}

}  // namespace mesa
