#ifndef MESA_CORE_SUBGROUPS_H_
#define MESA_CORE_SUBGROUPS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "info/entropy.h"
#include "query/query_spec.h"
#include "stats/discretizer.h"
#include "table/table.h"

namespace mesa {

/// Options for the Top-k unexplained-subgroups search (Algorithm 2).
struct SubgroupOptions {
  size_t top_k = 5;
  /// τ: a refinement whose explanation score I(O;T|C',E) exceeds this is
  /// unexplained. The paper suggests setting it relative to the original
  /// explanation score.
  double threshold = 0.2;
  /// Attributes whose value assignments form the refinement atoms. Only
  /// attributes with at most `max_values_per_attribute` distinct values
  /// participate (the paper assumes binned/categorical refinements).
  std::vector<std::string> refinement_attributes;
  size_t max_values_per_attribute = 40;
  /// Maximum number of conditions added on top of the query context.
  size_t max_depth = 2;
  /// Refinements smaller than this are ignored (CMI estimates on a handful
  /// of rows are meaningless).
  size_t min_group_size = 30;
  DiscretizerOptions discretizer;
  EntropyOptions entropy;
};

/// One unexplained data group.
struct UnexplainedSubgroup {
  Conjunction refinement;  ///< C' (includes the original context C).
  size_t size = 0;         ///< rows in the group.
  double score = 0.0;      ///< I(O;T|C',E) — explanation score.
};

/// Finds the top-k largest context refinements of the query for which the
/// given explanation is unsatisfactory (explanation score > τ), traversing
/// the refinement pattern graph top-down with a size-ordered max-heap and
/// reporting a group only when none of its ancestors already qualified
/// (Algorithm 2). `explanation` names columns of `table` (typically the
/// attributes MESA selected, already joined onto the table).
Result<std::vector<UnexplainedSubgroup>> FindUnexplainedSubgroups(
    const Table& table, const QuerySpec& query,
    const std::vector<std::string>& explanation,
    const SubgroupOptions& options);

}  // namespace mesa

#endif  // MESA_CORE_SUBGROUPS_H_
