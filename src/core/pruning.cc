#include "core/pruning.h"

#include <cmath>
#include <unordered_set>

#include "common/metrics.h"
#include "common/parallel.h"
#include "info/entropy.h"

namespace mesa {

const char* PruneReasonName(PruneReason reason) {
  switch (reason) {
    case PruneReason::kConstant:
      return "constant";
    case PruneReason::kTooManyMissing:
      return "too_many_missing";
    case PruneReason::kHighEntropy:
      return "high_entropy";
    case PruneReason::kLogicalDependency:
      return "logical_dependency";
    case PruneReason::kLowRelevance:
      return "low_relevance";
  }
  return "?";
}

Result<PruneResult> OfflinePrune(const Table& table,
                                 const std::vector<std::string>& attributes,
                                 const OfflinePruneOptions& options) {
  MESA_SPAN("offline_prune");
  PruneResult result;
  for (const std::string& name : attributes) {
    MESA_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(name));
    const size_t n = col->size();
    const size_t present = n - col->null_count();

    if (col->null_fraction() > options.max_missing_fraction) {
      result.pruned.push_back({name, PruneReason::kTooManyMissing});
      continue;
    }

    // Count distinct non-null values (hash of Value).
    std::unordered_set<Value, ValueHash> distinct;
    for (size_t r = 0; r < n; ++r) {
      if (col->IsValid(r)) distinct.insert(col->GetValue(r));
    }
    if (distinct.size() <= 1) {
      result.pruned.push_back({name, PruneReason::kConstant});
      continue;
    }
    // High-entropy filter: near-unique *identifier-like* attributes
    // (wikiID, keys, URLs) — string or native-integer columns. Continuous
    // measurements (double) are naturally unique per entity and exempt;
    // they get binned downstream.
    bool identifier_like = col->type() != DataType::kDouble;
    if (identifier_like &&
        distinct.size() >= options.high_entropy_min_distinct && present > 0 &&
        static_cast<double>(distinct.size()) >
            options.max_distinct_fraction * static_cast<double>(present)) {
      result.pruned.push_back({name, PruneReason::kHighEntropy});
      continue;
    }
    result.kept.push_back(name);
  }
  MESA_COUNT_N("prune/offline_kept", result.kept.size());
  MESA_COUNT_N("prune/offline_pruned", result.pruned.size());
  return result;
}

OnlinePruneResult OnlinePrune(const QueryAnalysis& analysis,
                              const OnlinePruneOptions& options) {
  MESA_SPAN("online_prune");
  OnlinePruneResult result;
  const CodedVariable& o = analysis.outcome();
  const CodedVariable& t = analysis.exposure();
  const EntropyOptions& eopts = analysis.options().entropy;
  const size_t n_rows = analysis.num_rows();
  // Shared trivial conditioning code, hoisted out of the per-attribute
  // lambda (and into the analysis's combined-code cache, so its content
  // fingerprint is computed once for the whole query).
  const CodedVariable& trivial = analysis.CombinedCode({});

  // Each attribute's verdict is independent: classify concurrently into
  // order-stable slots, then assemble kept/pruned lists in attribute order
  // (identical to the serial loop at any thread count).
  constexpr int kKept = -1;
  std::vector<int> verdict(analysis.attributes().size(), kKept);
  ParallelFor(
      0, analysis.attributes().size(),
      [&](size_t i) {
        const PreparedAttribute& attr = analysis.attributes()[i];
        const CodedVariable& e = attr.coded;
        if (e.cardinality <= 1) {
          verdict[i] = static_cast<int>(PruneReason::kConstant);
          return;
        }
        const std::vector<double>* w =
            attr.weights.empty() ? nullptr : &attr.weights;

        // Logical dependency / identification with the exposure or outcome
        // — Lemma A.2 and its local form, shared with NextBestAtt through
        // QueryAnalysis (see IsExposureTrap).
        if (analysis.IsExposureTrap(i)) {
          verdict[i] = static_cast<int>(PruneReason::kLogicalDependency);
          return;
        }

        // Low relevance (appendix Relevance Test): (O ⟂ E | C) and
        // (O ⟂ E | C, T) imply E cannot change I(O;T|C). The thresholds are
        // bias-adjusted: the plug-in (C)MI of independent variables is
        // biased upward by ~ K_z (K_x - 1)(K_y - 1) / (2 N ln 2), so an
        // attribute only counts as relevant when it clears chance level.
        const double ln2 = 0.6931471805599453;
        double cells = static_cast<double>(e.cardinality - 1) *
                       static_cast<double>(o.cardinality - 1);
        double bias_marginal =
            cells / (2.0 * static_cast<double>(n_rows) * ln2);
        double bias_cond = bias_marginal * static_cast<double>(t.cardinality);
        double mi_oe = ConditionalMutualInformation(o, e, trivial, w, eopts);
        double cmi_oe_t = ConditionalMutualInformation(o, e, t, w, eopts);
        if (mi_oe < options.relevance_epsilon + bias_marginal &&
            cmi_oe_t < options.relevance_epsilon + bias_cond) {
          verdict[i] = static_cast<int>(PruneReason::kLowRelevance);
          return;
        }
      },
      analysis.options().num_threads);
  for (size_t i = 0; i < verdict.size(); ++i) {
    if (verdict[i] == kKept) {
      result.kept_indices.push_back(i);
    } else {
      result.pruned.push_back({analysis.attributes()[i].name,
                               static_cast<PruneReason>(verdict[i])});
    }
  }
  MESA_COUNT_N("prune/online_kept", result.kept_indices.size());
  MESA_COUNT_N("prune/online_pruned", result.pruned.size());
  return result;
}

}  // namespace mesa
