#ifndef MESA_CORE_MESA_H_
#define MESA_CORE_MESA_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/candidates.h"
#include "core/mcimr.h"
#include "core/pruning.h"
#include "core/responsibility.h"
#include "core/subgroups.h"
#include "kg/extractor.h"
#include "kg/fault_injection.h"
#include "query/sql_parser.h"

namespace mesa {

/// End-to-end configuration of the MESA system.
struct MesaOptions {
  ExtractionOptions extraction;
  bool enable_offline_pruning = true;
  OfflinePruneOptions offline_prune;
  bool enable_online_pruning = true;
  OnlinePruneOptions online_prune;
  PrepareOptions prepare;
  McimrOptions mcimr;
  /// Retry / circuit-breaker / cache tuning of the KG client every
  /// extraction runs through (see docs/robustness.md).
  KgClientOptions kg_client;
  /// Fault plan injected between the client and the KG endpoint — the
  /// grammar of kg/fault_injection.h. Empty = use the MESA_FAULT_PLAN
  /// environment variable; both empty = no fault layer.
  std::string fault_plan;
  /// Concurrency cap for this instance's parallel paths (copied into
  /// prepare.num_threads when that is 0). 0 = the global pool size
  /// (MESA_NUM_THREADS env var / SetNumThreads). Explanations are
  /// bit-identical at any value — see common/parallel.h.
  size_t num_threads = 0;
};

/// Everything MESA produces for one query.
struct MesaReport {
  QuerySpec query;
  Explanation explanation;
  std::vector<AttributeResponsibility> responsibilities;
  /// Candidate funnel: extracted+input -> offline pruning -> online pruning.
  size_t candidates_total = 0;
  size_t candidates_after_offline = 0;
  size_t candidates_after_online = 0;
  std::vector<PrunedAttribute> pruned_online;
  double base_cmi = 0.0;
  double final_cmi = 0.0;
  /// KG extraction bookkeeping (zeroed when no KG was attached). The
  /// report renderer annotates coverage from this.
  ExtractionStats extraction;

  /// "I(O;T|C) = x; explanation {A, B} brings it to y" rendering.
  std::string Summary() const;
};

/// The MESA system (Sections 3–4): owns the input dataset, mines candidate
/// confounders from the knowledge source on demand, prunes, runs MCIMR, and
/// reports explanations with responsibilities. One Mesa instance serves
/// many queries over the same dataset; extraction and offline pruning
/// happen once and are cached.
///
/// Concurrency contract (the resident-daemon substrate — see
/// docs/serving.md): after construction, Explain / ExplainSql /
/// PrepareQuery / FindSubgroups / RankLinks / augmented_table may be
/// called from any number of threads at once. Preprocessing runs exactly
/// once under an internal mutex (concurrent first callers serialize; the
/// winner does the work, the rest observe it); everything it produces
/// (augmented table, candidate pool, extraction stats) is immutable
/// afterwards, and all per-query state lives in a fresh QueryAnalysis per
/// call, whose internal score caches are themselves mutex-guarded.
/// Results are bit-identical to serial, single-client execution — the
/// shared sufficient-statistics and discretizer caches are
/// content-addressed memos of pure values (see docs/performance.md).
class Mesa {
 public:
  /// `kg` may be null (explanations then come from the input table only —
  /// the HypDB regime). `extraction_columns` are the entity-bearing columns
  /// mined from the KG (Table 1's "Columns used for extraction"). The
  /// store is wrapped in a LocalEndpoint (plus a FaultInjectingEndpoint
  /// when a fault plan is configured) and consumed through a
  /// ResilientKgClient.
  Mesa(Table base_table, const TripleStore* kg,
       std::vector<std::string> extraction_columns, MesaOptions options = {});

  /// Serves explanations against an arbitrary KG endpoint — remote,
  /// fault-injected, or otherwise. `endpoint` may be null.
  Mesa(Table base_table, std::shared_ptr<KgEndpoint> endpoint,
       std::vector<std::string> extraction_columns, MesaOptions options = {});

  /// Runs extraction + offline pruning now (otherwise they run lazily on
  /// the first query). Safe to call concurrently: the work happens once.
  Status Preprocess();

  /// Explains the unexpected correlation in `query`.
  Result<MesaReport> Explain(const QuerySpec& query);

  /// Convenience: parse the SQL text, then Explain.
  Result<MesaReport> ExplainSql(const std::string& sql);

  /// Prepared analysis + the candidate indices surviving online pruning —
  /// the shared substrate for baselines and benchmarks. The analysis is
  /// freshly built per call (it holds per-query state).
  struct PreparedQuery {
    std::shared_ptr<QueryAnalysis> analysis;
    std::vector<size_t> candidate_indices;
    std::vector<PrunedAttribute> pruned_online;
  };
  Result<PreparedQuery> PrepareQuery(const QuerySpec& query);

  /// Identifies the largest unexplained data subgroups for a previously
  /// computed explanation (Section 4.3). `refinement_attributes` defaults
  /// to every categorical column of the base table when empty.
  Result<std::vector<UnexplainedSubgroup>> FindSubgroups(
      const QuerySpec& query, const std::vector<std::string>& explanation,
      SubgroupOptions options);

  /// Relevance of one entity-valued KG link (the paper's §7 future-work
  /// item: "identify which links in a KG are relevant to the explanation
  /// and worthy to follow").
  struct LinkRelevance {
    std::string link;            ///< entity-valued predicate, e.g. "leader".
    std::string best_attribute;  ///< strongest attribute reached through it.
    /// I(O;T|C,E) of that attribute — lower = the link leads to better
    /// explanations. Links whose attributes were all pruned rank last.
    double best_cmi = 0.0;
    size_t attributes = 0;       ///< attributes contributed by the link.
  };

  /// Ranks the 2-hop links of the knowledge source by how much their
  /// extracted attributes individually explain the query (ascending
  /// best_cmi). Requires extraction with hops >= 2 — with 1 hop there are
  /// no followed links and the result is empty.
  Result<std::vector<LinkRelevance>> RankLinks(const QuerySpec& query);

  /// The base table augmented with every extracted attribute (triggers
  /// preprocessing if needed).
  Result<const Table*> augmented_table();

  /// Names of attribute columns attached from the KG.
  const std::vector<std::string>& kg_columns() const { return kg_columns_; }

  /// Extraction bookkeeping (valid after preprocessing).
  const ExtractionStats& extraction_stats() const { return extraction_stats_; }

  /// The resilient KG client this instance extracts through (null when no
  /// KG endpoint is attached). Exposes retry/breaker/cache counters.
  ResilientKgClient* kg_client() { return kg_client_.get(); }

  /// Offline pruning decisions (valid after preprocessing).
  const PruneResult& offline_prune_result() const { return offline_result_; }

  const MesaOptions& options() const { return options_; }

 private:
  /// Builds the endpoint stack (fault layer if configured) + client.
  /// Records a setup error in `setup_status_` instead of throwing.
  void WireEndpoint(std::shared_ptr<KgEndpoint> endpoint);

  /// The body of Preprocess, run under preprocess_mu_.
  Status PreprocessLocked();

  Table base_table_;
  const TripleStore* kg_;  ///< local store behind the endpoint, if any.
  std::vector<std::string> extraction_columns_;
  MesaOptions options_;
  std::shared_ptr<KgEndpoint> endpoint_;
  std::unique_ptr<ResilientKgClient> kg_client_;
  Status setup_status_;  ///< surfaced on first use (bad fault plan, ...).

  /// Serializes lazy preprocessing across concurrent queries. Everything
  /// below is written only by the winner (while the losers wait on the
  /// mutex, which publishes the writes) and read-only afterwards.
  /// shared_ptr keeps Mesa movable, like QueryAnalysis's cache_mu_.
  std::shared_ptr<std::mutex> preprocess_mu_ = std::make_shared<std::mutex>();
  bool preprocessed_ = false;
  Table augmented_;
  std::vector<std::string> kg_columns_;
  ExtractionStats extraction_stats_;
  PruneResult offline_result_;
  std::vector<std::string> candidate_pool_;  ///< offline survivors.
};

}  // namespace mesa

#endif  // MESA_CORE_MESA_H_
