#ifndef MESA_CORE_MCIMR_H_
#define MESA_CORE_MCIMR_H_

#include <string>
#include <vector>

#include "core/candidates.h"
#include "info/independence.h"

namespace mesa {

/// Options for the MCIMR algorithm (Algorithm 1).
struct McimrOptions {
  /// Upper bound k on the explanation size.
  size_t max_size = 5;
  /// Apply the responsibility test (Lemma 4.2) and stop early when the
  /// next attribute's marginal contribution is ~0. Disable to always emit
  /// exactly k attributes (ablation).
  bool responsibility_stopping = true;
  IndependenceOptions independence;
  /// Disable the Min-Redundancy term of Eq. 5 (ablation; what remains is
  /// the Top-K/Min-CI-only selection rule).
  bool use_redundancy_term = true;
  /// Normalise the redundancy term by min-entropy (NMIFS-style). With raw
  /// MI (the paper's literal Eq. 5), two attributes of the same entity —
  /// e.g. any two country properties — carry large structural MI, which
  /// systematically blocks multi-attribute explanations on hierarchical
  /// data; normalisation restores the intended balance. Off = literal
  /// Eq. 5 (ablation bench compares both).
  bool normalize_redundancy = true;
  /// Strength of the normalised redundancy penalty, in units of the base
  /// CMI: a fully redundant attribute (normalised redundancy 1) is charged
  /// redundancy_weight * I(O;T|C).
  double redundancy_weight = 1.5;
  /// The paper's Key Assumption (§2.2): the optimal explanation contains
  /// no attribute that is individually unimportant. Candidates whose
  /// single-attribute CMI fails to undercut the base CMI by at least this
  /// fraction are never selected (they cannot contribute except through
  /// XOR-style interactions, which the problem statement excludes).
  double individual_relevance_margin = 0.03;
  /// "Stop when no further improvement is found": an attribute whose joint
  /// CMI reduction falls below max(min_improvement,
  /// min_relative_improvement * I(O;T|C)) is rejected and the algorithm
  /// stops.
  double min_improvement = 1e-3;
  double min_relative_improvement = 0.10;
  /// Stop once the remaining CMI drops below this — the correlation is
  /// fully explained.
  double cmi_floor = 5e-3;
  /// Reject an attribute whose addition makes the joint conditioning set
  /// identify the exposure on more than this fraction of rows (the set
  /// form of the Lemma A.2 guard; <= 0 disables). The rejected candidate
  /// is skipped and selection continues with the next best.
  double max_identification_fraction = 0.35;
  /// Never select attributes flagged by QueryAnalysis::IsExposureTrap
  /// (Lemma A.2 near-identifiers). This duplicates the online-pruning test
  /// *inside* the algorithm, which is what keeps MCIMR-without-pruning
  /// (MESA-) as sound as MESA — the paper's "pruning has little effect on
  /// explanation quality" claim. Disable only for ablation.
  bool exclude_exposure_traps = true;
};

/// One greedy selection step, for tracing/benchmarks.
struct ExplanationStep {
  size_t attribute_index = 0;
  std::string attribute_name;
  double selection_score = 0.0;  ///< v1 + v2/|E| minimised in NextBestAtt.
  double cmi_after = 0.0;        ///< I(O;T|C,E) after adding the attribute.
};

/// An explanation: the selected attribute set plus scores.
struct Explanation {
  std::vector<size_t> attribute_indices;    ///< into analysis.attributes().
  std::vector<std::string> attribute_names;
  double base_cmi = 0.0;   ///< I(O;T|C).
  double final_cmi = 0.0;  ///< I(O;T|C,E) — the explainability score (§5.1).
  std::vector<ExplanationStep> trace;
  bool stopped_by_responsibility = false;

  /// The objective of Definition 2.3: I(O;T|E,C) * |E|.
  double Objective() const {
    return final_cmi * static_cast<double>(attribute_indices.size());
  }
  /// Pretty "{HDI, Gini}" rendering.
  std::string ToString() const;
};

/// Runs MCIMR over the candidates listed in `candidate_indices` (typically
/// the survivors of pruning; pass all indices for the MESA- variant).
/// PTIME: O(k * |A|) estimator calls (Proposition 4.3).
Explanation RunMcimr(const QueryAnalysis& analysis,
                     const std::vector<size_t>& candidate_indices,
                     const McimrOptions& options = {});

/// The NextBestAtt procedure of Algorithm 1: returns the index (into
/// analysis.attributes()) minimising Eq. 5 among `candidates` not already
/// in `selected`, or -1 when none remain. `score_out` receives the
/// minimised score. Only the redundancy-related options are consulted.
int NextBestAttribute(const QueryAnalysis& analysis,
                      const std::vector<size_t>& candidates,
                      const std::vector<size_t>& selected,
                      const McimrOptions& options, double* score_out);

}  // namespace mesa

#endif  // MESA_CORE_MCIMR_H_
