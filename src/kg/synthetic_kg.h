#ifndef MESA_KG_SYNTHETIC_KG_H_
#define MESA_KG_SYNTHETIC_KG_H_

#include <string>

#include "common/rng.h"
#include "kg/triple_store.h"

namespace mesa {

/// Helper for building DBpedia-shaped synthetic knowledge graphs (the
/// paper's external source, per the DESIGN.md substitution). It layers the
/// quirks that matter to MESA on top of a plain TripleStore:
///   - controlled sparsity (each property is present with some probability,
///     reproducing the 37–73% missing rates of Section 5.2);
///   - uninformative predicates that offline pruning must drop: a constant
///     `type` property, a unique high-entropy `wikiID`, and pure-noise
///     numeric properties;
///   - correlated "<name>_rank" twins of numeric properties (HDI vs HDI
///     Rank), the redundancy that Min-Redundancy exists to handle.
class SyntheticKgBuilder {
 public:
  SyntheticKgBuilder(TripleStore* store, uint64_t seed);

  TripleStore* store() { return store_; }
  Rng& rng() { return rng_; }

  /// Returns the entity with this label, creating it if needed.
  EntityId EnsureEntity(const std::string& label, const std::string& type);

  /// Adds a numeric literal with probability (1 - missing_rate).
  void AddNumeric(EntityId entity, const std::string& predicate, double value,
                  double missing_rate = 0.0);

  /// Adds a categorical literal with probability (1 - missing_rate).
  void AddCategorical(EntityId entity, const std::string& predicate,
                      const std::string& value, double missing_rate = 0.0);

  /// Adds both `<predicate>` and a negatively correlated
  /// `<predicate>_rank` (dense ranks are assigned by the caller; this
  /// overload derives a noisy pseudo-rank from the value scale).
  void AddNumericWithRank(EntityId entity, const std::string& predicate,
                          double value, double rank,
                          double missing_rate = 0.0);

  /// Adds the standard uninformative properties: constant `type`, unique
  /// `wikiID`, plus `noise_count` pure-noise numeric predicates
  /// ("noise_attr_<i>") drawn independently of everything else.
  void AddNoiseProperties(EntityId entity, const std::string& type_label,
                          size_t noise_count, double missing_rate = 0.2);

 private:
  TripleStore* store_;
  Rng rng_;
  uint32_t next_wiki_id_ = 100000;
};

}  // namespace mesa

#endif  // MESA_KG_SYNTHETIC_KG_H_
