#include "kg/synthetic_kg.h"

#include "common/logging.h"

namespace mesa {

SyntheticKgBuilder::SyntheticKgBuilder(TripleStore* store, uint64_t seed)
    : store_(store), rng_(seed) {
  MESA_CHECK(store != nullptr);
}

EntityId SyntheticKgBuilder::EnsureEntity(const std::string& label,
                                          const std::string& type) {
  if (auto id = store_->FindByLabel(label); id.has_value()) return *id;
  Result<EntityId> r = store_->AddEntity(label, type);
  MESA_CHECK(r.ok());
  return *r;
}

void SyntheticKgBuilder::AddNumeric(EntityId entity,
                                    const std::string& predicate, double value,
                                    double missing_rate) {
  if (missing_rate > 0.0 && rng_.NextBernoulli(missing_rate)) return;
  Status st = store_->AddLiteral(entity, predicate, Value::Double(value));
  MESA_CHECK(st.ok());
}

void SyntheticKgBuilder::AddCategorical(EntityId entity,
                                        const std::string& predicate,
                                        const std::string& value,
                                        double missing_rate) {
  if (missing_rate > 0.0 && rng_.NextBernoulli(missing_rate)) return;
  Status st = store_->AddLiteral(entity, predicate, Value::String(value));
  MESA_CHECK(st.ok());
}

void SyntheticKgBuilder::AddNumericWithRank(EntityId entity,
                                            const std::string& predicate,
                                            double value, double rank,
                                            double missing_rate) {
  AddNumeric(entity, predicate, value, missing_rate);
  AddNumeric(entity, predicate + "_rank", rank, missing_rate);
}

void SyntheticKgBuilder::AddNoiseProperties(EntityId entity,
                                            const std::string& type_label,
                                            size_t noise_count,
                                            double missing_rate) {
  // Constant-valued property: dropped by Simple Filtering.
  AddCategorical(entity, "type", type_label);
  // Unique per-entity id: dropped by the High Entropy filter.
  AddCategorical(entity, "wikiID", "Q" + std::to_string(next_wiki_id_++));
  // Pure noise, independent of any outcome: survives offline pruning but
  // must lose to real confounders in MCIMR.
  for (size_t i = 0; i < noise_count; ++i) {
    AddNumeric(entity, "noise_attr_" + std::to_string(i),
               rng_.NextGaussian(0.0, 1.0), missing_rate);
  }
}

}  // namespace mesa
