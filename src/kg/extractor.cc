#include "kg/extractor.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/metrics.h"
#include "query/join.h"

namespace mesa {

namespace {

// Recursively gathers properties of `entity` into `out`, following
// entity-valued predicates while hops remain. Attribute names compose as
// "leader_age" for hop-2 properties.
void GatherProperties(const TripleStore& store, EntityId entity,
                      const std::string& prefix, size_t hops_left,
                      std::map<std::string, std::vector<Value>>* out) {
  for (const Triple* t : store.PropertiesOf(entity)) {
    const std::string& pred = store.predicate_name(t->predicate);
    std::string name = prefix.empty() ? pred : prefix + "_" + pred;
    if (t->object.is_entity()) {
      // The entity's label is itself a (categorical) attribute value.
      (*out)[name].push_back(
          Value::String(store.entity(t->object.entity).label));
      if (hops_left > 1) {
        GatherProperties(store, t->object.entity, name, hops_left - 1, out);
      }
    } else {
      (*out)[name].push_back(t->object.literal);
    }
  }
}

// Collapses a multi-valued attribute to a single Value.
Value CollapseValues(const std::vector<Value>& values,
                     AggregateFunction agg) {
  if (values.size() == 1) return values[0];
  bool all_numeric = true;
  for (const auto& v : values) {
    if (!v.is_numeric()) {
      all_numeric = false;
      break;
    }
  }
  if (all_numeric) {
    std::vector<double> nums;
    nums.reserve(values.size());
    for (const auto& v : values) nums.push_back(v.AsDouble());
    Result<double> r = ComputeAggregate(agg, nums);
    if (r.ok()) return Value::Double(*r);
    return Value::Null();
  }
  // Categorical one-to-many: deterministic representative.
  std::vector<std::string> texts;
  texts.reserve(values.size());
  for (const auto& v : values) texts.push_back(v.ToString());
  std::sort(texts.begin(), texts.end());
  return Value::String(texts.front());
}

}  // namespace

Result<Table> ExtractAttributes(const Table& table, const std::string& column,
                                const TripleStore& store,
                                const ExtractionOptions& options,
                                ExtractionStats* stats) {
  MESA_SPAN("kg_extract");
  MESA_ASSIGN_OR_RETURN(const Column* keys, table.ColumnByName(column));
  if (keys->type() != DataType::kString) {
    return Status::InvalidArgument(
        "extraction column must be string-valued: " + column);
  }

  // Distinct non-null key values, in sorted order for determinism.
  std::set<std::string> distinct;
  for (size_t r = 0; r < keys->size(); ++r) {
    if (keys->IsValid(r)) distinct.insert(keys->StringAt(r));
  }

  ExtractionStats local_stats;
  local_stats.values_total = distinct.size();

  EntityLinker linker(&store, options.linker);

  // Per key value: attribute -> collapsed value.
  std::vector<std::pair<std::string, std::map<std::string, Value>>> rows;
  std::set<std::string> attr_names;
  for (const std::string& key : distinct) {
    LinkResult link = linker.Link(key);
    if (!link.linked()) {
      if (link.outcome == LinkOutcome::kAmbiguous) {
        ++local_stats.values_ambiguous;
      } else {
        ++local_stats.values_not_found;
      }
      rows.emplace_back(key, std::map<std::string, Value>{});
      continue;
    }
    ++local_stats.values_linked;
    std::map<std::string, std::vector<Value>> props;
    GatherProperties(store, *link.entity, "", options.hops, &props);
    std::map<std::string, Value> collapsed;
    for (auto& [name, values] : props) {
      Value v = CollapseValues(values, options.one_to_many_agg);
      if (!v.is_null()) {
        collapsed.emplace(name, std::move(v));
        attr_names.insert(name);
      }
    }
    rows.emplace_back(key, std::move(collapsed));
  }
  local_stats.attributes_extracted = attr_names.size();
  if (stats != nullptr) *stats = local_stats;

  // Decide each attribute's type: double if every observed value is
  // numeric, else string.
  std::map<std::string, DataType> attr_types;
  for (const std::string& name : attr_names) {
    bool all_numeric = true;
    for (const auto& [key, attrs] : rows) {
      (void)key;
      auto it = attrs.find(name);
      if (it != attrs.end() && !it->second.is_numeric()) {
        all_numeric = false;
        break;
      }
    }
    attr_types[name] = all_numeric ? DataType::kDouble : DataType::kString;
  }

  // Assemble the universal relation.
  Schema schema;
  MESA_RETURN_IF_ERROR(schema.AddField({column, DataType::kString}));
  for (const auto& [name, type] : attr_types) {
    MESA_RETURN_IF_ERROR(schema.AddField({name, type}));
  }
  std::vector<Column> cols;
  cols.emplace_back(DataType::kString);
  for (const auto& [name, type] : attr_types) {
    (void)name;
    cols.emplace_back(type);
  }
  for (const auto& [key, attrs] : rows) {
    cols[0].AppendString(key);
    size_t c = 1;
    for (const auto& [name, type] : attr_types) {
      auto it = attrs.find(name);
      if (it == attrs.end()) {
        cols[c].AppendNull();
      } else if (type == DataType::kDouble) {
        cols[c].AppendDouble(it->second.AsDouble());
      } else {
        cols[c].AppendString(it->second.ToString());
      }
      ++c;
    }
  }
  return Table::Make(std::move(schema), std::move(cols));
}

Result<AugmentResult> AugmentTableFromKg(
    const Table& table, const std::vector<std::string>& columns,
    const TripleStore& store, const ExtractionOptions& options) {
  AugmentResult out;
  out.table = table;
  for (const std::string& column : columns) {
    ExtractionStats stats;
    MESA_ASSIGN_OR_RETURN(
        Table extracted, ExtractAttributes(table, column, store, options, &stats));
    out.stats.values_total += stats.values_total;
    out.stats.values_linked += stats.values_linked;
    out.stats.values_ambiguous += stats.values_ambiguous;
    out.stats.values_not_found += stats.values_not_found;

    // Rename collisions with a column-specific prefix before joining.
    std::vector<std::string> attr_names;
    for (size_t c = 1; c < extracted.num_columns(); ++c) {
      attr_names.push_back(extracted.schema().field(c).name);
    }
    Schema renamed_schema;
    std::vector<Column> renamed_cols;
    MESA_RETURN_IF_ERROR(
        renamed_schema.AddField({column, DataType::kString}));
    renamed_cols.push_back(extracted.column(0));
    std::vector<std::string> final_names;
    for (size_t c = 1; c < extracted.num_columns(); ++c) {
      std::string name = extracted.schema().field(c).name;
      if (out.table.schema().Contains(name) ||
          std::find(out.extracted_columns.begin(),
                    out.extracted_columns.end(),
                    name) != out.extracted_columns.end()) {
        name = column + "." + name;
      }
      MESA_RETURN_IF_ERROR(renamed_schema.AddField(
          {name, extracted.schema().field(c).type}));
      renamed_cols.push_back(extracted.column(c));
      final_names.push_back(name);
    }
    MESA_ASSIGN_OR_RETURN(
        Table renamed,
        Table::Make(std::move(renamed_schema), std::move(renamed_cols)));
    MESA_ASSIGN_OR_RETURN(
        out.table, HashJoin(out.table, column, renamed, column,
                            {JoinType::kLeft, column + "."}));
    for (auto& name : final_names) {
      out.extracted_columns.push_back(std::move(name));
    }
    out.entity_tables.push_back(std::move(renamed));
  }
  out.stats.attributes_extracted = out.extracted_columns.size();
  MESA_COUNT_N("kg/values_total", out.stats.values_total);
  MESA_COUNT_N("kg/values_linked", out.stats.values_linked);
  MESA_COUNT_N("kg/values_ambiguous", out.stats.values_ambiguous);
  MESA_COUNT_N("kg/values_not_found", out.stats.values_not_found);
  MESA_COUNT_N("kg/attributes_extracted", out.stats.attributes_extracted);
  return out;
}

}  // namespace mesa
