#include "kg/extractor.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <set>

#include "common/metrics.h"
#include "query/join.h"

namespace mesa {

namespace {

// Recursively gathers properties of `entity` into `out`, following
// entity-valued predicates while hops remain. Attribute names compose as
// "leader_age" for hop-2 properties.
void GatherProperties(const TripleStore& store, EntityId entity,
                      const std::string& prefix, size_t hops_left,
                      std::map<std::string, std::vector<Value>>* out) {
  for (const Triple* t : store.PropertiesOf(entity)) {
    const std::string& pred = store.predicate_name(t->predicate);
    std::string name = prefix.empty() ? pred : prefix + "_" + pred;
    if (t->object.is_entity()) {
      // The entity's label is itself a (categorical) attribute value.
      (*out)[name].push_back(
          Value::String(store.entity(t->object.entity).label));
      if (hops_left > 1) {
        GatherProperties(store, t->object.entity, name, hops_left - 1, out);
      }
    } else {
      (*out)[name].push_back(t->object.literal);
    }
  }
}

// The same gathering through the resilient client. A Properties call that
// fails for good marks `*any_failure` and the walk keeps whatever other
// branches it can reach — partial extraction beats no extraction.
void GatherPropertiesClient(ResilientKgClient* client, EntityId entity,
                            const std::string& prefix, size_t hops_left,
                            std::map<std::string, std::vector<Value>>* out,
                            bool* any_failure) {
  Result<std::vector<KgProperty>> props = client->Properties(entity);
  if (!props.ok()) {
    *any_failure = true;
    return;
  }
  for (const KgProperty& p : *props) {
    std::string name = prefix.empty() ? p.predicate : prefix + "_" + p.predicate;
    if (p.is_entity) {
      (*out)[name].push_back(Value::String(p.entity_label));
      if (hops_left > 1) {
        GatherPropertiesClient(client, p.entity, name, hops_left - 1, out,
                               any_failure);
      }
    } else {
      (*out)[name].push_back(p.literal);
    }
  }
}

// Collapses a multi-valued attribute to a single Value.
Value CollapseValues(const std::vector<Value>& values,
                     AggregateFunction agg) {
  if (values.size() == 1) return values[0];
  bool all_numeric = true;
  for (const auto& v : values) {
    if (!v.is_numeric()) {
      all_numeric = false;
      break;
    }
  }
  if (all_numeric) {
    std::vector<double> nums;
    nums.reserve(values.size());
    for (const auto& v : values) nums.push_back(v.AsDouble());
    Result<double> r = ComputeAggregate(agg, nums);
    if (r.ok()) return Value::Double(*r);
    return Value::Null();
  }
  // Categorical one-to-many: deterministic representative.
  std::vector<std::string> texts;
  texts.reserve(values.size());
  for (const auto& v : values) texts.push_back(v.ToString());
  std::sort(texts.begin(), texts.end());
  return Value::String(texts.front());
}

// Per-key extraction output: attribute name -> collapsed value.
using ExtractedRows =
    std::vector<std::pair<std::string, std::map<std::string, Value>>>;

// Distinct non-null key values of a string column, sorted for determinism.
Result<std::set<std::string>> DistinctKeys(const Table& table,
                                           const std::string& column) {
  MESA_ASSIGN_OR_RETURN(const Column* keys, table.ColumnByName(column));
  if (keys->type() != DataType::kString) {
    return Status::InvalidArgument(
        "extraction column must be string-valued: " + column);
  }
  std::set<std::string> distinct;
  for (size_t r = 0; r < keys->size(); ++r) {
    if (keys->IsValid(r)) distinct.insert(keys->StringAt(r));
  }
  return distinct;
}

// Assembles the universal relation from per-key rows: decides each
// attribute's type (double if every observed value is numeric, else
// string) and materialises one row per key value.
Result<Table> AssembleUniversalRelation(const std::string& column,
                                        const ExtractedRows& rows,
                                        const std::set<std::string>& attr_names) {
  std::map<std::string, DataType> attr_types;
  for (const std::string& name : attr_names) {
    bool all_numeric = true;
    for (const auto& [key, attrs] : rows) {
      (void)key;
      auto it = attrs.find(name);
      if (it != attrs.end() && !it->second.is_numeric()) {
        all_numeric = false;
        break;
      }
    }
    attr_types[name] = all_numeric ? DataType::kDouble : DataType::kString;
  }

  Schema schema;
  MESA_RETURN_IF_ERROR(schema.AddField({column, DataType::kString}));
  for (const auto& [name, type] : attr_types) {
    MESA_RETURN_IF_ERROR(schema.AddField({name, type}));
  }
  std::vector<Column> cols;
  cols.emplace_back(DataType::kString);
  for (const auto& [name, type] : attr_types) {
    (void)name;
    cols.emplace_back(type);
  }
  for (const auto& [key, attrs] : rows) {
    cols[0].AppendString(key);
    size_t c = 1;
    for (const auto& [name, type] : attr_types) {
      auto it = attrs.find(name);
      if (it == attrs.end()) {
        cols[c].AppendNull();
      } else if (type == DataType::kDouble) {
        cols[c].AppendDouble(it->second.AsDouble());
      } else {
        cols[c].AppendString(it->second.ToString());
      }
      ++c;
    }
  }
  return Table::Make(std::move(schema), std::move(cols));
}

// Collapses one key's multi-valued properties into its output row.
void CollapseIntoRow(const std::string& key,
                     std::map<std::string, std::vector<Value>>& props,
                     AggregateFunction agg, ExtractedRows* rows,
                     std::set<std::string>* attr_names) {
  std::map<std::string, Value> collapsed;
  for (auto& [name, values] : props) {
    Value v = CollapseValues(values, agg);
    if (!v.is_null()) {
      collapsed.emplace(name, std::move(v));
      attr_names->insert(name);
    }
  }
  rows->emplace_back(key, std::move(collapsed));
}

// Shared augmentation driver: extracts per column via `extract`, renames
// collisions, and left-joins the attributes onto the base table.
Result<AugmentResult> AugmentImpl(
    const Table& table, const std::vector<std::string>& columns,
    const std::function<Result<Table>(const std::string&, ExtractionStats*)>&
        extract) {
  AugmentResult out;
  out.table = table;
  for (const std::string& column : columns) {
    ExtractionStats stats;
    MESA_ASSIGN_OR_RETURN(Table extracted, extract(column, &stats));
    out.stats.values_total += stats.values_total;
    out.stats.values_linked += stats.values_linked;
    out.stats.values_ambiguous += stats.values_ambiguous;
    out.stats.values_not_found += stats.values_not_found;
    out.stats.values_failed += stats.values_failed;
    out.stats.lookups_retried += stats.lookups_retried;

    // Rename collisions with a column-specific prefix before joining.
    Schema renamed_schema;
    std::vector<Column> renamed_cols;
    MESA_RETURN_IF_ERROR(
        renamed_schema.AddField({column, DataType::kString}));
    renamed_cols.push_back(extracted.column(0));
    std::vector<std::string> final_names;
    for (size_t c = 1; c < extracted.num_columns(); ++c) {
      std::string name = extracted.schema().field(c).name;
      if (out.table.schema().Contains(name) ||
          std::find(out.extracted_columns.begin(),
                    out.extracted_columns.end(),
                    name) != out.extracted_columns.end()) {
        name = column + "." + name;
      }
      MESA_RETURN_IF_ERROR(renamed_schema.AddField(
          {name, extracted.schema().field(c).type}));
      renamed_cols.push_back(extracted.column(c));
      final_names.push_back(name);
    }
    MESA_ASSIGN_OR_RETURN(
        Table renamed,
        Table::Make(std::move(renamed_schema), std::move(renamed_cols)));
    MESA_ASSIGN_OR_RETURN(
        out.table, HashJoin(out.table, column, renamed, column,
                            {JoinType::kLeft, column + "."}));
    for (auto& name : final_names) {
      out.extracted_columns.push_back(std::move(name));
    }
    out.entity_tables.push_back(std::move(renamed));
  }
  out.stats.attributes_extracted = out.extracted_columns.size();
  MESA_COUNT_N("kg/values_total", out.stats.values_total);
  MESA_COUNT_N("kg/values_linked", out.stats.values_linked);
  MESA_COUNT_N("kg/values_ambiguous", out.stats.values_ambiguous);
  MESA_COUNT_N("kg/values_not_found", out.stats.values_not_found);
  MESA_COUNT_N("kg/values_failed", out.stats.values_failed);
  MESA_COUNT_N("kg/attributes_extracted", out.stats.attributes_extracted);
  return out;
}

}  // namespace

Result<Table> ExtractAttributes(const Table& table, const std::string& column,
                                const TripleStore& store,
                                const ExtractionOptions& options,
                                ExtractionStats* stats) {
  MESA_SPAN("kg_extract");
  MESA_ASSIGN_OR_RETURN(std::set<std::string> distinct,
                        DistinctKeys(table, column));

  ExtractionStats local_stats;
  local_stats.values_total = distinct.size();

  EntityLinker linker(&store, options.linker);

  ExtractedRows rows;
  std::set<std::string> attr_names;
  for (const std::string& key : distinct) {
    LinkResult link = linker.Link(key);
    if (!link.linked()) {
      if (link.outcome == LinkOutcome::kAmbiguous) {
        ++local_stats.values_ambiguous;
      } else {
        ++local_stats.values_not_found;
      }
      rows.emplace_back(key, std::map<std::string, Value>{});
      continue;
    }
    ++local_stats.values_linked;
    std::map<std::string, std::vector<Value>> props;
    GatherProperties(store, *link.entity, "", options.hops, &props);
    CollapseIntoRow(key, props, options.one_to_many_agg, &rows, &attr_names);
  }
  local_stats.attributes_extracted = attr_names.size();
  if (stats != nullptr) *stats = local_stats;
  return AssembleUniversalRelation(column, rows, attr_names);
}

Result<Table> ExtractAttributes(const Table& table, const std::string& column,
                                ResilientKgClient* client,
                                const ExtractionOptions& options,
                                ExtractionStats* stats) {
  MESA_SPAN("kg_extract");
  MESA_ASSIGN_OR_RETURN(std::set<std::string> distinct,
                        DistinctKeys(table, column));

  ExtractionStats local_stats;
  local_stats.values_total = distinct.size();
  const ResilientKgClient::Counters before = client->counters();

  ExtractedRows rows;
  std::set<std::string> attr_names;
  for (const std::string& key : distinct) {
    Result<LinkResult> link = client->Resolve(key, options.linker);
    if (!link.ok()) {
      // The lookup itself died (deadline, permanent endpoint fault).
      // Degrade: keep the key with no attributes, count the failure.
      ++local_stats.values_failed;
      rows.emplace_back(key, std::map<std::string, Value>{});
      continue;
    }
    if (!link->linked()) {
      if (link->outcome == LinkOutcome::kAmbiguous) {
        ++local_stats.values_ambiguous;
      } else {
        ++local_stats.values_not_found;
      }
      rows.emplace_back(key, std::map<std::string, Value>{});
      continue;
    }
    ++local_stats.values_linked;
    std::map<std::string, std::vector<Value>> props;
    bool any_failure = false;
    GatherPropertiesClient(client, *link->entity, "", options.hops, &props,
                           &any_failure);
    if (any_failure) ++local_stats.values_failed;
    CollapseIntoRow(key, props, options.one_to_many_agg, &rows, &attr_names);
  }
  local_stats.attributes_extracted = attr_names.size();
  local_stats.lookups_retried = static_cast<size_t>(
      client->counters().calls_retried - before.calls_retried);
  if (stats != nullptr) *stats = local_stats;

  if (local_stats.Coverage() < options.min_coverage) {
    char msg[160];
    std::snprintf(msg, sizeof(msg),
                  "KG coverage %.1f%% below floor %.1f%% on column '%s' "
                  "(%zu of %zu values failed)",
                  100.0 * local_stats.Coverage(),
                  100.0 * options.min_coverage, column.c_str(),
                  local_stats.values_failed, local_stats.values_total);
    return Status::Unavailable(msg);
  }
  return AssembleUniversalRelation(column, rows, attr_names);
}

Result<AugmentResult> AugmentTableFromKg(
    const Table& table, const std::vector<std::string>& columns,
    const TripleStore& store, const ExtractionOptions& options) {
  return AugmentImpl(table, columns,
                     [&](const std::string& column, ExtractionStats* stats) {
                       return ExtractAttributes(table, column, store, options,
                                                stats);
                     });
}

Result<AugmentResult> AugmentTableFromKg(
    const Table& table, const std::vector<std::string>& columns,
    ResilientKgClient* client, const ExtractionOptions& options) {
  return AugmentImpl(table, columns,
                     [&](const std::string& column, ExtractionStats* stats) {
                       return ExtractAttributes(table, column, client, options,
                                                stats);
                     });
}

}  // namespace mesa
